package httpserv

import (
	"fmt"

	"softtimers/internal/flowtrace"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

// ClientHost is a client machine with a real kernel: unlike ClientGen
// (zero-cost request slots driven straight off the engine, for rigs where
// only the server CPU is under study), its requests are issued by kernel
// processes — connect/send/recv syscalls, receive interrupts, protocol
// softirqs — so the client side produces trigger states and soft-timer
// activity of its own. The fleet-scale experiment runs up to 64 of these
// against one server to show the facility's per-host delay bound holds on
// every kernel in a topology, not just the saturated one.
//
// Connections are plain HTTP (connect, one request, response, teardown),
// the paper's non-persistent case; each slot is one kernel process cycling
// through that script.
type ClientHost struct {
	// H is the underlying machine; N the interface toward the server.
	H *host.Host
	N *nic.NIC

	cfg ClientHostConfig

	// Responses counts completed responses; ResponseTimes records their
	// latencies in milliseconds (client view, syscall to last segment).
	Responses     int64
	ResponseTimes *stats.Online
	// Churns counts slot dormancy periods taken (connection churn).
	Churns int64

	// FlowTrace, when set (before the kernel starts), samples flows for
	// span tracing: one SampleFlow decision per connection, spans attached
	// to every packet of a traced flow. TTFB records, per traced flow, the
	// virtual time from the request sendto syscall to the first response
	// data segment's arrival in protocol context.
	FlowTrace *flowtrace.Sampler
	TTFB      map[int]sim.Time

	arena    *netstack.Arena
	rng      *sim.RNG
	slots    []*chSlot
	nextFlow int
}

// ClientHostConfig configures a ClientHost.
type ClientHostConfig struct {
	// Concurrency is the number of request processes (default 4).
	Concurrency int
	// FlowBase offsets this host's flow ids so they are unique across a
	// fleet (host i typically uses i*1_000_000).
	FlowBase int
	// Segments is the expected data-segment count per response (use
	// Server.Segments()).
	Segments int
	// Addr and ServerAddr stamp Src/Dst so switches can forward.
	Addr, ServerAddr netstack.Addr
	// HeaderBytes sizes control packets (default 52).
	HeaderBytes int
	// ThinkTime is the gap before a slot reconnects (default 200 µs).
	ThinkTime sim.Time
	// StartDelay holds every slot's first connect back by this much.
	// Large fleets stagger it per host: a thousand machines connecting in
	// the same microsecond is a SYN storm that pins the server in
	// interrupt context for milliseconds — an overload artifact of the
	// synchronized start, not a property of the workload under study.
	StartDelay sim.Time
	// ConnectWork, SendWork and RecvWork are the syscall service times of
	// the client's socket calls (defaults 15/10/10 µs).
	ConnectWork, SendWork, RecvWork sim.Time
	// ChurnEvery, when > 0, makes each slot go dormant after every N
	// completed responses — connection churn: clients leave the fleet and
	// rejoin later, so the server's connection table turns over instead of
	// serving a fixed population. 0 disables churn.
	ChurnEvery int
	// ChurnOff is the dormancy base period (default 1 ms); the actual gap
	// adds an exponential draw from the host's private RNG stream, which
	// depends only on (seed, host name) — shard-count invariant.
	ChurnOff sim.Time
}

// chSlot is one request process's connection state.
type chSlot struct {
	c         *ClientHost
	flow      int
	got       int // data segments received this response
	resp      int // responses completed since the last churn
	unacked   int
	started   bool // StartDelay consumed
	connected bool // SYNACK arrived
	done      bool // response fully received
	traced    bool // this connection's flow is span-traced
	reqStart  sim.Time
	wq        kernel.WaitQueue
}

// NewClientHost builds the client on host h, issuing requests through n
// (one of h's NICs). It installs itself as n's receive handler.
func NewClientHost(h *host.Host, n *nic.NIC, cfg ClientHostConfig) *ClientHost {
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 4
	}
	if cfg.Segments <= 0 {
		panic("httpserv: client host needs the response segment count")
	}
	if cfg.HeaderBytes == 0 {
		cfg.HeaderBytes = 52
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 200 * sim.Microsecond
	}
	if cfg.ConnectWork == 0 {
		cfg.ConnectWork = 15 * sim.Microsecond
	}
	if cfg.SendWork == 0 {
		cfg.SendWork = 10 * sim.Microsecond
	}
	if cfg.RecvWork == 0 {
		cfg.RecvWork = 10 * sim.Microsecond
	}
	if cfg.ChurnOff == 0 {
		cfg.ChurnOff = sim.Millisecond
	}
	c := &ClientHost{
		H: h, N: n, cfg: cfg, ResponseTimes: &stats.Online{},
		arena: h.Arena(), rng: h.Rand(),
		TTFB: make(map[int]sim.Time),
	}
	n.RxHandler = c.handleRx
	for i := 0; i < cfg.Concurrency; i++ {
		s := &chSlot{c: c}
		c.slots = append(c.slots, s)
		name := fmt.Sprintf("%s-client-%d", h.Name, i)
		h.K.Spawn(name, s.run)
	}
	return c
}

// pkt acquires an addressed control packet for the slot's flow, attaching
// a trace span when the connection is sampled.
func (s *chSlot) pkt(kind netstack.Kind, size int) *netstack.Packet {
	p := s.c.arena.Get()
	p.Flow, p.Src, p.Dst = s.flow, s.c.cfg.Addr, s.c.cfg.ServerAddr
	p.Kind, p.Size = kind, size
	if s.traced {
		p.Trace = s.c.FlowTrace.StartSpan()
	}
	return p
}

// run is the slot's process body: open a connection, fetch once, tear
// down, think, repeat. Each network send goes through the kernel transmit
// chain (ip-output trigger states on this client's kernel).
func (s *chSlot) run(p *kernel.Proc) {
	c := s.c
	if !s.started {
		s.started = true
		if d := c.cfg.StartDelay; d > 0 {
			c.H.Engine().After(d, func() { s.wq.WakeOne() })
			p.Sleep(&s.wq, func() { s.run(p) })
			return
		}
	}
	c.nextFlow++
	s.flow = c.cfg.FlowBase + c.nextFlow
	s.got, s.unacked = 0, 0
	s.connected, s.done = false, false
	// One sampling decision per connection, in host-local flow-open order
	// — the draw sequence is invariant under sharding and worker count.
	s.traced = c.FlowTrace.SampleFlow()
	p.Syscall("connect", c.cfg.ConnectWork, func() {
		p.ChainC(c.N.TxChainOf(s.pkt(netstack.Syn, c.cfg.HeaderBytes)), func() {
			s.awaitConnected(p)
		})
	})
}

// awaitConnected sleeps until the SYNACK arrives, then sends the request.
func (s *chSlot) awaitConnected(p *kernel.Proc) {
	if !s.connected {
		p.Sleep(&s.wq, func() { s.awaitConnected(p) })
		return
	}
	c := s.c
	s.reqStart = c.H.K.Now()
	p.Syscall("sendto", c.cfg.SendWork, func() {
		p.ChainC(c.N.TxChainOf(s.pkt(netstack.Request, c.cfg.HeaderBytes+250)), func() {
			s.awaitResponse(p)
		})
	})
}

// awaitResponse sleeps until the whole response has arrived, then runs the
// recv syscall, records the response, and thinks before reconnecting.
func (s *chSlot) awaitResponse(p *kernel.Proc) {
	if !s.done {
		p.Sleep(&s.wq, func() { s.awaitResponse(p) })
		return
	}
	c := s.c
	p.Syscall("recvfrom", c.cfg.RecvWork, func() {
		c.Responses++
		c.ResponseTimes.Add((c.H.K.Now() - s.reqStart).Millis())
		// Think time: sleep, woken by an engine timer (the CPU may halt).
		// At a churn point the slot instead goes dormant for the base-off
		// period plus an exponential draw — the client "leaves" and
		// reconnects later with a fresh flow.
		gap := c.cfg.ThinkTime
		if c.cfg.ChurnEvery > 0 {
			s.resp++
			if s.resp >= c.cfg.ChurnEvery {
				s.resp = 0
				c.Churns++
				gap = c.cfg.ChurnOff + c.rng.ExpTime(c.cfg.ChurnOff)
			}
		}
		c.H.Engine().After(gap, func() { s.wq.WakeOne() })
		p.Sleep(&s.wq, func() { s.run(p) })
	})
}

// handleRx demultiplexes packets from the server to slots, in kernel
// protocol context. ACKs and the FIN handshake are generated here, as a
// real TCP input path would.
func (c *ClientHost) handleRx(p *netstack.Packet) {
	var slot *chSlot
	for _, s := range c.slots {
		if s.flow == p.Flow {
			slot = s
			break
		}
	}
	if slot == nil {
		return // late packet for a finished connection
	}
	switch p.Kind {
	case netstack.SynAck:
		slot.connected = true
		slot.wq.WakeOne()
	case netstack.Data:
		slot.got++
		if slot.got == 1 && slot.traced {
			c.TTFB[slot.flow] = c.H.K.Now() - slot.reqStart
		}
		slot.unacked++
		if slot.unacked >= 2 || slot.got >= c.cfg.Segments {
			slot.unacked = 0
			ack := slot.pkt(netstack.Ack, c.cfg.HeaderBytes)
			ack.AckSeq = int64(slot.got)
			c.N.TxFromKernel(ack)
		}
		if slot.got >= c.cfg.Segments && !slot.done {
			slot.done = true
			slot.wq.WakeOne()
		}
	case netstack.Fin:
		// Four-way teardown: ACK the server's FIN and close our side.
		c.N.TxFromKernel(
			slot.pkt(netstack.Ack, c.cfg.HeaderBytes),
			slot.pkt(netstack.Fin, c.cfg.HeaderBytes),
		)
	}
}
