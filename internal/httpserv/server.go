// Package httpserv models the web servers of the paper's evaluation —
// Apache-1.3.3 (multi-process) and Flash (event-driven) — serving a fixed
// 6 KB file to saturating clients over a LAN, on top of the simulated
// kernel and NIC. It drives the experiments behind Figures 2–3 and
// Tables 1–3 and 8.
//
// The LAN request/response exchange is scripted at packet granularity
// (SYN/SYNACK, request, data segments, FIN) rather than run through the
// full TCP machinery in package tcp: FreeBSD's TCP does not slow-start on
// a LAN, so every response goes out as one burst and the experiments
// measure CPU cost, not window dynamics (see DESIGN.md). Response data can
// be transmitted three ways, mirroring Section 5.6's comparison: the
// normal in-syscall burst, rate-based clocking via soft timers (one packet
// per trigger state), or rate-based clocking via a hardware interval
// timer.
package httpserv

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/flowtrace"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

// Kind selects the server model.
type Kind int

const (
	// Apache is the multi-process server.
	Apache Kind = iota
	// Flash is the single-process event-driven server.
	Flash
)

// String names the kind.
func (k Kind) String() string {
	if k == Apache {
		return "Apache"
	}
	return "Flash"
}

// TxMode selects how response data packets are transmitted.
type TxMode int

const (
	// TxBurst is conventional: all segments leave in one TCP output loop
	// inside the send syscall.
	TxBurst TxMode = iota
	// TxSoftPaced is rate-based clocking with soft timers: one segment
	// per soft-timer event, the event firing at every trigger state
	// (Section 5.6's soft-timer configuration).
	TxSoftPaced
	// TxHWPaced is rate-based clocking with a hardware interval timer:
	// each timer interrupt dispatches a software-interrupt thread that
	// transmits one pending segment.
	TxHWPaced
	// TxPacerPaced is rate-based clocking through the Section 4.1 adaptive
	// pacer (core.Pacer): packets are spaced at PacerInterval, falling
	// back to PacerBurstInterval whenever the achieved rate lags the
	// target. Unlike TxSoftPaced's always-due event (one packet per
	// trigger state, as fast as trigger states arrive), the pacer holds a
	// deliberate rate — the discipline emulation mode uses to pace real
	// socket writes.
	TxPacerPaced
)

// Config configures a Server.
type Config struct {
	Kind   Kind
	Script Script // zero value: chosen by Kind
	// Workers is the process count (Apache default 16, Flash always 1).
	Workers int
	// FileBytes is the response size (default 6144, the paper's 6 KB).
	FileBytes int
	// MSS and HeaderBytes shape packets (defaults 1448/52).
	MSS, HeaderBytes int
	// TxMode selects the transmission discipline for response data.
	TxMode TxMode
	// HWPacerPeriod is the hardware timer period in TxHWPaced mode
	// (default 20 µs — the paper's 50 KHz).
	HWPacerPeriod sim.Time
	// PacerInterval is the target packet spacing in TxPacerPaced mode
	// (default 100 µs, 10k packets/s).
	PacerInterval sim.Time
	// PacerBurstInterval is the TxPacerPaced catch-up spacing — the
	// tightest gap allowed when the achieved rate falls behind the target
	// (default 20 µs).
	PacerBurstInterval sim.Time
	// PacedExtraWork is the additional per-packet cost of transmitting
	// from a timer event rather than the in-syscall output loop (scattered
	// code path, per-event bookkeeping).
	PacedExtraWork sim.Time
	// Persistent enables P-HTTP: connections carry many requests and
	// connection setup/teardown is amortized away.
	Persistent bool
}

func (c *Config) setDefaults() {
	if c.Script.SendSyscall.Work == 0 {
		if c.Kind == Apache {
			c.Script = ApacheScript()
		} else {
			c.Script = FlashScript()
		}
	}
	if c.Workers == 0 {
		if c.Kind == Apache {
			c.Workers = 16
		} else {
			c.Workers = 1
		}
	}
	if c.Kind == Flash {
		c.Workers = 1
	}
	if c.FileBytes == 0 {
		c.FileBytes = 6144
	}
	if c.MSS == 0 {
		c.MSS = 1448
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 52
	}
	if c.HWPacerPeriod == 0 {
		c.HWPacerPeriod = 20 * sim.Microsecond
	}
	if c.PacerInterval == 0 {
		c.PacerInterval = 100 * sim.Microsecond
	}
	if c.PacerBurstInterval == 0 {
		c.PacerBurstInterval = 20 * sim.Microsecond
	}
	if c.PacedExtraWork == 0 {
		c.PacedExtraWork = sim.Micros(2.5)
	}
}

// conn is the server-side connection state.
type conn struct {
	flow    int
	peer    netstack.Addr // client host address, for switched topologies
	fresh   bool          // no request served yet on this connection
	pending bool          // a request is waiting for a worker
	traced  bool          // the client's SYN carried a trace span
}

// Server is the simulated web server.
type Server struct {
	k    *kernel.Kernel
	f    *core.Facility
	nics []*nic.NIC
	cfg  Config

	// Addr is the server's host address, stamped as Src on every reply so
	// switches can forward by address. Zero (the default) leaves packets
	// unaddressed — correct for the point-to-point testbed links.
	Addr netstack.Addr

	// FlowTrace, when set, allocates spans for replies on connections whose
	// SYN carried a span — the server inherits the client's per-flow
	// sampling decision, so both directions of a traced flow are recorded
	// without a second RNG draw.
	FlowTrace *flowtrace.Sampler

	conns    map[int]*conn
	reqQ     []*conn
	workerWQ kernel.WaitQueue

	// arena is the packet pool replies are acquired from (the NICs' pool,
	// topology-wired; nil falls back to heap literals). respBuf is the
	// response-assembly scratch, reused per send — safe because both
	// transmit disciplines copy the packet pointers out synchronously.
	arena   *netstack.Arena
	respBuf []*netstack.Packet

	// freshScript is ConnStart + PreSend, concatenated once at build so
	// fresh non-persistent requests don't rebuild it per connection.
	freshScript []ReqStep

	// Paced-transmission state.
	txQ        []*netstack.Packet
	softEvUp   bool
	pacer      *core.Pacer // TxPacerPaced transmission clock
	pit        *kernel.PIT
	lastPaced  sim.Time
	pacedCount int64
	backlogged bool // the previous paced send left packets waiting
	hwInFlight bool // a HW-paced transmission thread is still running

	// Completed counts fully-transmitted responses.
	Completed int64
	// PacedIntervals records inter-transmission gaps in µs for the
	// paced modes (Table 3's "Avg xmit intvl" row).
	PacedIntervals *stats.Online

	rng interface{ Float64() float64 }
}

// NewServer builds a server on kernel k using NIC n. The facility f is
// required for TxSoftPaced mode.
func NewServer(k *kernel.Kernel, f *core.Facility, n *nic.NIC, cfg Config) *Server {
	return NewServerMulti(k, f, []*nic.NIC{n}, cfg)
}

// NewServerMulti builds a server with several network interfaces;
// connections are distributed across them by flow id (the paper's Table 8
// machine had four Fast Ethernet NICs, one client machine on each).
func NewServerMulti(k *kernel.Kernel, f *core.Facility, nics []*nic.NIC, cfg Config) *Server {
	cfg.setDefaults()
	if (cfg.TxMode == TxSoftPaced || cfg.TxMode == TxPacerPaced) && f == nil {
		panic("httpserv: soft-timer paced modes require a facility")
	}
	if len(nics) == 0 {
		panic("httpserv: server needs at least one NIC")
	}
	s := &Server{
		k: k, f: f, nics: nics, cfg: cfg,
		arena:          nics[0].Arena(),
		conns:          make(map[int]*conn),
		PacedIntervals: &stats.Online{},
		rng:            k.Engine().Rand().Fork(),
	}
	s.freshScript = append(append([]ReqStep{}, cfg.Script.ConnStart...), cfg.Script.PreSend...)
	for _, n := range nics {
		n.RxHandler = s.handleRx
	}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("%s-worker-%d", cfg.Kind, i)
		w := k.Spawn(name, s.workerLoop)
		w.PollutionFactor = cfg.Script.PollutionFactor
	}
	if cfg.TxMode == TxHWPaced {
		s.pit = k.NewPIT(cfg.HWPacerPeriod, sim.Microsecond, s.hwPacerTick)
	}
	if cfg.TxMode == TxPacerPaced {
		s.pacer = core.NewPacer(f, cfg.PacerInterval, cfg.PacerBurstInterval,
			func(now sim.Time) (sim.Time, bool) {
				cost := s.sendPacedOne()
				return cost, len(s.txQ) > 0
			})
	}
	return s
}

// Pacer returns the adaptive transmission pacer (TxPacerPaced mode only;
// nil otherwise). Emulation rigs read its train/fire counters.
func (s *Server) Pacer() *core.Pacer { return s.pacer }

// Start arms auxiliary machinery (the HW pacer timer). Call after
// kernel.Start.
func (s *Server) Start() {
	if s.pit != nil {
		s.pit.Start()
	}
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// nicFor returns the interface serving a connection (flows are pinned to
// NICs by id, as the paper pinned one client machine per interface).
func (s *Server) nicFor(flow int) *nic.NIC {
	if flow < 0 {
		flow = -flow
	}
	return s.nics[flow%len(s.nics)]
}

// segments returns the number of data segments in a response: the HTTP
// header packet (Apache-1.3 sent response headers in their own segment)
// plus the file body.
func (s *Server) segments() int {
	return 1 + (s.cfg.FileBytes+s.cfg.MSS-1)/s.cfg.MSS
}

// Segments exposes the per-response data-segment count for clients that
// must know when a response is complete.
func (s *Server) Segments() int { return s.segments() }

// newPkt acquires an addressed reply packet on flow toward dst.
func (s *Server) newPkt(flow int, dst netstack.Addr, kind netstack.Kind, size int) *netstack.Packet {
	p := s.arena.Get()
	p.Flow, p.Src, p.Dst, p.Kind, p.Size = flow, s.Addr, dst, kind, size
	return p
}

// handleRx is the protocol-input handler, running in kernel rx context.
func (s *Server) handleRx(p *netstack.Packet) {
	switch p.Kind {
	case netstack.Syn:
		c := &conn{flow: p.Flow, peer: p.Src, fresh: true, traced: p.Trace != nil}
		s.conns[p.Flow] = c
		s.nicFor(p.Flow).TxFromKernel(s.tracePkt(c, s.newPkt(p.Flow, p.Src, netstack.SynAck, s.cfg.HeaderBytes)))
	case netstack.Request:
		c := s.conns[p.Flow]
		if c == nil {
			// Persistent connections may predate the server (warm
			// start); adopt them.
			c = &conn{flow: p.Flow, peer: p.Src, fresh: false, traced: p.Trace != nil}
			s.conns[p.Flow] = c
		}
		if c.pending {
			return
		}
		c.pending = true
		s.reqQ = append(s.reqQ, c)
		// ACK the request segment (TCP acks data carrying a push).
		s.nicFor(p.Flow).TxFromKernel(s.tracePkt(c, s.newPkt(p.Flow, c.peer, netstack.Ack, s.cfg.HeaderBytes)))
		s.workerWQ.WakeOne()
	case netstack.Ack:
		// Window bookkeeping only; cost charged in the rx path.
	case netstack.Fin:
		ack := s.newPkt(p.Flow, p.Src, netstack.Ack, s.cfg.HeaderBytes)
		if p.Trace != nil && s.FlowTrace != nil {
			ack.Trace = s.FlowTrace.StartSpan()
		}
		s.nicFor(p.Flow).TxFromKernel(ack)
		delete(s.conns, p.Flow)
	}
}

// tracePkt attaches a span to a reply on a traced connection.
func (s *Server) tracePkt(c *conn, p *netstack.Packet) *netstack.Packet {
	if c.traced && s.FlowTrace != nil {
		p.Trace = s.FlowTrace.StartSpan()
	}
	return p
}

// workerLoop is the per-process server loop: take a pending request, run
// the request script, transmit the response, close if HTTP.
func (s *Server) workerLoop(p *kernel.Proc) {
	var next func()
	next = func() {
		if len(s.reqQ) == 0 {
			p.Sleep(&s.workerWQ, next)
			return
		}
		c := s.reqQ[0]
		s.reqQ = s.reqQ[1:]
		c.pending = false
		start := s.cfg.Script.PreSend
		if c.fresh && !s.cfg.Persistent {
			start = s.freshScript
		}
		c.fresh = false
		s.runScript(p, start, func() {
			s.sendResponse(p, c, func() {
				s.runScript(p, s.cfg.Script.PostSend, func() {
					if !s.cfg.Persistent {
						s.runScript(p, s.cfg.Script.ConnEnd, next)
						return
					}
					next()
				})
			})
		})
	}
	next()
}

// runScript executes request-script steps in order, then cont.
func (s *Server) runScript(p *kernel.Proc, steps []ReqStep, cont func()) {
	if len(steps) == 0 {
		cont()
		return
	}
	st := steps[0]
	rest := steps[1:]
	next := func() { s.runScript(p, rest, cont) }
	if st.Prob > 0 && s.rng.Float64() >= st.Prob {
		next()
		return
	}
	switch st.Kind {
	case StepSyscall:
		p.Syscall(st.Name, st.Work, next)
	case StepTrap:
		p.Trap(st.Name, st.Work, next)
	default:
		p.Compute(st.Work, next)
	}
}

// responsePackets builds the data segments (the last carries the FIN for
// non-persistent connections, as BSD piggybacks close on the final
// segment; we keep FIN separate for packet accounting clarity). The
// returned slice is the server's reusable scratch: callers must copy the
// pointers out before yielding the CPU.
func (s *Server) responsePackets(c *conn) []*netstack.Packet {
	nseg := s.segments()
	pkts := s.respBuf[:0]
	hdr := s.newPkt(c.flow, c.peer, netstack.Data, 290+s.cfg.HeaderBytes) // HTTP response headers
	hdr.Payload = 290
	pkts = append(pkts, hdr)
	remaining := s.cfg.FileBytes
	for i := 1; i < nseg; i++ {
		payload := s.cfg.MSS
		if remaining < payload {
			payload = remaining
		}
		remaining -= payload
		seg := s.newPkt(c.flow, c.peer, netstack.Data, payload+s.cfg.HeaderBytes)
		seg.Seq = int64(i)
		seg.Payload = payload
		pkts = append(pkts, seg)
	}
	if !s.cfg.Persistent {
		pkts = append(pkts, s.newPkt(c.flow, c.peer, netstack.Fin, s.cfg.HeaderBytes))
	}
	if c.traced && s.FlowTrace != nil {
		// Spans attach after Seq/Payload are final; every segment of a
		// traced flow gets one, in response order.
		for _, pkt := range pkts {
			pkt.Trace = s.FlowTrace.StartSpan()
		}
	}
	s.respBuf = pkts
	return pkts
}

// sendResponse performs the send syscall and transmits the response data
// according to the configured TxMode, then cont. The worker does not wait
// for paced transmission (socket-buffer semantics): pacing hardware/soft
// events drain the queue while the worker moves on.
func (s *Server) sendResponse(p *kernel.Proc, c *conn, cont func()) {
	sy := s.cfg.Script.SendSyscall
	p.Syscall(sy.Name, sy.Work, func() {
		// Built here, inside the syscall continuation, so the scratch
		// buffer is consumed before any other worker can reuse it.
		pkts := s.responsePackets(c)
		switch s.cfg.TxMode {
		case TxBurst:
			// Completion is the final segment leaving ip-output — the same
			// instant the chain completes.
			p.ChainC(s.nicFor(c.flow).TxChainOf(pkts...), func() {
				s.Completed++
				cont()
			})
		default:
			s.enqueuePaced(pkts)
			cont()
		}
	})
}

// enqueuePaced queues response packets for timer-driven transmission,
// marking the train's last packet so its send counts a completion.
func (s *Server) enqueuePaced(pkts []*netstack.Packet) {
	pkts[len(pkts)-1].Mark = true
	s.txQ = append(s.txQ, pkts...)
	switch s.cfg.TxMode {
	case TxSoftPaced:
		s.armSoftPacer()
	case TxPacerPaced:
		s.pacer.Start() // idempotent while a train is running
	}
}

// popPaced removes the head of the paced queue, recording the interval
// since the previous send — but only when the packet was already waiting
// then (a backlogged interval, the quantity Table 3 reports) — and
// counting response completions.
func (s *Server) popPaced() *netstack.Packet {
	if len(s.txQ) == 0 {
		s.backlogged = false
		return nil
	}
	pkt := s.txQ[0]
	s.txQ = s.txQ[1:]
	now := s.k.Now()
	if s.backlogged {
		s.PacedIntervals.Add((now - s.lastPaced).Micros())
	}
	s.pacedCount++
	s.lastPaced = now
	// The next interval is back-to-back only if more packets wait now.
	s.backlogged = len(s.txQ) > 0
	if pkt.Mark {
		s.Completed++
	}
	return pkt
}

// sendPacedOne transmits the head of the paced queue. Returns the CPU cost
// of the transmission.
func (s *Server) sendPacedOne() sim.Time {
	pkt := s.popPaced()
	if pkt == nil {
		return 0
	}
	return s.nicFor(pkt.Flow).TransmitNow(pkt) + s.cfg.PacedExtraWork
}

// armSoftPacer schedules the always-due soft event that transmits one
// packet per trigger state while the queue is non-empty.
func (s *Server) armSoftPacer() {
	if s.softEvUp || len(s.txQ) == 0 {
		return
	}
	s.softEvUp = true
	s.f.ScheduleSoftEvent(0, func(now sim.Time) sim.Time {
		s.softEvUp = false
		cost := s.sendPacedOne()
		s.armSoftPacer()
		return cost
	})
}

// hwPacerTick is the hardware timer handler for TxHWPaced: dispatch a
// software-interrupt thread that transmits one pending packet. Ticks that
// arrive while the previous transmission's thread is still in flight are
// lost, reproducing the paper's observation that hardware-timer pacing
// falls short of its programmed rate ("some timer interrupts are lost
// during periods when interrupts are disabled in FreeBSD").
func (s *Server) hwPacerTick() {
	if len(s.txQ) == 0 || s.hwInFlight {
		return
	}
	s.hwInFlight = true
	s.k.PostSoftIRQ(kernel.ChainStep{
		Work: s.nics[0].Cfg().Costs.TxWork + s.cfg.PacedExtraWork,
		Src:  kernel.SrcIPOutput,
		Fn: func() {
			// Cost is charged by this chain step; transmit without
			// re-charging.
			s.hwInFlight = false
			if pkt := s.popPaced(); pkt != nil {
				s.nicFor(pkt.Flow).TransmitRaw(pkt)
			}
		},
	})
}
