package httpserv

import (
	"bytes"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// hostileTestbed assembles the full LAN rig — kernel, NICs, links, server,
// clients — under a hostile fault plan with an execution tracer attached,
// runs it briefly, and returns the telemetry JSON and Chrome trace bytes.
func hostileTestbed(t *testing.T, seed uint64) (metricsJSON, traceJSON []byte) {
	t.Helper()
	spec, ok := faults.LookupScenario("hostile")
	if !ok {
		t.Fatal("hostile scenario missing")
	}
	tb := NewTestbed(TestbedConfig{
		Seed:        seed,
		Concurrency: 8,
		NICCount:    2,
		Server:      Config{Kind: Flash},
		Faults:      faults.New(seed, spec),
	})
	tr := trace.New(64_000)
	tb.K.SetTracer(tr)
	tb.Run(50*sim.Millisecond, 200*sim.Millisecond)

	var mb, tbuf bytes.Buffer
	if err := tb.Metrics().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&tbuf); err != nil {
		t.Fatal(err)
	}
	return mb.Bytes(), tbuf.Bytes()
}

// TestFaultyRunReplaysByteIdentically is the determinism contract for the
// fault-injection layer on the full substrate: running the same hostile
// scenario twice from one seed yields byte-identical telemetry snapshots
// AND byte-identical execution traces; a different seed yields a different
// run (so the comparison is not vacuous).
func TestFaultyRunReplaysByteIdentically(t *testing.T) {
	m1, tr1 := hostileTestbed(t, 42)
	m2, tr2 := hostileTestbed(t, 42)
	if !bytes.Equal(m1, m2) {
		t.Error("same seed: telemetry snapshots differ between runs")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("same seed: Chrome traces differ between runs")
	}
	if len(tr1) < 1000 {
		t.Fatalf("trace suspiciously small (%d bytes): rig not exercising the kernel", len(tr1))
	}

	m3, tr3 := hostileTestbed(t, 43)
	if bytes.Equal(m1, m3) {
		t.Error("different seeds produced identical telemetry — faults not seed-driven?")
	}
	if bytes.Equal(tr1, tr3) {
		t.Error("different seeds produced identical traces")
	}

	// The hostile plan must actually be biting: fault counters non-zero.
	tb := NewTestbed(TestbedConfig{
		Seed: 42, Concurrency: 8, Server: Config{Kind: Flash},
		Faults: faults.New(42, faults.MustScenario("hostile")),
	})
	tb.Run(50*sim.Millisecond, 200*sim.Millisecond)
	snap := tb.Metrics()
	for _, c := range []string{"faults.pkts_dropped", "faults.triggers_starved", "faults.intr_jitter_ns"} {
		if snap.Counters[c] == 0 {
			t.Errorf("hostile run recorded zero %s", c)
		}
	}
}
