package httpserv

import (
	"testing"

	"softtimers/internal/kernel"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

func TestKindString(t *testing.T) {
	if Apache.String() != "Apache" || Flash.String() != "Flash" {
		t.Fatal("kind names wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Kind: Apache}
	c.setDefaults()
	if c.Workers != 16 || c.FileBytes != 6144 || c.MSS != 1448 {
		t.Fatalf("apache defaults: %+v", c)
	}
	if len(c.Script.PreSend) == 0 {
		t.Fatal("script not defaulted")
	}
	f := Config{Kind: Flash, Workers: 8}
	f.setDefaults()
	if f.Workers != 1 {
		t.Fatalf("flash workers = %d, must be forced to 1 (event-driven)", f.Workers)
	}
}

func TestResponseSegmentation(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 3, Server: Config{Kind: Apache}})
	// 6144B at MSS 1448 = 5 body segments, plus the header packet.
	if got := tb.Server.segments(); got != 6 {
		t.Fatalf("segments = %d, want 6", got)
	}
	pkts := tb.Server.responsePackets(&conn{flow: 1})
	if len(pkts) != 7 { // 6 data + FIN (non-persistent)
		t.Fatalf("packets = %d, want 7 (6 data + FIN)", len(pkts))
	}
	var payload int
	for _, p := range pkts {
		payload += p.Payload
	}
	if payload != 6144+290 {
		t.Fatalf("total payload = %d, want file + header bytes", payload)
	}
}

func TestPersistentResponseHasNoFin(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 3, Server: Config{Kind: Apache, Persistent: true}})
	pkts := tb.Server.responsePackets(&conn{flow: 1})
	for _, p := range pkts {
		if p.Kind != 0 && p.Kind.String() == "fin" {
			t.Fatal("persistent response carries FIN")
		}
	}
	if len(pkts) != 6 {
		t.Fatalf("packets = %d, want 6", len(pkts))
	}
}

func TestServedRequestsCompleteEndToEnd(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 4, Concurrency: 4, Server: Config{Kind: Apache}})
	res := tb.Run(0, 500*sim.Millisecond)
	if res.Completed < 50 {
		t.Fatalf("completed %d responses in 500ms, want many", res.Completed)
	}
	// Client view and server view must roughly agree (in-flight skew).
	diff := tb.Server.Completed - tb.Clients.Responses
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(tb.Clients.Concurrency) {
		t.Fatalf("server completed %d vs client %d", tb.Server.Completed, tb.Clients.Responses)
	}
	if tb.Clients.ResponseTimes.N() == 0 {
		t.Fatal("no response times recorded")
	}
}

func TestApacheCalibrationMatchesPaper(t *testing.T) {
	// Section 5.1/5.3/5.5 targets: ~774 conn/s, mean trigger interval
	// ~31.5us, median ~18us, and Table 2's source mix.
	tb := NewTestbed(TestbedConfig{Seed: 1, Server: Config{Kind: Apache}})
	res := tb.Run(2*sim.Second, 4*sim.Second)
	if res.Throughput < 700 || res.Throughput > 860 {
		t.Errorf("throughput = %.0f conn/s, want ~774 (+-11%%)", res.Throughput)
	}
	if res.BusyFrac < 0.97 {
		t.Errorf("busy = %.2f, server must be saturated", res.BusyFrac)
	}
	m := tb.K.Meter()
	if mean := m.Hist.Mean(); mean < 26 || mean > 38 {
		t.Errorf("mean trigger interval = %.1fus, want ~31.5", mean)
	}
	if med := m.Hist.Quantile(0.5); med < 13 || med > 24 {
		t.Errorf("median trigger interval = %.1fus, want ~18", med)
	}
	// Table 2 mix over the five reported sources.
	reported := []kernel.Source{kernel.SrcSyscall, kernel.SrcIPOutput, kernel.SrcIPIntr,
		kernel.SrcTCPIPOther, kernel.SrcTrap}
	var total int64
	for _, s := range reported {
		total += m.BySource[s]
	}
	frac := func(s kernel.Source) float64 { return float64(m.BySource[s]) / float64(total) * 100 }
	checks := []struct {
		src      kernel.Source
		lo, hi   float64
		paperVal float64
	}{
		{kernel.SrcSyscall, 42, 56, 47.7},
		{kernel.SrcIPOutput, 20, 34, 28},
		{kernel.SrcIPIntr, 11, 21, 16.4},
		{kernel.SrcTCPIPOther, 3, 9, 5.4},
		{kernel.SrcTrap, 1, 4.5, 2.5},
	}
	for _, c := range checks {
		if f := frac(c.src); f < c.lo || f > c.hi {
			t.Errorf("%v fraction = %.1f%%, want near paper's %.1f%%", c.src, f, c.paperVal)
		}
	}
}

func TestFlashCalibrationMatchesPaper(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 1, Server: Config{Kind: Flash}})
	res := tb.Run(2*sim.Second, 4*sim.Second)
	if res.Throughput < 1150 || res.Throughput > 1450 {
		t.Errorf("throughput = %.0f conn/s, want ~1303 (+-11%%)", res.Throughput)
	}
	m := tb.K.Meter()
	if mean := m.Hist.Mean(); mean < 19 || mean > 28 {
		t.Errorf("mean trigger interval = %.1fus, want ~22.5", mean)
	}
	if med := m.Hist.Quantile(0.5); med < 11 || med > 21 {
		t.Errorf("median trigger interval = %.1fus, want ~17", med)
	}
}

func TestFlashFasterThanApache(t *testing.T) {
	a := NewTestbed(TestbedConfig{Seed: 2, Server: Config{Kind: Apache}}).
		Run(sim.Second, 2*sim.Second)
	f := NewTestbed(TestbedConfig{Seed: 2, Server: Config{Kind: Flash}}).
		Run(sim.Second, 2*sim.Second)
	if f.Throughput <= a.Throughput*1.3 {
		t.Fatalf("Flash (%.0f) should be well ahead of Apache (%.0f)", f.Throughput, a.Throughput)
	}
}

func TestPersistentHTTPFasterThanHTTP(t *testing.T) {
	// Table 8: P-HTTP amortizes connection setup across requests —
	// higher request rates for both servers.
	http := NewTestbed(TestbedConfig{Seed: 5, Server: Config{Kind: Apache}}).
		Run(sim.Second, 2*sim.Second)
	phttp := NewTestbed(TestbedConfig{Seed: 5, Server: Config{Kind: Apache, Persistent: true}}).
		Run(sim.Second, 2*sim.Second)
	if phttp.Throughput <= http.Throughput*1.2 {
		t.Fatalf("P-HTTP (%.0f) should beat HTTP (%.0f) clearly", phttp.Throughput, http.Throughput)
	}
}

func TestSoftPacedModeTransmitsEverything(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 6, Concurrency: 8,
		Server: Config{Kind: Apache, TxMode: TxSoftPaced}})
	res := tb.Run(sim.Second, 2*sim.Second)
	if res.Completed < 100 {
		t.Fatalf("soft-paced server completed only %d", res.Completed)
	}
	if tb.Server.PacedIntervals.N() == 0 {
		t.Fatal("no paced intervals recorded")
	}
	// One packet per trigger state: mean paced interval should be near
	// the trigger-interval mean (tens of µs), not milliseconds.
	if mean := tb.Server.PacedIntervals.Mean(); mean > 100 {
		t.Fatalf("mean paced interval = %.1fus, too slow", mean)
	}
}

func TestPacerPacedModeHoldsTargetRate(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 6, Concurrency: 8,
		Server: Config{Kind: Apache, TxMode: TxPacerPaced,
			PacerInterval: 50 * sim.Microsecond, PacerBurstInterval: 10 * sim.Microsecond}})
	res := tb.Run(sim.Second, 2*sim.Second)
	if res.Completed < 50 {
		t.Fatalf("pacer-paced server completed only %d", res.Completed)
	}
	if tb.Server.Pacer() == nil {
		t.Fatal("TxPacerPaced built no pacer")
	}
	if tb.Server.PacedIntervals.N() == 0 {
		t.Fatal("no paced intervals recorded")
	}
	// The adaptive pacer holds the 50 µs target (catching up at 10 µs when
	// behind), so backlogged intervals sit near the target — unlike
	// TxSoftPaced, which sends one packet per trigger state.
	mean := tb.Server.PacedIntervals.Mean()
	if mean < 25 || mean > 75 {
		t.Fatalf("mean paced interval = %.1fus, want near the 50us target", mean)
	}
}

func TestHWPacedModeTransmitsEverything(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 7, Concurrency: 8,
		Server: Config{Kind: Apache, TxMode: TxHWPaced}})
	res := tb.Run(sim.Second, 2*sim.Second)
	if res.Completed < 100 {
		t.Fatalf("hw-paced server completed only %d", res.Completed)
	}
	// The 20us hardware timer sends at most one packet per tick; with
	// interrupts lost under load the interval sits a bit above 20us.
	mean := tb.Server.PacedIntervals.Mean()
	if mean < 19 || mean > 60 {
		t.Fatalf("mean hw-paced interval = %.1fus, want ~20-40us", mean)
	}
}

func TestTxModesRankLikeTable3(t *testing.T) {
	// Table 3: base > soft-paced (2-6% loss) > hw-paced (28-36% loss).
	base := NewTestbed(TestbedConfig{Seed: 8, Server: Config{Kind: Apache}}).
		Run(sim.Second, 3*sim.Second)
	soft := NewTestbed(TestbedConfig{Seed: 8, Server: Config{Kind: Apache, TxMode: TxSoftPaced}}).
		Run(sim.Second, 3*sim.Second)
	hw := NewTestbed(TestbedConfig{Seed: 8, Server: Config{Kind: Apache, TxMode: TxHWPaced}}).
		Run(sim.Second, 3*sim.Second)
	if !(base.Throughput > soft.Throughput && soft.Throughput > hw.Throughput) {
		t.Fatalf("ordering wrong: base=%.0f soft=%.0f hw=%.0f",
			base.Throughput, soft.Throughput, hw.Throughput)
	}
	softOvhd := 1 - soft.Throughput/base.Throughput
	hwOvhd := 1 - hw.Throughput/base.Throughput
	if softOvhd > 0.12 {
		t.Errorf("soft-timer pacing overhead = %.0f%%, want small (paper: 2%%)", softOvhd*100)
	}
	if hwOvhd < 0.15 {
		t.Errorf("hw-timer pacing overhead = %.0f%%, want large (paper: 28%%)", hwOvhd*100)
	}
}

func TestPollingModeServesRequests(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 9, Concurrency: 8,
		NIC:    nic.Config{Mode: nic.SoftPoll},
		Server: Config{Kind: Flash}})
	res := tb.Run(sim.Second, 2*sim.Second)
	if res.Completed < 100 {
		t.Fatalf("polled server completed only %d", res.Completed)
	}
	if tb.NIC.RxInterrupts > tb.NIC.Polls {
		t.Fatalf("polling mode took %d interrupts vs %d polls", tb.NIC.RxInterrupts, tb.NIC.Polls)
	}
}

func TestClientGenValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClientGen(eng, nil, 0, 5, false)
}
