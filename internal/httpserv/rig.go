package httpserv

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/topology"
)

// Testbed assembles the paper's LAN experiment setup: a server machine
// (simulated kernel + soft-timer facility + one or more NICs) and client
// machines connected by switched 100 Mbps Ethernet, with a saturating
// request load. Flows are pinned to NICs by id, one client group per
// interface, as in the paper's four-NIC Table 8 machine.
//
// Testbed is now a thin wrapper over the host/topology layer: the server
// machine is a host.Host and the per-NIC duplex links are topology ports,
// assembled in the exact order the old hand-wiring used so existing seeded
// scenarios replay byte-identically. The clients remain the synthetic
// ClientGen (their CPUs are not under study here); experiments that need
// real client kernels build a multi-host topology instead (see the
// fleet-scale experiment).
type Testbed struct {
	Eng     *sim.Engine
	K       *kernel.Kernel
	F       *core.Facility
	NIC     *nic.NIC // the first interface (convenience for 1-NIC rigs)
	NICs    []*nic.NIC
	Server  *Server
	Clients *ClientGen

	// Net and ServerHost expose the underlying topology and server
	// machine for callers composing beyond the classic single-server rig.
	Net        *topology.Topology
	ServerHost *host.Host

	started bool
}

// TestbedConfig configures testbed assembly.
type TestbedConfig struct {
	Seed     uint64
	Profile  cpu.Profile    // zero Name: PentiumII300
	Kernel   kernel.Options // IdleLoop defaults true
	Facility core.Options   // soft-timer facility options
	NIC      nic.Config     // zero Costs: DefaultCosts
	Server   Config
	// Concurrency is the number of simultaneous client connections
	// (default 32 — enough to saturate).
	Concurrency int
	// LinkBps and LinkDelay describe each LAN segment (defaults 100
	// Mbps, 30 µs).
	LinkBps   int64
	LinkDelay sim.Time
	// NICCount is the number of server network interfaces, each with its
	// own duplex link (default 1; the paper's Table 8 machine had 4).
	NICCount int
	// Faults, when set, threads the fault plan through the rig: it is
	// installed on the kernel (trigger starvation, interrupt jitter,
	// CPU-cost noise), on every LAN link (drop/dup/reorder), and on each
	// NIC's receive ring, and its counters join the rig's registry.
	Faults *faults.Plan
	// Shards, when > 0, runs the rig on a conservative-sync shard group
	// instead of the bare engine. The testbed has one host, so the group
	// is always a single shard; the knob exists to prove the rig replays
	// byte-identically under the sharded executor (asserted by property
	// tests, including under hostile fault scenarios).
	Shards int
}

// NewTestbed wires everything together. Call Run to execute.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 32
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 100_000_000
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 30 * sim.Microsecond
	}
	kOpts := cfg.Kernel
	if !kOpts.IdleLoop {
		kOpts.IdleLoop = true
	}
	if cfg.NICCount == 0 {
		cfg.NICCount = 1
	}

	tb := &Testbed{}
	seed := cfg.Seed + 1
	if cfg.Shards > 0 {
		g := sim.NewShardGroup(1, seed)
		tb.Eng = g.Engine(0)
		tb.Net = topology.NewSharded(g, seed)
	} else {
		tb.Eng = sim.NewEngine(seed)
		tb.Net = topology.New(tb.Eng)
		tb.Net.SetSeed(seed)
	}
	tb.ServerHost = tb.Net.AddHost(host.Config{
		Name:     "server",
		Profile:  cfg.Profile,
		Kernel:   kOpts,
		Facility: cfg.Facility,
		Faults:   cfg.Faults,
	})
	tb.K = tb.ServerHost.K
	tb.F = tb.ServerHost.F

	// Client side and links: one duplex link pair per NIC; flows are
	// pinned to interfaces by id, matching the server's routing. The
	// generator is created lazily because the server→client links need
	// the client endpoint and vice versa.
	var clients *ClientGen
	clientSide := netstack.EndpointFunc(func(p *netstack.Packet) { clients.Deliver(p) })
	upLinks := make([]*netstack.Link, cfg.NICCount)
	for i := 0; i < cfg.NICCount; i++ {
		name := fmt.Sprintf("%d", i)
		nicCfg := cfg.NIC
		nicCfg.Name = "nic" + name
		port := tb.Net.AttachNIC(tb.ServerHost, nicCfg, clientSide, topology.WireSpec{
			Bps:      cfg.LinkBps,
			Delay:    cfg.LinkDelay,
			DownName: "down" + name,
			UpName:   "up" + name,
		})
		upLinks[i] = port.Up
	}
	tb.NICs = tb.ServerHost.NICs
	tb.NIC = tb.NICs[0]

	tb.Server = NewServerMulti(tb.K, tb.F, tb.NICs, cfg.Server)
	segs := tb.Server.segments()
	toServer := netstack.EndpointFunc(func(p *netstack.Packet) {
		flow := p.Flow
		if flow < 0 {
			flow = -flow
		}
		upLinks[flow%len(upLinks)].Send(p)
	})
	clients = NewClientGen(tb.Eng, toServer, cfg.Concurrency, segs, cfg.Server.Persistent)
	clients.Arena = tb.Net.Arena(0)
	tb.Clients = clients
	return tb
}

// Result summarizes one testbed run.
type Result struct {
	// Throughput is completed responses per second over the measurement
	// window (the paper's conn/s for HTTP, req/s for P-HTTP).
	Throughput float64
	// Completed is the raw response count in the window.
	Completed int64
	// BusyFrac is the server CPU's non-idle fraction over the window.
	BusyFrac float64
	// MeanTriggerUS is the mean trigger-state interval in µs over the
	// whole run (warmup included; intervals are stationary).
	MeanTriggerUS float64
}

// Metrics snapshots the testbed's telemetry registry (the server kernel's —
// every layer of the rig registers its instruments there).
func (tb *Testbed) Metrics() *metrics.Snapshot {
	return tb.K.Metrics().Snapshot()
}

// Start spins up the kernel, NIC, server and clients. Run calls it
// automatically; call it directly when other machinery (e.g. an extra
// hardware timer) must start before the measurement window.
func (tb *Testbed) Start() {
	if tb.started {
		return
	}
	tb.started = true
	tb.ServerHost.Start()
	tb.Server.Start()
	tb.Clients.Start()
}

// Run starts everything, runs warmup (discarded), then measures for the
// given duration.
func (tb *Testbed) Run(warmup, measure sim.Time) Result {
	tb.Start()
	tb.Net.RunFor(warmup)
	c0 := tb.Server.Completed
	a0 := tb.K.Accounting()
	t0 := tb.Net.Now()
	tb.Net.RunFor(measure)
	c1 := tb.Server.Completed
	a1 := tb.K.Accounting()
	elapsed := tb.Net.Now() - t0
	res := Result{
		Completed:     c1 - c0,
		Throughput:    float64(c1-c0) / elapsed.Seconds(),
		BusyFrac:      float64(a1.Busy()-a0.Busy()) / float64(elapsed),
		MeanTriggerUS: tb.K.Meter().Hist.Mean(),
	}
	return res
}
