package httpserv

import (
	"testing"

	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

func TestMultiNICSpreadsFlows(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		Seed: 31, NICCount: 4, Concurrency: 16,
		Server: Config{Kind: Flash, Persistent: true},
	})
	res := tb.Run(500*sim.Millisecond, sim.Second)
	if res.Completed < 100 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if len(tb.NICs) != 4 {
		t.Fatalf("NICs = %d", len(tb.NICs))
	}
	// Every interface must carry traffic in both directions.
	var totalRx, totalTx int64
	for i, n := range tb.NICs {
		if n.RxPackets == 0 || n.TxPackets == 0 {
			t.Errorf("nic %d idle: rx=%d tx=%d", i, n.RxPackets, n.TxPackets)
		}
		totalRx += n.RxPackets
		totalTx += n.TxPackets
	}
	// With flows pinned round-robin and equal client groups, no NIC
	// should dominate (allow 2x imbalance for flow-count rounding).
	for i, n := range tb.NICs {
		if n.TxPackets > totalTx/2 {
			t.Errorf("nic %d carries %d of %d tx packets", i, n.TxPackets, totalTx)
		}
	}
}

func TestMultiNICLiftsWireBottleneck(t *testing.T) {
	// Flash P-HTTP saturates a single 100 Mbps wire; four NICs must
	// raise throughput substantially (this is why the paper's Table 8
	// machine had four interfaces).
	one := NewTestbed(TestbedConfig{
		Seed: 32, NICCount: 1, Concurrency: 48,
		Server: Config{Kind: Flash, Persistent: true},
	}).Run(sim.Second, 2*sim.Second)
	four := NewTestbed(TestbedConfig{
		Seed: 32, NICCount: 4, Concurrency: 48,
		Server: Config{Kind: Flash, Persistent: true},
	}).Run(sim.Second, 2*sim.Second)
	if four.Throughput < one.Throughput*1.3 {
		t.Fatalf("4 NICs (%.0f req/s) should clearly beat 1 NIC (%.0f req/s, wire-bound)",
			four.Throughput, one.Throughput)
	}
}

func TestMultiNICPollingEachInterface(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		Seed: 33, NICCount: 2, Concurrency: 8,
		NIC:    nic.Config{Mode: nic.SoftPoll},
		Server: Config{Kind: Flash},
	})
	res := tb.Run(500*sim.Millisecond, sim.Second)
	if res.Completed < 50 {
		t.Fatalf("completed = %d", res.Completed)
	}
	for i, n := range tb.NICs {
		if n.Polls == 0 {
			t.Errorf("nic %d never polled", i)
		}
		if n.RxInterrupts > n.Polls {
			t.Errorf("nic %d: interrupts (%d) exceed polls (%d) in polling mode",
				i, n.RxInterrupts, n.Polls)
		}
	}
}

func TestNewServerMultiValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero NICs")
		}
	}()
	NewServerMulti(nil, nil, nil, Config{})
}
