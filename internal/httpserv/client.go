package httpserv

import (
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

// ClientGen models the client machines: a fixed number of concurrent
// request slots that repeatedly fetch the same file, keeping the server
// saturated (the paper: "the number of simultaneous requests to the Web
// server were set such that the server machine was saturated"). The
// clients' own CPUs are not under study, so they run at zero cost directly
// on the engine.
type ClientGen struct {
	eng      *sim.Engine
	toServer netstack.Endpoint

	// Concurrency is the number of simultaneous connections (slots).
	Concurrency int
	// ExpectedSegments is the data segments per response.
	ExpectedSegments int
	// Persistent selects P-HTTP: one connection per slot, many requests.
	Persistent bool
	// ThinkTime is the client-side gap before reusing a slot.
	ThinkTime sim.Time
	// HeaderBytes sizes control packets.
	HeaderBytes int

	// Arena, when set, is the packet pool requests are acquired from and
	// delivered responses are released into (the testbed wires the
	// topology's pool; nil keeps heap-literal packets).
	Arena *netstack.Arena

	// Responses counts completed responses (client view); ResponseTimes
	// records their latencies in milliseconds.
	Responses     int64
	ResponseTimes *stats.Online

	nextFlow int
	slots    []*clientSlot
	started  bool
}

// clientSlot is one in-flight connection's client-side state.
type clientSlot struct {
	g        *ClientGen
	flow     int
	got      int // data segments received this response
	unacked  int
	reqStart sim.Time
}

// NewClientGen creates a generator sending into toServer (the link toward
// the server NIC).
func NewClientGen(eng *sim.Engine, toServer netstack.Endpoint, concurrency, expectedSegments int, persistent bool) *ClientGen {
	if concurrency <= 0 || expectedSegments <= 0 {
		panic("httpserv: client generator needs positive concurrency and response size")
	}
	return &ClientGen{
		eng: eng, toServer: toServer,
		Concurrency: concurrency, ExpectedSegments: expectedSegments,
		Persistent: persistent, ThinkTime: 200 * sim.Microsecond,
		HeaderBytes:   52,
		ResponseTimes: &stats.Online{},
	}
}

// Start opens the initial connections. Slots stagger their first request
// slightly so the server is not hit by a synchronized burst.
func (g *ClientGen) Start() {
	if g.started {
		panic("httpserv: client generator started twice")
	}
	g.started = true
	for i := 0; i < g.Concurrency; i++ {
		i := i
		g.eng.After(sim.Time(i+1)*37*sim.Microsecond, func() {
			s := &clientSlot{g: g}
			g.slots = append(g.slots, s)
			s.open()
		})
	}
}

func (g *ClientGen) newFlow() int {
	g.nextFlow++
	return g.nextFlow
}

// open starts a connection: SYN for HTTP, or straight to the request for
// P-HTTP (the persistent connection is assumed established, as in the
// paper's P-HTTP runs).
func (s *clientSlot) open() {
	s.flow = s.g.newFlow()
	s.got = 0
	s.unacked = 0
	if s.g.Persistent {
		s.request()
		return
	}
	s.g.send(s.flow, netstack.Syn, s.g.HeaderBytes)
}

// send acquires and transmits one control packet toward the server.
func (g *ClientGen) send(flow int, kind netstack.Kind, size int) {
	p := g.Arena.Get()
	p.Flow, p.Kind, p.Size = flow, kind, size
	g.toServer.Deliver(p)
}

func (s *clientSlot) request() {
	s.reqStart = s.g.eng.Now()
	s.got = 0
	s.unacked = 0
	s.g.send(s.flow, netstack.Request, s.g.HeaderBytes+250) // ~250B GET
}

// Deliver implements netstack.Endpoint: packets from the server arrive
// here; flows are demultiplexed to slots. The generator is each packet's
// final destination, so it releases the packet after handling it.
func (g *ClientGen) Deliver(p *netstack.Packet) {
	for _, s := range g.slots {
		if s.flow == p.Flow {
			s.handle(p)
			break
		}
	}
	g.Arena.Release(p) // a miss is a packet for a closed connection (e.g. final ACKs)
}

func (s *clientSlot) handle(p *netstack.Packet) {
	g := s.g
	switch p.Kind {
	case netstack.SynAck:
		s.request()
	case netstack.Data:
		s.got++
		s.unacked++
		ackNow := s.unacked >= 2 || s.got >= g.ExpectedSegments // last segment acks promptly
		if ackNow {
			s.unacked = 0
			ack := g.Arena.Get()
			ack.Flow, ack.Kind, ack.AckSeq, ack.Size = s.flow, netstack.Ack, int64(s.got), g.HeaderBytes
			g.toServer.Deliver(ack)
		}
		if s.got >= g.ExpectedSegments {
			s.responseDone()
		}
	case netstack.Fin:
		// Server closed after the data: ACK the FIN, then close our side
		// with our own FIN (the normal four-way teardown).
		g.send(s.flow, netstack.Ack, g.HeaderBytes)
		g.send(s.flow, netstack.Fin, g.HeaderBytes)
	}
}

func (s *clientSlot) responseDone() {
	g := s.g
	g.Responses++
	g.ResponseTimes.Add((g.eng.Now() - s.reqStart).Millis())
	g.eng.After(g.ThinkTime, func() {
		if g.Persistent {
			s.request()
			return
		}
		s.open() // fresh connection for the next request
	})
}
