package httpserv

import (
	"testing"

	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// scriptedServer is a minimal hand-rolled peer for exercising ClientGen in
// isolation: replies to SYN with SYNACK, to a request with data + FIN.
type scriptedServer struct {
	eng        *sim.Engine
	toClient   netstack.Endpoint
	segments   int
	persistent bool // persistent servers do not close after a response
	requests   int
	fins       int
}

func (s *scriptedServer) Deliver(p *netstack.Packet) {
	switch p.Kind {
	case netstack.Syn:
		s.toClient.Deliver(&netstack.Packet{Flow: p.Flow, Kind: netstack.SynAck, Size: 52})
	case netstack.Request:
		s.requests++
		for i := 0; i < s.segments; i++ {
			s.toClient.Deliver(&netstack.Packet{
				Flow: p.Flow, Kind: netstack.Data, Seq: int64(i), Size: 1500, Payload: 1448,
			})
		}
		if !s.persistent {
			s.toClient.Deliver(&netstack.Packet{Flow: p.Flow, Kind: netstack.Fin, Size: 52})
		}
	case netstack.Fin:
		s.fins++
	}
}

func newClientRig(t *testing.T, concurrency, segments int, persistent bool) (*sim.Engine, *scriptedServer, *ClientGen) {
	t.Helper()
	eng := sim.NewEngine(13)
	srv := &scriptedServer{eng: eng, segments: segments, persistent: persistent}
	var clients *ClientGen
	down := netstack.NewLink(eng, "down", 100_000_000, 30*sim.Microsecond,
		netstack.EndpointFunc(func(p *netstack.Packet) { clients.Deliver(p) }))
	srv.toClient = down
	up := netstack.NewLink(eng, "up", 100_000_000, 30*sim.Microsecond, srv)
	clients = NewClientGen(eng, up, concurrency, segments, persistent)
	return eng, srv, clients
}

func TestClientGenHTTPLifecycle(t *testing.T) {
	eng, srv, clients := newClientRig(t, 2, 5, false)
	clients.Start()
	eng.RunFor(100 * sim.Millisecond)
	if clients.Responses < 10 {
		t.Fatalf("responses = %d, want a steady stream", clients.Responses)
	}
	// One request per response, one client FIN per connection teardown.
	if srv.requests < int(clients.Responses) {
		t.Fatalf("requests %d < responses %d", srv.requests, clients.Responses)
	}
	if srv.fins == 0 {
		t.Fatal("no client FINs — teardown broken")
	}
	if clients.ResponseTimes.N() != clients.Responses {
		t.Fatalf("response times recorded %d of %d", clients.ResponseTimes.N(), clients.Responses)
	}
	// Round trip on a 30us LAN with 6 packets: sub-millisecond responses.
	if mean := clients.ResponseTimes.Mean(); mean > 2 {
		t.Fatalf("mean response = %.2fms, want sub-ms on a LAN", mean)
	}
}

func TestClientGenPersistentSkipsHandshake(t *testing.T) {
	eng, srv, clients := newClientRig(t, 1, 3, true)
	clients.Start()
	eng.RunFor(50 * sim.Millisecond)
	if clients.Responses < 5 {
		t.Fatalf("responses = %d", clients.Responses)
	}
	if srv.fins != 0 {
		t.Fatalf("persistent client sent %d FINs", srv.fins)
	}
	// All requests rode one flow.
	if srv.requests < int(clients.Responses) {
		t.Fatalf("requests %d < responses %d", srv.requests, clients.Responses)
	}
}

func TestClientGenAcksEverySecondSegment(t *testing.T) {
	eng := sim.NewEngine(14)
	acks := 0
	var clients *ClientGen
	up := netstack.EndpointFunc(func(p *netstack.Packet) {
		if p.Kind == netstack.Ack {
			acks++
		}
	})
	clients = NewClientGen(eng, up, 1, 6, true)
	clients.Start()
	eng.RunFor(sim.Millisecond) // slot opened, request sent
	// Deliver 6 data segments directly.
	for i := 0; i < 6; i++ {
		clients.Deliver(&netstack.Packet{Flow: 1, Kind: netstack.Data, Seq: int64(i)})
	}
	// 2 acks at segments 2 and 4, plus the final-segment prompt ack.
	if acks != 3 {
		t.Fatalf("acks = %d, want 3", acks)
	}
}

func TestClientGenIgnoresStaleFlows(t *testing.T) {
	eng := sim.NewEngine(15)
	clients := NewClientGen(eng, netstack.EndpointFunc(func(*netstack.Packet) {}), 1, 5, false)
	clients.Start()
	eng.RunFor(sim.Millisecond)
	// A packet for a flow that never existed must be dropped quietly.
	clients.Deliver(&netstack.Packet{Flow: 9999, Kind: netstack.Data})
	if clients.Responses != 0 {
		t.Fatal("stale packet produced a response")
	}
}

func TestClientGenDoubleStartPanics(t *testing.T) {
	eng := sim.NewEngine(16)
	clients := NewClientGen(eng, netstack.EndpointFunc(func(*netstack.Packet) {}), 1, 5, false)
	clients.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	clients.Start()
}

func TestTestbedResultFields(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 17, Concurrency: 4, Server: Config{Kind: Flash}})
	res := tb.Run(200*sim.Millisecond, 300*sim.Millisecond)
	if res.Completed <= 0 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.BusyFrac <= 0 || res.BusyFrac > 1.01 {
		t.Fatalf("busy frac = %v", res.BusyFrac)
	}
	if res.MeanTriggerUS <= 0 {
		t.Fatal("no trigger stats")
	}
	if float64(res.Completed)/0.3 != res.Throughput {
		t.Fatalf("throughput %v inconsistent with completed %d over 300ms", res.Throughput, res.Completed)
	}
}
