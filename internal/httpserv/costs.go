package httpserv

import "softtimers/internal/sim"

// ReqStep is one step of a server's per-request processing script: either
// a system call (trigger state at its end) or a stretch of user-mode
// computation. Traps model sporadic page faults.
type ReqStep struct {
	Kind StepKind
	Name string
	Work sim.Time
	// Prob makes the step probabilistic (0 or 1 occurrences per request);
	// zero means always.
	Prob float64
}

// StepKind classifies request-script steps.
type StepKind int

const (
	// StepSyscall is a system call of Work service time.
	StepSyscall StepKind = iota
	// StepUser is user-mode computation.
	StepUser
	// StepTrap is a page-fault/exception of Work handling time.
	StepTrap
)

func sys(name string, us float64) ReqStep {
	return ReqStep{Kind: StepSyscall, Name: name, Work: sim.Micros(us)}
}
func user(us float64) ReqStep { return ReqStep{Kind: StepUser, Work: sim.Micros(us)} }
func trap(us, prob float64) ReqStep {
	return ReqStep{Kind: StepTrap, Name: "pagefault", Work: sim.Micros(us), Prob: prob}
}

// Script is a server's per-request cost profile, split around the response
// transmission.
type Script struct {
	// ConnStart runs once per fresh TCP connection (skipped for requests
	// after the first on a persistent connection).
	ConnStart []ReqStep
	// PreSend runs from request availability to the send syscall.
	PreSend []ReqStep
	// SendSyscall is the writev/sendfile call preceding the TCP output
	// loop.
	SendSyscall ReqStep
	// PostSend runs after the response is handed to TCP (logging etc.).
	PostSend []ReqStep
	// ConnEnd runs when a connection closes (HTTP mode).
	ConnEnd []ReqStep
	// PollutionFactor for the server process(es); see kernel.Proc.
	PollutionFactor float64
}

// ApacheScript models Apache-1.3.3: a multi-process server with many
// syscalls and substantial user-mode work per request (the paper's ~774
// requests/s at saturation on the P-II 300). Calibrated so that at
// saturation the trigger-state mix approximates Table 2 and the mean
// trigger interval approximates Table 1's ST-Apache row.
func ApacheScript() Script {
	return Script{
		ConnStart: []ReqStep{
			sys("accept", 12),
			user(40), // per-connection setup (scoreboard, pools)
			sys("getsockname", 5),
			sys("fcntl", 3),
			user(65),
			sys("fcntl", 3),
			sys("sigaction", 3),
		},
		PreSend: []ReqStep{
			sys("read", 10),
			user(25),
			sys("gettimeofday", 3),
			user(50),
			trap(8, 0.8),
			sys("stat", 9),
			user(30),
			sys("open", 11),
			user(45),
			sys("read", 14),
			user(82),
			sys("gettimeofday", 3),
			user(65),
			sys("sigprocmask", 3),
			user(35),
		},
		SendSyscall: sys("writev", 16),
		PostSend: []ReqStep{
			user(55),
			sys("write", 12), // access log
			user(45),
			sys("time", 3),
			user(50),
			sys("sigprocmask", 3),
			user(125),
			sys("select", 7),
			user(70),
		},
		ConnEnd: []ReqStep{
			user(30),
			sys("shutdown", 6),
			user(35),
			sys("close", 10),
			user(140), // MPM bookkeeping between connections
		},
		PollutionFactor: 1.0,
	}
}

// FlashScript models the Flash event-driven server (Pai et al. 1999): a
// single process, far less user work per request, fewer syscalls, no
// per-request context switches, and — because its working set actually
// fits in cache — a higher sensitivity to interrupt pollution
// (Section 5.6's explanation for Flash's larger hardware-timer overhead).
func FlashScript() Script {
	return Script{
		ConnStart: []ReqStep{
			sys("accept", 10),
			user(70), // connection object, PCB and cache setup
			sys("fcntl", 3),
			user(85),
			sys("setsockopt", 4),
			user(95),
		},
		PreSend: []ReqStep{
			sys("kevent", 8),
			user(13),
			sys("read", 9),
			user(16),
			sys("gettimeofday", 3),
			user(12),
			trap(8, 0.15),
			sys("open", 10), // usually a cache hit; modest cost
			user(16),
			sys("mmap", 6),
			user(15),
		},
		SendSyscall: sys("writev", 14),
		PostSend: []ReqStep{
			{Kind: StepUser, Work: sim.Micros(260), Prob: 0.08}, // periodic cache/log maintenance
			user(14),
			sys("write", 8), // log buffer flush share
			user(18),
		},
		ConnEnd: []ReqStep{
			sys("close", 9),
			user(120), // connection teardown and cache bookkeeping
		},
		PollutionFactor: 1.9,
	}
}
