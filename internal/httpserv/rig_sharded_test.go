package httpserv

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/sim"
)

// The single-server testbed must replay byte-identically on the sharded
// executor — including under the hostile fault scenario, whose injected
// drops, duplicates, reorders and jitter all draw from seeded streams that
// a sharded run must not perturb. Telemetry snapshots and per-host Chrome
// traces are the witnesses.
func TestTestbedShardedMatchesLegacy(t *testing.T) {
	for _, scenario := range []string{"", "hostile"} {
		name := scenario
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards int) (Result, int64, []byte, []byte) {
				cfg := TestbedConfig{
					Seed:        17,
					Concurrency: 16,
					Shards:      shards,
				}
				if scenario != "" {
					spec, ok := faults.LookupScenario(scenario)
					if !ok {
						t.Fatalf("unknown scenario %q", scenario)
					}
					cfg.Faults = faults.New(cfg.Seed, spec)
				}
				tb := NewTestbed(cfg)
				tb.Net.EnableTracing(1 << 14)
				res := tb.Run(100*sim.Millisecond, 300*sim.Millisecond)
				snap, err := json.Marshal(tb.Metrics())
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := tb.Net.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return res, tb.Clients.Responses, snap, buf.Bytes()
			}
			refRes, refDone, refSnap, refChrome := run(0)
			// Under hostile faults the no-retransmit clients wedge on their
			// first lost packet, so the measurement window can legitimately
			// be empty; the whole-run client-side count must not be.
			if refDone == 0 {
				t.Fatal("reference run completed no responses")
			}
			res, done, snap, chrome := run(1)
			if done != refDone {
				t.Errorf("client responses diverged: got %d want %d", done, refDone)
			}
			if res != refRes {
				t.Errorf("result diverged:\n got %+v\nwant %+v", res, refRes)
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}
