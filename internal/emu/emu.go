// Package emu binds the simulated soft-timer netstack to real OS sockets —
// the repo's real-time emulation mode. A simulated host (kernel, soft-timer
// facility, NIC, and the httpserv Flash/Apache server model) runs under a
// sim.RealTimeClock driver, so its virtual clock advances 1:1 with the wall
// clock; a real TCP listener feeds accepted connections into the model as
// Syn/Request packets, and the response packets the model transmits —
// paced by the Section 4.1 soft-timer Pacer — are written back to the
// socket as real HTTP bytes.
//
// This closes the loop on the paper's headline claim: trigger-interval and
// pacing measurements taken here come from real syscall returns and real
// elapsed time, directly comparable with Table 1, instead of from the
// virtual-time model. Determinism ends at this package's boundary — see
// DESIGN.md "Clock drivers & emulation mode".
//
// Concurrency model: exactly one goroutine runs the engine (Serve).
// Socket-owning goroutines (accept loop, per-connection readers) never
// touch the simulation directly; every crossing goes through
// RealTimeClock.Inject, which runs the closure on the engine goroutine at
// the wall-mapped virtual instant. The reverse direction — the model
// writing to sockets — happens inline on the engine goroutine via the
// socket bridge endpoint (loopback writes of ≤1448-byte segments do not
// block meaningfully).
package emu

import (
	"fmt"
	"net"
	"sync"
	"time"

	"softtimers/internal/cpu"
	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/topology"
)

// Config configures an emulation server.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0" — loopback,
	// kernel-assigned port; read the bound address from Server.Addr).
	Addr string
	// Seed seeds the simulated host (default 1).
	Seed uint64
	// Kind selects the server model (default Flash — single-process
	// event-driven, the paper's fast path).
	Kind httpserv.Kind
	// FileBytes is the response body size (default 6144, the paper's 6 KB).
	FileBytes int
	// PacerInterval and PacerBurstInterval configure the soft-timer Pacer
	// clocking response transmission (defaults 100 µs / 20 µs).
	PacerInterval      sim.Time
	PacerBurstInterval sim.Time
	// Slice bounds each engine run between stop-checks (default 50 ms).
	Slice sim.Time
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FileBytes == 0 {
		c.FileBytes = 6144
	}
	if c.Slice == 0 {
		c.Slice = 50 * sim.Millisecond
	}
}

// Server is one emulated soft-timer web server bound to a real listener.
type Server struct {
	cfg  Config
	top  *topology.Topology
	hst  *host.Host
	nic  *nic.NIC
	srv  *httpserv.Server
	clk  *sim.RealTimeClock
	prb  *triggerProbe
	ln   net.Listener
	body []byte // response-body filler, sliced per segment

	// conns is engine-goroutine state: flow id → live socket.
	conns map[int]net.Conn

	mu       sync.Mutex // guards nextFlow (accept goroutine) and closed
	nextFlow int
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// New builds the emulated server and binds its listener (so the bound
// address is known before Serve). The simulated host is assembled through
// topology.Build with Clock: ClockRealTime — the same driver-selection
// path stbench uses — which installs the RealTimeClock on the engine and
// hands its wall-mapped time source to the soft-timer facility.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", cfg.Addr, err)
	}

	top := topology.Build(topology.Spec{
		Seed:  cfg.Seed,
		Clock: sim.ClockRealTime,
		Hosts: []topology.HostSpec{{
			Name:    "server",
			Profile: cpu.PentiumII300(),
			// IdleLoop stays off: a real process has no busy idle loop to
			// harvest trigger states from; hardclock and the packet path
			// provide them, as on a loaded machine.
		}},
	})
	s := &Server{
		cfg:   cfg,
		top:   top,
		hst:   top.Host("server"),
		clk:   top.RealClock(),
		ln:    ln,
		conns: make(map[int]net.Conn),
		body:  make([]byte, 2048),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range s.body {
		s.body[i] = 'a' + byte(i%26)
	}

	// The NIC transmits straight into the socket bridge: no simulated
	// link in between, so pacing gaps observed on the wire are the
	// pacer's, not a link model's.
	s.nic = s.hst.AddNIC(nic.Config{Name: "emu0"}, netstack.EndpointFunc(s.bridgeDeliver))

	s.srv = httpserv.NewServerMulti(s.hst.K, s.hst.F, []*nic.NIC{s.nic}, httpserv.Config{
		Kind:               cfg.Kind,
		FileBytes:          cfg.FileBytes,
		TxMode:             httpserv.TxPacerPaced,
		PacerInterval:      cfg.PacerInterval,
		PacerBurstInterval: cfg.PacerBurstInterval,
	})

	// Interpose the trigger probe between the kernel and the facility:
	// every trigger state's wall-clock timestamp lands in the interval
	// histogram before the facility's check runs.
	s.prb = newTriggerProbe(s.hst.F)
	s.hst.K.SetTriggerSink(s.prb)

	// Emulation telemetry joins the host registry so snapshots carry it.
	r := s.hst.Metrics()
	r.Adopt("clock.lag_us", s.clk.LagHist)
	r.Adopt("emu.trigger_interval_us", s.prb.hist)
	r.CounterFunc("clock.bursts", s.clk.Bursts)
	r.CounterFunc("clock.injected", s.clk.Injected)
	r.CounterFunc("clock.waits", s.clk.Waits)
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Host exposes the simulated machine (metrics, facility).
func (s *Server) Host() *host.Host { return s.hst }

// Clock exposes the wall-slaved clock driver (lag accounting).
func (s *Server) Clock() *sim.RealTimeClock { return s.clk }

// Completed returns the number of fully paced-out responses.
func (s *Server) Completed() int64 { return s.srv.Completed }

// TriggerIntervals returns the wall-clock trigger-interval sample (µs),
// the emulation-mode measurement Table 1 reports for real kernels.
func (s *Server) TriggerIntervals() *stats.Sample { return s.prb.sample }

// TriggerHist returns the trigger-interval histogram (µs buckets).
func (s *Server) TriggerHist() *stats.Histogram { return s.prb.hist }

// Serve runs the emulation until Stop: the accept loop on its own
// goroutine, the engine loop here. The engine runs in bounded slices; with
// the RealTimeClock installed each slice sleeps as needed, so an idle
// server consumes no CPU between hardclock ticks.
func (s *Server) Serve() {
	defer close(s.done)
	s.hst.Start()
	s.srv.Start()
	go s.acceptLoop()
	for {
		select {
		case <-s.stop:
			return
		default:
			s.top.RunFor(s.cfg.Slice)
		}
	}
}

// Stop shuts the emulation down: closes the listener (unblocking accept),
// stops the engine loop after its current slice, and waits for it.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	close(s.stop)
	// Wake the engine if it is mid-sleep inside the current slice.
	s.clk.Inject(func() {})
	<-s.done
}

// acceptLoop owns the listener: each accepted socket gets a flow id and a
// reader goroutine. Runs until the listener closes.
func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.nextFlow++
		flow := s.nextFlow
		s.mu.Unlock()
		go s.readLoop(flow, c)
	}
}

// readLoop owns one socket's read side. It injects the connection into the
// model as a Syn, then each request (bytes up to a blank line) as a
// Request packet, and on EOF a Fin — so the model's connection table never
// leaks. All packet construction happens inside injected closures, on the
// engine goroutine, because arenas are single-goroutine.
func (s *Server) readLoop(flow int, c net.Conn) {
	s.clk.Inject(func() {
		s.conns[flow] = c
		s.inject(flow, netstack.Syn, 52, 0)
	})
	buf := make([]byte, 4096)
	pending := 0 // request bytes seen since the last blank line
	for {
		n, err := c.Read(buf)
		if n > 0 {
			pending += n
			if containsBlankLine(buf[:n]) {
				size := pending
				pending = 0
				s.clk.Inject(func() { s.inject(flow, netstack.Request, size, 0) })
			}
		}
		if err != nil {
			s.clk.Inject(func() {
				s.inject(flow, netstack.Fin, 52, 0)
				// The model acked the Fin and dropped the connection; the
				// socket may already be closed by the bridge (server Fin).
				if ec := s.conns[flow]; ec != nil {
					ec.Close()
					delete(s.conns, flow)
				}
			})
			return
		}
	}
}

// inject delivers one client packet to the NIC (engine goroutine only).
func (s *Server) inject(flow int, kind netstack.Kind, size, payload int) {
	p := s.hst.Arena().Get()
	p.Flow, p.Kind, p.Size, p.Payload = flow, kind, size, payload
	s.nic.Deliver(p)
}

// containsBlankLine reports whether b holds an HTTP header terminator. A
// terminator split across reads is missed — acceptable for the emulation
// workload, whose clients send requests in one write.
func containsBlankLine(b []byte) bool {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return true
		}
	}
	return false
}

// bridgeDeliver is the socket bridge: the endpoint the simulated NIC
// transmits into, translating model packets to socket bytes. It runs on
// the engine goroutine during paced transmission events; per the endpoint
// contract it owns and releases every delivered packet.
func (s *Server) bridgeDeliver(p *netstack.Packet) {
	defer s.hst.Arena().Release(p)
	c := s.conns[p.Flow]
	if c == nil {
		return // teardown race: model reply after the socket went away
	}
	switch p.Kind {
	case netstack.Data:
		if p.Seq == 0 {
			// The header segment becomes a real HTTP response header so
			// ordinary clients (curl, net/http) understand the stream.
			fmt.Fprintf(c, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", s.cfg.FileBytes)
			return
		}
		// Body segments carry filler at the model's paced cadence.
		b := s.body
		for n := p.Payload; n > 0; n -= len(b) {
			if n < len(b) {
				b = b[:n]
			}
			if _, err := c.Write(b); err != nil {
				return
			}
		}
	case netstack.Fin:
		c.Close()
		delete(s.conns, p.Flow)
	}
	// SynAck and Ack segments are pure model bookkeeping: TCP handshake
	// and acknowledgment are the real kernel's job out here.
}

// triggerProbe interposes on the kernel's trigger sink, timestamping every
// trigger state with the wall clock and recording the interval since the
// previous one — the paper's Table 1 measurement, taken from real syscall
// returns and interrupt exits (as emulated by the model's schedule) rather
// than from virtual time.
type triggerProbe struct {
	sink   kernel.TriggerSink
	nowFn  func() time.Time
	last   time.Time
	hist   *stats.Histogram // µs buckets
	sample *stats.Sample
}

func newTriggerProbe(sink kernel.TriggerSink) *triggerProbe {
	return &triggerProbe{
		sink:   sink,
		nowFn:  time.Now,
		hist:   stats.NewHistogram(1, 2000),
		sample: &stats.Sample{},
	}
}

// Trigger implements kernel.TriggerSink.
func (tp *triggerProbe) Trigger(src kernel.Source, now sim.Time) sim.Time {
	w := tp.nowFn()
	if !tp.last.IsZero() {
		us := float64(w.Sub(tp.last)) / float64(time.Microsecond)
		tp.hist.Add(us)
		tp.sample.Add(us)
	}
	tp.last = w
	return tp.sink.Trigger(src, now)
}
