package emu

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// dialable reports whether this runner allows loopback sockets; sandboxed
// CI runners may not, and the emulation tests skip there.
func dialable(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback sockets on this runner: %v", err)
	}
	ln.Close()
}

// TestServeLoopbackHTTP drives the full emulation path end to end: a real
// HTTP request over a loopback socket, answered by the simulated server
// with soft-timer-paced writes, plus the measurement side effects (trigger
// intervals from real timestamps, a paced completion in the model).
func TestServeLoopbackHTTP(t *testing.T) {
	dialable(t)
	s, err := New(Config{FileBytes: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	defer s.Stop()

	c, err := net.DialTimeout("tcp", s.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(c, "GET /file HTTP/1.0\r\n\r\n")

	br := bufio.NewReader(c)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status: %v", err)
	}
	if !strings.HasPrefix(status, "HTTP/1.0 200") {
		t.Fatalf("status = %q; want HTTP/1.0 200", strings.TrimSpace(status))
	}
	// Headers end at the blank line; then the paced body follows.
	var contentLength string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read header: %v", err)
		}
		if line == "\r\n" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			contentLength = strings.TrimSpace(v)
		}
	}
	if contentLength != "4096" {
		t.Errorf("Content-Length = %q; want 4096", contentLength)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if len(body) != 4096 {
		t.Errorf("body = %d bytes; want 4096", len(body))
	}

	s.Stop()
	if s.Completed() < 1 {
		t.Errorf("model completed %d responses; want >= 1", s.Completed())
	}
	if s.TriggerIntervals().N() == 0 {
		t.Error("no trigger intervals measured")
	}
	if snap := s.Host().Snapshot(); snap == nil {
		t.Error("host snapshot is nil")
	}
}

// TestStopIdle ensures Stop returns promptly from an idle server (the
// engine is asleep inside a slice and must be woken, not waited out).
func TestStopIdle(t *testing.T) {
	dialable(t)
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go s.Serve()
	time.Sleep(20 * time.Millisecond) // let Serve enter a slice
	start := time.Now()
	s.Stop()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Stop took %v", d)
	}
	s.Stop() // idempotent
}
