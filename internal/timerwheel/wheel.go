// Package timerwheel implements timing-wheel data structures for maintaining
// scheduled timer events (Varghese & Lauck, SOSP 1987). The paper's soft
// timer facility keeps its pending events in "a modified form of timing
// wheels" (footnote 2): insertion and cancellation are O(1), and the check
// performed at every trigger state — "is the earliest event due?" — is a
// single comparison against a cached earliest deadline.
//
// Two variants are provided: Wheel, a hashed wheel where each slot holds an
// unsorted list of events hashed by deadline, and Hierarchical, a multi-level
// wheel that avoids long-timeout slot crowding. Both satisfy Queue.
package timerwheel

import "math/bits"

// Tick is an absolute deadline in ticks of the caller's measurement clock.
type Tick = uint64

// NoDeadline is returned by Earliest when the queue is empty.
const NoDeadline Tick = ^Tick(0)

// Handler is a timer callback. It receives the tick at which the wheel was
// advanced (i.e. "now"), which may be later than the timer's deadline.
type Handler func(now Tick)

// Queue is the interface shared by the wheel variants (and by the reference
// heap used in tests).
type Queue interface {
	// Schedule registers fn to fire once Advance reaches deadline.
	// Deadlines at or before the current tick fire on the next Advance.
	Schedule(deadline Tick, fn Handler) *Timer
	// ScheduleFree is Schedule for callers that keep no handle: the timer
	// node comes from a per-queue pool and recycles the moment it fires,
	// so steady-state rearm loops schedule without allocating. There is
	// nothing to cancel — the node may already belong to a later timer.
	ScheduleFree(deadline Tick, fn Handler)
	// Advance moves the current tick to now and fires, in an unspecified
	// order among themselves, all timers with deadline <= now. It returns
	// the number fired. now must not decrease across calls.
	Advance(now Tick) int
	// Earliest returns the smallest pending deadline, or NoDeadline.
	Earliest() Tick
	// Len returns the number of pending timers.
	Len() int
}

// owner is the queue a timer belongs to, notified on cancellation so it can
// maintain its count and earliest-deadline cache, and asked to relocate the
// timer on an in-place reschedule.
type owner interface {
	noteCancel(*Timer)
	replace(t *Timer, deadline Tick)
	insert(t *Timer, deadline Tick, fn Handler)
}

// Timer is a handle to a scheduled event, usable to cancel it.
type Timer struct {
	deadline   Tick
	fn         Handler
	next, prev *Timer
	slot       *slot  // nil when fired, canceled, or never scheduled
	own        owner  // queue the timer is scheduled in
	gen        uint64 // Advance generation this timer was scheduled in, if any
	pooled     bool   // ScheduleFree node: recycles into the queue pool on fire
}

// Deadline returns the tick the timer was scheduled for.
func (t *Timer) Deadline() Tick { return t.deadline }

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.slot != nil }

// Cancel removes the timer; canceling a fired/canceled/nil timer is a no-op.
// It reports whether the timer was pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.slot == nil {
		return false
	}
	t.slot.remove(t)
	t.slot = nil
	t.own.noteCancel(t)
	return true
}

// Reschedule moves a still-pending timer to a new deadline in place: the
// node migrates between slot lists with no cancel, no fresh insert, and no
// allocation. It reports whether the timer was pending; rescheduling a
// fired, canceled, or nil timer is an inert no-op (use Rearm to revive a
// fired handle's node).
//
// The timer is restamped with the wheel's current Advance generation,
// exactly as a cancel + Schedule pair would be, so an in-Advance
// reschedule to an already-due deadline still waits for the next Advance.
func (t *Timer) Reschedule(deadline Tick) bool {
	if t == nil || t.slot == nil {
		return false
	}
	t.own.replace(t, deadline)
	return true
}

// Rearm re-inserts a fired or canceled timer node at a new deadline,
// reusing its allocation and handler: the wheel equivalent of the rearm
// half of a periodic timer, without a fresh Timer node per period. The
// node must have come from Schedule on this queue (pooled ScheduleFree
// nodes have no owner and may already belong to a later timer) and must
// not be pending — a pending timer Reschedules instead. fn == nil keeps
// the handler the node already carries (it is cleared on fire, not on
// cancel, so revived canceled timers keep theirs).
func (t *Timer) Rearm(deadline Tick, fn Handler) {
	if t == nil || t.own == nil || t.pooled {
		panic("timerwheel: rearm of a pooled or never-scheduled timer")
	}
	if t.slot != nil {
		panic("timerwheel: rearm of a pending timer (use Reschedule)")
	}
	if fn == nil {
		fn = t.fn
		if fn == nil {
			panic("timerwheel: rearm with no handler")
		}
	}
	t.own.insert(t, deadline, fn)
}

// slot is an intrusive doubly-linked list of timers hashing to one position.
type slot struct {
	head *Timer
	n    int
}

func (s *slot) push(t *Timer) {
	t.prev = nil
	t.next = s.head
	if s.head != nil {
		s.head.prev = t
	}
	s.head = t
	t.slot = s
	s.n++
}

func (s *slot) remove(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		s.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
	s.n--
}

// Wheel is a hashed timing wheel: slot index = deadline mod nslots, each slot
// an unsorted list carrying full deadlines. Advance walks only the slots the
// clock passes over, so per-tick cost is O(1) amortized plus fired handlers.
type Wheel struct {
	slots    []slot
	mask     Tick
	cur      Tick // last tick passed to Advance
	n        int
	earliest Tick   // lower bound on the earliest pending deadline
	dirty    bool   // earliest needs recomputation
	advGen   uint64 // generation counter, incremented at each Advance
	free     *Timer // pooled-node free list (ScheduleFree), linked via next
}

// New returns a hashed wheel with nslots slots (rounded up to a power of
// two, minimum 2) starting at tick 0.
func New(nslots int) *Wheel {
	if nslots < 2 {
		nslots = 2
	}
	if nslots&(nslots-1) != 0 {
		nslots = 1 << bits.Len(uint(nslots))
	}
	return &Wheel{slots: make([]slot, nslots), mask: Tick(nslots - 1), earliest: NoDeadline}
}

// Schedule implements Queue.
func (w *Wheel) Schedule(deadline Tick, fn Handler) *Timer {
	if fn == nil {
		panic("timerwheel: schedule of nil handler")
	}
	t := &Timer{own: w}
	w.insert(t, deadline, fn)
	return t
}

// insert links a non-pending node into its slot (Schedule and Timer.Rearm).
func (w *Wheel) insert(t *Timer, deadline Tick, fn Handler) {
	t.deadline, t.fn, t.gen = deadline, fn, w.advGen
	w.slots[deadline&w.mask].push(t)
	w.n++
	if deadline < w.earliest {
		w.earliest = deadline
		w.dirty = false
	}
}

// replace migrates a pending node to a new deadline (Timer.Reschedule).
func (w *Wheel) replace(t *Timer, deadline Tick) {
	t.slot.remove(t)
	old := t.deadline
	t.deadline = deadline
	t.gen = w.advGen
	w.slots[deadline&w.mask].push(t)
	if old <= w.earliest {
		w.dirty = true // the earliest bound may have left with old
	}
	if deadline < w.earliest {
		w.earliest = deadline // strictly under the bound: exact again
		w.dirty = false
	}
}

// ScheduleFree implements Queue.
func (w *Wheel) ScheduleFree(deadline Tick, fn Handler) {
	if fn == nil {
		panic("timerwheel: schedule of nil handler")
	}
	t := w.free
	if t == nil {
		t = &Timer{}
	} else {
		w.free = t.next
		t.next = nil
	}
	t.deadline, t.fn, t.own, t.gen, t.pooled = deadline, fn, w, w.advGen, true
	w.slots[deadline&w.mask].push(t)
	w.n++
	if deadline < w.earliest {
		w.earliest = deadline
		w.dirty = false
	}
}

// Len implements Queue.
func (w *Wheel) Len() int { return w.n }

// Earliest implements Queue. Cost is O(1) except after the previous earliest
// event fired or was canceled, when the wheel is rescanned lazily.
func (w *Wheel) Earliest() Tick {
	if w.n == 0 {
		return NoDeadline
	}
	if w.dirty {
		w.recomputeEarliest()
	}
	return w.earliest
}

func (w *Wheel) recomputeEarliest() {
	min := NoDeadline
	for i := range w.slots {
		for t := w.slots[i].head; t != nil; t = t.next {
			if t.deadline < min {
				min = t.deadline
			}
		}
	}
	w.earliest = min
	w.dirty = false
}

// Due reports in O(1) whether any pending timer's deadline is <= now, using
// the cached earliest bound. This is exactly the per-trigger-state check the
// paper describes: read the clock, compare against the earliest event. A
// stale (dirty) bound is still a valid lower bound, so Due may rescan at
// most once after the earliest timer leaves the wheel.
func (w *Wheel) Due(now Tick) bool {
	if w.n == 0 {
		return false
	}
	if !w.dirty {
		return w.earliest <= now
	}
	if w.earliest > now {
		// Lower bound already beyond now; no rescan needed.
		return false
	}
	w.recomputeEarliest()
	return w.earliest <= now
}

// Advance implements Queue. Handlers may schedule new timers; timers
// scheduled during Advance with deadline <= now fire on the *next* Advance
// (matching the facility's semantics: a handler runs at the following
// trigger state, never recursively).
func (w *Wheel) Advance(now Tick) int {
	if now < w.cur {
		panic("timerwheel: Advance moved backwards")
	}
	if w.n == 0 || w.Earliest() > now {
		// Nothing can be due: jump the clock without touching slots.
		// This is the common case at trigger states, so it must be O(1).
		w.cur = now
		return 0
	}
	// Mark this pass so timers a handler schedules during it — even ones
	// already due — wait for the next Advance. Handlers run at trigger
	// states; an immediately-due reschedule must not loop within one
	// state. Schedule stamps each timer with the current generation;
	// only timers stamped in *this* pass are held back.
	w.advGen++
	fired := 0
	prev := w.cur
	span := now - prev
	nslots := Tick(len(w.slots))
	if span >= nslots {
		// Full rotation (or more): every slot may hold due timers.
		fired = w.fireAllDue(now)
	} else {
		for tick := prev + 1; tick <= now; tick++ {
			fired += w.fireSlot(&w.slots[tick&w.mask], now)
		}
		// Deadlines in (prev, now] always hash to a slot walked above,
		// so the only due timers possibly missed are ones scheduled at
		// or before prev. The cached earliest (even when dirty it is a
		// valid lower bound) tells us whether any can exist.
		if w.n > 0 && w.earliest <= prev {
			if w.dirty {
				w.recomputeEarliest()
			}
			if w.earliest <= prev {
				fired += w.fireAllDue(now)
			}
		}
	}
	w.cur = now
	return fired
}

func (w *Wheel) fireSlot(s *slot, now Tick) int {
	fired := 0
	t := s.head
	for t != nil {
		next := t.next
		if t.deadline <= now && t.gen != w.advGen {
			s.remove(t)
			t.slot = nil
			w.n--
			if t.deadline <= w.earliest {
				w.dirty = true
			}
			fired++
			// Recycle pooled nodes before running the handler, so a
			// handler that immediately reschedules reuses this node.
			fn := t.fn
			if t.pooled {
				t.fn, t.own = nil, nil
				t.next = w.free
				w.free = t
			}
			fn(now)
		}
		t = next
	}
	return fired
}

func (w *Wheel) fireAllDue(now Tick) int {
	fired := 0
	for i := range w.slots {
		fired += w.fireSlot(&w.slots[i], now)
	}
	return fired
}

func (w *Wheel) noteCancel(t *Timer) {
	w.n--
	if t.deadline <= w.earliest {
		w.dirty = true
	}
}

// Now returns the wheel's current tick (the argument of the last Advance).
func (w *Wheel) Now() Tick { return w.cur }
