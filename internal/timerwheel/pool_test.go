package timerwheel

import "testing"

// TestScheduleFreeFires checks that pooled timers behave like handled ones
// observationally: they fire at (or after) their deadline with the advance
// tick, on both wheel variants.
func TestScheduleFreeFires(t *testing.T) {
	for name, q := range makeQueues() {
		var fired []Tick
		q.ScheduleFree(5, func(now Tick) { fired = append(fired, now) })
		q.ScheduleFree(10, func(now Tick) { fired = append(fired, now) })
		if q.Len() != 2 {
			t.Fatalf("%s: Len = %d, want 2", name, q.Len())
		}
		if q.Earliest() != 5 {
			t.Fatalf("%s: Earliest = %d, want 5", name, q.Earliest())
		}
		q.Advance(4)
		if len(fired) != 0 {
			t.Fatalf("%s: fired early", name)
		}
		q.Advance(12)
		if len(fired) != 2 || fired[0] != 12 || fired[1] != 12 {
			t.Fatalf("%s: fired = %v, want [12 12]", name, fired)
		}
		if q.Len() != 0 {
			t.Fatalf("%s: Len = %d after firing, want 0", name, q.Len())
		}
	}
}

// TestScheduleFreeNilPanics mirrors the handled-path guard.
func TestScheduleFreeNilPanics(t *testing.T) {
	for name, q := range makeQueues() {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: ScheduleFree(nil) did not panic", name)
				}
			}()
			q.ScheduleFree(1, nil)
		}()
	}
}

// TestScheduleFreeRearmReusesNode pins the pooling contract: a handler that
// immediately reschedules gets its own just-fired node back (the node is
// recycled before the handler runs), so a steady-state rearm loop touches
// exactly one timer node and never allocates.
func TestScheduleFreeRearmReusesNode(t *testing.T) {
	check := func(name string, q Queue, nodeAddr func() *Timer) {
		var first *Timer
		cycles := 0
		var rearm Handler
		rearm = func(now Tick) {
			cycles++
			if cycles >= 50 {
				return
			}
			q.ScheduleFree(now+3, rearm)
			n := nodeAddr()
			if first == nil {
				first = n
			} else if n != first {
				t.Fatalf("%s: cycle %d scheduled onto node %p, want pooled reuse of %p",
					name, cycles, n, first)
			}
		}
		q.ScheduleFree(3, rearm)
		for now := Tick(1); cycles < 50; now++ {
			q.Advance(now)
		}
		allocs := testing.AllocsPerRun(100, func() {
			q.ScheduleFree(q.(interface{ Now() Tick }).Now()+1, rearm)
			q.Advance(q.(interface{ Now() Tick }).Now() + 2)
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state ScheduleFree cycle allocates %.0f/op", name, allocs)
		}
	}

	w := New(64)
	check("hashed", w, func() *Timer {
		// The just-scheduled node is the head of its deadline slot.
		for i := range w.slots {
			if w.slots[i].head != nil {
				return w.slots[i].head
			}
		}
		return nil
	})
	h := NewHierarchical()
	check("hierarchical", h, func() *Timer {
		for l := 0; l < hLevels; l++ {
			for i := range h.levels[l] {
				if h.levels[l][i].head != nil {
					return h.levels[l][i].head
				}
			}
		}
		return h.overflow.head
	})
}

// TestScheduleFreeMixesWithHandledTimers runs pooled and handled timers on
// one wheel and checks cancellation of handled timers never disturbs pooled
// nodes (pooled nodes expose no handle, so nothing can cancel them).
func TestScheduleFreeMixesWithHandledTimers(t *testing.T) {
	for name, q := range makeQueues() {
		var pooled, handled int
		q.ScheduleFree(5, func(Tick) { pooled++ })
		ht := q.Schedule(5, func(Tick) { handled++ })
		q.ScheduleFree(7, func(Tick) { pooled++ })
		victim := q.Schedule(6, func(Tick) { handled++ })
		if !victim.Cancel() {
			t.Fatalf("%s: cancel failed", name)
		}
		q.Advance(10)
		if pooled != 2 || handled != 1 {
			t.Fatalf("%s: pooled=%d handled=%d, want 2/1", name, pooled, handled)
		}
		if ht.Pending() {
			t.Fatalf("%s: fired handled timer still pending", name)
		}
	}
}
