package timerwheel

import (
	"sort"
	"testing"
	"testing/quick"
)

// refQueue is a trivially-correct reference implementation used to check the
// wheels property-style: a sorted slice of pending timers.
type refQueue struct {
	pending []*refTimer
	cur     Tick
}

type refTimer struct {
	deadline Tick
	fn       Handler
	canceled bool
}

func (r *refQueue) schedule(deadline Tick, fn Handler) *refTimer {
	t := &refTimer{deadline: deadline, fn: fn}
	r.pending = append(r.pending, t)
	return t
}

func (r *refQueue) advance(now Tick) int {
	r.cur = now
	fired := 0
	keep := r.pending[:0]
	due := []*refTimer{}
	for _, t := range r.pending {
		switch {
		case t.canceled:
		case t.deadline <= now:
			due = append(due, t)
		default:
			keep = append(keep, t)
		}
	}
	r.pending = keep
	sort.SliceStable(due, func(i, j int) bool { return due[i].deadline < due[j].deadline })
	for _, t := range due {
		fired++
		t.fn(now)
	}
	return fired
}

func (r *refQueue) earliest() Tick {
	min := NoDeadline
	for _, t := range r.pending {
		if !t.canceled && t.deadline < min {
			min = t.deadline
		}
	}
	return min
}

// queues under test, constructed fresh per case.
func makeQueues() map[string]Queue {
	return map[string]Queue{
		"hashed":       New(64),
		"hierarchical": NewHierarchical(),
	}
}

func TestScheduleNilPanics(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("nil handler did not panic")
				}
			}()
			q.Schedule(5, nil)
		})
	}
}

func TestFireAtDeadline(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			var firedAt Tick
			q.Schedule(10, func(now Tick) { firedAt = now })
			if n := q.Advance(9); n != 0 {
				t.Fatalf("fired %d before deadline", n)
			}
			if n := q.Advance(10); n != 1 {
				t.Fatalf("Advance(10) fired %d, want 1", n)
			}
			if firedAt != 10 {
				t.Fatalf("handler saw now=%d, want 10", firedAt)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after firing", q.Len())
			}
		})
	}
}

func TestLateAdvanceFiresWithLateNow(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			var firedAt Tick
			q.Schedule(10, func(now Tick) { firedAt = now })
			q.Advance(500) // system was busy; event fires late
			if firedAt != 500 {
				t.Fatalf("handler saw now=%d, want 500", firedAt)
			}
		})
	}
}

func TestEarliestTracksMinimum(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			if q.Earliest() != NoDeadline {
				t.Fatal("empty queue should report NoDeadline")
			}
			q.Schedule(100, func(Tick) {})
			q.Schedule(50, func(Tick) {})
			q.Schedule(75, func(Tick) {})
			if got := q.Earliest(); got != 50 {
				t.Fatalf("Earliest = %d, want 50", got)
			}
			q.Advance(50)
			if got := q.Earliest(); got != 75 {
				t.Fatalf("Earliest after fire = %d, want 75", got)
			}
		})
	}
}

func TestCancel(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			fired := false
			tm := q.Schedule(10, func(Tick) { fired = true })
			if !tm.Pending() {
				t.Fatal("timer not pending after schedule")
			}
			if !tm.Cancel() {
				t.Fatal("Cancel returned false for pending timer")
			}
			if tm.Cancel() {
				t.Fatal("second Cancel returned true")
			}
			if tm.Pending() {
				t.Fatal("canceled timer still pending")
			}
			q.Advance(100)
			if fired {
				t.Fatal("canceled timer fired")
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d", q.Len())
			}
		})
	}
	var nilTimer *Timer
	if nilTimer.Cancel() {
		t.Fatal("nil Cancel returned true")
	}
	if nilTimer.Pending() {
		t.Fatal("nil Pending returned true")
	}
}

func TestCancelUpdatesEarliestLazily(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			a := q.Schedule(10, func(Tick) {})
			q.Schedule(90, func(Tick) {})
			a.Cancel()
			// The cached bound may be stale (10), but Advance(50) must not
			// fire anything and Earliest must eventually report 90.
			if n := q.Advance(50); n != 0 {
				t.Fatalf("fired %d", n)
			}
			if got := q.Earliest(); got != 90 {
				t.Fatalf("Earliest = %d, want 90", got)
			}
		})
	}
}

func TestBackwardsAdvancePanics(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			q.Advance(100)
			defer func() {
				if recover() == nil {
					t.Error("backwards Advance did not panic")
				}
			}()
			q.Advance(99)
		})
	}
}

func TestPastDeadlineFiresNextAdvance(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			q.Advance(1000)
			fired := false
			q.Schedule(500, func(Tick) { fired = true }) // already past
			q.Advance(1001)
			if !fired {
				t.Fatal("past-deadline timer did not fire on next Advance")
			}
		})
	}
}

func TestHandlerRescheduleHeldToNextAdvance(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			count := 0
			var handler Handler
			handler = func(now Tick) {
				count++
				q.Schedule(now, handler) // due immediately — must wait
			}
			q.Schedule(5, handler)
			q.Advance(10)
			if count != 1 {
				t.Fatalf("handler ran %d times in one Advance, want 1", count)
			}
			q.Advance(11)
			if count != 2 {
				t.Fatalf("handler ran %d times after second Advance, want 2", count)
			}
		})
	}
}

func TestWrapAroundManyRotations(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			// Deadlines far apart force wrap-around in the hashed wheel
			// and cascading in the hierarchical one.
			var fired []Tick
			for _, d := range []Tick{3, 70, 700, 7000, 70000} {
				d := d
				q.Schedule(d, func(Tick) { fired = append(fired, d) })
			}
			for now := Tick(0); now <= 70000; now += 37 {
				q.Advance(now)
			}
			q.Advance(70001)
			if len(fired) != 5 {
				t.Fatalf("fired %d of 5 timers: %v", len(fired), fired)
			}
			for i := 1; i < len(fired); i++ {
				if fired[i] < fired[i-1] {
					t.Fatalf("out of order: %v", fired)
				}
			}
		})
	}
}

func TestBigJumpFiresEverythingDue(t *testing.T) {
	for name, q := range makeQueues() {
		t.Run(name, func(t *testing.T) {
			fired := 0
			for i := Tick(1); i <= 100; i++ {
				q.Schedule(i*13, func(Tick) { fired++ })
			}
			q.Advance(10_000_000) // way past everything in one jump
			if fired != 100 {
				t.Fatalf("fired %d of 100 after big jump", fired)
			}
		})
	}
}

func TestHashedDueCheck(t *testing.T) {
	w := New(64)
	if w.Due(100) {
		t.Fatal("empty wheel reported due")
	}
	w.Schedule(50, func(Tick) {})
	if w.Due(49) {
		t.Fatal("Due(49) for deadline 50")
	}
	if !w.Due(50) {
		t.Fatal("!Due(50) for deadline 50")
	}
	w.Advance(60)
	if w.Due(1000) {
		t.Fatal("fired wheel still due")
	}
}

func TestNewRoundsSlotsUp(t *testing.T) {
	for _, n := range []int{0, 1, 3, 63, 64, 100} {
		w := New(n)
		got := len(w.slots)
		if got&(got-1) != 0 || got < 2 {
			t.Errorf("New(%d) gave %d slots", n, got)
		}
		if got < n {
			t.Errorf("New(%d) gave only %d slots", n, got)
		}
	}
}

// Property: each wheel behaves exactly like the reference queue under a
// random schedule/cancel/advance script — same fire counts at every step,
// same totals, and every scheduled timer fires exactly once unless canceled.
func TestPropertyWheelMatchesReference(t *testing.T) {
	type op struct {
		Kind     uint8  // 0,1 = schedule; 2 = advance; 3 = cancel
		Deadline uint16 // relative offset for schedules; advance step
		Target   uint8  // which earlier timer to cancel
	}
	for _, variant := range []string{"hashed", "hierarchical"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			f := func(ops []op) bool {
				var q Queue
				if variant == "hashed" {
					q = New(16) // small wheel to force collisions and wraps
				} else {
					q = NewHierarchical()
				}
				ref := &refQueue{}
				now := Tick(0)
				var qFired, refFired map[int]int
				qFired, refFired = map[int]int{}, map[int]int{}
				var qTimers []*Timer
				var refTimers []*refTimer
				id := 0
				for _, o := range ops {
					switch o.Kind % 4 {
					case 0, 1:
						tid := id
						id++
						d := now + Tick(o.Deadline%512)
						qTimers = append(qTimers, q.Schedule(d, func(Tick) { qFired[tid]++ }))
						refTimers = append(refTimers, ref.schedule(d, func(Tick) { refFired[tid]++ }))
					case 2:
						now += Tick(o.Deadline % 256)
						nq := q.Advance(now)
						nr := ref.advance(now)
						if nq != nr {
							return false
						}
					case 3:
						if len(qTimers) > 0 {
							i := int(o.Target) % len(qTimers)
							qc := qTimers[i].Cancel()
							rt := refTimers[i]
							// A timer is cancelable iff it has neither been
							// canceled nor fired — even if its deadline has
							// passed but no Advance has fired it yet.
							rc := !rt.canceled && refFired[i] == 0
							// Cancel on an already-fired timer returns false
							// in both; on pending returns true in both.
							if qc != rc {
								return false
							}
							rt.canceled = true
						}
					}
					if q.Len() == 0 != (ref.earliest() == NoDeadline) {
						return false
					}
				}
				// Drain both completely.
				now += 100000
				q.Advance(now)
				ref.advance(now)
				for tid := 0; tid < id; tid++ {
					if qFired[tid] != refFired[tid] {
						return false
					}
					if qFired[tid] > 1 {
						return false // double fire
					}
				}
				return q.Len() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: Earliest always equals the reference minimum after any script
// prefix (when queried, i.e. with lazy recomputation forced).
func TestPropertyEarliestExact(t *testing.T) {
	f := func(deadlines []uint16, advances []uint8) bool {
		for _, variant := range []int{0, 1} {
			var q Queue
			if variant == 0 {
				q = New(8)
			} else {
				q = NewHierarchical()
			}
			ref := &refQueue{}
			now := Tick(0)
			for i, d := range deadlines {
				dl := now + Tick(d%300)
				q.Schedule(dl, func(Tick) {})
				ref.schedule(dl, func(Tick) {})
				if i < len(advances) {
					now += Tick(advances[i] % 64)
					q.Advance(now)
					ref.advance(now)
				}
				if q.Earliest() != ref.earliest() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashedScheduleAdvance(b *testing.B) {
	w := New(256)
	b.ReportAllocs()
	now := Tick(0)
	for i := 0; i < b.N; i++ {
		w.Schedule(now+30, func(Tick) {})
		now += 31
		w.Advance(now)
	}
}

func BenchmarkHierarchicalScheduleAdvance(b *testing.B) {
	h := NewHierarchical()
	b.ReportAllocs()
	now := Tick(0)
	for i := 0; i < b.N; i++ {
		h.Schedule(now+30, func(Tick) {})
		now += 31
		h.Advance(now)
	}
}

func BenchmarkHashedDueCheckIdle(b *testing.B) {
	// The per-trigger-state check with one far-future event pending — the
	// cost the paper argues is negligible.
	w := New(256)
	w.Schedule(1<<40, func(Tick) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Due(Tick(i)) {
			b.Fatal("unexpected due")
		}
	}
}
