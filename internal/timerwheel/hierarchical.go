package timerwheel

// Hierarchical is a multi-level timing wheel (the "hierarchical" scheme of
// Varghese & Lauck). Level 0 has one-tick resolution; each higher level is
// coarser by a factor of the slot count. Timers too far out for level 0 park
// in a higher level and cascade down as the clock approaches them, so a mix
// of microsecond soft-timer events and millisecond protocol timeouts never
// crowds one slot list. Deadlines beyond the top level go to an overflow
// list and re-enter the wheel as it advances.
//
// Hierarchical implements Queue, and the soft-timer facility can use either
// variant; the hashed Wheel is the default (as in the paper), this variant
// backs the timer-structure ablation benchmark.
type Hierarchical struct {
	levels   [hLevels][hSlots]slot
	cur      Tick
	n        int
	overflow slot
	earliest Tick
	dirty    bool
	advGen   uint64
	free     *Timer // pooled-node free list (ScheduleFree), linked via next
}

const (
	hBits   = 6 // 64 slots per level
	hSlots  = 1 << hBits
	hLevels = 4 // covers 64^4 = ~16.7M ticks ≈ 16.7 s at 1 µs resolution
	hSpan   = Tick(1) << (hBits * hLevels)
)

// NewHierarchical returns an empty hierarchical wheel at tick 0.
func NewHierarchical() *Hierarchical {
	return &Hierarchical{earliest: NoDeadline}
}

// levelFor returns which level a deadline delta (deadline - cur) belongs to,
// or -1 for the overflow list.
func levelFor(delta Tick) int {
	for l := 0; l < hLevels; l++ {
		if delta < Tick(1)<<(hBits*(l+1)) {
			return l
		}
	}
	return -1
}

func (h *Hierarchical) place(t *Timer) {
	var delta Tick
	if t.deadline > h.cur {
		delta = t.deadline - h.cur
	}
	l := levelFor(delta)
	if l < 0 {
		h.overflow.push(t)
		return
	}
	idx := (t.deadline >> (hBits * l)) & (hSlots - 1)
	h.levels[l][idx].push(t)
}

// Schedule implements Queue.
func (h *Hierarchical) Schedule(deadline Tick, fn Handler) *Timer {
	if fn == nil {
		panic("timerwheel: schedule of nil handler")
	}
	t := &Timer{own: h}
	h.insert(t, deadline, fn)
	return t
}

// insert links a non-pending node into its level (Schedule and Timer.Rearm).
func (h *Hierarchical) insert(t *Timer, deadline Tick, fn Handler) {
	t.deadline, t.fn, t.gen = deadline, fn, h.advGen
	h.place(t)
	h.n++
	if deadline < h.earliest {
		h.earliest = deadline
		h.dirty = false
	}
}

// replace migrates a pending node to a new deadline (Timer.Reschedule).
func (h *Hierarchical) replace(t *Timer, deadline Tick) {
	t.slot.remove(t)
	t.slot = nil
	old := t.deadline
	t.deadline = deadline
	t.gen = h.advGen
	h.place(t)
	if old <= h.earliest {
		h.dirty = true // the earliest bound may have left with old
	}
	if deadline < h.earliest {
		h.earliest = deadline // strictly under the bound: exact again
		h.dirty = false
	}
}

// ScheduleFree implements Queue.
func (h *Hierarchical) ScheduleFree(deadline Tick, fn Handler) {
	if fn == nil {
		panic("timerwheel: schedule of nil handler")
	}
	t := h.free
	if t == nil {
		t = &Timer{}
	} else {
		h.free = t.next
		t.next = nil
	}
	t.deadline, t.fn, t.own, t.gen, t.pooled = deadline, fn, h, h.advGen, true
	h.place(t)
	h.n++
	if deadline < h.earliest {
		h.earliest = deadline
		h.dirty = false
	}
}

// Len implements Queue.
func (h *Hierarchical) Len() int { return h.n }

// Earliest implements Queue.
func (h *Hierarchical) Earliest() Tick {
	if h.n == 0 {
		return NoDeadline
	}
	if h.dirty {
		h.recomputeEarliest()
	}
	return h.earliest
}

func (h *Hierarchical) recomputeEarliest() {
	min := NoDeadline
	scan := func(s *slot) {
		for t := s.head; t != nil; t = t.next {
			if t.deadline < min {
				min = t.deadline
			}
		}
	}
	for l := 0; l < hLevels; l++ {
		for i := range h.levels[l] {
			scan(&h.levels[l][i])
		}
	}
	scan(&h.overflow)
	h.earliest = min
	h.dirty = false
}

// Advance implements Queue. Level-0 slots in the crossed range fire; when a
// level boundary is crossed, the corresponding higher-level slot cascades
// down (its timers are re-placed relative to the new time).
func (h *Hierarchical) Advance(now Tick) int {
	if now < h.cur {
		panic("timerwheel: Advance moved backwards")
	}
	if h.n == 0 || h.Earliest() > now {
		// Nothing can be due; jump the clock. Slot placement is indexed
		// by deadline prefix (not by insertion-relative offsets), and a
		// timer whose cascade boundary the jump skipped is caught by the
		// due-sweep below on a later Advance, so this is safe.
		h.cur = now
		return 0
	}
	h.advGen++
	fired := 0
	if now-h.cur >= hSlots*4 {
		// Large jump: a tick-by-tick walk would dominate, so sweep all
		// slots for due timers instead. Non-due timers stay where they
		// are; the due-sweep on later advances keeps them correct.
		fired += h.fireEverythingDue(now)
		h.cur = now
		return fired
	}
	for h.cur < now {
		h.cur++
		// Cascade any higher-level slot whose boundary we just crossed.
		for l := 1; l < hLevels; l++ {
			shift := uint(hBits * l)
			if h.cur&((Tick(1)<<shift)-1) != 0 {
				break // higher levels only cross when lower ones wrap
			}
			idx := (h.cur >> shift) & (hSlots - 1)
			h.cascade(&h.levels[l][idx])
		}
		if h.cur&(hSpan-1) == 0 {
			h.cascade(&h.overflow)
		}
		// Fire the level-0 slot for this tick.
		s := &h.levels[0][h.cur&(hSlots-1)]
		fired += h.fireSlot(s, now)
	}
	// Past-scheduled timers (deadline <= the pre-advance time) may sit in
	// slots the walk above didn't visit; sweep if the bound says so.
	if h.n > 0 && h.earliest <= now {
		if h.dirty {
			h.recomputeEarliest()
		}
		if h.earliest <= now {
			fired += h.fireEverythingDue(now)
		}
	}
	return fired
}

// cascade re-places every timer in s relative to the current time, firing
// none (firing happens only from level 0 or the due-sweep).
func (h *Hierarchical) cascade(s *slot) {
	t := s.head
	for t != nil {
		next := t.next
		s.remove(t)
		h.place(t)
		t = next
	}
}

func (h *Hierarchical) fireSlot(s *slot, now Tick) int {
	fired := 0
	t := s.head
	for t != nil {
		next := t.next
		if t.deadline <= now && t.gen != h.advGen {
			s.remove(t)
			t.slot = nil
			h.n--
			if t.deadline <= h.earliest {
				h.dirty = true
			}
			fired++
			// Recycle pooled nodes before running the handler, so a
			// handler that immediately reschedules reuses this node.
			fn := t.fn
			if t.pooled {
				t.fn, t.own = nil, nil
				t.next = h.free
				h.free = t
			}
			fn(now)
		}
		t = next
	}
	return fired
}

func (h *Hierarchical) fireEverythingDue(now Tick) int {
	fired := 0
	for l := 0; l < hLevels; l++ {
		for i := range h.levels[l] {
			fired += h.fireSlot(&h.levels[l][i], now)
		}
	}
	fired += h.fireSlot(&h.overflow, now)
	return fired
}

func (h *Hierarchical) noteCancel(t *Timer) {
	h.n--
	if t.deadline <= h.earliest {
		h.dirty = true
	}
}

// Now returns the wheel's current tick.
func (h *Hierarchical) Now() Tick { return h.cur }
