package metrics

import "testing"

// The Prefixed collision rule, pinned: prefixing performs no collision
// detection, so two hosts whose (prefix, name) pairs collapse to the same
// full name combine under the ordinary Merge rules — counters sum, gauges
// max, histograms add bucket-wise — and a cross-kind collision leaves
// both instruments alive under one name (the snapshot maps are per-kind).
func TestPrefixedNameCollisionsMergeByRule(t *testing.T) {
	// Host "a" exports counter "b.x"; host "a.b" exports counter "x".
	// Under the topology's "host.<name>." scheme both become
	// "host.a.b.x".
	ra := NewRegistry()
	ra.Counter("b.x").Add(3)
	rb := NewRegistry()
	rb.Counter("x").Add(4)

	merged := ra.Snapshot().Prefixed("host.a.")
	merged.Merge(rb.Snapshot().Prefixed("host.a.b."))
	if len(merged.Counters) != 1 {
		t.Fatalf("expected the colliding names to collapse to one counter, got %v", merged.Counters)
	}
	if got := merged.Counters["host.a.b.x"]; got != 7 {
		t.Fatalf("collided counters must sum: got %d, want 7", got)
	}

	// Gauges under the same collision take the pointwise max of value and
	// high-water mark.
	ga := NewRegistry()
	ga.Gauge("b.q").Set(10)
	ga.Gauge("b.q").Set(2) // value 2, max 10
	gb := NewRegistry()
	gb.Gauge("q").Set(5) // value 5, max 5
	gm := ga.Snapshot().Prefixed("host.a.")
	gm.Merge(gb.Snapshot().Prefixed("host.a.b."))
	g := gm.Gauges["host.a.b.q"]
	if g.Value != 5 || g.Max != 10 {
		t.Fatalf("collided gauges must max pointwise: got %+v", g)
	}

	// Histograms add bucket-wise when widths agree...
	ha := NewRegistry()
	ha.Histogram("b.h", 1, 8).Observe(0.5)
	hb := NewRegistry()
	hb.Histogram("h", 1, 8).Observe(0.5)
	hm := ha.Snapshot().Prefixed("host.a.")
	hm.Merge(hb.Snapshot().Prefixed("host.a.b."))
	if got := hm.Histograms["host.a.b.h"].Count; got != 2 {
		t.Fatalf("collided histograms must add: count %d, want 2", got)
	}
	// ...and panic on width mismatch rather than silently mixing scales.
	wa := NewRegistry()
	wa.Histogram("b.h", 1, 8).Observe(0.5)
	wb := NewRegistry()
	wb.Histogram("h", 2, 8).Observe(0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("width-mismatched collision did not panic")
			}
		}()
		wm := wa.Snapshot().Prefixed("host.a.")
		wm.Merge(wb.Snapshot().Prefixed("host.a.b."))
	}()
}

// A name colliding across instrument kinds is not an error: the per-kind
// maps keep both.
func TestPrefixedCrossKindCollisionKeepsBoth(t *testing.T) {
	ra := NewRegistry()
	ra.Counter("b.v").Add(1)
	rb := NewRegistry()
	rb.Gauge("v").Set(9)
	m := ra.Snapshot().Prefixed("host.a.")
	m.Merge(rb.Snapshot().Prefixed("host.a.b."))
	if m.Counters["host.a.b.v"] != 1 {
		t.Fatal("counter lost in cross-kind collision")
	}
	if m.Gauges["host.a.b.v"].Value != 9 {
		t.Fatal("gauge lost in cross-kind collision")
	}
}
