package metrics

import "testing"

// Telemetry hot-path microbenchmarks. The registry's promise is that
// instrumented code pays a pointer increment per update and zero
// allocations; these benchmarks are the proof (and the regression guard
// for every later PR that adds instruments).

func BenchmarkMetricsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkMetricsCounterIncNil(b *testing.B) {
	// The disabled-instrument path: a nil counter must cost only the nil
	// check.
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkMetricsGaugeSet(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench.gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkMetricsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.hist", 1, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 2500)) // mix of in-range and overflow
	}
}

func BenchmarkMetricsSnapshot(b *testing.B) {
	// Snapshot cost at a realistic registry size (the full instrumented
	// kernel registers a few dozen instruments).
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter(string(rune('a'+i)) + ".counter").Add(int64(i))
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram(string(rune('a'+i))+".hist", 1, 2000)
		for j := 0; j < 100; j++ {
			h.Observe(float64(j * 17 % 2000))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
