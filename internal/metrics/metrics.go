// Package metrics is the simulation-wide telemetry registry: typed
// Counters, Gauges and fixed-bucket Histograms, created once (get-or-create
// by name) and updated by pointer, so the instrumented hot paths allocate
// nothing and pay only a pointer increment per update. A Registry belongs
// to one simulation substrate (one kernel/engine); independent simulations
// on concurrent goroutines each own their registry, which is what keeps
// parallel experiment runs deterministic — snapshots depend only on the
// (seeded, deterministic) simulation state, never on scheduling order.
//
// Instruments come in two flavours:
//
//   - direct: Counter/Gauge/Histogram values written on the hot path;
//   - func: CounterFunc/GaugeFunc register a callback over an existing
//     field (e.g. kernel accounting, NIC counters) evaluated only at
//     Snapshot time, so pre-existing counters join the registry with zero
//     hot-path change. This is how the legacy core.Facility.Stats and
//     kernel.TriggerMeter APIs were migrated: their storage is now
//     registry-visible while the old accessors remain thin shims.
//
// Snapshot produces a deterministic, JSON-serializable view: map keys sort
// on encoding and histogram buckets are emitted as ascending sparse
// [index, count] pairs, so two runs of the same seeded simulation produce
// byte-identical snapshots regardless of worker count or registration
// order. Merge folds snapshots from independent engines (counters sum,
// gauges take the maximum, histograms add bucket-wise), which is how
// multi-row experiments aggregate per-engine telemetry in a
// parallelism-independent way.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"softtimers/internal/stats"
)

// Counter is a monotonically increasing int64. All methods are safe on a
// nil receiver (no-ops), so optionally-instrumented components need no
// branches at update sites.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n may be any sign; use for cost accumulation in ns).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time int64 with a separate high-water mark. Nil-safe
// like Counter.
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// SetMax raises the high-water mark without touching the current value.
func (g *Gauge) SetMax(v int64) {
	if g != nil && v > g.max {
		g.max = v
	}
}

// Value returns the last Set value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-width-bucket histogram (a registered
// stats.Histogram). Observe is the hot-path entry point; the bucket array
// is allocated once at registration.
type Histogram struct {
	name string
	h    *stats.Histogram
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.h.Add(v)
	}
}

// Underlying returns the backing stats.Histogram for quantile queries.
func (h *Histogram) Underlying() *stats.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Registry holds one simulation's instruments. It is not safe for
// concurrent use, matching the single-threaded engine it instruments;
// distinct engines own distinct registries.
type Registry struct {
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	funcCounters map[string]func() int64
	funcGauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Histogram),
		funcCounters: make(map[string]func() int64),
		funcGauges:   make(map[string]func() int64),
	}
}

// checkFresh panics when name is already registered under a different
// instrument kind — silent aliasing would corrupt snapshots.
func (r *Registry) checkFresh(name string, except string) {
	if _, ok := r.counters[name]; ok && except != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && except != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && except != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
	if _, ok := r.funcCounters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a counter func", name))
	}
	if _, ok := r.funcGauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge func", name))
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Components sharing a registry and a name share the counter
// (e.g. every pacer on one kernel accumulates into pacer.fires).
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket width and count if needed. Width/bucket parameters of
// an existing registration are not re-checked; the first registration
// wins.
func (r *Registry) Histogram(name string, width float64, nbuckets int) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{name: name, h: stats.NewHistogram(width, nbuckets)}
	r.hists[name] = h
	return h
}

// Adopt registers an existing stats.Histogram under name, so legacy
// histograms (the trigger meter's, the facility's delay histogram) become
// snapshot-visible without changing their owners' hot paths or public
// types. Re-adopting the same name replaces the backing histogram.
func (r *Registry) Adopt(name string, h *stats.Histogram) *Histogram {
	if h == nil {
		panic("metrics: Adopt of nil histogram")
	}
	if _, ok := r.hists[name]; !ok {
		r.checkFresh(name, "histogram")
	}
	wrapped := &Histogram{name: name, h: h}
	r.hists[name] = wrapped
	return wrapped
}

// CounterFunc registers fn as a lazily-evaluated counter: it is called at
// Snapshot time only. Registering an existing name replaces the function.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if fn == nil {
		panic("metrics: CounterFunc with nil func")
	}
	if _, ok := r.funcCounters[name]; !ok {
		r.checkFresh(name, "")
	}
	r.funcCounters[name] = fn
}

// GaugeFunc registers fn as a lazily-evaluated gauge.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if fn == nil {
		panic("metrics: GaugeFunc with nil func")
	}
	if _, ok := r.funcGauges[name]; !ok {
		r.checkFresh(name, "")
	}
	r.funcGauges[name] = fn
}

// BucketCount is one non-empty histogram bucket in a snapshot: the bucket
// index and its observation count, serialized as a two-element array.
type BucketCount struct {
	Index int
	Count int64
}

// MarshalJSON encodes the pair as [index, count].
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%d]", b.Index, b.Count)), nil
}

// UnmarshalJSON decodes the [index, count] pair.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var pair [2]int64
	if err := json.Unmarshal(data, &pair); err != nil {
		return err
	}
	b.Index = int(pair[0])
	b.Count = pair[1]
	return nil
}

// HistogramSnapshot is one histogram's state: fixed bucket width, total
// observation count, running sum, overflow count, and the non-empty
// buckets in ascending index order.
type HistogramSnapshot struct {
	Width    float64       `json:"width"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Overflow int64         `json:"overflow"`
	Buckets  []BucketCount `json:"buckets"`
}

// Quantile estimates the q-th quantile (q clamped to [0,1]) by linear
// interpolation within the containing sparse bucket — the same estimator
// as stats.Histogram.Quantile, so for an unmerged snapshot the two agree
// exactly. The one divergence is mass beyond the last bucket: the sparse
// form does not know the original bucket count, so overflowed mass
// reports one width past the last non-empty bucket instead of the
// histogram's fixed upper bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum int64
	var last int
	for _, bc := range h.Buckets {
		if float64(cum+bc.Count) >= target {
			within := (target - float64(cum)) / float64(bc.Count)
			if within < 0 {
				within = 0
			}
			return (float64(bc.Index) + within) * h.Width
		}
		cum += bc.Count
		last = bc.Index
	}
	return h.Width * float64(last+1)
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a registry's full state at one instant. JSON encoding is
// deterministic: map keys sort, buckets are ascending.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state, evaluating func
// instruments. The registry keeps running; snapshots are independent
// copies.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)+len(r.funcCounters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)+len(r.funcGauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, fn := range r.funcCounters {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.v, Max: g.max}
	}
	for name, fn := range r.funcGauges {
		v := fn()
		s.Gauges[name] = GaugeSnapshot{Value: v, Max: v}
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h.h)
	}
	return s
}

func snapshotHistogram(h *stats.Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Width:    h.Width(),
		Count:    h.N(),
		Sum:      h.Sum(),
		Overflow: h.Overflow(),
	}
	for i, n := 0, h.NumBuckets(); i < n; i++ {
		if c := h.Bucket(i); c > 0 {
			hs.Buckets = append(hs.Buckets, BucketCount{Index: i, Count: c})
		}
	}
	return hs
}

// Merge folds other into s: counters sum, gauge values and high-water
// marks take the maximum, histograms add bucket-wise (widths must match;
// mismatched widths panic — they indicate two different instruments
// sharing a name). Merging per-engine snapshots in a fixed order yields
// the same result at any worker count, since each input is itself
// deterministic.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, g := range other.Gauges {
		cur, ok := s.Gauges[name]
		if !ok {
			// First sighting: adopt as-is. Maxing against the zero-value
			// GaugeSnapshot would silently clamp negative gauges to 0.
			s.Gauges[name] = g
			continue
		}
		if g.Value > cur.Value {
			cur.Value = g.Value
		}
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		s.Gauges[name] = cur
	}
	for name, h := range other.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = h
			continue
		}
		if cur.Width != h.Width {
			panic(fmt.Sprintf("metrics: merging histogram %q with mismatched widths %g and %g",
				name, cur.Width, h.Width))
		}
		s.Histograms[name] = mergeHistogram(cur, h)
	}
}

func mergeHistogram(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Width:    a.Width,
		Count:    a.Count + b.Count,
		Sum:      a.Sum + b.Sum,
		Overflow: a.Overflow + b.Overflow,
	}
	byIdx := make(map[int]int64, len(a.Buckets)+len(b.Buckets))
	for _, bc := range a.Buckets {
		byIdx[bc.Index] += bc.Count
	}
	for _, bc := range b.Buckets {
		byIdx[bc.Index] += bc.Count
	}
	idxs := make([]int, 0, len(byIdx))
	for i := range byIdx {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		out.Buckets = append(out.Buckets, BucketCount{Index: i, Count: byIdx[i]})
	}
	return out
}

// Prefixed returns a copy of the snapshot with every instrument name
// prefixed — how multi-host topologies give each host its own namespace
// (host.<name>.kernel.syscalls, ...) inside one merged snapshot.
// Histogram bucket slices are shared with the receiver; snapshots are
// read-only views, so the aliasing is safe.
//
// Prefixing performs no collision detection: if two prefixed snapshots
// produce the same full name (host "a" with counter "b.x" and host "a.b"
// with counter "x" both yield "host.a.b.x"), a subsequent Merge combines
// them under the ordinary merge rules — counters sum, gauges take the
// max, histograms add bucket-wise and panic on width mismatch. A name
// colliding across instrument kinds (a counter on one host, a gauge on
// the other) is NOT an error either: the snapshot maps are per-kind, so
// both survive under the same name. Callers that need distinct totals
// must pick non-ambiguous host names; dots in host names are legal but
// collapse the namespace.
func (s *Snapshot) Prefixed(prefix string) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[prefix+name] = v
	}
	for name, g := range s.Gauges {
		out.Gauges[prefix+name] = g
	}
	for name, h := range s.Histograms {
		out.Histograms[prefix+name] = h
	}
	return out
}

// DropPrefix removes every instrument whose name starts with prefix.
// Multi-host topologies use it to strip per-host instruments that read
// engine-global state (sim.*) before namespacing: those values describe
// the execution substrate, not the host, and differ between the legacy
// shared engine and sharded execution.
func (s *Snapshot) DropPrefix(prefix string) {
	for name := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			delete(s.Gauges, name)
		}
	}
	for name := range s.Histograms {
		if strings.HasPrefix(name, prefix) {
			delete(s.Histograms, name)
		}
	}
}

// NewSnapshot returns an empty snapshot, ready to Merge into.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// WriteJSON writes the snapshot as indented JSON. Output is byte-stable
// for equal snapshots (encoding/json sorts map keys).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
