package metrics

import (
	"math"
	"testing"
)

// observe fills a registry histogram with a deterministic heavy-head,
// sparse-tail sample set offset by base.
func observe(h *Histogram, base float64, n int) {
	for i := 0; i < n; i++ {
		v := base + float64(i%97)*0.5 + float64(i%13)
		h.Observe(v)
	}
}

// An unmerged snapshot's Quantile must agree exactly with the live
// stats.Histogram it was taken from: same estimator, same answers.
func TestSnapshotQuantileMatchesLiveHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 2, 256)
	observe(h, 3, 10_000)
	snap := r.Snapshot().Histograms["lat"]
	for _, q := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		got, want := snap.Quantile(q), h.Underlying().Quantile(q)
		if got != want {
			t.Errorf("snapshot Quantile(%v) = %v, live histogram says %v", q, got, want)
		}
	}
	if snap.Quantile(-1) != snap.Quantile(0) || snap.Quantile(2) != snap.Quantile(1) {
		t.Error("out-of-range q must clamp to [0,1]")
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot must answer 0")
	}
}

// The satellite regression: Quantile of a Merge'd histogram equals
// Quantile of the equivalent single histogram fed both sample sets — a
// merge that mangles sparse-bucket alignment or counts shifts quantiles
// by whole buckets.
func TestMergedHistogramQuantileEqualsSingle(t *testing.T) {
	// Two hosts with disjoint-ish distributions (one low, one shifted into
	// the tail), plus the single histogram holding every sample.
	ra, rb, rall := NewRegistry(), NewRegistry(), NewRegistry()
	ha := ra.Histogram("lat", 2, 256)
	hb := rb.Histogram("lat", 2, 256)
	hall := rall.Histogram("lat", 2, 256)
	observe(ha, 0, 5_000)
	observe(hall, 0, 5_000)
	observe(hb, 150, 2_000)
	observe(hall, 150, 2_000)

	merged := ra.Snapshot()
	merged.Merge(rb.Snapshot())
	m := merged.Histograms["lat"]
	if m.Count != hall.Underlying().N() {
		t.Fatalf("merged count %d, want %d", m.Count, hall.Underlying().N())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.7, 0.71, 0.9, 0.99, 1} {
		got, want := m.Quantile(q), hall.Underlying().Quantile(q)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("merged Quantile(%v) = %v, single histogram says %v", q, got, want)
		}
	}
}
