package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/stats"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Underlying() != nil {
		t.Fatal("nil instruments must read zero")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup")
	r.Gauge("dup")
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Fatalf("value/max = %d/%d, want 2/5", g.Value(), g.Max())
	}
	g.SetMax(9)
	if g.Value() != 2 || g.Max() != 9 {
		t.Fatalf("after SetMax: value/max = %d/%d, want 2/9", g.Value(), g.Max())
	}
}

// TestHistogramBucketBoundaries pins the bucket-edge behaviour the
// snapshot schema relies on: a value exactly on a boundary lands in the
// upper bucket, negatives clamp to bucket 0, and the first out-of-range
// value overflows.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 3) // buckets [0,10) [10,20) [20,30), overflow >= 30
	for _, v := range []float64{-5, 0, 9.999, 10, 19.999, 20, 29.999, 30, 1e9} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	want := []BucketCount{{0, 3}, {1, 2}, {2, 2}}
	if s.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2", s.Overflow)
	}
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i, bc := range want {
		if s.Buckets[i] != bc {
			t.Fatalf("bucket[%d] = %v, want %v", i, s.Buckets[i], bc)
		}
	}
	// Sum is exact, not bucket-quantized (includes the clamped negative).
	if s.Sum != -5+0+9.999+10+19.999+20+29.999+30+1e9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.CounterFunc("lazy.counter", func() int64 { return v })
	r.GaugeFunc("lazy.gauge", func() int64 { return v * 2 })
	v = 7
	s := r.Snapshot()
	if s.Counters["lazy.counter"] != 7 {
		t.Fatalf("func counter = %d, want 7 (must evaluate at snapshot time)", s.Counters["lazy.counter"])
	}
	if s.Gauges["lazy.gauge"].Value != 14 || s.Gauges["lazy.gauge"].Max != 14 {
		t.Fatalf("func gauge = %+v, want 14/14", s.Gauges["lazy.gauge"])
	}
}

func TestAdoptHistogram(t *testing.T) {
	r := NewRegistry()
	legacy := stats.NewHistogram(1, 100)
	r.Adopt("legacy.hist", legacy)
	legacy.Add(3)
	legacy.Add(3.5)
	s := r.Snapshot().Histograms["legacy.hist"]
	if s.Count != 2 || len(s.Buckets) != 1 || s.Buckets[0] != (BucketCount{3, 2}) {
		t.Fatalf("adopted histogram snapshot = %+v", s)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", 1, 10)
	c.Inc()
	h.Observe(1)
	s := r.Snapshot()
	c.Inc()
	h.Observe(1)
	if s.Counters["c"] != 1 || s.Histograms["h"].Count != 1 {
		t.Fatal("snapshot must not alias live registry state")
	}
}

func TestMerge(t *testing.T) {
	mk := func(n int64) *Snapshot {
		r := NewRegistry()
		r.Counter("c").Add(n)
		r.Gauge("g").Set(n)
		h := r.Histogram("h", 1, 10)
		for i := int64(0); i < n; i++ {
			h.Observe(float64(i))
		}
		return r.Snapshot()
	}
	total := NewSnapshot()
	total.Merge(mk(2))
	total.Merge(mk(5))
	if total.Counters["c"] != 7 {
		t.Fatalf("merged counter = %d, want 7", total.Counters["c"])
	}
	if total.Gauges["g"].Max != 5 {
		t.Fatalf("merged gauge max = %d, want 5", total.Gauges["g"].Max)
	}
	hs := total.Histograms["h"]
	if hs.Count != 7 || hs.Sum != 0+1+0+1+2+3+4 {
		t.Fatalf("merged histogram = %+v", hs)
	}
	// Bucket 0 saw one observation from each input, bucket 4 only one.
	if hs.Buckets[0] != (BucketCount{0, 2}) || hs.Buckets[len(hs.Buckets)-1] != (BucketCount{4, 1}) {
		t.Fatalf("merged buckets = %v", hs.Buckets)
	}
}

func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging histograms of different widths must panic")
		}
	}()
	a, b := NewSnapshot(), NewSnapshot()
	a.Histograms["h"] = HistogramSnapshot{Width: 1}
	b.Histograms["h"] = HistogramSnapshot{Width: 2}
	a.Merge(b)
}

// TestJSONDeterminism checks that two registries populated in different
// orders serialize identically, and that the JSON round-trips.
func TestJSONDeterminism(t *testing.T) {
	build := func(reverse bool) *Snapshot {
		r := NewRegistry()
		names := []string{"alpha", "beta", "gamma"}
		if reverse {
			names = []string{"gamma", "beta", "alpha"}
		}
		for _, n := range names {
			r.Counter("c." + n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(3)
			r.Histogram("h."+n, 2, 8).Observe(5)
		}
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build(false).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("registration order changed JSON:\n%s\nvs\n%s", a.String(), b.String())
	}
	var back Snapshot
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["c.alpha"] != 5 {
		t.Fatalf("round-tripped counter = %d, want 5", back.Counters["c.alpha"])
	}
	if got := back.Histograms["h.beta"].Buckets; len(got) != 1 || got[0] != (BucketCount{2, 1}) {
		t.Fatalf("round-tripped buckets = %v", got)
	}
}

// Regression: a gauge absent from the receiver used to merge against the
// zero-value GaugeSnapshot, so negative values (drift, headroom) silently
// became 0. First sighting must adopt the gauge verbatim.
func TestMergeNegativeGaugeFirstSighting(t *testing.T) {
	a := NewSnapshot()
	b := NewSnapshot()
	b.Gauges["clock.drift_ns"] = GaugeSnapshot{Value: -750, Max: -50}
	a.Merge(b)
	if g := a.Gauges["clock.drift_ns"]; g.Value != -750 || g.Max != -50 {
		t.Fatalf("first-sighting merge = %+v, want {Value:-750 Max:-50}", g)
	}
	// Merging again still takes the pairwise max.
	c := NewSnapshot()
	c.Gauges["clock.drift_ns"] = GaugeSnapshot{Value: -900, Max: -10}
	a.Merge(c)
	if g := a.Gauges["clock.drift_ns"]; g.Value != -750 || g.Max != -10 {
		t.Fatalf("second merge = %+v, want {Value:-750 Max:-10}", g)
	}
}

// DropPrefix strips exactly the named namespace from every instrument map.
func TestSnapshotDropPrefix(t *testing.T) {
	s := NewSnapshot()
	s.Counters["sim.events_fired"] = 10
	s.Counters["kernel.syscalls"] = 3
	s.Gauges["sim.events_pending"] = GaugeSnapshot{Value: 1, Max: 2}
	s.Gauges["link.q"] = GaugeSnapshot{Value: 4, Max: 4}
	s.Histograms["sim.h"] = HistogramSnapshot{Width: 1}
	s.DropPrefix("sim.")
	if len(s.Counters) != 1 || s.Counters["kernel.syscalls"] != 3 {
		t.Fatalf("counters after drop: %v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges["link.q"].Max != 4 {
		t.Fatalf("gauges after drop: %v", s.Gauges)
	}
	if len(s.Histograms) != 0 {
		t.Fatalf("histograms after drop: %v", s.Histograms)
	}
}
