package metrics

// Virtual-time time series: a SeriesSet samples a fixed set of columns
// (closures over counters, gauges, histogram quantiles, or any host-local
// state) on a virtual-time cadence into bounded buffers. When a buffer
// fills, every other retained point is dropped and the sampling stride
// doubles — classic ring-halving downsampling — so an arbitrarily long
// run yields at most Capacity points whose timestamps are always exactly
// {0, stride, 2·stride, ...}·Interval after the first tick.
//
// Determinism: the driver calls Sample on a fixed virtual-time cadence,
// so the tick counter, stride evolution and retained timestamps are pure
// functions of elapsed virtual time — identical on every host sharing the
// cadence and invariant under sharding, placement and worker count
// (columns must read only host-local simulation state). Two SeriesSets
// sampled on the same cadence for the same virtual span therefore merge
// point-wise with no alignment step.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Merge kinds for combining equal-named columns across hosts.
const (
	MergeSum = "sum" // fleet total (counters, queue depths)
	MergeMax = "max" // fleet worst-case (quantiles, delays)
	MergeMin = "min" // fleet tightest (slack against a bound)
)

type seriesCol struct {
	name   string
	merge  string
	sample func() float64
	vals   []float64
}

// SeriesSet is one host's (or rig's) set of time-series columns, all
// sharing one timestamp vector. Not safe for concurrent use; it belongs
// to the engine goroutine that drives Sample.
type SeriesSet struct {
	interval int64 // ns between Sample calls (the driver's cadence)
	capacity int
	stride   int64 // record every stride-th tick
	ticks    int64
	times    []int64
	cols     []*seriesCol
	byName   map[string]*seriesCol
}

// NewSeriesSet builds a set sampled every intervalNS of virtual time,
// retaining at most capacity points. Capacity must be even and >= 2 so
// ring-halving keeps timestamps on the stride grid.
func NewSeriesSet(intervalNS int64, capacity int) *SeriesSet {
	if intervalNS <= 0 {
		panic("metrics: series interval must be positive")
	}
	if capacity < 2 || capacity%2 != 0 {
		panic(fmt.Sprintf("metrics: series capacity must be even and >= 2, got %d", capacity))
	}
	return &SeriesSet{
		interval: intervalNS,
		capacity: capacity,
		stride:   1,
		byName:   make(map[string]*seriesCol),
	}
}

// Add registers a column: sample is evaluated at each retained tick, and
// merge (MergeSum/MergeMax/MergeMin) says how equal-named columns combine
// across hosts. Duplicate names panic.
func (ss *SeriesSet) Add(name, merge string, sample func() float64) {
	if sample == nil {
		panic("metrics: series column with nil sample func")
	}
	switch merge {
	case MergeSum, MergeMax, MergeMin:
	default:
		panic(fmt.Sprintf("metrics: series column %q has unknown merge kind %q", name, merge))
	}
	if _, ok := ss.byName[name]; ok {
		panic(fmt.Sprintf("metrics: series column %q already registered", name))
	}
	c := &seriesCol{name: name, merge: merge, sample: sample}
	ss.cols = append(ss.cols, c)
	ss.byName[name] = c
}

// AddCounter registers a cumulative counter column (merge: sum).
func (ss *SeriesSet) AddCounter(name string, c *Counter) {
	ss.Add(name, MergeSum, func() float64 { return float64(c.Value()) })
}

// AddGauge registers a gauge column over its current value (merge: max).
func (ss *SeriesSet) AddGauge(name string, g *Gauge) {
	ss.Add(name, MergeMax, func() float64 { return float64(g.Value()) })
}

// AddQuantile registers a histogram-quantile column (merge: max — the
// fleet tail is the worst host's tail).
func (ss *SeriesSet) AddQuantile(name string, h *Histogram, q float64) {
	ss.Add(name, MergeMax, func() float64 { return h.Underlying().Quantile(q) })
}

// Interval returns the sampling cadence in ns.
func (ss *SeriesSet) Interval() int64 { return ss.interval }

// Sample records one tick at virtual time nowNS. The driver must call it
// exactly every Interval ns; ticks off the current stride are counted but
// not stored, and a full buffer halves itself and doubles the stride
// before storing.
func (ss *SeriesSet) Sample(nowNS int64) {
	t := ss.ticks
	ss.ticks++
	if t%ss.stride != 0 {
		return
	}
	if len(ss.times) >= ss.capacity {
		ss.decimate()
		if t%ss.stride != 0 {
			return
		}
	}
	ss.times = append(ss.times, nowNS)
	for _, c := range ss.cols {
		c.vals = append(c.vals, c.sample())
	}
}

// decimate keeps the even-indexed points (ticks 0, 2s, 4s, ...) and
// doubles the stride: retained timestamps stay exactly on the new grid.
func (ss *SeriesSet) decimate() {
	keep := (len(ss.times) + 1) / 2
	for i := 0; i < keep; i++ {
		ss.times[i] = ss.times[2*i]
	}
	ss.times = ss.times[:keep]
	for _, c := range ss.cols {
		for i := 0; i < keep; i++ {
			c.vals[i] = c.vals[2*i]
		}
		c.vals = c.vals[:keep]
	}
	ss.stride *= 2
}

// SeriesColumn is one exported column.
type SeriesColumn struct {
	Merge string    `json:"merge"`
	Vals  []float64 `json:"vals"`
}

// SeriesSnapshot is a SeriesSet's exported state: the shared timestamp
// vector plus named columns. JSON is deterministic (map keys sort).
type SeriesSnapshot struct {
	IntervalNS int64                   `json:"interval_ns"`
	Capacity   int                     `json:"capacity"`
	Stride     int64                   `json:"stride"`
	TimesNS    []int64                 `json:"times_ns"`
	Series     map[string]SeriesColumn `json:"series"`
}

// Snapshot copies the set's current state.
func (ss *SeriesSet) Snapshot() *SeriesSnapshot {
	out := &SeriesSnapshot{
		IntervalNS: ss.interval,
		Capacity:   ss.capacity,
		Stride:     ss.stride,
		TimesNS:    append([]int64(nil), ss.times...),
		Series:     make(map[string]SeriesColumn, len(ss.cols)),
	}
	for _, c := range ss.cols {
		out.Series[c.name] = SeriesColumn{Merge: c.merge, Vals: append([]float64(nil), c.vals...)}
	}
	return out
}

// Merge folds other into s point-wise. Both snapshots must come from sets
// sampled on the same cadence over the same virtual span (the topology
// driver guarantees this); if strides differ — one host decimated more
// than another, which the shared cadence rules out but Merge tolerates —
// the finer snapshot is decimated to match. Equal-named columns combine
// per their merge kind (mismatched kinds panic); new columns are adopted.
func (s *SeriesSnapshot) Merge(other *SeriesSnapshot) {
	if other == nil {
		return
	}
	if len(s.TimesNS) == 0 && len(s.Series) == 0 {
		// Empty receiver adopts wholesale — but a receiver that already has
		// a cadence configured (interval set, no points yet) is not a blank
		// slate: silently overwriting its IntervalNS/Capacity would let a
		// mis-cadenced snapshot slip through exactly where the non-empty
		// path panics. Enforce the same contract here.
		if s.IntervalNS != 0 && s.IntervalNS != other.IntervalNS {
			panic(fmt.Sprintf("metrics: merging series with mismatched intervals %d and %d",
				s.IntervalNS, other.IntervalNS))
		}
		s.IntervalNS, s.Stride = other.IntervalNS, other.Stride
		if s.Capacity == 0 {
			s.Capacity = other.Capacity
		}
		s.TimesNS = append([]int64(nil), other.TimesNS...)
		if s.Series == nil {
			s.Series = make(map[string]SeriesColumn, len(other.Series))
		}
		for name, c := range other.Series {
			s.Series[name] = SeriesColumn{Merge: c.Merge, Vals: append([]float64(nil), c.Vals...)}
		}
		return
	}
	if s.IntervalNS != other.IntervalNS {
		panic(fmt.Sprintf("metrics: merging series with mismatched intervals %d and %d",
			s.IntervalNS, other.IntervalNS))
	}
	o := other
	for s.Stride > o.Stride {
		o = o.decimated()
	}
	for o.Stride > s.Stride {
		*s = *s.decimated()
	}
	if len(s.TimesNS) != len(o.TimesNS) {
		panic(fmt.Sprintf("metrics: merging series with misaligned lengths %d and %d",
			len(s.TimesNS), len(o.TimesNS)))
	}
	for i, t := range o.TimesNS {
		if s.TimesNS[i] != t {
			panic(fmt.Sprintf("metrics: merging series with misaligned timestamps at %d: %d vs %d",
				i, s.TimesNS[i], t))
		}
	}
	for name, oc := range o.Series {
		cur, ok := s.Series[name]
		if !ok {
			s.Series[name] = SeriesColumn{Merge: oc.Merge, Vals: append([]float64(nil), oc.Vals...)}
			continue
		}
		if cur.Merge != oc.Merge {
			panic(fmt.Sprintf("metrics: merging series column %q with mismatched kinds %q and %q",
				name, cur.Merge, oc.Merge))
		}
		for i := range cur.Vals {
			switch cur.Merge {
			case MergeSum:
				cur.Vals[i] += oc.Vals[i]
			case MergeMax:
				if oc.Vals[i] > cur.Vals[i] {
					cur.Vals[i] = oc.Vals[i]
				}
			case MergeMin:
				if oc.Vals[i] < cur.Vals[i] {
					cur.Vals[i] = oc.Vals[i]
				}
			}
		}
		s.Series[name] = cur
	}
}

// decimated returns a copy with even-indexed points kept and the stride
// doubled — the snapshot-level mirror of SeriesSet.decimate.
func (s *SeriesSnapshot) decimated() *SeriesSnapshot {
	keep := (len(s.TimesNS) + 1) / 2
	out := &SeriesSnapshot{
		IntervalNS: s.IntervalNS,
		Capacity:   s.Capacity,
		Stride:     s.Stride * 2,
		TimesNS:    make([]int64, keep),
		Series:     make(map[string]SeriesColumn, len(s.Series)),
	}
	for i := 0; i < keep; i++ {
		out.TimesNS[i] = s.TimesNS[2*i]
	}
	for name, c := range s.Series {
		vals := make([]float64, keep)
		for i := 0; i < keep; i++ {
			vals[i] = c.Vals[2*i]
		}
		out.Series[name] = SeriesColumn{Merge: c.Merge, Vals: vals}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON, byte-stable for equal
// snapshots.
func (s *SeriesSnapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
