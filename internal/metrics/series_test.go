package metrics

import (
	"bytes"
	"testing"
)

// driveSeries samples ss at ticks 1..n of the given interval, as the
// topology's self-rescheduling sampler event would.
func driveSeries(ss *SeriesSet, intervalNS int64, n int) {
	for i := 1; i <= n; i++ {
		ss.Sample(int64(i) * intervalNS)
	}
}

// Ring-halving keeps at most capacity points, always on the stride grid:
// timestamps stay exactly stride*interval apart, and the stride doubles
// each time the buffer fills.
func TestSeriesDecimationGrid(t *testing.T) {
	const interval, capacity = 10, 4
	ss := NewSeriesSet(interval, capacity)
	tick := 0
	ss.Add("ticks", MergeSum, func() float64 { return float64(tick) })
	for i := 1; i <= 64; i++ {
		tick = i
		ss.Sample(int64(i) * interval)
	}
	s := ss.Snapshot()
	if len(s.TimesNS) > capacity {
		t.Fatalf("%d points exceed capacity %d", len(s.TimesNS), capacity)
	}
	// 64 ticks through a 4-point ring: each fill halves to 2 points and
	// doubles the stride, so tick 32's fill leaves stride 16 holding ticks
	// {0, 16, 32, 48} — and every retained point sits on that grid.
	if s.Stride != 16 {
		t.Fatalf("stride %d, want 16", s.Stride)
	}
	for i, ts := range s.TimesNS {
		want := int64(interval) + int64(i)*s.Stride*interval
		if ts != want {
			t.Fatalf("timestamp %d is %d, want %d (stride %d)", i, ts, want, s.Stride)
		}
	}
	// Columns sample at the retained tick, not at decimation time: the
	// "ticks" value must equal each timestamp's tick index.
	for i, v := range s.Series["ticks"].Vals {
		if want := float64(s.TimesNS[i] / interval); v != want {
			t.Fatalf("value %d is %v, want %v", i, v, want)
		}
	}
}

func TestSeriesCapacityNeverExceeded(t *testing.T) {
	for _, n := range []int{1, 2, 5, 31, 32, 33, 1000} {
		ss := NewSeriesSet(7, 8)
		ss.Add("c", MergeSum, func() float64 { return 1 })
		driveSeries(ss, 7, n)
		if got := len(ss.Snapshot().TimesNS); got > 8 {
			t.Fatalf("after %d ticks: %d points exceed capacity 8", n, got)
		}
	}
}

func TestSeriesInstrumentColumns(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	g := r.Gauge("depth")
	h := r.Histogram("lat", 1, 100)
	ss := NewSeriesSet(10, 4)
	ss.AddCounter("reqs", c)
	ss.AddGauge("depth", g)
	ss.AddQuantile("lat_p50", h, 0.5)
	c.Add(3)
	g.Set(5)
	for v := 0; v < 10; v++ {
		h.Observe(float64(v))
	}
	ss.Sample(10)
	s := ss.Snapshot()
	if got := s.Series["reqs"].Vals[0]; got != 3 {
		t.Fatalf("counter column %v, want 3", got)
	}
	if got := s.Series["depth"].Vals[0]; got != 5 {
		t.Fatalf("gauge column %v, want 5", got)
	}
	if got := s.Series["lat_p50"].Vals[0]; got != h.Underlying().Quantile(0.5) {
		t.Fatalf("quantile column %v, want %v", got, h.Underlying().Quantile(0.5))
	}
	if s.Series["reqs"].Merge != MergeSum || s.Series["depth"].Merge != MergeMax {
		t.Fatal("instrument columns carry wrong merge kinds")
	}
}

func TestSeriesPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("zero interval", func() { NewSeriesSet(0, 4) })
	expectPanic("odd capacity", func() { NewSeriesSet(10, 3) })
	expectPanic("capacity below 2", func() { NewSeriesSet(10, 0) })
	expectPanic("nil sample", func() { NewSeriesSet(10, 4).Add("x", MergeSum, nil) })
	expectPanic("unknown merge", func() { NewSeriesSet(10, 4).Add("x", "avg", func() float64 { return 0 }) })
	expectPanic("duplicate column", func() {
		ss := NewSeriesSet(10, 4)
		ss.Add("x", MergeSum, func() float64 { return 0 })
		ss.Add("x", MergeSum, func() float64 { return 0 })
	})
}

// Snapshot must deep-copy: further sampling must not leak into an
// already-taken snapshot.
func TestSeriesSnapshotIsolation(t *testing.T) {
	ss := NewSeriesSet(10, 8)
	v := 0.0
	ss.Add("x", MergeSum, func() float64 { return v })
	v = 1
	ss.Sample(10)
	snap := ss.Snapshot()
	v = 2
	ss.Sample(20)
	if len(snap.TimesNS) != 1 || snap.Series["x"].Vals[0] != 1 {
		t.Fatalf("snapshot mutated by later sampling: %+v", snap)
	}
}

func TestSeriesMergeKinds(t *testing.T) {
	build := func(vals map[string][2]float64) *SeriesSnapshot {
		ss := NewSeriesSet(10, 4)
		tick := 0
		for name, v := range vals {
			name, v := name, v
			switch name {
			case "total":
				ss.Add(name, MergeSum, func() float64 { return v[tick] })
			case "worst":
				ss.Add(name, MergeMax, func() float64 { return v[tick] })
			case "slack":
				ss.Add(name, MergeMin, func() float64 { return v[tick] })
			}
		}
		tick = 0
		ss.Sample(10)
		tick = 1
		ss.Sample(20)
		return ss.Snapshot()
	}
	a := build(map[string][2]float64{"total": {1, 2}, "worst": {5, 1}, "slack": {3, 3}})
	b := build(map[string][2]float64{"total": {10, 20}, "worst": {2, 9}, "slack": {4, 1}})
	a.Merge(b)
	if got := a.Series["total"].Vals; got[0] != 11 || got[1] != 22 {
		t.Fatalf("sum merge %v", got)
	}
	if got := a.Series["worst"].Vals; got[0] != 5 || got[1] != 9 {
		t.Fatalf("max merge %v", got)
	}
	if got := a.Series["slack"].Vals; got[0] != 3 || got[1] != 1 {
		t.Fatalf("min merge %v", got)
	}
}

// An empty receiver adopts the other snapshot wholesale — and by copy, so
// the adopted state does not alias the source.
func TestSeriesMergeEmptyAdopts(t *testing.T) {
	ss := NewSeriesSet(10, 4)
	ss.Add("x", MergeSum, func() float64 { return 1 })
	ss.Sample(10)
	src := ss.Snapshot()
	var dst SeriesSnapshot
	dst.Merge(src)
	if dst.IntervalNS != 10 || len(dst.TimesNS) != 1 || dst.Series["x"].Vals[0] != 1 {
		t.Fatalf("adoption mangled: %+v", dst)
	}
	src.TimesNS[0] = 999
	src.Series["x"].Vals[0] = 999
	if dst.TimesNS[0] == 999 || dst.Series["x"].Vals[0] == 999 {
		t.Fatal("adopted snapshot aliases its source")
	}
}

// A receiver with a cadence configured but no points yet (a set that
// never sampled, or a hand-built accumulator) is not a blank slate: it
// must reject a mismatched-interval source exactly like the non-empty
// path, not silently adopt the foreign IntervalNS/Capacity. Regression:
// the empty-receiver branch used to overwrite both.
func TestSeriesMergeEmptyKeepsConfiguredCadence(t *testing.T) {
	mk := func(interval int64) *SeriesSnapshot {
		ss := NewSeriesSet(interval, 4)
		ss.Add("x", MergeSum, func() float64 { return 1 })
		ss.Sample(interval)
		return ss.Snapshot()
	}

	// Same interval: adoption proceeds, and the receiver's configured
	// capacity survives.
	dst := &SeriesSnapshot{IntervalNS: 10, Capacity: 8}
	dst.Merge(mk(10))
	if dst.IntervalNS != 10 || dst.Capacity != 8 || len(dst.TimesNS) != 1 {
		t.Fatalf("same-interval adoption mangled config: %+v", dst)
	}

	// Mismatched interval: panic, like the non-empty path.
	defer func() {
		if recover() == nil {
			t.Fatal("empty receiver with IntervalNS=10 adopted an IntervalNS=20 snapshot without panicking")
		}
	}()
	bad := &SeriesSnapshot{IntervalNS: 10}
	bad.Merge(mk(20))
}

// Merging snapshots whose strides diverged (one ring decimated more than
// the other) decimates the finer one onto the coarser grid first.
func TestSeriesMergeAcrossStrides(t *testing.T) {
	coarse := NewSeriesSet(10, 4)
	coarse.Add("x", MergeSum, func() float64 { return 1 })
	fine := NewSeriesSet(10, 16)
	fine.Add("x", MergeSum, func() float64 { return 2 })
	driveSeries(coarse, 10, 16) // stride 8 by now
	driveSeries(fine, 10, 16)   // still stride 1 or 2
	a, b := coarse.Snapshot(), fine.Snapshot()
	if a.Stride == b.Stride {
		t.Fatalf("test needs diverged strides, both %d", a.Stride)
	}
	a.Merge(b)
	for i, ts := range a.TimesNS {
		want := int64(10) + int64(i)*a.Stride*10
		if ts != want {
			t.Fatalf("merged timestamp %d is %d, want %d", i, ts, want)
		}
	}
	for _, v := range a.Series["x"].Vals {
		if v != 3 {
			t.Fatalf("merged column value %v, want 3", v)
		}
	}

	// And the mirror: merging the coarse one INTO the fine one decimates
	// the receiver.
	a2, b2 := coarse.Snapshot(), fine.Snapshot()
	b2.Merge(a2)
	if b2.Stride != a2.Stride || len(b2.TimesNS) != len(a2.TimesNS) {
		t.Fatalf("receiver not decimated: stride %d vs %d", b2.Stride, a2.Stride)
	}
}

func TestSeriesMergePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	snap := func(interval int64, merge string, firstTick int64) *SeriesSnapshot {
		ss := NewSeriesSet(interval, 4)
		ss.Add("x", merge, func() float64 { return 1 })
		ss.Sample(firstTick * interval)
		return ss.Snapshot()
	}
	expectPanic("interval mismatch", func() { snap(10, MergeSum, 1).Merge(snap(20, MergeSum, 1)) })
	expectPanic("merge-kind mismatch", func() { snap(10, MergeSum, 1).Merge(snap(10, MergeMax, 1)) })
	expectPanic("misaligned timestamps", func() { snap(10, MergeSum, 1).Merge(snap(10, MergeSum, 2)) })
}

// Equal sets must serialize to equal bytes — the property the shard-
// determinism smoke diffs rely on.
func TestSeriesJSONByteStable(t *testing.T) {
	mk := func() *bytes.Buffer {
		ss := NewSeriesSet(10, 4)
		ss.Add("b", MergeSum, func() float64 { return 1 })
		ss.Add("a", MergeMax, func() float64 { return 2 })
		driveSeries(ss, 10, 9)
		var buf bytes.Buffer
		if err := ss.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk().Bytes(), mk().Bytes()) {
		t.Fatal("equal series sets serialized to different bytes")
	}
}
