// Package flowtrace records sampled per-packet spans: for each traced
// packet, the virtual timestamp of every hop it takes through the
// simulated network — NIC tx, link serialization, cut-through switch
// forwards (leaf-spine trunks included), NIC rx rings, protocol
// handlers, TCP segment/ack processing.
//
// The design contract is zero cost when tracing is off: a span is a
// *Span pointer carried on netstack.Packet, every hop site is a
// nil-receiver method call, and no allocation or RNG draw happens for
// untraced packets. Sampling is decided per flow (not per packet) from a
// dedicated per-host RNG stream derived from (seed, host name), so the
// decision sequence — and therefore the traced-span set — is invariant
// under sharding, placement and worker count, and enabling tracing never
// perturbs workload RNG draws.
//
// Span records are pooled arena-style (fixed-capacity hop arrays carved
// from chunks, recycled through a free list) on per-shard Recorders.
// A span migrates across shards with its packet: the ShardGroup round
// barrier that flushes the packet's conduit is the happens-before edge
// for the span too, so cross-shard hops stitch without locks. The span
// finishes when the packet's arena refcount drops to zero, on whichever
// shard that happens; Export merges all recorders and sorts by span ID
// (origin host address | per-host origination counter), which is
// mode-invariant, so exported traces are byte-identical at any shard or
// worker count.
package flowtrace

import (
	"sort"
	"strconv"

	"softtimers/internal/sim"
)

// HopKind classifies one step of a packet's path.
type HopKind uint8

const (
	// HopNICTx: the NIC handed the packet to its outbound link.
	HopNICTx HopKind = iota
	// HopLinkTx: serialization onto a link began.
	HopLinkTx
	// HopLinkRx: the packet arrived at the link's far end.
	HopLinkRx
	// HopSwitch: a cut-through switch forwarded the packet (same instant
	// as the LinkRx that carried it in).
	HopSwitch
	// HopNICRing: the packet landed in a NIC rx ring.
	HopNICRing
	// HopNICRx: a protocol handler picked the packet up (softirq or poll).
	HopNICRx
	// HopTCP: the TCP layer processed the segment or ack.
	HopTCP

	numHopKinds
)

var hopKindNames = [numHopKinds]string{
	"nic_tx", "link_tx", "link_rx", "switch_fwd", "nic_ring", "nic_rx", "tcp",
}

func (k HopKind) String() string {
	if int(k) < len(hopKindNames) {
		return hopKindNames[k]
	}
	return "hop" + strconv.Itoa(int(k))
}

// Hop is one recorded step: what happened, where, and at what virtual time.
type Hop struct {
	Kind HopKind
	Loc  int32 // Locations id; 0 = unknown
	At   sim.Time
}

// MaxHops bounds a span's hop array. A flat switched path records 8 hops
// end to end and a leaf-spine path 12; overflow past the cap is counted,
// not stored.
const MaxHops = 16

// Span is the pooled per-packet trace record. Fields are unexported and
// written only by the owning packet's event path (single goroutine at a
// time; migration between shards is ordered by the conduit flush).
type Span struct {
	id      uint64
	flow    int
	kind    int
	seq     int64
	src     int32
	dst     int32
	n       int32
	dropped int32
	hops    [MaxHops]Hop
	next    *Span // recorder free list
}

// Hop appends a hop. Nil-receiver safe: untraced packets pay exactly this
// nil test at every hop site.
func (s *Span) Hop(k HopKind, loc int32, at sim.Time) {
	if s == nil {
		return
	}
	if int(s.n) == len(s.hops) {
		s.dropped++
		return
	}
	s.hops[s.n] = Hop{Kind: k, Loc: loc, At: at}
	s.n++
}

// HopHere appends a hop at the same instant as the span's latest one —
// for sites that run synchronously inside another hop's event and have no
// clock of their own (a cut-through switch forward executes inside the
// link arrival that delivered the packet).
func (s *Span) HopHere(k HopKind, loc int32) {
	if s == nil || s.n == 0 {
		return
	}
	s.Hop(k, loc, s.hops[s.n-1].At)
}

// ID returns the span's mode-invariant identity (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Hops returns the recorded hops (aliasing the span's array; read-only).
func (s *Span) Hops() []Hop {
	if s == nil {
		return nil
	}
	return s.hops[:s.n]
}

// spanChunk is the pool carve size, mirroring netstack.Arena's chunking.
const spanChunk = 64

// Recorder owns span storage for one shard: a chunk-carved free list for
// live spans and a done list of finished ones. All access happens on the
// shard's event goroutine (or, for a finished migrant span, on the
// destination shard after the conduit-flush barrier).
type Recorder struct {
	free     *Span
	done     []*Span
	started  int64
	finished int64
	hops     int64
	droppedH int64
}

// NewRecorder returns an empty per-shard recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// alloc carves or recycles a span and stamps its identity.
func (r *Recorder) alloc(id uint64) *Span {
	s := r.free
	if s == nil {
		chunk := make([]Span, spanChunk)
		for i := 0; i < len(chunk)-1; i++ {
			chunk[i].next = &chunk[i+1]
		}
		s = &chunk[0]
	}
	r.free = s.next
	*s = Span{id: id}
	r.started++
	return s
}

// Finish retires a finished span with its packet's identity fields; the
// owning arena calls this when the packet's refcount drops to zero. The
// finishing recorder may differ from the allocating one (the span
// migrated with its packet); each keeps its own counters and done list,
// and Export merges.
func (r *Recorder) Finish(s *Span, flow, kind int, seq int64, src, dst int32) {
	if r == nil || s == nil {
		return
	}
	s.flow, s.kind, s.seq, s.src, s.dst = flow, kind, seq, src, dst
	r.done = append(r.done, s)
	r.finished++
	r.hops += int64(s.n)
	r.droppedH += int64(s.dropped)
}

// Started returns the spans allocated by this recorder.
func (r *Recorder) Started() int64 { return r.started }

// Finished returns the spans retired on this recorder.
func (r *Recorder) Finished() int64 { return r.finished }

// HopCount returns total hops across this recorder's finished spans.
func (r *Recorder) HopCount() int64 { return r.hops }

// DroppedHops returns hops lost to MaxHops overflow on finished spans.
func (r *Recorder) DroppedHops() int64 { return r.droppedH }

// Reset recycles every finished span back to the free list.
func (r *Recorder) Reset() {
	for _, s := range r.done {
		s.next = r.free
		r.free = s
	}
	r.done = r.done[:0]
}

// Sampler makes one host's flow-sampling decisions and allocates span
// identities. The RNG is a private stream (never the host's workload
// stream), so enabling tracing does not perturb any workload draw; the
// base is derived from the host's address, so IDs are globally unique and
// origination order is host-local — both mode-invariant.
type Sampler struct {
	rec      *Recorder
	rng      *sim.RNG
	rate     uint64
	maxFlows int
	sampled  int
	base     uint64
	nextID   uint64
}

// NewSampler builds a sampler tracing 1-in-rate flows (rate 0 disables,
// rate 1 traces all) on rec, capped at maxFlows sampled flows (0 =
// unlimited) to bound span memory on long runs.
func NewSampler(rec *Recorder, rng *sim.RNG, rate uint64, base uint64, maxFlows int) *Sampler {
	return &Sampler{rec: rec, rng: rng, rate: rate, base: base, maxFlows: maxFlows}
}

// SampleFlow decides whether the caller's next flow is traced: at most
// one draw from the private stream per call, in host-local call order.
// Once the flow cap is reached no further draws happen — the cap trips at
// the same call in every execution mode, so determinism holds.
func (s *Sampler) SampleFlow() bool {
	if s == nil || s.rate == 0 {
		return false
	}
	if s.maxFlows > 0 && s.sampled >= s.maxFlows {
		return false
	}
	if s.rate > 1 && s.rng.Uint64()%s.rate != 0 {
		return false
	}
	s.sampled++
	return true
}

// StartSpan allocates a span for one packet of a traced flow. The caller
// attaches it to the packet; identity fields are captured at finish time
// from the packet itself.
func (s *Sampler) StartSpan() *Span {
	if s == nil {
		return nil
	}
	s.nextID++
	return s.rec.alloc(s.base | s.nextID)
}

// SampledFlows returns how many flows this sampler chose to trace.
func (s *Sampler) SampledFlows() int {
	if s == nil {
		return 0
	}
	return s.sampled
}

// Locations is the registry of hop sites (links, NICs, switches), built
// in deterministic assembly order before the simulation starts and
// read-only after. Id 0 is the unknown location.
type Locations struct {
	names []string
	hosts []int32
}

// NewLocations returns a registry holding only the unknown location.
func NewLocations() *Locations {
	return &Locations{names: []string{"?"}, hosts: []int32{0}}
}

// Register adds a hop site and returns its id. hostAddr is the owning
// host's packet address (0 for switch fabric sites); the Chrome flow
// exporter uses it to anchor arrows to host process rows.
func (l *Locations) Register(name string, hostAddr int32) int32 {
	l.names = append(l.names, name)
	l.hosts = append(l.hosts, hostAddr)
	return int32(len(l.names) - 1)
}

// Name resolves a location id (out of range → "?").
func (l *Locations) Name(id int32) string {
	if l == nil || id < 0 || int(id) >= len(l.names) {
		return "?"
	}
	return l.names[id]
}

// HostAddr resolves a location's owning host address (0 = none).
func (l *Locations) HostAddr(id int32) int32 {
	if l == nil || id < 0 || int(id) >= len(l.hosts) {
		return 0
	}
	return l.hosts[id]
}

// HopData is one exported hop.
type HopData struct {
	Kind string `json:"kind"`
	Loc  string `json:"loc"`
	AtNS int64  `json:"at_ns"`
}

// SpanData is one exported span, in deterministic JSON form.
type SpanData struct {
	ID            uint64    `json:"id"`
	Flow          int       `json:"flow"`
	Kind          string    `json:"kind"`
	Seq           int64     `json:"seq"`
	Src           int32     `json:"src"`
	Dst           int32     `json:"dst"`
	Hops          []HopData `json:"hops"`
	TruncatedHops int32     `json:"truncated_hops,omitempty"`

	// RawKind and loc host addrs survive for programmatic consumers
	// (experiment assertions, Chrome flow export).
	RawKind  int   `json:"-"`
	FirstLoc int32 `json:"-"`
	LastLoc  int32 `json:"-"`
}

// Export merges finished spans from every recorder, resolves names, and
// sorts by span ID — a mode-invariant order, so the result (and its JSON)
// is byte-identical at any shard or worker count. kindName maps the
// packet-kind int to a label (nil → decimal).
func Export(loc *Locations, kindName func(int) string, recs ...*Recorder) []SpanData {
	var out []SpanData
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, s := range r.done {
			d := SpanData{
				ID: s.id, Flow: s.flow, Seq: s.seq,
				Src: s.src, Dst: s.dst,
				TruncatedHops: s.dropped,
				RawKind:       s.kind,
			}
			if kindName != nil {
				d.Kind = kindName(s.kind)
			} else {
				d.Kind = strconv.Itoa(s.kind)
			}
			d.Hops = make([]HopData, s.n)
			for i, h := range s.Hops() {
				d.Hops[i] = HopData{Kind: h.Kind.String(), Loc: loc.Name(h.Loc), AtNS: int64(h.At)}
			}
			if s.n > 0 {
				d.FirstLoc = s.hops[0].Loc
				d.LastLoc = s.hops[s.n-1].Loc
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
