package flowtrace

import (
	"testing"

	"softtimers/internal/sim"
)

// Untraced packets carry a nil *Span; every hop site must be a free no-op.
func TestNilSpanHopsAreNoOps(t *testing.T) {
	var s *Span
	if n := testing.AllocsPerRun(100, func() {
		s.Hop(HopLinkTx, 3, 42)
		s.HopHere(HopSwitch, 4)
	}); n != 0 {
		t.Fatalf("nil-span hops allocate %.1f times per call, want 0", n)
	}
	if s.ID() != 0 {
		t.Fatalf("nil span reports id %d", s.ID())
	}
}

func TestSpanHopRecordingAndOverflow(t *testing.T) {
	r := NewRecorder()
	samp := NewSampler(r, sim.NewRNG(1), 1, 7<<32, 0)
	if !samp.SampleFlow() {
		t.Fatal("rate-1 sampler rejected a flow")
	}
	s := samp.StartSpan()
	for i := 0; i < MaxHops+5; i++ {
		s.Hop(HopLinkTx, int32(i), sim.Time(i*10))
	}
	hops := s.Hops()
	if len(hops) != MaxHops {
		t.Fatalf("span holds %d hops, want %d", len(hops), MaxHops)
	}
	for i, h := range hops {
		if h.Loc != int32(i) || h.At != sim.Time(i*10) {
			t.Fatalf("hop %d recorded as %+v", i, h)
		}
	}
	r.Finish(s, 9, 2, 1, 3, 4)
	if r.DroppedHops() != 5 {
		t.Fatalf("dropped hops %d, want 5", r.DroppedHops())
	}
	if r.HopCount() != MaxHops {
		t.Fatalf("hop count %d, want %d", r.HopCount(), MaxHops)
	}
}

// HopHere clones the latest hop's instant; on an empty span it must do
// nothing (there is no instant to share yet).
func TestHopHere(t *testing.T) {
	r := NewRecorder()
	s := r.alloc(1)
	s.HopHere(HopSwitch, 5)
	if len(s.Hops()) != 0 {
		t.Fatal("HopHere on an empty span recorded a hop")
	}
	s.Hop(HopLinkRx, 2, 100)
	s.HopHere(HopSwitch, 5)
	hops := s.Hops()
	if len(hops) != 2 || hops[1].At != 100 || hops[1].Kind != HopSwitch {
		t.Fatalf("HopHere recorded %+v", hops)
	}
}

// Reset must recycle finished spans through the free list: after a
// Finish+Reset cycle the next alloc reuses storage instead of carving.
func TestRecorderRecyclesSpans(t *testing.T) {
	r := NewRecorder()
	first := r.alloc(1)
	first.Hop(HopTCP, 1, 5)
	r.Finish(first, 1, 0, 0, 1, 2)
	r.Reset()
	second := r.alloc(2)
	if first != second {
		t.Fatal("alloc after Reset did not reuse the recycled span")
	}
	if second.ID() != 2 || len(second.Hops()) != 0 {
		t.Fatalf("recycled span not reinitialized: id=%d hops=%d", second.ID(), len(second.Hops()))
	}
	if r.Started() != 2 || r.Finished() != 1 {
		t.Fatalf("counters started=%d finished=%d, want 2 and 1", r.Started(), r.Finished())
	}
	// Steady state: alloc/finish/reset cycles must not allocate once the
	// first chunk is carved.
	if n := testing.AllocsPerRun(100, func() {
		s := r.alloc(3)
		s.Hop(HopTCP, 1, 5)
		r.Finish(s, 1, 0, 0, 1, 2)
		r.Reset()
	}); n != 0 {
		t.Fatalf("steady-state span cycle allocates %.1f times, want 0", n)
	}
}

func TestSamplerRatesAndCap(t *testing.T) {
	// Rate 0 disables sampling entirely — and a nil sampler behaves the same.
	off := NewSampler(NewRecorder(), sim.NewRNG(1), 0, 0, 0)
	var nilSamp *Sampler
	for i := 0; i < 100; i++ {
		if off.SampleFlow() || nilSamp.SampleFlow() {
			t.Fatal("disabled sampler accepted a flow")
		}
	}
	if nilSamp.StartSpan() != nil {
		t.Fatal("nil sampler returned a span")
	}

	// Rate 1 traces everything, up to the flow cap.
	all := NewSampler(NewRecorder(), sim.NewRNG(1), 1, 0, 3)
	got := 0
	for i := 0; i < 100; i++ {
		if all.SampleFlow() {
			got++
		}
	}
	if got != 3 || all.SampledFlows() != 3 {
		t.Fatalf("capped rate-1 sampler accepted %d flows, want 3", got)
	}

	// Rate-n sampling draws from the given stream only: equal seeds give
	// equal decision sequences (the determinism that makes traced runs
	// byte-identical across shard placements).
	a := NewSampler(NewRecorder(), sim.NewRNG(7), 4, 0, 0)
	b := NewSampler(NewRecorder(), sim.NewRNG(7), 4, 0, 0)
	any := false
	for i := 0; i < 256; i++ {
		da, db := a.SampleFlow(), b.SampleFlow()
		if da != db {
			t.Fatalf("decision %d diverged between equal-seed samplers", i)
		}
		any = any || da
	}
	if !any {
		t.Fatal("rate-4 sampler accepted nothing in 256 flows")
	}
}

// Span IDs are (base | counter): unique across hosts and allocated in
// host-local order, which is what makes Export's sort mode-invariant.
func TestSamplerSpanIdentity(t *testing.T) {
	r := NewRecorder()
	s := NewSampler(r, sim.NewRNG(1), 1, uint64(3)<<32, 0)
	first, second := s.StartSpan(), s.StartSpan()
	if first.ID() != 3<<32|1 || second.ID() != 3<<32|2 {
		t.Fatalf("span ids %#x, %#x", first.ID(), second.ID())
	}
}

func TestExportMergesAndSorts(t *testing.T) {
	loc := NewLocations()
	l1 := loc.Register("link.a", 1)
	l2 := loc.Register("nic.b.eth0", 2)

	ra, rb := NewRecorder(), NewRecorder()
	// Finish spans out of ID order, split across two recorders, as a
	// sharded run would.
	s2 := ra.alloc(2 << 32)
	s2.Hop(HopLinkTx, l1, 10)
	ra.Finish(s2, 20, 1, 0, 2, 1)
	s1 := rb.alloc(1 << 32)
	s1.Hop(HopNICTx, l2, 5)
	s1.Hop(HopLinkTx, 99, 7) // unregistered location resolves to "?"
	rb.Finish(s1, 10, 3, 4, 1, 2)

	out := Export(loc, func(k int) string { return map[int]string{1: "ack", 3: "data"}[k] }, ra, rb, nil)
	if len(out) != 2 {
		t.Fatalf("exported %d spans, want 2", len(out))
	}
	if out[0].ID != 1<<32 || out[1].ID != 2<<32 {
		t.Fatalf("export not sorted by id: %#x, %#x", out[0].ID, out[1].ID)
	}
	d := out[0]
	if d.Flow != 10 || d.Kind != "data" || d.Seq != 4 || d.Src != 1 || d.Dst != 2 {
		t.Fatalf("span identity mangled: %+v", d)
	}
	if d.Hops[0].Loc != "nic.b.eth0" || d.Hops[1].Loc != "?" {
		t.Fatalf("location names mangled: %+v", d.Hops)
	}
	if d.FirstLoc != l2 || d.LastLoc != 99 {
		t.Fatalf("first/last loc ids %d, %d", d.FirstLoc, d.LastLoc)
	}
	if out[1].Kind != "ack" {
		t.Fatalf("kind name %q, want ack", out[1].Kind)
	}

	// Nil kindName falls back to the decimal packet kind.
	raw := Export(loc, nil, ra)
	if raw[0].Kind != "1" {
		t.Fatalf("nil kindName produced %q, want \"1\"", raw[0].Kind)
	}
}

func TestLocationsResolve(t *testing.T) {
	loc := NewLocations()
	id := loc.Register("switch.s0", 0)
	if got := loc.Name(id); got != "switch.s0" {
		t.Fatalf("Name(%d) = %q", id, got)
	}
	if loc.Name(0) != "?" || loc.Name(-1) != "?" || loc.Name(1000) != "?" {
		t.Fatal("out-of-range location ids must resolve to \"?\"")
	}
	var nilLoc *Locations
	if nilLoc.Name(1) != "?" || nilLoc.HostAddr(1) != 0 {
		t.Fatal("nil Locations must resolve to unknown")
	}
	hid := loc.Register("nic.h.eth0", 7)
	if loc.HostAddr(hid) != 7 || loc.HostAddr(id) != 0 {
		t.Fatal("HostAddr mangled")
	}
}

func TestHopKindStrings(t *testing.T) {
	for k := HopKind(0); k < numHopKinds; k++ {
		if k.String() == "" || k.String()[0] == 'h' && k.String() != "hop"+k.String()[3:] {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if got := HopKind(200).String(); got != "hop200" {
		t.Fatalf("unknown kind renders %q", got)
	}
}
