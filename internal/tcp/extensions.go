package tcp

import (
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// This file implements the transport extensions the paper motivates in
// Appendix A and Section 6 beyond the core rate-based clocking mode:
//
//   - Big-ACK / ACK-compression burst smoothing (Appendix A.1): "When a
//     burst of ACKs arrives at a rate that significantly exceeds the
//     average rate, the sender may choose to pace the transmission of the
//     corresponding new data packets at the measured average ACK arrival
//     rate, instead of the burst's instantaneous rate."
//   - Receiver-side bandwidth estimation (Section 6, after Allman &
//     Paxson): measuring the data-packet spacing the bottleneck imposes,
//     which "works considerably better" than sender-side estimates and
//     supplies the capacity figure rate-based clocking needs.

// AckRateTracker maintains an exponentially-weighted average of ACK
// arrival spacing and of the data coverage per ACK, the sender-side signal
// behind Appendix A's burst smoothing.
type AckRateTracker struct {
	// Alpha is the EWMA weight of a new observation (default 0.125, the
	// classic srtt gain).
	Alpha float64

	last      sim.Time
	avgGap    float64 // ns between ACKs
	avgSegs   float64 // segments covered per ACK
	n         int64
	burstAcks int64 // ACKs classified as part of a compressed burst
}

// Observe records an ACK arriving at now covering segs segments. It
// reports whether the ACK is "compressed": arriving much faster than the
// average rate (or covering far more data), so that self-clocked sending
// would burst.
func (t *AckRateTracker) Observe(now sim.Time, segs int64) (compressed bool) {
	alpha := t.Alpha
	if alpha == 0 {
		alpha = 0.125
	}
	defer func() { t.last = now }()
	t.n++
	if t.n == 1 {
		t.avgSegs = float64(segs)
		return false
	}
	gap := float64(now - t.last)
	if t.avgGap == 0 {
		t.avgGap = gap
	}
	// Compression test against the *previous* averages, then update.
	compressed = gap < t.avgGap/4 || float64(segs) > 3*t.avgSegs+1
	t.avgGap = (1-alpha)*t.avgGap + alpha*gap
	t.avgSegs = (1-alpha)*t.avgSegs + alpha*float64(segs)
	if compressed {
		t.burstAcks++
	}
	return compressed
}

// AvgGap returns the average ACK spacing (0 until two ACKs seen).
func (t *AckRateTracker) AvgGap() sim.Time { return sim.Time(t.avgGap) }

// BurstAcks returns how many ACKs were classified as compressed.
func (t *AckRateTracker) BurstAcks() int64 { return t.burstAcks }

// EnableBurstSmoothing makes a self-clocked sender spread the data
// eligible after a big or compressed ACK at the measured average ACK rate
// instead of transmitting it back-to-back. maxBurst segments may still go
// out immediately (the Fall/Floyd maxburst guard); the remainder is
// clocked out one segment per average-ACK-gap.
func (s *Sender) EnableBurstSmoothing(maxBurst int64) {
	if s.paced {
		panic("tcp: burst smoothing applies to self-clocked senders")
	}
	if maxBurst < 1 {
		maxBurst = 1
	}
	s.smooth = &burstSmoother{maxBurst: maxBurst, tracker: &AckRateTracker{}}
}

// BurstSmoothingStats reports (smoothed transmissions, compressed ACKs
// seen); zero values if smoothing is disabled.
func (s *Sender) BurstSmoothingStats() (smoothed int64, burstAcks int64) {
	if s.smooth == nil {
		return 0, 0
	}
	return s.smooth.smoothed, s.smooth.tracker.BurstAcks()
}

// burstSmoother holds the Appendix A.1 pacing state on a sender.
type burstSmoother struct {
	maxBurst int64
	tracker  *AckRateTracker
	draining bool
	timer    Canceler
	smoothed int64
}

// smoothedPump transmits up to maxBurst eligible segments immediately and
// schedules the rest at the average ACK arrival rate. Returns true if it
// handled transmission (the caller must then skip the normal pump).
func (s *Sender) smoothedPump(compressed bool) bool {
	sm := s.smooth
	if sm == nil {
		return false
	}
	if sm.draining {
		return true // drain timer is already clocking data out
	}
	eligible := s.eligibleCount()
	if !compressed || eligible <= sm.maxBurst {
		return false // normal self-clocking is fine
	}
	// Send the allowed burst now, then drain the rest at the average
	// ACK rate.
	var burst []*netstack.Packet
	for i := int64(0); i < sm.maxBurst && s.eligibleCount() > 0; i++ {
		burst = append(burst, s.makeSegment())
	}
	s.send(burst)
	gap := sm.tracker.AvgGap()
	if gap <= 0 {
		gap = sim.Millisecond
	}
	sm.draining = true
	var drain func()
	drain = func() {
		if s.eligibleCount() <= 0 {
			sm.draining = false
			return
		}
		s.send([]*netstack.Packet{s.makeSegment()})
		sm.smoothed++
		// Rearm through the handle: a still-pending timer (an env whose
		// queue fires late or batches) moves in place; the usual fired
		// handle falls back to a fresh insert with the same closure.
		sm.timer = rearmTimer(s.env, sm.timer, gap, drain)
	}
	sm.timer = rearmTimer(s.env, sm.timer, gap, drain)
	return true
}

// eligibleCount returns how many segments could be transmitted right now.
func (s *Sender) eligibleCount() int64 {
	byWindow := int64(s.cwnd) - s.inflight()
	if byRcv := s.cfg.RcvWnd - s.inflight(); byRcv < byWindow {
		byWindow = byRcv
	}
	if byData := s.total - s.nextSeq; byData < byWindow {
		byWindow = byData
	}
	if byWindow < 0 {
		return 0
	}
	return byWindow
}

// BandwidthEstimator implements receiver-side bottleneck estimation from
// data-packet spacing (Allman & Paxson's receiver-side method, Section 6):
// consecutive data segments that left the sender back-to-back arrive
// spaced by the bottleneck's serialization time, so size/gap estimates the
// capacity. Robustness comes from taking the median of many pair samples.
type BandwidthEstimator struct {
	// MinGap rejects measurement noise below this spacing (default 1 µs).
	MinGap sim.Time

	lastAt   sim.Time
	lastSeq  int64
	samples  []float64 // bits per second
	haveLast bool
}

// ObserveData records a data segment's arrival. Only consecutive-sequence
// segments form valid pairs (a gap in sequence means queueing or loss
// upstream invalidated the spacing).
func (b *BandwidthEstimator) ObserveData(now sim.Time, p *netstack.Packet) {
	defer func() {
		b.lastAt = now
		b.lastSeq = p.Seq
		b.haveLast = true
	}()
	if !b.haveLast || p.Seq != b.lastSeq+1 {
		return
	}
	gap := now - b.lastAt
	min := b.MinGap
	if min == 0 {
		min = sim.Microsecond
	}
	if gap < min {
		return
	}
	bps := float64(p.Size*8) / gap.Seconds()
	b.samples = append(b.samples, bps)
}

// Samples returns the number of valid pair measurements.
func (b *BandwidthEstimator) Samples() int { return len(b.samples) }

// EstimateBps returns the median pair estimate, or 0 with fewer than
// three samples.
func (b *BandwidthEstimator) EstimateBps() float64 {
	if len(b.samples) < 3 {
		return 0
	}
	tmp := append([]float64(nil), b.samples...)
	// Insertion sort: sample counts are modest and this avoids importing
	// sort into the hot path.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[len(tmp)/2]
}

// SuggestedInterval converts the estimate into a rate-based clocking
// interval for packets of the given wire size, or 0 if no estimate.
func (b *BandwidthEstimator) SuggestedInterval(wireBytes int) sim.Time {
	bps := b.EstimateBps()
	if bps <= 0 {
		return 0
	}
	return sim.Time(float64(wireBytes*8) / bps * float64(sim.Second))
}
