package tcp

import (
	"testing"

	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// BenchmarkTCPSegment measures arena-backed segment construction: one
// paced segment acquired, stamped, and handed to the transmit path per
// op. This is the per-segment sender cost inside every paced transfer and
// server response; the arena keeps it allocation-free.
func BenchmarkTCPSegment(b *testing.B) {
	eng := sim.NewEngine(1)
	arena := netstack.NewArena()
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {
		arena.Release(p)
	})}
	s := NewSender(env, DefaultConfig(), 1, int64(b.N)+1, true)
	s.Arena = arena

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p, _ := s.PacedSendOne(eng.Now()); p == nil {
			b.Fatal("sender ran dry")
		}
	}
	b.StopTimer()
	if live := arena.Live(); live != 0 {
		b.Fatalf("%d segments leaked from the arena", live)
	}
}

// BenchmarkTCPAck measures the matching receiver-side cost: one data
// segment consumed and (every AckEvery-th) one arena-backed ACK produced.
func BenchmarkTCPAck(b *testing.B) {
	eng := sim.NewEngine(1)
	arena := netstack.NewArena()
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {
		arena.Release(p)
	})}
	cfg := DefaultConfig()
	cfg.DelAckTimeout = 0 // no timer churn: isolate the data/ACK path
	r := NewReceiver(env, cfg, 1)
	r.Arena = arena
	seg := &netstack.Packet{Flow: 1, Kind: netstack.Data, Size: 1500}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Seq = int64(i)
		r.HandleData(seg)
	}
	b.StopTimer()
	if live := arena.Live(); live != 0 {
		b.Fatalf("%d ACKs leaked from the arena", live)
	}
}
