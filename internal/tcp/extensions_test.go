package tcp

import (
	"math"
	"testing"

	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

func TestAckRateTrackerSteadyStateNotCompressed(t *testing.T) {
	tr := &AckRateTracker{}
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 100 * sim.Microsecond
		if tr.Observe(now, 2) && i > 2 {
			t.Fatalf("steady 100us/2-segment ACKs flagged compressed at %d", i)
		}
	}
	if g := tr.AvgGap(); g < 95*sim.Microsecond || g > 105*sim.Microsecond {
		t.Fatalf("AvgGap = %v, want ~100us", g)
	}
}

func TestAckRateTrackerDetectsCompression(t *testing.T) {
	tr := &AckRateTracker{}
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += 200 * sim.Microsecond
		tr.Observe(now, 2)
	}
	// A burst of ACKs 5us apart: reverse-path queueing compressed them.
	flagged := 0
	for i := 0; i < 5; i++ {
		now += 5 * sim.Microsecond
		if tr.Observe(now, 2) {
			flagged++
		}
	}
	if flagged < 4 {
		t.Fatalf("only %d/5 compressed ACKs flagged", flagged)
	}
	if tr.BurstAcks() < 4 {
		t.Fatalf("BurstAcks = %d", tr.BurstAcks())
	}
}

func TestAckRateTrackerDetectsBigAck(t *testing.T) {
	tr := &AckRateTracker{}
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += 200 * sim.Microsecond
		tr.Observe(now, 2)
	}
	now += 200 * sim.Microsecond
	if !tr.Observe(now, 20) {
		t.Fatal("an ACK covering 20 segments (avg 2) not flagged as big")
	}
}

func TestBurstSmoothingSpreadsBigAckResponse(t *testing.T) {
	// A sender with a wide-open window receives a big ACK. Without
	// smoothing it blasts everything; with smoothing it sends maxburst
	// immediately and clocks the rest out at the average ACK rate.
	run := func(smooth bool) (maxBurst int64, sendTimes []sim.Time) {
		eng := sim.NewEngine(4)
		env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {
			if p.Kind == netstack.Data {
				sendTimes = append(sendTimes, eng.Now())
			}
		})}
		cfg := DefaultConfig()
		cfg.InitialCwnd = 4
		snd := NewSender(env, cfg, 1, 200, false)
		if smooth {
			snd.EnableBurstSmoothing(4)
		}
		snd.Start() // 4 segments out
		// Regular ACK stream every 150us establishes the average rate.
		at := sim.Time(0)
		acked := int64(0)
		for i := 0; i < 20; i++ {
			at += 150 * sim.Microsecond
			acked += 2
			ack := acked
			eng.At(at, func() {
				snd.HandleAck(&netstack.Packet{Kind: netstack.Ack, AckSeq: ack})
			})
		}
		// Then a big ACK covering 30 more segments arrives.
		at += 150 * sim.Microsecond
		big := acked + 30
		eng.At(at, func() {
			snd.HandleAck(&netstack.Packet{Kind: netstack.Ack, AckSeq: big})
		})
		eng.RunUntil(sim.Second)
		return snd.MaxBurst, sendTimes
	}

	burstOff, _ := run(false)
	burstOn, times := run(true)
	if burstOff < 20 {
		t.Fatalf("unsmoothed MaxBurst = %d, expected a large blast", burstOff)
	}
	if burstOn > 8 {
		t.Fatalf("smoothed MaxBurst = %d, want <= maxburst+slack", burstOn)
	}
	// The drained segments must be spaced at ~the average ACK gap.
	var gaps []sim.Time
	for i := 1; i < len(times); i++ {
		if g := times[i] - times[i-1]; g > 0 && g < 10*sim.Millisecond {
			gaps = append(gaps, g)
		}
	}
	spread := 0
	for _, g := range gaps {
		if g > 100*sim.Microsecond && g < 250*sim.Microsecond {
			spread++
		}
	}
	if spread < 10 {
		t.Fatalf("only %d drain gaps near the 150us ACK rate", spread)
	}
}

func TestBurstSmoothingCompletesTransfer(t *testing.T) {
	// Smoothing must not strand data: the full WAN transfer completes.
	r := newRig(t, 200, 50, false)
	r.snd.EnableBurstSmoothing(4)
	r.snd.Start()
	r.eng.RunUntil(30 * sim.Second)
	if r.done == 0 {
		t.Fatal("smoothed transfer never completed")
	}
	if r.rcv.Received() != 200 {
		t.Fatalf("received %d of 200", r.rcv.Received())
	}
}

func TestBurstSmoothingPanicsOnPacedSender(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(*netstack.Packet) {})}
	snd := NewSender(env, DefaultConfig(), 1, 10, true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	snd.EnableBurstSmoothing(4)
}

func TestBandwidthEstimatorMeasuresBottleneck(t *testing.T) {
	// Blast packets through a 100Mbps access link into a 50Mbps
	// bottleneck; the receiver-side estimator must report ~50Mbps.
	eng := sim.NewEngine(9)
	est := &BandwidthEstimator{}
	sink := netstack.EndpointFunc(func(p *netstack.Packet) {
		est.ObserveData(eng.Now(), p)
	})
	bott := netstack.NewLink(eng, "wan", 50_000_000, 10*sim.Millisecond, sink)
	access := netstack.NewLink(eng, "lan", 100_000_000, 0, bott)
	for i := 0; i < 50; i++ {
		access.Send(&netstack.Packet{Kind: netstack.Data, Seq: int64(i), Size: 1500})
	}
	eng.Run()
	if est.Samples() < 40 {
		t.Fatalf("samples = %d", est.Samples())
	}
	got := est.EstimateBps()
	if math.Abs(got-50e6)/50e6 > 0.05 {
		t.Fatalf("estimate = %.1f Mbps, want ~50", got/1e6)
	}
	// And the suggested pacing interval matches the bottleneck's
	// serialization time (240us for 1500B at 50Mbps).
	iv := est.SuggestedInterval(1500)
	if iv < 230*sim.Microsecond || iv > 250*sim.Microsecond {
		t.Fatalf("suggested interval = %v, want ~240us", iv)
	}
}

func TestBandwidthEstimatorSkipsNonConsecutive(t *testing.T) {
	est := &BandwidthEstimator{}
	est.ObserveData(0, &netstack.Packet{Seq: 0, Size: 1500})
	est.ObserveData(100*sim.Microsecond, &netstack.Packet{Seq: 2, Size: 1500}) // gap
	if est.Samples() != 0 {
		t.Fatal("non-consecutive pair accepted")
	}
	est.ObserveData(200*sim.Microsecond, &netstack.Packet{Seq: 3, Size: 1500})
	if est.Samples() != 1 {
		t.Fatalf("consecutive pair rejected: %d", est.Samples())
	}
}

func TestBandwidthEstimatorNeedsSamples(t *testing.T) {
	est := &BandwidthEstimator{}
	if est.EstimateBps() != 0 || est.SuggestedInterval(1500) != 0 {
		t.Fatal("estimate without samples should be 0")
	}
}

func TestEstimatorFeedsPacedTransfer(t *testing.T) {
	// End-to-end extension story: measure capacity with a short probe
	// transfer, then rate-clock a second transfer at the estimate. The
	// paced run must finish near the bottleneck-limited optimum.
	sc := 50_000_000
	// Phase 1: probe with regular TCP while estimating receiver-side.
	r := newRig(t, 60, 50, false)
	est := &BandwidthEstimator{}
	r.rcv.OnData = func(p *netstack.Packet) { est.ObserveData(r.eng.Now(), p) }
	r.snd.Start()
	r.eng.RunUntil(10 * sim.Second)
	if r.done == 0 {
		t.Fatal("probe incomplete")
	}
	bw := est.EstimateBps()
	if math.Abs(bw-float64(sc))/float64(sc) > 0.10 {
		t.Fatalf("probe estimate = %.1f Mbps, want ~50", bw/1e6)
	}
	// Phase 2: pace 500 segments at the estimated interval.
	p := newRig(t, 500, 50, true)
	interval := est.SuggestedInterval(p.cfg.WireSize(p.cfg.MSS))
	var tick func()
	tick = func() {
		if _, more := p.snd.PacedSendOne(p.eng.Now()); more {
			p.eng.After(interval, tick)
		}
	}
	p.eng.After(interval, tick)
	p.eng.RunUntil(10 * sim.Second)
	if p.done == 0 {
		t.Fatal("paced transfer incomplete")
	}
	// Optimum: ~500 * 240us + one-way ≈ 170ms; allow slack.
	if p.done > 260*sim.Millisecond {
		t.Fatalf("paced-at-estimate transfer took %v, want near optimum ~170ms", p.done)
	}
}
