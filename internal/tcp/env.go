package tcp

import (
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// EngineEnv is an Env backed directly by the simulation engine, for client
// hosts and otherwise-unloaded machines whose CPU costs are not under
// study: timers are exact and transmission costs nothing.
type EngineEnv struct {
	Eng *sim.Engine
	// Out receives transmitted packets (typically a netstack.Link or
	// Path toward the peer).
	Out netstack.Endpoint
}

// Now implements Env.
func (e *EngineEnv) Now() sim.Time { return e.Eng.Now() }

// After implements Env.
func (e *EngineEnv) After(d sim.Time, fn func()) Canceler {
	return &eventCanceler{e.Eng.After(d, fn)}
}

// Transmit implements Env.
func (e *EngineEnv) Transmit(pkts []*netstack.Packet) {
	for _, p := range pkts {
		e.Out.Deliver(p)
	}
}

// eventCanceler adapts a sim.Event to the timer-handle interfaces. It is a
// pointer type so Reschedule can refresh the handle's deadline snapshot.
type eventCanceler struct{ ev sim.Event }

func (c *eventCanceler) Cancel() bool { return c.ev.Cancel() }

// Reschedule implements Rescheduler: the engine moves the pending event in
// place (a single queue update instead of cancel+insert).
func (c *eventCanceler) Reschedule(d sim.Time) bool { return c.ev.RescheduleAfter(d) }
