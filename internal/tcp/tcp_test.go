package tcp

import (
	"testing"

	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// rig wires a sender and receiver through a WAN emulator and routes ACKs
// back to the sender.
type rig struct {
	eng  *sim.Engine
	cfg  Config
	snd  *Sender
	rcv  *Receiver
	wan  *netstack.WANEmulator
	done sim.Time
}

func newRig(t *testing.T, total int64, bottleneckMbps int64, paced bool) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(5), cfg: DefaultConfig()}
	sndEnv := &EngineEnv{Eng: r.eng}
	rcvEnv := &EngineEnv{Eng: r.eng}
	serverIn := netstack.EndpointFunc(func(p *netstack.Packet) {
		if p.Kind == netstack.Ack {
			r.snd.HandleAck(p)
		}
	})
	clientIn := netstack.EndpointFunc(func(p *netstack.Packet) {
		if p.Kind == netstack.Data {
			r.rcv.HandleData(p)
		}
	})
	r.wan = netstack.NewWANEmulator(r.eng, 100_000_000, bottleneckMbps*1_000_000,
		100*sim.Millisecond, serverIn, clientIn)
	sndEnv.Out = r.wan.AtoB // server (a) -> client (b)
	rcvEnv.Out = r.wan.BtoA
	r.snd = NewSender(sndEnv, r.cfg, 1, total, paced)
	r.rcv = NewReceiver(rcvEnv, r.cfg, 1)
	r.rcv.Expected = total
	r.rcv.OnComplete = func(now sim.Time) { r.done = now }
	return r
}

func TestSelfClockedSmallTransferDelackStall(t *testing.T) {
	// 5 segments, cwnd starts at 1: the first lone segment waits out the
	// 200ms delayed-ACK timer, reproducing the paper's ~496ms response
	// for 5-packet transfers (Table 6, regular TCP).
	r := newRig(t, 5, 50, false)
	r.snd.Start()
	r.eng.RunUntil(5 * sim.Second)
	if r.done == 0 {
		t.Fatal("transfer never completed")
	}
	if r.done < 350*sim.Millisecond {
		t.Fatalf("completed at %v — missing the delayed-ACK stall", r.done)
	}
	if r.done > 700*sim.Millisecond {
		t.Fatalf("completed at %v — far beyond the paper's ~496ms shape", r.done)
	}
	if r.rcv.DelAckFires == 0 {
		t.Fatal("delayed-ACK timer never fired for the lone first segment")
	}
}

func TestSlowStartGrowsExponentially(t *testing.T) {
	r := newRig(t, 1000, 100, false)
	r.snd.Start()
	r.eng.RunUntil(20 * sim.Second)
	if r.done == 0 {
		t.Fatal("transfer never completed")
	}
	// cwnd grew from 1 by +1 per ACK; with ~1 ACK per 2 segments the
	// final window must be large but finite.
	if r.snd.Cwnd() < 50 {
		t.Fatalf("cwnd = %v, slow start did not grow", r.snd.Cwnd())
	}
	if r.snd.SegmentsSent != 1000 {
		t.Fatalf("sent %d segments", r.snd.SegmentsSent)
	}
	// Exponential opening: 1000 segments at RTT 100ms must finish in
	// roughly 1.1-2s (about 10-13 RTTs + the initial delack stall), not
	// the ~50s that fixed cwnd=2 would take.
	if r.done > 3*sim.Second {
		t.Fatalf("completed at %v, too slow for slow start", r.done)
	}
}

func TestLargeTransferApproachesBottleneckRate(t *testing.T) {
	const total = 10000
	r := newRig(t, total, 50, false)
	r.snd.Start()
	r.eng.RunUntil(60 * sim.Second)
	if r.done == 0 {
		t.Fatal("transfer never completed")
	}
	// 10k segments * 1500B at 50Mbps = 2.4s of pure transmission;
	// slow start adds ~1.3s up front (paper: 3.87s total).
	if r.done < 2400*sim.Millisecond {
		t.Fatalf("completed at %v — faster than the bottleneck allows", r.done)
	}
	if r.done > 6*sim.Second {
		t.Fatalf("completed at %v — want ~3.9s shape", r.done)
	}
	xput := float64(total) * 1448 * 8 / r.done.Seconds() / 1e6
	if xput < 25 || xput > 50 {
		t.Fatalf("throughput = %.1f Mbps, want ~30 (paper: 29.95)", xput)
	}
}

func TestPacedTransferSkipsSlowStart(t *testing.T) {
	// Rate-based clocking at the bottleneck rate: 100 segments at 50Mbps
	// (240us/segment) finish in ~50ms (one-way) + 24ms ≈ 75-130ms — the
	// paper's 123.7ms vs 1145ms for regular TCP.
	const total = 100
	r := newRig(t, total, 50, true)
	interval := 240 * sim.Microsecond
	var tick func()
	tick = func() {
		_, more := r.snd.PacedSendOne(r.eng.Now())
		if more {
			r.eng.After(interval, tick)
		}
	}
	r.eng.After(interval, tick)
	r.eng.RunUntil(2 * sim.Second)
	if r.done == 0 {
		t.Fatal("paced transfer never completed")
	}
	if r.done > 140*sim.Millisecond {
		t.Fatalf("paced transfer took %v, want ~75-130ms", r.done)
	}
	if !r.snd.Done() {
		t.Fatal("sender not done")
	}
}

func TestPacedBeatsSelfClockedOnMediumTransfer(t *testing.T) {
	// The paper's headline: ~89% response-time reduction for 100-packet
	// transfers on a high bandwidth-delay path.
	reg := newRig(t, 100, 50, false)
	reg.snd.Start()
	reg.eng.RunUntil(10 * sim.Second)

	paced := newRig(t, 100, 50, true)
	interval := 240 * sim.Microsecond
	var tick func()
	tick = func() {
		if _, more := paced.snd.PacedSendOne(paced.eng.Now()); more {
			paced.eng.After(interval, tick)
		}
	}
	paced.eng.After(interval, tick)
	paced.eng.RunUntil(10 * sim.Second)

	if reg.done == 0 || paced.done == 0 {
		t.Fatal("transfers incomplete")
	}
	reduction := 1 - paced.done.Seconds()/reg.done.Seconds()
	if reduction < 0.7 {
		t.Fatalf("response-time reduction = %.0f%%, want large (paper: 89%%)", reduction*100)
	}
}

func TestReceiverAcksEverySecondSegment(t *testing.T) {
	eng := sim.NewEngine(1)
	var acks []*netstack.Packet
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {
		acks = append(acks, p)
	})}
	rcv := NewReceiver(env, DefaultConfig(), 7)
	for i := int64(0); i < 6; i++ {
		rcv.HandleData(&netstack.Packet{Flow: 7, Kind: netstack.Data, Seq: i})
	}
	eng.RunUntil(10 * sim.Millisecond) // before the delack timer
	if len(acks) != 3 {
		t.Fatalf("got %d acks for 6 segments, want 3", len(acks))
	}
	for i, a := range acks {
		if a.AckSeq != int64(i+1)*2 {
			t.Fatalf("ack %d covers %d, want %d", i, a.AckSeq, (i+1)*2)
		}
		if a.Kind != netstack.Ack || a.Flow != 7 {
			t.Fatal("malformed ack")
		}
	}
}

func TestDelayedAckTimerCoversOddTail(t *testing.T) {
	eng := sim.NewEngine(1)
	var acks []*netstack.Packet
	var ackAt []sim.Time
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {
		acks = append(acks, p)
		ackAt = append(ackAt, eng.Now())
	})}
	rcv := NewReceiver(env, DefaultConfig(), 1)
	rcv.HandleData(&netstack.Packet{Kind: netstack.Data})
	eng.RunUntil(sim.Second)
	if len(acks) != 1 {
		t.Fatalf("got %d acks, want 1 from the delack timer", len(acks))
	}
	if ackAt[0] != 200*sim.Millisecond {
		t.Fatalf("delack fired at %v, want 200ms", ackAt[0])
	}
	if rcv.DelAckFires != 1 {
		t.Fatalf("DelAckFires = %d", rcv.DelAckFires)
	}
}

func TestBigAckCounting(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) {})}
	cfg := DefaultConfig()
	cfg.AckEvery = 10 // aggregate heavily, as a slow-reading app would
	rcv := NewReceiver(env, cfg, 1)
	for i := 0; i < 10; i++ {
		rcv.HandleData(&netstack.Packet{Kind: netstack.Data})
	}
	if rcv.BigAcks != 1 {
		t.Fatalf("BigAcks = %d, want 1 (ACK covered 10 > 3 segments)", rcv.BigAcks)
	}
}

func TestSenderMaxBurstTracksBigAckResponse(t *testing.T) {
	// A big ACK opening a wide window makes a self-clocked sender burst.
	eng := sim.NewEngine(1)
	var sent int
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(p *netstack.Packet) { sent++ })}
	cfg := DefaultConfig()
	cfg.InitialCwnd = 4
	snd := NewSender(env, cfg, 1, 100, false)
	snd.Start()
	if snd.MaxBurst != 4 {
		t.Fatalf("initial burst = %d, want 4", snd.MaxBurst)
	}
	snd.HandleAck(&netstack.Packet{Kind: netstack.Ack, AckSeq: 4})
	if snd.MaxBurst < 5 {
		t.Fatalf("MaxBurst = %d after big ACK, want >= 5", snd.MaxBurst)
	}
}

func TestOnAllAckedFiresOnce(t *testing.T) {
	r := newRig(t, 10, 100, false)
	fired := 0
	r.snd.OnAllAcked = func(sim.Time) { fired++ }
	r.snd.Start()
	r.eng.RunUntil(5 * sim.Second)
	if fired != 1 {
		t.Fatalf("OnAllAcked fired %d times", fired)
	}
}

func TestPacedSendOnePanicsOnSelfClocked(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(*netstack.Packet) {})}
	snd := NewSender(env, DefaultConfig(), 1, 10, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	snd.PacedSendOne(0)
}

func TestNegativeTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSender(nil, DefaultConfig(), 1, -1, false)
}

func TestRcvWndLimitsInflight(t *testing.T) {
	eng := sim.NewEngine(1)
	sent := 0
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(*netstack.Packet) { sent++ })}
	cfg := DefaultConfig()
	cfg.InitialCwnd = 1000
	cfg.RcvWnd = 8
	snd := NewSender(env, cfg, 1, 100, false)
	snd.Start()
	if sent != 8 {
		t.Fatalf("sent %d with rcvwnd 8, want 8", sent)
	}
}

func TestEngineEnvCanceler(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &EngineEnv{Eng: eng}
	fired := false
	c := env.After(sim.Millisecond, func() { fired = true })
	if !c.Cancel() {
		t.Fatal("cancel of pending timer returned false")
	}
	if c.Cancel() {
		t.Fatal("second cancel returned true")
	}
	eng.RunUntil(sim.Second)
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSenderAccessors(t *testing.T) {
	eng := sim.NewEngine(30)
	sent := 0
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(*netstack.Packet) { sent++ })}
	cfg := DefaultConfig()
	cfg.InitialCwnd = 2
	snd := NewSender(env, cfg, 1, 10, false)
	if snd.Done() || snd.Remaining() != 10 {
		t.Fatalf("fresh sender: done=%v remaining=%d", snd.Done(), snd.Remaining())
	}
	snd.Start()
	snd.Start() // idempotent
	if sent != 2 {
		t.Fatalf("initial window sent %d, want 2", sent)
	}
	if snd.Remaining() != 8 {
		t.Fatalf("Remaining = %d", snd.Remaining())
	}
	snd.HandleAck(&netstack.Packet{Kind: netstack.Ack, AckSeq: 10})
	if !snd.Done() {
		t.Fatal("sender not done after full ack")
	}
	smoothed, bursts := snd.BurstSmoothingStats()
	if smoothed != 0 || bursts != 0 {
		t.Fatal("smoothing stats nonzero while disabled")
	}
}

func TestPacedSenderDoneSemantics(t *testing.T) {
	eng := sim.NewEngine(31)
	env := &EngineEnv{Eng: eng, Out: netstack.EndpointFunc(func(*netstack.Packet) {})}
	snd := NewSender(env, DefaultConfig(), 1, 2, true)
	snd.Start() // no-op for paced
	if snd.Done() {
		t.Fatal("paced sender done before sending")
	}
	if _, more := snd.PacedSendOne(0); !more {
		t.Fatal("more=false after first of two")
	}
	if _, more := snd.PacedSendOne(0); more {
		t.Fatal("more=true after last")
	}
	if p, more := snd.PacedSendOne(0); p != nil || more {
		t.Fatal("send past end returned a packet")
	}
	if !snd.Done() {
		t.Fatal("paced sender not done after transmitting all")
	}
}
