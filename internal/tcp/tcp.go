// Package tcp models the transport behaviour the paper's experiments
// depend on: a BSD-style TCP sender with slow start, congestion avoidance
// and ACK self-clocking; a receiver with delayed ACKs; and the paper's
// extension — rate-based clocking, where transmissions are paced by a
// timer (soft or hardware) at a known network capacity instead of being
// clocked by returning ACKs, skipping slow start entirely (Sections 2.1,
// 4.1, 5.6–5.8 and Appendix A).
//
// Sequence numbers are whole segments (the paper's tables count 1448-byte
// packets). Links in this repository are FIFO and the paper's WAN runs are
// loss-free, so reordering and loss recovery are out of scope; see
// DESIGN.md.
package tcp

import (
	"fmt"
	"math"

	"softtimers/internal/flowtrace"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// Canceler is a cancellable timer handle.
type Canceler interface {
	Cancel() bool
}

// Rescheduler is an optional Canceler extension implemented by handles
// whose backing timer queue supports dynamic update (engine-backed envs
// do, via sim.Event.Reschedule). Reschedule moves a still-pending timer to
// fire d from now in place — the queue relocates the existing entry, no
// cancel and no fresh insert — keeping the handler the timer already
// carries. It reports whether it did; a fired or canceled handle returns
// false and the caller schedules anew.
type Rescheduler interface {
	Canceler
	Reschedule(d sim.Time) bool
}

// rearmTimer re-targets t to run fn after d: in place when the handle is
// still pending and movable (Rescheduler), by cancel plus a fresh insert
// otherwise. The returned handle replaces t. fn must be the handler the
// live timer already carries — an in-place move keeps the old closure.
func rearmTimer(env Env, t Canceler, d sim.Time, fn func()) Canceler {
	if r, ok := t.(Rescheduler); ok && r.Reschedule(d) {
		return t
	}
	if t != nil {
		t.Cancel()
	}
	return env.After(d, fn)
}

// Env is the host environment a TCP endpoint runs in. Server endpoints are
// backed by the simulated kernel (timers are callouts, transmission passes
// through the IP output path with its trigger states and CPU costs); client
// endpoints and unloaded hosts run directly on the engine.
type Env interface {
	// Now returns the current simulated time.
	Now() sim.Time
	// After schedules a conventional protocol timer.
	After(d sim.Time, fn func()) Canceler
	// Transmit hands packets to the host's IP output path in order. The
	// slice is a borrow: implementations must not retain it past the call
	// (senders reuse scratch buffers on the hot path).
	Transmit(pkts []*netstack.Packet)
}

// Config holds protocol parameters. The zero value is unusable; use
// DefaultConfig (FreeBSD-2.2.6-like, as in the paper's testbed).
type Config struct {
	// MSS is the payload bytes per segment (paper: 1448).
	MSS int
	// HeaderBytes is added to every packet's wire size (TCP/IP+framing).
	HeaderBytes int
	// InitialCwnd is the initial congestion window in segments.
	// FreeBSD-2.2.6 started at 1 segment.
	InitialCwnd float64
	// RcvWnd is the receiver window in segments (the testbed used large
	// socket buffers; window limiting is not under study).
	RcvWnd int64
	// AckEvery makes the receiver ACK immediately every n-th segment
	// (delayed ACKs: 2).
	AckEvery int
	// DelAckTimeout bounds how long an ACK may be delayed (200 ms).
	DelAckTimeout sim.Time
	// SlowStart enables the slow-start/congestion-avoidance sender; when
	// false the sender may only transmit via rate-based clocking.
	SlowStart bool
	// SSThresh is the slow-start threshold in segments; beyond it cwnd
	// grows linearly (congestion avoidance).
	SSThresh float64
}

// DefaultConfig returns the paper-testbed parameters.
func DefaultConfig() Config {
	return Config{
		MSS:           1448,
		HeaderBytes:   52,
		InitialCwnd:   1,
		RcvWnd:        1 << 30,
		AckEvery:      2,
		DelAckTimeout: 200 * sim.Millisecond,
		SlowStart:     true,
		SSThresh:      math.Inf(1),
	}
}

// WireSize returns the on-the-wire size of a segment carrying payload
// bytes of data.
func (c Config) WireSize(payload int) int { return payload + c.HeaderBytes }

// Sender transmits `total` segments on a flow. In self-clocked mode,
// transmissions are driven by Start and arriving ACKs; in paced mode an
// external pacer pulls segments one at a time via PacedSendOne.
type Sender struct {
	env   Env
	cfg   Config
	flow  int
	total int64

	nextSeq int64   // next segment index to transmit
	ackedTo int64   // cumulative segments acknowledged
	cwnd    float64 // congestion window, segments
	paced   bool
	started bool

	// OnAllAcked, if set, runs when every segment has been acknowledged.
	OnAllAcked func(now sim.Time)
	// OnSend, if set, observes each transmitted data packet.
	OnSend func(p *netstack.Packet)

	// Counters.
	SegmentsSent int64
	AcksSeen     int64
	// MaxBurst is the largest number of segments transmitted in response
	// to a single ACK (big-ACK burstiness, Appendix A).
	MaxBurst int64

	// smooth, when non-nil, spreads post-big-ACK bursts at the measured
	// ACK arrival rate (EnableBurstSmoothing; Appendix A.1).
	smooth *burstSmoother

	// Arena, when set, is the packet pool segments are acquired from
	// (zero-allocation segment construction); nil falls back to literals.
	// Hosts wire their engine-local arena here.
	Arena *netstack.Arena

	// FlowTrace, when set, samples this flow at Start (one decision per
	// connection from the host's private tracing stream) and supplies the
	// span for every transmitted segment; TraceLoc labels the endpoint's
	// hops. Nil leaves the flow untraced at zero cost.
	FlowTrace *flowtrace.Sampler
	TraceLoc  int32
	traced    bool

	burst []*netstack.Packet // scratch transmit buffer, reused per pump
	one   [1]*netstack.Packet
}

// NewSender creates a sender of total segments on flow. paced selects
// rate-based clocking: the sender will not self-clock, and transmissions
// happen only through PacedSendOne.
func NewSender(env Env, cfg Config, flow int, total int64, paced bool) *Sender {
	if total < 0 {
		panic("tcp: negative transfer size")
	}
	return &Sender{env: env, cfg: cfg, flow: flow, total: total, cwnd: cfg.InitialCwnd, paced: paced}
}

// RegisterMetrics exposes the sender's counters on a telemetry registry
// under tcp.flow<N>.* as func instruments, leaving the segment path
// untouched. TCP endpoints run on a plain Env (often with no kernel behind
// it), so registration is opt-in rather than automatic.
func (s *Sender) RegisterMetrics(r *metrics.Registry) {
	prefix := fmt.Sprintf("tcp.flow%d.", s.flow)
	r.CounterFunc(prefix+"segments_sent", func() int64 { return s.SegmentsSent })
	r.CounterFunc(prefix+"acks_seen", func() int64 { return s.AcksSeen })
	r.GaugeFunc(prefix+"max_burst", func() int64 { return s.MaxBurst })
	r.GaugeFunc(prefix+"cwnd", func() int64 { return int64(s.cwnd) })
}

// Start begins a self-clocked transfer by sending the initial window. For
// paced senders Start is a no-op (the pacer drives transmission).
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.traced = s.FlowTrace.SampleFlow()
	if s.paced {
		return
	}
	s.pump()
}

// Done reports whether every segment has been acknowledged (self-clocked)
// or transmitted (paced — the pacer has no ACK obligation).
func (s *Sender) Done() bool {
	if s.paced {
		return s.nextSeq >= s.total
	}
	return s.ackedTo >= s.total
}

// Remaining returns the number of segments not yet transmitted.
func (s *Sender) Remaining() int64 { return s.total - s.nextSeq }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// inflight returns transmitted-but-unacknowledged segments.
func (s *Sender) inflight() int64 { return s.nextSeq - s.ackedTo }

// pump transmits every currently-eligible segment (self-clocked mode).
func (s *Sender) pump() {
	s.burst = s.burst[:0]
	for s.nextSeq < s.total &&
		float64(s.inflight())+1 <= s.cwnd &&
		s.inflight() < s.cfg.RcvWnd {
		s.burst = append(s.burst, s.makeSegment())
	}
	s.send(s.burst)
	for i := range s.burst {
		s.burst[i] = nil
	}
	s.burst = s.burst[:0]
}

func (s *Sender) makeSegment() *netstack.Packet {
	payload := s.cfg.MSS
	p := s.Arena.Get()
	p.Flow = s.flow
	p.Kind = netstack.Data
	p.Seq = s.nextSeq
	p.Size = s.cfg.WireSize(payload)
	p.Payload = payload
	p.SentAt = s.env.Now()
	if s.traced {
		p.Trace = s.FlowTrace.StartSpan()
		p.Trace.Hop(flowtrace.HopTCP, s.TraceLoc, p.SentAt)
	}
	s.nextSeq++
	s.SegmentsSent++
	return p
}

func (s *Sender) send(burst []*netstack.Packet) {
	if len(burst) == 0 {
		return
	}
	if int64(len(burst)) > s.MaxBurst {
		s.MaxBurst = int64(len(burst))
	}
	if s.OnSend != nil {
		for _, p := range burst {
			s.OnSend(p)
		}
	}
	s.env.Transmit(burst)
}

// HandleAck processes a cumulative acknowledgment: grow the window (one
// segment per ACK in slow start, 1/cwnd per ACK in congestion avoidance —
// BSD behaviour) and transmit newly eligible segments.
func (s *Sender) HandleAck(p *netstack.Packet) {
	s.AcksSeen++
	p.Trace.Hop(flowtrace.HopTCP, s.TraceLoc, s.env.Now())
	covered := p.AckSeq - s.ackedTo
	if p.AckSeq > s.ackedTo {
		s.ackedTo = p.AckSeq
	}
	if !s.paced && s.cfg.SlowStart {
		if s.cwnd < s.cfg.SSThresh {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
	}
	if !s.paced {
		compressed := false
		if s.smooth != nil && covered > 0 {
			compressed = s.smooth.tracker.Observe(s.env.Now(), covered)
		}
		if !s.smoothedPump(compressed) {
			s.pump()
		}
	}
	if s.ackedTo >= s.total && s.OnAllAcked != nil {
		cb := s.OnAllAcked
		s.OnAllAcked = nil
		cb(s.env.Now())
	}
}

// RestartIdle models a self-clocked connection resuming after an idle
// period: BSD resets the congestion window to the initial value, forcing a
// fresh slow start (the behaviour Visweswaraiah & Heidemann observed
// defeating persistent-HTTP, Section 6). Rate-based clocking avoids this
// restart penalty by pacing at the connection's last known rate instead —
// see AddSegments with a paced sender.
func (s *Sender) RestartIdle() {
	if s.paced {
		return // paced senders have no window to lose
	}
	s.cwnd = s.cfg.InitialCwnd
}

// AddSegments extends the transfer by n segments (a new request arriving
// on a persistent connection). For a self-clocked sender that has been
// idle, call RestartIdle first to model BSD's window reset; then Kick
// restarts transmission.
func (s *Sender) AddSegments(n int64) {
	if n < 0 {
		panic("tcp: negative segment count")
	}
	s.total += n
}

// Kick resumes self-clocked transmission after AddSegments (the window may
// allow immediate sends even though no ACK is in flight).
func (s *Sender) Kick() {
	if !s.paced {
		s.pump()
	}
}

// PacedSendOne transmits exactly one segment, for use as a pacer transmit
// callback. It returns the wire transmission and whether segments remain
// after this one. Calling it on a self-clocked sender panics.
func (s *Sender) PacedSendOne(now sim.Time) (sent *netstack.Packet, more bool) {
	if !s.paced {
		panic("tcp: PacedSendOne on a self-clocked sender")
	}
	if s.nextSeq >= s.total {
		return nil, false
	}
	p := s.makeSegment()
	s.one[0] = p
	s.send(s.one[:])
	s.one[0] = nil
	return p, s.nextSeq < s.total
}

// Receiver consumes data segments in order and generates delayed ACKs: an
// immediate ACK every AckEvery segments, otherwise one when the delayed-ACK
// timer expires — the behaviour whose interaction with slow start produces
// the paper's 200 ms stalls on small transfers (Table 6) and whose
// aggregation produces big ACKs (Appendix A.3).
type Receiver struct {
	env  Env
	cfg  Config
	flow int

	received int64 // cumulative in-order segments
	ackedTo  int64 // cumulative segments covered by sent ACKs
	delack   Canceler

	// Expected, when positive, makes OnComplete fire once that many
	// segments have arrived.
	Expected   int64
	OnComplete func(now sim.Time)
	// OnData observes every arriving data segment.
	OnData func(p *netstack.Packet)

	// Counters.
	AcksSent int64
	// BigAcks counts ACKs covering more than 3 segments (Appendix A.3's
	// definition of a big ACK).
	BigAcks int64
	// DelAckFires counts ACKs produced by the delayed-ACK timer.
	DelAckFires int64

	// Arena, when set, supplies ACK packets (see Sender.Arena).
	Arena *netstack.Arena

	// FlowTrace, when set, lets the receiver's ACKs join a traced flow:
	// the first traced data segment marks the connection, and every ACK
	// after that carries its own span (allocated from this host's
	// sampler). TraceLoc labels the receiver's hops.
	FlowTrace *flowtrace.Sampler
	TraceLoc  int32
	traced    bool

	one [1]*netstack.Packet // scratch transmit buffer
}

// NewReceiver creates a receiver for flow.
func NewReceiver(env Env, cfg Config, flow int) *Receiver {
	return &Receiver{env: env, cfg: cfg, flow: flow}
}

// RegisterMetrics exposes the receiver's counters on a telemetry registry
// under tcp.flow<N>.* (complementing Sender.RegisterMetrics on the same
// prefix).
func (r *Receiver) RegisterMetrics(reg *metrics.Registry) {
	prefix := fmt.Sprintf("tcp.flow%d.", r.flow)
	reg.CounterFunc(prefix+"acks_sent", func() int64 { return r.AcksSent })
	reg.CounterFunc(prefix+"big_acks", func() int64 { return r.BigAcks })
	reg.CounterFunc(prefix+"delack_fires", func() int64 { return r.DelAckFires })
}

// Received returns the cumulative count of in-order segments.
func (r *Receiver) Received() int64 { return r.received }

// HandleData processes an arriving data segment.
func (r *Receiver) HandleData(p *netstack.Packet) {
	r.received++
	p.Trace.Hop(flowtrace.HopTCP, r.TraceLoc, r.env.Now())
	if p.Trace != nil {
		r.traced = true
	}
	if r.OnData != nil {
		r.OnData(p)
	}
	if r.received-r.ackedTo >= int64(r.cfg.AckEvery) {
		r.sendAck(false)
	} else if r.delack == nil && r.cfg.DelAckTimeout > 0 {
		r.delack = r.env.After(r.cfg.DelAckTimeout, func() {
			r.delack = nil
			if r.received > r.ackedTo {
				r.DelAckFires++
				r.sendAck(true)
			}
		})
	}
	if r.Expected > 0 && r.received >= r.Expected && r.OnComplete != nil {
		cb := r.OnComplete
		r.OnComplete = nil
		cb(r.env.Now())
	}
}

func (r *Receiver) sendAck(fromTimer bool) {
	covered := r.received - r.ackedTo
	r.ackedTo = r.received
	if r.delack != nil && !fromTimer {
		r.delack.Cancel()
		r.delack = nil
	}
	r.AcksSent++
	if covered > 3 {
		r.BigAcks++
	}
	p := r.Arena.Get()
	p.Flow = r.flow
	p.Kind = netstack.Ack
	p.AckSeq = r.ackedTo
	p.Size = r.cfg.WireSize(0)
	p.SentAt = r.env.Now()
	if r.traced && r.FlowTrace != nil {
		p.Trace = r.FlowTrace.StartSpan()
		p.Trace.Hop(flowtrace.HopTCP, r.TraceLoc, p.SentAt)
	}
	r.one[0] = p
	r.env.Transmit(r.one[:])
	r.one[0] = nil
}
