package tcp

import (
	"testing"

	"softtimers/internal/sim"
)

// TestIdleRestartSlowStartPenalty reproduces the persistent-HTTP restart
// problem (Section 6, Visweswaraiah & Heidemann): after an idle period,
// BSD closes the congestion window and the next response pays a full slow
// start — while a paced restart at the known rate does not.
func TestIdleRestartSlowStartPenalty(t *testing.T) {
	// Phase 1: a 100-segment response over the 50 Mbps WAN grows cwnd.
	r := newRig(t, 100, 50, false)
	r.snd.Start()
	r.eng.RunUntil(10 * sim.Second)
	if r.done == 0 {
		t.Fatal("first response incomplete")
	}
	grownCwnd := r.snd.Cwnd()
	if grownCwnd < 20 {
		t.Fatalf("cwnd = %v after 100 segments, want grown", grownCwnd)
	}

	// Idle period, then a second 100-segment response on the same
	// connection with the window reset (BSD behaviour).
	r.snd.RestartIdle()
	if r.snd.Cwnd() != 1 {
		t.Fatalf("cwnd after idle restart = %v, want initial 1", r.snd.Cwnd())
	}
	r.eng.RunFor(2 * sim.Second) // the idle gap
	start2 := r.eng.Now()
	r.rcv.Expected = 200
	var done2 sim.Time
	r.rcv.OnComplete = func(now sim.Time) { done2 = now }
	r.snd.AddSegments(100)
	r.snd.Kick()
	r.eng.RunUntil(start2 + 20*sim.Second)
	if done2 == 0 {
		t.Fatal("second response incomplete")
	}
	slowStartRestart := done2 - start2
	// The restarted transfer pays the slow-start + delayed-ACK stall
	// again: near the first response's ~1.2s, not a windowed ~0.2s.
	if slowStartRestart < 800*sim.Millisecond {
		t.Fatalf("restart took %v — where did the slow-start penalty go?", slowStartRestart)
	}

	// Phase 2 alternative: rate-based clocking restart at the known
	// bottleneck rate (what soft timers enable).
	p := newRig(t, 100, 50, true)
	interval := 240 * sim.Microsecond
	var tick func()
	tick = func() {
		if _, more := p.snd.PacedSendOne(p.eng.Now()); more {
			p.eng.After(interval, tick)
		}
	}
	p.eng.After(interval, tick)
	p.eng.RunUntil(5 * sim.Second)
	if p.done == 0 {
		t.Fatal("paced restart incomplete")
	}
	if p.done > slowStartRestart/4 {
		t.Fatalf("paced restart (%v) should be far below slow-start restart (%v)",
			p.done, slowStartRestart)
	}
}

func TestAddSegmentsValidation(t *testing.T) {
	r := newRig(t, 10, 50, false)
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddSegments did not panic")
		}
	}()
	r.snd.AddSegments(-1)
}

func TestRestartIdleNoopOnPaced(t *testing.T) {
	r := newRig(t, 10, 50, true)
	r.snd.RestartIdle() // must not panic or alter paced behaviour
	if r.snd.Cwnd() != 1 {
		t.Fatalf("paced cwnd = %v (untouched default expected)", r.snd.Cwnd())
	}
}
