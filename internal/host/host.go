// Package host bundles one simulated machine: a kernel with its CPU
// profile, the soft-timer facility installed as the kernel's trigger sink,
// the machine's network interfaces, and optional TCP endpoints — the unit
// the paper calls "a machine" (server, client, or the Section 5.8 WAN
// emulator are all full hosts in its testbed).
//
// Before this package, every rig hand-wired kernel+facility+NICs itself
// (httpserv.Testbed, the degradation rigs, the examples). Host is the one
// shared constructor: multi-node topologies (package topology) assemble N
// hosts on a single shared sim.Engine, each with its own kernel, trigger
// states, soft-timer wheel, fault plan, and telemetry registry, so
// soft-timer behaviour is measurable on both ends of a flow.
package host

import (
	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/faults"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/tcp"
)

// Config configures one host. The zero value is a plain Pentium-II/300
// machine with default kernel and facility options and no faults.
type Config struct {
	// Name identifies the host in topologies and metrics namespaces.
	Name string
	// Profile is the CPU cost model (zero Name: PentiumII300).
	Profile cpu.Profile
	// Kernel options are passed through verbatim (note IdleLoop's zero
	// value halts the CPU when idle; saturating rigs usually want true).
	Kernel kernel.Options
	// Facility configures the soft-timer facility.
	Facility core.Options
	// Faults, when set, is this host's fault-injection plan: it is
	// installed on the kernel (trigger starvation, interrupt jitter,
	// CPU-cost noise) and is the default plan for links and NIC receive
	// rings attached via AddNIC/topology wiring. Per-host plans let one
	// node misbehave while its peers stay clean.
	Faults *faults.Plan
	// Seed salts the host's private RNG stream (mixed with the name, so
	// equally-seeded hosts still draw independently). Workload code that
	// draws from Rand instead of the engine's streams keeps its draw
	// sequence invariant under sharding, where hosts no longer share one
	// engine. Zero derives the stream from the name alone.
	Seed uint64
}

// Host is one simulated machine on a shared engine.
type Host struct {
	// Name is the host's topology name ("" for single-host rigs).
	Name string
	// K is the machine's kernel; its metrics registry is the host's
	// telemetry namespace.
	K *kernel.Kernel
	// F is the soft-timer facility installed on K.
	F *core.Facility
	// NICs are the machine's interfaces in attach order.
	NICs []*nic.NIC

	plan     *faults.Plan
	rng      *sim.RNG
	traceRNG *sim.RNG
	arena    *netstack.Arena
	started  bool
}

// nameSalt hashes a host name with FNV-1a, the same mix topologies use for
// address-independent per-host salts.
func nameSalt(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// New builds a host on eng: kernel first, then the facility installed as
// its trigger sink — the same order every rig used by hand, so existing
// seeded runs replay byte-identically through this constructor.
func New(eng *sim.Engine, cfg Config) *Host {
	if cfg.Profile.Name == "" {
		cfg.Profile = cpu.PentiumII300()
	}
	kOpts := cfg.Kernel
	if cfg.Faults != nil {
		kOpts.Faults = cfg.Faults
	}
	h := &Host{Name: cfg.Name, plan: cfg.Faults}
	h.rng = sim.NewRNG(cfg.Seed ^ nameSalt(cfg.Name))
	// A second private stream for observability decisions (flowtrace
	// sampling): same (Seed, Name) derivation with an extra salt, so
	// enabling tracing never advances — or is advanced by — any workload
	// draw, and sampling decisions are placement-invariant too.
	h.traceRNG = sim.NewRNG(cfg.Seed ^ nameSalt(cfg.Name) ^ 0xf10317ace5a17e3d)
	h.K = kernel.New(eng, cfg.Profile, kOpts)
	h.F = core.New(h.K, cfg.Facility)
	return h
}

// Rand returns the host's private RNG stream. Its draw sequence depends
// only on (Config.Seed, Config.Name) — never on which engine the host runs
// on — so workloads seeded through it replay identically whether the
// topology runs on one engine or sharded across several.
func (h *Host) Rand() *sim.RNG { return h.rng }

// TraceRand returns the host's private observability RNG stream, disjoint
// from Rand's by construction. Flowtrace samplers draw from it, so
// turning tracing on or off cannot perturb workload randomness.
func (h *Host) TraceRand() *sim.RNG { return h.traceRNG }

// Arena returns the host's packet arena, creating a private one lazily.
// Topologies install a shared engine-local (per-shard) arena with SetArena
// before any NIC attaches, so co-resident hosts recycle one pool.
func (h *Host) Arena() *netstack.Arena {
	if h.arena == nil {
		h.arena = netstack.NewArena()
	}
	return h.arena
}

// SetArena installs the packet arena the host's NICs release into. Must be
// called before AddNIC; arenas are single-goroutine, so the arena must
// belong to the engine the host runs on.
func (h *Host) SetArena(a *netstack.Arena) { h.arena = a }

// AddNIC creates an interface on the host transmitting into out (the wire
// toward the peer). Zero Costs default; the receive ring's fault channel
// comes from the host plan under nic.<name>.rx unless cfg.Faults is set.
func (h *Host) AddNIC(cfg nic.Config, out netstack.Endpoint) *nic.NIC {
	if cfg.Costs == (nic.Costs{}) {
		cfg.Costs = nic.DefaultCosts()
	}
	if cfg.Faults == nil {
		cfg.Faults = h.plan.Link("nic." + cfg.Name + ".rx")
	}
	n := nic.New(h.K, h.F, cfg, out)
	n.SetArena(h.Arena())
	h.NICs = append(h.NICs, n)
	return n
}

// NIC returns the first interface (convenience for 1-NIC hosts), or nil.
func (h *Host) NIC() *nic.NIC {
	if len(h.NICs) == 0 {
		return nil
	}
	return h.NICs[0]
}

// Start spins up the kernel and then each NIC, in attach order. Idempotent.
func (h *Host) Start() {
	if h.started {
		return
	}
	h.started = true
	h.K.Start()
	for _, n := range h.NICs {
		n.Start()
	}
}

// Engine returns the shared simulation engine.
func (h *Host) Engine() *sim.Engine { return h.K.Engine() }

// Metrics returns the host's telemetry registry (the kernel's).
func (h *Host) Metrics() *metrics.Registry { return h.K.Metrics() }

// Snapshot captures the host's telemetry.
func (h *Host) Snapshot() *metrics.Snapshot { return h.K.Metrics().Snapshot() }

// Faults returns the host's fault plan (nil on a clean host).
func (h *Host) Faults() *faults.Plan { return h.plan }

// TCPEnv adapts one of the host's NICs to tcp.Env, so TCP endpoints
// terminate on a real kernel: transmissions go through the NIC's kernel
// transmit path (softirq, ip-output trigger states) and protocol timers run
// on the engine. Use as the env for tcp.Sender/Receiver living on this
// host.
type TCPEnv struct {
	H *Host
	N *nic.NIC
}

// Env builds a TCPEnv on the i-th NIC.
func (h *Host) Env(i int) *TCPEnv { return &TCPEnv{H: h, N: h.NICs[i]} }

// Now implements tcp.Env.
func (e *TCPEnv) Now() sim.Time { return e.H.K.Now() }

// After implements tcp.Env (protocol timers; exact, engine-scheduled).
func (e *TCPEnv) After(d sim.Time, fn func()) tcp.Canceler {
	return &tcpCanceler{e.H.Engine().After(d, fn)}
}

// Transmit implements tcp.Env: packets leave via the NIC's kernel path.
func (e *TCPEnv) Transmit(pkts []*netstack.Packet) {
	e.N.TxFromKernel(pkts...)
}

// tcpCanceler adapts a sim.Event to tcp's timer-handle interfaces; a
// pointer type so Reschedule can refresh the handle's deadline snapshot.
type tcpCanceler struct{ ev sim.Event }

// Cancel implements tcp.Canceler.
func (c *tcpCanceler) Cancel() bool { return c.ev.Cancel() }

// Reschedule implements tcp.Rescheduler: the engine moves the pending
// event in place (a single queue update instead of cancel+insert).
func (c *tcpCanceler) Reschedule(d sim.Time) bool { return c.ev.RescheduleAfter(d) }
