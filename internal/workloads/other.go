package workloads

import (
	"softtimers/internal/cpu"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// newBareRig builds a kernel+facility rig with no network testbed.
func newBareRig(seed uint64, prof cpu.Profile) *Rig {
	eng := sim.NewEngine(seed + 1)
	h := host.New(eng, host.Config{Profile: prof, Kernel: kernel.Options{IdleLoop: true}})
	return &Rig{Eng: eng, K: h.K, F: h.F}
}

// makeRealAudio models the RealPlayer workload: a single process that
// saturates the CPU with user-mode audio processing punctuated by very
// frequent short system calls (reads from the network buffer, writes to
// the audio device), plus a low-rate inbound audio packet stream. The
// paper's Table 1: mean 8.47 µs, median 6 µs — dominated by the syscall
// cadence, not by interrupts.
func makeRealAudio(seed uint64, prof cpu.Profile) *Rig {
	r := newBareRig(seed, prof)
	rng := r.Eng.Rand().Fork()
	player := r.K.Spawn("realplayer", func(p *kernel.Proc) {
		var loop func()
		loop = func() {
			// Decode a little, then touch the kernel: the RealPlayer
			// makes "many system calls" (Section 5.3).
			p.Compute(rng.ExpTime(sim.Micros(4.0)), func() {
				if rng.Bool(0.0008) {
					// Occasional longer decode burst (buffer refill,
					// UI work) — the distribution's tail.
					p.Compute(rng.ParetoTime(1.3, sim.Micros(150), sim.Micros(1800)), func() {
						p.Syscall("read", rng.ExpTime(sim.Micros(2.2)), loop)
					})
					return
				}
				p.Syscall("write", rng.ExpTime(sim.Micros(2.2)), loop)
			})
		}
		loop()
	})
	player.PollutionFactor = 1.0
	// Live audio stream: a packet every ~5 ms (a few hundred kbit/s).
	var audioPkt func()
	audioPkt = func() {
		r.K.RaiseInterrupt(kernel.SrcIPIntr, sim.Micros(4), nil)
		r.Eng.After(rng.ExpTime(5*sim.Millisecond), audioPkt)
	}
	r.Eng.After(sim.Millisecond, audioPkt)
	r.K.Start()
	return r
}

// makeNFS models the NFS fileserver workload: saturated but disk-bound,
// with the CPU idle about 90% of the time — so the 2 µs idle-loop poll
// dominates the trigger-interval distribution (Table 1: mean 2.13 µs,
// median 2 µs). A periodic syncer process contributes the rare long
// trigger gaps (Table 1's 910 µs max).
func makeNFS(seed uint64, prof cpu.Profile) *Rig {
	r := newBareRig(seed, prof)
	rng := r.Eng.Rand().Fork()

	var reqQ int
	var reqWQ kernel.WaitQueue
	// nfsd worker threads: take a request, process, wait for the disk,
	// reply (2 packets via the IP output path).
	for i := 0; i < 8; i++ {
		r.K.Spawn("nfsd", func(p *kernel.Proc) {
			var diskWQ kernel.WaitQueue
			var loop func()
			loop = func() {
				if reqQ == 0 {
					p.Sleep(&reqWQ, loop)
					return
				}
				reqQ--
				p.Syscall("nfs-rpc", rng.ExpTime(sim.Micros(35)), func() {
					// Disk read: sleep until the controller interrupts.
					r.Eng.After(rng.ExpTime(2500*sim.Microsecond), func() {
						r.K.RaiseInterrupt(kernel.SrcDisk, sim.Micros(5), func() {
							diskWQ.WakeOne()
						})
					})
					p.Sleep(&diskWQ, func() {
						reply := []kernel.ChainStep{
							{Work: sim.Micros(8), Src: kernel.SrcIPOutput},
							{Work: sim.Micros(8), Src: kernel.SrcIPOutput},
						}
						p.Chain(reply, loop)
					})
				})
			}
			loop()
		})
	}
	// Request arrivals: NFS RPCs over the network, Poisson ~400/s.
	var arrive func()
	arrive = func() {
		r.K.RaiseInterrupt(kernel.SrcIPIntr, sim.Micros(4), func() {
			reqQ++
			reqWQ.WakeOne()
		})
		r.Eng.After(rng.ExpTime(2500*sim.Microsecond), arrive)
	}
	r.Eng.After(100*sim.Microsecond, arrive)

	// The syncer flushes dirty buffers twice a second: a long kernel
	// stretch without trigger states.
	r.K.Spawn("syncer", func(p *kernel.Proc) {
		var sleepWQ kernel.WaitQueue
		var loop func()
		loop = func() {
			r.Eng.After(500*sim.Millisecond, func() { sleepWQ.WakeOne() })
			p.Sleep(&sleepWQ, func() {
				p.Compute(rng.NormTime(sim.Micros(820), sim.Micros(60), sim.Micros(500)), func() {
					p.Syscall("sync", sim.Micros(20), loop)
				})
			})
		}
		loop()
	})
	r.K.Start()
	return r
}

// makeKernelBuild models building the FreeBSD kernel from source:
// compiler processes with heavy-tailed compute bursts (the 47.9 µs
// standard deviation and 1000 µs max of Table 1), bursts of file-access
// syscalls, page-fault traps, and disk waits that leave the CPU idle
// nearly half the time (the 2 µs median comes from idle polling).
func makeKernelBuild(seed uint64, prof cpu.Profile) *Rig {
	r := newBareRig(seed, prof)
	rng := r.Eng.Rand().Fork()
	// A sequential make: one compiler at a time, so disk waits actually
	// idle the CPU (the source of the idle-poll median).
	for i := 0; i < 1; i++ {
		r.K.Spawn("cc", func(p *kernel.Proc) {
			var diskWQ kernel.WaitQueue
			var loop func()
			// The steady state interleaves short compute with file and
			// pipe syscalls and the occasional page fault; every so
			// often a heavy-tailed optimization pass runs uninterrupted
			// (the distribution's tail, bounded by hardclock at 1 ms),
			// and disk reads park the process, exposing the idle loop
			// (the 2 µs median).
			loop = func() {
				p.Compute(rng.ExpTime(sim.Micros(14)), func() {
					switch {
					case rng.Bool(0.018): // disk miss: sleep on I/O
						r.Eng.After(rng.ExpTime(700*sim.Microsecond), func() {
							r.K.RaiseInterrupt(kernel.SrcDisk, sim.Micros(5), func() {
								diskWQ.WakeOne()
							})
						})
						p.Sleep(&diskWQ, loop)
					case rng.Bool(0.025): // optimization pass
						p.Compute(rng.ParetoTime(1.25, sim.Micros(80), sim.Micros(950)), loop)
					case rng.Bool(0.10): // page fault
						p.Trap("pagefault", sim.Micros(9), loop)
					default:
						p.Syscall("read", rng.ExpTime(sim.Micros(8)), loop)
					}
				})
			}
			loop()
		})
	}
	r.K.Start()
	return r
}
