package workloads

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/sim"
)

func TestAllReturnsSixWorkloadsInTableOrder(t *testing.T) {
	names := []string{"ST-Apache", "ST-Apache-compute", "ST-Flash",
		"ST-real-audio", "ST-nfs", "ST-kernel-build"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("got %d workloads", len(all))
	}
	for i, d := range all {
		if d.Name != names[i] {
			t.Errorf("workload %d = %q, want %q", i, d.Name, names[i])
		}
		if d.Make == nil {
			t.Errorf("workload %q has nil Make", d.Name)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("ST-nfs")
	if err != nil || d.Name != "ST-nfs" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("ST-doom"); err == nil {
		t.Fatal("unknown name did not error")
	}
}

// collect builds the workload and gathers n interval samples.
func collect(t *testing.T, name string, n int64) *Rig {
	t.Helper()
	d, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r := d.Make(1, cpu.PentiumII300())
	r.Collect(n, sim.Second, 60*sim.Second)
	if got := r.K.Meter().N(); got < n {
		t.Fatalf("%s: collected only %d of %d samples", name, got, n)
	}
	return r
}

// band asserts a value lies in [lo, hi], labeled against the paper value.
func band(t *testing.T, what string, got, lo, hi, paper float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want in [%.2f, %.2f] (paper: %.2f)", what, got, lo, hi, paper)
	}
}

func TestApacheDistributionMatchesTable1(t *testing.T) {
	r := collect(t, "ST-Apache", 200000)
	h := r.K.Meter().Hist
	band(t, "mean", h.Mean(), 26, 38, 31.52)
	band(t, "median", h.Quantile(0.5), 13, 24, 18)
	band(t, ">100us %", h.FracAbove(100)*100, 2, 9, 5.3)
}

func TestApacheComputeUnaffectedByBackgroundProcess(t *testing.T) {
	// Section 5.3: "the presence of background processes has no tangible
	// impact" — the busy server's interrupts and syscalls dominate.
	base := collect(t, "ST-Apache", 150000).K.Meter().Hist
	comp := collect(t, "ST-Apache-compute", 150000).K.Meter().Hist
	if d := comp.Mean() - base.Mean(); d < -4 || d > 6 {
		t.Errorf("compute-bound process moved mean by %.1fus (paper: +0.07us)", d)
	}
	if d := comp.Quantile(0.5) - base.Quantile(0.5); d < -3 || d > 3 {
		t.Errorf("compute-bound process moved median by %.1fus (paper: 0)", d)
	}
}

func TestFlashDistributionMatchesTable1(t *testing.T) {
	h := collect(t, "ST-Flash", 200000).K.Meter().Hist
	band(t, "mean", h.Mean(), 19, 29, 22.53)
	band(t, "median", h.Quantile(0.5), 12, 22, 17)
}

func TestRealAudioDistributionMatchesTable1(t *testing.T) {
	h := collect(t, "ST-real-audio", 200000).K.Meter().Hist
	band(t, "mean", h.Mean(), 6.5, 10.5, 8.47)
	band(t, "median", h.Quantile(0.5), 4.5, 8, 6)
}

func TestNFSDistributionMatchesTable1(t *testing.T) {
	r := collect(t, "ST-nfs", 200000)
	h := r.K.Meter().Hist
	band(t, "mean", h.Mean(), 1.8, 3, 2.13)
	band(t, "median", h.Quantile(0.5), 1.5, 3, 2)
	// The CPU must be ~90% idle (disk-bound saturation).
	a := r.K.Accounting()
	idleFrac := float64(a.Idle) / float64(a.Idle+a.Busy())
	band(t, "idle fraction", idleFrac, 0.80, 0.97, 0.90)
}

func TestKernelBuildDistributionMatchesTable1(t *testing.T) {
	h := collect(t, "ST-kernel-build", 200000).K.Meter().Hist
	band(t, "mean", h.Mean(), 4, 8, 5.63)
	band(t, "median", h.Quantile(0.5), 1.5, 4, 2)
	// The heavy compute tail must exist but stay bounded by hardclock.
	if h.Quantile(1) > 1050 {
		t.Errorf("max = %.0f, must be bounded by the 1ms backup tick", h.Quantile(1))
	}
	if h.Quantile(0.999) < 50 {
		t.Errorf("p99.9 = %.0f, missing the heavy compile tail", h.Quantile(0.999))
	}
}

func TestAllWorkloadsBoundedByHardclock(t *testing.T) {
	// The soft-timer guarantee: no trigger gap exceeds the interrupt
	// clock period (plus handler slack) on ANY workload.
	for _, d := range All() {
		r := d.Make(2, cpu.PentiumII300())
		r.Collect(50000, 500*sim.Millisecond, 30*sim.Second)
		h := r.K.Meter().Hist
		if m := h.Quantile(1); m > 1100 {
			t.Errorf("%s: max trigger gap %.0fus exceeds hardclock bound", d.Name, m)
		}
	}
}

func TestXeonScalesTriggerGranularity(t *testing.T) {
	// Table 1's last row: on the 500 MHz Xeon the ST-Apache mean drops
	// by roughly the CPU clock ratio (31.52 -> 19.41 µs).
	pii := collect(t, "ST-Apache", 150000).K.Meter().Hist
	d, _ := ByName("ST-Apache")
	xeon := d.Make(1, cpu.PentiumIII500())
	xeon.Collect(150000, sim.Second, 60*sim.Second)
	hx := xeon.K.Meter().Hist
	ratio := hx.Mean() / pii.Mean()
	if ratio < 0.5 || ratio > 0.8 {
		t.Errorf("Xeon/PII mean ratio = %.2f, want ~0.6 (paper: 19.41/31.52 = 0.62)", ratio)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, float64) {
		d, _ := ByName("ST-kernel-build")
		r := d.Make(7, cpu.PentiumII300())
		r.Collect(50000, 100*sim.Millisecond, 30*sim.Second)
		return r.K.Meter().N(), r.K.Meter().Hist.Mean()
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("workload runs nondeterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}
