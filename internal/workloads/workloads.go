// Package workloads assembles the six system workloads whose trigger-state
// interval distributions Section 5.3 measures (Figure 4 and Table 1):
//
//	ST-Apache          busy Apache web server (6 KB requests, saturated)
//	ST-Apache-compute  the same plus a compute-bound background process
//	ST-Flash           busy Flash (event-driven) web server
//	ST-real-audio      RealPlayer-like CPU-saturating audio client
//	ST-nfs             saturated but disk-bound NFS server (CPU ~90% idle)
//	ST-kernel-build    compiling the OS kernel from source
//
// Each definition builds a ready-to-run rig: a simulated kernel with the
// soft-timer facility installed and the workload's processes and device
// activity wired up. The trigger meter on the kernel then yields the
// interval distribution.
package workloads

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// Rig is an assembled workload ready to run.
type Rig struct {
	Eng *sim.Engine
	K   *kernel.Kernel
	F   *core.Facility
	// Testbed is non-nil for the web-server workloads.
	Testbed *httpserv.Testbed
}

// Definition names a workload and knows how to build it.
type Definition struct {
	// Name is the paper's label, e.g. "ST-Apache".
	Name string
	// Make assembles the workload on a fresh engine.
	Make func(seed uint64, prof cpu.Profile) *Rig
}

// All returns the paper's six workloads in Table 1 order.
func All() []Definition {
	return []Definition{
		{Name: "ST-Apache", Make: makeApache(false)},
		{Name: "ST-Apache-compute", Make: makeApache(true)},
		{Name: "ST-Flash", Make: makeFlash},
		{Name: "ST-real-audio", Make: makeRealAudio},
		{Name: "ST-nfs", Make: makeNFS},
		{Name: "ST-kernel-build", Make: makeKernelBuild},
	}
}

// ByName returns the named workload definition.
func ByName(name string) (Definition, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Collect runs the rig until n trigger intervals have been recorded (or
// the simulated-time cap passes), running warmup first so distributions
// are measured in steady state.
func (r *Rig) Collect(n int64, warmup, cap sim.Time) {
	r.Eng.RunFor(warmup)
	// Reset the meter by swapping in a fresh one is not supported;
	// instead record the base count and run until the delta reaches n.
	base := r.K.Meter().N()
	deadline := r.Eng.Now() + cap
	for r.K.Meter().N()-base < n && r.Eng.Now() < deadline {
		r.Eng.RunFor(10 * sim.Millisecond)
	}
}

// makeApache builds the ST-Apache rig; withCompute adds the compute-bound
// background process of ST-Apache-compute.
func makeApache(withCompute bool) func(uint64, cpu.Profile) *Rig {
	return func(seed uint64, prof cpu.Profile) *Rig {
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed:    seed,
			Profile: prof,
			Server:  httpserv.Config{Kind: httpserv.Apache},
		})
		if withCompute {
			// A tight user-mode loop without system calls: it may only
			// lose the CPU to interrupts and quantum preemption, and
			// contributes no trigger states of its own.
			hog := tb.K.Spawn("compute-hog", func(p *kernel.Proc) {
				var loop func()
				loop = func() { p.Compute(50*sim.Millisecond, loop) }
				loop()
			})
			// BSD's decaying priorities keep a pure spinner below the
			// I/O-bound server processes; it soaks up leftover CPU but
			// is preempted the moment a worker wakes. This is why the
			// paper finds "no tangible impact" from the hog.
			hog.Priority = -1
		}
		r := &Rig{Eng: tb.Eng, K: tb.K, F: tb.F, Testbed: tb}
		tb.Start()
		return r
	}
}

func makeFlash(seed uint64, prof cpu.Profile) *Rig {
	tb := httpserv.NewTestbed(httpserv.TestbedConfig{
		Seed:    seed,
		Profile: prof,
		Server:  httpserv.Config{Kind: httpserv.Flash},
	})
	r := &Rig{Eng: tb.Eng, K: tb.K, F: tb.F, Testbed: tb}
	tb.Start()
	return r
}
