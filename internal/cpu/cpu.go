// Package cpu defines the processor cost model used by the simulated kernel.
//
// The paper's central cost argument (Sections 2 and 5.1) is that a hardware
// interrupt costs far more than the handler's useful work: the CPU must save
// and restore state, and the handler's code and data evict the interrupted
// program's cache and TLB working set, slowing it down after the handler
// returns. On the paper's 300 MHz Pentium II this totals ≈4.45 µs per
// interrupt; on a 500 MHz Pentium III it is ≈4.36 µs — i.e. interrupt cost
// does NOT scale down with CPU speed, while ordinary work does.
//
// A Profile captures those constants. "Work" durations (user computation,
// syscall service, protocol processing) scale with WorkScale; interrupt and
// context-switch costs are fixed per profile, reproducing the paper's
// scaling observation.
package cpu

import "softtimers/internal/sim"

// Profile is the cost model for one processor generation.
type Profile struct {
	// Name identifies the profile in reports, e.g. "PentiumII-300".
	Name string

	// ClockHz is the measurement-clock resolution the soft-timer facility
	// exposes for this CPU (the paper reads the CPU cycle counter).
	ClockHz uint64

	// WorkScale multiplies all workload *work* durations. The Pentium II
	// 300 MHz profile is the 1.0 baseline; a 500 MHz part runs the same
	// work in 0.6× the time.
	WorkScale float64

	// IntrDirect is the fixed cost of taking a hardware interrupt:
	// save/restore of CPU state, vectoring, and handler entry/exit.
	IntrDirect sim.Time

	// IntrPollution is the cache/TLB pollution penalty an interrupt
	// inflicts on the activity it preempted, charged to that activity's
	// remaining work when it resumes. IntrDirect+IntrPollution is the
	// per-interrupt total the paper measures (≈4.45 µs on the P-II).
	IntrPollution sim.Time

	// CtxSwitch is the direct cost of a process context switch.
	CtxSwitch sim.Time

	// CtxPollution is the locality penalty charged to the switched-to
	// process's first segment.
	CtxPollution sim.Time

	// SyscallOverhead is the fixed user/kernel crossing cost added to
	// every syscall's service time.
	SyscallOverhead sim.Time

	// TrapOverhead is the fixed cost of a trap (page fault, arithmetic
	// exception) before its handler work.
	TrapOverhead sim.Time

	// SoftCheck is the cost of the per-trigger-state soft-timer check:
	// read the clock, compare against the earliest pending event. The
	// paper measures this as having no observable impact.
	SoftCheck sim.Time

	// SoftCall is the procedure-call cost of invoking a soft-timer
	// handler from a trigger state (no state save/restore needed).
	SoftCall sim.Time

	// IdlePoll is the idle-loop iteration time: the interval at which an
	// idle CPU passes through its trigger state. Table 1's disk-bound
	// NFS workload shows ≈2 µs trigger intervals from exactly this loop.
	IdlePoll sim.Time
}

// Work converts a nominal work duration (expressed for the baseline CPU)
// into this profile's execution time, with a 1 ns floor so scaled work can
// always be scheduled.
func (p Profile) Work(d sim.Time) sim.Time {
	w := sim.Time(float64(d) * p.WorkScale)
	if w < 1 {
		w = 1
	}
	return w
}

// Perturber injects noise into computed work durations. The fault-injection
// layer implements it to model per-syscall/trap CPU-cost variation
// (competing bus traffic, cache state, frequency steps); the kernel passes
// its installed perturber — nil when no fault plan — to PerturbedWork.
type Perturber interface {
	// PerturbWork maps an execution time to its perturbed value. It must
	// return a positive duration.
	PerturbWork(d sim.Time) sim.Time
}

// PerturbedWork is Work followed by the perturber, when one is installed.
// A nil perturber costs one comparison, keeping the clean path unchanged.
func (p Profile) PerturbedWork(pert Perturber, d sim.Time) sim.Time {
	w := p.Work(d)
	if pert != nil {
		w = pert.PerturbWork(w)
	}
	return w
}

// IntrTotal returns the total per-interrupt overhead (direct + pollution),
// the quantity Figure 3's linear fit measures.
func (p Profile) IntrTotal() sim.Time { return p.IntrDirect + p.IntrPollution }

// PentiumII300 models the paper's main testbed: 300 MHz Pentium II running
// FreeBSD-2.2.6. Interrupt total ≈ 4.45 µs (Section 5.1).
func PentiumII300() Profile {
	return Profile{
		Name:            "PentiumII-300",
		ClockHz:         300_000_000,
		WorkScale:       1.0,
		IntrDirect:      sim.Micros(2.0),
		IntrPollution:   sim.Micros(2.45),
		CtxSwitch:       sim.Micros(5.0),
		CtxPollution:    sim.Micros(5.0),
		SyscallOverhead: sim.Micros(1.2),
		TrapOverhead:    sim.Micros(1.5),
		SoftCheck:       sim.Time(40), // ~12 cycles: clock read + compare
		SoftCall:        sim.Time(150),
		IdlePoll:        sim.Micros(2.0),
	}
}

// PentiumIII500 models the 500 MHz Pentium III (Xeon) check machine running
// FreeBSD-3.3: work runs 1.67× faster, interrupt total ≈ 4.36 µs.
func PentiumIII500() Profile {
	return Profile{
		Name:            "PentiumIII-500",
		ClockHz:         500_000_000,
		WorkScale:       0.6,
		IntrDirect:      sim.Micros(1.96),
		IntrPollution:   sim.Micros(2.40),
		CtxSwitch:       sim.Micros(3.2),
		CtxPollution:    sim.Micros(4.0),
		SyscallOverhead: sim.Micros(0.75),
		TrapOverhead:    sim.Micros(0.95),
		SoftCheck:       sim.Time(25),
		SoftCall:        sim.Time(100),
		IdlePoll:        sim.Micros(1.2),
	}
}

// Alpha500 models the AlphaStation 500au (500 MHz 21164, FreeBSD-4.0-beta)
// from Section 5.1, whose interrupt overhead measured 8.64 µs — evidence
// that high interrupt cost is not unique to Intel PCs.
func Alpha500() Profile {
	return Profile{
		Name:            "Alpha-21164-500",
		ClockHz:         500_000_000,
		WorkScale:       0.62,
		IntrDirect:      sim.Micros(4.0),
		IntrPollution:   sim.Micros(4.64),
		CtxSwitch:       sim.Micros(4.0),
		CtxPollution:    sim.Micros(5.0),
		SyscallOverhead: sim.Micros(0.9),
		TrapOverhead:    sim.Micros(1.1),
		SoftCheck:       sim.Time(30),
		SoftCall:        sim.Time(120),
		IdlePoll:        sim.Micros(1.3),
	}
}
