package cpu

import (
	"testing"

	"softtimers/internal/sim"
)

func TestPentiumII300IntrTotalMatchesPaper(t *testing.T) {
	p := PentiumII300()
	// Section 5.1: "the average combined overhead per interrupt is about
	// 4.45 µs" on the 300 MHz Pentium II.
	if got := p.IntrTotal(); got != sim.Micros(4.45) {
		t.Fatalf("IntrTotal = %v, want 4.45us", got)
	}
	if p.WorkScale != 1.0 {
		t.Fatalf("baseline WorkScale = %v, want 1.0", p.WorkScale)
	}
}

func TestPentiumIII500NearConstantInterruptCost(t *testing.T) {
	pii := PentiumII300()
	xeon := PentiumIII500()
	// Interrupt overhead must NOT scale with CPU speed (4.36 vs 4.45 µs),
	// while work must run ~1.67x faster.
	ratio := float64(xeon.IntrTotal()) / float64(pii.IntrTotal())
	if ratio < 0.9 || ratio > 1.05 {
		t.Fatalf("interrupt cost ratio = %v, want near 1 (paper: 4.36/4.45)", ratio)
	}
	if xeon.WorkScale >= pii.WorkScale {
		t.Fatal("faster CPU must have smaller WorkScale")
	}
	if got := xeon.IntrTotal(); got != sim.Micros(4.36) {
		t.Fatalf("Xeon IntrTotal = %v, want 4.36us", got)
	}
}

func TestAlphaHigherInterruptCost(t *testing.T) {
	// Section 5.1: 8.64 µs on the AlphaStation — interrupt expense is not
	// an Intel artifact.
	if got := Alpha500().IntrTotal(); got != sim.Micros(8.64) {
		t.Fatalf("Alpha IntrTotal = %v, want 8.64us", got)
	}
}

func TestWorkScaling(t *testing.T) {
	xeon := PentiumIII500()
	if got := xeon.Work(sim.Micros(100)); got != sim.Micros(60) {
		t.Fatalf("Work(100us) on 0.6 scale = %v, want 60us", got)
	}
	pii := PentiumII300()
	if got := pii.Work(sim.Micros(100)); got != sim.Micros(100) {
		t.Fatalf("Work(100us) on baseline = %v, want 100us", got)
	}
}

func TestWorkFloor(t *testing.T) {
	p := PentiumIII500()
	if got := p.Work(1); got < 1 {
		t.Fatalf("Work(1ns) = %v, must be schedulable (>=1)", got)
	}
	if got := p.Work(0); got != 1 {
		t.Fatalf("Work(0) = %v, want floor of 1", got)
	}
}

func TestSoftCheckMuchCheaperThanInterrupt(t *testing.T) {
	// The facility's whole premise: the per-trigger check must be orders
	// of magnitude cheaper than an interrupt.
	for _, p := range []Profile{PentiumII300(), PentiumIII500(), Alpha500()} {
		if p.SoftCheck*20 > p.IntrTotal() {
			t.Errorf("%s: SoftCheck %v too close to IntrTotal %v", p.Name, p.SoftCheck, p.IntrTotal())
		}
		if p.SoftCall >= p.IntrDirect {
			t.Errorf("%s: SoftCall %v should be well below IntrDirect %v", p.Name, p.SoftCall, p.IntrDirect)
		}
	}
}

func TestProfilesFullyPopulated(t *testing.T) {
	for _, p := range []Profile{PentiumII300(), PentiumIII500(), Alpha500()} {
		if p.Name == "" || p.ClockHz == 0 || p.WorkScale <= 0 {
			t.Errorf("profile %+v has zero identity fields", p)
		}
		for name, v := range map[string]sim.Time{
			"IntrDirect": p.IntrDirect, "IntrPollution": p.IntrPollution,
			"CtxSwitch": p.CtxSwitch, "CtxPollution": p.CtxPollution,
			"SyscallOverhead": p.SyscallOverhead, "TrapOverhead": p.TrapOverhead,
			"SoftCheck": p.SoftCheck, "SoftCall": p.SoftCall, "IdlePoll": p.IdlePoll,
		} {
			if v <= 0 {
				t.Errorf("%s: %s = %v, want positive", p.Name, name, v)
			}
		}
	}
}
