package netstack

import (
	"fmt"

	"softtimers/internal/flowtrace"
)

// Packet pooling. An Arena recycles packets the way sim.Engine recycles
// events: acquisition pops a free list, release pushes back onto the list
// of the releasing side's arena, and a generation counter makes stale
// handles detectable. Arenas are strictly single-goroutine — one per
// engine (per shard, in sharded topologies). Packets may migrate between
// arenas: a packet acquired on shard A and delivered on shard B is
// released into B's arena (the conduit flush at the round barrier is the
// happens-before edge), so the pools drift toward the consumers, which is
// where the next acquisition usually happens anyway.
//
// Ownership rules (see DESIGN.md "Packet lifecycle & arena"):
//   - the producer acquires (Get) and owns the packet;
//   - Link.Send consumes it: ownership passes to the link, which releases
//     on a queue-limit drop or an injected loss and otherwise hands the
//     packet to its destination endpoint at arrival time;
//   - a Switch forwards (ownership passes to the next link) or releases on
//     an address miss;
//   - a NIC releases on an rx-ring fault drop, and otherwise after the
//     receive handler returns — handlers borrow the packet; a handler that
//     needs it past its own return (e.g. a Router forwarding out another
//     interface) must Retain first;
//   - Release decrements the refcount and only frees at zero, so
//     Retain/Release pairs give multi-hop paths a zero-alloc lifetime.
//
// Packets built as plain literals (&Packet{...}) never enter an arena:
// Release is a no-op for them, so existing rigs and tests keep working
// unchanged. The exactly-once and stale-handle guarantees apply only to
// arena-acquired packets.

// arenaChunk is the packet count carved per allocation when the free list
// runs dry, amortizing allocation the way the engine's event pool does.
const arenaChunk = 64

// Arena is a single-goroutine packet pool.
type Arena struct {
	free *Packet

	// rec, when set, retires the span of any traced packet whose
	// refcount drops to zero here — the flowtrace span-finish hook.
	// Like packets, a span allocated on another shard finishes into the
	// releasing shard's recorder.
	rec *flowtrace.Recorder

	gets   int64 // packets handed out (Get + Clone)
	puts   int64 // packets returned to this arena's free list
	chunks int64 // chunk carves
}

// SetFlowRecorder attaches the shard's flowtrace recorder; traced packets
// released here finish their spans into it. Without one, a traced
// packet's span is silently dropped at release (untraced rigs never hit
// this: samplers are only wired alongside recorders).
func (a *Arena) SetFlowRecorder(r *flowtrace.Recorder) { a.rec = r }

// NewArena creates an empty arena; the first Get carves a chunk.
func NewArena() *Arena { return &Arena{} }

// Get acquires a packet with zeroed public fields and a refcount of one.
// Safe on a nil arena (falls back to a heap literal) so unwired paths
// degrade to the old allocation behavior instead of crashing.
func (a *Arena) Get() *Packet {
	if a == nil {
		return &Packet{}
	}
	p := a.free
	if p == nil {
		chunk := make([]Packet, arenaChunk)
		for i := range chunk {
			c := &chunk[i]
			c.pooled = true
			c.next = a.free
			a.free = c
		}
		a.chunks++
		p = a.free
	}
	a.free = p.next
	p.next = nil
	p.reset()
	p.ref = 1
	a.gets++
	return p
}

// reset zeroes the public fields, preserving pool bookkeeping.
func (p *Packet) reset() {
	pooled, gen := p.pooled, p.gen
	*p = Packet{}
	p.pooled, p.gen = pooled, gen
}

// Retain adds a reference: the packet will survive one extra Release.
// No-op for non-pooled literals. Returns p for call-site convenience.
func (p *Packet) Retain() *Packet {
	if p.pooled {
		p.ref++
	}
	return p
}

// Pooled reports whether the packet came from an arena.
func (p *Packet) Pooled() bool { return p.pooled }

// Release drops one reference and, at zero, returns the packet to this
// arena's free list (bumping its generation so stale handles notice).
// Non-pooled literals are ignored, and over-releasing a pooled packet
// panics — that is a lifecycle bug, not a runtime condition. Safe on a
// nil arena: the packet is marked freed but left to the garbage
// collector.
func (a *Arena) Release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	p.ref--
	if p.ref > 0 {
		return
	}
	if p.ref < 0 {
		panic(fmt.Sprintf("netstack: packet released after free (flow %d, gen %d)", p.Flow, p.gen))
	}
	if p.Trace != nil {
		if a != nil {
			a.rec.Finish(p.Trace, p.Flow, int(p.Kind), p.Seq, int32(p.Src), int32(p.Dst))
		}
		p.Trace = nil
	}
	p.gen++
	if a == nil {
		return
	}
	p.next = a.free
	a.free = p
	a.puts++
}

// Clone acquires a fresh packet carrying src's public fields — the
// dup-fault copy. On a nil arena it falls back to a heap copy with the
// pool bookkeeping cleared, so a struct copy never aliases free-list
// state. The clone is untraced: a span belongs to exactly one packet
// (one release finishes it), so the copy must not alias it.
func (a *Arena) Clone(src *Packet) *Packet {
	if a == nil {
		cp := *src
		cp.pooled, cp.ref, cp.gen, cp.next = false, 0, 0, nil
		cp.Trace = nil
		return &cp
	}
	p := a.Get()
	pooled, ref, gen := p.pooled, p.ref, p.gen
	*p = *src
	p.pooled, p.ref, p.gen, p.next = pooled, ref, gen, nil
	p.Trace = nil
	return p
}

// Live returns the packets this arena has handed out and not yet gotten
// back. With a single arena (any single-engine rig) a drained network has
// Live() == 0; across migrating arenas, sum Gets/Puts instead.
func (a *Arena) Live() int64 { return a.gets - a.puts }

// Gets returns the number of packets acquired from this arena.
func (a *Arena) Gets() int64 { return a.gets }

// Puts returns the number of packets returned to this arena.
func (a *Arena) Puts() int64 { return a.puts }

// Handle is a generation-counted weak reference to an arena packet, for
// tests that assert lifecycle discipline. A handle taken from a live
// packet goes stale the moment the packet is freed (or recycled).
type Handle struct {
	p   *Packet
	gen uint32
}

// HandleOf captures a handle to p's current incarnation.
func HandleOf(p *Packet) Handle { return Handle{p: p, gen: p.gen} }

// Valid reports whether the handle still names a live incarnation.
// Handles to non-pooled literals are always valid.
func (h Handle) Valid() bool {
	if h.p == nil {
		return false
	}
	if !h.p.pooled {
		return true
	}
	return h.p.gen == h.gen && h.p.ref > 0
}

// Get returns the packet, panicking if the handle is stale — using a
// freed packet is the pooling bug this type exists to catch.
func (h Handle) Get() *Packet {
	if !h.Valid() {
		panic(fmt.Sprintf("netstack: stale packet handle (gen %d, now %d, ref %d)",
			h.gen, h.p.gen, h.p.ref))
	}
	return h.p
}
