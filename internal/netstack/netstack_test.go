package netstack

import (
	"testing"
	"testing/quick"

	"softtimers/internal/sim"
)

type sinkEP struct {
	got []*Packet
	at  []sim.Time
	eng *sim.Engine
}

func (s *sinkEP) Deliver(p *Packet) {
	s.got = append(s.got, p)
	s.at = append(s.at, s.eng.Now())
}

func TestLinkTransmissionTime(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	// 100 Mbps: a 1500-byte packet serializes in 120us — the number the
	// paper quotes for Fast Ethernet.
	l := NewLink(eng, "lan", 100_000_000, 0, sink)
	if got := l.TxTime(1500); got != 120*sim.Microsecond {
		t.Fatalf("TxTime(1500) = %v, want 120us", got)
	}
	// 1 Gbps: 12us per packet.
	g := NewLink(eng, "gig", 1_000_000_000, 0, sink)
	if got := g.TxTime(1500); got != 12*sim.Microsecond {
		t.Fatalf("gig TxTime = %v, want 12us", got)
	}
}

func TestLinkDeliversAfterTxPlusDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	l := NewLink(eng, "l", 100_000_000, 50*sim.Millisecond, sink)
	l.Send(&Packet{Size: 1500})
	eng.Run()
	if len(sink.got) != 1 {
		t.Fatal("packet not delivered")
	}
	want := 120*sim.Microsecond + 50*sim.Millisecond
	if sink.at[0] != want {
		t.Fatalf("delivered at %v, want %v", sink.at[0], want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	l := NewLink(eng, "l", 100_000_000, 0, sink)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1500, Seq: int64(i)})
	}
	eng.Run()
	if len(sink.got) != 3 {
		t.Fatalf("delivered %d", len(sink.got))
	}
	for i, at := range sink.at {
		want := sim.Time(i+1) * 120 * sim.Microsecond
		if at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
		if sink.got[i].Seq != int64(i) {
			t.Fatal("reordered")
		}
	}
	if l.MaxQueued != 3 {
		t.Fatalf("MaxQueued = %d, want 3", l.MaxQueued)
	}
}

func TestLinkQueueLimitDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	l := NewLink(eng, "l", 100_000_000, 0, sink)
	l.MaxQueue = 2
	ok1 := l.Send(&Packet{Size: 1500})
	ok2 := l.Send(&Packet{Size: 1500})
	ok3 := l.Send(&Packet{Size: 1500})
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("sends = %v %v %v, want third dropped", ok1, ok2, ok3)
	}
	if l.Dropped != 1 {
		t.Fatalf("Dropped = %d", l.Dropped)
	}
	eng.Run()
	if len(sink.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(sink.got))
	}
}

func TestLinkIdleGapRestartsClock(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	l := NewLink(eng, "l", 100_000_000, 0, sink)
	l.Send(&Packet{Size: 1500})
	eng.RunUntil(sim.Millisecond)
	l.Send(&Packet{Size: 1500})
	eng.Run()
	if sink.at[1] != sim.Millisecond+120*sim.Microsecond {
		t.Fatalf("second delivery at %v", sink.at[1])
	}
}

func TestPathChaining(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	// access (100Mbps, 30us) -> bottleneck (50Mbps, 50ms) -> sink
	bott := NewLink(eng, "wan", 50_000_000, 50*sim.Millisecond, sink)
	access := NewLink(eng, "lan", 100_000_000, 30*sim.Microsecond, bott)
	path := NewPath(access, bott)
	path.Send(&Packet{Size: 1500})
	eng.Run()
	want := 120*sim.Microsecond + 30*sim.Microsecond + 240*sim.Microsecond + 50*sim.Millisecond
	if sink.at[0] != want {
		t.Fatalf("delivered at %v, want %v", sink.at[0], want)
	}
	if path.OneWayDelay(1500) != want {
		t.Fatalf("OneWayDelay = %v, want %v", path.OneWayDelay(1500), want)
	}
	if path.Bottleneck() != 50_000_000 {
		t.Fatalf("Bottleneck = %d", path.Bottleneck())
	}
}

func TestBottleneckPacesFasterUpstream(t *testing.T) {
	// Packets blasted at 100Mbps into a 50Mbps bottleneck must exit
	// spaced at the bottleneck rate (240us for 1500B).
	eng := sim.NewEngine(1)
	sink := &sinkEP{eng: eng}
	bott := NewLink(eng, "wan", 50_000_000, 0, sink)
	access := NewLink(eng, "lan", 100_000_000, 0, bott)
	for i := 0; i < 10; i++ {
		access.Send(&Packet{Size: 1500})
	}
	eng.Run()
	for i := 1; i < len(sink.at); i++ {
		gap := sink.at[i] - sink.at[i-1]
		if gap != 240*sim.Microsecond {
			t.Fatalf("exit gap %d = %v, want 240us", i, gap)
		}
	}
}

func TestWANEmulatorRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	var wan *WANEmulator
	var echoAt, backAt sim.Time
	// b echoes the first packet back to a.
	b := EndpointFunc(func(p *Packet) {
		echoAt = eng.Now()
		wan.BtoA.Send(&Packet{Size: 1500})
	})
	a := EndpointFunc(func(p *Packet) { backAt = eng.Now() })
	wan = NewWANEmulator(eng, 100_000_000, 100_000_000, 100*sim.Millisecond, a, b)
	wan.AtoB.Send(&Packet{Size: 1500})
	eng.Run()
	if echoAt == 0 || backAt == 0 {
		t.Fatal("round trip incomplete")
	}
	// RTT must be ~100ms plus serialization on four links.
	rtt := backAt
	if rtt < 100*sim.Millisecond || rtt > 101*sim.Millisecond {
		t.Fatalf("rtt = %v, want ~100ms", rtt)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" || Kind(99).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestLinkValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, fn := range []func(){
		func() { NewLink(eng, "x", 0, 0, EndpointFunc(func(*Packet) {})) },
		func() { NewLink(eng, "x", 100, 0, nil) },
		func() { NewPath() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad construction did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: FIFO per link — for any sequence of sizes, packets exit in the
// order sent, and total bytes are conserved.
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine(3)
		sink := &sinkEP{eng: eng}
		l := NewLink(eng, "l", 10_000_000, sim.Millisecond, sink)
		var want int64
		for i, s := range sizes {
			size := int(s%3000) + 40
			want += int64(size)
			l.Send(&Packet{Size: size, Seq: int64(i)})
		}
		eng.Run()
		if len(sink.got) != len(sizes) {
			return false
		}
		var got int64
		for i, p := range sink.got {
			if p.Seq != int64(i) {
				return false
			}
			got += int64(p.Size)
		}
		return got == want && got == l.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
