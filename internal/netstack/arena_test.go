package netstack

import (
	"strings"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/sim"
)

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}

func TestArenaExactlyOnceRelease(t *testing.T) {
	a := NewArena()
	pkts := make([]*Packet, 3*arenaChunk)
	for i := range pkts {
		pkts[i] = a.Get()
		pkts[i].Flow = i
	}
	if a.Live() != int64(len(pkts)) {
		t.Fatalf("Live = %d, want %d", a.Live(), len(pkts))
	}
	for _, p := range pkts {
		a.Release(p)
	}
	if a.Live() != 0 {
		t.Fatalf("Live after release = %d, want 0", a.Live())
	}
	// A second release of an already-freed packet is a lifecycle bug and
	// must panic, not silently corrupt the free list.
	mustPanic(t, "released after free", func() { a.Release(pkts[0]) })
}

func TestArenaRetainGivesExtraLife(t *testing.T) {
	a := NewArena()
	p := a.Get()
	h := HandleOf(p)
	p.Retain()
	a.Release(p)
	if !h.Valid() {
		t.Fatal("handle went stale after first release of a retained packet")
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d, want 1 (one reference outstanding)", a.Live())
	}
	a.Release(p)
	if h.Valid() {
		t.Fatal("handle still valid after final release")
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d, want 0", a.Live())
	}
}

func TestArenaStaleHandle(t *testing.T) {
	a := NewArena()
	p := a.Get()
	h := HandleOf(p)
	if !h.Valid() || h.Get() != p {
		t.Fatal("fresh handle should be valid and resolve to its packet")
	}
	a.Release(p)
	if h.Valid() {
		t.Fatal("handle to a freed packet must be invalid")
	}
	mustPanic(t, "stale packet handle", func() { h.Get() })

	// The handle stays stale across the slot's next incarnation: a new Get
	// reusing the same memory carries a bumped generation.
	q := a.Get()
	if q != p {
		t.Fatalf("LIFO free list should hand the slot back (got %p, want %p)", q, p)
	}
	if h.Valid() {
		t.Fatal("old handle must not validate against the recycled incarnation")
	}
	if !HandleOf(q).Valid() {
		t.Fatal("fresh handle to the recycled incarnation must be valid")
	}
	a.Release(q)
}

func TestArenaHandleOfLiteral(t *testing.T) {
	p := &Packet{Flow: 7}
	h := HandleOf(p)
	if !h.Valid() || h.Get() != p {
		t.Fatal("handles to non-pooled literals are always valid")
	}
	var none Handle
	if none.Valid() {
		t.Fatal("zero handle must be invalid")
	}
}

func TestArenaCloneIndependence(t *testing.T) {
	a := NewArena()
	src := a.Get()
	src.Flow, src.Seq, src.Size, src.Kind = 42, 9, 1500, Data
	cp := a.Clone(src)
	if cp == src {
		t.Fatal("Clone returned the source packet")
	}
	if cp.Flow != 42 || cp.Seq != 9 || cp.Size != 1500 || cp.Kind != Data {
		t.Fatalf("clone did not copy public fields: %+v", cp)
	}
	cp.Seq = 100
	if src.Seq != 9 {
		t.Fatal("mutating the clone leaked into the source")
	}
	// Each has its own single reference and releases independently.
	a.Release(cp)
	if !HandleOf(src).Valid() {
		t.Fatal("releasing the clone freed the source")
	}
	a.Release(src)
	if a.Live() != 0 {
		t.Fatalf("Live = %d, want 0", a.Live())
	}
}

func TestArenaNilFallbacks(t *testing.T) {
	var a *Arena
	p := a.Get()
	if p == nil || p.Pooled() {
		t.Fatal("nil-arena Get should return a non-pooled literal")
	}
	a.Release(p)          // no-op on literals
	a.Release(nil)        // nil packet is fine
	NewArena().Release(p) // literals are ignored by real arenas too

	// Clone of a pooled source on a nil arena must clear pool bookkeeping
	// so the copy never aliases free-list state.
	real := NewArena()
	src := real.Get()
	src.Retain()
	cp := a.Clone(src)
	if cp.Pooled() {
		t.Fatal("nil-arena clone must not claim to be pooled")
	}
	if cp.ref != 0 || cp.gen != 0 || cp.next != nil {
		t.Fatalf("nil-arena clone carries pool state: ref=%d gen=%d next=%p",
			cp.ref, cp.gen, cp.next)
	}
	real.Release(src)
	real.Release(src)
}

// TestPropertyArenaNoAliasing drives randomized Get/Retain/Release/Clone
// streams (the shape a fault plan produces: dup clones, drop releases,
// retained multi-hop packets) and checks the pool invariants after every
// step: no two live packets share a pointer, handles go stale exactly when
// the last reference drops, and Live() matches the tracked live set.
func TestPropertyArenaNoAliasing(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99, 12345} {
		plan := faults.New(seed, faults.Spec{Drop: 0.3, Dup: 0.2})
		rng := plan.Stream("arena-prop")
		a := NewArena()

		type liveRef struct {
			h    Handle
			refs int
		}
		live := map[*Packet]*liveRef{}
		acquire := func(p *Packet) {
			if _, dup := live[p]; dup {
				t.Fatalf("seed %d: arena handed out a pointer that is still live", seed)
			}
			live[p] = &liveRef{h: HandleOf(p), refs: 1}
		}
		var order []*Packet // insertion order, for uniform random picks

		for step := 0; step < 5000; step++ {
			switch op := rng.Intn(10); {
			case op < 4 || len(order) == 0: // Get
				p := a.Get()
				acquire(p)
				order = append(order, p)
			case op < 6: // Clone a random live packet
				src := order[rng.Intn(len(order))]
				cp := a.Clone(src)
				acquire(cp)
				order = append(order, cp)
			case op < 7: // Retain a random live packet
				p := order[rng.Intn(len(order))]
				p.Retain()
				live[p].refs++
			default: // Release one reference
				i := rng.Intn(len(order))
				p := order[i]
				lr := live[p]
				a.Release(p)
				lr.refs--
				if lr.refs > 0 {
					if !lr.h.Valid() {
						t.Fatalf("seed %d: handle stale with %d refs left", seed, lr.refs)
					}
					break
				}
				if lr.h.Valid() {
					t.Fatalf("seed %d: handle survived the final release", seed)
				}
				delete(live, p)
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
			}
			if int(a.Live()) != len(live) {
				t.Fatalf("seed %d step %d: Live = %d, tracked %d", seed, step, a.Live(), len(live))
			}
		}
		for _, p := range order {
			for live[p].refs > 0 {
				a.Release(p)
				live[p].refs--
			}
		}
		if a.Live() != 0 {
			t.Fatalf("seed %d: Live = %d after draining", seed, a.Live())
		}
	}
}

// releasingSink releases each arriving packet back into the arena after
// recording it — the endpoint contract arena-backed receivers follow.
type releasingSink struct {
	a     *Arena
	count int
}

func (s *releasingSink) Deliver(p *Packet) {
	if !HandleOf(p).Valid() {
		panic("delivered packet is not live")
	}
	s.count++
	s.a.Release(p)
}

// TestLinkOwnershipDupIsDistinctPacket pins the dup-fault ownership rule:
// the duplicate is a distinct arena packet, never a second delivery of the
// same pointer. Under the old aliasing behavior both deliveries would carry
// one *Packet, and the receiver's second Release would blow the refcount.
func TestLinkOwnershipDupIsDistinctPacket(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewArena()
	var got []*Packet
	l := NewLink(eng, "dup", 100_000_000, 10*sim.Microsecond, EndpointFunc(func(p *Packet) {
		got = append(got, p)
	}))
	l.SetArena(a)
	l.Faults = faults.New(5, faults.Spec{Dup: 1}).Link("dup")

	p := a.Get()
	p.Size, p.Flow = 1500, 3
	l.Send(p)
	eng.Run()

	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want original + duplicate", len(got))
	}
	if got[0] == got[1] {
		t.Fatal("duplicate aliases the original packet")
	}
	for i, q := range got {
		if !HandleOf(q).Valid() {
			t.Fatalf("delivery %d is not a live packet", i)
		}
		if q.Flow != 3 || q.Size != 1500 {
			t.Fatalf("delivery %d lost its fields: %+v", i, q)
		}
		a.Release(q)
	}
	if l.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", l.Duplicated)
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d, want 0", a.Live())
	}
}

// TestLinkOwnershipReleaseOnDrop pins the drop-side ownership rule: both
// queue-limit tail drops and injected losses release the consumed packet
// back to the arena. Under the old behavior dropped packets leaked (or
// worse, stayed referenced by the caller), which Live() exposes.
func TestLinkOwnershipReleaseOnDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewArena()
	sink := &releasingSink{a: a}

	// Queue-limit drop.
	l := NewLink(eng, "tail", 100_000_000, 0, sink)
	l.SetArena(a)
	l.MaxQueue = 1
	first := a.Get()
	first.Size = 1500
	dropped := a.Get()
	dropped.Size = 1500
	h := HandleOf(dropped)
	l.Send(first)
	if l.Send(dropped) {
		t.Fatal("second send should hit the queue limit")
	}
	if h.Valid() {
		t.Fatal("tail-dropped packet was not released")
	}

	// Injected loss.
	lossy := NewLink(eng, "lossy", 100_000_000, 0, sink)
	lossy.SetArena(a)
	lossy.Faults = faults.New(9, faults.Spec{Drop: 1}).Link("lossy")
	lost := a.Get()
	lost.Size = 1500
	hl := HandleOf(lost)
	if !lossy.Send(lost) {
		t.Fatal("an injected loss still reports the packet as sent")
	}
	if hl.Valid() {
		t.Fatal("lost packet was not released")
	}
	eng.Run()

	if sink.count != 1 {
		t.Fatalf("delivered %d, want only the first packet", sink.count)
	}
	if l.Dropped != 1 || lossy.Lost != 1 {
		t.Fatalf("Dropped = %d, Lost = %d", l.Dropped, lossy.Lost)
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d, want 0 after drain", a.Live())
	}
}

// TestLinkOwnershipFaultStream soaks the full fault matrix — loss, dup,
// reorder, tail drop — over many arena packets and checks the books
// balance: every delivery is a live packet, deliveries = sent - lost +
// duplicated, and the arena drains to zero afterward.
func TestLinkOwnershipFaultStream(t *testing.T) {
	for _, seed := range []uint64{2, 11, 404} {
		eng := sim.NewEngine(seed)
		a := NewArena()
		sink := &releasingSink{a: a}
		l := NewLink(eng, "soak", 100_000_000, 20*sim.Microsecond, sink)
		l.SetArena(a)
		l.MaxQueue = 8
		l.Faults = faults.New(seed, faults.Spec{
			Drop: 0.2, Dup: 0.3, Reorder: 0.2, ReorderMax: 200 * sim.Microsecond,
		}).Link("soak")

		const n = 500
		for i := 0; i < n; i++ {
			p := a.Get()
			p.Size, p.Seq = 1500, int64(i)
			l.Send(p)
			// Drain in bursts so the queue limit engages sometimes.
			if i%16 == 15 {
				eng.Run()
			}
		}
		eng.Run()

		if l.Lost == 0 || l.Duplicated == 0 || l.Reordered == 0 || l.Dropped == 0 {
			t.Fatalf("seed %d: fault matrix not exercised: lost=%d dup=%d reord=%d dropped=%d",
				seed, l.Lost, l.Duplicated, l.Reordered, l.Dropped)
		}
		want := int(l.Sent - l.Lost + l.Duplicated)
		if sink.count != want {
			t.Fatalf("seed %d: delivered %d, want sent-lost+dup = %d", seed, sink.count, want)
		}
		if a.Live() != 0 {
			t.Fatalf("seed %d: Live = %d after drain", seed, a.Live())
		}
	}
}
