// Package netstack models the network between hosts: packets, links with
// bandwidth and propagation delay, FIFO queues, and a store-and-forward
// router used as the paper's laboratory "WAN emulator" — an intermediate
// machine that delays each forwarded packet so as to emulate a WAN with a
// given delay and bottleneck bandwidth (Section 5.8).
//
// Everything is event-driven on a sim.Engine; there are no real sockets.
package netstack

import (
	"softtimers/internal/faults"
	"softtimers/internal/flowtrace"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// Kind classifies packets for the protocol layers above.
type Kind int

const (
	// Data carries payload segments.
	Data Kind = iota
	// Ack is a pure acknowledgment.
	Ack
	// Syn, SynAck and Fin mark connection control packets.
	Syn
	SynAck
	Fin
	// Request is an application request (e.g. an HTTP GET).
	Request
)

var kindNames = [...]string{"data", "ack", "syn", "synack", "fin", "request"}

// String names the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Addr is a host address on the simulated network. Topologies assign
// addresses in host-creation order starting at 1; the zero value means
// "unaddressed" and is what single-host rigs (which never consult
// addresses) leave in place. A switch receiving a packet for an unknown
// address — including 0 — counts a miss and drops it.
type Addr int

// Packet is a network packet. Sequence numbers are in whole segments, the
// unit the paper's tables use (packets of 1448 payload bytes).
type Packet struct {
	Flow     int  // connection identifier
	Src, Dst Addr // host addresses, for switched (multi-node) topologies
	Kind     Kind
	Seq      int64 // segment index for Data; meaningless otherwise
	AckSeq   int64 // cumulative segments acknowledged, for Ack
	Size     int   // wire size in bytes (payload + headers)
	Payload  int   // payload bytes
	SentAt   sim.Time
	Info     any // protocol-private data

	// Mark flags the last packet of a paced response train (protocol
	// bookkeeping that used to ride in Info as an interface box; a value
	// field keeps the hot path allocation-free).
	Mark bool

	// Trace is the packet's flowtrace span, nil unless the flow was
	// sampled. The span rides the packet everywhere — across shards with
	// it through the Courier (the round-barrier conduit flush is the
	// happens-before edge) — and every hop site is a nil-receiver method
	// call, so untraced packets pay one pointer test per hop. The owning
	// arena finishes the span when the refcount drops to zero; dup-fault
	// clones are untraced (Clone clears the field).
	Trace *flowtrace.Span

	// Arena bookkeeping (see arena.go). Zero for literal packets.
	pooled bool
	ref    int32
	gen    uint32
	next   *Packet
}

// Endpoint receives packets: a host's input path or the next hop.
type Endpoint interface {
	Deliver(p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet)

// Deliver implements Endpoint.
func (f EndpointFunc) Deliver(p *Packet) { f(p) }

// Courier ships packet deliveries whose receiving endpoint lives on
// another simulation shard. Ship examines p at transmit time; if its
// delivery belongs elsewhere it arranges execution there at time at (the
// full arrival instant, serialization plus propagation — so the link's
// propagation delay is the channel's lookahead), under the same
// (conduit, seq) arrival-band key the link would have used locally, and
// returns true. A false return leaves delivery on the local engine.
// Sharded topologies install one per cross-capable link; single-engine
// rigs leave it nil and pay one pointer test.
type Courier interface {
	Ship(p *Packet, at sim.Time, conduit int32, seq uint64) bool
}

// Link is a one-way link with finite bandwidth and fixed propagation delay,
// feeding an Endpoint (the receiving host or the next link in a path). A
// packet that arrives while earlier packets are still serializing queues
// behind them (store-and-forward); an optional queue limit drops the tail.
type Link struct {
	Name string

	// Courier, when set, gets first claim on each delivery at transmit
	// time (sharded topologies route cross-shard arrivals through it).
	// It is only consulted on links with an ArrivalConduit.
	Courier Courier

	// ArrivalConduit, when non-negative, routes this link's deliveries
	// through the engine's arrival band: each arrival is keyed (time,
	// conduit, seq) and fires after every ordinarily scheduled event at
	// the same instant, wherever the receiver lives. Topologies assign
	// conduit ids in assembly order, so the key — and with it the order of
	// same-instant arrivals — is identical at any shard count, which is
	// what makes sharded runs replay the single-engine event history
	// exactly. NewLink sets -1: plain engine-event delivery.
	ArrivalConduit int32

	// TraceLoc is this link's flowtrace location id (0 = unregistered);
	// topologies assign ids in assembly order when flow tracing is on.
	TraceLoc int32

	eng   *sim.Engine
	bps   int64
	delay sim.Time
	dst   Endpoint

	// MaxQueue bounds the number of packets queued for serialization
	// (0 = unbounded, the default — the paper's WAN runs are loss-free).
	MaxQueue int

	// Faults, when set, is this link's fault-injection channel: packets
	// may be dropped after serialization, duplicated, or held back by a
	// bounded extra delay so later packets overtake them. Nil injects
	// nothing (one pointer test on the send path).
	Faults *faults.LinkPlan

	busyUntil  sim.Time
	queued     int
	arrivalSeq uint64 // per-conduit send counter, drawn at transmit time

	// arena, when set, is the pool consumed packets return to (drops) and
	// dup clones come from. Nil keeps literal-packet behavior.
	arena *Arena

	// Pooled delivery records and precomputed labels keep the per-packet
	// send path allocation-free: each in-flight delivery borrows a record
	// whose closure was bound once, and recycles it when it fires.
	freeDel  *delivery
	relFn    func() // bound once: the sender-side serialization-slot release
	label    string // "link:<name>"
	labLost  string
	labDup   string

	// Counters.
	Sent    int64
	Dropped int64
	Bytes   int64
	// Lost, Duplicated and Reordered count injected faults (distinct from
	// Dropped, which counts queue-limit tail drops).
	Lost       int64
	Duplicated int64
	Reordered  int64
	// MaxQueued tracks the high-water mark of the serialization queue.
	MaxQueued int
}

// NewLink creates a link of bps bits/second and the given one-way
// propagation delay, delivering into dst.
func NewLink(eng *sim.Engine, name string, bps int64, delay sim.Time, dst Endpoint) *Link {
	if bps <= 0 {
		panic("netstack: link bandwidth must be positive")
	}
	if dst == nil {
		panic("netstack: link needs a destination")
	}
	l := &Link{Name: name, eng: eng, bps: bps, delay: delay, dst: dst, ArrivalConduit: -1}
	l.label = "link:" + name
	l.labLost = l.label + ":lost"
	l.labDup = l.label + ":dup"
	l.relFn = func() { l.queued-- }
	return l
}

// SetArena attaches a packet arena: drops release into it and dup faults
// clone from it. Topologies wire the link's engine-local arena here.
func (l *Link) SetArena(a *Arena) { l.arena = a }

// delivery is one in-flight packet arrival: a pooled record whose run
// closure was bound at creation, so scheduling an arrival allocates
// nothing. A record is busy from scheduling until its event fires, then
// recycles itself before delivering (safe: delivery can trigger nested
// sends on other links, never a synchronous reuse of this record's
// pending event).
type delivery struct {
	l       *Link
	p       *Packet
	release bool
	next    *delivery
	fn      func()
}

func (l *Link) getDelivery(p *Packet, release bool) *delivery {
	d := l.freeDel
	if d == nil {
		d = &delivery{l: l}
		d.fn = d.run
	} else {
		l.freeDel = d.next
	}
	d.p = p
	d.release = release
	return d
}

func (d *delivery) run() {
	l, p, rel := d.l, d.p, d.release
	d.p = nil
	d.next = l.freeDel
	l.freeDel = d
	if rel {
		l.queued--
	}
	p.Trace.Hop(flowtrace.HopLinkRx, l.TraceLoc, l.eng.Now())
	l.dst.Deliver(p)
}

// RegisterMetrics exposes the link's counters on a telemetry registry
// under link.<Name>. — func instruments over the existing fields, so the
// packet path is unchanged. Call once per link after construction.
func (l *Link) RegisterMetrics(r *metrics.Registry) {
	prefix := "link." + l.Name + "."
	r.CounterFunc(prefix+"sent", func() int64 { return l.Sent })
	r.CounterFunc(prefix+"dropped", func() int64 { return l.Dropped })
	r.CounterFunc(prefix+"bytes", func() int64 { return l.Bytes })
	r.CounterFunc(prefix+"lost", func() int64 { return l.Lost })
	r.CounterFunc(prefix+"duplicated", func() int64 { return l.Duplicated })
	r.CounterFunc(prefix+"reordered", func() int64 { return l.Reordered })
	r.GaugeFunc(prefix+"queue_hwm", func() int64 { return int64(l.MaxQueued) })
}

// Bandwidth returns the link rate in bits per second.
func (l *Link) Bandwidth() int64 { return l.bps }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// TxTime returns the serialization time of a packet of n bytes.
func (l *Link) TxTime(n int) sim.Time {
	return sim.Time(int64(n) * 8 * int64(sim.Second) / l.bps)
}

// QueueLen returns the number of packets currently queued or serializing.
func (l *Link) QueueLen() int { return l.queued }

// Send enqueues p for transmission, consuming it: ownership passes to
// the link, which releases the packet on any drop and otherwise hands it
// to the destination endpoint at arrival time. It returns false if the
// queue limit dropped the packet.
func (l *Link) Send(p *Packet) bool {
	if l.MaxQueue > 0 && l.queued >= l.MaxQueue {
		l.Dropped++
		l.arena.Release(p)
		return false
	}
	now := l.eng.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	done := start + l.TxTime(p.Size)
	l.busyUntil = done
	l.queued++
	if l.queued > l.MaxQueued {
		l.MaxQueued = l.queued
	}
	l.Sent++
	l.Bytes += int64(p.Size)
	p.Trace.Hop(flowtrace.HopLinkTx, l.TraceLoc, start)
	if l.Faults != nil {
		// Draw order is fixed (drop, then duplicate, then reorder) so a
		// link's fault sequence depends only on its own packet order.
		if l.Faults.Drop() {
			// The packet consumed wire time but never arrives; the slot
			// still frees when serialization would have finished.
			l.Lost++
			l.eng.AtLabeled(done, l.labLost, l.relFn)
			l.arena.Release(p)
			return true
		}
		dup := l.Faults.Duplicate()
		extra := l.Faults.ReorderDelay()
		if extra > 0 {
			l.Reordered++
		}
		l.deliver(p, done+l.delay+extra, l.label, true)
		if dup {
			// The copy takes the undelayed path, arriving with (or ahead
			// of) the original. It is a distinct packet — cloned through
			// the arena, never a struct copy that would alias pool state —
			// and the receiver releases it like any other arrival.
			l.Duplicated++
			l.deliver(l.arena.Clone(p), done+l.delay, l.labDup, false)
		}
		return true
	}
	l.deliver(p, done+l.delay, l.label, true)
	return true
}

// deliver schedules p's arrival at time at; release frees the packet's
// serialization slot then. On a conduit-assigned link the arrival itself
// goes into the engine's arrival band under the (conduit, seq) key — or
// across shards via the courier, which injects it into the destination
// engine under the same key — and the slot release stays an ordinary
// sender-side event; either way the delivery is one arrival event on the
// receiver's engine plus at most one release event on the sender's, so
// event totals and same-instant ordering match the single-engine path
// exactly. Conduit-less links keep the legacy one-event path.
func (l *Link) deliver(p *Packet, at sim.Time, label string, release bool) {
	if l.ArrivalConduit >= 0 {
		// The seq draw happens at transmit time in link send order, which
		// is sender-local and therefore identical at any shard count.
		l.arrivalSeq++
		seq := l.arrivalSeq
		if l.Courier == nil || !l.Courier.Ship(p, at, l.ArrivalConduit, seq) {
			d := l.getDelivery(p, false)
			l.eng.AtArrival(at, l.ArrivalConduit, seq, label, d.fn)
		}
		if release {
			l.eng.AtLabeled(at, label, l.relFn)
		}
		return
	}
	d := l.getDelivery(p, release)
	l.eng.AtLabeled(at, label, d.fn)
}

// Deliver implements Endpoint so links can be chained into paths: a packet
// delivered to a link is forwarded (store-and-forward) onto it.
func (l *Link) Deliver(p *Packet) { l.Send(p) }

// Path is a convenience for a chain of links; sending on the path sends on
// the first link, which forwards through the rest.
type Path struct {
	links []*Link
}

// NewPath chains links head-to-tail: each link's destination must already
// be the next link (or the final endpoint).
func NewPath(links ...*Link) *Path {
	if len(links) == 0 {
		panic("netstack: empty path")
	}
	return &Path{links: links}
}

// RegisterMetrics registers every link on the path with r.
func (p *Path) RegisterMetrics(r *metrics.Registry) {
	for _, l := range p.links {
		l.RegisterMetrics(r)
	}
}

// InstallFaults attaches a fault channel — named after each link — to every
// link on the path. A nil plan installs nothing.
func (p *Path) InstallFaults(plan *faults.Plan) {
	if plan == nil {
		return
	}
	for _, l := range p.links {
		l.Faults = plan.Link(l.Name)
	}
}

// Hops returns the number of links on the path.
func (p *Path) Hops() int { return len(p.links) }

// Hop returns the i-th link (0 = first hop). Faulting a single hop keeps
// the end-to-end loss rate equal to the per-link rate instead of
// compounding across hops.
func (p *Path) Hop(i int) *Link { return p.links[i] }

// Send transmits on the path's first link.
func (p *Path) Send(pkt *Packet) bool { return p.links[0].Send(pkt) }

// Deliver implements Endpoint.
func (p *Path) Deliver(pkt *Packet) { p.Send(pkt) }

// OneWayDelay returns the sum of propagation delays plus one serialization
// of n bytes per link — the no-queueing latency of the path.
func (p *Path) OneWayDelay(n int) sim.Time {
	var d sim.Time
	for _, l := range p.links {
		d += l.Delay() + l.TxTime(n)
	}
	return d
}

// Bottleneck returns the lowest link bandwidth on the path.
func (p *Path) Bottleneck() int64 {
	min := p.links[0].Bandwidth()
	for _, l := range p.links[1:] {
		if b := l.Bandwidth(); b < min {
			min = b
		}
	}
	return min
}

// WANEmulator builds the paper's laboratory WAN: a duplex path between two
// endpoints through an emulated bottleneck router. Each direction is a
// 100 Mbps access link into the router followed by a bottleneck link of the
// configured bandwidth carrying half the round-trip delay.
type WANEmulator struct {
	// AtoB and BtoA are the directional paths.
	AtoB, BtoA *Path
}

// NewWANEmulator wires endpoints a and b through an emulated WAN with the
// given bottleneck bandwidth and total round-trip propagation delay.
// accessBps is the LAN speed of the end hosts' links into the emulator
// (the paper used 100 Mbps Ethernet).
func NewWANEmulator(eng *sim.Engine, accessBps, bottleneckBps int64, rtt sim.Time, a, b Endpoint) *WANEmulator {
	half := rtt / 2
	mkDir := func(name string, dst Endpoint) *Path {
		bottleneck := NewLink(eng, name+"-wan", bottleneckBps, half, dst)
		access := NewLink(eng, name+"-lan", accessBps, 30*sim.Microsecond, bottleneck)
		return NewPath(access, bottleneck)
	}
	return &WANEmulator{
		AtoB: mkDir("a2b", b),
		BtoA: mkDir("b2a", a),
	}
}

// InstallFaults attaches fault channels to every link in both directions.
func (w *WANEmulator) InstallFaults(plan *faults.Plan) {
	w.AtoB.InstallFaults(plan)
	w.BtoA.InstallFaults(plan)
}
