package nic

import (
	"testing"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	k    *kernel.Kernel
	f    *core.Facility
	n    *NIC
	out  []*netstack.Packet
	rxed []*netstack.Packet
	rxAt []sim.Time
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(11)}
	r.k = kernel.New(r.eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
	r.f = core.New(r.k, core.Options{})
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	r.n = New(r.k, r.f, cfg, netstack.EndpointFunc(func(p *netstack.Packet) {
		r.out = append(r.out, p)
	}))
	r.n.RxHandler = func(p *netstack.Packet) {
		r.rxed = append(r.rxed, p)
		r.rxAt = append(r.rxAt, r.eng.Now())
	}
	return r
}

func (r *rig) start() {
	r.k.Start()
	r.n.Start()
}

func everyBatchCosts() Costs {
	c := DefaultCosts()
	c.SoftirqTailTriggerEvery = 1 // trigger on every batch for exact counting
	return c
}

func TestInterruptModeDeliversPacket(t *testing.T) {
	r := newRig(t, Config{Mode: Interrupt, Costs: everyBatchCosts()})
	r.start()
	r.eng.At(100*sim.Microsecond, func() {
		r.n.Deliver(&netstack.Packet{Kind: netstack.Data, Seq: 1})
	})
	r.eng.RunFor(5 * sim.Millisecond)
	if len(r.rxed) != 1 {
		t.Fatalf("received %d packets", len(r.rxed))
	}
	// Interrupt + softirq path: delivery within a few tens of µs.
	latency := r.rxAt[0] - 100*sim.Microsecond
	if latency > 30*sim.Microsecond {
		t.Fatalf("rx latency = %v, want small in interrupt mode", latency)
	}
	if r.n.RxInterrupts != 1 {
		t.Fatalf("RxInterrupts = %d", r.n.RxInterrupts)
	}
	if got := r.k.Meter().BySource[kernel.SrcIPIntr]; got != 1 {
		t.Fatalf("ip-intr triggers = %d", got)
	}
	if got := r.k.Meter().BySource[kernel.SrcTCPIPOther]; got != 1 {
		t.Fatalf("tcpip-other triggers = %d (softirq tail)", got)
	}
}

func TestInterruptModeBatchesBackToBackArrivals(t *testing.T) {
	r := newRig(t, Config{Mode: Interrupt, Costs: everyBatchCosts()})
	r.start()
	// 10 packets arriving 1us apart: far faster than interrupt+protocol
	// processing, so interrupts and softirq batches must both be < 10.
	for i := 0; i < 10; i++ {
		seq := int64(i)
		r.eng.At(100*sim.Microsecond+sim.Time(i)*sim.Microsecond, func() {
			r.n.Deliver(&netstack.Packet{Kind: netstack.Data, Seq: seq})
		})
	}
	r.eng.RunFor(10 * sim.Millisecond)
	if len(r.rxed) != 10 {
		t.Fatalf("received %d of 10", len(r.rxed))
	}
	if r.n.RxInterrupts >= 10 {
		t.Fatalf("RxInterrupts = %d, want batching under back-to-back load", r.n.RxInterrupts)
	}
	batches := r.k.Meter().BySource[kernel.SrcTCPIPOther]
	if batches > int64(r.n.RxInterrupts) {
		t.Fatalf("softirq batches (%d) exceed interrupts (%d)", batches, r.n.RxInterrupts)
	}
	for i, p := range r.rxed {
		if p.Seq != int64(i) {
			t.Fatal("receive order broken")
		}
	}
}

func TestSoftPollDeliversViaPollEvents(t *testing.T) {
	r := newRig(t, Config{Mode: SoftPoll, IdleInterrupts: false})
	r.start()
	r.eng.At(100*sim.Microsecond, func() {
		r.n.Deliver(&netstack.Packet{Kind: netstack.Data})
	})
	r.eng.RunFor(10 * sim.Millisecond)
	if len(r.rxed) != 1 {
		t.Fatalf("received %d packets", len(r.rxed))
	}
	if r.n.RxInterrupts != 0 {
		t.Fatalf("RxInterrupts = %d in polling mode", r.n.RxInterrupts)
	}
	if r.n.Polls == 0 {
		t.Fatal("no polls happened")
	}
	if got := r.k.Meter().BySource[kernel.SrcIPIntr]; got != 0 {
		t.Fatalf("ip-intr triggers = %d in polling mode", got)
	}
}

func TestSoftPollIdleInterruptsPreserveLatency(t *testing.T) {
	// With idle re-enable on (the default), a packet arriving to an idle
	// CPU is delivered by interrupt immediately instead of waiting for
	// the next poll.
	r := newRig(t, Config{Mode: SoftPoll, IdleInterrupts: true, MaxPoll: sim.Millisecond})
	r.start()
	// Let the adaptive interval grow (idle system finds nothing), then
	// deliver at an instant where the CPU is actually in its idle loop
	// (interrupt-enabled window).
	var at sim.Time
	var tryDeliver func()
	tryDeliver = func() {
		if r.k.Idle() {
			at = r.eng.Now()
			r.n.Deliver(&netstack.Packet{Kind: netstack.Data})
			return
		}
		r.eng.After(sim.Microsecond, tryDeliver)
	}
	r.eng.After(50*sim.Millisecond, tryDeliver)
	r.eng.RunFor(60 * sim.Millisecond)
	if len(r.rxed) != 1 {
		t.Fatalf("received %d packets", len(r.rxed))
	}
	latency := r.rxAt[0] - at
	if latency > 30*sim.Microsecond {
		t.Fatalf("idle rx latency = %v, want interrupt-fast", latency)
	}
	if r.n.RxInterrupts == 0 {
		t.Fatal("idle arrival did not use an interrupt")
	}
}

func TestPollIntervalAdaptsTowardQuota(t *testing.T) {
	r := newRig(t, Config{Mode: SoftPoll, IdleInterrupts: false, AggregationQuota: 2})
	r.start()
	// Steady arrivals every 50us: to find 2 per poll the interval must
	// settle near 100us.
	var arrive func()
	arrive = func() {
		r.n.Deliver(&netstack.Packet{Kind: netstack.Data})
		r.eng.After(50*sim.Microsecond, arrive)
	}
	r.eng.After(50*sim.Microsecond, arrive)
	r.eng.RunFor(2 * sim.Second)
	ivl := r.n.PollInterval()
	if ivl < 60*sim.Microsecond || ivl > 160*sim.Microsecond {
		t.Fatalf("poll interval = %v, want ~100us for quota 2 at 50us arrivals", ivl)
	}
	found := float64(r.n.PolledPackets) / float64(r.n.Polls)
	if found < 1.2 || found > 3.0 {
		t.Fatalf("avg packets/poll = %.2f, want ~2", found)
	}
}

func TestTxStepsTransmitWithIPOutputTriggers(t *testing.T) {
	r := newRig(t, Config{Mode: Interrupt, TxComplInterrupts: true})
	r.start()
	pkts := []*netstack.Packet{
		{Kind: netstack.Data, Seq: 0}, {Kind: netstack.Data, Seq: 1}, {Kind: netstack.Data, Seq: 2},
	}
	r.k.Spawn("sender", func(p *kernel.Proc) {
		p.Syscall("writev", 10*sim.Microsecond, func() {
			p.Chain(r.n.TxSteps(pkts...), func() { p.Exit() })
		})
	})
	r.eng.RunFor(5 * sim.Millisecond)
	if len(r.out) != 3 {
		t.Fatalf("transmitted %d of 3", len(r.out))
	}
	if got := r.k.Meter().BySource[kernel.SrcIPOutput]; got != 3 {
		t.Fatalf("ip-output triggers = %d, want 3", got)
	}
	if r.n.TxComplInterrupts == 0 {
		t.Fatal("no tx-completion interrupts in conventional mode")
	}
}

func TestTxFromKernel(t *testing.T) {
	r := newRig(t, Config{Mode: Interrupt, TxComplInterrupts: false})
	r.start()
	r.eng.At(sim.Millisecond, func() {
		r.n.TxFromKernel(&netstack.Packet{Kind: netstack.Ack})
	})
	r.eng.RunFor(5 * sim.Millisecond)
	if len(r.out) != 1 {
		t.Fatalf("transmitted %d", len(r.out))
	}
	if r.n.TxComplInterrupts != 0 {
		t.Fatal("tx-completion interrupts raised while disabled")
	}
	if got := r.k.Meter().BySource[kernel.SrcIPOutput]; got != 1 {
		t.Fatalf("ip-output triggers = %d", got)
	}
}

func TestTransmitNowChargesNoChain(t *testing.T) {
	r := newRig(t, Config{Mode: SoftPoll, IdleInterrupts: false})
	r.start()
	cost := r.n.TransmitNow(&netstack.Packet{Kind: netstack.Data})
	if cost != DefaultCosts().TxWork {
		t.Fatalf("cost = %v", cost)
	}
	if len(r.out) != 1 {
		t.Fatal("packet not sent")
	}
}

func TestSoftPollRequiresFacility(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(k, nil, Config{Mode: SoftPoll}, netstack.EndpointFunc(func(*netstack.Packet) {}))
}

func TestDefaultsApplied(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{})
	f := core.New(k, core.Options{})
	n := New(k, f, Config{Mode: SoftPoll, Costs: DefaultCosts()}, netstack.EndpointFunc(func(*netstack.Packet) {}))
	if n.cfg.AggregationQuota != 1 || n.cfg.MinPoll != 10*sim.Microsecond || n.cfg.MaxPoll != sim.Millisecond {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
}

func TestNICAccessors(t *testing.T) {
	r := newRig(t, Config{Mode: SoftPoll})
	if r.n.Mode() != SoftPoll {
		t.Error("Mode() mismatch")
	}
	if r.n.Cfg().Mode != SoftPoll {
		t.Error("Cfg() mismatch")
	}
	r.n.TransmitRaw(&netstack.Packet{Kind: netstack.Data})
	if len(r.out) != 1 || r.n.TxPackets != 1 {
		t.Error("TransmitRaw did not send")
	}
}

func TestTxFromKernelEmptyIsNoop(t *testing.T) {
	r := newRig(t, Config{Mode: Interrupt})
	r.start()
	r.n.TxFromKernel()
	r.eng.RunFor(sim.Millisecond)
	if len(r.out) != 0 {
		t.Error("empty TxFromKernel sent packets")
	}
}
