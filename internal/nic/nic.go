// Package nic models a network interface on the simulated server: receive
// and transmit paths with per-packet costs, and the two completion-
// notification disciplines the paper compares in Section 5.9 —
// conventional per-packet interrupts versus soft-timer network polling
// with an adaptive poll interval targeting an aggregation quota.
//
// Interrupt mode: each arriving packet raises a hardware interrupt (ip-intr
// trigger at handler end) that enqueues it on the protocol input queue and
// posts a software interrupt; the softirq drains the whole queue in one
// pass (so protocol processing batches under load, which is why the
// paper's Table 2 shows far more ip-intr than tcpip-other trigger states).
// Transmit completions also interrupt.
//
// Polling mode: no interrupts. A self-rescheduling soft-timer event polls
// the interface, processing every waiting receive and transmit completion
// in one handler invocation; the poll interval adapts to find
// AggregationQuota packets per poll on average. When the CPU idles,
// interrupts are re-enabled so packet processing is never delayed
// unnecessarily (Section 5.9's first practicality argument).
package nic

import (
	"softtimers/internal/core"
	"softtimers/internal/faults"
	"softtimers/internal/flowtrace"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// Mode selects the completion-notification discipline.
type Mode int

const (
	// Interrupt is conventional per-packet interrupt-driven processing.
	Interrupt Mode = iota
	// SoftPoll is soft-timer based network polling.
	SoftPoll
)

// Costs are the per-operation CPU costs of the network path (baseline-CPU
// work units, scaled by the kernel's profile).
type Costs struct {
	// RxIntrWork is the interrupt handler's work per receive interrupt
	// (ring drain, buffer swap).
	RxIntrWork sim.Time
	// RxProtoWork is the protocol (IP+TCP input) work per received
	// packet, spent in the softirq or poll handler.
	RxProtoWork sim.Time
	// RxBatchDiscount scales RxProtoWork for the second and subsequent
	// packets processed in one batch — the locality benefit of
	// aggregation (0.2 means 20% cheaper).
	RxBatchDiscount float64
	// TxWork is the IP output work per transmitted packet.
	TxWork sim.Time
	// TxComplWork is the transmit-completion work per packet (buffer
	// reclaim), done in an interrupt or a poll.
	TxComplWork sim.Time
	// PollWork is the fixed cost of one poll (status register reads).
	PollWork sim.Time
	// SoftirqTail is the bookkeeping work ending a protocol softirq
	// batch.
	SoftirqTail sim.Time
	// SoftirqTailTriggerEvery makes every n-th softirq batch end in a
	// tcpip-other trigger state (the paper added trigger states to
	// *some* network-subsystem loops, e.g. TCP timer processing — not
	// to every protocol-input pass, which is why Table 2's tcpip-other
	// share is a third of ip-intr's). 0 disables; 1 triggers every
	// batch.
	SoftirqTailTriggerEvery int
}

// DefaultCosts returns costs calibrated for the paper's P-II 300 testbed.
func DefaultCosts() Costs {
	return Costs{
		RxIntrWork:      sim.Micros(2.0),
		RxProtoWork:     sim.Micros(7.0),
		RxBatchDiscount: 0.55,
		TxWork:          sim.Micros(8.0),
		TxComplWork:     sim.Micros(2.2),
		PollWork:        sim.Micros(1.5),
		SoftirqTail:     sim.Micros(1.0),

		SoftirqTailTriggerEvery: 3,
	}
}

// Config configures a NIC.
type Config struct {
	Name  string
	Mode  Mode
	Costs Costs
	// AggregationQuota is the target packets found per poll (SoftPoll).
	// Default 1.
	AggregationQuota float64
	// MinPoll and MaxPoll clamp the adaptive poll interval.
	// Defaults 10 µs and 1 ms.
	MinPoll, MaxPoll sim.Time
	// TxComplInterrupts enables transmit-completion interrupts in
	// Interrupt mode (conventional drivers). Default true.
	TxComplInterrupts bool
	// IdleInterrupts re-enables interrupts while the CPU is idle in
	// SoftPoll mode. Default true (the paper's design).
	IdleInterrupts bool
	// Faults, when set, is the receive ring's fault channel: arriving
	// packets may be dropped before the driver sees them (ring overrun,
	// bad checksum). Nil injects nothing.
	Faults *faults.LinkPlan
}

// NIC is one simulated network interface attached to the server kernel.
type NIC struct {
	k    *kernel.Kernel
	f    *core.Facility // required for SoftPoll
	cfg  Config
	out  netstack.Endpoint
	wire *netstack.Link // optional: models the attached wire's tx serialization

	// RxHandler receives each inbound packet, in kernel protocol context.
	// The packet is a borrow: it is released back to the arena when the
	// handler returns. A handler that needs it afterwards (e.g. a router
	// forwarding it out another interface) must Retain it first.
	RxHandler func(p *netstack.Packet)

	// arena, when set, is where received packets are released after their
	// handler runs (and on ring-fault drops).
	arena *netstack.Arena

	// TraceLoc is this interface's flowtrace location id (0 =
	// unregistered); topologies assign ids in assembly order when flow
	// tracing is on.
	TraceLoc int32

	rxring  []*netstack.Packet // arrived, not yet taken by intr/poll
	protoq  []*netstack.Packet // taken by interrupts, awaiting softirq
	txdone  int                // transmit completions awaiting reclaim
	intrUp  bool               // rx interrupt raised, handler not yet run
	soft    bool               // protocol softirq posted
	pollEv  *core.Event
	pollIvl sim.Time
	foundAv float64 // EWMA of packets found per poll

	// Pre-bound hot-path closures and pooled chains (see Chain in package
	// kernel): scheduling receive drains, protocol batches and transmit
	// softirqs allocates nothing in steady state.
	rxDrainFn func()
	pollFn    func(now sim.Time) sim.Time
	proto     protoChain
	txFree    *txChain

	// Counters.
	RxPackets, TxPackets int64
	RxInterrupts         int64
	TxComplInterrupts    int64
	Polls                int64
	PolledPackets        int64
	// RxDropped counts packets the fault plan discarded at the ring.
	RxDropped int64
	batches   int64

	// Telemetry: the public counters above join the kernel's registry as
	// func instruments; the batch-size histogram and poll-interval gauge
	// are new registry-native observables.
	mBatch   *metrics.Histogram // packets per protocol batch (softirq or poll)
	mPollIvl *metrics.Gauge     // current adaptive poll interval, ns
}

// New creates a NIC on kernel k. The facility f is required in SoftPoll
// mode (it drives the poll events); out is where transmitted packets go
// (the wire toward the client).
func New(k *kernel.Kernel, f *core.Facility, cfg Config, out netstack.Endpoint) *NIC {
	if cfg.AggregationQuota <= 0 {
		cfg.AggregationQuota = 1
	}
	if cfg.MinPoll == 0 {
		cfg.MinPoll = 10 * sim.Microsecond
	}
	if cfg.MaxPoll == 0 {
		cfg.MaxPoll = sim.Millisecond
	}
	if cfg.Mode == SoftPoll && f == nil {
		panic("nic: SoftPoll mode requires a soft-timer facility")
	}
	n := &NIC{k: k, f: f, cfg: cfg, out: out, pollIvl: cfg.MinPoll * 4}
	n.proto.n = n
	n.rxDrainFn = n.rxDrain
	n.pollFn = n.poll
	n.registerMetrics()
	return n
}

// SetArena attaches the packet arena received packets release into.
func (n *NIC) SetArena(a *netstack.Arena) { n.arena = a }

// Arena returns the attached packet arena (nil when unwired), for layers
// above that acquire the packets this interface transmits.
func (n *NIC) Arena() *netstack.Arena { return n.arena }

// registerMetrics joins the kernel's telemetry registry under the
// nic.<name>. prefix. Unnamed NICs share the bare "nic." namespace — the
// most recently constructed one wins its func instruments, so name the
// interfaces in multi-NIC rigs (the testbed does).
func (n *NIC) registerMetrics() {
	r := n.k.Metrics()
	prefix := "nic."
	if n.cfg.Name != "" {
		prefix = "nic." + n.cfg.Name + "."
	}
	r.CounterFunc(prefix+"rx_packets", func() int64 { return n.RxPackets })
	r.CounterFunc(prefix+"tx_packets", func() int64 { return n.TxPackets })
	r.CounterFunc(prefix+"rx_interrupts", func() int64 { return n.RxInterrupts })
	r.CounterFunc(prefix+"txcompl_interrupts", func() int64 { return n.TxComplInterrupts })
	r.CounterFunc(prefix+"polls", func() int64 { return n.Polls })
	r.CounterFunc(prefix+"polled_packets", func() int64 { return n.PolledPackets })
	r.CounterFunc(prefix+"rx_dropped", func() int64 { return n.RxDropped })
	// Batch sizes up to 256 packets per protocol pass, 1-packet buckets.
	n.mBatch = r.Histogram(prefix+"batch_size", 1, 256)
	n.mPollIvl = r.Gauge(prefix + "poll_interval_ns")
	n.mPollIvl.Set(int64(n.pollIvl))
}

// Start begins polling (SoftPoll mode). Call after kernel.Start.
func (n *NIC) Start() {
	if n.cfg.Mode == SoftPoll {
		n.schedulePoll()
	}
}

// Mode returns the configured mode.
func (n *NIC) Mode() Mode { return n.cfg.Mode }

// PollInterval returns the current adaptive poll interval.
func (n *NIC) PollInterval() sim.Time { return n.pollIvl }

// Deliver implements netstack.Endpoint: a packet arrives from the wire.
func (n *NIC) Deliver(p *netstack.Packet) {
	if n.cfg.Faults.Drop() {
		n.RxDropped++
		n.arena.Release(p)
		return
	}
	n.RxPackets++
	p.Trace.Hop(flowtrace.HopNICRing, n.TraceLoc, n.k.Now())
	n.rxring = append(n.rxring, p)
	switch n.cfg.Mode {
	case Interrupt:
		n.raiseRxInterrupt()
	case SoftPoll:
		// Poll events pick the ring up; but if the CPU is idle,
		// interrupts are enabled so delivery is immediate.
		if n.cfg.IdleInterrupts && n.k.Idle() {
			n.raiseRxInterrupt()
		}
	}
}

// raiseRxInterrupt raises one receive interrupt unless one is already
// pending (packets arriving back-to-back share a ring drain, which is how
// real drivers batch under load).
func (n *NIC) raiseRxInterrupt() {
	if n.intrUp {
		return
	}
	n.intrUp = true
	n.RxInterrupts++
	n.k.RaiseInterrupt(kernel.SrcIPIntr, n.cfg.Costs.RxIntrWork, n.rxDrainFn)
}

// rxDrain is the receive interrupt's handler body (bound once): move the
// ring's packets to the protocol queue and post the protocol softirq.
func (n *NIC) rxDrain() {
	n.intrUp = false
	n.protoq = append(n.protoq, n.rxring...)
	for i := range n.rxring {
		n.rxring[i] = nil
	}
	n.rxring = n.rxring[:0]
	n.postProtoSoftirq()
}

// postProtoSoftirq posts the protocol-input software interrupt draining
// protoq, one chain step per packet plus a tail step whose completion is a
// tcpip-other trigger state. The batch is taken when the softirq runs
// (protoChain.Begin), so packets enqueued by interrupts in the meantime
// join the same batch — protocol processing aggregates under load while
// interrupts stay per-packet, matching Table 2's ip-intr ≫ tcpip-other
// ratio.
func (n *NIC) postProtoSoftirq() {
	if n.soft || len(n.protoq) == 0 {
		return
	}
	n.soft = true
	n.k.PostSoftIRQChain(&n.proto, 0)
}

// protoChain is the protocol-input batch as a kernel.Chain: steps 0..len-1
// process one received packet each (with the batch-locality discount past
// the first), and the final step is the softirq tail. One instance is
// embedded per NIC — the n.soft guard ensures a single outstanding post,
// and batches double-buffer between the chain and the protocol queue so
// steady state reuses two backing arrays forever.
type protoChain struct {
	n       *NIC
	batch   []*netstack.Packet
	tailSrc kernel.Source
}

func (c *protoChain) Begin() int {
	n := c.n
	c.batch, n.protoq = n.protoq, c.batch[:0]
	n.soft = false
	n.mBatch.Observe(float64(len(c.batch)))
	c.tailSrc = kernel.SrcNone
	n.batches++
	if e := n.cfg.Costs.SoftirqTailTriggerEvery; e > 0 && n.batches%int64(e) == 0 {
		c.tailSrc = kernel.SrcTCPIPOther
	}
	return len(c.batch) + 1
}

func (c *protoChain) Step(i int) (sim.Time, kernel.Source) {
	if i >= len(c.batch) {
		return c.n.cfg.Costs.SoftirqTail, c.tailSrc
	}
	w := c.n.cfg.Costs.RxProtoWork
	if i > 0 {
		w = sim.Time(float64(w) * (1 - c.n.cfg.Costs.RxBatchDiscount))
	}
	return w, kernel.SrcNone
}

func (c *protoChain) Run(i int) {
	if i >= len(c.batch) {
		return // tail step: bookkeeping only
	}
	n := c.n
	p := c.batch[i]
	c.batch[i] = nil
	p.Trace.Hop(flowtrace.HopNICRx, n.TraceLoc, n.k.Now())
	if n.RxHandler != nil {
		n.RxHandler(p)
	}
	n.arena.Release(p)
}

func (c *protoChain) End() { c.batch = c.batch[:0] }

// txChain is one posted transmit softirq as a kernel.Chain: one ip-output
// trigger state per packet. Chains pool on the NIC free list — each post
// gets its own instance (several can be pending at once), so softirq
// boundaries and entry costs stay exactly those of the slice-based form.
type txChain struct {
	n    *NIC
	pkts []*netstack.Packet
	next *txChain
}

func (n *NIC) getTxChain() *txChain {
	c := n.txFree
	if c == nil {
		return &txChain{n: n}
	}
	n.txFree = c.next
	c.next = nil
	return c
}

func (c *txChain) Begin() int { return len(c.pkts) }

func (c *txChain) Step(int) (sim.Time, kernel.Source) {
	return c.n.cfg.Costs.TxWork, kernel.SrcIPOutput
}

func (c *txChain) Run(i int) {
	p := c.pkts[i]
	c.pkts[i] = nil
	c.n.transmit(p)
}

func (c *txChain) End() {
	c.pkts = c.pkts[:0]
	c.next = c.n.txFree
	c.n.txFree = c
}

// TxSteps builds the kernel chain transmitting pkts: one ip-output trigger
// state per packet, as in the paper's instrumented TCP/IP output loop. Use
// from process context via Proc.Chain or post as a softirq. (TxChainOf is
// the allocation-free equivalent for hot paths.)
func (n *NIC) TxSteps(pkts ...*netstack.Packet) []kernel.ChainStep {
	steps := make([]kernel.ChainStep, 0, len(pkts))
	for _, p := range pkts {
		p := p
		steps = append(steps, kernel.ChainStep{Work: n.cfg.Costs.TxWork, Src: kernel.SrcIPOutput, Fn: func() {
			n.transmit(p)
		}})
	}
	return steps
}

// TxChainOf takes a pooled transmit chain loaded with pkts, for use with
// Proc.ChainC (syscall-context transmission). The chain recycles itself
// when it completes.
func (n *NIC) TxChainOf(pkts ...*netstack.Packet) kernel.Chain {
	c := n.getTxChain()
	c.pkts = append(c.pkts, pkts...)
	return c
}

// TxFromKernel transmits pkts from interrupt/protocol context by posting a
// transmit softirq (e.g. ACKs generated during receive processing).
func (n *NIC) TxFromKernel(pkts ...*netstack.Packet) {
	if len(pkts) == 0 {
		return
	}
	c := n.getTxChain()
	c.pkts = append(c.pkts, pkts...)
	n.k.PostSoftIRQChain(c, len(c.pkts))
}

// TransmitNow sends one packet immediately, charging no kernel chain —
// used inside soft-timer handlers (rate-based clocking), where the CPU
// cost is charged through the handler's returned duration and the trigger
// state is the one that invoked the handler. Returns the CPU cost.
func (n *NIC) TransmitNow(p *netstack.Packet) sim.Time {
	n.transmit(p)
	return n.cfg.Costs.TxWork
}

// TransmitRaw sends one packet without reporting a cost — for callers that
// already charged the transmission through a chain step's Work.
func (n *NIC) TransmitRaw(p *netstack.Packet) { n.transmit(p) }

// Cfg returns the NIC's effective configuration.
func (n *NIC) Cfg() Config { return n.cfg }

// QueueDepth returns the packets sitting in the rx ring plus the
// protocol input queue — the instantaneous backlog, for time-series
// sampling.
func (n *NIC) QueueDepth() int { return len(n.rxring) + len(n.protoq) }

// transmit puts a packet on the wire and schedules its completion.
func (n *NIC) transmit(p *netstack.Packet) {
	n.TxPackets++
	p.SentAt = n.k.Now()
	p.Trace.Hop(flowtrace.HopNICTx, n.TraceLoc, p.SentAt)
	n.out.Deliver(p)
	n.txdone++
	if n.cfg.Mode == Interrupt && n.cfg.TxComplInterrupts {
		// Completion signaled once the wire accepts it; modeled as an
		// immediate-completion interrupt (wire serialization is in the
		// link model).
		cnt := n.txdone
		n.txdone = 0
		n.TxComplInterrupts++
		n.k.RaiseInterrupt(kernel.SrcIPIntr, n.cfg.Costs.TxComplWork*sim.Time(cnt), nil)
	}
}

// schedulePoll arms the next soft-timer poll event.
func (n *NIC) schedulePoll() {
	n.pollEv = n.f.ScheduleAfter(n.pollIvl, n.pollFn)
}

// poll is the soft-timer polling handler: drain receive ring and transmit
// completions, process them inline, adapt the interval, re-arm. The two
// queues are walked in place (protocol queue first, then the ring — the
// order the combined batch always had) and reset, so polling reuses their
// backing arrays.
func (n *NIC) poll(now sim.Time) sim.Time {
	n.Polls++
	cost := n.cfg.Costs.PollWork
	found := len(n.rxring) + len(n.protoq)
	i := 0
	for _, q := range [2][]*netstack.Packet{n.protoq, n.rxring} {
		for j, p := range q {
			q[j] = nil
			w := n.cfg.Costs.RxProtoWork
			if i > 0 {
				w = sim.Time(float64(w) * (1 - n.cfg.Costs.RxBatchDiscount))
			}
			i++
			cost += w
			p.Trace.Hop(flowtrace.HopNICRx, n.TraceLoc, n.k.Now())
			if n.RxHandler != nil {
				n.RxHandler(p)
			}
			n.arena.Release(p)
		}
	}
	n.protoq = n.protoq[:0]
	n.rxring = n.rxring[:0]
	n.PolledPackets += int64(found)
	n.mBatch.Observe(float64(found))
	if n.txdone > 0 {
		cost += n.cfg.Costs.TxComplWork * sim.Time(n.txdone)
		n.txdone = 0
	}
	n.adapt(float64(found))
	n.schedulePoll()
	return cost
}

// adapt steers the poll interval so the EWMA of packets found per poll
// approaches the aggregation quota.
func (n *NIC) adapt(found float64) {
	const alpha = 0.1
	n.foundAv = (1-alpha)*n.foundAv + alpha*found
	switch {
	case n.foundAv > n.cfg.AggregationQuota*1.1:
		n.pollIvl = n.pollIvl * 7 / 8
	case n.foundAv < n.cfg.AggregationQuota*0.9:
		n.pollIvl = n.pollIvl * 9 / 8
	}
	if n.pollIvl < n.cfg.MinPoll {
		n.pollIvl = n.cfg.MinPoll
	}
	if n.pollIvl > n.cfg.MaxPoll {
		n.pollIvl = n.cfg.MaxPoll
	}
	n.mPollIvl.Set(int64(n.pollIvl))
}
