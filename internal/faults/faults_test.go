package faults

import (
	"encoding/json"
	"reflect"
	"testing"

	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// hostileSpec is a scenario exercising every fault channel at once.
func hostileSpec() Spec {
	return Spec{
		Drop:          0.05,
		Dup:           0.02,
		Reorder:       0.03,
		ReorderMax:    200 * sim.Microsecond,
		IntrJitterMax: 5 * sim.Microsecond,
		IntrCoalesce:  0.1,
		WorkJitter:    0.25,
		Starve:        0.5,
	}
}

// drive exercises every channel of a plan a fixed number of times and
// returns a digest of all observable outputs.
type digest struct {
	Drops, Dups     []bool
	Reorders        []sim.Time
	Intr, PIT, Work []sim.Time
	Starved         []bool
	Counters        map[string]int64
}

func drive(p *Plan) digest {
	var d digest
	lp := p.Link("net:a->b")
	for i := 0; i < 200; i++ {
		drop := lp.Drop()
		d.Drops = append(d.Drops, drop)
		if !drop {
			d.Dups = append(d.Dups, lp.Duplicate())
			d.Reorders = append(d.Reorders, lp.ReorderDelay())
		}
		d.Intr = append(d.Intr, p.IntrJitter())
		d.PIT = append(d.PIT, p.PITPerturb(sim.Millisecond))
		d.Work = append(d.Work, p.PerturbWork(2*sim.Microsecond))
		d.Starved = append(d.Starved, p.StarveTrigger())
	}
	r := metrics.NewRegistry()
	p.RegisterMetrics(r)
	d.Counters = r.Snapshot().Counters
	return d
}

func TestSameSeedSamePlan(t *testing.T) {
	a := drive(New(42, hostileSpec()))
	b := drive(New(42, hostileSpec()))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different fault sequences")
	}
	c := drive(New(43, hostileSpec()))
	if reflect.DeepEqual(a.Counters, c.Counters) {
		t.Fatalf("different seeds produced identical counters (suspicious)")
	}
}

// TestChannelIndependence verifies the split-seed contract: draws on one
// channel never shift another channel's sequence. A plan that interleaves
// link draws between interrupt draws must still produce the same interrupt
// jitter sequence as one that does not.
func TestChannelIndependence(t *testing.T) {
	spec := hostileSpec()

	pure := New(7, spec)
	var want []sim.Time
	for i := 0; i < 100; i++ {
		want = append(want, pure.IntrJitter())
	}

	mixed := New(7, spec)
	lp := mixed.Link("net:a->b")
	var got []sim.Time
	for i := 0; i < 100; i++ {
		lp.Drop()
		mixed.PerturbWork(sim.Microsecond)
		mixed.StarveTrigger()
		got = append(got, mixed.IntrJitter())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("interleaved draws on other channels perturbed the intr stream")
	}

	// Two links are independent of each other too.
	p1 := New(7, spec)
	a1 := p1.Link("a")
	var seqA []bool
	for i := 0; i < 100; i++ {
		seqA = append(seqA, a1.Drop())
	}
	p2 := New(7, spec)
	a2, b2 := p2.Link("a"), p2.Link("b")
	var seqA2 []bool
	for i := 0; i < 100; i++ {
		b2.Drop()
		seqA2 = append(seqA2, a2.Drop())
	}
	if !reflect.DeepEqual(seqA, seqA2) {
		t.Fatalf("draws on link b perturbed link a's stream")
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.StarveTrigger() {
		t.Errorf("nil plan starved a trigger")
	}
	if j := p.IntrJitter(); j != 0 {
		t.Errorf("nil plan intr jitter = %v, want 0", j)
	}
	if j := p.PITPerturb(sim.Millisecond); j != 0 {
		t.Errorf("nil plan PIT perturb = %v, want 0", j)
	}
	if d := p.PerturbWork(sim.Microsecond); d != sim.Microsecond {
		t.Errorf("nil plan perturbed work: %v", d)
	}
	if !p.Spec().Clean() {
		t.Errorf("nil plan spec not clean")
	}
	lp := p.Link("x")
	if lp != nil {
		t.Fatalf("nil plan returned non-nil link plan")
	}
	if lp.Drop() || lp.Duplicate() || lp.ReorderDelay() != 0 {
		t.Errorf("nil link plan injected a fault")
	}
	p.RegisterMetrics(metrics.NewRegistry()) // must not panic
	p.RegisterMetrics(nil)
}

// TestCleanSpecDrawsNothing: a plan whose spec disables a channel must not
// advance that channel's stream, so "channel off" and "channel never
// consulted" are indistinguishable — adding an unused consultation point
// can never change replay of existing scenarios.
func TestCleanSpecDrawsNothing(t *testing.T) {
	p := New(5, Spec{})
	lp := p.Link("l")
	for i := 0; i < 10; i++ {
		if lp.Drop() || lp.Duplicate() || lp.ReorderDelay() != 0 {
			t.Fatalf("clean spec injected a link fault")
		}
		if p.IntrJitter() != 0 || p.PITPerturb(sim.Millisecond) != 0 ||
			p.StarveTrigger() {
			t.Fatalf("clean spec injected a kernel fault")
		}
		if d := p.PerturbWork(sim.Microsecond); d != sim.Microsecond {
			t.Fatalf("clean spec perturbed work")
		}
	}
	if !p.Spec().Clean() {
		t.Errorf("zero spec not Clean()")
	}
	if hostileSpec().Clean() {
		t.Errorf("hostile spec reported Clean()")
	}
}

func TestCountersMatchActivity(t *testing.T) {
	p := New(11, Spec{Drop: 1.0})
	lp := p.Link("l")
	for i := 0; i < 50; i++ {
		if !lp.Drop() {
			t.Fatalf("Drop=1.0 did not drop")
		}
	}
	if lp.Dropped != 50 {
		t.Fatalf("Dropped = %d, want 50", lp.Dropped)
	}
	r := metrics.NewRegistry()
	p.RegisterMetrics(r)
	s := r.Snapshot()
	if s.Counters["faults.pkts_dropped"] != 50 {
		t.Fatalf("faults.pkts_dropped = %d, want 50", s.Counters["faults.pkts_dropped"])
	}

	st := New(11, Spec{Starve: 1.0})
	for i := 0; i < 30; i++ {
		if !st.StarveTrigger() {
			t.Fatalf("Starve=1.0 did not starve")
		}
	}
	if st.TriggersStarved != 30 {
		t.Fatalf("TriggersStarved = %d, want 30", st.TriggersStarved)
	}
}

func TestPerturbWorkBounds(t *testing.T) {
	p := New(3, Spec{WorkJitter: 0.25})
	const d = 1000 * sim.Nanosecond
	for i := 0; i < 1000; i++ {
		nd := p.PerturbWork(d)
		if nd < 750 || nd > 1250 {
			t.Fatalf("perturbed work %v outside [750, 1250] ns", nd)
		}
	}
	if p.CPUPerturbNS == 0 {
		t.Errorf("CPUPerturbNS not accumulated")
	}
}

func TestReorderDelayBounded(t *testing.T) {
	p := New(9, Spec{Reorder: 1.0, ReorderMax: 100 * sim.Microsecond})
	lp := p.Link("l")
	for i := 0; i < 500; i++ {
		d := lp.ReorderDelay()
		if d < 0 || d >= 100*sim.Microsecond {
			t.Fatalf("reorder delay %v outside [0, 100µs)", d)
		}
	}
	// Default bound applies when ReorderMax is unset.
	pd := New(9, Spec{Reorder: 1.0})
	lpd := pd.Link("l")
	for i := 0; i < 500; i++ {
		if d := lpd.ReorderDelay(); d >= 500*sim.Microsecond {
			t.Fatalf("default reorder delay %v outside [0, 500µs)", d)
		}
	}
}

func TestScenarios(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatalf("no scenarios registered")
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario %q", n)
		}
		seen[n] = true
		spec, ok := LookupScenario(n)
		if !ok {
			t.Fatalf("ScenarioNames lists %q but LookupScenario misses it", n)
		}
		if n == "clean" && !spec.Clean() {
			t.Errorf("clean scenario is not clean")
		}
		if n != "clean" && spec.Clean() {
			t.Errorf("scenario %q injects no faults", n)
		}
	}
	if !seen["clean"] || !seen["hostile"] || !seen["starved"] {
		t.Fatalf("core scenarios missing from %v", names)
	}
	if _, ok := LookupScenario("no-such-scenario"); ok {
		t.Fatalf("LookupScenario invented a scenario")
	}
}

// TestMetricsSnapshotStable: the plan's metric registration must produce a
// deterministic snapshot (JSON bytes) for a deterministic driving sequence.
func TestMetricsSnapshotStable(t *testing.T) {
	enc := func() []byte {
		p := New(21, hostileSpec())
		drive(p)
		r := metrics.NewRegistry()
		p.RegisterMetrics(r)
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatalf("snapshot bytes differ between identical runs")
	}
}
