package faults

import (
	"fmt"
	"sort"
	"strings"

	"softtimers/internal/sim"
)

// Named scenarios give stbench -scenario and the degradation experiments a
// shared vocabulary. Each is a fixed Spec so "the same scenario" always
// means the same fault rates across runs, docs, and regression tests.
var scenarios = map[string]Spec{
	// clean: the well-behaved substrate every other PR has used.
	"clean": {},

	// lossy: a bad WAN path — 5% loss, light duplication and reordering.
	"lossy": {
		Drop:       0.05,
		Dup:        0.01,
		Reorder:    0.02,
		ReorderMax: 500 * sim.Microsecond,
	},

	// jittery: a noisy platform — late interrupts, coalesced PIT ticks,
	// and ±25% syscall/trap cost noise, but a clean network.
	"jittery": {
		IntrJitterMax: 10 * sim.Microsecond,
		IntrCoalesce:  0.1,
		WorkJitter:    0.25,
	},

	// starved: trigger states almost never occur (95% suppressed), so
	// soft timers must lean on the hardclock fallback. This is the
	// scenario behind the paper's graceful-degradation claim.
	"starved": {
		Starve: 0.95,
	},

	// hostile: everything at once — the stress scenario the property
	// tests and seed-replay regression run under.
	"hostile": {
		Drop:          0.05,
		Dup:           0.02,
		Reorder:       0.03,
		ReorderMax:    200 * sim.Microsecond,
		IntrJitterMax: 5 * sim.Microsecond,
		IntrCoalesce:  0.1,
		WorkJitter:    0.25,
		Starve:        0.5,
	},
}

// scenarioDescs are the one-line summaries stbench -list prints.
var scenarioDescs = map[string]string{
	"clean":   "well-behaved substrate, no faults injected",
	"lossy":   "bad WAN path: 5% loss, light duplication and reordering",
	"jittery": "noisy platform: late interrupts, coalesced PIT ticks, cost noise",
	"starved": "95% of trigger-state checks suppressed; hardclock fallback rules",
	"hostile": "everything at once: loss, reorder, jitter, 50% starvation",
}

// DescribeScenario returns the named scenario's one-line description.
func DescribeScenario(name string) string { return scenarioDescs[name] }

// LookupScenario returns the named scenario's spec.
func LookupScenario(name string) (Spec, bool) {
	s, ok := scenarios[name]
	return s, ok
}

// ScenarioNames returns all scenario names, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MustScenario is LookupScenario for callers with a validated name; it
// panics on a miss with the list of valid names.
func MustScenario(name string) Spec {
	s, ok := scenarios[name]
	if !ok {
		panic(fmt.Sprintf("faults: unknown scenario %q (have %s)",
			name, strings.Join(ScenarioNames(), ", ")))
	}
	return s
}
