// Package faults is the deterministic fault-injection layer for the
// simulated substrate. The paper's robustness claim (§4, §5.2, Table 2) is
// that soft timers degrade gracefully: when trigger states are rare the
// facility falls back to the hard periodic timer bound, and overhead stays
// bounded under adverse workloads. Demonstrating that claim requires a
// substrate that can misbehave on demand — packets lost, duplicated and
// reordered on the wire, interrupts delivered late or coalesced, syscall
// costs perturbed, and trigger-state checks starved so the hardclock
// fallback path is actually exercised.
//
// A Plan is constructed from a seed and a Spec (the scenario). Components
// consult it at well-defined points:
//
//   - netstack.Link.Send: per-packet drop, duplication, bounded reorder
//   - nic.NIC.Deliver: receive-ring drop
//   - kernel.runIntr: interrupt-delivery jitter
//   - kernel.PIT: tick-delivery jitter and coalescing perturbation
//   - kernel syscall/trap segments and kernel-context chains: CPU-cost
//     perturbation (via cpu.Perturber)
//   - kernel.trigger: trigger-state starvation (SrcHardClock is exempt —
//     the periodic clock interrupt is the paper's guaranteed backup, and
//     starving it would remove the very bound under test)
//
// Determinism contract: all randomness flows from a single seed through
// split-seed sub-streams (Stream), one per named channel. Each channel's
// draw sequence depends only on the seed, the channel name, and the number
// of prior draws on that same channel — never on draws made by other
// channels or on wall-clock/goroutine scheduling. Since every simulation
// substrate is single-threaded and itself deterministic, a faulty run is
// byte-identically replayable from its seed at any -parallel setting.
//
// A nil *Plan is valid everywhere and injects nothing: every query method
// is nil-safe and returns the "no fault" answer without drawing, so the
// clean path pays only a pointer test.
package faults

import (
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// Spec parameterizes a fault scenario. The zero value is the clean
// scenario: no faults anywhere.
type Spec struct {
	// Drop is the per-packet loss probability on faulted links and NIC
	// receive paths.
	Drop float64
	// Dup is the per-packet duplication probability (the copy is delivered
	// back to back with the original).
	Dup float64
	// Reorder is the probability a packet is held back by an extra delay
	// in [0, ReorderMax), letting later packets overtake it.
	Reorder float64
	// ReorderMax bounds the reorder hold-back. Defaults to 500 µs when
	// Reorder is set.
	ReorderMax sim.Time
	// IntrJitterMax is the maximum extra interrupt-delivery latency; each
	// hardware interrupt is delayed by a uniform draw from [0, max].
	IntrJitterMax sim.Time
	// IntrCoalesce is the probability that a PIT tick's delivery is
	// deferred by up to one period, merging it with the next tick when
	// the line is still asserted (the paper's "some timer interrupts are
	// lost" observation, perturbed on purpose).
	IntrCoalesce float64
	// WorkJitter perturbs per-syscall/trap CPU costs by a uniform factor
	// in [1-j, 1+j].
	WorkJitter float64
	// Starve is the fraction of trigger-state checks suppressed. The
	// hardclock trigger is never starved: it is the facility's guaranteed
	// fallback, and the degradation experiments exist to show the bound
	// it provides.
	Starve float64
	// OverheadBudget is the maximum tolerated soft-timer check-overhead
	// fraction of CPU time under this scenario; the degradation
	// regression tests assert against it. 0 means "use the default"
	// (DefaultOverheadBudget).
	OverheadBudget float64
}

// DefaultOverheadBudget is the check-overhead budget asserted when a Spec
// does not set one: 1% of CPU time, far above anything the facility should
// ever consume in checks (§5.2 finds the base overhead unobservable).
const DefaultOverheadBudget = 0.01

// Budget returns the scenario's effective overhead budget.
func (s Spec) Budget() float64 {
	if s.OverheadBudget > 0 {
		return s.OverheadBudget
	}
	return DefaultOverheadBudget
}

// Clean reports whether the spec injects no faults at all.
func (s Spec) Clean() bool {
	return s.Drop == 0 && s.Dup == 0 && s.Reorder == 0 &&
		s.IntrJitterMax == 0 && s.IntrCoalesce == 0 &&
		s.WorkJitter == 0 && s.Starve == 0
}

// reorderMax returns the effective hold-back bound.
func (s Spec) reorderMax() sim.Time {
	if s.ReorderMax > 0 {
		return s.ReorderMax
	}
	return 500 * sim.Microsecond
}

// Plan is one simulation's fault-injection state: the scenario spec, the
// split-seed PRNG streams, and the fault counters. A Plan belongs to one
// simulation substrate and, like the engine it perturbs, is not safe for
// concurrent use; independent simulations construct independent plans.
type Plan struct {
	seed uint64
	spec Spec

	links map[string]*LinkPlan
	intr  *sim.RNG
	cpu   *sim.RNG
	sta   *sim.RNG
	pit   *sim.RNG

	// Counters (plan-wide; per-link detail lives on each LinkPlan and on
	// the links' own metrics).
	IntrJitterNS    int64 // total extra interrupt-delivery latency injected
	CPUPerturbNS    int64 // total |delta| of perturbed syscall/trap work
	TriggersStarved int64 // trigger-state checks suppressed
	PITCoalesced    int64 // PIT ticks deferred toward coalescing
	PITJitterNS     int64 // total PIT delivery delay injected
}

// New builds a plan for the given seed and scenario. The seed is split
// into independent per-channel streams; the same (seed, spec) always
// yields the same plan behaviour.
func New(seed uint64, spec Spec) *Plan {
	p := &Plan{seed: seed, spec: spec, links: make(map[string]*LinkPlan)}
	p.intr = p.Stream("intr")
	p.cpu = p.Stream("cpu")
	p.sta = p.Stream("starve")
	p.pit = p.Stream("pit")
	return p
}

// Spec returns the scenario the plan was built from. A nil plan reports
// the clean spec.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// fnv64a is the FNV-1a hash used to derive per-channel seeds from names.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stream returns a deterministic PRNG sub-stream for the named channel:
// the same (plan seed, name) always yields the same stream, independent of
// every other channel. Components owning their own randomness (and the
// property-test harness) draw from here so fault draws never interleave.
func (p *Plan) Stream(name string) *sim.RNG {
	// Mix the channel hash through one splitmix step so related names do
	// not produce correlated seeds.
	r := sim.NewRNG(p.seed ^ fnv64a(name))
	return sim.NewRNG(r.Uint64())
}

// Link returns the fault channel for the named link (or NIC receive path),
// creating it on first use. Each link owns an independent stream, so the
// draw sequence a link sees depends only on its own packet order. A nil
// plan returns a nil LinkPlan, whose methods are nil-safe no-ops.
func (p *Plan) Link(name string) *LinkPlan {
	if p == nil {
		return nil
	}
	if lp, ok := p.links[name]; ok {
		return lp
	}
	lp := &LinkPlan{spec: p.spec, rng: p.Stream("link." + name)}
	p.links[name] = lp
	return lp
}

// IntrJitter returns the extra delivery latency for one hardware
// interrupt: a uniform draw from [0, IntrJitterMax].
func (p *Plan) IntrJitter() sim.Time {
	if p == nil || p.spec.IntrJitterMax <= 0 {
		return 0
	}
	j := sim.Time(p.intr.Float64() * float64(p.spec.IntrJitterMax))
	p.IntrJitterNS += int64(j)
	return j
}

// PITPerturb returns the delivery delay for one PIT tick of the given
// period: with probability IntrCoalesce a deferral of up to one period
// (driving ticks into coalescing), otherwise ordinary interrupt jitter.
func (p *Plan) PITPerturb(period sim.Time) sim.Time {
	if p == nil {
		return 0
	}
	if p.spec.IntrCoalesce > 0 && p.pit.Bool(p.spec.IntrCoalesce) {
		p.PITCoalesced++
		j := sim.Time(p.pit.Float64() * float64(period))
		p.PITJitterNS += int64(j)
		return j
	}
	if p.spec.IntrJitterMax > 0 {
		j := sim.Time(p.pit.Float64() * float64(p.spec.IntrJitterMax))
		p.PITJitterNS += int64(j)
		return j
	}
	return 0
}

// PerturbWork implements cpu.Perturber: it scales a nominal syscall/trap
// work duration by a uniform factor in [1-WorkJitter, 1+WorkJitter], with
// a 1 ns floor so perturbed work can always be scheduled.
func (p *Plan) PerturbWork(d sim.Time) sim.Time {
	if p == nil || p.spec.WorkJitter <= 0 || d <= 0 {
		return d
	}
	j := p.spec.WorkJitter
	scale := 1 - j + 2*j*p.cpu.Float64()
	nd := sim.Time(float64(d) * scale)
	if nd < 1 {
		nd = 1
	}
	delta := int64(nd - d)
	if delta < 0 {
		delta = -delta
	}
	p.CPUPerturbNS += delta
	return nd
}

// StarveTrigger reports whether this trigger-state check should be
// suppressed. Callers must exempt the hardclock source themselves (the
// kernel does); the plan only draws the starvation coin.
func (p *Plan) StarveTrigger() bool {
	if p == nil || p.spec.Starve <= 0 {
		return false
	}
	if p.sta.Bool(p.spec.Starve) {
		p.TriggersStarved++
		return true
	}
	return false
}

// RegisterMetrics exposes the plan's fault counters on a telemetry
// registry as faults.* func instruments, so fault activity appears in
// stbench -metrics snapshots next to the counters it perturbs. Per-link
// aggregates are summed over all channels at snapshot time.
func (p *Plan) RegisterMetrics(r *metrics.Registry) {
	if p == nil || r == nil {
		return
	}
	r.CounterFunc("faults.intr_jitter_ns", func() int64 { return p.IntrJitterNS })
	r.CounterFunc("faults.cpu_perturb_ns", func() int64 { return p.CPUPerturbNS })
	r.CounterFunc("faults.triggers_starved", func() int64 { return p.TriggersStarved })
	r.CounterFunc("faults.pit_coalesced", func() int64 { return p.PITCoalesced })
	r.CounterFunc("faults.pit_jitter_ns", func() int64 { return p.PITJitterNS })
	r.CounterFunc("faults.pkts_dropped", func() int64 {
		var n int64
		for _, lp := range p.links {
			n += lp.Dropped
		}
		return n
	})
	r.CounterFunc("faults.pkts_duplicated", func() int64 {
		var n int64
		for _, lp := range p.links {
			n += lp.Duplicated
		}
		return n
	})
	r.CounterFunc("faults.pkts_reordered", func() int64 {
		var n int64
		for _, lp := range p.links {
			n += lp.Reordered
		}
		return n
	})
}

// LinkPlan is one link's (or NIC receive path's) fault channel: an
// independent PRNG stream plus per-channel counters. All methods are
// nil-safe: a nil channel injects nothing and never draws.
type LinkPlan struct {
	spec Spec
	rng  *sim.RNG

	Dropped    int64
	Duplicated int64
	Reordered  int64
}

// Drop reports whether the current packet is lost.
func (lp *LinkPlan) Drop() bool {
	if lp == nil || lp.spec.Drop <= 0 {
		return false
	}
	if lp.rng.Bool(lp.spec.Drop) {
		lp.Dropped++
		return true
	}
	return false
}

// Duplicate reports whether the current packet is delivered twice.
func (lp *LinkPlan) Duplicate() bool {
	if lp == nil || lp.spec.Dup <= 0 {
		return false
	}
	if lp.rng.Bool(lp.spec.Dup) {
		lp.Duplicated++
		return true
	}
	return false
}

// ReorderDelay returns the extra hold-back for the current packet: 0 for
// most packets, a uniform draw from [0, ReorderMax) with probability
// Reorder. Later packets can overtake a held-back one, producing bounded
// reordering.
func (lp *LinkPlan) ReorderDelay() sim.Time {
	if lp == nil || lp.spec.Reorder <= 0 {
		return 0
	}
	if !lp.rng.Bool(lp.spec.Reorder) {
		return 0
	}
	lp.Reordered++
	return sim.Time(lp.rng.Float64() * float64(lp.spec.reorderMax()))
}
