package kernel

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/sim"
)

func TestKernelAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	k := New(eng, cpu.PentiumII300(), Options{Hz: 500})
	if k.Engine() != eng {
		t.Error("Engine() mismatch")
	}
	if k.Profile().Name != "PentiumII-300" {
		t.Error("Profile() mismatch")
	}
	if k.Hz() != 500 {
		t.Errorf("Hz() = %d", k.Hz())
	}
	if k.TickPeriod() != 2*sim.Millisecond {
		t.Errorf("TickPeriod() = %v", k.TickPeriod())
	}
	k.Start()
	// Run slightly past the 10ms boundary: the tick interrupt raised at
	// exactly 10ms takes a few µs of handler time to count.
	eng.RunFor(10*sim.Millisecond + 100*sim.Microsecond)
	if k.Now() != eng.Now() {
		t.Error("Now() mismatch")
	}
	if k.Tick() != 5 {
		t.Errorf("Tick() = %d past 10ms with Hz=500, want 5", k.Tick())
	}
	if k.Idle() != true {
		t.Error("Idle() should be true with no work (halted idle)")
	}
}

func TestPostSoftIRQEmptyIsNoop(t *testing.T) {
	eng := sim.NewEngine(2)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	k.Start()
	k.PostSoftIRQ() // no steps: nothing should happen
	eng.RunFor(sim.Millisecond)
	if k.Accounting().SoftIRQ != 0 {
		t.Fatal("empty PostSoftIRQ consumed time")
	}
}

func TestPostSoftIRQBuilderNilPanics(t *testing.T) {
	eng := sim.NewEngine(3)
	k := New(eng, cpu.PentiumII300(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k.PostSoftIRQBuilder(nil)
}

func TestPostSoftIRQBuilderBatches(t *testing.T) {
	eng := sim.NewEngine(4)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	k.Start()
	var batch []int
	pending := []int{1}
	// Raise an interrupt whose handler posts the builder softirq and
	// appends more work before the softirq runs (queued behind a second
	// interrupt): the builder must see everything.
	eng.At(10*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcIPIntr, 5*sim.Microsecond, func() {
			k.PostSoftIRQBuilder(func() []ChainStep {
				got := append([]int(nil), pending...)
				pending = nil
				return []ChainStep{{Work: sim.Microsecond, Src: SrcNone, Fn: func() {
					batch = got
				}}}
			})
			// A second interrupt queued while the first runs adds work
			// before the softirq executes.
			k.RaiseInterrupt(SrcIPIntr, 5*sim.Microsecond, func() {
				pending = append(pending, 2)
			})
		})
	})
	eng.RunFor(sim.Millisecond)
	if len(batch) != 2 {
		t.Fatalf("builder saw batch %v, want both items", batch)
	}
}

func TestPITAccessors(t *testing.T) {
	eng := sim.NewEngine(5)
	k := New(eng, cpu.PentiumII300(), Options{})
	pit := k.NewPIT(100*sim.Microsecond, 0, nil)
	if pit.Period() != 100*sim.Microsecond {
		t.Errorf("Period() = %v", pit.Period())
	}
	if pit.Running() {
		t.Error("Running() before Start")
	}
	pit.Start()
	pit.Start() // idempotent
	if !pit.Running() {
		t.Error("Running() after Start")
	}
	pit.Stop()
	if pit.Running() {
		t.Error("Running() after Stop")
	}
}

func TestPITValidation(t *testing.T) {
	eng := sim.NewEngine(6)
	k := New(eng, cpu.PentiumII300(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	k.NewPIT(0, 0, nil)
}

func TestMeterTraceCallback(t *testing.T) {
	eng := sim.NewEngine(7)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	var srcs []Source
	k.Meter().Trace = func(_ sim.Time, _ sim.Time, src Source) { srcs = append(srcs, src) }
	k.Spawn("w", func(p *Proc) {
		p.Syscall("a", sim.Microsecond, func() {
			p.Syscall("b", sim.Microsecond, func() { p.Exit() })
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	// The first trigger starts the interval clock; the trace sees the
	// second onward.
	if len(srcs) < 1 || srcs[0] != SrcSyscall {
		t.Fatalf("trace srcs = %v", srcs)
	}
}
