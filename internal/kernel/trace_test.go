package kernel

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

func TestKernelTracing(t *testing.T) {
	eng := sim.NewEngine(19)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: true})
	// The idle loop alone produces thousands of trigger events per
	// simulated millisecond; size the ring to hold the whole run.
	tb := trace.New(100_000)
	k.SetTracer(tb)
	if k.Tracer() != tb {
		t.Fatal("tracer not attached")
	}
	k.Spawn("worker", func(p *Proc) {
		p.Compute(100*sim.Microsecond, func() {
			p.Syscall("read", 10*sim.Microsecond, func() { p.Exit() })
		})
	})
	k.Start()
	eng.At(50*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, 5*sim.Microsecond, nil)
	})
	eng.RunFor(5 * sim.Millisecond)

	if got := len(tb.Filter(trace.Sched)); got < 1 {
		t.Errorf("sched events = %d", got)
	}
	intrs := tb.Filter(trace.Intr)
	foundDisk := false
	for _, e := range intrs {
		if e.Label == "disk-intr" {
			foundDisk = true
		}
	}
	if !foundDisk {
		t.Errorf("no disk interrupt traced: %v", intrs)
	}
	if got := len(tb.Filter(trace.TriggerState)); got < 10 {
		t.Errorf("trigger events = %d, want many (idle polls)", got)
	}
	if got := len(tb.Filter(trace.IdleEnter)); got < 1 {
		t.Errorf("idle-enter events = %d", got)
	}
	// Events must be time-ordered.
	evs := tb.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	eng := sim.NewEngine(20)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: true})
	if k.Tracer() != nil {
		t.Fatal("tracer attached by default")
	}
	k.Start()
	eng.RunFor(sim.Millisecond) // must not panic without a tracer
}
