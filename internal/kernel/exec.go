package kernel

import (
	"fmt"

	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// segKind classifies a CPU work segment.
type segKind int

const (
	segUser segKind = iota
	segSyscall
	segTrap
)

// segment is a contiguous stretch of process work (user computation or a
// syscall/trap service). Interrupts preempt segments; the preempted segment
// resumes afterwards with the profile's pollution penalty added to its
// remaining work — the locality-shift cost the paper measures.
type segment struct {
	p         *Proc
	kind      segKind
	name      string
	remaining sim.Time
	startAt   sim.Time
	doneEv    sim.Event
	then      func()
}

// acctClass says which Accounting bucket a chain's work belongs to.
type acctClass int

const (
	acctKernel acctClass = iota
	acctSoftIRQ
	acctIntr
)

// ChainStep is one step of a kernel work chain: Work of CPU time, then Fn's
// side effects, then (if Src >= 0) a trigger state. The TCP/IP output loop
// is a chain with one SrcIPOutput step per transmitted packet.
type ChainStep struct {
	Work sim.Time
	Src  Source // use SrcNone for no trigger state
	Fn   func()
}

// SrcNone marks a chain step that is not a trigger state.
const SrcNone Source = -1

// intrReq is a pending hardware interrupt.
type intrReq struct {
	src  Source
	work sim.Time
	fn   func()
}

// softReq is a pending software interrupt: either a fixed chain of steps or
// a builder invoked at run time (so work that accumulates between posting
// and execution — e.g. packets queued by further interrupts — is all
// processed in one batch).
type softReq struct {
	steps []ChainStep
	build func() []ChainStep
}

// isIdle reports whether the CPU is in the idle state.
func (k *Kernel) isIdle() bool { return k.idle }

// RaiseInterrupt delivers a hardware interrupt: fixed entry cost, work of
// handler time, then fn's side effects, then an end-of-handler trigger
// state. If the CPU is already in interrupt context the request queues
// (interrupts disabled) and is serviced afterwards.
func (k *Kernel) RaiseInterrupt(src Source, work sim.Time, fn func()) {
	k.pendIntr = append(k.pendIntr, intrReq{src: src, work: work, fn: fn})
	k.kick()
}

// PostSoftIRQ queues a software interrupt that executes the given chain of
// steps (protocol processing). Software interrupts run after pending
// hardware interrupts and before any process resumes.
func (k *Kernel) PostSoftIRQ(steps ...ChainStep) {
	if len(steps) == 0 {
		return
	}
	k.pendSoft = append(k.pendSoft, softReq{steps: steps})
	k.kick()
}

// PostSoftIRQBuilder queues a software interrupt whose chain is built when
// it runs, batching everything that accumulated since posting.
func (k *Kernel) PostSoftIRQBuilder(build func() []ChainStep) {
	if build == nil {
		panic("kernel: nil softirq builder")
	}
	k.pendSoft = append(k.pendSoft, softReq{build: build})
	k.kick()
}

// Idle reports whether the CPU is currently in the idle loop (or halted
// idle). Soft-timer network polling uses this to re-enable interrupts when
// the system has nothing to do.
func (k *Kernel) Idle() bool { return k.idle }

// kick reacts to newly queued interrupt-context work: preempt the current
// segment or leave the idle loop. If the CPU is already in interrupt
// context, the queue drains when the current handler finishes.
func (k *Kernel) kick() {
	if k.inIntr {
		return
	}
	if k.seg != nil {
		k.preemptSeg()
		k.serviceIntr()
		return
	}
	if k.idle {
		k.stopIdle()
		k.serviceIntr()
		return
	}
	// The CPU is mid-transition inside the current engine event (e.g. a
	// continuation running right now); the transition's endpoint
	// (startSegment, dispatch) will notice the pending work.
}

// preemptSeg pauses the running segment: account its progress and cancel
// its completion. Pollution is charged when it resumes.
func (k *Kernel) preemptSeg() {
	s := k.seg
	if s == nil {
		panic("kernel: preempt with no segment")
	}
	elapsed := k.eng.Now() - s.startAt
	k.accountSeg(s, elapsed)
	s.remaining -= elapsed
	if s.remaining < 0 {
		s.remaining = 0
	}
	s.doneEv.Cancel()
	s.doneEv = sim.Event{}
	k.seg = nil
	if k.paused != nil {
		panic("kernel: double preemption")
	}
	k.paused = s
}

func (k *Kernel) accountSeg(s *segment, d sim.Time) {
	switch s.kind {
	case segUser:
		k.acct.User += d
	default:
		k.acct.Kernel += d
	}
}

// serviceIntr runs the next piece of interrupt-context work, or resumes the
// preempted segment / dispatches when none remains.
func (k *Kernel) serviceIntr() {
	if k.inIntr {
		panic("kernel: serviceIntr while in interrupt context")
	}
	if len(k.pendIntr) > 0 {
		req := k.pendIntr[0]
		k.pendIntr = k.pendIntr[1:]
		k.runIntr(req)
		return
	}
	if len(k.pendSoft) > 0 {
		req := k.pendSoft[0]
		k.pendSoft = k.pendSoft[1:]
		k.runSoft(req)
		return
	}
	if k.paused != nil {
		k.resumePaused()
		return
	}
	k.dispatch()
}

// runIntr executes one hardware interrupt: entry cost + handler work, side
// effects at the end, then the end-of-handler trigger state.
func (k *Kernel) runIntr(req intrReq) {
	k.inIntr = true
	k.acct.Interrupts++
	k.tr(trace.Intr, req.src.String(), 0)
	dur := k.prof.IntrDirect + k.prof.Work(req.work)
	k.acct.Intr += dur
	k.mIntr[req.src].Inc()
	k.mIntrNS[req.src].Add(int64(dur))
	// Fault-injected delivery jitter delays the handler's completion (the
	// controller asserted the line late) without charging CPU time — only
	// the handler's own dur lands in the interrupt accounting.
	k.eng.AfterLabeled(dur+k.opts.Faults.IntrJitter(), "intr:"+req.src.String(), func() {
		if req.fn != nil {
			req.fn() // side effects while interrupts still disabled
		}
		k.inIntr = false
		k.trigger(req.src, func() {
			if k.paused != nil {
				// Locality penalty inflicted on the interrupted work.
				k.paused.remaining += k.paused.p.pollute(k.prof.IntrPollution)
			}
			k.serviceIntr()
		})
	})
}

// runSoft executes one software interrupt: entry cost, then its chain.
func (k *Kernel) runSoft(req softReq) {
	k.inIntr = true
	k.tr(trace.SoftIRQ, "softirq", int64(len(req.steps)))
	k.acct.SoftIRQ += k.sirqDirect
	k.eng.After(k.sirqDirect, func() {
		steps := req.steps
		if req.build != nil {
			steps = req.build()
		}
		k.chainStep(steps, 0, acctSoftIRQ, func() {
			k.inIntr = false
			if k.paused != nil {
				k.paused.remaining += k.paused.p.pollute(k.sirqPollution)
			}
			k.serviceIntr()
		})
	})
}

// chainStep executes steps[i:] back to back in the current (interrupt-like)
// context, then done. inIntr must be true on entry and stays true
// throughout; triggers between steps extend the occupancy by any soft-timer
// handler time.
func (k *Kernel) chainStep(steps []ChainStep, i int, class acctClass, done func()) {
	if i >= len(steps) {
		done()
		return
	}
	st := steps[i]
	var w sim.Time
	switch class {
	case acctSoftIRQ:
		w = k.prof.Work(st.Work)
		k.acct.SoftIRQ += w
	case acctIntr:
		w = k.prof.Work(st.Work)
		k.acct.Intr += w
	default:
		// Kernel-context chains (syscall-driven protocol output loops)
		// carry the fault plan's CPU-cost perturbation.
		w = k.workFaulted(st.Work)
		k.acct.Kernel += w
	}
	k.eng.After(w, func() {
		if st.Fn != nil {
			st.Fn()
		}
		if st.Src >= 0 {
			k.triggerInCtx(st.Src, func() { k.chainStep(steps, i+1, class, done) })
			return
		}
		k.chainStep(steps, i+1, class, done)
	})
}

// triggerInCtx reports a trigger state from within occupied CPU context:
// soft-timer handler time simply extends the occupancy.
func (k *Kernel) triggerInCtx(src Source, cont func()) {
	if !k.opts.DisabledSources[src] && !k.starved(src) {
		k.tr(trace.TriggerState, src.String(), 0)
		k.meter.record(k.eng.Now(), src)
		if k.sink != nil {
			if consumed := k.sink.Trigger(src, k.eng.Now()); consumed > 0 {
				k.acct.SoftTimer += consumed
				k.eng.After(consumed, cont)
				return
			}
		}
	}
	cont()
}

// startSegment begins (or resumes) a segment, unless interrupt-context work
// is pending — that runs first, with the segment paused.
func (k *Kernel) startSegment(s *segment) {
	if k.inIntr {
		panic("kernel: startSegment in interrupt context")
	}
	if k.seg != nil {
		panic("kernel: startSegment with a segment already running")
	}
	if len(k.pendIntr) > 0 || len(k.pendSoft) > 0 {
		if k.paused != nil {
			panic("kernel: startSegment with another segment paused")
		}
		k.paused = s
		k.serviceIntr()
		return
	}
	// Quantum enforcement happens at user-segment boundaries, i.e. when
	// (re)starting user work — the model's analogue of "on return to
	// user mode".
	if k.reschedule && s.kind == segUser && len(k.runq) > 0 {
		k.reschedule = false
		p := s.p
		p.pending = s
		p.state = Ready
		p.readySince = k.eng.Now()
		k.runq = append(k.runq, p)
		k.running = nil
		k.switchNext()
		return
	}
	k.seg = s
	s.startAt = k.eng.Now()
	s.doneEv = k.eng.AtLabeled(k.eng.Now()+s.remaining, "seg:"+s.name, func() { k.finishSegment(s) })
}

// finishSegment completes a segment: account it, fire the trigger state for
// kernel-mode segments, and continue the process.
func (k *Kernel) finishSegment(s *segment) {
	k.accountSeg(s, k.eng.Now()-s.startAt)
	k.seg = nil
	p := s.p
	switch s.kind {
	case segSyscall:
		k.acct.Syscalls++
		k.trigger(SrcSyscall, func() { k.continueProc(p, s.then) })
	case segTrap:
		k.acct.Traps++
		k.trigger(SrcTrap, func() { k.continueProc(p, s.then) })
	default:
		k.continueProc(p, s.then)
	}
}

// continueProc runs a process continuation; if it performs no further
// operation the process exits.
func (k *Kernel) continueProc(p *Proc, then func()) {
	if k.running != p {
		panic(fmt.Sprintf("kernel: continueProc for %q but running is not it", p.Name))
	}
	p.acted = false
	if then != nil {
		then()
	}
	if !p.acted && p.state == Running {
		k.exitProc(p)
	}
}

func (k *Kernel) exitProc(p *Proc) {
	p.acted = true
	p.state = Exited
	if k.running == p {
		k.running = nil
		k.dispatch()
	}
}

// resumePaused restarts the segment that interrupt context preempted.
func (k *Kernel) resumePaused() {
	s := k.paused
	k.paused = nil
	k.startSegment(s)
}

// dispatch gives the CPU to the highest-priority ready work: interrupt
// context, a preempted segment, a ready process, or the idle loop.
func (k *Kernel) dispatch() {
	if k.inIntr || k.seg != nil {
		return // busy; completion will dispatch again
	}
	if len(k.pendIntr) > 0 || len(k.pendSoft) > 0 {
		k.serviceIntr()
		return
	}
	if k.paused != nil {
		k.resumePaused()
		return
	}
	if k.running != nil {
		return // a continuation is in flight for the running process
	}
	if len(k.runq) > 0 {
		k.switchNext()
		return
	}
	k.goIdle()
}

// switchNext context-switches to the best ready process: highest effective
// priority, FIFO within a level. Effective priority rises with time spent
// waiting (one level per StarveBoost), so low-priority compute processes
// still receive occasional timeslices on a saturated system.
func (k *Kernel) switchNext() {
	now := k.eng.Now()
	eff := func(p *Proc) int {
		e := p.Priority
		if k.opts.StarveBoost > 0 {
			e += int((now - p.readySince) / k.opts.StarveBoost)
		}
		return e
	}
	best := 0
	for i := 1; i < len(k.runq); i++ {
		if eff(k.runq[i]) > eff(k.runq[best]) {
			best = i
		}
	}
	p := k.runq[best]
	k.runq = append(k.runq[:best], k.runq[best+1:]...)
	if p.state != Ready {
		panic(fmt.Sprintf("kernel: runq proc %q in state %d", p.Name, p.state))
	}
	p.state = Running
	k.running = p
	k.tr(trace.Sched, p.Name, int64(p.ID))
	p.quantumStart = k.eng.Now()
	// Switching between two processes pays the switch cost; the very
	// first dispatch after boot has no prior context to save.
	switched := k.lastRun != nil && p != k.lastRun
	k.lastRun = p
	resume := func() {
		if p.pending != nil {
			s := p.pending
			p.pending = nil
			if switched {
				s.remaining += p.pollute(k.prof.CtxPollution)
			}
			k.startSegment(s)
			return
		}
		if p.resume != nil {
			r := p.resume
			p.resume = nil
			if switched {
				p.polluteNext = true
			}
			k.continueProc(p, r)
			return
		}
		k.exitProc(p)
	}
	if switched {
		k.acct.Switches++
		k.acct.CtxSwitch += k.prof.CtxSwitch
		k.inIntr = true // switch code is non-preemptible
		k.eng.After(k.prof.CtxSwitch, func() {
			k.inIntr = false
			resume()
		})
		return
	}
	resume()
}

// goIdle parks the CPU. With the idle loop enabled, each iteration is a
// trigger state at IdlePoll granularity; otherwise — or when IdleHalt is
// set and no soft-timer event is due before the next hardclock tick — the
// CPU halts until the next interrupt.
func (k *Kernel) goIdle() {
	if k.idle {
		return
	}
	k.idle = true
	k.idleSince = k.eng.Now()
	k.mIdleEnter.Inc()
	k.tr(trace.IdleEnter, "idle", 0)
	if !k.opts.IdleLoop {
		return
	}
	if k.opts.IdleHalt {
		if adv, ok := k.sink.(IdleAdvisor); ok {
			nextTick := sim.Time(k.tick+1) * k.TickPeriod()
			if !adv.EventBefore(nextTick) {
				k.acct.IdleHalts++
				return // halt: the hardclock's own trigger state backstops
			}
		}
	}
	k.idleEv = k.eng.AfterLabeled(k.prof.IdlePoll, "idle", k.idleTick)
}

func (k *Kernel) idleTick() {
	// Account the idle stretch, leave idle for the duration of the
	// trigger (soft handlers may run), then either dispatch real work or
	// resume idling.
	k.stopIdle()
	k.trigger(SrcIdle, func() {
		if len(k.pendIntr) > 0 || len(k.pendSoft) > 0 {
			k.serviceIntr()
			return
		}
		if len(k.runq) > 0 {
			k.dispatch()
			return
		}
		k.goIdle()
	})
}

// NudgeIdle re-evaluates a halted idle CPU's decision not to poll. The
// soft-timer facility calls it when a new event is scheduled: if the event
// is now due before the next hardclock tick, the idle loop resumes
// polling. (On real hardware the halt re-evaluation happens on the way
// back to idle after whatever context scheduled the event.)
func (k *Kernel) NudgeIdle() {
	if !k.idle || k.idleEv.Pending() || !k.opts.IdleLoop {
		return
	}
	adv, ok := k.sink.(IdleAdvisor)
	if k.opts.IdleHalt && ok {
		nextTick := sim.Time(k.tick+1) * k.TickPeriod()
		if !adv.EventBefore(nextTick) {
			return // stay halted
		}
	}
	k.idleEv = k.eng.AfterLabeled(k.prof.IdlePoll, "idle", k.idleTick)
}

// stopIdle leaves the idle state, accumulating idle time.
func (k *Kernel) stopIdle() {
	if !k.idle {
		return
	}
	k.acct.Idle += k.eng.Now() - k.idleSince
	k.idle = false
	k.tr(trace.IdleExit, "idle", 0)
	k.idleEv.Cancel()
	k.idleEv = sim.Event{}
}
