package kernel

import (
	"fmt"

	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// segKind classifies a CPU work segment.
type segKind int

const (
	segUser segKind = iota
	segSyscall
	segTrap
)

// segment is a contiguous stretch of process work (user computation or a
// syscall/trap service). Interrupts preempt segments; the preempted segment
// resumes afterwards with the profile's pollution penalty added to its
// remaining work — the locality-shift cost the paper measures.
type segment struct {
	p         *Proc
	kind      segKind
	name      string
	remaining sim.Time
	startAt   sim.Time
	doneEv    sim.Event
	then      func()

	// Pool bookkeeping: segments recycle on the kernel's free list, and
	// each carries its completion closure bound once at first allocation
	// so (re)scheduling a segment allocates nothing.
	nextFree *segment
	finFn    func()
}

// acctClass says which Accounting bucket a chain's work belongs to.
type acctClass int

const (
	acctKernel acctClass = iota
	acctSoftIRQ
	acctIntr
)

// ChainStep is one step of a kernel work chain: Work of CPU time, then Fn's
// side effects, then (if Src >= 0) a trigger state. The TCP/IP output loop
// is a chain with one SrcIPOutput step per transmitted packet.
type ChainStep struct {
	Work sim.Time
	Src  Source // use SrcNone for no trigger state
	Fn   func()
}

// SrcNone marks a chain step that is not a trigger state.
const SrcNone Source = -1

// intrReq is a pending hardware interrupt.
type intrReq struct {
	src  Source
	work sim.Time
	fn   func()
}

// softReq is a pending software interrupt: a fixed chain of steps, a
// builder invoked at run time (so work that accumulates between posting
// and execution — e.g. packets queued by further interrupts — is all
// processed in one batch), or a Chain value driven step by step. n is the
// step count known at post time, recorded in the trace (builders and
// batching chains post 0, exactly as the builder form always has).
type softReq struct {
	steps []ChainStep
	build func() []ChainStep
	chain Chain
	n     int
}

// Chain is the allocation-free softirq work form: instead of materializing
// a []ChainStep (a slice plus one closure per step), the poster hands the
// kernel a reusable object it drives step by step. Begin is called when
// the softirq actually runs — after the entry cost, like the builder form
// — so work that accumulated since posting is batched; it returns the
// step count. Step reports step i's CPU work and trigger source (SrcNone
// for none); Run performs its side effects; End is called after the last
// step, where a pooled chain recycles itself.
type Chain interface {
	Begin() int
	Step(i int) (work sim.Time, src Source)
	Run(i int)
	End()
}

// isIdle reports whether the CPU is in the idle state.
func (k *Kernel) isIdle() bool { return k.idle }

// RaiseInterrupt delivers a hardware interrupt: fixed entry cost, work of
// handler time, then fn's side effects, then an end-of-handler trigger
// state. If the CPU is already in interrupt context the request queues
// (interrupts disabled) and is serviced afterwards.
func (k *Kernel) RaiseInterrupt(src Source, work sim.Time, fn func()) {
	k.pendIntr = append(k.pendIntr, intrReq{src: src, work: work, fn: fn})
	k.kick()
}

// PostSoftIRQ queues a software interrupt that executes the given chain of
// steps (protocol processing). Software interrupts run after pending
// hardware interrupts and before any process resumes.
func (k *Kernel) PostSoftIRQ(steps ...ChainStep) {
	if len(steps) == 0 {
		return
	}
	k.pendSoft = append(k.pendSoft, softReq{steps: steps, n: len(steps)})
	k.kick()
}

// PostSoftIRQBuilder queues a software interrupt whose chain is built when
// it runs, batching everything that accumulated since posting.
func (k *Kernel) PostSoftIRQBuilder(build func() []ChainStep) {
	if build == nil {
		panic("kernel: nil softirq builder")
	}
	k.pendSoft = append(k.pendSoft, softReq{build: build})
	k.kick()
}

// PostSoftIRQChain queues a software interrupt driven through the Chain
// interface — the zero-allocation form of PostSoftIRQ/PostSoftIRQBuilder.
// n is the post-time step count recorded in the trace: pass the known
// length for a fixed chain, 0 for one that batches at run time (matching
// the builder form's trace).
func (k *Kernel) PostSoftIRQChain(c Chain, n int) {
	if c == nil {
		panic("kernel: nil softirq chain")
	}
	k.pendSoft = append(k.pendSoft, softReq{chain: c, n: n})
	k.kick()
}

// Idle reports whether the CPU is currently in the idle loop (or halted
// idle). Soft-timer network polling uses this to re-enable interrupts when
// the system has nothing to do.
func (k *Kernel) Idle() bool { return k.idle }

// kick reacts to newly queued interrupt-context work: preempt the current
// segment or leave the idle loop. If the CPU is already in interrupt
// context, the queue drains when the current handler finishes.
func (k *Kernel) kick() {
	if k.inIntr {
		return
	}
	if k.seg != nil {
		k.preemptSeg()
		k.serviceIntr()
		return
	}
	if k.idle {
		k.stopIdle()
		k.serviceIntr()
		return
	}
	// The CPU is mid-transition inside the current engine event (e.g. a
	// continuation running right now); the transition's endpoint
	// (startSegment, dispatch) will notice the pending work.
}

// preemptSeg pauses the running segment: account its progress and cancel
// its completion. Pollution is charged when it resumes.
func (k *Kernel) preemptSeg() {
	s := k.seg
	if s == nil {
		panic("kernel: preempt with no segment")
	}
	elapsed := k.eng.Now() - s.startAt
	k.accountSeg(s, elapsed)
	s.remaining -= elapsed
	if s.remaining < 0 {
		s.remaining = 0
	}
	s.doneEv.Cancel()
	s.doneEv = sim.Event{}
	k.seg = nil
	if k.paused != nil {
		panic("kernel: double preemption")
	}
	k.paused = s
}

func (k *Kernel) accountSeg(s *segment, d sim.Time) {
	switch s.kind {
	case segUser:
		k.acct.User += d
	default:
		k.acct.Kernel += d
	}
}

// intrPending reports whether any interrupt-context work is queued.
func (k *Kernel) intrPending() bool {
	return k.intrHead < len(k.pendIntr) || k.softHead < len(k.pendSoft)
}

// serviceIntr runs the next piece of interrupt-context work, or resumes the
// preempted segment / dispatches when none remains. The pending queues are
// head-indexed rings: popping advances a cursor and draining resets the
// slice, so steady-state servicing reuses one backing array instead of
// reallocating on every append after a [1:] reslice.
func (k *Kernel) serviceIntr() {
	if k.inIntr {
		panic("kernel: serviceIntr while in interrupt context")
	}
	if k.intrHead < len(k.pendIntr) {
		req := k.pendIntr[k.intrHead]
		k.pendIntr[k.intrHead] = intrReq{}
		k.intrHead++
		if k.intrHead == len(k.pendIntr) {
			k.pendIntr = k.pendIntr[:0]
			k.intrHead = 0
		}
		k.runIntr(req)
		return
	}
	if k.softHead < len(k.pendSoft) {
		req := k.pendSoft[k.softHead]
		k.pendSoft[k.softHead] = softReq{}
		k.softHead++
		if k.softHead == len(k.pendSoft) {
			k.pendSoft = k.pendSoft[:0]
			k.softHead = 0
		}
		k.runSoft(req)
		return
	}
	if k.paused != nil {
		k.resumePaused()
		return
	}
	k.dispatch()
}

// intrLabel returns the precomputed "intr:<source>" event label.
func intrLabel(src Source) string {
	if src >= 0 && int(src) < len(intrLabels) {
		return intrLabels[src]
	}
	return "intr:" + src.String()
}

var intrLabels = func() [numSources]string {
	var a [numSources]string
	for i := range a {
		a[i] = "intr:" + Source(i).String()
	}
	return a
}()

// runIntr executes one hardware interrupt: entry cost + handler work, side
// effects at the end, then the end-of-handler trigger state. Only one
// hardware interrupt executes at a time (further ones queue with
// interrupts disabled), so the in-flight request parks in curIntr and the
// completion closures are bound once at construction.
func (k *Kernel) runIntr(req intrReq) {
	k.inIntr = true
	k.acct.Interrupts++
	k.tr(trace.Intr, req.src.String(), 0)
	dur := k.prof.IntrDirect + k.prof.Work(req.work)
	k.acct.Intr += dur
	k.mIntr[req.src].Inc()
	k.mIntrNS[req.src].Add(int64(dur))
	k.curIntr = req
	// Fault-injected delivery jitter delays the handler's completion (the
	// controller asserted the line late) without charging CPU time — only
	// the handler's own dur lands in the interrupt accounting.
	k.eng.AfterLabeled(dur+k.opts.Faults.IntrJitter(), intrLabel(req.src), k.intrBodyFn)
}

// intrBody is the deferred tail of runIntr (bound once as intrBodyFn).
func (k *Kernel) intrBody() {
	req := k.curIntr
	k.curIntr = intrReq{}
	if req.fn != nil {
		req.fn() // side effects while interrupts still disabled
	}
	k.inIntr = false
	k.trigger(req.src, k.intrContFn)
}

// intrCont runs after the end-of-handler trigger state (bound once).
func (k *Kernel) intrCont() {
	if k.paused != nil {
		// Locality penalty inflicted on the interrupted work.
		k.paused.remaining += k.paused.p.pollute(k.prof.IntrPollution)
	}
	k.serviceIntr()
}

// runSoft executes one software interrupt: entry cost, then its chain.
// Like hardware interrupts, at most one is in flight per kernel.
func (k *Kernel) runSoft(req softReq) {
	k.inIntr = true
	k.tr(trace.SoftIRQ, "softirq", int64(req.n))
	k.acct.SoftIRQ += k.sirqDirect
	k.curSoft = req
	k.eng.After(k.sirqDirect, k.softBodyFn)
}

// softBody starts the softirq's chain after the entry cost (bound once).
func (k *Kernel) softBody() {
	req := k.curSoft
	k.curSoft = softReq{}
	steps := req.steps
	if req.build != nil {
		steps = req.build()
	}
	k.chainStart(steps, req.chain, acctSoftIRQ, k.softDoneFn)
}

// softDone finishes the softirq (bound once).
func (k *Kernel) softDone() {
	k.inIntr = false
	if k.paused != nil {
		k.paused.remaining += k.paused.p.pollute(k.sirqPollution)
	}
	k.serviceIntr()
}

// chainStart begins executing a work chain — either a []ChainStep slice or
// a Chain value — in the current (interrupt-like) context, then done.
// inIntr must be true on entry and stays true throughout; triggers between
// steps extend the occupancy by any soft-timer handler time. At most one
// chain runs at a time per kernel (chains execute inside interrupt or
// syscall context, both exclusive), so the walk state lives in fields and
// the step closures are bound once at construction.
func (k *Kernel) chainStart(steps []ChainStep, c Chain, class acctClass, done func()) {
	if k.chDone != nil {
		panic("kernel: nested work chain")
	}
	k.chSteps, k.chChain, k.chClass, k.chDone = steps, c, class, done
	if c != nil {
		k.chLen = c.Begin()
	} else {
		k.chLen = len(steps)
	}
	k.chIdx = 0
	k.chainNext()
}

// chainNext schedules step chIdx's work, or finishes the chain.
func (k *Kernel) chainNext() {
	if k.chIdx >= k.chLen {
		done, c := k.chDone, k.chChain
		k.chSteps, k.chChain, k.chDone = nil, nil, nil
		if c != nil {
			c.End()
		}
		done()
		return
	}
	var w sim.Time
	var src Source
	if k.chChain != nil {
		w, src = k.chChain.Step(k.chIdx)
	} else {
		st := &k.chSteps[k.chIdx]
		w, src = st.Work, st.Src
	}
	k.chSrc = src
	switch k.chClass {
	case acctSoftIRQ:
		w = k.prof.Work(w)
		k.acct.SoftIRQ += w
	case acctIntr:
		w = k.prof.Work(w)
		k.acct.Intr += w
	default:
		// Kernel-context chains (syscall-driven protocol output loops)
		// carry the fault plan's CPU-cost perturbation.
		w = k.workFaulted(w)
		k.acct.Kernel += w
	}
	k.eng.After(w, k.chRunFn)
}

// chainRun performs the current step's side effects after its work time
// (bound once as chRunFn), then advances — via the step's trigger state
// when it has one.
func (k *Kernel) chainRun() {
	i := k.chIdx
	k.chIdx++
	if k.chChain != nil {
		k.chChain.Run(i)
	} else if fn := k.chSteps[i].Fn; fn != nil {
		fn()
	}
	if k.chSrc >= 0 {
		k.triggerInCtx(k.chSrc, k.chNextFn)
		return
	}
	k.chainNext()
}

// procChainDone finishes a Proc.Chain / Proc.ChainC (bound once).
func (k *Kernel) procChainDone() {
	p, then := k.chProc, k.chThen
	k.chProc, k.chThen = nil, nil
	k.inIntr = false
	k.continueProc(p, then)
}

// triggerInCtx reports a trigger state from within occupied CPU context:
// soft-timer handler time simply extends the occupancy.
func (k *Kernel) triggerInCtx(src Source, cont func()) {
	if !k.opts.DisabledSources[src] && !k.starved(src) {
		k.tr(trace.TriggerState, src.String(), 0)
		k.meter.record(k.eng.Now(), src)
		if k.sink != nil {
			if consumed := k.sink.Trigger(src, k.eng.Now()); consumed > 0 {
				k.acct.SoftTimer += consumed
				k.eng.After(consumed, cont)
				return
			}
		}
	}
	cont()
}

// startSegment begins (or resumes) a segment, unless interrupt-context work
// is pending — that runs first, with the segment paused.
func (k *Kernel) startSegment(s *segment) {
	if k.inIntr {
		panic("kernel: startSegment in interrupt context")
	}
	if k.seg != nil {
		panic("kernel: startSegment with a segment already running")
	}
	if k.intrPending() {
		if k.paused != nil {
			panic("kernel: startSegment with another segment paused")
		}
		k.paused = s
		k.serviceIntr()
		return
	}
	// Quantum enforcement happens at user-segment boundaries, i.e. when
	// (re)starting user work — the model's analogue of "on return to
	// user mode".
	if k.reschedule && s.kind == segUser && len(k.runq) > 0 {
		k.reschedule = false
		p := s.p
		p.pending = s
		p.state = Ready
		p.readySince = k.eng.Now()
		k.runq = append(k.runq, p)
		k.running = nil
		k.switchNext()
		return
	}
	k.seg = s
	s.startAt = k.eng.Now()
	s.doneEv = k.eng.AtLabeled(k.eng.Now()+s.remaining, k.segLabel(s.name), s.finFn)
}

// segLabel memoizes "seg:<name>" labels — segment names are a small fixed
// vocabulary per workload, so the label concat happens once per name.
func (k *Kernel) segLabel(name string) string {
	l, ok := k.segLabels[name]
	if !ok {
		l = "seg:" + name
		k.segLabels[name] = l
	}
	return l
}

// finishSegment completes a segment: account it, fire the trigger state for
// kernel-mode segments, and continue the process. The segment recycles
// here — its fields are stashed first, and only finishSegment ends a
// segment's lifetime (preemption keeps it alive as paused/pending).
func (k *Kernel) finishSegment(s *segment) {
	k.accountSeg(s, k.eng.Now()-s.startAt)
	k.seg = nil
	p, then, kind := s.p, s.then, s.kind
	k.freeSegment(s)
	switch kind {
	case segSyscall:
		k.acct.Syscalls++
		k.finProc, k.finThen = p, then
		k.trigger(SrcSyscall, k.segContFn)
	case segTrap:
		k.acct.Traps++
		k.finProc, k.finThen = p, then
		k.trigger(SrcTrap, k.segContFn)
	default:
		k.continueProc(p, then)
	}
}

// segCont continues the process whose segment just finished (bound once;
// at most one segment completion is in flight per kernel).
func (k *Kernel) segCont() {
	p, then := k.finProc, k.finThen
	k.finProc, k.finThen = nil, nil
	k.continueProc(p, then)
}

// newSegment takes a segment from the free list (or grows it), binding the
// completion closure exactly once per pooled object.
func (k *Kernel) newSegment() *segment {
	s := k.segFree
	if s == nil {
		s = &segment{}
		s.finFn = func() { k.finishSegment(s) }
	} else {
		k.segFree = s.nextFree
		s.nextFree = nil
	}
	return s
}

// freeSegment recycles a finished segment.
func (k *Kernel) freeSegment(s *segment) {
	s.p, s.then = nil, nil
	s.name = ""
	s.doneEv = sim.Event{}
	s.nextFree = k.segFree
	k.segFree = s
}

// continueProc runs a process continuation; if it performs no further
// operation the process exits.
func (k *Kernel) continueProc(p *Proc, then func()) {
	if k.running != p {
		panic(fmt.Sprintf("kernel: continueProc for %q but running is not it", p.Name))
	}
	p.acted = false
	if then != nil {
		then()
	}
	if !p.acted && p.state == Running {
		k.exitProc(p)
	}
}

func (k *Kernel) exitProc(p *Proc) {
	p.acted = true
	p.state = Exited
	if k.running == p {
		k.running = nil
		k.dispatch()
	}
}

// resumePaused restarts the segment that interrupt context preempted.
func (k *Kernel) resumePaused() {
	s := k.paused
	k.paused = nil
	k.startSegment(s)
}

// dispatch gives the CPU to the highest-priority ready work: interrupt
// context, a preempted segment, a ready process, or the idle loop.
func (k *Kernel) dispatch() {
	if k.inIntr || k.seg != nil {
		return // busy; completion will dispatch again
	}
	if k.intrPending() {
		k.serviceIntr()
		return
	}
	if k.paused != nil {
		k.resumePaused()
		return
	}
	if k.running != nil {
		return // a continuation is in flight for the running process
	}
	if len(k.runq) > 0 {
		k.switchNext()
		return
	}
	k.goIdle()
}

// switchNext context-switches to the best ready process: highest effective
// priority, FIFO within a level. Effective priority rises with time spent
// waiting (one level per StarveBoost), so low-priority compute processes
// still receive occasional timeslices on a saturated system.
func (k *Kernel) switchNext() {
	now := k.eng.Now()
	eff := func(p *Proc) int {
		e := p.Priority
		if k.opts.StarveBoost > 0 {
			e += int((now - p.readySince) / k.opts.StarveBoost)
		}
		return e
	}
	best := 0
	for i := 1; i < len(k.runq); i++ {
		if eff(k.runq[i]) > eff(k.runq[best]) {
			best = i
		}
	}
	p := k.runq[best]
	k.runq = append(k.runq[:best], k.runq[best+1:]...)
	if p.state != Ready {
		panic(fmt.Sprintf("kernel: runq proc %q in state %d", p.Name, p.state))
	}
	p.state = Running
	k.running = p
	k.tr(trace.Sched, p.Name, int64(p.ID))
	p.quantumStart = k.eng.Now()
	// Switching between two processes pays the switch cost; the very
	// first dispatch after boot has no prior context to save.
	switched := k.lastRun != nil && p != k.lastRun
	k.lastRun = p
	if switched {
		k.acct.Switches++
		k.acct.CtxSwitch += k.prof.CtxSwitch
		k.inIntr = true // switch code is non-preemptible
		k.swProc = p
		k.eng.After(k.prof.CtxSwitch, k.swResumeFn)
		return
	}
	k.resumeProc(p, false)
}

// swResume is the deferred tail of a paid context switch (bound once; the
// switch code is non-preemptible, so only one is in flight).
func (k *Kernel) swResume() {
	k.inIntr = false
	p := k.swProc
	k.swProc = nil
	k.resumeProc(p, true)
}

// resumeProc hands the CPU to the freshly scheduled process.
func (k *Kernel) resumeProc(p *Proc, switched bool) {
	if p.pending != nil {
		s := p.pending
		p.pending = nil
		if switched {
			s.remaining += p.pollute(k.prof.CtxPollution)
		}
		k.startSegment(s)
		return
	}
	if p.resume != nil {
		r := p.resume
		p.resume = nil
		if switched {
			p.polluteNext = true
		}
		k.continueProc(p, r)
		return
	}
	k.exitProc(p)
}

// goIdle parks the CPU. With the idle loop enabled, each iteration is a
// trigger state at IdlePoll granularity; otherwise — or when IdleHalt is
// set and no soft-timer event is due before the next hardclock tick — the
// CPU halts until the next interrupt.
func (k *Kernel) goIdle() {
	if k.idle {
		return
	}
	k.idle = true
	k.idleSince = k.eng.Now()
	k.mIdleEnter.Inc()
	k.tr(trace.IdleEnter, "idle", 0)
	if !k.opts.IdleLoop {
		return
	}
	if k.opts.IdleHalt {
		if adv, ok := k.sink.(IdleAdvisor); ok {
			nextTick := sim.Time(k.tick+1) * k.TickPeriod()
			if !adv.EventBefore(nextTick) {
				k.acct.IdleHalts++
				return // halt: the hardclock's own trigger state backstops
			}
		}
	}
	k.idleEv = k.eng.AfterLabeled(k.prof.IdlePoll, "idle", k.idleTickFn)
}

func (k *Kernel) idleTick() {
	// Account the idle stretch, leave idle for the duration of the
	// trigger (soft handlers may run), then either dispatch real work or
	// resume idling.
	k.stopIdle()
	k.trigger(SrcIdle, k.idleContFn)
}

// idleCont resumes after an idle-loop trigger state (bound once).
func (k *Kernel) idleCont() {
	if k.intrPending() {
		k.serviceIntr()
		return
	}
	if len(k.runq) > 0 {
		k.dispatch()
		return
	}
	k.goIdle()
}

// NudgeIdle re-evaluates a halted idle CPU's decision not to poll. The
// soft-timer facility calls it when a new event is scheduled: if the event
// is now due before the next hardclock tick, the idle loop resumes
// polling. (On real hardware the halt re-evaluation happens on the way
// back to idle after whatever context scheduled the event.)
func (k *Kernel) NudgeIdle() {
	if !k.idle || k.idleEv.Pending() || !k.opts.IdleLoop {
		return
	}
	adv, ok := k.sink.(IdleAdvisor)
	if k.opts.IdleHalt && ok {
		nextTick := sim.Time(k.tick+1) * k.TickPeriod()
		if !adv.EventBefore(nextTick) {
			return // stay halted
		}
	}
	k.idleEv = k.eng.AfterLabeled(k.prof.IdlePoll, "idle", k.idleTickFn)
}

// stopIdle leaves the idle state, accumulating idle time.
func (k *Kernel) stopIdle() {
	if !k.idle {
		return
	}
	k.acct.Idle += k.eng.Now() - k.idleSince
	k.idle = false
	k.tr(trace.IdleExit, "idle", 0)
	k.idleEv.Cancel()
	k.idleEv = sim.Event{}
}
