package kernel

import (
	"testing"
	"testing/quick"

	"softtimers/internal/cpu"
	"softtimers/internal/sim"
)

// TestPropertyAccountingConservation: under arbitrary mixes of processes,
// interrupts, softirqs and sleeps, accounted busy + idle time equals
// elapsed simulated time (within one in-flight segment of slack), and no
// counter goes negative.
func TestPropertyAccountingConservation(t *testing.T) {
	f := func(seed uint64, nprocRaw, intrRateRaw, sirqRateRaw uint8) bool {
		eng := sim.NewEngine(seed)
		k := New(eng, cpu.PentiumII300(), Options{IdleLoop: seed%2 == 0})
		rng := eng.Rand().Fork()
		nproc := int(nprocRaw%4) + 1
		var wq WaitQueue
		for i := 0; i < nproc; i++ {
			k.Spawn("p", func(p *Proc) {
				var loop func()
				loop = func() {
					p.Compute(rng.ExpTime(80*sim.Microsecond), func() {
						switch rng.Intn(4) {
						case 0:
							p.Syscall("s", rng.ExpTime(15*sim.Microsecond), loop)
						case 1:
							p.Trap("t", rng.ExpTime(8*sim.Microsecond), loop)
						case 2:
							p.Sleep(&wq, loop)
						default:
							p.Yield(loop)
						}
					})
				}
				loop()
			})
		}
		k.Start()
		// Random interrupt and softirq storms; interrupts also wake
		// sleepers so the system never wedges.
		intrGap := sim.Time(intrRateRaw%200+20) * sim.Microsecond
		var storm func()
		storm = func() {
			k.RaiseInterrupt(SrcDisk, rng.ExpTime(4*sim.Microsecond), func() {
				wq.WakeAll()
			})
			if sirqRateRaw%3 == 0 {
				k.PostSoftIRQ(ChainStep{Work: rng.ExpTime(6 * sim.Microsecond), Src: SrcTCPIPOther})
			}
			eng.After(rng.ExpTime(intrGap), storm)
		}
		eng.After(sim.Millisecond, storm)

		total := 200 * sim.Millisecond
		eng.RunFor(total)
		a := k.Accounting()
		sum := a.Busy() + a.Idle
		diff := total - sum
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*sim.Millisecond {
			return false
		}
		for _, v := range []sim.Time{a.User, a.Kernel, a.Intr, a.SoftIRQ, a.CtxSwitch, a.Idle} {
			if v < 0 {
				return false
			}
		}
		return a.Interrupts > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTriggerTimesMonotone: the meter's trigger timestamps never
// decrease and intervals are never negative, regardless of workload.
func TestPropertyTriggerMonotone(t *testing.T) {
	f := func(seed uint64, loadRaw uint8) bool {
		eng := sim.NewEngine(seed)
		k := New(eng, cpu.PentiumII300(), Options{IdleLoop: true})
		rng := eng.Rand().Fork()
		k.Spawn("w", func(p *Proc) {
			var loop func()
			loop = func() {
				p.Compute(rng.ExpTime(sim.Time(loadRaw%50+1)*sim.Microsecond), func() {
					p.Syscall("s", 3*sim.Microsecond, loop)
				})
			}
			loop()
		})
		ok := true
		var last sim.Time = -1
		k.Meter().Trace = func(now sim.Time, iv sim.Time, _ Source) {
			if now < last || iv < 0 {
				ok = false
			}
			last = now
		}
		k.Start()
		eng.RunFor(50 * sim.Millisecond)
		return ok && k.Meter().N() > 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChainInterleavedWithInterrupts: interrupts arriving during a kernel
// chain are queued (SPL raised) and serviced after it, and the chain's
// trigger states all still fire.
func TestChainInterleavedWithInterrupts(t *testing.T) {
	eng := sim.NewEngine(5)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	var order []string
	k.Spawn("w", func(p *Proc) {
		p.Syscall("send", 5*sim.Microsecond, func() {
			steps := []ChainStep{
				{Work: 20 * sim.Microsecond, Src: SrcIPOutput, Fn: func() { order = append(order, "pkt1") }},
				{Work: 20 * sim.Microsecond, Src: SrcIPOutput, Fn: func() { order = append(order, "pkt2") }},
			}
			p.Chain(steps, func() { p.Exit() })
		})
	})
	k.Start()
	// Interrupt lands mid-chain (during the first step).
	eng.At(15*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, 2*sim.Microsecond, func() { order = append(order, "disk") })
	})
	eng.RunFor(sim.Millisecond)
	want := []string{"pkt1", "pkt2", "disk"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want chain to complete before queued interrupt", order)
		}
	}
	if got := k.Meter().BySource[SrcIPOutput]; got != 2 {
		t.Fatalf("ip-output triggers = %d", got)
	}
}

// TestStarvationAgingGivesHogTimeslices: a nice'd compute hog on a fully
// loaded system still receives occasional CPU via aging.
func TestStarvationAgingGivesHogTimeslices(t *testing.T) {
	eng := sim.NewEngine(6)
	k := New(eng, cpu.PentiumII300(), Options{
		IdleLoop:    false,
		StarveBoost: 100 * sim.Millisecond,
	})
	// A high-priority proc that never blocks, only yields to itself via
	// syscalls — keeps the CPU busy forever.
	k.Spawn("busy", func(p *Proc) {
		var loop func()
		loop = func() {
			p.Compute(50*sim.Microsecond, func() { p.Syscall("s", 5*sim.Microsecond, loop) })
		}
		loop()
	})
	// Each completed loop iteration represents exactly 1ms of hog CPU
	// time, however long the hog waited in between.
	hogLoops := 0
	hog := k.Spawn("hog", func(p *Proc) {
		var loop func()
		loop = func() {
			p.Compute(sim.Millisecond, func() {
				hogLoops++
				loop()
			})
		}
		loop()
	})
	hog.Priority = -1
	k.Start()
	eng.RunFor(2 * sim.Second)
	if hogLoops == 0 {
		t.Fatal("aging never gave the hog a timeslice")
	}
	frac := float64(hogLoops) * sim.Millisecond.Seconds() / 2
	if frac > 0.25 {
		t.Fatalf("hog got %.0f%% of the CPU; aging too generous", frac*100)
	}
	// With a 100ms StarveBoost and tick-granularity preemption by the
	// higher-priority process, the hog gets ~one 1ms slice per aging
	// period: ~1% of the CPU.
	if frac < 0.003 {
		t.Fatalf("hog got only %.2f%% of the CPU; aging ineffective", frac*100)
	}
}

// TestWakeAllFromProcContext: a process waking others keeps running; the
// woken ones queue behind it.
func TestWakeAllFromProcContext(t *testing.T) {
	eng := sim.NewEngine(7)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	var wq WaitQueue
	var order []string
	for i := 0; i < 2; i++ {
		name := string(rune('a' + i))
		k.Spawn("sleeper-"+name, func(p *Proc) {
			p.Sleep(&wq, func() {
				order = append(order, name)
				p.Exit()
			})
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Compute(50*sim.Microsecond, func() {
			wq.WakeAll()
			p.Compute(30*sim.Microsecond, func() {
				order = append(order, "waker-done")
				p.Exit()
			})
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	if len(order) != 3 || order[0] != "waker-done" {
		t.Fatalf("order = %v, want waker to finish its slice first", order)
	}
}

// TestDoubleSleepPanics guards the WaitQueue contract.
func TestWakeOfRunningPanics(t *testing.T) {
	eng := sim.NewEngine(8)
	k := New(eng, cpu.PentiumII300(), Options{IdleLoop: false})
	var wq WaitQueue
	k.Spawn("p", func(p *Proc) {
		// Manually corrupt: put a running proc on a wait queue.
		wq.ps = append(wq.ps, p)
		p.Compute(10*sim.Microsecond, func() { p.Exit() })
	})
	k.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("waking a non-blocked proc did not panic")
		}
	}()
	eng.At(sim.Microsecond, func() { wq.WakeOne() })
	eng.RunFor(sim.Millisecond)
}
