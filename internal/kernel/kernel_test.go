package kernel

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/sim"
)

// newTestKernel builds a kernel on a fresh engine with the baseline CPU.
func newTestKernel(opts Options) (*sim.Engine, *Kernel) {
	eng := sim.NewEngine(42)
	k := New(eng, cpu.PentiumII300(), opts)
	return eng, k
}

func TestProcComputeRunsAndExits(t *testing.T) {
	eng, k := newTestKernel(Options{})
	done := false
	p := k.Spawn("worker", func(p *Proc) {
		p.Compute(100*sim.Microsecond, func() {
			done = true
			p.Exit()
		})
	})
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	if !done {
		t.Fatal("compute continuation never ran")
	}
	if p.State() != Exited {
		t.Fatalf("proc state = %d, want Exited", p.State())
	}
	acct := k.Accounting()
	if acct.User != 100*sim.Microsecond {
		t.Fatalf("user time = %v, want 100us", acct.User)
	}
}

func TestFallingOffContinuationExits(t *testing.T) {
	eng, k := newTestKernel(Options{})
	p := k.Spawn("oneshot", func(p *Proc) {
		p.Compute(time10us, func() { /* no further operation */ })
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	if p.State() != Exited {
		t.Fatalf("proc that fell off continuation should exit, state=%d", p.State())
	}
}

const time10us = 10 * sim.Microsecond

func TestSyscallEndIsTriggerState(t *testing.T) {
	eng, k := newTestKernel(Options{})
	k.Spawn("w", func(p *Proc) {
		p.Syscall("read", time10us, func() {
			p.Syscall("write", time10us, func() { p.Exit() })
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	if got := k.Meter().BySource[SrcSyscall]; got != 2 {
		t.Fatalf("syscall trigger count = %d, want 2", got)
	}
	if k.Accounting().Syscalls != 2 {
		t.Fatalf("syscall count = %d, want 2", k.Accounting().Syscalls)
	}
}

func TestSyscallIncludesCrossingOverhead(t *testing.T) {
	eng, k := newTestKernel(Options{})
	var endAt sim.Time
	k.Spawn("w", func(p *Proc) {
		p.Syscall("read", time10us, func() {
			endAt = eng.Now()
			p.Exit()
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	want := time10us + cpu.PentiumII300().SyscallOverhead
	if endAt != want {
		t.Fatalf("syscall finished at %v, want %v", endAt, want)
	}
}

func TestTrapEndIsTriggerState(t *testing.T) {
	eng, k := newTestKernel(Options{})
	k.Spawn("w", func(p *Proc) {
		p.Trap("pagefault", time10us, func() { p.Exit() })
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	if got := k.Meter().BySource[SrcTrap]; got != 1 {
		t.Fatalf("trap trigger count = %d, want 1", got)
	}
}

func TestInterruptPreemptsAndDelaysSegment(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	var finishedAt sim.Time
	k.Spawn("victim", func(p *Proc) {
		p.Compute(100*sim.Microsecond, func() {
			finishedAt = eng.Now()
			p.Exit()
		})
	})
	k.Start()
	// Interrupt at t=50us with 10us of handler work.
	eng.At(50*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, time10us, nil)
	})
	eng.RunFor(900 * sim.Microsecond) // before the first hardclock tick
	prof := cpu.PentiumII300()
	// The victim loses: handler duration (direct + work) plus the
	// pollution penalty added to its remaining work.
	want := 100*sim.Microsecond + prof.IntrDirect + time10us + prof.IntrPollution
	if finishedAt != want {
		t.Fatalf("victim finished at %v, want %v", finishedAt, want)
	}
	if got := k.Meter().BySource[SrcDisk]; got != 1 {
		t.Fatalf("disk trigger count = %d, want 1", got)
	}
	if k.Accounting().Interrupts != 1 {
		t.Fatalf("interrupt count = %d", k.Accounting().Interrupts)
	}
}

func TestInterruptDuringInterruptQueues(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	var order []string
	k.Start()
	eng.At(10*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, 20*sim.Microsecond, func() { order = append(order, "first") })
	})
	// Arrives while the first handler is executing: must queue, not nest.
	eng.At(15*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcIPIntr, time10us, func() { order = append(order, "second") })
	})
	eng.RunFor(900 * sim.Microsecond) // before the first hardclock tick
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
	if k.Accounting().Interrupts != 2 {
		t.Fatalf("interrupts = %d", k.Accounting().Interrupts)
	}
}

func TestSoftIRQRunsAfterInterrupts(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	var order []string
	k.Start()
	eng.At(time10us, func() {
		k.RaiseInterrupt(SrcIPIntr, time10us, func() {
			// Handler posts protocol processing, then a second interrupt
			// arrives before the softirq can run.
			k.PostSoftIRQ(ChainStep{Work: time10us, Src: SrcTCPIPOther, Fn: func() { order = append(order, "softirq") }})
			k.RaiseInterrupt(SrcDisk, time10us, func() { order = append(order, "intr2") })
		})
	})
	eng.RunFor(sim.Millisecond)
	if len(order) != 2 || order[0] != "intr2" || order[1] != "softirq" {
		t.Fatalf("order = %v, want hardware interrupt before softirq", order)
	}
	if got := k.Meter().BySource[SrcTCPIPOther]; got != 1 {
		t.Fatalf("tcpip-other triggers = %d, want 1", got)
	}
}

func TestChainStepsProduceIPOutputTriggers(t *testing.T) {
	eng, k := newTestKernel(Options{})
	sent := 0
	k.Spawn("server", func(p *Proc) {
		steps := make([]ChainStep, 5)
		for i := range steps {
			steps[i] = ChainStep{Work: 5 * sim.Microsecond, Src: SrcIPOutput, Fn: func() { sent++ }}
		}
		// The send syscall returns, then the TCP/IP output loop runs as a
		// kernel chain with one trigger state per transmitted packet.
		p.Syscall("writev", time10us, func() {
			p.Chain(steps, func() { p.Exit() })
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	_ = sent
	if got := k.Meter().BySource[SrcIPOutput]; got != 5 {
		t.Fatalf("ip-output triggers = %d, want 5", got)
	}
	if sent != 5 {
		t.Fatalf("sent = %d, want 5", sent)
	}
}

func TestSleepWakeup(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	var wq WaitQueue
	var wokeAt sim.Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(&wq, func() {
			wokeAt = eng.Now()
			p.Exit()
		})
	})
	k.Start()
	eng.At(500*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, time10us, func() { wq.WakeOne() })
	})
	eng.RunFor(sim.Millisecond)
	if wokeAt == 0 {
		t.Fatal("sleeper never woke")
	}
	if wokeAt < 500*sim.Microsecond {
		t.Fatalf("woke too early: %v", wokeAt)
	}
	if wq.Len() != 0 {
		t.Fatalf("wait queue len = %d", wq.Len())
	}
}

func TestWakeAll(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	var wq WaitQueue
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("s", func(p *Proc) {
			p.Sleep(&wq, func() {
				woke++
				p.Exit()
			})
		})
	}
	k.Start()
	eng.At(100*sim.Microsecond, func() {
		k.RaiseInterrupt(SrcDisk, time10us, func() {
			if n := wq.WakeAll(); n != 3 {
				t.Errorf("WakeAll woke %d, want 3", n)
			}
		})
	})
	eng.RunFor(10 * sim.Millisecond)
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestRoundRobinSharing(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false, Quantum: 10 * sim.Millisecond})
	// Two CPU-bound procs in 20ms compute chunks must alternate via
	// quantum preemption rather than run to completion serially.
	var firstDone, secondDone sim.Time
	mk := func(donep *sim.Time) func(p *Proc) {
		return func(p *Proc) {
			remaining := 3
			var loop func()
			loop = func() {
				remaining--
				if remaining == 0 {
					*donep = eng.Now()
					p.Exit()
					return
				}
				p.Compute(20*sim.Millisecond, loop)
			}
			p.Compute(20*sim.Millisecond, loop)
		}
	}
	k.Spawn("a", mk(&firstDone))
	k.Spawn("b", mk(&secondDone))
	k.Start()
	eng.RunFor(sim.Second)
	if firstDone == 0 || secondDone == 0 {
		t.Fatal("procs did not finish")
	}
	// With fair sharing both finish near 120ms; serial execution would
	// finish the first at 60ms.
	gap := secondDone - firstDone
	if gap < 0 {
		gap = -gap
	}
	if gap > 40*sim.Millisecond {
		t.Fatalf("unfair sharing: finish gap %v (first %v, second %v)", gap, firstDone, secondDone)
	}
	if k.Accounting().Switches < 5 {
		t.Fatalf("switches = %d, want several from quantum preemption", k.Accounting().Switches)
	}
}

func TestIdleLoopProducesIdleTriggers(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: true})
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	idle := k.Meter().BySource[SrcIdle]
	// ~2us poll over 10ms => ~5000 iterations (hardclock steals a few).
	if idle < 4000 || idle > 5100 {
		t.Fatalf("idle triggers = %d, want ~5000", idle)
	}
	acct := k.Accounting()
	if acct.Idle < 9*sim.Millisecond {
		t.Fatalf("idle time = %v, want ~10ms", acct.Idle)
	}
}

func TestIdleLoopDisabledHalts(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	if got := k.Meter().BySource[SrcIdle]; got != 0 {
		t.Fatalf("idle triggers = %d with idle loop disabled", got)
	}
	// Hardclock still ticks: ~10 interrupts.
	if got := k.Meter().BySource[SrcHardClock]; got < 9 || got > 11 {
		t.Fatalf("hardclock triggers = %d, want ~10", got)
	}
}

func TestHardclockBoundsTriggerGap(t *testing.T) {
	// Even a fully compute-bound process without syscalls cannot keep the
	// system out of trigger states longer than one hardclock period.
	eng, k := newTestKernel(Options{IdleLoop: false})
	k.Spawn("spin", func(p *Proc) {
		var loop func()
		loop = func() { p.Compute(100*sim.Millisecond, loop) }
		loop()
	})
	var maxGap sim.Time
	k.Meter().Trace = func(_ sim.Time, iv sim.Time, _ Source) {
		if iv > maxGap {
			maxGap = iv
		}
	}
	k.Start()
	eng.RunFor(2 * sim.Second)
	if maxGap > sim.Millisecond+50*sim.Microsecond {
		t.Fatalf("max trigger gap = %v, want <= ~1ms (hardclock backup)", maxGap)
	}
	if maxGap < 900*sim.Microsecond {
		t.Fatalf("max trigger gap = %v suspiciously small for pure compute", maxGap)
	}
}

func TestDisabledSourcesSuppressed(t *testing.T) {
	eng, k := newTestKernel(Options{
		IdleLoop:        false,
		DisabledSources: map[Source]bool{SrcSyscall: true},
	})
	k.Spawn("w", func(p *Proc) {
		p.Syscall("read", time10us, func() { p.Exit() })
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	if got := k.Meter().BySource[SrcSyscall]; got != 0 {
		t.Fatalf("suppressed source recorded %d triggers", got)
	}
	// The syscall itself still executed.
	if k.Accounting().Syscalls != 1 {
		t.Fatal("suppressing the trigger must not suppress the work")
	}
}

func TestCalloutFiresAtTickGranularity(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false, Hz: 1000})
	var firedAt sim.Time
	k.Start()
	k.Timeout(2500*sim.Microsecond, 2*sim.Microsecond, func() { firedAt = eng.Now() })
	eng.RunFor(10 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("callout never fired")
	}
	// 2.5ms rounds up to the 3ms tick; allow handler dispatch latency.
	if firedAt < 3*sim.Millisecond || firedAt > 3200*sim.Microsecond {
		t.Fatalf("callout fired at %v, want just after 3ms", firedAt)
	}
}

func TestCalloutCancel(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	fired := false
	k.Start()
	c := k.Timeout(2*sim.Millisecond, sim.Microsecond, func() { fired = true })
	if !c.Pending() {
		t.Fatal("callout not pending")
	}
	if !c.Cancel() {
		t.Fatal("cancel failed")
	}
	eng.RunFor(10 * sim.Millisecond)
	if fired {
		t.Fatal("canceled callout fired")
	}
}

// The retransmit-rearm shape, callout_reset(9): a pending callout Reset
// before every expiry keeps sliding its deadline and never fires until
// the resets stop; the node migrates in place, no fresh Callout needed.
func TestCalloutResetSlidesDeadline(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false, Hz: 1000})
	fires := 0
	var firedAt sim.Time
	k.Start()
	c := k.Timeout(2*sim.Millisecond, sim.Microsecond, func() {
		fires++
		firedAt = eng.Now()
	})
	// Five ACK-shaped rearms, each pushing the deadline 2ms past "now".
	for i := 0; i < 5; i++ {
		eng.RunFor(sim.Millisecond)
		if fires != 0 {
			t.Fatalf("callout fired during rearm cycle %d", i)
		}
		c.Reset(2 * sim.Millisecond)
		if !c.Pending() {
			t.Fatal("callout not pending after reset")
		}
	}
	eng.RunFor(10 * sim.Millisecond)
	if fires != 1 {
		t.Fatalf("callout fired %d times, want exactly 1", fires)
	}
	// Last reset at t=5ms for +2ms. The 5ms hardclock interrupt has not
	// dispatched yet at that exact instant (interrupt-entry latency), so
	// the kernel still counts tick 4 and the deadline lands on tick 6 —
	// conventional-timer granularity, ±1 tick as always.
	if firedAt < 6*sim.Millisecond || firedAt > 7300*sim.Microsecond {
		t.Fatalf("callout fired at %v, want within a tick of 6ms", firedAt)
	}
}

// Reset of a fired or canceled callout revives the node with its original
// handler — the RTO timer restarting after it expired once.
func TestCalloutResetRevives(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false, Hz: 1000})
	fires := 0
	k.Start()
	c := k.Timeout(sim.Millisecond, sim.Microsecond, func() { fires++ })
	eng.RunFor(5 * sim.Millisecond)
	if fires != 1 {
		t.Fatalf("fires = %d before revive, want 1", fires)
	}
	c.Reset(sim.Millisecond) // fired node
	eng.RunFor(5 * sim.Millisecond)
	if fires != 2 {
		t.Fatalf("fires = %d after fired-node reset, want 2", fires)
	}
	c.Reset(sim.Millisecond)
	if !c.Cancel() {
		t.Fatal("cancel of a re-armed callout failed")
	}
	c.Reset(sim.Millisecond) // canceled node
	eng.RunFor(5 * sim.Millisecond)
	if fires != 3 {
		t.Fatalf("fires = %d after canceled-node reset, want 3", fires)
	}
}

func TestPITDeliversAtFrequency(t *testing.T) {
	eng, k := newTestKernel(Options{IdleLoop: false})
	pit := k.NewPIT(100*sim.Microsecond, 0, nil)
	k.Start()
	pit.Start()
	eng.RunFor(100 * sim.Millisecond)
	// 1000 ticks in 100ms; nearly all delivered on an idle system.
	if pit.Fires < 990 || pit.Fires > 1001 {
		t.Fatalf("PIT fires = %d, want ~1000", pit.Fires)
	}
	pit.Stop()
	before := pit.Fires
	eng.RunFor(10 * sim.Millisecond)
	// One interrupt raised just before Stop may still be in flight.
	if pit.Fires > before+1 {
		t.Fatalf("PIT fired %d times after Stop", pit.Fires-before)
	}
}

func TestPITLosesTicksUnderPressure(t *testing.T) {
	// A PIT period far below the handler cost must lose ticks (merged
	// interrupts), as FreeBSD loses timer interrupts with interrupts
	// disabled — it must NOT queue unboundedly.
	eng, k := newTestKernel(Options{IdleLoop: false})
	pit := k.NewPIT(sim.Microsecond, 5*sim.Microsecond, nil)
	k.Start()
	pit.Start()
	eng.RunFor(10 * sim.Millisecond)
	if pit.Lost == 0 {
		t.Fatal("expected lost ticks at 1us period with 5us handlers")
	}
	if pit.Fires+pit.Lost < 9000 {
		t.Fatalf("fires+lost = %d, want ~10000", pit.Fires+pit.Lost)
	}
}

func TestAccountingConservation(t *testing.T) {
	// Busy + Idle must equal elapsed time for a mixed workload.
	eng, k := newTestKernel(Options{IdleLoop: true})
	var wq WaitQueue
	k.Spawn("mix", func(p *Proc) {
		var loop func()
		loop = func() {
			p.Compute(200*sim.Microsecond, func() {
				p.Syscall("io", 50*sim.Microsecond, func() {
					p.Sleep(&wq, loop)
				})
			})
		}
		loop()
	})
	k.Start()
	// Disk completion wakes the proc every ms.
	var tickDisk func()
	tickDisk = func() {
		k.RaiseInterrupt(SrcDisk, 5*sim.Microsecond, func() { wq.WakeOne() })
		eng.After(sim.Millisecond, tickDisk)
	}
	eng.After(sim.Millisecond, tickDisk)
	total := 500 * sim.Millisecond
	eng.RunFor(total)
	a := k.Accounting()
	sum := a.Busy() + a.Idle
	diff := total - sum
	if diff < 0 {
		diff = -diff
	}
	// Small slack: a segment can be mid-flight at the horizon.
	if diff > sim.Millisecond {
		t.Fatalf("accounting leak: busy=%v idle=%v sum=%v elapsed=%v", a.Busy(), a.Idle, sum, total)
	}
}

func TestTriggerSinkConsumesTime(t *testing.T) {
	// A sink that runs a 20us handler at each syscall trigger must delay
	// the process by exactly that much.
	eng, k := newTestKernel(Options{IdleLoop: false})
	fired := 0
	k.SetTriggerSink(sinkFunc(func(src Source, now sim.Time) sim.Time {
		if src == SrcSyscall {
			fired++
			return 20 * sim.Microsecond
		}
		return 0
	}))
	var doneAt sim.Time
	k.Spawn("w", func(p *Proc) {
		p.Syscall("read", time10us, func() {
			p.Compute(time10us, func() {
				doneAt = eng.Now()
				p.Exit()
			})
		})
	})
	k.Start()
	eng.RunFor(sim.Millisecond)
	prof := cpu.PentiumII300()
	want := time10us + prof.SyscallOverhead + 20*sim.Microsecond + time10us
	if doneAt != want {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	if fired != 1 {
		t.Fatalf("sink fired %d times at syscall, want 1", fired)
	}
	if k.Accounting().SoftTimer != 20*sim.Microsecond {
		t.Fatalf("SoftTimer accounting = %v", k.Accounting().SoftTimer)
	}
}

type sinkFunc func(Source, sim.Time) sim.Time

func (f sinkFunc) Trigger(src Source, now sim.Time) sim.Time { return f(src, now) }

func TestMeterIntervals(t *testing.T) {
	m := NewTriggerMeter()
	m.record(10*sim.Microsecond, SrcSyscall)
	m.record(15*sim.Microsecond, SrcIPOutput)
	m.record(35*sim.Microsecond, SrcSyscall)
	if m.N() != 2 {
		t.Fatalf("N = %d, want 2 (first sample starts the clock)", m.N())
	}
	if m.BySource[SrcSyscall] != 2 || m.BySource[SrcIPOutput] != 1 {
		t.Fatalf("per-source counts wrong: %v", m.BySource)
	}
	if got := m.Hist.Mean(); got != 12.5 {
		t.Fatalf("mean interval = %v us, want 12.5", got)
	}
}

func TestSourceString(t *testing.T) {
	if SrcSyscall.String() != "syscalls" || SrcIPOutput.String() != "ip-output" {
		t.Fatal("source names wrong")
	}
	if Source(99).String() == "" {
		t.Fatal("out-of-range source must still format")
	}
}

func TestStartTwicePanics(t *testing.T) {
	_, k := newTestKernel(Options{})
	k.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	k.Start()
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, sim.Time) {
		eng, k := newTestKernel(Options{IdleLoop: true})
		var wq WaitQueue
		k.Spawn("w", func(p *Proc) {
			var loop func()
			loop = func() {
				p.Compute(eng.Rand().ExpTime(100*sim.Microsecond), func() {
					p.Syscall("s", eng.Rand().ExpTime(20*sim.Microsecond), func() {
						p.Sleep(&wq, loop)
					})
				})
			}
			loop()
		})
		k.Start()
		var kickDisk func()
		kickDisk = func() {
			k.RaiseInterrupt(SrcDisk, 5*sim.Microsecond, func() { wq.WakeOne() })
			eng.After(eng.Rand().ExpTime(300*sim.Microsecond), kickDisk)
		}
		eng.After(sim.Millisecond, kickDisk)
		eng.RunFor(200 * sim.Millisecond)
		return k.Meter().N(), k.Accounting().Busy()
	}
	n1, b1 := run()
	n2, b2 := run()
	if n1 != n2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", n1, b1, n2, b2)
	}
	if n1 == 0 {
		t.Fatal("no triggers recorded")
	}
}
