// Package kernel simulates the operating system the paper instruments: a
// uniprocessor BSD-style kernel with processes, a round-robin scheduler,
// system calls, traps, hardware and software interrupts, a periodic clock
// interrupt (hardclock), kernel timeouts (callouts), and an idle loop.
//
// Its defining feature for this reproduction is trigger-state
// instrumentation: every point where the paper's modified FreeBSD would
// check for pending soft-timer events — the end of a syscall, the end of a
// trap or interrupt handler, each IP packet transmission, the TCP/IP
// processing loops, and each idle-loop iteration — reports to a pluggable
// TriggerSink and to an interval meter. The soft-timer facility in
// package core plugs in as the sink; the Table 1/2 and Figure 4/5/6
// experiments read the meter.
package kernel

import (
	"fmt"

	"softtimers/internal/cpu"
	"softtimers/internal/faults"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/trace"
)

// Source identifies which kind of trigger state (or interrupt origin) an
// event came from, matching the event-source breakdown of Table 2.
type Source int

const (
	// SrcSyscall is the end of a system call, before return to user mode.
	SrcSyscall Source = iota
	// SrcTrap is the end of an exception handler (page fault, arithmetic).
	SrcTrap
	// SrcIPOutput fires on every IP packet transmission.
	SrcIPOutput
	// SrcIPIntr is the end of a network interface interrupt handler.
	SrcIPIntr
	// SrcTCPIPOther covers other network-subsystem trigger states such as
	// the TCP timer processing loop (BSD softclock protocol timers).
	SrcTCPIPOther
	// SrcDisk is the end of a disk controller interrupt handler.
	SrcDisk
	// SrcHardClock is the end of the periodic clock interrupt — the
	// backup that bounds soft-timer delay at one interrupt-clock period.
	SrcHardClock
	// SrcPIT is the end of the *additional* programmable-interval-timer
	// interrupt used by the Figure 2/3 overhead experiment.
	SrcPIT
	// SrcIdle is one iteration of the idle loop.
	SrcIdle

	numSources
)

var sourceNames = [numSources]string{
	"syscalls", "traps", "ip-output", "ip-intr", "tcpip-others",
	"disk-intr", "hardclock", "pit", "idle",
}

// String returns the paper's name for the source.
func (s Source) String() string {
	if s < 0 || int(s) >= len(sourceNames) {
		return fmt.Sprintf("source(%d)", int(s))
	}
	return sourceNames[s]
}

// NumSources is the number of distinct trigger sources.
const NumSources = int(numSources)

// TriggerSink observes trigger states. The soft-timer facility implements
// it: at each trigger it checks for due events, runs their handlers, and
// returns the CPU time those handlers consumed so the kernel can account
// for it. A nil sink is allowed.
type TriggerSink interface {
	// Trigger is invoked at every trigger state with the source and the
	// current time. It returns the CPU time consumed by any handlers it
	// ran (0 if none fired).
	Trigger(src Source, now sim.Time) sim.Time
}

// IdleAdvisor optionally extends a TriggerSink: the idle loop asks whether
// any soft-timer event is scheduled before the given time (the next
// hardclock tick). If not, the CPU halts to save power instead of
// spinning — Section 3: "to minimize power consumption, an idle CPU halts
// when there are no soft timer events scheduled at times prior to the
// next hardware timer interrupt."
type IdleAdvisor interface {
	// EventBefore reports whether a soft-timer event is due before t.
	EventBefore(t sim.Time) bool
}

// Options configures kernel construction.
type Options struct {
	// Hz is the periodic clock interrupt frequency (backup timer).
	// Default 1000 (1 ms), the paper's "typical" interrupt clock.
	Hz int
	// Quantum is the scheduler time slice. Default 10 ms (FreeBSD).
	Quantum sim.Time
	// IdleLoop keeps the idle loop spinning (and producing SrcIdle
	// trigger states) whenever the CPU is idle. Default true; the
	// measured workloads of Table 1 rely on it. When false the CPU
	// halts when idle and wakes only on interrupts.
	IdleLoop bool
	// IdleHalt makes the idle loop halt (stop polling) whenever the
	// trigger sink reports no soft-timer event scheduled before the
	// next hardclock tick — the paper's power-saving rule. Requires a
	// sink implementing IdleAdvisor; without one the loop keeps
	// spinning. Interrupts still wake the CPU normally.
	IdleHalt bool
	// DisabledSources suppresses chosen trigger sources, for the
	// Figure 6 source-ablation experiment. Suppressed sources still
	// execute their work; they just do not report trigger states.
	DisabledSources map[Source]bool
	// SoftIRQDirect and SoftIRQPollution override the entry cost and
	// locality penalty of software interrupts; zero values default to
	// half the hardware-interrupt costs.
	SoftIRQDirect    sim.Time
	SoftIRQPollution sim.Time
	// HardclockWork is the timekeeping work done by each clock tick.
	// Default 1 µs.
	HardclockWork sim.Time
	// StarveBoost is the waiting time after which a ready process gains
	// one effective priority level (BSD-style aging, so a niced compute
	// hog still gets occasional timeslices on a saturated system).
	// Default 300 ms; negative disables aging.
	StarveBoost sim.Time
	// Faults, when set, installs the deterministic fault-injection plan:
	// interrupt-delivery jitter, PIT coalescing perturbation, syscall/
	// trap cost noise, and trigger-state starvation (the hardclock is
	// exempt — it is the facility's guaranteed fallback). Nil, the
	// default, means a perfectly well-behaved substrate.
	Faults *faults.Plan
}

func (o *Options) setDefaults() {
	if o.Hz == 0 {
		o.Hz = 1000
	}
	if o.Quantum == 0 {
		o.Quantum = 10 * sim.Millisecond
	}
	if o.HardclockWork == 0 {
		o.HardclockWork = 1 * sim.Microsecond
	}
	if o.StarveBoost == 0 {
		o.StarveBoost = sim.Second
	}
}

// Accounting aggregates where CPU time went, for the overhead tables.
type Accounting struct {
	User       sim.Time // user-mode computation
	Kernel     sim.Time // syscall and trap service
	Intr       sim.Time // hardware interrupt handling (direct)
	SoftIRQ    sim.Time // software interrupt handling
	CtxSwitch  sim.Time // context-switch direct cost
	SoftTimer  sim.Time // soft-timer handler execution at trigger states
	Idle       sim.Time // idle time
	Interrupts int64    // hardware interrupts taken
	Switches   int64    // context switches
	Syscalls   int64
	Traps      int64
	IdleHalts  int64 // times the idle loop halted instead of polling
}

// Busy returns all non-idle time.
func (a Accounting) Busy() sim.Time {
	return a.User + a.Kernel + a.Intr + a.SoftIRQ + a.CtxSwitch + a.SoftTimer
}

// TriggerMeter records trigger-state intervals, per source, the raw data
// behind Figures 4–6 and Tables 1–2.
type TriggerMeter struct {
	// Hist is the interval histogram in microseconds (1 µs buckets up to
	// 2 ms), memory-bounded for multi-million-sample runs.
	Hist *stats.Histogram
	// BySource counts trigger states per source.
	BySource [NumSources]int64
	// Windows, when non-nil, accumulates windowed medians (Figure 5).
	Windows []*stats.WindowedMedians
	// Trace, when non-nil, receives every (time, interval) pair; used by
	// small-scale tests and the CSV dumper, too costly for 2M-sample runs
	// unless requested.
	Trace func(now sim.Time, interval sim.Time, src Source)

	last    sim.Time
	started bool
	n       int64
}

// NewTriggerMeter returns a meter with a 1 µs × 2000-bucket histogram.
func NewTriggerMeter() *TriggerMeter {
	return &TriggerMeter{Hist: stats.NewHistogram(1, 2000)}
}

// N returns the number of intervals recorded.
func (m *TriggerMeter) N() int64 { return m.n }

func (m *TriggerMeter) record(now sim.Time, src Source) {
	m.BySource[src]++
	if !m.started {
		m.started = true
		m.last = now
		return
	}
	iv := now - m.last
	m.last = now
	m.n++
	us := iv.Micros()
	m.Hist.Add(us)
	for _, w := range m.Windows {
		w.Add(now.Millis(), us)
	}
	if m.Trace != nil {
		m.Trace(now, iv, src)
	}
}

// Kernel is the simulated operating system on one CPU.
type Kernel struct {
	eng  *sim.Engine
	prof cpu.Profile
	opts Options

	sink   TriggerSink
	meter  *TriggerMeter
	tracer *trace.Buffer

	// Telemetry. The kernel owns the simulation's metrics registry; the
	// soft-timer facility, NICs and links register their instruments on
	// it. Per-vector interrupt counters are direct (array-indexed pointer
	// increments on the interrupt path); everything that already has a
	// counter field (accounting, the trigger meter) joins as a func
	// instrument evaluated only at snapshot time.
	m          *metrics.Registry
	mIntr      [NumSources]*metrics.Counter // interrupts delivered per vector
	mIntrNS    [NumSources]*metrics.Counter // CPU ns spent per vector (direct cost)
	mIdleEnter *metrics.Counter             // idle-loop entries
	mSoftclock *metrics.Counter             // callout (softclock) handler runs

	// Scheduler state.
	runq    []*Proc
	running *Proc    // proc owning the CPU (may be paused by an interrupt)
	seg     *segment // currently executing segment, nil if none
	paused  *segment // segment preempted by interrupt context

	inIntr     bool // executing hardware/software interrupt or soft handlers
	pendIntr   []intrReq
	intrHead   int // first unserviced pendIntr entry (head-indexed queue)
	pendSoft   []softReq
	softHead   int   // first unserviced pendSoft entry
	reschedule bool  // quantum expired; switch at next user-mode boundary
	lastRun    *Proc // last process to own the CPU, for switch-cost checks

	// In-flight interrupt-context state. The kernel executes at most one
	// hardware interrupt, one softirq, one work chain, one aux occupancy
	// and one paid context switch at a time, so each parks its request in
	// a field and reuses a closure bound once at construction — the hot
	// path schedules engine events without allocating.
	curIntr    intrReq
	intrBodyFn func()
	intrContFn func()
	curSoft    softReq
	softBodyFn func()
	softDoneFn func()
	chSteps    []ChainStep
	chChain    Chain
	chLen      int
	chIdx      int
	chClass    acctClass
	chSrc      Source
	chDone     func()
	chRunFn    func()
	chNextFn   func()
	chProc     *Proc  // Proc.Chain's continuation target
	chThen     func() // Proc.Chain's continuation
	chProcFn   func()
	finProc    *Proc  // finished segment's process
	finThen    func() // finished segment's continuation
	segContFn  func()
	auxCont    func()
	auxFn      func()
	swProc     *Proc // process resuming after a paid context switch
	swResumeFn func()
	idleTickFn func()
	idleContFn func()

	// Segment pool and memoized "seg:<name>" labels.
	segFree   *segment
	segLabels map[string]string

	idle      bool
	idleEv    sim.Event
	idleSince sim.Time

	acct    Accounting
	started bool
	nextPID int

	// softIRQ cost model (resolved from Options at New).
	sirqDirect, sirqPollution sim.Time

	// hardclock bookkeeping
	tick     int64
	callouts *calloutWheel

	pits []*PIT

	// pert is the installed CPU-cost perturber (the fault plan), nil on
	// a clean run. Kept as a concrete interface field so the per-segment
	// check is one nil comparison.
	pert cpu.Perturber
}

// New constructs a kernel on the engine with the given CPU profile.
func New(eng *sim.Engine, prof cpu.Profile, opts Options) *Kernel {
	opts.setDefaults()
	k := &Kernel{
		eng:   eng,
		prof:  prof,
		opts:  opts,
		meter: NewTriggerMeter(),
	}
	k.sirqDirect = opts.SoftIRQDirect
	if k.sirqDirect == 0 {
		k.sirqDirect = prof.IntrDirect / 2
	}
	k.sirqPollution = opts.SoftIRQPollution
	if k.sirqPollution == 0 {
		k.sirqPollution = prof.IntrPollution / 2
	}
	k.callouts = newCalloutWheel()
	k.segLabels = make(map[string]string)
	k.intrBodyFn = k.intrBody
	k.intrContFn = k.intrCont
	k.softBodyFn = k.softBody
	k.softDoneFn = k.softDone
	k.chRunFn = k.chainRun
	k.chNextFn = k.chainNext
	k.chProcFn = k.procChainDone
	k.segContFn = k.segCont
	k.auxFn = k.auxRun
	k.swResumeFn = k.swResume
	k.idleTickFn = k.idleTick
	k.idleContFn = k.idleCont
	k.initMetrics()
	if opts.Faults != nil {
		k.pert = opts.Faults
		opts.Faults.RegisterMetrics(k.m)
	}
	return k
}

// initMetrics builds the kernel's registry and registers the kernel- and
// engine-level instruments. Called once from New.
func (k *Kernel) initMetrics() {
	r := metrics.NewRegistry()
	k.m = r

	// Engine (event-loop) telemetry: lazily read, no hot-path change.
	r.CounterFunc("sim.events_fired", func() int64 { return int64(k.eng.Fired) })
	r.GaugeFunc("sim.events_pending", func() int64 { return int64(k.eng.Pending()) })
	r.GaugeFunc("sim.heap_depth_hwm", func() int64 { return int64(k.eng.MaxPending()) })

	// Per-vector interrupt delivery counts and direct CPU cost.
	for s := Source(0); s < numSources; s++ {
		name := s.String()
		k.mIntr[s] = r.Counter("kernel.intr." + name)
		k.mIntrNS[s] = r.Counter("kernel.intr_ns." + name)
	}

	// Trigger-state visits per source and the interval histogram come from
	// the meter's existing storage.
	for s := Source(0); s < numSources; s++ {
		i := s
		r.CounterFunc("kernel.trigger."+i.String(), func() int64 { return k.meter.BySource[i] })
	}
	r.Adopt("kernel.trigger_interval_us", k.meter.Hist)

	// CPU-time accounting and scheduler activity mirror the Accounting
	// struct, which stays the public API.
	r.CounterFunc("kernel.switches", func() int64 { return k.acct.Switches })
	r.CounterFunc("kernel.syscalls", func() int64 { return k.acct.Syscalls })
	r.CounterFunc("kernel.traps", func() int64 { return k.acct.Traps })
	r.CounterFunc("kernel.interrupts", func() int64 { return k.acct.Interrupts })
	r.CounterFunc("kernel.idle_halts", func() int64 { return k.acct.IdleHalts })
	r.CounterFunc("kernel.hardclock_ticks", func() int64 { return k.tick })
	r.CounterFunc("kernel.acct.user_ns", func() int64 { return int64(k.acct.User) })
	r.CounterFunc("kernel.acct.kernel_ns", func() int64 { return int64(k.acct.Kernel) })
	r.CounterFunc("kernel.acct.intr_ns", func() int64 { return int64(k.acct.Intr) })
	r.CounterFunc("kernel.acct.softirq_ns", func() int64 { return int64(k.acct.SoftIRQ) })
	r.CounterFunc("kernel.acct.ctxswitch_ns", func() int64 { return int64(k.acct.CtxSwitch) })
	r.CounterFunc("kernel.acct.softtimer_ns", func() int64 { return int64(k.acct.SoftTimer) })
	r.CounterFunc("kernel.acct.idle_ns", func() int64 { return int64(k.acct.Idle) })

	// Idle entries and softclock (callout) runs have no pre-existing
	// counter; these are direct, on cold paths.
	k.mIdleEnter = r.Counter("kernel.idle_entries")
	k.mSoftclock = r.Counter("kernel.softclock_runs")
}

// Metrics returns the simulation's telemetry registry. Components built on
// this kernel (the soft-timer facility, NICs, links, pacers) register
// their instruments here; snapshot it for the full picture.
func (k *Kernel) Metrics() *metrics.Registry { return k.m }

// Engine returns the underlying simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Now returns the current simulated time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// Profile returns the CPU cost model in use.
func (k *Kernel) Profile() *cpu.Profile { return &k.prof }

// Meter returns the trigger-interval meter.
func (k *Kernel) Meter() *TriggerMeter { return k.meter }

// Accounting returns a snapshot of CPU time accounting. If the CPU is
// currently idle, idle time up to now is included.
func (k *Kernel) Accounting() Accounting {
	a := k.acct
	if k.isIdle() {
		a.Idle += k.eng.Now() - k.idleSince
	}
	return a
}

// SetTriggerSink installs the soft-timer facility (or any observer).
func (k *Kernel) SetTriggerSink(s TriggerSink) { k.sink = s }

// SetTracer attaches an execution trace buffer; nil detaches. Tracing is
// for debugging and tests; it records scheduling, interrupt and trigger
// events into the bounded ring.
func (k *Kernel) SetTracer(tb *trace.Buffer) { k.tracer = tb }

// Tracer returns the attached trace buffer, or nil.
func (k *Kernel) Tracer() *trace.Buffer { return k.tracer }

// tr records a trace event when a tracer is attached.
func (k *Kernel) tr(kind trace.Kind, label string, arg int64) {
	if k.tracer != nil {
		k.tracer.Add(k.eng.Now(), kind, label, arg)
	}
}

// Hz returns the periodic interrupt clock frequency.
func (k *Kernel) Hz() int { return k.opts.Hz }

// Start begins the hardclock and the scheduler. Call after spawning the
// initial processes and before running the engine.
func (k *Kernel) Start() {
	if k.started {
		panic("kernel: Start called twice")
	}
	k.started = true
	k.scheduleHardclock()
	k.dispatch()
}

// starved reports whether the fault plan suppresses this trigger-state
// check. The hardclock source is always exempt: the periodic clock
// interrupt is the paper's guaranteed backup, and starving it would remove
// the very delay bound the degradation experiments measure.
func (k *Kernel) starved(src Source) bool {
	return src != SrcHardClock && k.opts.Faults.StarveTrigger()
}

// trigger reports a trigger state, then runs cont after any soft-timer
// handler work the sink performed. cont must not be nil.
func (k *Kernel) trigger(src Source, cont func()) {
	if !k.opts.DisabledSources[src] && !k.starved(src) {
		k.tr(trace.TriggerState, src.String(), 0)
		k.meter.record(k.eng.Now(), src)
		if k.sink != nil {
			if consumed := k.sink.Trigger(src, k.eng.Now()); consumed > 0 {
				// Soft-timer handlers execute here, occupying the CPU.
				// They run in "interrupt-like" context: interrupts that
				// arrive meanwhile queue until it completes.
				k.runAux(consumed, cont)
				return
			}
		}
	}
	cont()
}

// workFaulted converts nominal work like prof.Work and then applies the
// fault plan's CPU-cost perturbation. Used for syscall/trap service and
// kernel-context chain work; user computation and fixed hardware costs are
// not perturbed.
func (k *Kernel) workFaulted(d sim.Time) sim.Time {
	return k.prof.PerturbedWork(k.pert, d)
}

// runAux occupies the CPU for d (soft-timer handler execution), then cont.
// Interrupts arriving meanwhile queue; they are serviced at the next
// settling point (startSegment or dispatch) that cont leads to. Aux
// occupancies never nest (handlers already ran inside the sink; nothing
// reports a new trigger state until cont), so the continuation parks in a
// field and the completion closure is bound once.
func (k *Kernel) runAux(d sim.Time, cont func()) {
	if k.auxCont != nil {
		panic("kernel: nested aux occupancy")
	}
	k.inIntr = true
	k.acct.SoftTimer += d
	k.auxCont = cont
	k.eng.After(d, k.auxFn)
}

// auxRun is runAux's deferred tail (bound once as auxFn).
func (k *Kernel) auxRun() {
	cont := k.auxCont
	k.auxCont = nil
	k.inIntr = false
	cont()
}
