package kernel

import (
	"fmt"

	"softtimers/internal/sim"
)

// ProcState is a process's scheduling state.
type ProcState int

const (
	// Ready means runnable, waiting for the CPU.
	Ready ProcState = iota
	// Running means the process owns the CPU (it may momentarily be
	// preempted by interrupt context).
	Running
	// Blocked means asleep on a WaitQueue.
	Blocked
	// Exited means terminated.
	Exited
)

// Proc is a simulated process. Workload code drives it in continuation-
// passing style: each operation (Compute, Syscall, Trap, Sleep, Yield)
// schedules work and names the continuation to run when it completes. A
// continuation that performs no further operation implicitly exits the
// process.
type Proc struct {
	// ID is a unique process id; Name labels it for debugging.
	ID   int
	Name string

	// Priority orders scheduling: higher runs first, FIFO within a
	// level (a two-level stand-in for BSD's decaying priorities, where
	// I/O-bound processes outrank compute hogs). Waking a process with
	// higher priority than the running one forces a reschedule at the
	// next user-mode boundary. Default 0.
	Priority int

	// PollutionFactor scales the locality penalties (interrupt, softirq
	// and context-switch pollution) charged to this process. Default 1.
	// A small, cache-resident event-driven server like Flash has more
	// working set to lose to an interrupt than a sprawling multi-process
	// server, so it gets a factor above 1 (paper Section 5.6: Flash "is
	// more sensitive to cache pollution from interrupts").
	PollutionFactor float64

	k            *Kernel
	state        ProcState
	pending      *segment // preempted/unstarted segment awaiting the CPU
	resume       func()   // continuation to run when next scheduled
	polluteNext  bool     // charge CtxPollution to the next segment
	quantumStart sim.Time
	readySince   sim.Time // when the process last became ready (for aging)
	acted        bool     // continuation performed an operation this step
}

// pollute scales a pollution penalty by the process's factor.
func (p *Proc) pollute(base sim.Time) sim.Time {
	if p.PollutionFactor <= 0 {
		return base
	}
	return sim.Time(float64(base) * p.PollutionFactor)
}

// State returns the process's scheduling state.
func (p *Proc) State() ProcState { return p.state }

// Spawn creates a process whose entry continuation runs when it is first
// scheduled. Processes may be spawned before or after Start.
func (k *Kernel) Spawn(name string, entry func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{ID: k.nextPID, Name: name, k: k, state: Ready}
	p.readySince = k.eng.Now()
	p.resume = func() { entry(p) }
	k.runq = append(k.runq, p)
	if k.started && k.idle {
		k.stopIdle()
		k.dispatch()
	}
	return p
}

// mustOwnCPU panics unless p is the process the CPU is executing; the Proc
// operations are only legal from within p's own continuations.
func (p *Proc) mustOwnCPU(op string) {
	if p.k.running != p {
		panic(fmt.Sprintf("kernel: %s called on %q which does not own the CPU", op, p.Name))
	}
	if p.state != Running {
		panic(fmt.Sprintf("kernel: %s called on %q in state %d", op, p.Name, p.state))
	}
	if p.k.seg != nil {
		panic(fmt.Sprintf("kernel: %s called on %q while a segment is executing (operations are only legal from continuations)", op, p.Name))
	}
}

// Compute executes d of user-mode work, then runs then. User-mode work ends
// with no trigger state (returning to the same user code involves no kernel
// entry).
func (p *Proc) Compute(d sim.Time, then func()) {
	p.mustOwnCPU("Compute")
	p.acted = true
	p.k.startSegment(p.newSegment(segUser, "compute", d, then))
}

// Syscall executes a system call with service time d (plus the profile's
// fixed crossing overhead); its completion is a trigger state (SrcSyscall).
func (p *Proc) Syscall(name string, d sim.Time, then func()) {
	p.mustOwnCPU("Syscall")
	p.acted = true
	s := p.newSegment(segSyscall, name, d, then)
	s.remaining += p.k.prof.SyscallOverhead
	p.k.startSegment(s)
}

// Trap executes an exception handler (page fault, arithmetic trap) of
// service time d; its completion is a trigger state (SrcTrap).
func (p *Proc) Trap(name string, d sim.Time, then func()) {
	p.mustOwnCPU("Trap")
	p.acted = true
	s := p.newSegment(segTrap, name, d, then)
	s.remaining += p.k.prof.TrapOverhead
	p.k.startSegment(s)
}

// Chain executes a sequence of kernel work steps in this process's kernel
// context — e.g. the TCP/IP output loop inside a send syscall, where each
// transmitted packet is a trigger state — then runs then. Interrupts that
// arrive during the chain are queued (the loop runs at raised SPL) and
// serviced afterwards.
func (p *Proc) Chain(steps []ChainStep, then func()) {
	p.mustOwnCPU("Chain")
	p.acted = true
	k := p.k
	k.inIntr = true
	k.chProc, k.chThen = p, then
	k.chainStart(steps, nil, acctKernel, k.chProcFn)
}

// ChainC is Chain with the work expressed through the Chain interface —
// the allocation-free form for pooled protocol-output chains.
func (p *Proc) ChainC(c Chain, then func()) {
	p.mustOwnCPU("ChainC")
	p.acted = true
	k := p.k
	k.inIntr = true
	k.chProc, k.chThen = p, then
	k.chainStart(nil, c, acctKernel, k.chProcFn)
}

// Sleep blocks the process on wq; when woken, then runs once the scheduler
// picks the process again.
func (p *Proc) Sleep(wq *WaitQueue, then func()) {
	p.mustOwnCPU("Sleep")
	p.acted = true
	p.state = Blocked
	p.resume = then
	wq.ps = append(wq.ps, p)
	k := p.k
	k.running = nil
	k.dispatch()
}

// Yield surrenders the CPU, re-queueing the process; then runs when the
// scheduler picks it again.
func (p *Proc) Yield(then func()) {
	p.mustOwnCPU("Yield")
	p.acted = true
	p.state = Ready
	p.readySince = p.k.eng.Now()
	p.resume = then
	k := p.k
	k.runq = append(k.runq, p)
	k.running = nil
	k.dispatch()
}

// Exit terminates the process.
func (p *Proc) Exit() {
	p.mustOwnCPU("Exit")
	p.acted = true
	p.k.exitProc(p)
}

func (p *Proc) newSegment(kind segKind, name string, work sim.Time, then func()) *segment {
	var w sim.Time
	if kind == segUser {
		w = p.k.prof.Work(work)
	} else {
		// Syscall/trap service time carries the fault plan's CPU-cost
		// perturbation; user computation does not.
		w = p.k.workFaulted(work)
	}
	if p.polluteNext {
		w += p.pollute(p.k.prof.CtxPollution)
		p.polluteNext = false
	}
	s := p.k.newSegment()
	s.p, s.kind, s.name, s.remaining, s.then = p, kind, name, w, then
	return s
}

// WaitQueue is a kernel sleep queue. The zero value is ready to use.
type WaitQueue struct {
	ps []*Proc
}

// Len returns the number of sleeping processes.
func (wq *WaitQueue) Len() int { return len(wq.ps) }

// WakeOne wakes the longest-sleeping process, if any, and reports whether
// one was woken.
func (wq *WaitQueue) WakeOne() bool {
	if len(wq.ps) == 0 {
		return false
	}
	p := wq.ps[0]
	wq.ps = wq.ps[1:]
	p.wake()
	return true
}

// WakeAll wakes every sleeping process and returns how many were woken.
func (wq *WaitQueue) WakeAll() int {
	n := len(wq.ps)
	for _, p := range wq.ps {
		p.wake()
	}
	wq.ps = nil
	return n
}

func (p *Proc) wake() {
	if p.state != Blocked {
		panic(fmt.Sprintf("kernel: wake of %q in state %d", p.Name, p.state))
	}
	p.state = Ready
	p.readySince = p.k.eng.Now()
	k := p.k
	k.runq = append(k.runq, p)
	if k.running != nil && p.Priority > k.running.Priority {
		// An I/O-bound process outranks the running one: preempt at the
		// next user-mode boundary (BSD wakes preempt timeshared hogs).
		k.reschedule = true
	}
	if k.idle {
		k.stopIdle()
		k.dispatch()
	}
}
