package kernel

import "softtimers/internal/sim"

// PIT models an additional programmable interval timer (the Intel 8253 of
// Section 3) interrupting at a fixed frequency. The Figure 2/3 experiment
// attaches one with a null handler to measure raw interrupt overhead; the
// hardware-timer rate-based-clocking experiments attach one whose handler
// transmits a packet.
//
// Matching the paper's observation that "some timer interrupts are lost
// during periods when interrupts are disabled in FreeBSD", a tick that
// arrives while the previous PIT interrupt is still pending delivery is
// merged with it (counted in Lost) rather than queued.
type PIT struct {
	k       *Kernel
	period  sim.Time
	work    sim.Time
	handler func()

	running  bool
	pending  bool // an interrupt has been raised but not yet serviced
	n        int64
	ev       sim.Event
	jitterEv sim.Event // fault-injected delivery deferral in flight

	// Fires counts delivered interrupts; Lost counts merged ticks.
	Fires int64
	Lost  int64
}

// NewPIT creates a timer interrupting every period, whose handler performs
// work of CPU time and then calls handler (nil for a null handler). It does
// not start ticking until Start.
func (k *Kernel) NewPIT(period sim.Time, work sim.Time, handler func()) *PIT {
	if period <= 0 {
		panic("kernel: PIT period must be positive")
	}
	p := &PIT{k: k, period: period, work: work, handler: handler}
	k.pits = append(k.pits, p)
	return p
}

// Start begins fixed-phase ticking from the current time.
func (p *PIT) Start() {
	if p.running {
		return
	}
	p.running = true
	base := p.k.eng.Now()
	p.n = 0
	// The handler body and the fault-deferred raise are bound once per
	// Start, so steady-state ticking allocates nothing.
	body := func() {
		p.pending = false
		p.Fires++
		if p.handler != nil {
			p.handler()
		}
	}
	raise := func() {
		p.jitterEv = sim.Event{}
		p.k.RaiseInterrupt(SrcPIT, p.work, body)
	}
	var tick func()
	tick = func() {
		if !p.running {
			return
		}
		p.n++
		p.ev = p.k.eng.AtLabeled(base+sim.Time(p.n+1)*p.period, "pit", tick)
		if p.pending {
			// Previous interrupt not yet serviced: this tick is lost
			// (the interrupt line is already asserted).
			p.Lost++
			return
		}
		p.pending = true
		// Fault-injected delivery perturbation: the line is asserted now
		// (pending is already set, so meanwhile ticks merge into Lost),
		// but the CPU sees the interrupt late — up to a full period under
		// the coalescing scenario.
		if d := p.k.opts.Faults.PITPerturb(p.period); d > 0 {
			p.jitterEv = p.k.eng.AfterLabeled(d, "pit:jitter", raise)
			return
		}
		raise()
	}
	p.ev = p.k.eng.AtLabeled(base+p.period, "pit", tick)
}

// Stop halts the timer, including any fault-deferred delivery in flight.
func (p *PIT) Stop() {
	p.running = false
	p.ev.Cancel()
	p.ev = sim.Event{}
	p.jitterEv.Cancel()
	p.jitterEv = sim.Event{}
}

// Running reports whether the timer is ticking.
func (p *PIT) Running() bool { return p.running }

// Period returns the tick period.
func (p *PIT) Period() sim.Time { return p.period }
