package kernel

import (
	"softtimers/internal/sim"

	"softtimers/internal/timerwheel"
)

// Callout is a conventional kernel timeout, scheduled at hardclock-tick
// granularity (the paper's "conventional timer facility": events fire from
// the periodic clock interrupt, so resolution is 1/Hz). TCP's delayed-ACK
// and retransmit timers run on callouts.
type Callout struct {
	k    *Kernel
	t    *timerwheel.Timer
	fn   func()
	work sim.Time
}

// Cancel stops the callout; reports whether it was still pending.
func (c *Callout) Cancel() bool { return c.t.Cancel() }

// Pending reports whether the callout has yet to fire.
func (c *Callout) Pending() bool { return c.t.Pending() }

// Reset re-targets the callout to fire no earlier than d from now, rounded
// up to the next hardclock tick — callout_reset(9), the rearm BSD TCP's
// retransmit timer performs on every ACK that moves snd_una. A pending
// callout's wheel node migrates between slots in place; a fired or
// canceled one is revived with its original handler. Neither path
// allocates, where cancel + a fresh Timeout pays a new Callout, a new
// Timer node, and a new wheel closure per rearm.
func (c *Callout) Reset(d sim.Time) {
	ticks := c.k.calloutTicks(d)
	deadline := uint64(c.k.tick + ticks)
	if !c.t.Reschedule(deadline) {
		c.t.Rearm(deadline, nil)
	}
}

type calloutWheel struct {
	wheel *timerwheel.Wheel
}

func newCalloutWheel() *calloutWheel {
	return &calloutWheel{wheel: timerwheel.New(256)}
}

// Timeout schedules fn to run no earlier than d from now, rounded up to the
// next hardclock tick — conventional-timer semantics. work is the CPU time
// the handler consumes; it executes as a software interrupt from the clock
// tick (BSD softclock), and its completion is a TCP/IP-other trigger state.
func (k *Kernel) Timeout(d sim.Time, work sim.Time, fn func()) *Callout {
	ticks := k.calloutTicks(d)
	c := &Callout{k: k, fn: fn, work: work}
	c.t = k.callouts.wheel.Schedule(uint64(k.tick+ticks), func(timerwheel.Tick) {
		k.mSoftclock.Inc()
		k.PostSoftIRQ(ChainStep{Work: c.work, Src: SrcTCPIPOther, Fn: c.fn})
	})
	return c
}

// calloutTicks converts a relative delay to whole hardclock ticks, rounded
// up, minimum one (a callout never fires on the tick that set it).
func (k *Kernel) calloutTicks(d sim.Time) int64 {
	period := sim.Second / sim.Time(k.opts.Hz)
	ticks := int64((d + period - 1) / period)
	if ticks < 1 {
		ticks = 1
	}
	return ticks
}

// TickPeriod returns the hardclock period (1/Hz).
func (k *Kernel) TickPeriod() sim.Time { return sim.Second / sim.Time(k.opts.Hz) }

// scheduleHardclock starts the fixed-phase periodic clock interrupt. Each
// tick does timekeeping work, expires callouts, and enforces the scheduler
// quantum; its end-of-handler trigger state is the soft-timer backup that
// bounds event delay at one tick.
func (k *Kernel) scheduleHardclock() {
	period := k.TickPeriod()
	// One closure for the handler body and one for the tick, both bound
	// here once — the per-tick path allocates nothing.
	body := func() {
		k.tick++
		// Reschedule at the next user-mode boundary when the
		// quantum expired, or when a ready process outranks the
		// running one (BSD recomputes priorities at clock ticks).
		if k.running != nil && len(k.runq) > 0 {
			if k.eng.Now()-k.running.quantumStart >= k.opts.Quantum {
				k.reschedule = true
			}
			for _, p := range k.runq {
				if p.Priority > k.running.Priority {
					k.reschedule = true
					break
				}
			}
		}
		k.callouts.wheel.Advance(uint64(k.tick))
	}
	var tick func()
	n := int64(0)
	tick = func() {
		n++
		k.eng.AtLabeled(sim.Time(n+1)*period, "hardclock", tick)
		k.RaiseInterrupt(SrcHardClock, k.opts.HardclockWork, body)
	}
	k.eng.AtLabeled(k.eng.Now()+period, "hardclock", tick)
}

// Tick returns the number of hardclock ticks taken so far.
func (k *Kernel) Tick() int64 { return k.tick }
