package core

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// newIdleHaltRig builds an otherwise-idle kernel with the power-saving
// idle-halt rule enabled.
func newIdleHaltRig() (*sim.Engine, *kernel.Kernel, *Facility) {
	eng := sim.NewEngine(21)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true, IdleHalt: true})
	f := New(k, Options{})
	return eng, k, f
}

func TestIdleHaltStopsPollingWhenNoEvents(t *testing.T) {
	eng, k, _ := newIdleHaltRig()
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	// With no soft events the CPU must halt: only hardclock trigger
	// states, no idle polls.
	if got := k.Meter().BySource[kernel.SrcIdle]; got != 0 {
		t.Fatalf("idle polls = %d with nothing scheduled, want 0 (halted)", got)
	}
	if k.Accounting().IdleHalts == 0 {
		t.Fatal("no idle halts recorded")
	}
	if got := k.Meter().BySource[kernel.SrcHardClock]; got < 90 {
		t.Fatalf("hardclock triggers = %d, want ~100", got)
	}
}

func TestIdleHaltKeepsPollingWhileEventPending(t *testing.T) {
	eng, k, f := newIdleHaltRig()
	k.Start()
	var firedAt sim.Time
	f.ScheduleSoftEvent(200, func(now sim.Time) sim.Time { // due at ~200us
		firedAt = now
		return 0
	})
	eng.RunFor(10 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("event never fired")
	}
	// The idle loop must have kept polling (the event is before the next
	// tick once within 1ms of it), so the event fires with idle-loop
	// precision, not at the 1ms hardclock.
	if firedAt > 250*sim.Microsecond {
		t.Fatalf("event fired at %v — idle loop did not poll for it", firedAt)
	}
	if got := k.Meter().BySource[kernel.SrcIdle]; got == 0 {
		t.Fatal("no idle polls while an event was pending")
	}
	// After the event fires, the CPU halts again: poll count stops.
	polls := k.Meter().BySource[kernel.SrcIdle]
	eng.RunFor(50 * sim.Millisecond)
	after := k.Meter().BySource[kernel.SrcIdle]
	if after != polls {
		t.Fatalf("idle polls kept accumulating after the last event: %d -> %d", polls, after)
	}
}

func TestIdleHaltFarFutureEventStillHalts(t *testing.T) {
	// An event 500ms out does not justify spinning: the CPU halts, and
	// closer to the deadline (within one tick) polling resumes; the
	// event still fires within the interrupt-clock bound.
	eng, k, f := newIdleHaltRig()
	k.Start()
	var firedAt sim.Time
	const T = 500_000 // 500ms in 1us ticks
	f.ScheduleSoftEvent(T, func(now sim.Time) sim.Time {
		firedAt = now
		return 0
	})
	eng.RunFor(sim.Second)
	if firedAt == 0 {
		t.Fatal("event never fired")
	}
	latency := firedAt
	if latency < 500*sim.Millisecond || latency > 502*sim.Millisecond {
		t.Fatalf("event fired at %v, want within a tick of 500ms", latency)
	}
	// The CPU must have mostly halted: far fewer than the ~250k polls a
	// spinning loop would do in 500ms.
	if polls := k.Meter().BySource[kernel.SrcIdle]; polls > 5000 {
		t.Fatalf("idle polls = %d, want mostly halted", polls)
	}
}

func TestIdleHaltPreservesInterruptWakeups(t *testing.T) {
	eng, k, _ := newIdleHaltRig()
	k.Start()
	woke := false
	eng.At(10*sim.Millisecond, func() {
		k.RaiseInterrupt(kernel.SrcDisk, sim.Microsecond, func() { woke = true })
	})
	eng.RunFor(20 * sim.Millisecond)
	if !woke {
		t.Fatal("interrupt did not wake the halted CPU")
	}
}
