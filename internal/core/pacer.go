package core

import (
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

// Pacer implements the paper's adaptive transmission-scheduling algorithm
// for rate-based clocking (Section 4.1):
//
//	"The algorithm uses two parameters, the target transmission rate and
//	the maximal allowable burst transmission rate. The algorithm keeps
//	track of the average transmission rate since the beginning of the
//	current train of transmitted packets. Normally, the next transmission
//	event is scheduled at an interval appropriate for achieving the
//	target transmission rate. However, when the actual transmission rate
//	falls behind the target transmission rate due to soft timer delays,
//	then the next transmission is scheduled at an interval corresponding
//	to the maximal allowable burst transmission rate."
//
// Only one transmission event is pending at a time; the next is scheduled
// from the previous handler, smoothing rate fluctuations instead of letting
// fixed-interval events pile up and fire in a burst.
type Pacer struct {
	f *Facility

	// TargetInterval is 1/target-rate: the desired packet spacing.
	TargetInterval sim.Time
	// MinInterval is 1/max-burst-rate: the tightest spacing allowed when
	// catching up (e.g. the link's back-to-back packet time).
	MinInterval sim.Time

	// Transmit sends one packet at the given time and returns the CPU
	// cost of doing so and whether more packets remain. When it returns
	// false the train ends and the pacer stops until Start.
	Transmit func(now sim.Time) (cost sim.Time, more bool)

	// Intervals, when non-nil, records the achieved inter-transmission
	// intervals in µs (Tables 4 and 5).
	Intervals *stats.Sample

	trainStart sim.Time
	lastSend   sim.Time
	sent       int64
	ev         *Event
	running    bool

	// Registry counters, shared by every pacer on the same kernel.
	mTrains *metrics.Counter
	mFires  *metrics.Counter
}

// NewPacer creates a pacer on f. target and min are intervals (inverse
// rates); transmit performs one packet transmission.
func NewPacer(f *Facility, target, min sim.Time, transmit func(now sim.Time) (sim.Time, bool)) *Pacer {
	if target <= 0 || min <= 0 {
		panic("core: pacer intervals must be positive")
	}
	if min > target {
		min = target
	}
	r := f.k.Metrics()
	return &Pacer{
		f: f, TargetInterval: target, MinInterval: min, Transmit: transmit,
		mTrains: r.Counter("pacer.trains"),
		mFires:  r.Counter("pacer.fires"),
	}
}

// Start begins a new packet train: the first transmission is scheduled one
// target interval from now.
func (p *Pacer) Start() {
	if p.running {
		return
	}
	p.running = true
	p.mTrains.Inc()
	// f.now(), not k.Now(): in emulation mode the train's rate accounting
	// must run on the same wall-mapped clock the fire handler observes.
	p.trainStart = p.f.now()
	p.lastSend = p.trainStart
	p.sent = 0
	p.schedule(p.TargetInterval)
}

// Stop cancels the pending transmission event and ends the train.
func (p *Pacer) Stop() {
	p.running = false
	if p.ev != nil {
		p.ev.Cancel()
		p.ev = nil
	}
}

// Running reports whether a train is in progress.
func (p *Pacer) Running() bool { return p.running }

// Sent returns the number of packets transmitted in the current train.
func (p *Pacer) Sent() int64 { return p.sent }

// schedule arms the next transmission event. The steady-state path revives
// the just-fired handle in place (Event.Rearm) — one wheel-node migration,
// zero allocations per packet — instead of minting a fresh event each
// period; Options.LegacyRearm keeps the old alloc-per-packet path for the
// telemetry-equivalence regression tests.
func (p *Pacer) schedule(interval sim.Time) {
	if p.ev != nil && !p.f.legacyRearm {
		p.ev.RearmAfter(interval)
		return
	}
	p.ev = p.f.ScheduleAfter(interval, p.fire)
}

func (p *Pacer) fire(now sim.Time) sim.Time {
	if !p.running {
		return 0
	}
	p.mFires.Inc()
	cost, more := p.Transmit(now)
	if p.Intervals != nil && p.sent > 0 {
		p.Intervals.Add((now - p.lastSend).Micros())
	}
	p.sent++
	p.lastSend = now
	if !more {
		p.running = false
		p.ev = nil
		return cost
	}
	// Average-rate catch-up: by target pacing, p.sent packets should
	// have taken sent*TargetInterval since the train began. If reality
	// is behind that schedule, send the next packet at the maximum
	// allowable burst rate; otherwise hold the target rate.
	expected := p.trainStart + sim.Time(p.sent)*p.TargetInterval
	if now > expected {
		p.schedule(p.MinInterval)
	} else {
		p.schedule(p.TargetInterval)
	}
	return cost
}
