package core_test

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// Example shows the paper's soft-timer interface end to end: build a
// simulated kernel, install the facility, and schedule a microsecond-scale
// event that fires at the first trigger state past its deadline.
func Example() {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
	f := core.New(k, core.Options{})
	k.Start()

	fmt.Println("resolution:", f.MeasureResolution(), "Hz")
	f.ScheduleSoftEvent(100, func(now sim.Time) sim.Time {
		fmt.Println("fired after", now)
		return 0
	})
	eng.RunFor(sim.Millisecond)
	// The idle loop polls every 2us, so the event fires just past its
	// 100us deadline — far finer than the 1ms interrupt clock.

	// Output:
	// resolution: 1000000 Hz
	// fired after 102us
}

// ExamplePacer demonstrates rate-based clocking: transmitting a packet
// train at a 50 µs target interval with a 12 µs burst floor, the paper's
// adaptive algorithm from Section 4.1.
func ExamplePacer() {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
	f := core.New(k, core.Options{})
	k.Start()

	sent := 0
	p := core.NewPacer(f, 50*sim.Microsecond, 12*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) {
			sent++
			return sim.Microsecond, sent < 100 // 1us of CPU per packet
		})
	p.Start()
	eng.RunFor(10 * sim.Millisecond)
	fmt.Println("sent:", sent)
	fmt.Println("running:", p.Running())

	// Output:
	// sent: 100
	// running: false
}

// ExampleMultiPacer clocks two connections at different rates from one
// soft-timer event stream — the capability a single hardware timer cannot
// provide.
func ExampleMultiPacer() {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
	f := core.New(k, core.Options{})
	k.Start()

	m := core.NewMultiPacer(f)
	fast, slow := 0, 0
	m.AddFlow(1, 40*sim.Microsecond, 12*sim.Microsecond,
		func(sim.Time) (sim.Time, bool) { fast++; return 0, fast < 100 })
	m.AddFlow(2, 200*sim.Microsecond, 12*sim.Microsecond,
		func(sim.Time) (sim.Time, bool) { slow++; return 0, slow < 20 })
	eng.RunFor(5 * sim.Millisecond)
	fmt.Println("fast flow sent:", fast)
	fmt.Println("slow flow sent:", slow)

	// Output:
	// fast flow sent: 100
	// slow flow sent: 20
}
