// Package core implements the paper's contribution: the soft-timer
// facility (Section 3), which schedules software events at microsecond
// granularity without hardware timer interrupts.
//
// The facility hooks every kernel trigger state — syscall returns, trap and
// interrupt handler exits, IP packet transmissions, the idle loop — and at
// each one performs a check costing a clock read and one comparison. When
// the earliest scheduled event is due, its handler runs right there, with
// procedure-call cost instead of interrupt cost: the CPU state is already
// saved and locality has already shifted. The kernel's periodic clock
// interrupt (hardclock) is itself a trigger state, so no event is ever
// delayed by more than one interrupt-clock period.
//
// The public operations mirror the paper's interface:
//
//	measure_resolution()         -> MeasureResolution
//	measure_time()               -> MeasureTime
//	schedule_soft_event(T, h)    -> ScheduleSoftEvent
//	interrupt_clock_resolution() -> InterruptClockResolution
//
// An event scheduled with parameter T fires at the first trigger state at
// which MeasureTime exceeds its scheduling time by at least T+1 ticks, so
// its actual latency obeys the paper's bound T < actual < T + X + 1, where
// X is the ratio of measurement to interrupt clock resolution.
package core

import (
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/timerwheel"
)

// Handler is a soft-timer event handler. It receives the current time and
// returns the CPU time its work consumes, which the facility charges to the
// trigger state that invoked it.
type Handler func(now sim.Time) sim.Time

// Options configures the facility.
type Options struct {
	// MeasureHz is the measurement clock resolution. Default 1 MHz (1 µs
	// ticks), the paper's "typical value". The paper's prototype reads
	// the CPU cycle counter; a 1 µs software view of it keeps the timing
	// wheel advance cheap without changing any observable behaviour at
	// the tens-of-µs event granularities of interest.
	MeasureHz uint64
	// WheelSlots sizes the hashed timing wheel. Default 256.
	WheelSlots int
	// Hierarchical selects the hierarchical wheel variant instead of the
	// hashed wheel (used by the timer-structure ablation benchmark).
	Hierarchical bool
	// LegacyRearm forces Pacer/MultiPacer to rearm by cancel+insert with a
	// fresh event per period instead of reviving their handle in place
	// (Event.Rearm) — the pre-reschedule baseline, kept selectable so the
	// regression tests can diff the two paths' telemetry byte for byte.
	LegacyRearm bool
	// TimeSource, when non-nil, replaces the kernel's virtual clock as the
	// facility's measurement clock. Emulation mode (sim.RealTimeClock)
	// supplies its wall-mapped VirtualNow here so measured trigger
	// intervals and firing delays reflect real elapsed time — engine lag
	// included — rather than the event-hop virtual clock; a catch-up burst
	// that fires "on time" in virtual terms still shows its true wall
	// delay. The source must be monotone non-decreasing. Nil (the default)
	// keeps the kernel clock and is byte-identical to the pre-seam
	// facility.
	TimeSource func() sim.Time
}

// Facility is the soft-timer facility, installed as a kernel TriggerSink.
type Facility struct {
	k       *kernel.Kernel
	wheel   timerwheel.Queue
	hashed  *timerwheel.Wheel // non-nil when the hashed variant is in use
	tickDur sim.Time
	hz      uint64
	// nowFn overrides the kernel clock as the measurement time base
	// (Options.TimeSource); nil in sim mode, where the kernel clock path
	// below stays byte-identical.
	nowFn func() sim.Time

	// Telemetry. The facility's counters live on the kernel's metrics
	// registry (softtimer.checks, softtimer.scheduled, ...); the Stats
	// method remains as a thin shim reading them, so pre-registry callers
	// are unaffected. Counter updates are pointer increments — the same
	// cost as the int64 fields they replaced.
	checks    *metrics.Counter
	scheduled *metrics.Counter
	fired     *metrics.Counter
	canceled  *metrics.Counter
	// overshoot tracks the worst observed delay beyond an event's
	// requested latency, in µs (high-water mark of the DelayHist input).
	overshoot *metrics.Gauge
	// FiresBySource counts event firings per trigger source.
	FiresBySource [kernel.NumSources]int64
	// DelayHist records, in µs, the delay d = actual - T beyond each
	// event's scheduled latency — the paper's d ∈ [0, X+1] variable
	// whose distribution Section 5.3 studies. It is registered on the
	// kernel's metrics registry as softtimer.delay_us.
	DelayHist *stats.Histogram

	legacyRearm bool

	// firing guards against re-entrant Trigger during handler execution;
	// currentSrc and pendingCost carry context between Trigger and the
	// wheel callbacks it fires (single-threaded, so fields suffice).
	firing      bool
	currentSrc  kernel.Source
	pendingCost sim.Time

	// freeEv heads the pooled-event free list (ScheduleSoftEventFree).
	freeEv *Event
}

// New installs a soft-timer facility on k and registers it as the kernel's
// trigger sink.
func New(k *kernel.Kernel, opts Options) *Facility {
	if opts.MeasureHz == 0 {
		opts.MeasureHz = 1_000_000
	}
	if opts.WheelSlots == 0 {
		opts.WheelSlots = 256
	}
	tickDur := sim.Second / sim.Time(opts.MeasureHz)
	if tickDur < 1 {
		tickDur = 1
	}
	f := &Facility{
		k:           k,
		tickDur:     tickDur,
		hz:          opts.MeasureHz,
		legacyRearm: opts.LegacyRearm,
		nowFn:       opts.TimeSource,
		DelayHist:   stats.NewHistogram(1, 2000),
	}
	if opts.Hierarchical {
		f.wheel = timerwheel.NewHierarchical()
	} else {
		f.hashed = timerwheel.New(opts.WheelSlots)
		f.wheel = f.hashed
	}
	r := k.Metrics()
	f.checks = r.Counter("softtimer.checks")
	f.scheduled = r.Counter("softtimer.scheduled")
	f.fired = r.Counter("softtimer.fired")
	f.canceled = r.Counter("softtimer.canceled")
	f.overshoot = r.Gauge("softtimer.overshoot_max_us")
	r.Adopt("softtimer.delay_us", f.DelayHist)
	r.GaugeFunc("softtimer.pending", func() int64 { return int64(f.wheel.Len()) })
	for s := kernel.Source(0); int(s) < kernel.NumSources; s++ {
		i := s
		r.CounterFunc("softtimer.fires."+i.String(), func() int64 { return f.FiresBySource[i] })
	}
	k.SetTriggerSink(f)
	return f
}

// MaxDelayUS returns the worst observed delay beyond any event's requested
// latency, in µs — the high-water mark the paper's bound d ≤ X+1 is
// asserted against. Zero until an event has fired.
func (f *Facility) MaxDelayUS() int64 { return f.overshoot.Max() }

// MeasureResolution returns the measurement clock resolution in Hz.
func (f *Facility) MeasureResolution() uint64 { return f.hz }

// MeasureTime returns the current time in measurement clock ticks. It is a
// monotonic interval clock, not synchronized to any standard time base. In
// emulation mode (Options.TimeSource) the ticks come from the wall-mapped
// clock instead of the kernel's virtual clock.
func (f *Facility) MeasureTime() uint64 {
	if f.nowFn != nil {
		return uint64(f.nowFn() / f.tickDur)
	}
	return uint64(f.k.Now() / f.tickDur)
}

// now returns the facility's time base: the kernel clock, or the override
// (Options.TimeSource) in emulation mode.
func (f *Facility) now() sim.Time {
	if f.nowFn != nil {
		return f.nowFn()
	}
	return f.k.Now()
}

// InterruptClockResolution returns the backup interrupt clock frequency in
// Hz — the minimum rate at which events are guaranteed to be checked, and
// therefore the worst-case granularity of the facility.
func (f *Facility) InterruptClockResolution() uint64 { return uint64(f.k.Hz()) }

// X returns the resolution ratio measure/interrupt — the width, in
// measurement ticks, of the event-firing bound T < actual < T + X + 1.
func (f *Facility) X() uint64 { return f.hz / uint64(f.k.Hz()) }

// Event is a handle to a scheduled soft-timer event.
type Event struct {
	f     *Facility
	t     *timerwheel.Timer
	sched uint64 // MeasureTime at scheduling
	T     uint64 // requested latency in ticks

	// Pooled events (ScheduleSoftEventFree) carry their handler and a
	// wheel callback bound once at pool entry, and recycle through next.
	h      Handler
	fireFn timerwheel.Handler
	pooled bool
	next   *Event
}

// Cancel removes the event if still pending; reports whether it was.
func (ev *Event) Cancel() bool {
	if ev.t.Cancel() {
		ev.f.canceled.Inc()
		return true
	}
	return false
}

// Pending reports whether the event has yet to fire.
func (ev *Event) Pending() bool { return ev.t.Pending() }

// Rearm schedules the event to fire again at least T measurement-clock
// ticks from now, reusing the handle, the handler, and the wheel node — no
// allocation in either state. A still-pending event migrates between wheel
// slots in place (Timer.Reschedule); a fired or canceled one has its node
// revived (Timer.Rearm). This is the rate-based-pacing primitive: Section
// 4.1's transmission events constantly move their own deadline, and paying
// cancel+insert (or a fresh event) per packet is pure queue overhead.
//
// Telemetry parity with the two-step baseline is exact: a pending rearm
// counts one cancellation plus one schedule, a fired rearm counts one
// schedule, and the wheel node lands in the same slot position a freshly
// scheduled timer would — so runs rearming in place and runs on
// Options.LegacyRearm produce byte-identical counters and traces.
func (ev *Event) Rearm(T uint64) {
	f := ev.f
	if ev.pooled {
		panic("core: rearm of a pooled event (pooled events have no handle)")
	}
	if ev.t.Pending() {
		f.canceled.Inc()
	}
	f.scheduled.Inc()
	now := f.MeasureTime()
	ev.sched, ev.T = now, T
	deadline := now + T + 1
	if !ev.t.Reschedule(deadline) {
		ev.t.Rearm(deadline, nil) // fired/canceled node: revive with its handler
	}
	f.k.NudgeIdle()
}

// RearmAfter is Rearm with a simulated-time latency, mirroring ScheduleAfter.
func (ev *Event) RearmAfter(d sim.Time) {
	ev.Rearm(uint64(d / ev.f.tickDur))
}

// ScheduleSoftEvent schedules h to be called at least T measurement-clock
// ticks in the future. The handler runs at the first trigger state after
// the deadline; its delay beyond T is bounded by the interrupt clock
// period.
func (f *Facility) ScheduleSoftEvent(T uint64, h Handler) *Event {
	if h == nil {
		panic("core: ScheduleSoftEvent with nil handler")
	}
	f.scheduled.Inc()
	now := f.MeasureTime()
	ev := &Event{f: f, sched: now, T: T}
	// "+1 accounts for the fact that the time at which the event was
	// scheduled may not exactly coincide with a clock tick" (Section 3).
	deadline := now + T + 1
	defer f.k.NudgeIdle() // a halted idle CPU may now have a reason to poll
	ev.h = h
	ev.t = f.wheel.Schedule(deadline, ev.fire)
	return ev
}

// fire is the wheel callback shared by both scheduling paths: account the
// firing, record its delay, and run the handler. Pooled events recycle
// before the handler runs, so a handler that immediately reschedules
// reuses its own record.
func (ev *Event) fire(fireTick timerwheel.Tick) {
	f := ev.f
	f.fired.Inc()
	f.FiresBySource[f.currentSrc]++
	// d = actual latency minus T, in ticks; convert to µs.
	d := float64(fireTick-ev.sched-ev.T) * float64(f.tickDur) / float64(sim.Microsecond)
	f.DelayHist.Add(d)
	f.overshoot.SetMax(int64(d)) // worst-case delay, µs (truncated)
	h := ev.h
	if ev.pooled {
		ev.h, ev.t = nil, nil
		ev.next = f.freeEv
		f.freeEv = ev
	}
	f.pendingCost += f.k.Profile().SoftCall + h(f.now())
}

// ScheduleSoftEventFree schedules h exactly like ScheduleSoftEvent but
// returns no handle: the event record comes from a per-facility pool and
// is recycled the moment it fires, so steady-state rearm loops (probes,
// polls) schedule without allocating. Use it whenever the caller would
// discard the *Event — there is nothing to Cancel.
func (f *Facility) ScheduleSoftEventFree(T uint64, h Handler) {
	if h == nil {
		panic("core: ScheduleSoftEvent with nil handler")
	}
	f.scheduled.Inc()
	now := f.MeasureTime()
	ev := f.freeEv
	if ev == nil {
		ev = &Event{f: f, pooled: true}
		ev.fireFn = ev.fire // bound once; reused across recycles
	} else {
		f.freeEv = ev.next
		ev.next = nil
	}
	ev.sched, ev.T, ev.h = now, T, h
	defer f.k.NudgeIdle()
	f.wheel.ScheduleFree(now+T+1, ev.fireFn)
}

// ScheduleAfter is a convenience wrapper scheduling h at least d of
// simulated time in the future.
func (f *Facility) ScheduleAfter(d sim.Time, h Handler) *Event {
	ticks := uint64(d / f.tickDur)
	return f.ScheduleSoftEvent(ticks, h)
}

// Trigger implements kernel.TriggerSink: the per-trigger-state check and,
// when events are due, their execution. Returns the CPU time consumed by
// handlers (the check itself is accounted via Checks).
func (f *Facility) Trigger(src kernel.Source, now sim.Time) sim.Time {
	f.checks.Inc()
	if f.firing {
		// A handler's own work produced a nested trigger state; the
		// facility does not recurse (handlers already run back to back).
		return 0
	}
	if f.nowFn != nil {
		// Emulation mode: the wheel runs on wall-mapped ticks, so the due
		// check must too — the virtual now passed in lags real time during
		// catch-up bursts.
		now = f.nowFn()
	}
	tick := timerwheel.Tick(now / f.tickDur)
	if f.hashed != nil {
		if !f.hashed.Due(tick) {
			return 0
		}
	} else if e := f.wheel.Earliest(); e == timerwheel.NoDeadline || e > tick {
		return 0
	}
	f.firing = true
	f.currentSrc = src
	f.pendingCost = 0
	f.wheel.Advance(tick)
	f.firing = false
	return f.pendingCost
}

// Stats reports the facility's counters.
type Stats struct {
	Checks    int64 // trigger states examined
	Scheduled int64 // events scheduled
	Fired     int64 // events fired
	Canceled  int64 // events canceled
	// CheckOverhead is the estimated total CPU cost of all checks
	// (Checks × the profile's per-check cost) — the "base overhead"
	// Section 5.2 finds unobservable.
	CheckOverhead sim.Time
}

// Stats returns a snapshot of the facility's counters. It is a thin shim
// over the metrics registry (the counters live there as softtimer.*); the
// struct remains for pre-registry callers.
func (f *Facility) Stats() Stats {
	return Stats{
		Checks:        f.checks.Value(),
		Scheduled:     f.scheduled.Value(),
		Fired:         f.fired.Value(),
		Canceled:      f.canceled.Value(),
		CheckOverhead: sim.Time(f.checks.Value()) * f.k.Profile().SoftCheck,
	}
}

// Pending returns the number of scheduled-but-unfired events.
func (f *Facility) Pending() int { return f.wheel.Len() }

// EventBefore implements kernel.IdleAdvisor: it reports whether any
// soft-timer event is due before time t, letting the idle loop halt for
// power saving when nothing needs microsecond service before the next
// hardclock tick (Section 3's idle-halt rule).
func (f *Facility) EventBefore(t sim.Time) bool {
	e := f.wheel.Earliest()
	if e == timerwheel.NoDeadline {
		return false
	}
	return sim.Time(e)*f.tickDur < t
}
