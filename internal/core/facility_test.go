package core

import (
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

func newRig(opts kernel.Options, fopts Options) (*sim.Engine, *kernel.Kernel, *Facility) {
	eng := sim.NewEngine(7)
	k := kernel.New(eng, cpu.PentiumII300(), opts)
	f := New(k, fopts)
	return eng, k, f
}

func TestResolutions(t *testing.T) {
	_, _, f := newRig(kernel.Options{Hz: 1000}, Options{})
	if f.MeasureResolution() != 1_000_000 {
		t.Fatalf("MeasureResolution = %d, want 1MHz default", f.MeasureResolution())
	}
	if f.InterruptClockResolution() != 1000 {
		t.Fatalf("InterruptClockResolution = %d, want 1000", f.InterruptClockResolution())
	}
	// Paper Section 3: "With typical values ... of 1 MHz and 1 KHz,
	// respectively, X is 1000".
	if f.X() != 1000 {
		t.Fatalf("X = %d, want 1000", f.X())
	}
}

func TestMeasureTimeAdvances(t *testing.T) {
	eng, _, f := newRig(kernel.Options{}, Options{})
	if f.MeasureTime() != 0 {
		t.Fatal("MeasureTime should start at 0")
	}
	eng.RunUntil(5500 * sim.Microsecond)
	if got := f.MeasureTime(); got != 5500 {
		t.Fatalf("MeasureTime = %d ticks, want 5500 (1us ticks)", got)
	}
}

func TestEventFiringBounds(t *testing.T) {
	// With the idle loop on (2us polls), an event scheduled for T ticks
	// must fire within (T, T+X+1] ticks, and in practice within a few
	// idle polls of its deadline.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	var firedAt sim.Time
	k.Start()
	const T = 100 // 100us
	schedAt := eng.Now()
	f.ScheduleSoftEvent(T, func(now sim.Time) sim.Time {
		firedAt = now
		return sim.Microsecond
	})
	eng.RunFor(10 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("event never fired")
	}
	latency := firedAt - schedAt
	if latency <= T*sim.Microsecond {
		t.Fatalf("fired after %v, bound requires > %dus", latency, T)
	}
	if latency > (T+10)*sim.Microsecond {
		t.Fatalf("fired after %v — idle loop should have caught it near %dus", latency, T)
	}
}

func TestHardclockBackupBoundsDelay(t *testing.T) {
	// A compute-bound process with no syscalls: the ONLY trigger states
	// are hardclock ticks, so the event fires at the next tick after its
	// deadline — the paper's upper bound T + X + 1.
	eng, k, f := newRig(kernel.Options{IdleLoop: false}, Options{})
	k.Spawn("spin", func(p *kernel.Proc) {
		var loop func()
		loop = func() { p.Compute(sim.Second, loop) }
		loop()
	})
	k.Start()
	var firedAt sim.Time
	eng.RunUntil(100 * sim.Microsecond) // let the proc start
	sched := eng.Now()
	f.ScheduleSoftEvent(100, func(now sim.Time) sim.Time { // due at ~200us
		firedAt = now
		return 0
	})
	eng.RunFor(20 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("event never fired — hardclock backup broken")
	}
	latency := firedAt - sched
	if latency < 100*sim.Microsecond {
		t.Fatalf("fired too early: %v", latency)
	}
	// Must fire at the first hardclock tick after the deadline (1ms
	// boundary plus handler time), never beyond two ticks.
	if latency > 2*sim.Millisecond {
		t.Fatalf("fired after %v, beyond the interrupt-clock bound", latency)
	}
}

func TestDelayDistributionRecorded(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	var reschedule func(now sim.Time) sim.Time
	n := 0
	reschedule = func(now sim.Time) sim.Time {
		n++
		if n < 100 {
			f.ScheduleSoftEvent(20, reschedule)
		}
		return 500 // 0.5us handler
	}
	f.ScheduleSoftEvent(20, reschedule)
	eng.RunFor(50 * sim.Millisecond)
	if n != 100 {
		t.Fatalf("fired %d times, want 100", n)
	}
	if f.DelayHist.N() != 100 {
		t.Fatalf("delay samples = %d", f.DelayHist.N())
	}
	// Delays should be small (idle loop polls every 2us).
	if mean := f.DelayHist.Mean(); mean > 10 {
		t.Fatalf("mean delay = %vus, want small under idle polling", mean)
	}
	st := f.Stats()
	if st.Fired != 100 || st.Scheduled != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Checks == 0 || st.CheckOverhead == 0 {
		t.Fatal("checks not counted")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	fired := false
	ev := f.ScheduleSoftEvent(50, func(sim.Time) sim.Time { fired = true; return 0 })
	if !ev.Pending() {
		t.Fatal("event not pending")
	}
	if !ev.Cancel() {
		t.Fatal("cancel failed")
	}
	if ev.Cancel() {
		t.Fatal("double cancel succeeded")
	}
	eng.RunFor(10 * sim.Millisecond)
	if fired {
		t.Fatal("canceled event fired")
	}
	if f.Stats().Canceled != 1 {
		t.Fatalf("canceled count = %d", f.Stats().Canceled)
	}
}

func TestNilHandlerPanics(t *testing.T) {
	_, _, f := newRig(kernel.Options{}, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	f.ScheduleSoftEvent(10, nil)
}

func TestHandlerCostChargedToKernel(t *testing.T) {
	// Handler cost (SoftCall + returned work) must appear in the
	// kernel's SoftTimer accounting.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	f.ScheduleSoftEvent(10, func(sim.Time) sim.Time { return 5 * sim.Microsecond })
	eng.RunFor(5 * sim.Millisecond)
	want := cpu.PentiumII300().SoftCall + 5*sim.Microsecond
	if got := k.Accounting().SoftTimer; got != want {
		t.Fatalf("SoftTimer accounting = %v, want %v", got, want)
	}
}

func TestFiresBySource(t *testing.T) {
	// With only the idle loop producing triggers, fires attribute to the
	// idle source.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	f.ScheduleSoftEvent(5, func(sim.Time) sim.Time { return 0 })
	eng.RunFor(sim.Millisecond) // fires from idle well before hardclock
	if f.FiresBySource[kernel.SrcIdle] != 1 {
		t.Fatalf("FiresBySource = %v, want 1 idle fire", f.FiresBySource)
	}
}

func TestHierarchicalVariant(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{Hierarchical: true})
	k.Start()
	fired := 0
	for i := uint64(1); i <= 10; i++ {
		f.ScheduleSoftEvent(i*30, func(sim.Time) sim.Time { fired++; return 0 })
	}
	eng.RunFor(10 * sim.Millisecond)
	if fired != 10 {
		t.Fatalf("hierarchical wheel fired %d of 10", fired)
	}
}

func TestHandlerSchedulingMoreEvents(t *testing.T) {
	// The canonical usage: each handler schedules the next event (the
	// pacing pattern). The immediately-due reschedule must not fire
	// within the same trigger state.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	var times []sim.Time
	var h Handler
	h = func(now sim.Time) sim.Time {
		times = append(times, now)
		if len(times) < 5 {
			f.ScheduleSoftEvent(0, h) // due ASAP
		}
		return 0
	}
	f.ScheduleSoftEvent(10, h)
	eng.RunFor(5 * sim.Millisecond)
	if len(times) != 5 {
		t.Fatalf("fired %d of 5 chained events", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("chained events fired at non-increasing times: %v", times)
		}
	}
}
