package core

import (
	"math"
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

func TestPacerValidation(t *testing.T) {
	_, _, f := newRig(kernel.Options{}, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("zero target did not panic")
		}
	}()
	NewPacer(f, 0, 0, nil)
}

func TestPacerClampsMinToTarget(t *testing.T) {
	_, _, f := newRig(kernel.Options{}, Options{})
	p := NewPacer(f, 40*sim.Microsecond, 60*sim.Microsecond, nil)
	if p.MinInterval != 40*sim.Microsecond {
		t.Fatalf("MinInterval = %v, want clamped to target", p.MinInterval)
	}
}

func TestPacerAchievesTargetRateUnderFineTriggers(t *testing.T) {
	// With the idle loop polling every 2us, trigger states are plentiful
	// and the pacer should hold the target interval almost exactly.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	const n = 1000
	sent := 0
	p := NewPacer(f, 40*sim.Microsecond, 12*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) {
			sent++
			return sim.Microsecond, sent < n
		})
	p.Intervals = &stats.Sample{}
	p.Start()
	eng.RunFor(100 * sim.Millisecond)
	if sent != n {
		t.Fatalf("sent %d of %d", sent, n)
	}
	if p.Running() {
		t.Fatal("pacer still running after train end")
	}
	mean := p.Intervals.Mean()
	if math.Abs(mean-40) > 3 {
		t.Fatalf("mean interval = %v us, want ~40", mean)
	}
}

func TestPacerOnePacketPerTriggerWhenStarved(t *testing.T) {
	// Sparse trigger states (compute-bound process, no idle loop, 100us
	// syscall cadence): the paper's algorithm deliberately transmits at
	// most ONE packet per soft-timer event ("transmitting multiple
	// packets per timer event would lead to bursty packet transmissions
	// and defeat the purpose of rate-based clocking"), so the achieved
	// interval degrades to the trigger cadence — never below it — and
	// the burst interval merely makes every trigger state eligible.
	eng := sim.NewEngine(9)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: false})
	f := New(k, Options{})
	k.Spawn("busy", func(p *kernel.Proc) {
		var loop func()
		loop = func() {
			p.Compute(95*sim.Microsecond, func() {
				p.Syscall("s", 5*sim.Microsecond, loop)
			})
		}
		loop()
	})
	k.Start()
	const n = 500
	sent := 0
	var start, end sim.Time
	p := NewPacer(f, 40*sim.Microsecond, 12*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) {
			if sent == 0 {
				start = now
			}
			sent++
			end = now
			return 500, sent < n
		})
	p.Intervals = &stats.Sample{}
	p.Start()
	eng.RunFor(sim.Second)
	if sent != n {
		t.Fatalf("sent %d of %d", sent, n)
	}
	// One packet per ~100us trigger: the whole train takes ~n*100us.
	total := (end - start).Micros()
	perTrigger := float64(n) * 100
	if total < perTrigger*0.8 {
		t.Fatalf("train took %.0fus — faster than one packet per trigger state (%0.fus), "+
			"so multiple packets fired per event", total, perTrigger)
	}
	if total > perTrigger*1.2 {
		t.Fatalf("train took %.0fus, want ~%.0fus (every trigger state used when behind)", total, perTrigger)
	}
	// Because the pacer is perpetually behind target, every interval
	// should be scheduled at burst eligibility: min interval < observed
	// interval ≈ trigger cadence.
	if med := p.Intervals.Median(); med < 95 || med > 115 {
		t.Fatalf("median interval = %vus, want ~100 (trigger cadence)", med)
	}
}

func TestPacerStopCancelsPending(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	sent := 0
	p := NewPacer(f, 50*sim.Microsecond, 10*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) { sent++; return 0, true })
	p.Start()
	eng.RunFor(sim.Millisecond)
	p.Stop()
	before := sent
	eng.RunFor(5 * sim.Millisecond)
	if sent != before {
		t.Fatalf("pacer sent %d packets after Stop", sent-before)
	}
	if f.Pending() != 0 {
		t.Fatalf("facility still has %d pending events after Stop", f.Pending())
	}
}

func TestPacerStartIsIdempotent(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	sent := 0
	p := NewPacer(f, 100*sim.Microsecond, 10*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) { sent++; return 0, sent < 5 })
	p.Start()
	p.Start() // no double train
	eng.RunFor(2 * sim.Millisecond)
	if sent != 5 {
		t.Fatalf("sent = %d, want 5", sent)
	}
	if got := p.Sent(); got != 5 {
		t.Fatalf("Sent() = %d", got)
	}
}
