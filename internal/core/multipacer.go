package core

import (
	"fmt"

	"softtimers/internal/metrics"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
)

// MultiPacer rate-clocks many connections simultaneously, each at its own
// target rate, from a single soft-timer event stream — the capability the
// paper holds over hardware timers, which cannot time several rates at
// once ("only a single hardware timer device is available in most
// systems... It is impossible, therefore, to use a hardware timer to
// simultaneously clock multiple transmissions at different rates").
//
// One soft-timer event is pending at a time, scheduled for the earliest
// flow deadline. When it fires, every flow whose next transmission is due
// sends exactly one packet — "multiple packets may be transmitted on
// different connections in a single soft timer event (i.e., in the context
// of one trigger state)" — and the event is rescheduled for the new
// earliest deadline. Per-flow catch-up follows the Section 4.1 algorithm:
// a flow that has fallen behind its target schedule becomes eligible at
// its maximal burst rate.
type MultiPacer struct {
	f     *Facility
	flows map[int]*pacedFlow
	ev    *Event

	// Registry counters (shared across multipacers on one kernel).
	mFires *metrics.Counter // handler invocations
	mSent  *metrics.Counter // packets transmitted
}

// pacedFlow is one connection's pacing state.
type pacedFlow struct {
	id         int
	target     sim.Time // 1/target rate
	min        sim.Time // 1/max burst rate
	transmit   func(now sim.Time) (cost sim.Time, more bool)
	trainStart sim.Time
	lastSend   sim.Time
	sent       int64
	next       sim.Time // next eligible transmission time
	intervals  *stats.Sample
}

// NewMultiPacer creates an empty multi-connection pacer on f.
func NewMultiPacer(f *Facility) *MultiPacer {
	r := f.k.Metrics()
	return &MultiPacer{
		f: f, flows: make(map[int]*pacedFlow),
		mFires: r.Counter("pacer.multi_fires"),
		mSent:  r.Counter("pacer.multi_sent"),
	}
}

// AddFlow starts pacing a connection at the given target interval (with
// catch-up bursts no tighter than min). transmit sends one packet and
// reports its CPU cost and whether the flow has more to send; when it
// returns false the flow is removed. Adding an existing id panics.
func (m *MultiPacer) AddFlow(id int, target, min sim.Time,
	transmit func(now sim.Time) (sim.Time, bool)) {
	if target <= 0 || min <= 0 {
		panic("core: multipacer intervals must be positive")
	}
	if min > target {
		min = target
	}
	if _, dup := m.flows[id]; dup {
		panic(fmt.Sprintf("core: duplicate paced flow %d", id))
	}
	now := m.f.k.Now()
	fl := &pacedFlow{
		id: id, target: target, min: min, transmit: transmit,
		trainStart: now, lastSend: now,
		next:      now + target,
		intervals: &stats.Sample{},
	}
	m.flows[id] = fl
	m.rearm()
}

// RemoveFlow stops pacing a connection; reports whether it existed.
func (m *MultiPacer) RemoveFlow(id int) bool {
	if _, ok := m.flows[id]; !ok {
		return false
	}
	delete(m.flows, id)
	m.rearm()
	return true
}

// Flows returns the number of actively paced connections.
func (m *MultiPacer) Flows() int { return len(m.flows) }

// Intervals returns the recorded inter-transmission intervals (µs) for a
// flow, or nil if unknown.
func (m *MultiPacer) Intervals(id int) *stats.Sample {
	if fl, ok := m.flows[id]; ok {
		return fl.intervals
	}
	return nil
}

// Sent returns the packets transmitted on a flow so far.
func (m *MultiPacer) Sent(id int) int64 {
	if fl, ok := m.flows[id]; ok {
		return fl.sent
	}
	return 0
}

// earliest returns the soonest per-flow deadline, or false if no flows.
func (m *MultiPacer) earliest() (sim.Time, bool) {
	var min sim.Time = 1<<63 - 1
	found := false
	for _, fl := range m.flows {
		if fl.next < min {
			min = fl.next
			found = true
		}
	}
	return min, found
}

// rearm (re)schedules the single soft event for the earliest deadline,
// keeping exactly one outstanding. The steady-state path moves the
// existing event in place (Event.Rearm: a pending handle migrates wheel
// slots, a just-fired one is revived) instead of cancel+insert with a
// fresh event per deadline change; Options.LegacyRearm keeps the two-step
// baseline for the telemetry-equivalence regression tests.
func (m *MultiPacer) rearm() {
	deadline, ok := m.earliest()
	if !ok {
		if m.ev != nil {
			m.ev.Cancel()
			m.ev = nil
		}
		return
	}
	now := m.f.k.Now()
	d := deadline - now
	if d < 0 {
		d = 0
	}
	if m.ev != nil && !m.f.legacyRearm {
		m.ev.RearmAfter(d)
		return
	}
	if m.ev != nil {
		m.ev.Cancel()
	}
	m.ev = m.f.ScheduleAfter(d, m.fire)
}

// fire services every due flow with one packet each, then rearms.
func (m *MultiPacer) fire(now sim.Time) sim.Time {
	m.mFires.Inc()
	var cost sim.Time
	// Deterministic service order: ascending id (map order is random).
	ids := make([]int, 0, len(m.flows))
	for id := range m.flows {
		ids = append(ids, id)
	}
	sortInts(ids)
	for _, id := range ids {
		fl := m.flows[id]
		if fl.next > now {
			continue
		}
		c, more := fl.transmit(now)
		cost += c
		m.mSent.Inc()
		if fl.sent > 0 {
			fl.intervals.Add((now - fl.lastSend).Micros())
		}
		fl.sent++
		fl.lastSend = now
		if !more {
			delete(m.flows, id)
			continue
		}
		// Section 4.1 catch-up: behind the target schedule → eligible
		// again at the burst interval; otherwise at the target interval.
		expected := fl.trainStart + sim.Time(fl.sent)*fl.target
		if now > expected {
			fl.next = now + fl.min
		} else {
			fl.next = now + fl.target
		}
	}
	// m.ev just fired but the handle is kept: rearm revives its node in
	// place (the legacy path's Cancel of the fired handle is a no-op).
	m.rearm()
	return cost
}

// sortInts is a tiny insertion sort (flow counts are small; avoids pulling
// in sort for the hot path).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
