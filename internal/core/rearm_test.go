package core

import (
	"encoding/json"
	"testing"

	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// The rearm-equivalence contract: Pacer and MultiPacer rearming their
// handle in place (Event.Rearm) must produce exactly the telemetry the
// cancel+insert baseline (Options.LegacyRearm) produces — every counter,
// gauge, and histogram bucket, byte for byte. A pending rearm counts one
// cancel plus one schedule; a fired rearm counts one schedule; the wheel
// node lands in the slot position a fresh insert would take.

// rearmSnapshot runs one pacing workload and returns the kernel's full
// metrics snapshot as canonical JSON.
func rearmSnapshot(t *testing.T, legacy bool, drive func(eng *sim.Engine, f *Facility)) []byte {
	t.Helper()
	eng := sim.NewEngine(7)
	k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
	f := New(k, Options{LegacyRearm: legacy})
	k.Start()
	drive(eng, f)
	b, err := json.Marshal(k.Metrics().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPacerRearmMatchesLegacyTelemetry(t *testing.T) {
	drive := func(eng *sim.Engine, f *Facility) {
		sent := 0
		p := NewPacer(f, 40*sim.Microsecond, 12*sim.Microsecond,
			func(now sim.Time) (sim.Time, bool) {
				sent++
				return sim.Microsecond, sent < 2000
			})
		p.Start()
		eng.RunFor(200 * sim.Millisecond)
		if sent != 2000 {
			t.Fatalf("sent %d of 2000", sent)
		}
		// Restart after the train ends: the in-place path revives the fired
		// handle where the legacy path schedules a fresh event.
		sent = 0
		p.Start()
		eng.RunFor(200 * sim.Millisecond)
		if sent != 2000 {
			t.Fatalf("second train sent %d of 2000", sent)
		}
	}
	inPlace := rearmSnapshot(t, false, drive)
	legacy := rearmSnapshot(t, true, drive)
	if string(inPlace) != string(legacy) {
		t.Fatalf("pacer telemetry diverged between in-place rearm (%d bytes) and cancel+insert (%d bytes)",
			len(inPlace), len(legacy))
	}
}

func TestMultiPacerRearmMatchesLegacyTelemetry(t *testing.T) {
	drive := func(eng *sim.Engine, f *Facility) {
		m := NewMultiPacer(f)
		sent := map[int]int{}
		mk := func(id, limit int) func(sim.Time) (sim.Time, bool) {
			return func(sim.Time) (sim.Time, bool) {
				sent[id]++
				return sim.Microsecond, sent[id] < limit
			}
		}
		// Staggered flows: adds and removals constantly move the earliest
		// deadline, so the shared event rearms in both directions (earlier
		// and later) and empties out mid-run before flow 3 revives it.
		m.AddFlow(1, 40*sim.Microsecond, 12*sim.Microsecond, mk(1, 1500))
		m.AddFlow(2, 100*sim.Microsecond, 12*sim.Microsecond, mk(2, 400))
		eng.RunFor(100 * sim.Millisecond)
		m.AddFlow(3, 60*sim.Microsecond, 12*sim.Microsecond, mk(3, 700))
		eng.RunFor(100 * sim.Millisecond)
		if sent[1] != 1500 || sent[2] != 400 || sent[3] != 700 {
			t.Fatalf("sent = %v, want all trains complete", sent)
		}
		if m.Flows() != 0 {
			t.Fatalf("flows remaining = %d", m.Flows())
		}
	}
	inPlace := rearmSnapshot(t, false, drive)
	legacy := rearmSnapshot(t, true, drive)
	if string(inPlace) != string(legacy) {
		t.Fatalf("multipacer telemetry diverged between in-place rearm (%d bytes) and cancel+insert (%d bytes)",
			len(inPlace), len(legacy))
	}
}

// Event.Rearm's counter contract directly: a pending rearm is one cancel
// plus one schedule; a fired rearm is one schedule only — the exact
// accounting a cancel+insert (or fresh schedule) would produce.
func TestEventRearmCounterParity(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	ev := f.ScheduleSoftEvent(50, func(sim.Time) sim.Time { return 0 })
	s0 := f.Stats()
	ev.Rearm(80) // pending: cancel + schedule
	s1 := f.Stats()
	if s1.Canceled != s0.Canceled+1 || s1.Scheduled != s0.Scheduled+1 {
		t.Fatalf("pending rearm: canceled %d->%d scheduled %d->%d, want +1/+1",
			s0.Canceled, s1.Canceled, s0.Scheduled, s1.Scheduled)
	}
	eng.RunFor(sim.Millisecond)
	if ev.Pending() {
		t.Fatal("event did not fire")
	}
	s2 := f.Stats()
	ev.Rearm(30) // fired: schedule only
	s3 := f.Stats()
	if s3.Canceled != s2.Canceled || s3.Scheduled != s2.Scheduled+1 {
		t.Fatalf("fired rearm: canceled %d->%d scheduled %d->%d, want +0/+1",
			s2.Canceled, s3.Canceled, s2.Scheduled, s3.Scheduled)
	}
	if !ev.Pending() {
		t.Fatal("fired event not pending after rearm")
	}
	fired := s3.Fired
	eng.RunFor(sim.Millisecond)
	if got := f.Stats().Fired; got != fired+1 {
		t.Fatalf("revived event fired %d times, want 1", got-fired)
	}
}
