package core

import (
	"math"
	"testing"

	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

func TestMultiPacerValidation(t *testing.T) {
	_, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	_ = k
	m := NewMultiPacer(f)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero target did not panic")
			}
		}()
		m.AddFlow(1, 0, 0, nil)
	}()
	m.AddFlow(1, 100*sim.Microsecond, 10*sim.Microsecond,
		func(sim.Time) (sim.Time, bool) { return 0, true })
	defer func() {
		if recover() == nil {
			t.Error("duplicate flow did not panic")
		}
	}()
	m.AddFlow(1, 100*sim.Microsecond, 10*sim.Microsecond, nil)
}

func TestMultiPacerTwoRatesSimultaneously(t *testing.T) {
	// The capability hardware timers lack: clock one flow every 40us and
	// another every 100us at the same time, from one event stream.
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	m := NewMultiPacer(f)
	sent := map[int]int{}
	mk := func(id, limit int) func(sim.Time) (sim.Time, bool) {
		return func(sim.Time) (sim.Time, bool) {
			sent[id]++
			return sim.Microsecond, sent[id] < limit
		}
	}
	m.AddFlow(1, 40*sim.Microsecond, 12*sim.Microsecond, mk(1, 2000))
	m.AddFlow(2, 100*sim.Microsecond, 12*sim.Microsecond, mk(2, 800))
	eng.RunFor(100 * sim.Millisecond)
	if sent[1] != 2000 || sent[2] != 800 {
		t.Fatalf("sent = %v, want both trains complete", sent)
	}
	iv1 := m.Intervals(1)
	_ = iv1 // flow removed on completion; check below via timing
	// Rates: flow 1 should finish ~2000*40us = 80ms; flow 2 ~800*100us =
	// 80ms — both complete within the run and at distinct rates. Verify
	// flows were NOT serialized: combined duration far below the sum.
	if m.Flows() != 0 {
		t.Fatalf("flows remaining = %d", m.Flows())
	}
}

func TestMultiPacerHoldsPerFlowRates(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	m := NewMultiPacer(f)
	const n = 1000
	c1, c2 := 0, 0
	var end1, end2 sim.Time
	m.AddFlow(1, 50*sim.Microsecond, 12*sim.Microsecond, func(now sim.Time) (sim.Time, bool) {
		c1++
		end1 = now
		return 500, c1 < n
	})
	m.AddFlow(2, 150*sim.Microsecond, 12*sim.Microsecond, func(now sim.Time) (sim.Time, bool) {
		c2++
		end2 = now
		return 500, c2 < n
	})
	eng.RunFor(sim.Second)
	if c1 != n || c2 != n {
		t.Fatalf("sent %d/%d", c1, c2)
	}
	r1 := end1.Seconds() / (float64(n) * 50e-6)
	r2 := end2.Seconds() / (float64(n) * 150e-6)
	if math.Abs(r1-1) > 0.1 {
		t.Errorf("flow 1 duration ratio = %.2f, want ~1 (held 50us rate)", r1)
	}
	if math.Abs(r2-1) > 0.1 {
		t.Errorf("flow 2 duration ratio = %.2f, want ~1 (held 150us rate)", r2)
	}
}

func TestMultiPacerSingleEventOutstanding(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	m := NewMultiPacer(f)
	for id := 1; id <= 10; id++ {
		id := id
		m.AddFlow(id, sim.Time(id)*30*sim.Microsecond, 12*sim.Microsecond,
			func(sim.Time) (sim.Time, bool) { return 0, true })
	}
	eng.RunFor(10 * sim.Millisecond)
	// 10 flows but never more than one pending soft event.
	if p := f.Pending(); p > 1 {
		t.Fatalf("pending events = %d, want <= 1", p)
	}
	if m.Flows() != 10 {
		t.Fatalf("flows = %d", m.Flows())
	}
}

func TestMultiPacerRemoveFlow(t *testing.T) {
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	m := NewMultiPacer(f)
	count := 0
	m.AddFlow(7, 50*sim.Microsecond, 12*sim.Microsecond,
		func(sim.Time) (sim.Time, bool) { count++; return 0, true })
	eng.RunFor(sim.Millisecond)
	if count == 0 {
		t.Fatal("flow never sent")
	}
	if !m.RemoveFlow(7) {
		t.Fatal("remove failed")
	}
	if m.RemoveFlow(7) {
		t.Fatal("double remove succeeded")
	}
	before := count
	eng.RunFor(5 * sim.Millisecond)
	if count != before {
		t.Fatalf("removed flow kept sending (%d -> %d)", before, count)
	}
	if f.Pending() != 0 {
		t.Fatalf("events still pending after last flow removed: %d", f.Pending())
	}
}

func TestMultiPacerSharedEventServesMultipleDueFlows(t *testing.T) {
	// Two flows at the same rate become due together: one soft event
	// must service both (the paper: multiple packets on different
	// connections per trigger state).
	eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
	k.Start()
	m := NewMultiPacer(f)
	var times1, times2 []sim.Time
	m.AddFlow(1, 100*sim.Microsecond, 12*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) { times1 = append(times1, now); return 0, len(times1) < 20 })
	m.AddFlow(2, 100*sim.Microsecond, 12*sim.Microsecond,
		func(now sim.Time) (sim.Time, bool) { times2 = append(times2, now); return 0, len(times2) < 20 })
	eng.RunFor(5 * sim.Millisecond)
	if len(times1) != 20 || len(times2) != 20 {
		t.Fatalf("sent %d/%d", len(times1), len(times2))
	}
	same := 0
	for i := range times1 {
		if times1[i] == times2[i] {
			same++
		}
	}
	if same < 15 {
		t.Fatalf("only %d/20 transmissions shared an event; flows should batch", same)
	}
	st := f.Stats()
	if st.Fired >= 40 {
		t.Fatalf("fired %d events for 40 sends; sharing broken", st.Fired)
	}
}

func TestMultiPacerDeterministicOrder(t *testing.T) {
	run := func() []int {
		eng, k, f := newRig(kernel.Options{IdleLoop: true}, Options{})
		k.Start()
		m := NewMultiPacer(f)
		var order []int
		for id := 5; id >= 1; id-- {
			id := id
			m.AddFlow(id, 80*sim.Microsecond, 12*sim.Microsecond,
				func(sim.Time) (sim.Time, bool) {
					order = append(order, id)
					return 0, len(order) < 50
				})
		}
		eng.RunFor(5 * sim.Millisecond)
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %d vs %d (map iteration leaked in)", i, a[i], b[i])
		}
	}
}
