package core

import (
	"testing"
	"testing/quick"

	"softtimers/internal/cpu"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
)

// TestPropertyFiringBound checks the paper's central guarantee as a
// property: for ANY workload cadence and ANY requested latency T, a soft
// event fires strictly after T ticks and no later than T + X + 1 ticks
// (X = measure/interrupt resolution ratio), because the hardclock is
// itself a trigger state.
func TestPropertyFiringBound(t *testing.T) {
	f := func(seed uint64, cadencesRaw []uint16, tsRaw []uint16) bool {
		if len(tsRaw) == 0 {
			return true
		}
		if len(tsRaw) > 8 {
			tsRaw = tsRaw[:8]
		}
		eng := sim.NewEngine(seed)
		k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: false})
		fac := New(k, Options{})
		// A process with an arbitrary (but busy) syscall cadence derived
		// from the fuzz input; long compute stretches force the
		// hardclock backup into play.
		cadences := cadencesRaw
		if len(cadences) == 0 {
			cadences = []uint16{50}
		}
		k.Spawn("w", func(p *kernel.Proc) {
			i := 0
			var loop func()
			loop = func() {
				c := sim.Time(cadences[i%len(cadences)]%5000)*sim.Microsecond + sim.Microsecond
				i++
				p.Compute(c, func() {
					p.Syscall("s", 2*sim.Microsecond, loop)
				})
			}
			loop()
		})
		k.Start()
		X := fac.X()
		ok := true
		fired := 0
		for _, raw := range tsRaw {
			T := uint64(raw % 3000)
			schedTick := fac.MeasureTime()
			schedTime := eng.Now()
			fac.ScheduleSoftEvent(T, func(now sim.Time) sim.Time {
				fired++
				lat := now - schedTime
				// Lower bound: strictly more than T ticks.
				if lat <= sim.Time(T)*sim.Microsecond {
					ok = false
				}
				// Upper bound: T + X + 1 ticks. The backup check runs
				// at the END of the hardclock handler, a few µs past
				// the tick boundary, and other interrupts may queue
				// ahead of it — allow ~20 ticks (µs) of handler slack.
				fireTick := fac.MeasureTime()
				if fireTick > schedTick+T+X+20 {
					ok = false
				}
				return 0
			})
		}
		eng.RunFor(20 * sim.Millisecond)
		return ok && fired == len(tsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelNeverFires: canceling any subset of scheduled events
// means exactly the complement fires, under arbitrary cadences.
func TestPropertyCancelNeverFires(t *testing.T) {
	f := func(seed uint64, ts []uint8, mask []bool) bool {
		eng := sim.NewEngine(seed)
		k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
		fac := New(k, Options{})
		k.Start()
		fired := make(map[int]bool)
		var evs []*Event
		for i, raw := range ts {
			i := i
			evs = append(evs, fac.ScheduleSoftEvent(uint64(raw)*4, func(sim.Time) sim.Time {
				fired[i] = true
				return 0
			}))
		}
		canceled := make(map[int]bool)
		for i, ev := range evs {
			if i < len(mask) && mask[i] {
				if !ev.Cancel() {
					return false
				}
				canceled[i] = true
			}
		}
		eng.RunFor(5 * sim.Millisecond)
		for i := range ts {
			if canceled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDelayAlwaysNonNegative: the recorded delay distribution d
// never contains negative values (events never fire early), across seeds.
func TestPropertyDelayNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		eng := sim.NewEngine(seed)
		k := kernel.New(eng, cpu.PentiumII300(), kernel.Options{IdleLoop: true})
		fac := New(k, Options{})
		k.Start()
		n := 0
		var rearm Handler
		rng := eng.Rand().Fork()
		rearm = func(sim.Time) sim.Time {
			n++
			if n < 200 {
				fac.ScheduleSoftEvent(uint64(rng.Intn(300)), rearm)
			}
			return sim.Time(rng.Intn(3000))
		}
		fac.ScheduleSoftEvent(5, rearm)
		eng.RunFor(200 * sim.Millisecond)
		// Histogram clamps negatives into bucket 0 silently, so check
		// via quantile: the minimum recorded delay must be >= 0 by
		// construction; instead verify every event fired (no stalls).
		return n == 200 && fac.DelayHist.N() == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
