package topology

import (
	"testing"

	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// twoHostPath assembles the benchmark topology: two idle-halting hosts on
// one switch. Returns the source host, its arena, the destination address,
// and a delivered-count pointer bumped by the receiver.
func twoHostPath() (*Topology, *host.Host, *netstack.Arena, netstack.Addr, *int) {
	top := New(sim.NewEngine(1))
	a := top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{}})
	dst := top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{}})
	sw := top.AddSwitch("s0")
	top.Join(sw, a, nic.Config{Name: "eth0"}, WireSpec{})
	pb := top.Join(sw, dst, nic.Config{Name: "eth0"}, WireSpec{})
	delivered := new(int)
	// Handlers borrow the packet; the NIC releases it after the call.
	pb.NIC.RxHandler = func(*netstack.Packet) { *delivered++ }
	top.Start()
	return top, a, top.Arena(0), top.Addr("b"), delivered
}

// BenchmarkTestbedPacket measures the real-time cost of one packet through
// the two-host path: a's transmit softirq → down link → switch forward →
// up link → b's NIC ring → receive interrupt → handler. Both kernels halt
// when idle so the engine only runs packet-path events; pkts/sec is the
// simulator's packet-forwarding capacity on one core. Packets come from
// the topology arena, so the steady-state path allocates nothing — the
// allocs/op regression guard in `make bench` holds this at 0.
func BenchmarkTestbedPacket(b *testing.B) {
	top, a, arena, to, delivered := twoHostPath()
	eng := top.Eng
	src := top.Addr("a")

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := arena.Get()
		p.Flow, p.Src, p.Dst, p.Kind, p.Size = i, src, to, netstack.Data, 1500
		a.NIC().TxFromKernel(p)
		for *delivered <= i {
			if !eng.Step() {
				b.Fatal("engine drained before the packet was delivered")
			}
		}
	}
	b.StopTimer()
	if *delivered != b.N {
		b.Fatalf("delivered %d of %d packets", *delivered, b.N)
	}
	if live := arena.Live(); live != 0 {
		b.Fatalf("%d packets leaked from the arena", live)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
}

// TestTestbedPacketZeroAlloc pins the tentpole claim directly: after
// warmup, pushing a packet through the full two-host path — kernel
// transmit chain, both links, the switch, the receive ring and interrupt —
// allocates nothing.
func TestTestbedPacketZeroAlloc(t *testing.T) {
	top, a, arena, to, delivered := twoHostPath()
	eng := top.Eng
	src := top.Addr("a")
	flow := 0
	shot := func() {
		p := arena.Get()
		p.Flow, p.Src, p.Dst, p.Kind, p.Size = flow, src, to, netstack.Data, 1500
		flow++
		a.NIC().TxFromKernel(p)
		for *delivered < flow {
			if !eng.Step() {
				t.Fatal("engine drained before the packet was delivered")
			}
		}
	}
	// Warm every pool on the path (event free lists, delivery records,
	// chain buffers, the arena itself), then demand zero.
	for i := 0; i < 64; i++ {
		shot()
	}
	if n := testing.AllocsPerRun(100, shot); n != 0 {
		t.Fatalf("packet hot path allocates %.1f times per packet, want 0", n)
	}
	if live := arena.Live(); live != 0 {
		t.Fatalf("%d packets leaked from the arena", live)
	}
}

// BenchmarkSwitchForward isolates the cut-through forwarding step: one
// address lookup and endpoint delivery, no links or hosts. This is the
// per-hop cost a hierarchical fabric pays at each leaf and at the spine.
func BenchmarkSwitchForward(b *testing.B) {
	top := New(sim.NewEngine(1))
	sw := top.AddSwitch("s0")
	arena := top.Arena(0)
	sink := netstack.EndpointFunc(func(p *netstack.Packet) { arena.Release(p) })
	const fanout = 64
	for i := 0; i < fanout; i++ {
		sw.Connect(netstack.Addr(i+1), sink)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := arena.Get()
		p.Flow, p.Dst, p.Kind, p.Size = i, netstack.Addr(i%fanout+1), netstack.Data, 1500
		sw.Deliver(p)
	}
	b.StopTimer()
	if live := arena.Live(); live != 0 {
		b.Fatalf("%d packets leaked from the arena", live)
	}
}
