package topology

import (
	"testing"

	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// BenchmarkTestbedPacket measures the real-time cost of one packet through
// the two-host path: a's transmit softirq → down link → switch forward →
// up link → b's NIC ring → receive interrupt → handler. Both kernels halt
// when idle so the engine only runs packet-path events; pkts/sec is the
// simulator's packet-forwarding capacity on one core.
func BenchmarkTestbedPacket(b *testing.B) {
	eng := sim.NewEngine(1)
	top := New(eng)
	a := top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{}})
	dst := top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{}})
	sw := top.AddSwitch("s0")
	top.Join(sw, a, nic.Config{Name: "eth0"}, WireSpec{})
	pb := top.Join(sw, dst, nic.Config{Name: "eth0"}, WireSpec{})
	delivered := 0
	pb.NIC.RxHandler = func(*netstack.Packet) { delivered++ }
	top.Start()
	src, to := top.Addr("a"), top.Addr("b")

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.NIC().TxFromKernel(&netstack.Packet{
			Flow: i, Src: src, Dst: to, Kind: netstack.Data, Size: 1500,
		})
		for delivered <= i {
			if !eng.Step() {
				b.Fatal("engine drained before the packet was delivered")
			}
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d packets", delivered, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
}
