package topology

import (
	"encoding/json"
	"testing"

	"softtimers/internal/core"
	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// twoHosts builds a and b joined by one switch, with a receive recorder on
// each host keyed by flow id.
func twoHosts(t *testing.T, seed uint64) (*Topology, map[string]*[]int) {
	t.Helper()
	eng := sim.NewEngine(seed)
	top := New(eng)
	got := map[string]*[]int{}
	for _, name := range []string{"a", "b"} {
		top.AddHost(host.Config{Name: name, Kernel: kernel.Options{IdleLoop: true}})
	}
	sw := top.AddSwitch("s0")
	for _, name := range []string{"a", "b"} {
		h := top.Host(name)
		p := top.Join(sw, h, nic.Config{Name: "eth0"}, WireSpec{})
		flows := &[]int{}
		got[name] = flows
		p.NIC.RxHandler = func(pkt *netstack.Packet) { *flows = append(*flows, pkt.Flow) }
	}
	return top, got
}

func TestSwitchForwardsByAddress(t *testing.T) {
	top, got := twoHosts(t, 1)
	top.Start()
	a := top.Host("a")

	// a → b, addressed: must arrive at b only.
	a.NIC().TxFromKernel(&netstack.Packet{
		Flow: 7, Src: top.Addr("a"), Dst: top.Addr("b"), Kind: netstack.Data, Size: 100,
	})
	top.Eng.RunFor(5 * sim.Millisecond)
	if len(*got["b"]) != 1 || (*got["b"])[0] != 7 {
		t.Fatalf("b received %v, want [7]", *got["b"])
	}
	if len(*got["a"]) != 0 {
		t.Fatalf("a received its own packet: %v", *got["a"])
	}

	// Unknown destination (zero and out-of-range): counted and dropped.
	a.NIC().TxFromKernel(
		&netstack.Packet{Flow: 8, Src: top.Addr("a"), Dst: 0, Kind: netstack.Data, Size: 100},
		&netstack.Packet{Flow: 9, Src: top.Addr("a"), Dst: 99, Kind: netstack.Data, Size: 100},
	)
	top.Eng.RunFor(5 * sim.Millisecond)
	sw := top.switches[0]
	if sw.Misses() != 2 {
		t.Fatalf("switch misses = %d, want 2", sw.Misses())
	}
	if sw.Forwarded() != 1 {
		t.Fatalf("switch forwarded = %d, want 1", sw.Forwarded())
	}
	if len(*got["a"])+len(*got["b"]) != 1 {
		t.Fatalf("missed packets were delivered somewhere: a=%v b=%v", *got["a"], *got["b"])
	}

	// Topology snapshot carries per-host namespaces and switch counters.
	snap := top.Snapshot()
	if snap.Counters["switch.s0.misses"] != 2 {
		t.Fatalf("snapshot switch.s0.misses = %d, want 2", snap.Counters["switch.s0.misses"])
	}
	if snap.Counters["host.a.nic.eth0.tx_packets"] != 3 {
		t.Fatalf("snapshot host.a.nic.eth0.tx_packets = %d, want 3",
			snap.Counters["host.a.nic.eth0.tx_packets"])
	}
}

func TestSwitchConnectValidates(t *testing.T) {
	sw := NewSwitch("s")
	for _, fn := range []func(){
		func() { sw.Connect(0, netstack.EndpointFunc(func(*netstack.Packet) {})) },
		func() {
			sw.Connect(1, netstack.EndpointFunc(func(*netstack.Packet) {}))
			sw.Connect(1, netstack.EndpointFunc(func(*netstack.Packet) {}))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// A host plan that drops every packet on one link name emulates pulling
// that cable: traffic on the downed link vanishes (counted as lost), the
// reverse direction keeps working.
func TestLinkDownViaFaultPlan(t *testing.T) {
	eng := sim.NewEngine(3)
	top := New(eng)
	// Per-channel faults: the plan is keyed by channel name, so give the
	// a→switch uplink a 100% drop channel and leave everything else clean.
	plan := faults.New(77, faults.Spec{Drop: 1})
	a := top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{IdleLoop: true}})
	b := top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{IdleLoop: true}})
	sw := top.AddSwitch("s0")
	// Only host a's transmit (down) link carries the fault plan: the NIC's
	// receive ring gets an explicit clean channel (the wire spec's plan
	// would otherwise become its default), and the up link's channel is
	// cleared after wiring.
	clean := faults.New(1, faults.Spec{})
	pa := top.Join(sw, a, nic.Config{Name: "eth0", Faults: clean.Link("nic.eth0.rx")},
		WireSpec{Faults: plan})
	pa.Up.Faults = nil // fault the downed direction only
	pb := top.Join(sw, b, nic.Config{Name: "eth0"}, WireSpec{})
	var bGot, aGot int
	pa.NIC.RxHandler = func(*netstack.Packet) { aGot++ }
	pb.NIC.RxHandler = func(*netstack.Packet) { bGot++ }
	top.Start()

	for i := 0; i < 10; i++ {
		a.NIC().TxFromKernel(&netstack.Packet{
			Flow: i, Src: top.Addr("a"), Dst: top.Addr("b"), Kind: netstack.Data, Size: 100,
		})
		b.NIC().TxFromKernel(&netstack.Packet{
			Flow: 100 + i, Src: top.Addr("b"), Dst: top.Addr("a"), Kind: netstack.Data, Size: 100,
		})
	}
	eng.RunFor(20 * sim.Millisecond)
	if bGot != 0 {
		t.Fatalf("b received %d packets over a downed link, want 0", bGot)
	}
	if aGot != 10 {
		t.Fatalf("a received %d packets on the healthy direction, want 10", aGot)
	}
	if pa.Down.Lost != 10 {
		t.Fatalf("downed link lost = %d, want 10", pa.Down.Lost)
	}
}

// Build assembles a declarative Spec deterministically: same spec, same
// seed, byte-identical telemetry after identical traffic.
func TestSpecBuildDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 11,
		Hosts: []HostSpec{
			{Name: "server", Kernel: kernel.Options{IdleLoop: true}},
			{Name: "c1", Faults: &faults.Spec{Drop: 0.2}},
			{Name: "c2"},
		},
		Switches: []SwitchSpec{{Name: "lan", Members: []string{"server", "c1", "c2"}}},
	}
	run := func() []byte {
		top := Build(spec)
		if top.Addr("server") != 1 || top.Addr("c1") != 2 || top.Addr("c2") != 3 {
			t.Fatalf("addresses not in declaration order: %d %d %d",
				top.Addr("server"), top.Addr("c1"), top.Addr("c2"))
		}
		top.Start()
		srv := top.Host("server")
		for i := 0; i < 20; i++ {
			dst := top.Addr("c1")
			if i%2 == 0 {
				dst = top.Addr("c2")
			}
			srv.NIC().TxFromKernel(&netstack.Packet{
				Flow: i, Src: top.Addr("server"), Dst: dst, Kind: netstack.Data, Size: 600,
			})
		}
		top.Eng.RunFor(50 * sim.Millisecond)
		buf, err := json.Marshal(top.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if a, b := run(), run(); string(a) != string(b) {
		t.Fatal("two Build runs from the same spec diverged")
	}
}

func TestSpecBuildUnknownMemberPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown switch member")
		}
	}()
	Build(Spec{Hosts: []HostSpec{{Name: "a"}},
		Switches: []SwitchSpec{{Name: "s", Members: []string{"ghost"}}}})
}

// The WAN-emulator intermediate as a host: packets traverse the router's
// own kernel (receive path, forward, transmit path) between two edge hosts.
func TestRouterForwardsBetweenHosts(t *testing.T) {
	eng := sim.NewEngine(5)
	top := New(eng)
	a := top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{IdleLoop: true}})
	b := top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{IdleLoop: true}})
	r := top.AddRouter(host.Config{Name: "wan", Kernel: kernel.Options{IdleLoop: true}})

	var aGot, bGot []int
	// a ↔ router on one wire, router ↔ b on the other; each edge NIC
	// transmits into the router port's receive link and vice versa.
	var pa, pb, ra, rb *Port
	ra = top.Attach(r, nic.Config{Name: "if0"}, netstack.EndpointFunc(func(p *netstack.Packet) { pa.Up.Send(p) }), WireSpec{})
	rb = top.Attach(r, nic.Config{Name: "if1"}, netstack.EndpointFunc(func(p *netstack.Packet) { pb.Up.Send(p) }), WireSpec{})
	pa = top.AttachNIC(a, nic.Config{Name: "eth0"}, netstack.EndpointFunc(func(p *netstack.Packet) { ra.Up.Send(p) }), WireSpec{})
	pb = top.AttachNIC(b, nic.Config{Name: "eth0"}, netstack.EndpointFunc(func(p *netstack.Packet) { rb.Up.Send(p) }), WireSpec{})
	pa.NIC.RxHandler = func(p *netstack.Packet) { aGot = append(aGot, p.Flow) }
	pb.NIC.RxHandler = func(p *netstack.Packet) { bGot = append(bGot, p.Flow) }
	r.Route(top.Addr("a"), ra.NIC)
	r.Route(top.Addr("b"), rb.NIC)
	top.Start()

	a.NIC().TxFromKernel(&netstack.Packet{
		Flow: 1, Src: top.Addr("a"), Dst: top.Addr("b"), Kind: netstack.Data, Size: 1500,
	})
	b.NIC().TxFromKernel(&netstack.Packet{
		Flow: 2, Src: top.Addr("b"), Dst: top.Addr("a"), Kind: netstack.Data, Size: 1500,
	})
	// Unroutable destination: counted as a router miss, not delivered.
	a.NIC().TxFromKernel(&netstack.Packet{
		Flow: 3, Src: top.Addr("a"), Dst: 42, Kind: netstack.Data, Size: 1500,
	})
	eng.RunFor(20 * sim.Millisecond)

	if len(bGot) != 1 || bGot[0] != 1 {
		t.Fatalf("b received %v, want [1]", bGot)
	}
	if len(aGot) != 1 || aGot[0] != 2 {
		t.Fatalf("a received %v, want [2]", aGot)
	}
	if r.Forwarded != 2 || r.Misses != 1 {
		t.Fatalf("router forwarded=%d misses=%d, want 2/1", r.Forwarded, r.Misses)
	}
	// Forwarding is charged to the router's CPU: its kernel saw the
	// packets arrive (rx) and leave (tx softirq).
	snap := top.Snapshot()
	if snap.Counters["host.wan.nic.if0.rx_packets"] == 0 {
		t.Fatal("router if0 saw no receive traffic")
	}
	if snap.Counters["host.wan.nic.if1.tx_packets"] == 0 {
		t.Fatal("router if1 transmitted nothing")
	}
}

// A multipacer on one host clocking flows that terminate on *different*
// hosts: the capability the paper claims over hardware timers, here
// exercised across a switched topology. Each destination host's own kernel
// receives its flow's packets.
func TestMultiPacerFlowsAcrossHosts(t *testing.T) {
	eng := sim.NewEngine(9)
	top := New(eng)
	src := top.AddHost(host.Config{Name: "src", Kernel: kernel.Options{IdleLoop: true}})
	sw := top.AddSwitch("lan")
	ps := top.Join(sw, src, nic.Config{Name: "eth0"}, WireSpec{})
	rx := map[string]*int{}
	for _, name := range []string{"dst1", "dst2"} {
		h := top.AddHost(host.Config{Name: name})
		p := top.Join(sw, h, nic.Config{Name: "eth0"}, WireSpec{})
		n := new(int)
		rx[name] = n
		p.NIC.RxHandler = func(*netstack.Packet) { *n++ }
	}
	top.Start()

	m := core.NewMultiPacer(src.F)
	const perFlow = 40
	mk := func(dst netstack.Addr, flow int) func(sim.Time) (sim.Time, bool) {
		sent := 0
		return func(now sim.Time) (sim.Time, bool) {
			sent++
			cost := ps.NIC.TransmitNow(&netstack.Packet{
				Flow: flow, Src: top.Addr("src"), Dst: dst, Kind: netstack.Data, Size: 1500,
			})
			return cost, sent < perFlow
		}
	}
	// Two different rates to two different machines from one event stream.
	m.AddFlow(1, 300*sim.Microsecond, 100*sim.Microsecond, mk(top.Addr("dst1"), 1))
	m.AddFlow(2, 700*sim.Microsecond, 100*sim.Microsecond, mk(top.Addr("dst2"), 2))
	eng.RunFor(100 * sim.Millisecond)

	if m.Flows() != 0 {
		t.Fatalf("%d flows still active, want 0 (both trains done)", m.Flows())
	}
	if *rx["dst1"] != perFlow || *rx["dst2"] != perFlow {
		t.Fatalf("dst1=%d dst2=%d packets, want %d each", *rx["dst1"], *rx["dst2"], perFlow)
	}
	// The receiving kernels did real work: interrupts and protocol input
	// on their own CPUs, visible in their per-host namespaces.
	snap := top.Snapshot()
	for _, name := range []string{"dst1", "dst2"} {
		if snap.Counters["host."+name+".nic.eth0.rx_packets"] != perFlow {
			t.Fatalf("%s rx_packets = %d, want %d", name,
				snap.Counters["host."+name+".nic.eth0.rx_packets"], perFlow)
		}
		if snap.Counters["host."+name+".kernel.interrupts"] == 0 {
			t.Fatalf("%s kernel took no interrupts", name)
		}
	}
}
