package topology

import (
	"softtimers/internal/host"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
)

// Router is the paper's laboratory "WAN emulator" intermediate recast as
// just another Host: a full machine whose interfaces receive packets
// through the normal kernel receive path (interrupts or soft-timer
// polling, protocol softirqs — all trigger states on the router's own
// kernel) and forward them out the interface toward the destination. WAN
// delay and bottleneck bandwidth come from the router's egress links, as
// they did in netstack.WANEmulator; what changes is that the intermediate
// now has a CPU, a soft-timer facility, and a fault plan of its own.
type Router struct {
	// H is the underlying host.
	H *host.Host

	routes map[netstack.Addr]*nic.NIC

	// Forwarded and Misses count routed and address-miss packets.
	Forwarded int64
	Misses    int64
}

// AddRouter builds a router host on the topology.
func (t *Topology) AddRouter(cfg host.Config) *Router {
	r := &Router{H: t.AddHost(cfg), routes: make(map[netstack.Addr]*nic.NIC)}
	t.routers = append(t.routers, r)
	return r
}

// Attach wires a router interface toward peer and installs the forwarding
// handler on it. Routes are added separately with Route.
func (t *Topology) Attach(r *Router, nicCfg nic.Config, peer netstack.Endpoint, w WireSpec) *Port {
	p := t.AttachNIC(r.H, nicCfg, peer, w)
	p.NIC.RxHandler = r.forward
	return p
}

// Route directs packets for dst out the given interface.
func (r *Router) Route(dst netstack.Addr, out *nic.NIC) {
	r.routes[dst] = out
}

// forward runs in the router kernel's protocol context: look up the egress
// interface and retransmit through its kernel path (charged to the
// router's CPU as a transmit softirq). Receive handlers borrow their
// packet — the NIC releases it when the handler returns — so the router
// takes its own reference for the queued transmission; the egress link
// consumes it.
func (r *Router) forward(p *netstack.Packet) {
	out, ok := r.routes[p.Dst]
	if !ok {
		r.Misses++
		return
	}
	r.Forwarded++
	out.TxFromKernel(p.Retain())
}
