package topology

import (
	"fmt"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// HostSpec declares one host of a topology.
type HostSpec struct {
	Name     string
	Profile  cpu.Profile
	Kernel   kernel.Options
	Facility core.Options
	// Faults, when set, gives this host its own fault plan, seeded
	// deterministically from (topology seed, host name) — one node can
	// misbehave while its peers stay clean.
	Faults *faults.Spec
}

// SwitchSpec declares one switch and the hosts on it. Every member gets a
// NIC from the (per-member-defaulted) template and a duplex link pair to
// the switch.
type SwitchSpec struct {
	Name    string
	Members []string
	// Bps and Delay describe each member's link (defaults 100 Mbps, 30 µs).
	Bps   int64
	Delay sim.Time
	// NIC is the per-member interface template; an empty Name defaults to
	// the switch name (interface names are per-host).
	NIC nic.Config
}

// Spec declares an N-node topology: hosts in address order, then switches
// wiring them together. Assembly order is part of the determinism
// contract — the same Spec and seed always build the same event order.
type Spec struct {
	// Seed seeds the shared engine (or every shard's engine) and every
	// per-host fault plan.
	Seed     uint64
	Hosts    []HostSpec
	Switches []SwitchSpec
	// Fabrics declares hierarchical leaf–spine fabrics (see FabricSpec),
	// assembled after the flat switches. With Shards, Build forces each
	// fabric member onto its leaf's shard (leaf index mod shard count) so
	// every leaf is shard-local and only spine trunks cross shards.
	Fabrics []FabricSpec

	// Shards, when >= 1, runs the topology on a conservative-sync shard
	// group of that many engines instead of one shared engine (clamped to
	// the host count; 0 keeps the legacy single-engine path). Merged
	// telemetry and traces are identical at any shard count.
	Shards int
	// Clock selects the engine's clock driver. The zero value (ClockSim)
	// is the deterministic default and builds exactly the pre-seam
	// topology. ClockRealTime slaves the run to the wall clock (emulation
	// mode): Build installs a sim.RealTimeClock on the engine (or shard
	// group) and hands its wall-mapped VirtualNow to every host's
	// soft-timer facility as the measurement time base, so trigger
	// intervals and firing delays are measured in real time.
	Clock sim.ClockKind
	// Assign, when set with Shards, maps host index (declaration order)
	// and name to a shard id; nil round-robins by index.
	Assign func(i int, name string) int
}

// hashName folds a host name into a 64-bit salt (FNV-1a), so per-host
// fault plans draw from streams independent of host order.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Validate checks the declaration for assembly errors: empty or duplicate
// host names, switch or fabric members naming unknown hosts, a host listed
// twice on one switch, fabrics without leaves — and, in any spec that
// declares a network at all, hosts attached to nothing (an unattached NIC
// is a host no packet can ever reach; silent isolation makes topology bugs
// look like packet loss). Build runs it and panics on the first error.
func (s Spec) Validate() error {
	known := make(map[string]bool, len(s.Hosts))
	for i, hs := range s.Hosts {
		if hs.Name == "" {
			return fmt.Errorf("topology: host %d has no name", i)
		}
		if known[hs.Name] {
			return fmt.Errorf("topology: duplicate host %q", hs.Name)
		}
		known[hs.Name] = true
	}
	attached := make(map[string]bool)
	for _, ss := range s.Switches {
		seen := make(map[string]bool, len(ss.Members))
		for _, m := range ss.Members {
			if !known[m] {
				return fmt.Errorf("topology: switch %q references unknown host %q", ss.Name, m)
			}
			if seen[m] {
				return fmt.Errorf("topology: switch %q lists host %q twice", ss.Name, m)
			}
			seen[m] = true
			attached[m] = true
		}
	}
	for _, fs := range s.Fabrics {
		if fs.Leaves < 1 {
			return fmt.Errorf("topology: fabric %q needs at least one leaf", fs.Name)
		}
		seen := make(map[string]bool, len(fs.Members))
		for _, m := range fs.Members {
			if !known[m] {
				return fmt.Errorf("topology: fabric %q references unknown host %q", fs.Name, m)
			}
			if seen[m] {
				return fmt.Errorf("topology: fabric %q lists host %q twice", fs.Name, m)
			}
			seen[m] = true
			attached[m] = true
		}
	}
	if len(s.Switches)+len(s.Fabrics) > 0 {
		for _, hs := range s.Hosts {
			if !attached[hs.Name] {
				return fmt.Errorf("topology: host %q is attached to no switch or fabric (unattached NIC)", hs.Name)
			}
		}
	}
	return nil
}

// Build assembles the declared topology on a fresh engine seeded with
// spec.Seed. Hosts are created in declaration order (fixing addresses),
// then each switch joins its members in listed order, then each fabric
// assembles. Invalid specs (see Validate) panic — they are assembly bugs,
// not runtime conditions.
func Build(spec Spec) *Topology {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	var t *Topology
	if spec.Shards >= 1 {
		n := spec.Shards
		if len(spec.Hosts) > 0 && n > len(spec.Hosts) {
			n = len(spec.Hosts)
		}
		t = NewSharded(sim.NewShardGroup(n, spec.Seed), spec.Seed)
		t.Assign = spec.Assign
		if len(spec.Fabrics) > 0 {
			// Fabric members must share their leaf's shard; force the
			// placement (leaf index mod shard count) over any Assign.
			forced := make(map[string]int)
			for fi := range spec.Fabrics {
				fs := &spec.Fabrics[fi]
				for i, m := range fs.Members {
					forced[m] = fs.leafOf(i) % n
				}
			}
			prev := t.Assign
			t.Assign = func(i int, name string) int {
				if s, ok := forced[name]; ok {
					return s
				}
				if prev != nil {
					return prev(i, name)
				}
				return i % n
			}
		}
	} else {
		t = New(sim.NewEngine(spec.Seed))
		t.SetSeed(spec.Seed)
	}
	var rtc *sim.RealTimeClock
	if d := sim.NewClockDriver(spec.Clock); d != nil {
		rtc, _ = d.(*sim.RealTimeClock)
		if t.group != nil {
			t.group.SetClockDriver(d)
		} else {
			t.Eng.SetClockDriver(d)
		}
		t.clock = rtc
	}
	for _, hs := range spec.Hosts {
		cfg := host.Config{
			Name:     hs.Name,
			Profile:  hs.Profile,
			Kernel:   hs.Kernel,
			Facility: hs.Facility,
		}
		if rtc != nil && cfg.Facility.TimeSource == nil {
			// Emulation: the facility measures on the wall-mapped clock.
			cfg.Facility.TimeSource = rtc.VirtualNow
		}
		if hs.Faults != nil {
			cfg.Faults = faults.New(spec.Seed^hashName(hs.Name), *hs.Faults)
		}
		t.AddHost(cfg)
	}
	for _, ss := range spec.Switches {
		sw := t.AddSwitch(ss.Name)
		for _, member := range ss.Members {
			h := t.Host(member)
			if h == nil {
				panic("topology: switch " + ss.Name + " references unknown host " + member)
			}
			nicCfg := ss.NIC
			if nicCfg.Name == "" {
				nicCfg.Name = ss.Name
			}
			t.Join(sw, h, nicCfg, WireSpec{Bps: ss.Bps, Delay: ss.Delay})
		}
	}
	for _, fs := range spec.Fabrics {
		t.AddFabric(fs)
	}
	return t
}
