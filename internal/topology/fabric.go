package topology

import (
	"fmt"

	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// FabricSpec declares a two-tier leaf–spine fabric: members spread
// round-robin across Leaves leaf switches (member i on leaf i % Leaves),
// every leaf trunked to one spine switch. Leaf switching is the existing
// cut-through Switch; a leaf's address misses take its Default route up the
// trunk, and the spine forwards down the destination leaf's trunk — so a
// cross-leaf path costs four link traversals (host→leaf, leaf→spine,
// spine→leaf, leaf→host) and an intra-leaf path the usual two.
//
// Under sharded execution each leaf — switch, members, and both its trunks
// — lives wholly on one shard (Build forces member placement to
// leaf % shards), and only the spine hop crosses shards: the up trunk's
// courier ships a cross-shard packet at its spine-arrival instant, so the
// trunk propagation delay is the shard channel's lookahead. Conduit ids
// are allocated in assembly order exactly as for flat switches, keeping
// merged telemetry and traces byte-identical at any shard count.
type FabricSpec struct {
	Name string
	// Leaves is the leaf-switch count (at least 1).
	Leaves int
	// Members are the host names on the fabric, assigned to leaf i%Leaves
	// in listed order.
	Members []string
	// Bps and Delay describe each member's link to its leaf (defaults
	// 100 Mbps, 30 µs).
	Bps   int64
	Delay sim.Time
	// TrunkBps and TrunkDelay describe each leaf's trunk to the spine
	// (defaults 1 Gbps, 20 µs). TrunkDelay is the cross-shard lookahead,
	// so a tighter trunk costs more sync rounds.
	TrunkBps   int64
	TrunkDelay sim.Time
	// NIC is the per-member interface template; an empty Name defaults to
	// the fabric name.
	NIC nic.Config
}

func (fs *FabricSpec) setDefaults() {
	if fs.Bps == 0 {
		fs.Bps = 100_000_000
	}
	if fs.Delay == 0 {
		fs.Delay = 30 * sim.Microsecond
	}
	if fs.TrunkBps == 0 {
		fs.TrunkBps = 1_000_000_000
	}
	if fs.TrunkDelay == 0 {
		fs.TrunkDelay = 20 * sim.Microsecond
	}
	if fs.NIC.Name == "" {
		fs.NIC.Name = fs.Name
	}
}

// leafOf returns the leaf index member i lands on.
func (fs *FabricSpec) leafOf(i int) int { return i % fs.Leaves }

// Fabric is one assembled leaf–spine fabric.
type Fabric struct {
	Name   string
	Spine  *Switch
	Leaves []*Switch
	// Up and Down are the per-leaf trunk links (leaf→spine, spine→leaf).
	Up, Down []*netstack.Link
	// MemberPorts are the member host ports in declaration order.
	MemberPorts []*Port
}

// AddFabric assembles a leaf–spine fabric over already-added hosts. In a
// sharded topology every leaf's members must share one shard (Build's spec
// path forces that placement; imperative callers must arrange it) — the
// leaf and its trunks then live on that shard's engine.
func (t *Topology) AddFabric(fs FabricSpec) *Fabric {
	fs.setDefaults()
	if fs.Leaves < 1 {
		panic(fmt.Sprintf("topology: fabric %q needs at least one leaf", fs.Name))
	}
	if len(fs.Members) == 0 {
		panic(fmt.Sprintf("topology: fabric %q has no members", fs.Name))
	}
	f := &Fabric{Name: fs.Name}
	f.Spine = t.AddSwitch(fs.Name + ".spine")
	for j := 0; j < fs.Leaves; j++ {
		f.Leaves = append(f.Leaves, t.AddSwitch(fmt.Sprintf("%s.leaf%d", fs.Name, j)))
	}

	// Join members to their leaves; a leaf's shard is its members' shard.
	leafShard := make([]int, fs.Leaves)
	for j := range leafShard {
		leafShard[j] = -1
	}
	for i, m := range fs.Members {
		h := t.Host(m)
		if h == nil {
			panic(fmt.Sprintf("topology: fabric %q references unknown host %q", fs.Name, m))
		}
		j := fs.leafOf(i)
		shard := t.HostShard(m)
		if leafShard[j] == -1 {
			leafShard[j] = shard
		} else if leafShard[j] != shard {
			panic(fmt.Sprintf("topology: fabric %q leaf %d spans shards %d and %d (host %q); leaf members must share a shard",
				fs.Name, j, leafShard[j], shard, m))
		}
		p := t.Join(f.Leaves[j], h, fs.NIC, WireSpec{Bps: fs.Bps, Delay: fs.Delay})
		f.MemberPorts = append(f.MemberPorts, p)
	}

	// Trunks: one duplex pair per leaf, on the leaf's engine. The up trunk
	// is the leaf's default route; cross-shard spine forwards leave through
	// its courier at the spine-arrival instant.
	for j, leaf := range f.Leaves {
		shard := leafShard[j]
		if shard < 0 {
			shard = 0 // a memberless leaf (more leaves than members)
		}
		eng := t.Eng
		var spinePeer netstack.Endpoint = f.Spine
		var leafPeer netstack.Endpoint = leaf
		if t.group != nil {
			eng = t.group.Engine(shard)
			spinePeer = shardView{sw: f.Spine, shard: shard}
			leafPeer = shardView{sw: leaf, shard: shard}
		}
		up := netstack.NewLink(eng, fmt.Sprintf("%s.leaf%d.up", fs.Name, j), fs.TrunkBps, fs.TrunkDelay, spinePeer)
		up.SetArena(t.Arena(shard))
		t.conduits++
		up.ArrivalConduit = t.conduits
		if t.group != nil {
			up.Courier = &courier{sw: f.Spine, src: shard, con: t.group.NewConduit(shard, t.conduits)}
		}
		leaf.Default = up
		down := netstack.NewLink(eng, fmt.Sprintf("%s.leaf%d.down", fs.Name, j), fs.TrunkBps, fs.TrunkDelay, leafPeer)
		down.SetArena(t.Arena(shard))
		t.conduits++
		down.ArrivalConduit = t.conduits
		f.Up = append(f.Up, up)
		f.Down = append(f.Down, down)
		// The spine hop is the fabric's only cross-shard channel; its
		// lookahead is the trunk propagation delay.
		f.Spine.members = append(f.Spine.members, switchMember{shard: shard, delay: fs.TrunkDelay})
	}

	// Spine forwarding: every member's address routes down its leaf's
	// trunk. Multi-hop Dst routing is built entirely here, at assembly.
	for i, m := range fs.Members {
		j := fs.leafOf(i)
		f.Spine.Connect(t.addrs[m], f.Down[j])
		if t.group != nil {
			f.Spine.bind(t.addrs[m], leafShard[j])
		}
	}
	t.fabrics = append(t.fabrics, f)
	return f
}

// Fabrics returns the topology's assembled fabrics in add order.
func (t *Topology) Fabrics() []*Fabric { return t.fabrics }
