package topology

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// PlaceByTraffic is deterministic greedy LPT: hottest host first to the
// lightest shard, ties by add order and lowest shard id, unknown hosts
// round-robin by index.
func TestPlaceByTraffic(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	traffic := []int64{10, 100, 60, 50, 10}
	assign := PlaceByTraffic(names, traffic, 2)

	// LPT order: b(100)→s0, c(60)→s1, d(50)→s1? no: loads after c are
	// {100, 60}; d goes to s1 (110? no — 60+50=110 vs 100... lightest is
	// s1 at 60) → s1; then a(10): loads {100, 110} → s0; e(10): {110,110}
	// → tie, lowest id s0.
	want := map[string]int{"b": 0, "c": 1, "d": 1, "a": 0, "e": 0}
	for i, n := range names {
		if got := assign(i, n); got != want[n] {
			t.Errorf("host %s placed on shard %d, want %d", n, got, want[n])
		}
	}
	// Same inputs, same assignment — the function is a pure placement.
	again := PlaceByTraffic(names, traffic, 2)
	for i, n := range names {
		if assign(i, n) != again(i, n) {
			t.Fatalf("placement of %s not deterministic", n)
		}
	}
	// A host the profile never saw falls back to round-robin by index.
	if got := assign(3, "ghost"); got != 3%2 {
		t.Errorf("unknown host placed on shard %d, want %d", got, 3%2)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { PlaceByTraffic(names, traffic, 0) })
	mustPanic("length mismatch", func() { PlaceByTraffic(names, traffic[:3], 2) })
}

// starSpec is the placement tests' workload: src blasts addressed frames
// at three receivers with very uneven per-receiver volume, so traffic
// profiling has a real gradient to see.
func starSpec() Spec {
	return Spec{
		Seed: 4242,
		Hosts: []HostSpec{
			{Name: "src", Kernel: kernel.Options{IdleLoop: true}},
			{Name: "dst1"}, {Name: "dst2"}, {Name: "dst3"},
		},
		Switches: []SwitchSpec{{Name: "lan", Members: []string{"src", "dst1", "dst2", "dst3"}}},
	}
}

// driveStar starts the topology and sends count frames to each dst, with
// dst1 getting 4x and dst2 2x the dst3 volume.
func driveStar(top *Topology, span sim.Time) {
	top.Start()
	src := top.Host("src")
	for i, dst := range []string{"dst1", "dst2", "dst3"} {
		n := 40 >> (i * 1) // 40, 20, 10
		for j := 0; j < n; j++ {
			src.NIC().TxFromKernel(&netstack.Packet{
				Flow: i + 1, Src: top.Addr("src"), Dst: top.Addr(dst),
				Kind: netstack.Data, Size: 600,
			})
		}
	}
	top.RunFor(span)
}

// TrafficByHost sees both directions: the sender's transmissions and each
// receiver's deliveries, graded by volume.
func TestTrafficByHost(t *testing.T) {
	top := Build(starSpec())
	driveStar(top, 20*sim.Millisecond)
	tr := top.TrafficByHost()
	if len(tr) != 4 {
		t.Fatalf("traffic for %d hosts, want 4", len(tr))
	}
	// Add order: src, dst1, dst2, dst3.
	if tr[0] == 0 || tr[1] == 0 || tr[2] == 0 || tr[3] == 0 {
		t.Fatalf("silent host in %v; every host moved frames", tr)
	}
	if !(tr[0] > tr[1] && tr[1] > tr[2] && tr[2] > tr[3]) {
		t.Fatalf("traffic gradient %v not ordered src > dst1 > dst2 > dst3", tr)
	}
}

// AutoPlace's derived assignment is (a) deterministic, (b) spread — the
// hottest host does not share a shard with the second hottest — and (c)
// invisible in results: the sharded build under the auto assignment
// replays the legacy single-engine run byte-for-byte.
func TestAutoPlaceShardedMatchesLegacy(t *testing.T) {
	const span = 20 * sim.Millisecond
	drive := func(top *Topology) { driveStar(top, span/4) }

	assign := AutoPlace(starSpec(), 2, span/4, drive)
	again := AutoPlace(starSpec(), 2, span/4, drive)
	names := []string{"src", "dst1", "dst2", "dst3"}
	for i, n := range names {
		if assign(i, n) != again(i, n) {
			t.Fatalf("auto placement of %s not deterministic", n)
		}
	}
	// src dominates the traffic, dst1 is second: LPT puts them apart.
	if assign(0, "src") == assign(1, "dst1") {
		t.Error("the two hottest hosts share a shard; LPT should split them")
	}

	run := func(shards int, auto bool) []byte {
		spec := starSpec()
		spec.Shards = shards
		if auto {
			spec.Assign = assign
		}
		top := Build(spec)
		driveStar(top, span)
		buf, err := json.Marshal(top.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	ref := run(0, false)
	if got := run(2, true); !bytes.Equal(got, ref) {
		t.Error("auto-placed 2-shard run diverged from the legacy engine")
	}
	if got := run(3, true); !bytes.Equal(got, ref) {
		t.Error("auto-placed 3-shard run diverged from the legacy engine")
	}
}

// SyncSnapshot surfaces the group's grant telemetry — and only for
// sharded builds; the legacy topology has no sync substrate to describe.
func TestTopologySyncSnapshot(t *testing.T) {
	top := Build(starSpec())
	driveStar(top, 20*sim.Millisecond)
	if s := top.SyncSnapshot(); s != nil {
		t.Fatal("legacy topology returned a sync snapshot")
	}

	spec := starSpec()
	spec.Shards = 2
	top = Build(spec)
	driveStar(top, 20*sim.Millisecond)
	s := top.SyncSnapshot()
	if s == nil {
		t.Fatal("sharded topology returned no sync snapshot")
	}
	if s.Counters["sync.rounds"] == 0 {
		t.Error("sync.rounds = 0 after a sharded run")
	}
	if s.Counters["sync.mining"] != 1 {
		t.Error("sync.mining missing; mining is on by default")
	}
	if s.Counters["sync.shard00.rounds"] == 0 || s.Counters["sync.shard01.rounds"] == 0 {
		t.Error("per-shard round counters missing")
	}
	h, ok := s.Histograms["sync.grant_width_us"]
	if !ok || h.Count == 0 {
		t.Error("sync.grant_width_us histogram missing or empty")
	}
	var granted, reached int64
	for _, sh := range []string{"sync.shard00.", "sync.shard01."} {
		granted += s.Counters[sh+"granted_ns"]
		reached += s.Counters[sh+"reached_ns"]
	}
	if granted == 0 || reached > granted {
		t.Errorf("granted %d ns, reached %d ns; want granted > 0 and reached <= granted", granted, reached)
	}
}
