package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// fabricSpec is the shared 1-spine / 3-leaf / 7-host declaration the fabric
// tests build at varying shard counts.
func fabricSpec(shards int) Spec {
	hosts := []HostSpec{{Name: "h0", Kernel: kernel.Options{IdleLoop: true}}}
	members := []string{"h0"}
	for _, n := range []string{"h1", "h2", "h3", "h4", "h5", "h6"} {
		hosts = append(hosts, HostSpec{Name: n})
		members = append(members, n)
	}
	return Spec{
		Seed:  777,
		Hosts: hosts,
		Fabrics: []FabricSpec{{
			Name:    "dc",
			Leaves:  3,
			Members: members,
		}},
		Shards: shards,
	}
}

// Cut-through forwarding across the fabric: intra-leaf traffic never rides
// a trunk, cross-leaf traffic rides exactly two (up at the source leaf,
// down at the destination's), and unknown addresses die at the spine.
func TestFabricForwarding(t *testing.T) {
	top := Build(fabricSpec(0))
	rx := map[string]int{}
	for i, name := range []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6"} {
		name := name
		top.Fabrics()[0].MemberPorts[i].NIC.RxHandler = func(*netstack.Packet) { rx[name]++ }
	}
	top.Start()

	h0 := top.Host("h0")
	// h0 is on leaf 0 with h3 and h6 (members round-robin 3 leaves).
	h0.NIC().TxFromKernel(
		&netstack.Packet{Flow: 1, Src: top.Addr("h0"), Dst: top.Addr("h3"), Kind: netstack.Data, Size: 400}, // intra-leaf
		&netstack.Packet{Flow: 2, Src: top.Addr("h0"), Dst: top.Addr("h1"), Kind: netstack.Data, Size: 400}, // cross-leaf (leaf 1)
		&netstack.Packet{Flow: 3, Src: top.Addr("h0"), Dst: top.Addr("h5"), Kind: netstack.Data, Size: 400}, // cross-leaf (leaf 2)
		&netstack.Packet{Flow: 4, Src: top.Addr("h0"), Dst: 99, Kind: netstack.Data, Size: 400},             // unroutable
	)
	top.RunFor(5 * sim.Millisecond)

	for name, want := range map[string]int{"h3": 1, "h1": 1, "h5": 1} {
		if rx[name] != want {
			t.Errorf("%s received %d packets, want %d", name, rx[name], want)
		}
	}
	f := top.Fabrics()[0]
	if got := f.Up[0].Sent; got != 3 {
		t.Errorf("leaf0 up trunk sent %d, want 3 (two cross-leaf + one unroutable)", got)
	}
	if f.Down[1].Sent != 1 || f.Down[2].Sent != 1 {
		t.Errorf("down trunks sent %d/%d, want 1/1", f.Down[1].Sent, f.Down[2].Sent)
	}
	if f.Down[0].Sent != 0 {
		t.Errorf("leaf0 down trunk sent %d, want 0 (intra-leaf stays on the leaf)", f.Down[0].Sent)
	}
	if got := f.Spine.Misses(); got != 1 {
		t.Errorf("spine misses = %d, want 1", got)
	}
	// The unroutable packet was pooled-released by the spine: the arena got
	// every packet back once the network drained.
	if live := top.Arena(0).Live(); live != 0 {
		t.Errorf("arena has %d live packets after drain, want 0", live)
	}
}

// fabricRun drives the fabric with kernel-transmitted cross- and intra-leaf
// flows and returns merged telemetry and trace bytes.
func fabricRun(t *testing.T, shards, workers int) (snap, chrome []byte, rx map[string]int) {
	t.Helper()
	top := Build(fabricSpec(shards))
	if g := top.Group(); g != nil {
		g.Workers = workers
	}
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6"}
	// Per-host counters in distinct slice slots: each handler runs on its
	// host's shard goroutine, so a shared map would race under workers.
	counts := make([]int, len(names))
	for i := range names {
		i := i
		top.Fabrics()[0].MemberPorts[i].NIC.RxHandler = func(*netstack.Packet) { counts[i]++ }
	}
	top.EnableTracing(1 << 14)
	top.Start()

	// Every host sprays its successors: a deterministic all-pairs pattern
	// with both intra- and cross-leaf flows, staggered per host.
	for i, name := range names {
		h := top.Host(name)
		src := top.Addr(name)
		for k := 1; k <= 3; k++ {
			dst := top.Addr(names[(i+k)%len(names)])
			flow := i*10 + k
			h.NIC().TxFromKernel(&netstack.Packet{
				Flow: flow, Src: src, Dst: dst, Kind: netstack.Data, Size: 600 + 100*k,
			})
		}
	}
	top.RunFor(20 * sim.Millisecond)

	rx = map[string]int{}
	for i, name := range names {
		rx[name] = counts[i]
	}
	sj, err := json.Marshal(top.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := top.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	return sj, tb.Bytes(), rx
}

// The equivalence contract extends to hierarchical fabrics: telemetry and
// traces are byte-identical on one engine, a one-shard group, or one shard
// per leaf (serial or with a worker pool).
func TestFabricShardedMatchesLegacy(t *testing.T) {
	refSnap, refChrome, refRx := fabricRun(t, 0, 0)
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1", 1, 0},
		{"shards=3", 3, 0},
		{"shards=3/workers=3", 3, 3},
	} {
		t.Run(c.name, func(t *testing.T) {
			snap, chrome, rx := fabricRun(t, c.shards, c.workers)
			for name, want := range refRx {
				if rx[name] != want {
					t.Errorf("%s received %d packets, legacy received %d", name, rx[name], want)
				}
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("merged Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}

// Spec.Validate rejects assembly mistakes with errors naming the culprit.
func TestSpecValidate(t *testing.T) {
	ok := Spec{
		Hosts:    []HostSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Switches: []SwitchSpec{{Name: "s", Members: []string{"a", "b"}}},
		Fabrics:  []FabricSpec{{Name: "f", Leaves: 1, Members: []string{"c"}}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// A spec with no network at all is valid (host-only rigs).
	if err := (Spec{Hosts: []HostSpec{{Name: "a"}}}).Validate(); err != nil {
		t.Fatalf("networkless spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"duplicate host", Spec{Hosts: []HostSpec{{Name: "a"}, {Name: "a"}}}, `duplicate host "a"`},
		{"empty name", Spec{Hosts: []HostSpec{{Name: ""}}}, "has no name"},
		{"unknown switch member", Spec{
			Hosts:    []HostSpec{{Name: "a"}},
			Switches: []SwitchSpec{{Name: "s", Members: []string{"ghost"}}},
		}, `unknown host "ghost"`},
		{"unknown fabric member", Spec{
			Hosts:   []HostSpec{{Name: "a"}},
			Fabrics: []FabricSpec{{Name: "f", Leaves: 1, Members: []string{"ghost"}}},
		}, `unknown host "ghost"`},
		{"member twice", Spec{
			Hosts:    []HostSpec{{Name: "a"}},
			Switches: []SwitchSpec{{Name: "s", Members: []string{"a", "a"}}},
		}, `lists host "a" twice`},
		{"leafless fabric", Spec{
			Hosts:   []HostSpec{{Name: "a"}},
			Fabrics: []FabricSpec{{Name: "f", Members: []string{"a"}}},
		}, "at least one leaf"},
		{"unattached host", Spec{
			Hosts:    []HostSpec{{Name: "a"}, {Name: "lonely"}},
			Switches: []SwitchSpec{{Name: "s", Members: []string{"a"}}},
		}, `host "lonely" is attached to no switch or fabric`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
