package topology

import (
	"testing"

	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// tracedTwoHostPath is twoHostPath with flow tracing wired before Start,
// at the given sampling rate.
func tracedTwoHostPath(rate uint64) (*Topology, *host.Host, *netstack.Arena, netstack.Addr, *int) {
	top := New(sim.NewEngine(1))
	a := top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{}})
	dst := top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{}})
	sw := top.AddSwitch("s0")
	top.Join(sw, a, nic.Config{Name: "eth0"}, WireSpec{})
	pb := top.Join(sw, dst, nic.Config{Name: "eth0"}, WireSpec{})
	delivered := new(int)
	pb.NIC.RxHandler = func(*netstack.Packet) { *delivered++ }
	top.EnableFlowTrace(rate, 0)
	top.Start()
	return top, a, top.Arena(0), top.Addr("b"), delivered
}

// A traced packet through the two-host path records the full hop
// sequence — NIC tx, both link serializations and arrivals, the
// cut-through switch forward, the rx ring and the protocol pickup — with
// non-decreasing virtual timestamps and every location resolved to a
// registered name. The span finishes when the arena refcount drops to
// zero, without any explicit finish call at the receiver.
func TestFlowTraceHopSequence(t *testing.T) {
	top, a, arena, to, delivered := tracedTwoHostPath(1)
	ft := top.FlowTracing()
	smp := ft.Sampler("a")
	if !smp.SampleFlow() {
		t.Fatal("rate-1 sampler refused a flow")
	}

	p := arena.Get()
	p.Flow, p.Src, p.Dst, p.Kind, p.Size = 7, top.Addr("a"), to, netstack.Data, 1500
	p.Trace = smp.StartSpan()
	a.NIC().TxFromKernel(p)
	for *delivered == 0 {
		if !top.Eng.Step() {
			t.Fatal("engine drained before delivery")
		}
	}

	if ft.Started() != 1 || ft.Finished() != 1 {
		t.Fatalf("started %d finished %d, want 1/1", ft.Started(), ft.Finished())
	}
	spans := ft.Spans()
	if len(spans) != 1 {
		t.Fatalf("exported %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.ID != 1<<32|1 {
		t.Fatalf("span ID %#x, want host-a base | counter 1", s.ID)
	}
	if s.Flow != 7 || s.Kind != netstack.Data.String() || s.Src != 1 || s.Dst != 2 {
		t.Fatalf("span identity %+v wrong", s)
	}
	want := []string{
		"nic_tx", "link_tx", "link_rx", "switch_fwd",
		"link_tx", "link_rx", "nic_ring", "nic_rx",
	}
	if len(s.Hops) != len(want) {
		t.Fatalf("recorded %d hops %v, want %d", len(s.Hops), s.Hops, len(want))
	}
	for i, h := range s.Hops {
		if h.Kind != want[i] {
			t.Errorf("hop %d kind %q, want %q", i, h.Kind, want[i])
		}
		if h.Loc == "?" {
			t.Errorf("hop %d (%s) location unresolved", i, h.Kind)
		}
		if i > 0 && h.AtNS < s.Hops[i-1].AtNS {
			t.Errorf("hop %d (%s) at %d precedes hop %d at %d", i, h.Kind, h.AtNS, i-1, s.Hops[i-1].AtNS)
		}
	}
	// The cut-through forward runs inside the link arrival that carried the
	// packet in: same instant.
	if s.Hops[3].AtNS != s.Hops[2].AtNS {
		t.Errorf("switch forward at %d, want the carrying link_rx instant %d", s.Hops[3].AtNS, s.Hops[2].AtNS)
	}
	if ft.HopCount() != int64(len(want)) || ft.DroppedHops() != 0 {
		t.Fatalf("hop count %d dropped %d, want %d/0", ft.HopCount(), ft.DroppedHops(), len(want))
	}

	// The span renders as one Chrome flow arrow between the two host rows.
	evs := ft.FlowEvents()
	if len(evs) != 1 {
		t.Fatalf("%d flow events, want 1", len(evs))
	}
	if evs[0].StartPID != 1 || evs[0].EndPID != 2 || evs[0].EndTS < evs[0].StartTS {
		t.Fatalf("flow event anchors wrong: %+v", evs[0])
	}
}

// EnableFlowTrace is idempotent and rate 0 wires recorders without ever
// sampling, so hop sites stay nil-span no-ops.
func TestFlowTraceDisabledSamplesNothing(t *testing.T) {
	top, a, arena, to, delivered := tracedTwoHostPath(0)
	ft := top.FlowTracing()
	if again := top.EnableFlowTrace(1, 10); again != ft {
		t.Fatal("EnableFlowTrace is not idempotent")
	}
	if ft.Sampler("a").SampleFlow() {
		t.Fatal("rate-0 sampler sampled a flow")
	}
	p := arena.Get()
	p.Flow, p.Src, p.Dst, p.Kind, p.Size = 0, top.Addr("a"), to, netstack.Data, 1500
	a.NIC().TxFromKernel(p)
	for *delivered == 0 {
		top.Eng.Step()
	}
	if ft.Started() != 0 || ft.Finished() != 0 || ft.SampledFlows() != 0 {
		t.Fatalf("rate-0 tracing recorded spans: started %d finished %d sampled %d",
			ft.Started(), ft.Finished(), ft.SampledFlows())
	}
}

// TestTestbedPacketZeroAllocTracingOff pins the observability contract:
// with flow tracing wired but the packet untraced, the hot path still
// allocates nothing — each hop site costs one nil test and the arena's
// finish hook never fires. Guarded ahead of the benches in `make bench`.
func TestTestbedPacketZeroAllocTracingOff(t *testing.T) {
	top, a, arena, to, delivered := tracedTwoHostPath(0)
	eng := top.Eng
	src := top.Addr("a")
	flow := 0
	shot := func() {
		p := arena.Get()
		p.Flow, p.Src, p.Dst, p.Kind, p.Size = flow, src, to, netstack.Data, 1500
		flow++
		a.NIC().TxFromKernel(p)
		for *delivered < flow {
			if !eng.Step() {
				t.Fatal("engine drained before the packet was delivered")
			}
		}
	}
	for i := 0; i < 64; i++ {
		shot()
	}
	if n := testing.AllocsPerRun(100, shot); n != 0 {
		t.Fatalf("tracing-off packet path allocates %.1f times per packet, want 0", n)
	}
	if live := arena.Live(); live != 0 {
		t.Fatalf("%d packets leaked from the arena", live)
	}
}

// EnableSeries samples every host on the engine's virtual-time grid and
// merges a fleet series point-wise.
func TestEnableSeriesSamplesOnGrid(t *testing.T) {
	const interval = sim.Millisecond
	top := New(sim.NewEngine(1))
	top.AddHost(host.Config{Name: "a", Kernel: kernel.Options{}})
	top.AddHost(host.Config{Name: "b", Kernel: kernel.Options{}})
	custom := 0.0
	top.EnableSeries(interval, 8, func(h *host.Host, ss *metrics.SeriesSet) {
		if h.Name == "a" {
			ss.Add("custom", metrics.MergeSum, func() float64 { return custom })
		}
	})
	top.Start()
	for i := 1; i <= 5; i++ {
		custom = float64(i)
		top.RunFor(interval)
	}

	snaps := top.SeriesSnapshots()
	for _, key := range []string{"host.a", "host.b", "fleet"} {
		if snaps[key] == nil {
			t.Fatalf("missing %q series", key)
		}
	}
	sa := snaps["host.a"]
	if len(sa.TimesNS) != 5 {
		t.Fatalf("host.a holds %d points, want 5", len(sa.TimesNS))
	}
	for i, ts := range sa.TimesNS {
		if want := int64(i+1) * int64(interval); ts != want {
			t.Fatalf("point %d at %d, want the %dms grid instant %d", i, ts, i+1, want)
		}
	}
	// The custom column sampled the value current at each tick.
	for i, v := range sa.Series["custom"].Vals {
		if v != float64(i+1) {
			t.Fatalf("custom point %d is %v, want %d", i, v, i+1)
		}
	}
	// Default columns exist on every host and sum/max into the fleet.
	for _, col := range []string{
		"trigger_interval_p50_us", "trigger_interval_p99_us",
		"softtimer_delay_p99_us", "rx_packets", "tx_packets", "nic_queue_depth",
	} {
		if _, ok := snaps["host.b"].Series[col]; !ok {
			t.Fatalf("host.b missing default column %q", col)
		}
		if _, ok := snaps["fleet"].Series[col]; !ok {
			t.Fatalf("fleet missing default column %q", col)
		}
	}

	// A second export is identical: snapshots do not consume state, and
	// sampling stopped with virtual time.
	again := top.SeriesSnapshots()
	if len(again["host.a"].TimesNS) != 5 {
		t.Fatal("re-export changed the series")
	}
}
