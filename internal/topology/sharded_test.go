package topology

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/core"
	"softtimers/internal/kernel"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// pacedStar assembles a 4-host star (one src pacing flows to three dsts),
// runs 60 ms of cross-host traffic, and returns the merged telemetry JSON,
// the merged Chrome trace, and the per-dst receive counts. shards == 0
// builds the legacy single-engine topology; workers applies only when
// sharded.
func pacedStar(t *testing.T, shards, workers int) (snap, chrome []byte, rx map[string]int) {
	t.Helper()
	spec := Spec{
		Seed: 4242,
		Hosts: []HostSpec{
			{Name: "src", Kernel: kernel.Options{IdleLoop: true}},
			{Name: "dst1"},
			{Name: "dst2"},
			{Name: "dst3"},
		},
		Switches: []SwitchSpec{{Name: "lan", Members: []string{"src", "dst1", "dst2", "dst3"}}},
		Shards:   shards,
	}
	top := Build(spec)
	if g := top.Group(); g != nil {
		g.Workers = workers
	}
	rx = map[string]int{}
	for _, name := range []string{"dst1", "dst2", "dst3"} {
		name := name
		p := top.Ports(top.Host(name))[0]
		p.NIC.RxHandler = func(*netstack.Packet) { rx[name]++ }
	}
	top.EnableTracing(1 << 14)
	top.Start()

	src := top.Host("src")
	m := core.NewMultiPacer(src.F)
	ps := top.Ports(src)[0]
	mk := func(dst netstack.Addr, flow, n int) func(sim.Time) (sim.Time, bool) {
		sent := 0
		return func(sim.Time) (sim.Time, bool) {
			sent++
			cost := ps.NIC.TransmitNow(&netstack.Packet{
				Flow: flow, Src: top.Addr("src"), Dst: dst, Kind: netstack.Data, Size: 1200,
			})
			return cost, sent < n
		}
	}
	m.AddFlow(1, 300*sim.Microsecond, 100*sim.Microsecond, mk(top.Addr("dst1"), 1, 30))
	m.AddFlow(2, 500*sim.Microsecond, 100*sim.Microsecond, mk(top.Addr("dst2"), 2, 20))
	m.AddFlow(3, 900*sim.Microsecond, 100*sim.Microsecond, mk(top.Addr("dst3"), 3, 10))
	top.RunFor(60 * sim.Millisecond)

	sj, err := json.Marshal(top.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := top.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	return sj, tb.Bytes(), rx
}

// The tentpole equivalence contract at the topology layer: merged telemetry
// and merged Chrome traces are byte-identical whether the fleet shares one
// engine (legacy), runs a one-shard group, or is split across shards — in
// serial rounds or with a worker pool.
func TestShardedTopologyMatchesLegacy(t *testing.T) {
	refSnap, refChrome, refRx := pacedStar(t, 0, 0)
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1", 1, 0},
		{"shards=2", 2, 0},
		{"shards=4", 4, 0},
		{"shards=4/workers=4", 4, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			snap, chrome, rx := pacedStar(t, c.shards, c.workers)
			for name, want := range refRx {
				if rx[name] != want {
					t.Errorf("%s received %d packets, legacy received %d", name, rx[name], want)
				}
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("merged Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}

// Sharded assembly details: round-robin placement, shard clamping, custom
// Assign, and per-shard switch counters that sum to the legacy totals.
func TestShardedAssemblyPlacement(t *testing.T) {
	spec := Spec{
		Seed: 7,
		Hosts: []HostSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		Switches: []SwitchSpec{{Name: "s", Members: []string{"a", "b", "c"}}},
		Shards:   8, // clamps to the host count
	}
	top := Build(spec)
	if got := top.Group().N(); got != 3 {
		t.Fatalf("group has %d shards, want 3 (clamped to hosts)", got)
	}
	for i, name := range []string{"a", "b", "c"} {
		if got := top.HostShard(name); got != i {
			t.Fatalf("host %s on shard %d, want %d (round-robin)", name, got, i)
		}
	}

	spec.Shards = 2
	spec.Assign = func(i int, name string) int {
		if name == "c" {
			return 0
		}
		return i % 2
	}
	top = Build(spec)
	if got := top.HostShard("c"); got != 0 {
		t.Fatalf("Assign ignored: host c on shard %d, want 0", got)
	}

	// Out-of-range assignment is an assembly bug.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range shard assignment")
		}
	}()
	Build(Spec{
		Seed:   1,
		Hosts:  []HostSpec{{Name: "x"}},
		Shards: 1,
		Assign: func(int, string) int { return 5 },
	})
}

// Cross-shard forwards execute on the destination shard and count in its
// counter slot; same-shard forwards stay local. The summed counters match
// what a legacy switch would report.
func TestShardedSwitchCountsPerShard(t *testing.T) {
	spec := Spec{
		Seed: 99,
		Hosts: []HostSpec{
			{Name: "src", Kernel: kernel.Options{IdleLoop: true}},
			{Name: "peer"},
		},
		Switches: []SwitchSpec{{Name: "s", Members: []string{"src", "peer"}}},
		Shards:   2,
	}
	top := Build(spec)
	var got int
	top.Ports(top.Host("peer"))[0].NIC.RxHandler = func(*netstack.Packet) { got++ }
	top.Start()

	// Addressed cross-shard traffic, plus one miss.
	src := top.Host("src")
	src.NIC().TxFromKernel(
		&netstack.Packet{Flow: 1, Src: top.Addr("src"), Dst: top.Addr("peer"), Kind: netstack.Data, Size: 200},
		&netstack.Packet{Flow: 2, Src: top.Addr("src"), Dst: top.Addr("peer"), Kind: netstack.Data, Size: 200},
		&netstack.Packet{Flow: 3, Src: top.Addr("src"), Dst: 77, Kind: netstack.Data, Size: 200},
	)
	top.RunFor(10 * sim.Millisecond)

	if got != 2 {
		t.Fatalf("peer received %d packets, want 2", got)
	}
	sw := top.switches[0]
	if sw.Forwarded() != 2 || sw.Misses() != 1 {
		t.Fatalf("forwarded=%d misses=%d, want 2/1", sw.Forwarded(), sw.Misses())
	}
	// The forwards for peer executed on peer's shard; src's slot saw none.
	peerShard := top.HostShard("peer")
	if sw.fwd[peerShard] != 2 {
		t.Fatalf("peer shard slot forwarded %d, want 2", sw.fwd[peerShard])
	}
	if srcShard := top.HostShard("src"); sw.fwd[srcShard] != 0 {
		t.Fatalf("src shard slot forwarded %d, want 0", sw.fwd[srcShard])
	}
	if rounds, msgs := top.Group().Stats(); rounds == 0 || msgs < 2 {
		t.Fatalf("group ran %d rounds / %d messages, want cross-shard traffic", rounds, msgs)
	}
}

// Per-host RNG streams depend only on (seed, name) — the property that lets
// workloads draw identically no matter which engine their host runs on.
func TestHostRandIndependentOfSharding(t *testing.T) {
	draw := func(shards int) []uint64 {
		spec := Spec{
			Seed:   31,
			Hosts:  []HostSpec{{Name: "a"}, {Name: "b"}},
			Shards: shards,
		}
		top := Build(spec)
		var out []uint64
		for _, h := range top.Hosts() {
			r := h.Rand()
			for i := 0; i < 4; i++ {
				out = append(out, r.Uint64())
			}
		}
		return out
	}
	legacy, sharded := draw(0), draw(2)
	for i := range legacy {
		if legacy[i] != sharded[i] {
			t.Fatalf("draw %d diverged: legacy %d, sharded %d", i, legacy[i], sharded[i])
		}
	}
}
