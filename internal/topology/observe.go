package topology

// Observability wiring: flow-level packet tracing (package flowtrace)
// threaded through every assembled link, NIC, switch and cross-shard
// courier, and virtual-time time series (metrics.SeriesSet) sampled by
// per-host engine events. Both are designed to be mode-invariant — the
// exported spans and series are byte-identical whether the topology runs
// on one engine or sharded across several, at any worker count — and to
// cost nothing when disabled (a nil test per hop site, no events).

import (
	"softtimers/internal/flowtrace"
	"softtimers/internal/host"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// FlowTrace is a topology's flow-tracing state: one span Recorder per
// shard (attached to that shard's packet arena, which finishes spans when
// refcounts drop to zero), one Sampler per host drawing from the host's
// private observability RNG stream, and the location registry naming
// every hop site in assembly order.
type FlowTrace struct {
	t        *Topology
	loc      *flowtrace.Locations
	recs     []*flowtrace.Recorder
	samplers map[string]*flowtrace.Sampler
}

// EnableFlowTrace wires flow tracing over the assembled topology: 1-in-rate
// flows (rate 0 disables sampling but still wires the recorders, rate 1
// traces every flow), at most maxFlows traced flows per host (0 =
// unlimited). Call after all hosts, switches and fabrics are assembled and
// before Start. Idempotent: repeated calls return the first wiring.
//
// Location ids are assigned in deterministic assembly order — hosts in add
// order (each port's down link, NIC, up link in attach order), then
// switches in add order, then fabric trunks (up, down per leaf) — so
// exported traces name hops identically at any shard or worker count.
func (t *Topology) EnableFlowTrace(rate uint64, maxFlows int) *FlowTrace {
	if t.flow != nil {
		return t.flow
	}
	ft := &FlowTrace{
		t:        t,
		loc:      flowtrace.NewLocations(),
		samplers: make(map[string]*flowtrace.Sampler),
	}
	t.Arena(0) // ensure the per-shard pools exist
	ft.recs = make([]*flowtrace.Recorder, len(t.arenas))
	for i, a := range t.arenas {
		ft.recs[i] = flowtrace.NewRecorder()
		a.SetFlowRecorder(ft.recs[i])
	}
	for i, h := range t.hosts {
		addr := int32(i + 1)
		for _, p := range t.ports[h.Name] {
			p.Down.TraceLoc = ft.loc.Register("link."+p.Down.Name, addr)
			p.NIC.TraceLoc = ft.loc.Register("nic."+h.Name+"."+p.NIC.Cfg().Name, addr)
			p.Up.TraceLoc = ft.loc.Register("link."+p.Up.Name, addr)
			if c, ok := p.Down.Courier.(*courier); ok {
				c.loc = p.Down.TraceLoc
			}
		}
	}
	for _, sw := range t.switches {
		sw.TraceLoc = ft.loc.Register("switch."+sw.Name, 0)
	}
	for _, f := range t.fabrics {
		for j := range f.Up {
			f.Up[j].TraceLoc = ft.loc.Register("link."+f.Up[j].Name, 0)
			f.Down[j].TraceLoc = ft.loc.Register("link."+f.Down[j].Name, 0)
			if c, ok := f.Up[j].Courier.(*courier); ok {
				c.loc = f.Up[j].TraceLoc
			}
		}
	}
	for i, h := range t.hosts {
		shard := t.shardOf[i]
		base := uint64(i+1) << 32
		ft.samplers[h.Name] = flowtrace.NewSampler(ft.recs[shard], h.TraceRand(), rate, base, maxFlows)
	}
	t.flow = ft
	return ft
}

// FlowTracing returns the flow-trace wiring, or nil when not enabled.
func (t *Topology) FlowTracing() *FlowTrace { return t.flow }

// Sampler returns the named host's flow sampler (nil for unknown hosts).
// Workload code calls SampleFlow once per flow and StartSpan per packet of
// a traced flow.
func (ft *FlowTrace) Sampler(name string) *flowtrace.Sampler { return ft.samplers[name] }

// Spans exports every finished span across all shards, sorted by
// mode-invariant span ID, with hop locations and packet kinds resolved to
// names.
func (ft *FlowTrace) Spans() []flowtrace.SpanData {
	return flowtrace.Export(ft.loc, func(k int) string { return netstack.Kind(k).String() }, ft.recs...)
}

// LocationName resolves a hop-site id.
func (ft *FlowTrace) LocationName(id int32) string { return ft.loc.Name(id) }

// Started returns spans allocated across all shards.
func (ft *FlowTrace) Started() int64 {
	var n int64
	for _, r := range ft.recs {
		n += r.Started()
	}
	return n
}

// Finished returns spans retired across all shards.
func (ft *FlowTrace) Finished() int64 {
	var n int64
	for _, r := range ft.recs {
		n += r.Finished()
	}
	return n
}

// HopCount returns total recorded hops across finished spans.
func (ft *FlowTrace) HopCount() int64 {
	var n int64
	for _, r := range ft.recs {
		n += r.HopCount()
	}
	return n
}

// DroppedHops returns hops lost to span-capacity overflow.
func (ft *FlowTrace) DroppedHops() int64 {
	var n int64
	for _, r := range ft.recs {
		n += r.DroppedHops()
	}
	return n
}

// SampledFlows returns flows chosen for tracing across all hosts.
func (ft *FlowTrace) SampledFlows() int64 {
	var n int64
	for _, h := range ft.t.hosts {
		n += int64(ft.samplers[h.Name].SampledFlows())
	}
	return n
}

// FlowEvents renders the finished spans as Chrome flow arrows: one
// start/finish pair per span with at least two hops, anchored to the host
// process rows of the first and last hop (pid == host address == Chrome
// proc pid by construction; spans starting or ending at a fabric site fall
// back to the packet's src/dst address). Ordered by span ID, so the
// rendered JSON is mode-invariant.
func (ft *FlowTrace) FlowEvents() []trace.FlowEvent {
	var out []trace.FlowEvent
	for _, d := range ft.Spans() {
		if len(d.Hops) < 2 {
			continue
		}
		startPID := int(ft.loc.HostAddr(d.FirstLoc))
		if startPID == 0 {
			startPID = int(d.Src)
		}
		endPID := int(ft.loc.HostAddr(d.LastLoc))
		if endPID == 0 {
			endPID = int(d.Dst)
		}
		if startPID == 0 || endPID == 0 {
			continue
		}
		out = append(out, trace.FlowEvent{
			Name:     d.Kind,
			ID:       d.ID,
			Cat:      "flowtrace",
			StartTS:  float64(d.Hops[0].AtNS) / float64(sim.Microsecond),
			EndTS:    float64(d.Hops[len(d.Hops)-1].AtNS) / float64(sim.Microsecond),
			StartPID: startPID,
			EndPID:   endPID,
		})
	}
	return out
}

// seriesRec pairs one host with its sampled series.
type seriesRec struct {
	h  *host.Host
	ss *metrics.SeriesSet
}

// EnableSeries wires a virtual-time series recorder on every host: a
// metrics.SeriesSet sampled every interval of virtual time by a
// self-rescheduling event on the host's own engine. Call after all hosts
// are added and before Start (Start schedules the samplers). Each host's
// set carries default columns — trigger-interval p50/p99 and soft-timer
// delay p99 (merge: max, the fleet tail is the worst host's), cumulative
// NIC rx/tx packets and instantaneous NIC queue depth (merge: sum) — and
// setup, when non-nil, runs per host to add custom columns.
//
// Columns must read only host-local simulation state: sampling rides an
// ordinary engine event, and cross-host influence always transits the
// arrival band, so host-local reads at a sampling instant are identical
// under legacy and sharded execution — which is what makes per-host and
// merged fleet series byte-identical at any shard or worker count.
func (t *Topology) EnableSeries(interval sim.Time, capacity int, setup func(h *host.Host, ss *metrics.SeriesSet)) {
	if t.series != nil || interval <= 0 {
		return
	}
	t.seriesIvl = interval
	for _, h := range t.hosts {
		h := h
		ss := metrics.NewSeriesSet(int64(interval), capacity)
		ss.Add("trigger_interval_p50_us", metrics.MergeMax, func() float64 {
			return h.K.Meter().Hist.Quantile(0.5)
		})
		ss.Add("trigger_interval_p99_us", metrics.MergeMax, func() float64 {
			return h.K.Meter().Hist.Quantile(0.99)
		})
		ss.Add("softtimer_delay_p99_us", metrics.MergeMax, func() float64 {
			return h.F.DelayHist.Quantile(0.99)
		})
		ss.Add("rx_packets", metrics.MergeSum, func() float64 {
			var n int64
			for _, nc := range h.NICs {
				n += nc.RxPackets
			}
			return float64(n)
		})
		ss.Add("tx_packets", metrics.MergeSum, func() float64 {
			var n int64
			for _, nc := range h.NICs {
				n += nc.TxPackets
			}
			return float64(n)
		})
		ss.Add("nic_queue_depth", metrics.MergeSum, func() float64 {
			var n int
			for _, nc := range h.NICs {
				n += nc.QueueDepth()
			}
			return float64(n)
		})
		if setup != nil {
			setup(h, ss)
		}
		t.series = append(t.series, &seriesRec{h: h, ss: ss})
	}
}

// startSeries schedules each host's sampler on its engine; called from
// Start. The first tick lands one interval in, then self-reschedules, so
// the tick count — and with it the stride evolution and retained
// timestamps — is a pure function of elapsed virtual time.
func (t *Topology) startSeries() {
	for _, r := range t.series {
		r := r
		eng := r.h.Engine()
		var fire func()
		fire = func() {
			r.ss.Sample(int64(eng.Now()))
			eng.After(t.seriesIvl, fire)
		}
		eng.After(t.seriesIvl, fire)
	}
}

// SeriesSnapshots exports every host's series under "host.<name>" plus a
// point-wise merged "fleet" series, or nil when EnableSeries never ran.
// All hosts sample on one cadence for one virtual span, so the merge needs
// no alignment and the result is deterministic.
func (t *Topology) SeriesSnapshots() map[string]*metrics.SeriesSnapshot {
	if t.series == nil {
		return nil
	}
	out := make(map[string]*metrics.SeriesSnapshot, len(t.series)+1)
	fleet := &metrics.SeriesSnapshot{}
	for _, r := range t.series {
		s := r.ss.Snapshot()
		out["host."+r.h.Name] = s
		fleet.Merge(s)
	}
	out["fleet"] = fleet
	return out
}
