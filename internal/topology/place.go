package topology

// Affinity-based shard placement. Spec.Assign (and Topology.Assign) decide
// which shard owns each host; any assignment yields byte-identical results
// — per-host RNG streams derive from (seed, name), never from an engine —
// so placement is purely a wall-clock knob. The knob matters, though:
// conservative sync advances in rounds bounded by the busiest shard, so a
// placement that spreads the hot hosts evenly keeps rounds wide and
// workers busy, while one that piles the traffic onto one shard serializes
// the group behind it.
//
// AutoPlace derives the assignment from observed traffic: build the same
// spec single-engine, drive it briefly, read each host's port counters,
// and spread hosts over shards greedily from the hottest down (classic
// longest-processing-time balancing). The profile pass is itself a
// deterministic simulation, so the derived placement — and therefore the
// sharded run's round schedule — is a pure function of (spec, profile
// window).

import (
	"sort"

	"softtimers/internal/sim"
)

// TrafficByHost returns, per host in add order, the total frames observed
// on the host's ports: transmissions down toward the network plus
// deliveries up into its NICs. It reads the links' Sent counters, so it
// reflects whatever span the topology has run; fault-dropped frames count
// at the sender, which is the side whose shard pays for them anyway.
func (t *Topology) TrafficByHost() []int64 {
	out := make([]int64, len(t.hosts))
	for i, h := range t.hosts {
		var n int64
		for _, p := range t.ports[h.Name] {
			n += p.Down.Sent + p.Up.Sent
		}
		out[i] = n
	}
	return out
}

// PlaceByTraffic builds an Assign func from per-host traffic counts:
// hosts are taken from the hottest down (ties broken by add index, so the
// result is deterministic) and each goes to the currently lightest shard
// (ties to the lowest id). names and traffic run in add order, as
// returned by Hosts and TrafficByHost. Hosts the profile never saw fall
// back to round-robin by index.
func PlaceByTraffic(names []string, traffic []int64, shards int) func(i int, name string) int {
	if shards < 1 {
		panic("topology: PlaceByTraffic needs at least one shard")
	}
	if len(names) != len(traffic) {
		panic("topology: PlaceByTraffic names and traffic lengths differ")
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return traffic[order[a]] > traffic[order[b]]
	})
	load := make([]int64, shards)
	byName := make(map[string]int, len(names))
	for _, i := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		byName[names[i]] = best
		load[best] += traffic[i]
	}
	return func(i int, name string) int {
		if s, ok := byName[name]; ok {
			return s
		}
		return i % shards
	}
}

// AutoPlace profiles spec on a single engine and returns a traffic-derived
// Assign func for a sharded build of the same spec. The profile build
// forces Shards=0 and ClockSim (a deterministic replica of the real run's
// first profile nanoseconds); drive, when non-nil, must start the
// topology and run whatever workload generates the traffic — callers
// whose load comes from outside the spec (experiment rigs) install it
// there. A nil drive starts the topology and runs it for profile.
func AutoPlace(spec Spec, shards int, profile sim.Time, drive func(*Topology)) func(i int, name string) int {
	spec.Shards = 0
	spec.Clock = sim.ClockSim
	spec.Assign = nil
	t := Build(spec)
	if drive != nil {
		drive(t)
	} else {
		t.Start()
		t.RunFor(profile)
	}
	names := make([]string, len(t.hosts))
	for i, h := range t.hosts {
		names[i] = h.Name
	}
	return PlaceByTraffic(names, t.TrafficByHost(), shards)
}
