package topology

import (
	"fmt"

	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
)

// Switch forwards packets by destination address: a LAN switch whose ports
// are the receive links of the hosts joined to it. Switching itself is
// cut-through and free — serialization and propagation costs live on the
// links, as in the single-server testbed — so a host-switch-host path costs
// two link traversals.
//
// A packet whose destination has no forwarding entry (including the zero
// Addr of unaddressed packets) is dropped and counted as a miss; silent
// blackholing would make topology bugs look like congestion.
type Switch struct {
	Name string

	table map[netstack.Addr]netstack.Endpoint

	// Forwarded and Misses count switched and address-miss packets.
	Forwarded int64
	Misses    int64
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{Name: name, table: make(map[netstack.Addr]netstack.Endpoint)}
}

// Connect installs a forwarding entry: packets for addr go to port (the
// link toward that host). Duplicate entries panic — two hosts sharing an
// address is an assembly bug.
func (s *Switch) Connect(addr netstack.Addr, port netstack.Endpoint) {
	if addr == 0 {
		panic("topology: switch entry for the zero address")
	}
	if _, dup := s.table[addr]; dup {
		panic(fmt.Sprintf("topology: switch %q already has an entry for address %d", s.Name, addr))
	}
	s.table[addr] = port
}

// Deliver implements netstack.Endpoint: forward by destination address.
func (s *Switch) Deliver(p *netstack.Packet) {
	port, ok := s.table[p.Dst]
	if !ok {
		s.Misses++
		return
	}
	s.Forwarded++
	port.Deliver(p)
}

// RegisterMetrics exposes the switch's counters on a registry under
// switch.<name>.
func (s *Switch) RegisterMetrics(r *metrics.Registry) {
	prefix := "switch." + s.Name + "."
	r.CounterFunc(prefix+"forwarded", func() int64 { return s.Forwarded })
	r.CounterFunc(prefix+"misses", func() int64 { return s.Misses })
}
