package topology

import (
	"fmt"

	"softtimers/internal/flowtrace"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
)

// Switch forwards packets by destination address: a LAN switch whose ports
// are the receive links of the hosts joined to it. Switching itself is
// cut-through and free — serialization and propagation costs live on the
// links, as in the single-server testbed — so a host-switch-host path costs
// two link traversals.
//
// A packet whose destination has no forwarding entry (including the zero
// Addr of unaddressed packets) is dropped and counted as a miss; silent
// blackholing would make topology bugs look like congestion.
//
// Under sharded execution the forwarding table is read-only at run time
// and the counters split into per-shard slots (each shard's deliveries
// touch only its own slot, so concurrent rounds never contend); a packet
// whose destination lives on another shard never reaches Deliver — the
// sending link's courier ships it at transmit time and the forward
// executes on the destination shard at arrival time, exactly when the
// legacy path would have counted it.
type Switch struct {
	Name string

	// Default, when set, receives packets whose destination has no
	// forwarding entry instead of dropping them — the leaf switch's route
	// toward the spine in hierarchical fabrics. Default-routed packets
	// count as forwarded, and skip the shard-ownership check (their
	// destination lives behind the trunk, not on a member port).
	Default netstack.Endpoint

	// TraceLoc is the switch's flowtrace location id (0 = unregistered).
	TraceLoc int32

	table   map[netstack.Addr]netstack.Endpoint
	shardOf map[netstack.Addr]int // populated only in sharded topologies

	// arenas, when wired by a topology, are the per-shard packet pools
	// address-miss drops release into (slot 0 on single-engine).
	arenas []*netstack.Arena

	// fwd and miss count switched and address-miss packets, one slot per
	// shard (single-engine topologies use slot 0).
	fwd  []int64
	miss []int64

	// members records each joined host's shard and down-link propagation
	// delay, the inputs to the group's lookahead matrix.
	members []switchMember
}

type switchMember struct {
	shard int
	delay sim.Time // the member's host→switch propagation delay
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		Name:  name,
		table: make(map[netstack.Addr]netstack.Endpoint),
		fwd:   make([]int64, 1),
		miss:  make([]int64, 1),
	}
}

// setShards sizes the per-shard counter slots; called by sharded
// topologies at switch creation.
func (s *Switch) setShards(n int) {
	if n < 1 {
		n = 1
	}
	s.fwd = make([]int64, n)
	s.miss = make([]int64, n)
	s.shardOf = make(map[netstack.Addr]int)
}

// Connect installs a forwarding entry: packets for addr go to port (the
// link toward that host). Duplicate entries panic — two hosts sharing an
// address is an assembly bug.
func (s *Switch) Connect(addr netstack.Addr, port netstack.Endpoint) {
	if addr == 0 {
		panic("topology: switch entry for the zero address")
	}
	if _, dup := s.table[addr]; dup {
		panic(fmt.Sprintf("topology: switch %q already has an entry for address %d", s.Name, addr))
	}
	s.table[addr] = port
}

// bind records addr's shard (sharded topologies only).
func (s *Switch) bind(addr netstack.Addr, shard int) {
	s.shardOf[addr] = shard
}

// Forwarded returns the number of switched packets (all shards).
func (s *Switch) Forwarded() int64 {
	var n int64
	for _, v := range s.fwd {
		n += v
	}
	return n
}

// Misses returns the number of address-miss drops (all shards).
func (s *Switch) Misses() int64 {
	var n int64
	for _, v := range s.miss {
		n += v
	}
	return n
}

// Deliver implements netstack.Endpoint: forward by destination address.
// Single-engine topologies deliver here directly; sharded ones go through
// deliverOn with the delivering shard.
func (s *Switch) Deliver(p *netstack.Packet) { s.deliverOn(0, p) }

func (s *Switch) deliverOn(shard int, p *netstack.Packet) {
	// Cut-through forwarding runs synchronously inside the link arrival
	// that carried the packet in, so the switch hop shares its instant.
	p.Trace.HopHere(flowtrace.HopSwitch, s.TraceLoc)
	port, ok := s.table[p.Dst]
	if !ok {
		if s.Default != nil {
			s.fwd[shard]++
			s.Default.Deliver(p)
			return
		}
		s.miss[shard]++
		var a *netstack.Arena
		if s.arenas != nil {
			a = s.arenas[shard]
		}
		a.Release(p)
		return
	}
	if s.shardOf != nil {
		if d := s.shardOf[p.Dst]; d != shard {
			// Cross-shard packets must arrive via the courier; reaching the
			// local path means a link was wired without one.
			panic(fmt.Sprintf("topology: switch %q: packet for address %d (shard %d) on shard %d's local path",
				s.Name, p.Dst, d, shard))
		}
	}
	s.fwd[shard]++
	port.Deliver(p)
}

// shardView adapts the switch to one shard's local delivery path, so
// same-shard forwards count against that shard's slot.
type shardView struct {
	sw    *Switch
	shard int
}

// Deliver implements netstack.Endpoint.
func (v shardView) Deliver(p *netstack.Packet) { v.sw.deliverOn(v.shard, p) }

// RegisterMetrics exposes the switch's counters on a registry under
// switch.<name>.
func (s *Switch) RegisterMetrics(r *metrics.Registry) {
	prefix := "switch." + s.Name + "."
	r.CounterFunc(prefix+"forwarded", func() int64 { return s.Forwarded() })
	r.CounterFunc(prefix+"misses", func() int64 { return s.Misses() })
}
