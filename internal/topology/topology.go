// Package topology assembles multi-node networks of simulated hosts on one
// shared deterministic event engine: named hosts (package host), duplex
// links with finite bandwidth and delay, switches forwarding by destination
// address, and the paper's Section 5.8 "WAN emulator" intermediate as just
// another host that routes between its interfaces.
//
// The paper's testbed is inherently multi-machine — server, client fleet,
// and the WAN-emulator router are all full FreeBSD hosts — so soft-timer
// behaviour is measurable on both ends of a flow: every host has its own
// kernel, trigger states, soft-timer facility, fault plan, and telemetry
// namespace, while all of them share a single sim.Engine and therefore a
// single replayable event order.
//
// Assembly comes in two forms: the imperative primitives here (AddHost,
// AttachNIC, Join) used where exact wiring order matters, and the
// declarative Spec/Build layer in spec.go for N-node topologies
// (server + K client hosts + optional intermediate).
package topology

import (
	"fmt"

	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// Topology is one multi-node network on a shared engine.
type Topology struct {
	// Eng is the shared event engine all hosts run on.
	Eng *sim.Engine

	hosts    []*host.Host
	byName   map[string]*host.Host
	addrs    map[string]netstack.Addr
	ports    map[string][]*Port
	switches []*Switch
	routers  []*Router
}

// New creates an empty topology on eng.
func New(eng *sim.Engine) *Topology {
	return &Topology{
		Eng:    eng,
		byName: make(map[string]*host.Host),
		addrs:  make(map[string]netstack.Addr),
		ports:  make(map[string][]*Port),
	}
}

// AddHost builds a named host on the shared engine and assigns it the next
// address (1-based, in add order — deterministic for a fixed assembly
// sequence). Duplicate or empty names panic: addresses and metrics
// namespaces key on them.
func (t *Topology) AddHost(cfg host.Config) *host.Host {
	if cfg.Name == "" {
		panic("topology: host needs a name")
	}
	if _, dup := t.byName[cfg.Name]; dup {
		panic(fmt.Sprintf("topology: duplicate host %q", cfg.Name))
	}
	h := host.New(t.Eng, cfg)
	t.hosts = append(t.hosts, h)
	t.byName[cfg.Name] = h
	t.addrs[cfg.Name] = netstack.Addr(len(t.hosts))
	return h
}

// Host returns the named host, or nil.
func (t *Topology) Host(name string) *host.Host { return t.byName[name] }

// Hosts returns every host in add order.
func (t *Topology) Hosts() []*host.Host { return t.hosts }

// Addr returns the named host's address (0 if unknown).
func (t *Topology) Addr(name string) netstack.Addr { return t.addrs[name] }

// Port is one host interface plus its duplex wiring: Down carries the
// host's transmissions toward the peer, Up delivers the peer's packets into
// the NIC.
type Port struct {
	NIC  *nic.NIC
	Down *netstack.Link
	Up   *netstack.Link
}

// Ports returns a host's ports in attach order.
func (t *Topology) Ports(h *host.Host) []*Port { return t.ports[h.Name] }

// WireSpec describes one duplex attachment: link rate and one-way delay,
// the two link names (they key fault channels link.<name> and metric
// prefixes), and optionally a fault plan and registry overriding the
// host's own.
type WireSpec struct {
	Bps   int64
	Delay sim.Time
	// DownName/UpName name the transmit/receive links. Empty names default
	// to <host>.<nic>.down / .up.
	DownName, UpName string
	// Faults overrides the host's plan for both links (nil: host plan).
	Faults *faults.Plan
	// Registry overrides where link counters register (nil: host registry).
	Registry *metrics.Registry
}

// AttachNIC wires a new interface on h to peer with a duplex link pair, in
// the exact order the single-server testbed always used (down link, NIC,
// up link — construction order is part of the determinism contract).
func (t *Topology) AttachNIC(h *host.Host, nicCfg nic.Config, peer netstack.Endpoint, w WireSpec) *Port {
	if w.Bps == 0 {
		w.Bps = 100_000_000
	}
	if w.Delay == 0 {
		w.Delay = 30 * sim.Microsecond
	}
	if w.DownName == "" {
		w.DownName = h.Name + "." + nicCfg.Name + ".down"
	}
	if w.UpName == "" {
		w.UpName = h.Name + "." + nicCfg.Name + ".up"
	}
	plan := w.Faults
	if plan == nil {
		plan = h.Faults()
	}
	reg := w.Registry
	if reg == nil {
		reg = h.Metrics()
	}
	down := netstack.NewLink(t.Eng, w.DownName, w.Bps, w.Delay, peer)
	down.Faults = plan.Link("link." + w.DownName)
	down.RegisterMetrics(reg)
	if nicCfg.Faults == nil {
		nicCfg.Faults = plan.Link("nic." + nicCfg.Name + ".rx")
	}
	n := h.AddNIC(nicCfg, down)
	up := netstack.NewLink(t.Eng, w.UpName, w.Bps, w.Delay, n)
	up.Faults = plan.Link("link." + w.UpName)
	up.RegisterMetrics(reg)
	p := &Port{NIC: n, Down: down, Up: up}
	t.ports[h.Name] = append(t.ports[h.Name], p)
	return p
}

// AddSwitch creates a named switch on the topology.
func (t *Topology) AddSwitch(name string) *Switch {
	sw := NewSwitch(name)
	t.switches = append(t.switches, sw)
	return sw
}

// Join connects a host to a switch: a duplex link pair plus a forwarding
// entry so packets addressed to the host are switched onto its receive
// link. Link names default to <switch>.<host>.up/.down.
func (t *Topology) Join(sw *Switch, h *host.Host, nicCfg nic.Config, w WireSpec) *Port {
	if w.DownName == "" {
		w.DownName = sw.Name + "." + h.Name + ".up" // host → switch (uplink)
	}
	if w.UpName == "" {
		w.UpName = sw.Name + "." + h.Name + ".down" // switch → host
	}
	p := t.AttachNIC(h, nicCfg, sw, w)
	sw.Connect(t.addrs[h.Name], p.Up)
	return p
}

// Start spins up every host in add order. Call after assembly, before
// running the engine.
func (t *Topology) Start() {
	for _, h := range t.hosts {
		h.Start()
	}
}

// Snapshot captures every host's telemetry under a host.<name>. prefix and
// every switch's and router's counters, merged into one deterministic
// snapshot — the per-host metrics namespace for multi-node experiments.
func (t *Topology) Snapshot() *metrics.Snapshot {
	out := metrics.NewSnapshot()
	for _, h := range t.hosts {
		out.Merge(h.Snapshot().Prefixed("host." + h.Name + "."))
	}
	for _, sw := range t.switches {
		out.Counters["switch."+sw.Name+".forwarded"] = sw.Forwarded
		out.Counters["switch."+sw.Name+".misses"] = sw.Misses
	}
	for _, r := range t.routers {
		out.Counters["router."+r.H.Name+".forwarded"] = r.Forwarded
		out.Counters["router."+r.H.Name+".misses"] = r.Misses
	}
	return out
}
