// Package topology assembles multi-node networks of simulated hosts on one
// shared deterministic event engine: named hosts (package host), duplex
// links with finite bandwidth and delay, switches forwarding by destination
// address, and the paper's Section 5.8 "WAN emulator" intermediate as just
// another host that routes between its interfaces.
//
// The paper's testbed is inherently multi-machine — server, client fleet,
// and the WAN-emulator router are all full FreeBSD hosts — so soft-timer
// behaviour is measurable on both ends of a flow: every host has its own
// kernel, trigger states, soft-timer facility, fault plan, and telemetry
// namespace, while all of them share a single sim.Engine and therefore a
// single replayable event order.
//
// Assembly comes in two forms: the imperative primitives here (AddHost,
// AttachNIC, Join) used where exact wiring order matters, and the
// declarative Spec/Build layer in spec.go for N-node topologies
// (server + K client hosts + optional intermediate).
package topology

import (
	"fmt"
	"io"

	"softtimers/internal/faults"
	"softtimers/internal/flowtrace"
	"softtimers/internal/host"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// Topology is one multi-node network on a shared engine, or — under
// sharded execution — on a sim.ShardGroup with one engine per shard and
// hosts distributed across them.
type Topology struct {
	// Eng is the shared event engine all hosts run on. In a sharded
	// topology it is shard 0's engine (seeded identically to the legacy
	// shared engine, so shard-0 construction-time RNG draws replay).
	Eng *sim.Engine

	// Assign maps (host add-index, name) to a shard; consulted only in
	// sharded topologies, before the first AddHost. Nil defaults to
	// round-robin. The assignment is a performance knob, not a semantic
	// one: results are identical for any placement.
	Assign func(i int, name string) int

	group     *sim.ShardGroup
	seed      uint64
	shardOf   []int // per host, in add (address) order
	conduits  int32 // arrival-band conduit ids, allocated in join order
	finalized bool
	arenas    []*netstack.Arena // one packet pool per shard (slot 0 single-engine)

	hosts    []*host.Host
	byName   map[string]*host.Host
	addrs    map[string]netstack.Addr
	ports    map[string][]*Port
	switches []*Switch
	routers  []*Router
	fabrics  []*Fabric
	tracers  []*trace.Buffer // per host, when tracing is enabled

	flow      *FlowTrace   // flow-span tracing, when enabled
	series    []*seriesRec // per-host series, when enabled
	seriesIvl sim.Time

	// clock is the wall-slaved driver installed by Build when
	// Spec.Clock == ClockRealTime; nil in sim mode.
	clock *sim.RealTimeClock
}

// New creates an empty topology on eng.
func New(eng *sim.Engine) *Topology {
	return &Topology{
		Eng:    eng,
		byName: make(map[string]*host.Host),
		addrs:  make(map[string]netstack.Addr),
		ports:  make(map[string][]*Port),
	}
}

// NewSharded creates an empty topology running on g's engines under
// conservative time sync. seed must be the seed the equivalent legacy
// topology would use — it derives per-host RNG streams, which is what
// keeps sharded and single-engine runs byte-identical.
func NewSharded(g *sim.ShardGroup, seed uint64) *Topology {
	t := New(g.Engine(0))
	t.group = g
	t.seed = seed
	return t
}

// SetSeed sets the seed per-host RNG streams derive from. Build and
// NewSharded set it; imperative single-engine assemblies that need
// sharded-run equivalence must set the same value on both variants.
func (t *Topology) SetSeed(seed uint64) { t.seed = seed }

// Group returns the shard group, or nil for single-engine topologies.
func (t *Topology) Group() *sim.ShardGroup { return t.group }

// RealClock returns the wall-slaved clock driver installed by
// Build(Spec{Clock: ClockRealTime}), or nil in sim mode. Emulation rigs use
// it to inject socket work into the engine and to read lag accounting.
func (t *Topology) RealClock() *sim.RealTimeClock { return t.clock }

// Clock reports which clock driver the topology runs under.
func (t *Topology) Clock() sim.ClockKind {
	if t.clock == nil {
		return sim.ClockSim
	}
	return sim.ClockRealTime
}

// Arena returns the packet pool for a shard (use 0 on single-engine
// topologies). Every host, link and switch assembled on that shard's
// engine shares it, so the steady-state packet path allocates nothing.
func (t *Topology) Arena(shard int) *netstack.Arena {
	if t.arenas == nil {
		n := 1
		if t.group != nil {
			n = t.group.N()
		}
		t.arenas = make([]*netstack.Arena, n)
		for i := range t.arenas {
			t.arenas[i] = netstack.NewArena()
		}
	}
	return t.arenas[shard]
}

// HostShard returns the shard the named host runs on (0 in single-engine
// topologies).
func (t *Topology) HostShard(name string) int {
	if t.group == nil {
		return 0
	}
	a := t.addrs[name]
	if a == 0 {
		return 0
	}
	return t.shardOf[int(a)-1]
}

// AddHost builds a named host on the shared engine and assigns it the next
// address (1-based, in add order — deterministic for a fixed assembly
// sequence). Duplicate or empty names panic: addresses and metrics
// namespaces key on them.
func (t *Topology) AddHost(cfg host.Config) *host.Host {
	if cfg.Name == "" {
		panic("topology: host needs a name")
	}
	if _, dup := t.byName[cfg.Name]; dup {
		panic(fmt.Sprintf("topology: duplicate host %q", cfg.Name))
	}
	eng := t.Eng
	shard := 0
	if t.group != nil {
		if t.Assign != nil {
			shard = t.Assign(len(t.hosts), cfg.Name)
		} else {
			shard = len(t.hosts) % t.group.N()
		}
		if shard < 0 || shard >= t.group.N() {
			panic(fmt.Sprintf("topology: host %q assigned to shard %d of %d", cfg.Name, shard, t.group.N()))
		}
		eng = t.group.Engine(shard)
	}
	if cfg.Seed == 0 {
		// Per-host RNG streams derive from (topology seed, name) — never
		// from an engine's stream — so they are identical whether the host
		// shares one engine with the fleet or owns a shard.
		cfg.Seed = t.seed
	}
	h := host.New(eng, cfg)
	h.SetArena(t.Arena(shard))
	t.hosts = append(t.hosts, h)
	t.shardOf = append(t.shardOf, shard)
	t.byName[cfg.Name] = h
	t.addrs[cfg.Name] = netstack.Addr(len(t.hosts))
	return h
}

// Host returns the named host, or nil.
func (t *Topology) Host(name string) *host.Host { return t.byName[name] }

// Hosts returns every host in add order.
func (t *Topology) Hosts() []*host.Host { return t.hosts }

// Addr returns the named host's address (0 if unknown).
func (t *Topology) Addr(name string) netstack.Addr { return t.addrs[name] }

// Port is one host interface plus its duplex wiring: Down carries the
// host's transmissions toward the peer, Up delivers the peer's packets into
// the NIC.
type Port struct {
	NIC  *nic.NIC
	Down *netstack.Link
	Up   *netstack.Link
}

// Ports returns a host's ports in attach order.
func (t *Topology) Ports(h *host.Host) []*Port { return t.ports[h.Name] }

// WireSpec describes one duplex attachment: link rate and one-way delay,
// the two link names (they key fault channels link.<name> and metric
// prefixes), and optionally a fault plan and registry overriding the
// host's own.
type WireSpec struct {
	Bps   int64
	Delay sim.Time
	// DownName/UpName name the transmit/receive links. Empty names default
	// to <host>.<nic>.down / .up.
	DownName, UpName string
	// Faults overrides the host's plan for both links (nil: host plan).
	Faults *faults.Plan
	// Registry overrides where link counters register (nil: host registry).
	Registry *metrics.Registry
}

// AttachNIC wires a new interface on h to peer with a duplex link pair, in
// the exact order the single-server testbed always used (down link, NIC,
// up link — construction order is part of the determinism contract).
func (t *Topology) AttachNIC(h *host.Host, nicCfg nic.Config, peer netstack.Endpoint, w WireSpec) *Port {
	if w.Bps == 0 {
		w.Bps = 100_000_000
	}
	if w.Delay == 0 {
		w.Delay = 30 * sim.Microsecond
	}
	if w.DownName == "" {
		w.DownName = h.Name + "." + nicCfg.Name + ".down"
	}
	if w.UpName == "" {
		w.UpName = h.Name + "." + nicCfg.Name + ".up"
	}
	plan := w.Faults
	if plan == nil {
		plan = h.Faults()
	}
	reg := w.Registry
	if reg == nil {
		reg = h.Metrics()
	}
	// Links live on the owning host's engine: identical to t.Eng on a
	// single-engine topology, the host's shard engine otherwise.
	eng := h.Engine()
	down := netstack.NewLink(eng, w.DownName, w.Bps, w.Delay, peer)
	down.Faults = plan.Link("link." + w.DownName)
	down.SetArena(h.Arena())
	down.RegisterMetrics(reg)
	if nicCfg.Faults == nil {
		nicCfg.Faults = plan.Link("nic." + nicCfg.Name + ".rx")
	}
	n := h.AddNIC(nicCfg, down)
	up := netstack.NewLink(eng, w.UpName, w.Bps, w.Delay, n)
	up.Faults = plan.Link("link." + w.UpName)
	up.SetArena(h.Arena())
	up.RegisterMetrics(reg)
	p := &Port{NIC: n, Down: down, Up: up}
	t.ports[h.Name] = append(t.ports[h.Name], p)
	return p
}

// AddSwitch creates a named switch on the topology.
func (t *Topology) AddSwitch(name string) *Switch {
	sw := NewSwitch(name)
	if t.group != nil {
		sw.setShards(t.group.N())
	}
	t.Arena(0) // ensure the per-shard pools exist
	sw.arenas = t.arenas
	t.switches = append(t.switches, sw)
	return sw
}

// Join connects a host to a switch: a duplex link pair plus a forwarding
// entry so packets addressed to the host are switched onto its receive
// link. Link names default to <switch>.<host>.up/.down.
func (t *Topology) Join(sw *Switch, h *host.Host, nicCfg nic.Config, w WireSpec) *Port {
	if w.DownName == "" {
		w.DownName = sw.Name + "." + h.Name + ".up" // host → switch (uplink)
	}
	if w.UpName == "" {
		w.UpName = sw.Name + "." + h.Name + ".down" // switch → host
	}
	var peer netstack.Endpoint = sw
	shard := t.HostShard(h.Name)
	if t.group != nil {
		// Same-shard forwards stay on the local path but must count in
		// this shard's slot.
		peer = shardView{sw: sw, shard: shard}
	}
	p := t.AttachNIC(h, nicCfg, peer, w)
	sw.Connect(t.addrs[h.Name], p.Up)
	// The switch hop rides the engine's arrival band: conduit ids are
	// allocated here, in join order — an assembly-order invariant — so
	// same-instant arrivals at a port sort the same way at any shard
	// count, single-engine topologies included.
	t.conduits++
	p.Down.ArrivalConduit = t.conduits
	if t.group != nil {
		// Cross-shard arrivals leave through this courier, keeping the
		// conduit key they would have carried locally.
		sw.bind(t.addrs[h.Name], shard)
		p.Down.Courier = &courier{
			sw:  sw,
			src: shard,
			con: t.group.NewConduit(shard, t.conduits),
		}
		sw.members = append(sw.members, switchMember{shard: shard, delay: p.Down.Delay()})
	}
	return p
}

// courier ships a down link's cross-shard deliveries: route lookup at
// transmit time, execution (count + forward onto the destination host's
// receive link) on the destination shard at the arrival instant. The
// link's propagation delay is the shipping lookahead.
type courier struct {
	sw  *Switch
	src int
	con *sim.Conduit
	// loc is the shipping down link's flowtrace location id, so the
	// cross-shard path records the same LinkRx + SwitchFwd hop pair the
	// local delivery path would (the closure bypasses delivery.run and
	// Switch.deliverOn).
	loc int32
}

// Ship implements netstack.Courier.
func (c *courier) Ship(p *netstack.Packet, at sim.Time, conduit int32, seq uint64) bool {
	port, ok := c.sw.table[p.Dst]
	if !ok {
		return false // miss: counted on the local path, like legacy
	}
	dst := c.sw.shardOf[p.Dst]
	if dst == c.src {
		return false
	}
	sw := c.sw
	loc := c.loc
	c.con.Send(dst, at, seq, func() {
		p.Trace.Hop(flowtrace.HopLinkRx, loc, at)
		p.Trace.HopHere(flowtrace.HopSwitch, sw.TraceLoc)
		sw.fwd[dst]++
		port.Deliver(p)
	})
	return true
}

// finalize derives the group's lookahead matrix from the assembled
// wiring: for every switch, a member can reach any co-member on another
// shard no earlier than its own down-link propagation delay past its
// clock, so that delay bounds the channel. Called once from Start.
func (t *Topology) finalize() {
	if t.group == nil || t.finalized {
		return
	}
	t.finalized = true
	for _, sw := range t.switches {
		for _, m := range sw.members {
			for _, m2 := range sw.members {
				if m.shard != m2.shard {
					t.group.SetLookahead(m.shard, m2.shard, m.delay)
				}
			}
		}
	}
}

// Start spins up every host in add order. Call after assembly, before
// running the engine. On a sharded topology it also freezes the wiring
// into the group's lookahead matrix.
func (t *Topology) Start() {
	t.finalize()
	for _, h := range t.hosts {
		h.Start()
	}
	t.startSeries()
}

// RunFor advances the whole topology by d: the shard group under
// conservative sync when sharded, the shared engine otherwise.
func (t *Topology) RunFor(d sim.Time) {
	if t.group != nil {
		t.group.RunFor(d)
		return
	}
	t.Eng.RunFor(d)
}

// Now returns the topology's clock.
func (t *Topology) Now() sim.Time {
	if t.group != nil {
		return t.group.Now()
	}
	return t.Eng.Now()
}

// Fired returns total events fired across the topology's engines — the
// same mode-invariant sum Snapshot reports as sim.events_fired.
func (t *Topology) Fired() uint64 {
	if t.group != nil {
		return t.group.TotalFired()
	}
	return t.Eng.Fired
}

// EnableTracing attaches an execution trace buffer of the given capacity
// to every host, in add order. Call before Start.
func (t *Topology) EnableTracing(capacity int) {
	if t.tracers != nil {
		return
	}
	for _, h := range t.hosts {
		tb := trace.New(capacity)
		tb.Enable(true)
		h.K.SetTracer(tb)
		t.tracers = append(t.tracers, tb)
	}
}

// Tracer returns host i's trace buffer (nil unless EnableTracing ran).
func (t *Topology) Tracer(i int) *trace.Buffer {
	if t.tracers == nil {
		return nil
	}
	return t.tracers[i]
}

// WriteChrome merges every host's trace into one Chrome trace-event file:
// one process per host, pid = host address, in add order. Host-local
// event order is identical under legacy and sharded execution, so the
// merged trace is too.
func (t *Topology) WriteChrome(w io.Writer) error {
	if t.tracers == nil {
		return fmt.Errorf("topology: tracing not enabled")
	}
	procs := make([]trace.Proc, len(t.hosts))
	for i, h := range t.hosts {
		procs[i] = trace.Proc{Name: "host." + h.Name, PID: i + 1, Buf: t.tracers[i]}
	}
	var flows []trace.FlowEvent
	if t.flow != nil {
		// Overlay traced packet journeys as flow arrows between host rows.
		flows = t.flow.FlowEvents()
	}
	return trace.WriteChromeProcsFlows(w, procs, flows)
}

// Snapshot captures every host's telemetry under a host.<name>. prefix and
// every switch's and router's counters, merged into one deterministic
// snapshot — the per-host metrics namespace for multi-node experiments.
//
// Per-host sim.* instruments are dropped and replaced with topology-level
// totals: the per-host versions read whichever engine the host runs on
// (the whole fleet's on the legacy shared engine, one shard's otherwise),
// so they describe the execution substrate, not the host. The totals are
// mode-independent — every legacy engine event maps to exactly one shard
// event (a cross-shard delivery is one arrival-band event on the
// destination engine, as it would be on the single engine), so summed
// fired/pending counts match byte-for-byte. The heap depth high-water
// mark has no mode-independent meaning and is omitted.
func (t *Topology) Snapshot() *metrics.Snapshot {
	out := metrics.NewSnapshot()
	for _, h := range t.hosts {
		hs := h.Snapshot()
		hs.DropPrefix("sim.")
		out.Merge(hs.Prefixed("host." + h.Name + "."))
	}
	if t.group != nil {
		out.Counters["sim.events_fired"] = int64(t.group.TotalFired())
		p := int64(t.group.TotalPending())
		out.Gauges["sim.events_pending"] = metrics.GaugeSnapshot{Value: p, Max: p}
	} else {
		out.Counters["sim.events_fired"] = int64(t.Eng.Fired)
		p := int64(t.Eng.Pending())
		out.Gauges["sim.events_pending"] = metrics.GaugeSnapshot{Value: p, Max: p}
	}
	for _, sw := range t.switches {
		out.Counters["switch."+sw.Name+".forwarded"] = sw.Forwarded()
		out.Counters["switch."+sw.Name+".misses"] = sw.Misses()
	}
	for _, r := range t.routers {
		out.Counters["router."+r.H.Name+".forwarded"] = r.Forwarded
		out.Counters["router."+r.H.Name+".misses"] = r.Misses
	}
	for _, f := range t.fabrics {
		for j := range f.Up {
			out.Counters["link."+f.Up[j].Name+".sent"] = f.Up[j].Sent
			out.Counters["link."+f.Up[j].Name+".bytes"] = f.Up[j].Bytes
			out.Counters["link."+f.Down[j].Name+".sent"] = f.Down[j].Sent
			out.Counters["link."+f.Down[j].Name+".bytes"] = f.Down[j].Bytes
		}
	}
	if t.flow != nil {
		// Shard-summed, so mode-invariant like the rest of the snapshot.
		out.Counters["flowtrace.spans_started"] = t.flow.Started()
		out.Counters["flowtrace.spans_finished"] = t.flow.Finished()
		out.Counters["flowtrace.hops"] = t.flow.HopCount()
		out.Counters["flowtrace.dropped_hops"] = t.flow.DroppedHops()
		out.Counters["flowtrace.sampled_flows"] = t.flow.SampledFlows()
	}
	return out
}

// SyncSnapshot exports the shard group's conservative-sync telemetry
// (sim.SyncStats) as sync.* instruments: round and message totals, the
// grant-width/mined-gain/round-width histograms, per-shard utilization
// counters, and which inbound channel bound each shard's grants. It is
// deliberately a separate snapshot from Snapshot(): workload telemetry is
// byte-identical across shard counts by contract, while sync telemetry
// describes the execution substrate and exists only when sharded — it is
// still a pure function of virtual state, so for a fixed shard count it
// is identical at any worker count. Returns nil on single-engine
// topologies.
func (t *Topology) SyncSnapshot() *metrics.Snapshot {
	if t.group == nil {
		return nil
	}
	st := t.group.SyncStats()
	reg := metrics.NewRegistry()
	reg.CounterFunc("sync.rounds", func() int64 { return st.Rounds })
	reg.CounterFunc("sync.messages", func() int64 { return st.Messages })
	reg.CounterFunc("sync.active_shard_rounds", func() int64 { return st.ActiveShardRounds })
	if t.group.MiningEnabled() {
		reg.CounterFunc("sync.mining", func() int64 { return 1 })
	}
	reg.Adopt("sync.grant_width_us", st.GrantWidthUS)
	reg.Adopt("sync.mined_gain_us", st.MinedGainUS)
	reg.Adopt("sync.round_width", st.RoundWidth)
	for i := range st.Shards {
		ss := &st.Shards[i]
		p := fmt.Sprintf("sync.shard%02d.", i)
		reg.CounterFunc(p+"rounds", func() int64 { return ss.Rounds })
		reg.CounterFunc(p+"granted_ns", func() int64 { return ss.GrantedNS })
		reg.CounterFunc(p+"reached_ns", func() int64 { return ss.ReachedNS })
		reg.CounterFunc(p+"mined_gain_ns", func() int64 { return ss.MinedGainNS })
		reg.CounterFunc(p+"idle_rounds", func() int64 { return ss.IdleRounds })
		reg.CounterFunc(p+"horizon_bound", func() int64 { return ss.HorizonBound })
	}
	for src := range st.Binding {
		for dst, count := range st.Binding[src] {
			if count == 0 {
				continue // only channels that ever bound a grant get a key
			}
			c := count
			reg.CounterFunc(fmt.Sprintf("sync.binding.s%02d_to_s%02d", src, dst), func() int64 { return c })
		}
	}
	return reg.Snapshot()
}
