package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"softtimers/internal/sim"
)

// chromeEvent is one record in the Chrome trace-event ("Trace Event
// Format") JSON consumed by chrome://tracing and Perfetto. Field order is
// fixed by the struct so output is byte-deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	// Flow-event fields (ph "s"/"f"): binding id, category, and binding
	// point. Tagged omitempty and placed last so traces without flow events
	// keep their historical bytes.
	ID  string `json:"id,omitempty"`
	Cat string `json:"cat,omitempty"`
	BP  string `json:"bp,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout: the CPU's execution timeline (context switches and idle
// periods, rendered as duration slices) lives on tid 0; every other event
// kind gets its own instant-event track at tid 1+kind.
const cpuTID = 0

func instantTID(k Kind) int { return 1 + int(k) }

// WriteChrome writes the retained events as Chrome trace-event JSON, which
// chrome://tracing, Perfetto and speedscope can load directly.
//
// Sched, IdleEnter and IdleExit become begin/end duration slices on a
// single "cpu" track — each context switch ends the previous slice and
// opens one named for the scheduled process, and idle periods appear as
// "idle" slices. All other kinds (interrupts, softirqs, trigger states,
// soft-timer fires, custom events) become thread-scoped instant events on
// per-kind tracks, carrying the event's Arg. Timestamps are microseconds,
// per the format.
func (b *Buffer) WriteChrome(w io.Writer) error {
	return WriteChromeProcs(w, []Proc{{Name: "softtimers", PID: 1, Buf: b}})
}

// Proc names one buffer's track group in a multi-process Chrome trace:
// each buffer becomes its own process row (a host in a topology trace),
// with the usual cpu/instant-track layout inside it.
type Proc struct {
	Name string
	PID  int
	Buf  *Buffer
}

// WriteChromeProcs writes several buffers into one Chrome trace, one
// process row per Proc, in slice order. A single Proc named "softtimers"
// with PID 1 produces byte-identical output to Buffer.WriteChrome.
func WriteChromeProcs(w io.Writer, procs []Proc) error {
	return WriteChromeProcsFlows(w, procs, nil)
}

// FlowEvent is one packet-flow arrow overlaid on a multi-process trace: a
// "s" (flow start) event anchored at (StartPID, StartTS) bound by id to an
// "f" (flow finish) event at (EndPID, EndTS). Viewers draw it as an arrow
// across process rows — here, a traced packet's journey between hosts.
type FlowEvent struct {
	Name     string
	ID       uint64
	Cat      string
	StartTS  float64 // microseconds
	EndTS    float64
	StartPID int
	EndPID   int
}

// WriteChromeProcsFlows writes procs exactly as WriteChromeProcs and then
// appends flow start/finish event pairs in slice order. With nil flows the
// output is byte-identical to WriteChromeProcs.
func WriteChromeProcsFlows(w io.Writer, procs []Proc, flows []FlowEvent) error {
	var out []chromeEvent
	for _, p := range procs {
		out = append(out, chromeProcEvents(p)...)
	}
	for _, f := range flows {
		id := "0x" + strconv.FormatUint(f.ID, 16)
		out = append(out,
			chromeEvent{
				Name: f.Name, Phase: "s", TS: f.StartTS,
				PID: f.StartPID, TID: cpuTID, ID: id, Cat: f.Cat,
			},
			chromeEvent{
				Name: f.Name, Phase: "f", TS: f.EndTS,
				PID: f.EndPID, TID: cpuTID, ID: id, Cat: f.Cat, BP: "e",
			},
		)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// chromeProcEvents renders one buffer as a metadata block (process name,
// thread names in tid order, so viewers label tracks before any event
// references them) followed by its events.
func chromeProcEvents(p Proc) []chromeEvent {
	evs := p.Buf.Events()
	pid := p.PID

	var body []chromeEvent
	threadNames := map[int]string{cpuTID: "cpu"}
	sliceOpen := false
	endSlice := func(ts float64) {
		if sliceOpen {
			body = append(body, chromeEvent{Name: "", Phase: "E", TS: ts, PID: pid, TID: cpuTID})
			sliceOpen = false
		}
	}
	beginSlice := func(name string, ts float64) {
		body = append(body, chromeEvent{Name: name, Phase: "B", TS: ts, PID: pid, TID: cpuTID})
		sliceOpen = true
	}

	var lastTS float64
	for _, e := range evs {
		ts := float64(e.At) / float64(sim.Microsecond)
		lastTS = ts
		switch e.Kind {
		case Sched:
			endSlice(ts)
			name := e.Label
			if name == "" {
				name = "run"
			}
			beginSlice(name, ts)
		case IdleEnter:
			endSlice(ts)
			beginSlice("idle", ts)
		case IdleExit:
			endSlice(ts)
		default:
			tid := instantTID(e.Kind)
			threadNames[tid] = e.Kind.String()
			name := e.Label
			if name == "" {
				name = e.Kind.String()
			}
			body = append(body, chromeEvent{
				Name: name, Phase: "i", TS: ts, PID: pid, TID: tid,
				Scope: "t", Args: map[string]any{"arg": e.Arg},
			})
		}
	}
	endSlice(lastTS)

	out := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: pid, TID: cpuTID,
		Args: map[string]any{"name": p.Name},
	}}
	tids := make([]int, 0, len(threadNames))
	for tid := range threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": threadNames[tid]},
		})
	}
	return append(out, body...)
}
