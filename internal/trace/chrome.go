package trace

import (
	"encoding/json"
	"io"
	"sort"

	"softtimers/internal/sim"
)

// chromeEvent is one record in the Chrome trace-event ("Trace Event
// Format") JSON consumed by chrome://tracing and Perfetto. Field order is
// fixed by the struct so output is byte-deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout: the CPU's execution timeline (context switches and idle
// periods, rendered as duration slices) lives on tid 0; every other event
// kind gets its own instant-event track at tid 1+kind.
const cpuTID = 0

func instantTID(k Kind) int { return 1 + int(k) }

// WriteChrome writes the retained events as Chrome trace-event JSON, which
// chrome://tracing, Perfetto and speedscope can load directly.
//
// Sched, IdleEnter and IdleExit become begin/end duration slices on a
// single "cpu" track — each context switch ends the previous slice and
// opens one named for the scheduled process, and idle periods appear as
// "idle" slices. All other kinds (interrupts, softirqs, trigger states,
// soft-timer fires, custom events) become thread-scoped instant events on
// per-kind tracks, carrying the event's Arg. Timestamps are microseconds,
// per the format.
func (b *Buffer) WriteChrome(w io.Writer) error {
	evs := b.Events()

	var body []chromeEvent
	threadNames := map[int]string{cpuTID: "cpu"}
	sliceOpen := false
	endSlice := func(ts float64) {
		if sliceOpen {
			body = append(body, chromeEvent{Name: "", Phase: "E", TS: ts, PID: 1, TID: cpuTID})
			sliceOpen = false
		}
	}
	beginSlice := func(name string, ts float64) {
		body = append(body, chromeEvent{Name: name, Phase: "B", TS: ts, PID: 1, TID: cpuTID})
		sliceOpen = true
	}

	var lastTS float64
	for _, e := range evs {
		ts := float64(e.At) / float64(sim.Microsecond)
		lastTS = ts
		switch e.Kind {
		case Sched:
			endSlice(ts)
			name := e.Label
			if name == "" {
				name = "run"
			}
			beginSlice(name, ts)
		case IdleEnter:
			endSlice(ts)
			beginSlice("idle", ts)
		case IdleExit:
			endSlice(ts)
		default:
			tid := instantTID(e.Kind)
			threadNames[tid] = e.Kind.String()
			name := e.Label
			if name == "" {
				name = e.Kind.String()
			}
			body = append(body, chromeEvent{
				Name: name, Phase: "i", TS: ts, PID: 1, TID: tid,
				Scope: "t", Args: map[string]any{"arg": e.Arg},
			})
		}
	}
	endSlice(lastTS)

	// Metadata first: process name, then thread names in tid order, so
	// viewers label tracks before any event references them.
	out := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: 1, TID: cpuTID,
		Args: map[string]any{"name": "softtimers"},
	}}
	tids := make([]int, 0, len(threadNames))
	for tid := range threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": threadNames[tid]},
		})
	}
	out = append(out, body...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
