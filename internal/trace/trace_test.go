package trace

import (
	"strings"
	"testing"

	"softtimers/internal/sim"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	New(0)
}

func TestAddAndEvents(t *testing.T) {
	b := New(8)
	for i := 0; i < 5; i++ {
		b.Add(sim.Time(i)*sim.Microsecond, Sched, "p", int64(i))
	}
	if b.Len() != 5 || b.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	evs := b.Events()
	for i, e := range evs {
		if e.Arg != int64(i) {
			t.Fatalf("order wrong: %v", evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(sim.Time(i), Intr, "x", int64(i))
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
	evs := b.Events()
	if evs[0].Arg != 6 || evs[3].Arg != 9 {
		t.Fatalf("retained wrong window: %v", evs)
	}
}

func TestDisableStopsRecording(t *testing.T) {
	b := New(4)
	b.Add(1, Sched, "a", 0)
	b.Enable(false)
	if b.Enabled() {
		t.Fatal("Enabled() after disable")
	}
	b.Add(2, Sched, "b", 0)
	if b.Len() != 1 {
		t.Fatalf("len = %d after disabled Add", b.Len())
	}
}

func TestFilterAndSummary(t *testing.T) {
	b := New(16)
	b.Add(1, Sched, "p1", 0)
	b.Add(2, Intr, "disk", 0)
	b.Add(3, Sched, "p2", 0)
	b.Add(4, TriggerState, "syscalls", 0)
	if got := len(b.Filter(Sched)); got != 2 {
		t.Fatalf("Filter(Sched) = %d", got)
	}
	sum := b.Summary()
	for _, want := range []string{"sched=2", "intr=1", "trigger=1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

func TestDump(t *testing.T) {
	b := New(2)
	b.Add(1, Custom, "one", 1)
	b.Add(2, Custom, "two", 2)
	b.Add(3, Custom, "three", 3) // evicts "one"
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "one") || !strings.Contains(out, "three") {
		t.Fatalf("dump window wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dump missing drop note:\n%s", out)
	}
}

func TestKindString(t *testing.T) {
	if Sched.String() != "sched" || TriggerState.String() != "trigger" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("out-of-range kind")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12500, Kind: Intr, Label: "disk", Arg: 7}
	s := e.String()
	if !strings.Contains(s, "intr") || !strings.Contains(s, "disk") || !strings.Contains(s, "(7)") {
		t.Fatalf("event string: %q", s)
	}
}
