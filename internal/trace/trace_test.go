package trace

import (
	"strings"
	"testing"

	"softtimers/internal/sim"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	New(0)
}

func TestAddAndEvents(t *testing.T) {
	b := New(8)
	for i := 0; i < 5; i++ {
		b.Add(sim.Time(i)*sim.Microsecond, Sched, "p", int64(i))
	}
	if b.Len() != 5 || b.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	evs := b.Events()
	for i, e := range evs {
		if e.Arg != int64(i) {
			t.Fatalf("order wrong: %v", evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(sim.Time(i), Intr, "x", int64(i))
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
	evs := b.Events()
	if evs[0].Arg != 6 || evs[3].Arg != 9 {
		t.Fatalf("retained wrong window: %v", evs)
	}
}

func TestDisableStopsRecording(t *testing.T) {
	b := New(4)
	b.Add(1, Sched, "a", 0)
	b.Enable(false)
	if b.Enabled() {
		t.Fatal("Enabled() after disable")
	}
	b.Add(2, Sched, "b", 0)
	if b.Len() != 1 {
		t.Fatalf("len = %d after disabled Add", b.Len())
	}
}

func TestFilterAndSummary(t *testing.T) {
	b := New(16)
	b.Add(1, Sched, "p1", 0)
	b.Add(2, Intr, "disk", 0)
	b.Add(3, Sched, "p2", 0)
	b.Add(4, TriggerState, "syscalls", 0)
	if got := len(b.Filter(Sched)); got != 2 {
		t.Fatalf("Filter(Sched) = %d", got)
	}
	sum := b.Summary()
	for _, want := range []string{"sched=2", "intr=1", "trigger=1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

func TestDump(t *testing.T) {
	b := New(2)
	b.Add(1, Custom, "one", 1)
	b.Add(2, Custom, "two", 2)
	b.Add(3, Custom, "three", 3) // evicts "one"
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "one") || !strings.Contains(out, "three") {
		t.Fatalf("dump window wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Fatalf("dump missing drop note:\n%s", out)
	}
}

func TestKindString(t *testing.T) {
	if Sched.String() != "sched" || TriggerState.String() != "trigger" {
		t.Fatal("kind names wrong")
	}
	if got := (Custom + 2).String(); got != "custom+2" {
		t.Fatalf("application kind = %q, want custom+2", got)
	}
	if got := Kind(99).String(); got != "custom+92" {
		t.Fatalf("Kind(99) = %q, want custom+92", got)
	}
	if got := Kind(-3).String(); got != "kind(-3)" {
		t.Fatalf("negative kind = %q", got)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	kinds := []Kind{Sched, Intr, SoftIRQ, TriggerState, SoftFire,
		IdleEnter, IdleExit, Custom, Custom + 1, Custom + 17}
	for _, k := range kinds {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Error("ParseKind accepted garbage")
	}
	if _, ok := ParseKind("custom+0"); ok {
		t.Error(`ParseKind accepted "custom+0" (Custom itself renders as "custom")`)
	}
}

func TestSummaryIncludesApplicationKinds(t *testing.T) {
	b := New(8)
	b.Add(1, Sched, "p", 0)
	b.Add(2, Custom+3, "app", 0)
	b.Add(3, Custom+3, "app", 0)
	s := b.Summary()
	if !strings.Contains(s, "sched=1") || !strings.Contains(s, "custom+3=2") {
		t.Fatalf("summary %q missing application kind counts", s)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12500, Kind: Intr, Label: "disk", Arg: 7}
	s := e.String()
	if !strings.Contains(s, "intr") || !strings.Contains(s, "disk") || !strings.Contains(s, "(7)") {
		t.Fatalf("event string: %q", s)
	}
}
