// Package trace provides a lightweight execution tracer for the simulated
// kernel: a bounded ring buffer of typed events (scheduling, interrupts,
// trigger states, soft-timer activity) that can be dumped for debugging or
// asserted on in tests. Tracing is opt-in and costs nothing when disabled.
package trace

import (
	"fmt"
	"io"
	"strings"

	"softtimers/internal/sim"
)

// Kind classifies trace events.
type Kind int

const (
	// Sched marks a context switch to a process.
	Sched Kind = iota
	// Intr marks a hardware interrupt delivery.
	Intr
	// SoftIRQ marks a software interrupt execution.
	SoftIRQ
	// TriggerState marks a trigger-state visit.
	TriggerState
	// SoftFire marks a soft-timer event firing.
	SoftFire
	// IdleEnter and IdleExit bracket idle periods.
	IdleEnter
	IdleExit
	// Custom is available to applications.
	Custom
)

var kindNames = [...]string{
	"sched", "intr", "softirq", "trigger", "softfire", "idle+", "idle-", "custom",
}

// String names the kind. Application-defined kinds (Custom+n) render as
// "custom+n"; negative kinds — which no API produces — as "kind(-n)".
func (k Kind) String() string {
	if k < 0 {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("custom+%d", int(k)-int(Custom))
	}
	return kindNames[k]
}

// ParseKind inverts String for non-negative kinds: every name produced by
// Kind.String maps back to its kind.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(s, "custom+%d", &n); err == nil && n > 0 {
		return Custom + Kind(n), true
	}
	return 0, false
}

// Event is one trace record.
type Event struct {
	At    sim.Time
	Kind  Kind
	Label string
	Arg   int64
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s  %-8s %s (%d)", e.At, e.Kind, e.Label, e.Arg)
}

// Buffer is a fixed-capacity ring of events. The zero value is unusable;
// use New. Buffer is not safe for concurrent use (the simulation is
// single-threaded).
type Buffer struct {
	events  []Event
	next    int
	wrapped bool
	dropped int64
	enabled bool
}

// New returns an enabled buffer retaining the last cap events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Buffer{events: make([]Event, capacity), enabled: true}
}

// Enable toggles recording; Add is a no-op while disabled.
func (b *Buffer) Enable(on bool) { b.enabled = on }

// Enabled reports whether recording is on.
func (b *Buffer) Enabled() bool { return b.enabled }

// Add records an event, evicting the oldest if full.
func (b *Buffer) Add(at sim.Time, kind Kind, label string, arg int64) {
	if !b.enabled {
		return
	}
	if b.wrapped {
		b.dropped++
	}
	b.events[b.next] = Event{At: at, Kind: kind, Label: label, Arg: arg}
	b.next++
	if b.next == len(b.events) {
		b.next = 0
		b.wrapped = true
	}
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b.wrapped {
		return len(b.events)
	}
	return b.next
}

// Dropped returns how many events were evicted.
func (b *Buffer) Dropped() int64 { return b.dropped }

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, b.Len())
	if b.wrapped {
		out = append(out, b.events[b.next:]...)
	}
	out = append(out, b.events[:b.next]...)
	return out
}

// Filter returns retained events of the given kind, oldest-first.
func (b *Buffer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events to w, one per line.
func (b *Buffer) Dump(w io.Writer) error {
	for _, e := range b.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if b.dropped > 0 {
		_, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", b.dropped)
		return err
	}
	return nil
}

// Summary returns per-kind counts of retained events, formatted compactly
// in ascending kind order. Application kinds beyond Custom are included.
func (b *Buffer) Summary() string {
	counts := map[Kind]int{}
	maxKind := Kind(-1)
	for _, e := range b.Events() {
		counts[e.Kind]++
		if e.Kind > maxKind {
			maxKind = e.Kind
		}
	}
	var parts []string
	for k := Kind(0); k <= maxKind; k++ {
		if c := counts[k]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c))
		}
	}
	return strings.Join(parts, " ")
}
