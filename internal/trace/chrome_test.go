package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"softtimers/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenBuffer builds a small deterministic trace exercising every track
// type: slices (sched/idle), instants on several kinds, an unnamed label,
// and an application kind beyond Custom.
func goldenBuffer() *Buffer {
	b := New(64)
	b.Add(0, Sched, "init", 0)
	b.Add(5*sim.Microsecond, Intr, "nic0.rx", 3)
	b.Add(7*sim.Microsecond, SoftIRQ, "proto", 0)
	b.Add(9*sim.Microsecond, TriggerState, "softirq", 1)
	b.Add(10*sim.Microsecond, SoftFire, "pacer", 2)
	b.Add(12*sim.Microsecond, Sched, "httpd", 7)
	b.Add(20*sim.Microsecond, IdleEnter, "", 0)
	b.Add(30*sim.Microsecond, IdleExit, "", 0)
	b.Add(31*sim.Microsecond, Custom, "", 42)
	b.Add(33*sim.Microsecond, Custom+2, "appmark", 1)
	b.Add(40*sim.Microsecond, Sched, "httpd", 7)
	return b
}

func TestWriteChromeGolden(t *testing.T) {
	var got bytes.Buffer
	if err := goldenBuffer().WriteChrome(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("chrome trace differs from golden\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	var out bytes.Buffer
	if err := goldenBuffer().WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	depth := 0
	phases := map[string]int{}
	for i, e := range doc.TraceEvents {
		phases[e.Phase]++
		switch e.Phase {
		case "M", "B", "E", "i":
		default:
			t.Errorf("event %d: unknown phase %q", i, e.Phase)
		}
		if e.PID != 1 {
			t.Errorf("event %d: pid = %d", i, e.PID)
		}
		if e.TS < 0 {
			t.Errorf("event %d: negative ts", i)
		}
		switch e.Phase {
		case "B":
			depth++
		case "E":
			depth--
			if depth < 0 {
				t.Fatalf("event %d: E without matching B", i)
			}
		case "M":
			if e.Args["name"] == "" {
				t.Errorf("event %d: metadata without name arg", i)
			}
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced slices: %d B events left open", depth)
	}
	for _, ph := range []string{"M", "B", "E", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events emitted", ph)
		}
	}
	// Timestamps are non-decreasing past the metadata preamble.
	var prev float64 = -1
	for i, e := range doc.TraceEvents {
		if e.Phase == "M" {
			continue
		}
		if e.TS < prev {
			t.Errorf("event %d: ts %v < previous %v", i, e.TS, prev)
		}
		prev = e.TS
	}
}
