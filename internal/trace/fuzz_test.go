package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/sim"
)

// FuzzKindRoundTrip checks the Kind naming round trip from both ends:
// every name String produces must parse back to the same kind, and any
// string ParseKind accepts must survive a String/ParseKind cycle.
func FuzzKindRoundTrip(f *testing.F) {
	for k := Kind(0); k < Custom+4; k++ {
		f.Add(k.String(), int64(k))
	}
	f.Add("bogus", int64(-1))
	f.Add("custom+", int64(1<<40))
	f.Add("custom+007", int64(0))
	f.Fuzz(func(t *testing.T, s string, n int64) {
		if n >= 0 && n < 1<<20 {
			k := Kind(n)
			back, ok := ParseKind(k.String())
			if !ok || back != k {
				t.Fatalf("ParseKind(%q) = (%v, %v), want (%v, true)", k.String(), back, ok, k)
			}
		}
		if k, ok := ParseKind(s); ok {
			if k < 0 {
				t.Fatalf("ParseKind(%q) produced negative kind %d", s, k)
			}
			back, ok2 := ParseKind(k.String())
			if !ok2 || back != k {
				t.Fatalf("accepted %q as %v, but %q does not round-trip (got %v, %v)",
					s, k, k.String(), back, ok2)
			}
		}
	})
}

// FuzzChromeWriter feeds arbitrary event streams (including ring-buffer
// wrap, empty labels, raw-byte labels and application kinds) through
// WriteChrome and checks the structural contract: the output is valid
// JSON, metadata records come first, per-track timestamps are monotone
// nondecreasing, and the cpu track's begin/end slices stay balanced.
func FuzzChromeWriter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 0xff, 3, 1, 0, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5}, 40)) // forces ring wrap
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(32)
		var at sim.Time
		for i := 0; i+4 < len(data); i += 5 {
			at += sim.Time(int(data[i])<<8 | int(data[i+1]))
			kind := Kind(data[i+2] % 12) // through custom+4
			var label string
			switch data[i+3] % 4 {
			case 1:
				label = "p"
			case 2:
				label = string(data[i+3 : i+5]) // arbitrary bytes, maybe invalid UTF-8
			}
			b.Add(at, kind, label, int64(int8(data[i+4])))
		}

		var buf bytes.Buffer
		if err := b.WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("output is not valid JSON:\n%s", buf.Bytes())
		}
		var out struct {
			TraceEvents []struct {
				Ph  string  `json:"ph"`
				TS  float64 `json:"ts"`
				TID int     `json:"tid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decoding own output: %v", err)
		}

		lastTS := map[int]float64{}
		depth := 0
		inBody := false
		for i, e := range out.TraceEvents {
			if e.Ph == "M" {
				if inBody {
					t.Fatalf("event %d: metadata after body events", i)
				}
				continue
			}
			inBody = true
			if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
				t.Fatalf("event %d: tid %d ts %v before %v", i, e.TID, e.TS, prev)
			}
			lastTS[e.TID] = e.TS
			if e.TID == 0 {
				switch e.Ph {
				case "B":
					depth++
					if depth > 1 {
						t.Fatalf("event %d: nested cpu slice", i)
					}
				case "E":
					depth--
					if depth < 0 {
						t.Fatalf("event %d: cpu slice end without begin", i)
					}
				}
			}
		}
		if depth != 0 {
			t.Fatalf("cpu track left %d slice(s) open", depth)
		}
	})
}
