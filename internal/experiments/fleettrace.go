package experiments

// Fleet-trace experiment: the hierarchical fleet instrumented end to end
// with flow-level span tracing and virtual-time series. 1-in-64 of client
// connections are sampled (per-host private RNG stream, so the sampled
// set is shard- and worker-invariant); every packet of a sampled flow
// records per-hop virtual timestamps — NIC tx, link serialization and
// arrival, cut-through leaf/spine forwards, NIC rx ring and protocol
// pickup — into pooled spans finished when the packet's arena refcount
// drops to zero.
//
// The claim under test: the per-hop decomposition is complete. For each
// traced request/response pair, the request span (client NIC tx → server
// protocol pickup), server turnaround, and response-header span telescope
// into a path latency that must account for the client's independently
// observed time-to-first-byte up to a small client-side residue (the
// sendto syscall plus kernel transmit chain, which run before the first
// recorded hop). A tracing layer whose hops went missing, double-counted,
// or landed on the wrong virtual instant breaks the telescoping sum.

import (
	"bytes"
	"fmt"
	"time"

	"softtimers/internal/flowtrace"
	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/topology"
)

// fleetTraceCounts is the default client-count sweep: one mostly-intra-leaf
// shape and one where cross-leaf spine paths dominate.
var fleetTraceCounts = []int{8, 32}

// Flow-trace sampling parameters: 1-in-64 flows, capped per host so span
// memory stays bounded on long runs, with the cap high enough that the
// quick scales never hit it (a hit would be deterministic anyway).
const (
	fleetTraceRate     = 64
	fleetTraceMaxFlows = 256
)

// fleetTraceGapTolUS bounds the client-side residue: observed TTFB minus
// the traced path may include the sendto syscall (10 µs), the kernel
// transmit chain ahead of the first recorded hop, and any interrupt
// processing that preempts them on the client — but never milliseconds.
const fleetTraceGapTolUS = 1000.0

// FleetTraceRow is one fleet size's trace measurements. Latency columns
// are means over decomposed request/response pairs, in µs.
type FleetTraceRow struct {
	Hosts        int
	Leaves       int
	SampledFlows int64
	Spans        int64 // finished spans
	Hops         int64
	Decomposed   int // request/response pairs fully decomposed
	ReqUS        float64
	TurnUS       float64
	RespUS       float64
	PathUS       float64 // req + turn + resp (telescoped end to end)
	TTFBUS       float64 // client-observed time to first byte
	GapUS        float64 // mean TTFB - path (client-side residue)
	MaxGapUS     float64
	DecompOK     bool // hops monotone, gap in [0, tolerance] on every pair
	WallMS       float64 `json:"-"`
}

// FleetTraceResult is the fleet-trace sweep.
type FleetTraceResult struct {
	Rows      []FleetTraceRow
	Shards    int
	Telemetry *metrics.Snapshot
	Series    map[string]*metrics.SeriesSnapshot
}

// fleetTraceSeriesIvl and Cap set the per-host series cadence and ring
// capacity: ~1 ms ticks over the quick-scale windows decimate once or
// twice, exercising the stride logic without drowning the JSON.
const fleetTraceSeriesCap = 32

var fleetTraceSeriesIvl = sim.Millisecond

// fleetTraceRun is one measured fleet's complete observability output.
type fleetTraceRun struct {
	row    FleetTraceRow
	snap   *metrics.Snapshot
	series map[string]*metrics.SeriesSnapshot
	spans  []flowtrace.SpanData
	chrome []byte // merged Chrome trace with flow arrows, when requested
}

// runFleetTrace builds the hierarchical fleet with flow tracing and series
// enabled, measures it, and decomposes the traced flows. The chrome bytes,
// when requested (withChrome), are the merged Chrome trace with flow
// arrows — the byte-equivalence witness for the determinism tests.
func runFleetTrace(sc Scale, salt uint64, n int, withChrome bool) fleetTraceRun {
	seed := sc.Seed + salt
	leaves := hierLeaves(n)
	var t *topology.Topology
	if sc.Shards > 0 {
		shards := sc.Shards
		if shards > leaves {
			shards = leaves
		}
		g := sim.NewShardGroupWithQueue(shards, seed, sc.Queue)
		g.Workers = sc.Workers
		t = topology.NewSharded(g, seed)
		t.Assign = func(i int, name string) int {
			return (i % leaves) % shards
		}
	} else {
		t = topology.New(sim.NewEngineWithQueue(seed, sc.Queue))
		t.SetSeed(seed)
	}

	server := t.AddHost(host.Config{
		Name:   "server",
		Kernel: kernel.Options{IdleLoop: true},
	})
	members := []string{"server"}
	clientHosts := make([]*host.Host, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%03d", i)
		clientHosts[i] = t.AddHost(host.Config{Name: name})
		members = append(members, name)
	}
	fab := t.AddFabric(topology.FabricSpec{
		Name:    "dc",
		Leaves:  leaves,
		Members: members,
		NIC:     nic.Config{Name: "eth0"},
	})

	srv := httpserv.NewServerMulti(server.K, server.F, server.NICs,
		httpserv.Config{Kind: httpserv.Flash})
	srv.Addr = t.Addr("server")

	chs := make([]*httpserv.ClientHost, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%03d", i)
		port := fab.MemberPorts[i+1] // member 0 is the server
		chs[i] = httpserv.NewClientHost(clientHosts[i], port.NIC, httpserv.ClientHostConfig{
			Concurrency: 4,
			FlowBase:    (i + 1) * 1_000_000,
			Segments:    srv.Segments(),
			Addr:        t.Addr(name),
			ServerAddr:  t.Addr("server"),
			StartDelay:  sim.Time(i) * 100 * sim.Microsecond,
			ChurnEvery:  3,
		})
	}

	for _, h := range t.Hosts() {
		fleetProbe(h, h.Rand())
	}

	// Observability wiring, after assembly and before Start: flow sampling
	// on every client (the server inherits decisions from traced SYNs) and
	// the per-host virtual-time series.
	ft := t.EnableFlowTrace(fleetTraceRate, fleetTraceMaxFlows)
	srv.FlowTrace = ft.Sampler("server")
	for i, ch := range chs {
		ch.FlowTrace = ft.Sampler(fmt.Sprintf("client%03d", i))
	}
	t.EnableSeries(fleetTraceSeriesIvl, fleetTraceSeriesCap, nil)
	if withChrome {
		t.EnableTracing(256)
	}
	t.Start()
	srv.Start()

	warmup, measure := sc.Warmup/4, sc.Measure/4
	t.RunFor(warmup)
	wall0 := time.Now()
	runMeasured(sc, fmt.Sprintf("fleet-trace n=%d", n), t, measure)
	wallMS := float64(time.Since(wall0).Microseconds()) / 1000

	row := FleetTraceRow{
		Hosts:        n,
		Leaves:       leaves,
		SampledFlows: ft.SampledFlows(),
		Spans:        ft.Finished(),
		Hops:         ft.HopCount(),
		WallMS:       wallMS,
	}
	spans := ft.Spans()
	decomposeFlows(&row, spans, chs)

	var chrome []byte
	if withChrome {
		var buf bytes.Buffer
		if err := t.WriteChrome(&buf); err != nil {
			panic(err)
		}
		chrome = buf.Bytes()
	}

	series := make(map[string]*metrics.SeriesSnapshot)
	for key, s := range t.SeriesSnapshots() {
		// Keep the fleet merge and the server's own series; per-client
		// series are asserted in unit tests, not exported (a 1024-host row
		// would drown the JSON).
		if key == "fleet" || key == "host.server" {
			series[fmt.Sprintf("clients%03d.%s", n, key)] = s
		}
	}
	return fleetTraceRun{row: row, snap: t.Snapshot(), series: series, spans: spans, chrome: chrome}
}

// FleetTraceExport drives one traced hierarchical fleet of n clients and
// returns the finished flow spans plus, when withChrome is set, the merged
// Chrome trace with flow arrows — the payloads behind sttrace -mode flows.
// Both are byte-stable at any shard or worker count.
func FleetTraceExport(sc Scale, n int, withChrome bool) ([]flowtrace.SpanData, []byte) {
	r := runFleetTrace(sc, 500, n, withChrome)
	return r.spans, r.chrome
}

// decomposeFlows pairs each traced flow's request span with its
// response-header span (seq 0 data segment), telescopes the per-hop
// decomposition, and checks it against the client's observed TTFB.
func decomposeFlows(row *FleetTraceRow, spans []flowtrace.SpanData, chs []*httpserv.ClientHost) {
	req := make(map[int]flowtrace.SpanData)
	hdr := make(map[int]flowtrace.SpanData)
	row.DecompOK = true
	for _, d := range spans {
		// Any span with out-of-order hop timestamps is a tracing bug.
		for i := 1; i < len(d.Hops); i++ {
			if d.Hops[i].AtNS < d.Hops[i-1].AtNS {
				row.DecompOK = false
			}
		}
		switch {
		case d.Kind == "request":
			req[d.Flow] = d
		case d.Kind == "data" && d.Seq == 0:
			if _, dup := hdr[d.Flow]; !dup {
				hdr[d.Flow] = d
			}
		}
	}
	var sumReq, sumTurn, sumResp, sumPath, sumTTFB, sumGap float64
	for _, ch := range chs {
		for flow, ttfb := range ch.TTFB {
			rq, ok1 := req[flow]
			hd, ok2 := hdr[flow]
			if !ok1 || !ok2 || len(rq.Hops) < 2 || len(hd.Hops) < 2 {
				continue
			}
			reqNS := rq.Hops[len(rq.Hops)-1].AtNS - rq.Hops[0].AtNS
			turnNS := hd.Hops[0].AtNS - rq.Hops[len(rq.Hops)-1].AtNS
			respNS := hd.Hops[len(hd.Hops)-1].AtNS - hd.Hops[0].AtNS
			pathNS := reqNS + turnNS + respNS
			gapUS := float64(int64(ttfb)-pathNS) / 1000
			if reqNS < 0 || turnNS < 0 || respNS < 0 {
				row.DecompOK = false
			}
			// The traced path must account for the observed TTFB: the
			// residue is client-side pre-trace work, never negative and
			// never large.
			if gapUS < 0 || gapUS > fleetTraceGapTolUS {
				row.DecompOK = false
			}
			if gapUS > row.MaxGapUS {
				row.MaxGapUS = gapUS
			}
			row.Decomposed++
			sumReq += float64(reqNS) / 1000
			sumTurn += float64(turnNS) / 1000
			sumResp += float64(respNS) / 1000
			sumPath += float64(pathNS) / 1000
			sumTTFB += ttfb.Micros()
			sumGap += gapUS
		}
	}
	if row.Decomposed > 0 {
		n := float64(row.Decomposed)
		row.ReqUS = sumReq / n
		row.TurnUS = sumTurn / n
		row.RespUS = sumResp / n
		row.PathUS = sumPath / n
		row.TTFBUS = sumTTFB / n
		row.GapUS = sumGap / n
	}
}

// RunFleetTrace sweeps the traced hierarchical fleet. Rows are independent
// simulations, parallel across sc.Workers and sharded across up to
// sc.Shards engines; tables, telemetry, series and traces are
// byte-identical at any setting.
func RunFleetTrace(sc Scale) *FleetTraceResult {
	counts := sc.FleetCounts
	if counts == nil {
		counts = fleetTraceCounts
	}
	rows := make([]FleetTraceRow, len(counts))
	snaps := make([]*metrics.Snapshot, len(counts))
	series := make([]map[string]*metrics.SeriesSnapshot, len(counts))
	forEach(sc.Workers, len(counts), func(i int) {
		r := runFleetTrace(sc, 500+uint64(i), counts[i], false)
		rows[i], snaps[i], series[i] = r.row, r.snap, r.series
	})
	merged := make(map[string]*metrics.SeriesSnapshot)
	for _, m := range series {
		for k, s := range m {
			merged[k] = s
		}
	}
	return &FleetTraceResult{
		Rows: rows, Shards: sc.Shards,
		Telemetry: mergeTelemetry(snaps), Series: merged,
	}
}

// Table renders the fleet-trace sweep with its per-hop latency breakdown.
func (r *FleetTraceResult) Table() *Table {
	t := &Table{
		Title: "Fleet trace — flow spans and per-hop latency decomposition",
		Columns: []string{"clients", "leaves", "flows", "spans", "hops", "pairs",
			"req (us)", "turn (us)", "resp (us)", "path (us)", "ttfb (us)",
			"gap (us)", "decomp ok"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		ok := "yes"
		if !row.DecompOK {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f0(float64(row.Hosts)), f0(float64(row.Leaves)),
			f0(float64(row.SampledFlows)), f0(float64(row.Spans)), f0(float64(row.Hops)),
			f0(float64(row.Decomposed)),
			f1(row.ReqUS), f1(row.TurnUS), f1(row.RespUS), f1(row.PathUS),
			f1(row.TTFBUS), f1(row.GapUS), ok,
		})
		key := fmt.Sprintf("fleettrace_%d", row.Hosts)
		t.Metrics[key+"_sampled_flows"] = float64(row.SampledFlows)
		t.Metrics[key+"_spans"] = float64(row.Spans)
		t.Metrics[key+"_decomposed"] = float64(row.Decomposed)
		t.Metrics[key+"_path_us"] = row.PathUS
		t.Metrics[key+"_ttfb_us"] = row.TTFBUS
		t.Metrics[key+"_gap_us"] = row.GapUS
		t.Metrics[key+"_wall_ms"] = row.WallMS
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("1-in-%d client flows sampled from per-host private RNG streams; spans record per-hop virtual timestamps across NICs, links, leaf and spine forwards", fleetTraceRate),
		"decomposition (asserted in tests): request span + server turnaround + response-header span telescope to the path latency, and client-observed TTFB exceeds it only by the pre-trace sendto residue",
		"series: per-host virtual-time samples (trigger p50/p99, delay p99, rx/tx, queue depth) merged point-wise into the fleet series; dumped by stbench -series")
	if r.Shards > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"sharded execution: up to %d engines (clamped to the leaf count); spans stitch across shards at round barriers, and spans, series and telemetry stay byte-identical", r.Shards))
	}
	t.Telemetry = r.Telemetry
	t.Series = r.Series
	return t
}
