package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/sim"
)

// fleetTraceRunBytes runs one traced fleet and renders every observability
// output — row, merged telemetry, per-host/fleet series, exported spans,
// Chrome trace with flow arrows — as comparable bytes (WallMS zeroed: real
// time is the one legitimately mode-dependent field).
func fleetTraceRunBytes(t *testing.T, shards, workers int) (FleetTraceRow, [][]byte) {
	t.Helper()
	sc := tinyScale()
	sc.Shards = shards
	sc.Workers = workers
	r := runFleetTrace(sc, 421, 16, true)
	r.row.WallMS = 0
	var out [][]byte
	for _, v := range []interface{}{r.row, r.snap, r.series, r.spans} {
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, j)
	}
	return r.row, append(out, r.chrome)
}

// The tentpole determinism contract: the traced fleet's spans, series,
// telemetry and Chrome flow trace are byte-identical whether it runs on
// the legacy shared engine, one shard, or many shards (8 requested,
// clamped to the leaf count) — serially or with a worker pool. Sampling
// draws come from per-host private RNG streams and span IDs are
// mode-invariant, so every byte must match.
func TestFleetTraceShardedMatchesLegacy(t *testing.T) {
	labels := []string{"row", "telemetry", "series", "spans", "chrome"}
	refRow, ref := fleetTraceRunBytes(t, 0, 0)
	if refRow.SampledFlows == 0 || refRow.Spans == 0 || refRow.Decomposed == 0 {
		t.Fatalf("reference run traced nothing: %+v", refRow)
	}
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1", 1, 0},
		{"shards=2", 2, 0},
		{"shards=8", 8, 0},
		{"shards=8/workers=4", 8, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, got := fleetTraceRunBytes(t, c.shards, c.workers)
			for i, b := range got {
				if !bytes.Equal(b, ref[i]) {
					t.Errorf("%s diverged from legacy (%d vs %d bytes)", labels[i], len(b), len(ref[i]))
				}
			}
		})
	}
}

// The decomposition claim itself: every traced request/response pair's
// per-hop sum telescopes to a path latency the client's observed TTFB
// covers, with a non-negative residue under the tolerance.
func TestFleetTraceDecomposition(t *testing.T) {
	sc := tinyScale()
	r := runFleetTrace(sc, 421, 16, false)
	row := r.row
	if row.SampledFlows == 0 || row.Spans == 0 {
		t.Fatalf("nothing traced: %+v", row)
	}
	if row.Decomposed == 0 {
		t.Fatalf("no request/response pairs decomposed: %+v", row)
	}
	if !row.DecompOK {
		t.Fatalf("decomposition failed: %+v", row)
	}
	if row.ReqUS <= 0 || row.RespUS <= 0 || row.PathUS <= 0 {
		t.Fatalf("degenerate decomposition means: %+v", row)
	}
	if row.TTFBUS < row.PathUS {
		t.Fatalf("traced path %.1fus exceeds observed TTFB %.1fus", row.PathUS, row.TTFBUS)
	}
	if row.GapUS < 0 || row.MaxGapUS > fleetTraceGapTolUS {
		t.Fatalf("client residue out of bounds: mean %.1fus max %.1fus", row.GapUS, row.MaxGapUS)
	}
	// Spans carry real multi-hop paths: a request crosses at least NIC tx,
	// two links, a leaf forward, the ring and the pickup.
	if row.Hops < row.Spans*2 {
		t.Fatalf("%d hops across %d spans — spans are degenerate", row.Hops, row.Spans)
	}
	// The series rode along: fleet merge plus the server's own columns.
	for _, key := range []string{"clients016.fleet", "clients016.host.server"} {
		s := r.series[key]
		if s == nil || len(s.TimesNS) == 0 {
			t.Fatalf("series %q missing or empty", key)
		}
	}
}

// The -progress callback changes batching (the measure window runs in
// chunks so there is something to report) but must not change a single
// simulated byte, and must fire with monotone virtual time.
func TestFleetTraceProgressCallbackIsInert(t *testing.T) {
	_, ref := fleetTraceRunBytes(t, 2, 0)
	sc := tinyScale()
	sc.Shards = 2
	calls := 0
	var lastVirtual sim.Time
	sc.Progress = func(label string, virtual sim.Time, fired uint64) {
		calls++
		if virtual < lastVirtual {
			t.Errorf("progress virtual time went backwards: %v after %v", virtual, lastVirtual)
		}
		lastVirtual = virtual
		if label == "" || fired == 0 {
			t.Errorf("degenerate progress report: label %q fired %d", label, fired)
		}
	}
	r := runFleetTrace(sc, 421, 16, true)
	r.row.WallMS = 0
	labels := []string{"row", "telemetry", "series", "spans", "chrome"}
	var got [][]byte
	for _, v := range []interface{}{r.row, r.snap, r.series, r.spans} {
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j)
	}
	got = append(got, r.chrome)
	for i, b := range got {
		if !bytes.Equal(b, ref[i]) {
			t.Errorf("%s diverged under -progress (%d vs %d bytes)", labels[i], len(b), len(ref[i]))
		}
	}
	if calls < 8 {
		t.Errorf("progress fired %d times, want at least the 8 measure chunks", calls)
	}
}
