package experiments

import (
	"fmt"
	"strings"

	"softtimers/internal/httpserv"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
)

// Table8Quotas are the aggregation quotas the paper sweeps.
var Table8Quotas = []float64{1, 2, 5, 10, 15}

// Table8Row is one (server, protocol) combination.
type Table8Row struct {
	Server    string
	Protocol  string // "HTTP" or "P-HTTP"
	Interrupt float64
	ByQuota   map[float64]float64
	SpeedupAt map[float64]float64 // throughput ratio vs interrupt mode
}

// Table8Result reproduces Table 8: network polling throughput.
type Table8Result struct {
	Rows []Table8Row
}

// RunTable8 compares interrupt-driven network processing against
// soft-timer network polling at aggregation quotas 1–15, for Apache and
// Flash under HTTP and persistent-HTTP load (Section 5.9). Paper:
// improvements of 3–25%, larger for Flash.
func RunTable8(sc Scale) *Table8Result {
	type combo struct {
		kind       httpserv.Kind
		persistent bool
	}
	var combos []combo
	for _, kind := range []httpserv.Kind{httpserv.Apache, httpserv.Flash} {
		for _, persistent := range []bool{false, true} {
			combos = append(combos, combo{kind, persistent})
		}
	}
	// Each (server, protocol, NIC mode/quota) cell is an independent
	// testbed: flatten the full grid — 4 combos x (1 interrupt + quota
	// sweep) — into one task list, the experiment's largest fan-out.
	runsPerCombo := 1 + len(Table8Quotas)
	xputs := make([]float64, len(combos)*runsPerCombo)
	forEach(sc.Workers, len(xputs), func(i int) {
		c := combos[i/runsPerCombo]
		mode, quota := nic.Interrupt, 1.0
		if j := i % runsPerCombo; j > 0 {
			mode, quota = nic.SoftPoll, Table8Quotas[j-1]
		}
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed: sc.Seed,
			NIC: nic.Config{
				Mode:             mode,
				AggregationQuota: quota,
				// Allow the adaptive interval room to reach the
				// larger quotas at per-NIC packet rates (4 NICs
				// split the load; the paper's higher absolute
				// rates kept quota 15 under 1 ms naturally).
				MaxPoll: 2 * sim.Millisecond,
			},
			Server: httpserv.Config{Kind: c.kind, Persistent: c.persistent},
			// The paper's Table 8 server has four Fast Ethernet
			// interfaces with one client machine on each, so the
			// wire is never the bottleneck.
			NICCount:    4,
			Concurrency: 48,
		})
		xputs[i] = tb.Run(sc.Warmup, sc.Measure).Throughput
	})
	res := &Table8Result{}
	for ci, c := range combos {
		proto := "HTTP"
		if c.persistent {
			proto = "P-HTTP"
		}
		row := Table8Row{
			Server:    c.kind.String(),
			Protocol:  proto,
			Interrupt: xputs[ci*runsPerCombo],
			ByQuota:   make(map[float64]float64),
			SpeedupAt: make(map[float64]float64),
		}
		for qi, q := range Table8Quotas {
			x := xputs[ci*runsPerCombo+1+qi]
			row.ByQuota[q] = x
			if row.Interrupt > 0 {
				row.SpeedupAt[q] = x / row.Interrupt
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders Table 8.
func (r *Table8Result) Table() *Table {
	cols := []string{"server", "proto", "interrupt"}
	for _, q := range Table8Quotas {
		cols = append(cols, fmt.Sprintf("poll q=%g", q))
	}
	t := &Table{
		Title:   "Table 8 — network polling throughput on 6KB HTTP requests (req/s, speedup)",
		Columns: cols,
		Notes: []string{
			"paper: Apache HTTP 854 -> 915..945 (1.07-1.11x); Flash HTTP 1376 -> 1568..1719 (1.14-1.25x)",
			"paper: Apache P-HTTP 1346 -> 1380..1440 (1.03-1.07x); Flash P-HTTP 4439 -> 4816..5498 (1.08-1.24x)",
		},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		cells := []string{row.Server, row.Protocol, f0(row.Interrupt)}
		for _, q := range Table8Quotas {
			cells = append(cells, fmt.Sprintf("%.0f (%.2fx)", row.ByQuota[q], row.SpeedupAt[q]))
		}
		t.Rows = append(t.Rows, cells)
		key := strings.ToLower(row.Server) + "_" + strings.ToLower(strings.ReplaceAll(row.Protocol, "-", ""))
		t.Metrics[key+"_speedup_q15"] = row.SpeedupAt[15]
	}
	return t
}
