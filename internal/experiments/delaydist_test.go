package experiments

import "testing"

func TestDelayDistMatchesPaperShape(t *testing.T) {
	sc := QuickScale()
	res := RunDelayDist(sc)
	if res.N < 500 {
		t.Fatalf("samples = %d", res.N)
	}
	// Paper: worst-case d has mean 31.6us; far below the ~500us a
	// conventional 1kHz timer facility would average.
	if res.MeanUS < 20 || res.MeanUS > 45 {
		t.Errorf("mean d = %.1fus, want ~31.6", res.MeanUS)
	}
	if res.MeanUS > res.UniformMeanUS/8 {
		t.Errorf("soft-timer mean d %.1fus not clearly below conventional %.0fus",
			res.MeanUS, res.UniformMeanUS)
	}
	// Heavily skewed low: median well below the p99.
	if res.MedianUS >= res.P99US/2 {
		t.Errorf("distribution not skewed: median %.1f vs p99 %.1f", res.MedianUS, res.P99US)
	}
	// Bounded by the hardclock backup.
	if res.MaxUS > 1100 {
		t.Errorf("max d = %.0fus beyond the interrupt-clock bound", res.MaxUS)
	}
	// CDF must be monotone and reach a high fraction by 150us (paper:
	// delays over 100us in <6% of samples for this workload).
	last := 0.0
	for _, p := range res.CDF {
		if p.Frac < last {
			t.Fatal("CDF not monotone")
		}
		last = p.Frac
	}
	if last < 0.90 {
		t.Errorf("CDF@200us = %.2f, want most delays small", last)
	}
	_ = res.Table().Render()
}
