package experiments

import (
	"softtimers/internal/cpu"
	"softtimers/internal/metrics"
	"softtimers/internal/stats"
	"softtimers/internal/workloads"
)

// Table1Row summarizes one workload's trigger-interval distribution
// (Table 1), with the paper's values alongside.
type Table1Row struct {
	Name     string
	MaxUS    float64
	MeanUS   float64
	MedianUS float64
	Above100 float64 // fraction
	Above150 float64
	// CDF samples the distribution at 1 µs steps up to 150 µs (Figure 4).
	CDF []stats.CDFPoint
	// Paper values for the same row (Max, Mean, Median, >100µs%, >150µs%).
	Paper [5]float64
}

// Table1Result is Figure 4 + Table 1 (plus the Xeon check row).
type Table1Result struct {
	Rows []Table1Row
	// Telemetry merges every workload rig's metrics snapshot in row order.
	Telemetry *metrics.Snapshot
}

// paperTable1 holds the published Table 1 values.
var paperTable1 = map[string][5]float64{
	"ST-Apache":         {476, 31.52, 18, 5.3, 0.39},
	"ST-Apache-compute": {585, 31.59, 18, 5.3, 0.43},
	"ST-Flash":          {1000, 22.53, 17, 1.09, 0.013},
	"ST-real-audio":     {1000, 8.47, 6, 0.025, 0.013},
	"ST-nfs":            {910, 2.13, 2, 0.021, 0.011},
	"ST-kernel-build":   {1000, 5.63, 2, 0.038, 0.011},
	"ST-Apache (Xeon)":  {1000, 19.41, 11, 0.44, 0.13},
}

// RunTable1 measures the trigger-state interval distribution of every
// workload (Section 5.3: 2 million samples each), including the 500 MHz
// Xeon repeat of ST-Apache.
func RunTable1(sc Scale) *Table1Result {
	type spec struct {
		name string
		make func() *workloads.Rig
	}
	var specs []spec
	for _, d := range workloads.All() {
		d := d
		specs = append(specs, spec{d.Name, func() *workloads.Rig {
			return d.Make(sc.Seed, cpu.PentiumII300())
		}})
	}
	apache, _ := workloads.ByName("ST-Apache")
	specs = append(specs, spec{"ST-Apache (Xeon)", func() *workloads.Rig {
		return apache.Make(sc.Seed, cpu.PentiumIII500())
	}})

	// Each workload rig is its own simulated machine; rows fan across
	// sc.Workers goroutines and land in Table 1 order by index.
	res := &Table1Result{Rows: make([]Table1Row, len(specs))}
	snaps := make([]*metrics.Snapshot, len(specs))
	forEach(sc.Workers, len(specs), func(i int) {
		rig := specs[i].make()
		rig.Collect(sc.Samples, sc.Warmup, 600e9)
		snaps[i] = rig.K.Metrics().Snapshot()
		h := rig.K.Meter().Hist
		res.Rows[i] = Table1Row{
			Name:     specs[i].name,
			MaxUS:    h.Quantile(1),
			MeanUS:   h.Mean(),
			MedianUS: h.Quantile(0.5),
			Above100: h.FracAbove(100),
			Above150: h.FracAbove(150),
			CDF:      h.CDF(150),
			Paper:    paperTable1[specs[i].name],
		}
	})
	res.Telemetry = mergeTelemetry(snaps)
	return res
}

// Table renders Table 1 with paper values interleaved.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Title: "Table 1 / Figure 4 — trigger state interval distribution",
		Columns: []string{"workload", "max(us)", "mean(us)", "median(us)",
			">100us(%)", ">150us(%)", "paper(mean/med)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, f0(row.MaxUS), f2(row.MeanUS), f1(row.MedianUS),
			f2(row.Above100 * 100), f2(row.Above150 * 100),
			f2(row.Paper[1]) + "/" + f0(row.Paper[2]),
		})
	}
	t.Notes = append(t.Notes,
		"paper medians/means per workload are shown in the last column; shapes should match")
	if len(r.Rows) > 0 {
		t.Metrics = map[string]float64{ // Rows[0] is ST-Apache (Table 1 order)
			"apache_mean_us":   r.Rows[0].MeanUS,
			"apache_median_us": r.Rows[0].MedianUS,
		}
	}
	t.Telemetry = r.Telemetry
	return t
}
