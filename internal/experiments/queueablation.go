package experiments

import (
	"encoding/json"
	"fmt"

	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// Queue-backend ablation: the churn-heavy hierarchical fleet rerun on each
// engine event-queue backend — binary heap (the default), hashed timing
// wheel, hierarchical wheel, and the Eiffel-style FFS-bitmap bucket queue.
// Fleet clients constantly schedule, cancel, and rearm timers as they churn,
// so the engine queue sees the dynamic-update mix the backends differ on.
//
// Correctness is part of the table: every backend must pop events in the
// exact (time, seq) order the heap does, so the merged fleet telemetry —
// every counter, gauge, and histogram bucket across every host — must be
// byte-identical to the heap reference. The wall-clock column is the only
// thing allowed to move.

// QueueAblationRow is one backend's outcome on the churned fleet.
type QueueAblationRow struct {
	Backend    string
	Throughput float64
	Completed  int64
	Churns     int64
	WorstDelay float64 // µs, worst probe delay across hosts
	BoundOK    bool
	// TelemetryEq reports whether the run's merged telemetry is
	// byte-identical to the heap backend's (trivially true for the heap).
	TelemetryEq bool
	WallMS      float64 `json:"-"`
}

// QueueAblationResult compares the four engine queue backends.
type QueueAblationResult struct {
	Rows   []QueueAblationRow
	Hosts  int
	Shards int
}

// queueAblationHosts picks the fleet size for the ablation: the largest
// configured fleet row, so the queue holds as many pending timers as the
// scale affords.
func queueAblationHosts(sc Scale) int {
	n := 0
	counts := sc.FleetCounts
	if counts == nil {
		counts = hierCounts
	}
	for _, c := range counts {
		if c > n {
			n = c
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RunQueueAblation reruns one churn-heavy hierarchical fleet row per
// backend and diffs each run's merged telemetry against the heap's.
func RunQueueAblation(sc Scale) *QueueAblationResult {
	kinds := sim.QueueKinds()
	n := queueAblationHosts(sc)
	res := &QueueAblationResult{
		Rows:   make([]QueueAblationRow, len(kinds)),
		Hosts:  n,
		Shards: sc.Shards,
	}
	rows := make([]FleetHierRow, len(kinds))
	snaps := make([]*metrics.Snapshot, len(kinds))
	forEach(sc.Workers, len(kinds), func(i int) {
		scq := sc
		scq.Queue = kinds[i]
		rows[i], snaps[i] = runFleetHier(scq, 400, n)
	})
	ref := mustJSON(snaps[0]) // kinds[0] is QueueHeap, the reference
	for i, kind := range kinds {
		res.Rows[i] = QueueAblationRow{
			Backend:     kind.String(),
			Throughput:  rows[i].Throughput,
			Completed:   rows[i].Completed,
			Churns:      rows[i].Churns,
			WorstDelay:  rows[i].WorstDelay,
			BoundOK:     rows[i].BoundOK,
			TelemetryEq: string(mustJSON(snaps[i])) == string(ref),
			WallMS:      rows[i].WallMS,
		}
	}
	return res
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Table renders the queue-backend ablation.
func (r *QueueAblationResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf(
			"Ablation — engine event-queue backend (hierarchical fleet, %d churning clients)", r.Hosts),
		Columns: []string{"backend", "resp/s", "completed", "churns",
			"worst d (us)", "bound holds", "telemetry = heap"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		ok, eq := "yes", "yes"
		if !row.BoundOK {
			ok = "NO"
		}
		if !row.TelemetryEq {
			eq = "NO"
		}
		t.Rows = append(t.Rows, []string{
			row.Backend, f0(row.Throughput), f0(float64(row.Completed)),
			f0(float64(row.Churns)), f0(row.WorstDelay), ok, eq,
		})
		t.Metrics["queue_"+row.Backend+"_wall_ms"] = row.WallMS
		eqv := 0.0
		if row.TelemetryEq {
			eqv = 1
		}
		t.Metrics["queue_"+row.Backend+"_telemetry_eq"] = eqv
	}
	t.Notes = append(t.Notes,
		"heap: O(log n) sift, the 0-alloc default; wheel/hier: O(1) insert but exact-order pops rescan slots; ffs: O(1) bitmap find-first-set pops",
		"every backend must replay the heap's event order exactly — the last column diffs the full merged fleet telemetry byte-for-byte",
		"wall-clock per backend is in the JSON metrics (queue_<backend>_wall_ms); simulated results never move")
	return t
}
