package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The fleet sweep's central claim: the soft-timer delay bound (hardclock
// period + one measurement tick) holds on every host in the topology —
// the saturated server and every nearly-idle client kernel alike.
func TestFleetDelayBoundHoldsPerHost(t *testing.T) {
	sc := tinyScale()
	for i, n := range []int{1, 4, 16} {
		row, snap := runFleet(sc, 900+uint64(i), n)
		if row.Probes == 0 {
			t.Fatalf("n=%d: no probes fired", n)
		}
		if !row.BoundOK || row.WorstDelay > row.BoundUS {
			t.Fatalf("n=%d: worst probe delay %.0fus exceeds bound %.0fus",
				n, row.WorstDelay, row.BoundUS)
		}
		if row.Completed == 0 {
			t.Fatalf("n=%d: no responses completed", n)
		}
		// Per-host namespaces must be present for the server and every
		// client (host.<name>.softtimer.fired proves each machine ran its
		// own facility).
		if snap.Counters["host.server.softtimer.fired"] == 0 {
			t.Fatalf("n=%d: server facility fired no events", n)
		}
		if snap.Counters["host.client00.softtimer.fired"] == 0 {
			t.Fatalf("n=%d: client00 facility fired no events", n)
		}
	}
}

// Fleet rows are independent simulations; the whole sweep must be
// byte-identical regardless of worker count.
func TestFleetScaleDeterministic(t *testing.T) {
	sc := tinyScale()
	render := func(workers int) ([]byte, []byte) {
		s := sc
		s.Workers = workers
		r := RunFleetScale(s)
		tab := r.Table()
		telem, err := json.Marshal(tab.Telemetry)
		if err != nil {
			t.Fatal(err)
		}
		return []byte(tab.Render()), telem
	}
	t1, m1 := render(1)
	t8, m8 := render(8)
	if !bytes.Equal(t1, t8) {
		t.Fatalf("fleet table differs between workers=1 and workers=8:\n%s\n---\n%s", t1, t8)
	}
	if !bytes.Equal(m1, m8) {
		t.Fatal("fleet telemetry differs between workers=1 and workers=8")
	}
}

// More client machines must not raise aggregate throughput once the server
// saturates, and the server must stay the bottleneck (busy ~100%) — the
// experiment is a server-CPU study, not a client benchmark.
func TestFleetServerSaturates(t *testing.T) {
	sc := tinyScale()
	row, _ := runFleet(sc, 950, 8)
	if row.SrvBusy < 0.9 {
		t.Fatalf("server busy fraction %.2f, want saturated (>= 0.9)", row.SrvBusy)
	}
	sum := row.SrvUser + row.SrvKernel + row.SrvIntr + row.SrvSoftIRQ
	if sum > row.SrvBusy+1e-9 {
		t.Fatalf("CPU split components %.3f exceed busy fraction %.3f", sum, row.SrvBusy)
	}
}
