package experiments

import (
	"bytes"
	"sync/atomic"
	"testing"
)

// tinyScale keeps the determinism tests fast while still running real
// multi-row experiments end to end.
func tinyScale() Scale {
	sc := QuickScale()
	sc.Samples = 30_000
	sc.Warmup = sc.Warmup / 2
	sc.Measure = sc.Measure / 2
	sc.WANTransfers = []int64{5, 100}
	sc.FreqStepKHz = 50
	return sc
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		counts := make([]atomic.Int32, n)
		forEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
	ran := false
	forEach(4, 1, func(i int) { ran = true }) // n==1 runs inline
	if !ran {
		t.Fatal("forEach skipped a single-element range")
	}
	forEach(4, 0, func(i int) { t.Fatal("forEach ran a task for n=0") })
}

// The acceptance bar for the parallel runner: rendered experiment tables
// must be byte-identical between a fully serial run and a fanned-out run
// with the same seed, for both the top-level experiment fan-out and the
// row-level splits inside fig2 and table1.
func TestParallelRunMatchesSerialByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full multi-experiment sweeps")
	}
	names := []string{"fig2", "table1"}

	serialSc := tinyScale()
	serialSc.Workers = 1
	serial := RunParallel(serialSc, names, 1)

	parSc := tinyScale()
	parSc.Workers = 4 // row-level fan-out inside each driver
	par := RunParallel(parSc, names, 2)

	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Name != par[i].Name {
			t.Fatalf("result %d: name %q (serial) vs %q (parallel): order not preserved",
				i, serial[i].Name, par[i].Name)
		}
		s, p := serial[i].Table.Render(), par[i].Table.Render()
		if s != p {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].Name, s, p)
		}
	}
}

// The -metrics acceptance bar: an experiment's merged telemetry snapshot
// must serialize byte-identically whether its rows ran serially or fanned
// across workers. Per-row registries are deterministic given the seed and
// mergeTelemetry folds them in index order, so worker count must not leak
// into the dump.
func TestTelemetrySnapshotDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiment sweeps")
	}
	for _, name := range []string{"sec52", "fig2", "table6"} {
		run, _ := Lookup(name)

		serialSc := tinyScale()
		serialSc.Workers = 1
		serial := run(serialSc).Telemetry
		if serial == nil {
			t.Fatalf("%s: no telemetry snapshot", name)
		}

		parSc := tinyScale()
		parSc.Workers = 4
		par := run(parSc).Telemetry

		var sb, pb bytes.Buffer
		if err := serial.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteJSON(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Errorf("%s: telemetry differs between Workers=1 and Workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, sb.Bytes(), pb.Bytes())
		}
		if len(serial.Counters) == 0 {
			t.Errorf("%s: snapshot has no counters", name)
		}
	}
}

func TestRunParallelPreservesNameOrder(t *testing.T) {
	sc := tinyScale()
	sc.Samples = 5_000
	names := []string{"ablation-idle", "sec510"}
	results := RunParallel(sc, names, 2)
	for i, r := range results {
		if r.Name != names[i] {
			t.Fatalf("result %d = %q, want %q", i, r.Name, names[i])
		}
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Fatalf("%s: empty table", r.Name)
		}
		if r.Wall <= 0 {
			t.Fatalf("%s: non-positive wall time %v", r.Name, r.Wall)
		}
	}
}

// A panicking experiment must surface as Result.Err — in order, with the
// other experiments' tables intact — not crash the process from a worker
// goroutine. This is what lets stbench exit non-zero cleanly.
func TestRunParallelCapturesWorkerPanic(t *testing.T) {
	registry["panicky"] = entry{run: func(sc Scale) *Table { panic("deliberate test panic") }, desc: "test-only"}
	defer delete(registry, "panicky")

	sc := tinyScale()
	sc.Samples = 5_000
	names := []string{"ablation-idle", "panicky", "sec510"}
	for _, workers := range []int{1, 3} {
		results := RunParallel(sc, names, workers)
		for i, r := range results {
			if r.Name != names[i] {
				t.Fatalf("workers=%d: result %d = %q, want %q", workers, i, r.Name, names[i])
			}
		}
		if results[1].Err == nil || results[1].Table != nil {
			t.Fatalf("workers=%d: panicking experiment: err=%v table=%v",
				workers, results[1].Err, results[1].Table)
		}
		for _, i := range []int{0, 2} {
			if results[i].Err != nil || results[i].Table == nil {
				t.Fatalf("workers=%d: healthy experiment %s: err=%v table=%v",
					workers, results[i].Name, results[i].Err, results[i].Table)
			}
		}
	}
}

// forEach itself re-raises the lowest-index panic after every task has run,
// so row-level sweeps inside a driver fail the same way at any worker count.
func TestForEachReRaisesLowestPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 20
		var ran atomic.Int32
		got := func() (v any) {
			defer func() { v = recover() }()
			forEach(workers, n, func(i int) {
				ran.Add(1)
				if i == 3 || i == 11 {
					panic(i)
				}
			})
			return nil
		}()
		if got != 3 {
			t.Fatalf("workers=%d: re-raised panic %v, want 3 (lowest index)", workers, got)
		}
		if ran.Load() != n {
			t.Fatalf("workers=%d: %d tasks ran before re-raise, want all %d", workers, ran.Load(), n)
		}
	}
}

func TestRegistryCoversOrder(t *testing.T) {
	// Order lists every deterministic experiment ("all" must stay
	// reproducible); realtime experiments are registered but excluded.
	nRealtime := 0
	for _, n := range Names() {
		if RequiresRealTime(n) {
			nRealtime++
		}
	}
	if len(Names()) != len(Order)+nRealtime {
		t.Fatalf("registry has %d entries, Order lists %d (+%d realtime)",
			len(Names()), len(Order), nRealtime)
	}
	for _, n := range Order {
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Order entry %q missing from registry", n)
		}
		if RequiresRealTime(n) {
			t.Fatalf("Order entry %q requires realtime; \"all\" must stay deterministic", n)
		}
	}
	for name := range realtimeExps {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("realtime experiment %q missing from registry", name)
		}
	}
}
