package experiments

import (
	"bytes"
	"math"
	"testing"

	"softtimers/internal/sim"
)

// degradationScale trims the quick scale so the full sweep stays fast in
// unit tests while keeping enough probes for stable percentiles.
func degradationScale() Scale {
	sc := QuickScale()
	sc.Samples = 50_000 // 1000 probes per row
	sc.Warmup = 200 * sim.Millisecond
	return sc
}

// TestDegradationStarveBound is the paper-faithful regression: however
// starved the trigger sources, soft-timer delay is bounded by the hardclock
// period plus one measurement tick (the §4 fallback guarantee), and the
// facility's check overhead stays within the configured budget. The small
// slack term covers interrupt-entry plus hardclock-handler latency — the
// trigger-state check itself happens a few µs after the period boundary.
func TestDegradationStarveBound(t *testing.T) {
	r := RunDegradationStarve(degradationScale())
	const slackUS = 10
	for _, row := range r.Rows {
		if row.N < 400 {
			t.Fatalf("starve=%g: only %d probes fired", row.Frac, row.N)
		}
		bound := r.PeriodUS + 1 + slackUS
		if row.MaxUS > bound {
			t.Errorf("starve=%g: max delay %.0fus exceeds hard-timer bound %.0fus",
				row.Frac, row.MaxUS, bound)
		}
		if row.OverheadFrac > r.Budget {
			t.Errorf("starve=%g: check overhead %.4f exceeds budget %.4f",
				row.Frac, row.OverheadFrac, r.Budget)
		}
	}
	clean, starved := r.Rows[0], r.Rows[len(r.Rows)-1]
	if starved.Frac != 1.0 {
		t.Fatalf("last row should be full starvation, got %g", starved.Frac)
	}
	// Degradation is graceful but real: with every trigger source starved,
	// only the hardclock fires events and mean delay approaches half the
	// period; clean delay stays far below it.
	if clean.MeanUS > 100 {
		t.Errorf("clean mean delay %.1fus too high for a busy kernel", clean.MeanUS)
	}
	if starved.MeanUS < 5*clean.MeanUS || starved.MeanUS < 200 {
		t.Errorf("full starvation mean delay %.1fus does not show degradation (clean %.1fus)",
			starved.MeanUS, clean.MeanUS)
	}
	if starved.HardclockShare != 1.0 {
		t.Errorf("full starvation should fire only at hardclock, share %.3f", starved.HardclockShare)
	}
	if starved.Starved == 0 {
		t.Error("full starvation suppressed no trigger checks")
	}
}

// TestDegradationLossGraceful checks the loss sweep: delivered fraction
// tracks 1−p (timer-paced transmission has no loss-triggered collapse) and
// goodput relative to clean weakly decreases with the loss rate.
func TestDegradationLossGraceful(t *testing.T) {
	r := RunDegradationLoss(degradationScale())
	prev := math.Inf(1)
	for _, row := range r.Rows {
		want := 1 - row.Rate
		if math.Abs(row.DeliveredFrac-want) > 0.05 {
			t.Errorf("loss=%g: delivered fraction %.3f, want ~%.3f", row.Rate, row.DeliveredFrac, want)
		}
		if row.Dups != 0 {
			t.Errorf("loss=%g: %d duplicates from a drop-only spec", row.Rate, row.Dups)
		}
		if row.VsClean > prev+0.02 {
			t.Errorf("loss=%g: goodput ratio %.3f rose above previous %.3f", row.Rate, row.VsClean, prev)
		}
		prev = row.VsClean
	}
	if r.Rows[0].DeliveredFrac != 1.0 {
		t.Errorf("clean row delivered fraction %.3f, want 1.0", r.Rows[0].DeliveredFrac)
	}
}

// telemetryJSON renders a snapshot to its byte-stable JSON form.
func telemetryJSON(t *testing.T, tab *Table) []byte {
	t.Helper()
	if tab.Telemetry == nil {
		t.Fatal("table has no telemetry")
	}
	var buf bytes.Buffer
	if err := tab.Telemetry.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDegradationSeedReplay is the determinism contract for faulty runs:
// the same seed replays byte-identically — rendered tables and merged
// telemetry — regardless of worker parallelism.
func TestDegradationSeedReplay(t *testing.T) {
	for _, name := range []string{"degradation-starve", "degradation-loss"} {
		run, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		sc1 := degradationScale()
		sc1.Workers = 1
		sc8 := degradationScale()
		sc8.Workers = 8
		base := run(sc1)
		for label, sc := range map[string]Scale{"replay": sc1, "parallel": sc8} {
			got := run(sc)
			if got.Render() != base.Render() {
				t.Errorf("%s/%s: rendered table differs from baseline", name, label)
			}
			if !bytes.Equal(telemetryJSON(t, got), telemetryJSON(t, base)) {
				t.Errorf("%s/%s: telemetry snapshot differs from baseline", name, label)
			}
		}
	}
}

// TestRunScenario exercises the stbench -scenario path for every named
// scenario at a tiny scale, and checks unknown names panic with the list.
func TestRunScenario(t *testing.T) {
	sc := degradationScale()
	sc.Samples = 25_000
	tab := RunScenario(sc, "hostile")
	if len(tab.Rows) == 0 || tab.Telemetry == nil {
		t.Fatal("scenario table empty or missing telemetry")
	}
	if tab.Metrics["check_overhead_frac"] > 0.01 {
		t.Errorf("hostile scenario check overhead %.4f exceeds budget", tab.Metrics["check_overhead_frac"])
	}
	// Hostile drops 5% and duplicates 2% on the data path.
	if f := tab.Metrics["delivered_frac"]; f < 0.9 || f > 1.0 {
		t.Errorf("hostile delivered fraction %.3f out of range", f)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunScenario with unknown name did not panic")
			}
		}()
		RunScenario(sc, "no-such-scenario")
	}()
}
