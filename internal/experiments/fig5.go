package experiments

import (
	"softtimers/internal/cpu"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/workloads"
)

// Fig5Result holds the windowed trigger-interval medians of Figure 5:
// medians computed over 1 ms and over 10 ms windows for 10 seconds of the
// ST-Apache-compute workload.
type Fig5Result struct {
	// Starts1ms/Medians1ms and Starts10ms/Medians10ms are the series.
	Starts1ms, Medians1ms   []float64
	Starts10ms, Medians10ms []float64
	// Band statistics the paper quotes.
	Frac1msAbove40 float64 // fraction of 1 ms medians above 40 µs (paper: <1.13%)
	Min10, Max10   float64 // range of the 10 ms medians (paper: ~17–19 µs)
}

// RunFig5 reproduces Figure 5 (Section 5.4): the trigger-interval median
// is noisy over 1 ms windows but almost constant over 10 ms windows (one
// FreeBSD timeslice).
func RunFig5(sc Scale) *Fig5Result {
	d, err := workloads.ByName("ST-Apache-compute")
	if err != nil {
		panic(err)
	}
	rig := d.Make(sc.Seed, cpu.PentiumII300())
	// Reach steady state first; the paper's plot is a slice of the
	// running workload, not its startup transient.
	rig.Eng.RunFor(sc.Warmup)
	w1 := stats.NewWindowedMedians(1) // meter feeds times in ms
	w10 := stats.NewWindowedMedians(10)
	rig.K.Meter().Windows = []*stats.WindowedMedians{w1, w10}
	dur := 10 * sim.Second
	if sc.Samples < 1_000_000 { // quick scale: shorter trace
		dur = 2 * sim.Second
	}
	rig.Eng.RunFor(dur)
	w1.Flush()
	w10.Flush()

	res := &Fig5Result{
		Starts1ms: w1.Starts, Medians1ms: w1.Medians,
		Starts10ms: w10.Starts, Medians10ms: w10.Medians,
	}
	above := 0
	for _, m := range w1.Medians {
		if m > 40 {
			above++
		}
	}
	if len(w1.Medians) > 0 {
		res.Frac1msAbove40 = float64(above) / float64(len(w1.Medians))
	}
	if len(w10.Medians) > 0 {
		res.Min10, res.Max10 = w10.Medians[0], w10.Medians[0]
		for _, m := range w10.Medians {
			if m < res.Min10 {
				res.Min10 = m
			}
			if m > res.Max10 {
				res.Max10 = m
			}
		}
	}
	return res
}

// Table renders the Figure 5 summary statistics.
func (r *Fig5Result) Table() *Table {
	return &Table{
		Title: "Figure 5 — trigger interval medians over 1ms and 10ms windows (ST-Apache-compute)",
		Columns: []string{"windows(1ms)", "1ms medians >40us", "windows(10ms)",
			"10ms median min", "10ms median max"},
		Rows: [][]string{{
			f0(float64(len(r.Medians1ms))), pct(r.Frac1msAbove40),
			f0(float64(len(r.Medians10ms))), f1(r.Min10), f1(r.Max10),
		}},
		Notes: []string{
			"paper: 1ms medians mostly 14-26us with <1.13% above 40us; 10ms medians in a narrow 17-19us band",
		},
		Metrics: map[string]float64{
			"frac_1ms_medians_above_40us": r.Frac1msAbove40,
			"10ms_median_spread_us":       r.Max10 - r.Min10,
		},
	}
}
