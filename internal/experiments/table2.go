package experiments

import (
	"softtimers/internal/cpu"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/stats"
	"softtimers/internal/workloads"
)

// reportedSources are the five event sources Table 2 reports, in order.
var reportedSources = []kernel.Source{
	kernel.SrcSyscall, kernel.SrcIPOutput, kernel.SrcIPIntr,
	kernel.SrcTCPIPOther, kernel.SrcTrap,
}

// paperTable2 holds the published fractions (%).
var paperTable2 = map[kernel.Source]float64{
	kernel.SrcSyscall:    47.7,
	kernel.SrcIPOutput:   28,
	kernel.SrcIPIntr:     16.4,
	kernel.SrcTCPIPOther: 5.4,
	kernel.SrcTrap:       2.5,
}

// Table2Result holds the trigger-source breakdown for ST-Apache.
type Table2Result struct {
	// Fraction maps source -> fraction of samples (over the five
	// reported sources).
	Fraction map[kernel.Source]float64
	Counts   map[kernel.Source]int64
}

// RunTable2 measures what fraction of ST-Apache trigger states each event
// source contributes (Section 5.5, Table 2).
func RunTable2(sc Scale) *Table2Result {
	d, err := workloads.ByName("ST-Apache")
	if err != nil {
		panic(err)
	}
	rig := d.Make(sc.Seed, cpu.PentiumII300())
	rig.Collect(sc.Samples, sc.Warmup, 600e9)
	m := rig.K.Meter()
	res := &Table2Result{
		Fraction: make(map[kernel.Source]float64),
		Counts:   make(map[kernel.Source]int64),
	}
	var total int64
	for _, s := range reportedSources {
		total += m.BySource[s]
	}
	for _, s := range reportedSources {
		res.Counts[s] = m.BySource[s]
		if total > 0 {
			res.Fraction[s] = float64(m.BySource[s]) / float64(total)
		}
	}
	return res
}

// Table renders Table 2 with the paper's fractions alongside.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:   "Table 2 — trigger state sources (ST-Apache)",
		Columns: []string{"source", "fraction", "paper"},
	}
	for _, s := range reportedSources {
		t.Rows = append(t.Rows, []string{
			s.String(), pct(r.Fraction[s]), f1(paperTable2[s]) + "%",
		})
	}
	t.Metrics = map[string]float64{
		"syscall_frac":   r.Fraction[kernel.SrcSyscall],
		"ip_output_frac": r.Fraction[kernel.SrcIPOutput],
	}
	return t
}

// Fig6Series is the trigger-interval CDF with one source's trigger states
// removed (Figure 6).
type Fig6Series struct {
	Removed string // "" for the full set
	MeanUS  float64
	CDF     []stats.CDFPoint
}

// Fig6Result holds the source-ablation CDFs.
type Fig6Result struct {
	Series []Fig6Series
}

// RunFig6 recomputes the ST-Apache trigger-interval distribution with each
// event source's trigger states suppressed in turn (Section 5.5, Figure 6:
// "system calls and IP packet transmissions are the most important sources
// of trigger events").
func RunFig6(sc Scale) *Fig6Result {
	ablate := []struct {
		label string
		src   kernel.Source
		on    bool
	}{
		{"All", 0, false},
		{"no traps", kernel.SrcTrap, true},
		{"no ip-intr", kernel.SrcIPIntr, true},
		{"no ip-output", kernel.SrcIPOutput, true},
		{"no syscalls", kernel.SrcSyscall, true},
	}
	// One independent testbed per ablated source.
	res := &Fig6Result{Series: make([]Fig6Series, len(ablate))}
	forEach(sc.Workers, len(ablate), func(i int) {
		a := ablate[i]
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed: sc.Seed,
			Kernel: kernel.Options{
				DisabledSources: disabled(a.on, a.src),
			},
			Server: httpserv.Config{Kind: httpserv.Apache},
		})
		tb.Start()
		rig := &workloads.Rig{Eng: tb.Eng, K: tb.K, F: tb.F, Testbed: tb}
		rig.Collect(sc.Samples/2, sc.Warmup, 600e9)
		h := tb.K.Meter().Hist
		res.Series[i] = Fig6Series{
			Removed: a.label,
			MeanUS:  h.Mean(),
			CDF:     h.CDF(150),
		}
	})
	return res
}

func disabled(on bool, src kernel.Source) map[kernel.Source]bool {
	if !on {
		return nil
	}
	return map[kernel.Source]bool{src: true}
}

// Table renders the mean interval per ablation plus CDF checkpoints.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:   "Figure 6 — impact of removing each trigger source (ST-Apache)",
		Columns: []string{"variant", "mean interval (us)", "CDF@50us", "CDF@100us"},
		Notes: []string{
			"paper: removing syscalls or ip-output degrades the distribution most",
		},
	}
	at := func(cdf []stats.CDFPoint, x float64) float64 {
		for _, p := range cdf {
			if p.X >= x {
				return p.Frac
			}
		}
		if len(cdf) > 0 {
			return cdf[len(cdf)-1].Frac
		}
		return 0
	}
	for _, s := range r.Series {
		t.Rows = append(t.Rows, []string{
			s.Removed, f2(s.MeanUS), pct(at(s.CDF, 50)), pct(at(s.CDF, 100)),
		})
	}
	t.Metrics = map[string]float64{}
	for _, s := range r.Series {
		switch s.Removed {
		case "All":
			t.Metrics["mean_us_all"] = s.MeanUS
		case "no syscalls":
			t.Metrics["mean_us_no_syscalls"] = s.MeanUS
		}
	}
	return t
}
