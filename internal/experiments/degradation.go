package experiments

// Graceful-degradation experiments: the paper's robustness claim (§4, §5.2,
// Table 2) exercised under the deterministic fault-injection layer. Two
// sweeps plus a named-scenario summary:
//
//   - degradation-starve sweeps the fraction of suppressed trigger-state
//     checks and measures soft-timer firing delay. Expectation: as trigger
//     states disappear, delay collapses toward the hard-timer period bound
//     (the hardclock backstop), never past it, while check overhead stays
//     within the scenario budget.
//   - degradation-loss sweeps packet-loss rate on the WAN data path under
//     a soft-timer-paced sender and measures delivered fraction and
//     goodput versus the clean baseline. Pacing is timer-driven, not
//     ack-clocked, so goodput degrades proportionally to loss — no
//     collapse.
//   - RunScenario (stbench -scenario) runs both rigs under one named
//     faults scenario and reports the headline observables.

import (
	"fmt"

	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
	"softtimers/internal/tcp"
)

// probeT is the requested probe latency in measurement ticks (100 µs at
// the default 1 MHz measurement clock) — far below the 1 ms hardclock
// period, so the gap between requested and observed latency is the
// degradation signal.
const probeT = 100

// hardclockPeriodUS is the default backup-timer period the probe rig runs
// at (kernel Hz 1000), the paper's bound on soft-timer delay.
const hardclockPeriodUS = 1000

// probeStats summarizes one probe rig run.
type probeStats struct {
	N                           int64   // probes fired
	MeanUS, MedianUS            float64 // delay d = actual − T, µs
	P99US, MaxUS                float64
	HardclockShare              float64 // fraction of fires at the hardclock trigger
	Starved                     int64   // trigger checks suppressed by the plan
	OverheadFrac                float64 // soft-timer check CPU / total time
	IntrJitterNS, CPUPerturbNS  int64
	PITCoalesced, TriggersTotal int64
}

// runProbeRig measures soft-timer firing delay under a fault spec: a busy
// kernel (a process looping compute+syscall, so trigger states arrive
// every ~40 µs when unstarved) with one probe event outstanding at a time,
// scheduled at random offsets with fixed T. The per-row engine, kernel and
// plan are all seeded from (sc.Seed, salt), so rows are independent and
// byte-identically replayable.
func runProbeRig(sc Scale, salt uint64, spec faults.Spec) (probeStats, *metrics.Snapshot) {
	plan := faults.New(sc.Seed+salt, spec)
	eng := sim.NewEngine(sc.Seed + salt)
	h := host.New(eng, host.Config{Kernel: kernel.Options{IdleLoop: true}, Faults: plan})
	k, f := h.K, h.F

	var loop func(p *kernel.Proc)
	loop = func(p *kernel.Proc) {
		p.Compute(30*sim.Microsecond, func() {
			p.Syscall("io", 10*sim.Microsecond, func() { loop(p) })
		})
	}
	k.Spawn("busy", loop)
	k.Start()
	eng.RunFor(sc.Warmup)

	n := sc.Samples / 50
	if n < 400 {
		n = 400
	}
	rng := eng.Rand().Fork()
	remaining := n
	var arm func()
	arm = func() {
		if remaining == 0 {
			return
		}
		remaining--
		eng.After(rng.ExpTime(300*sim.Microsecond), func() {
			f.ScheduleSoftEvent(probeT, func(now sim.Time) sim.Time {
				arm()
				return 0
			})
		})
	}
	arm()
	deadline := eng.Now() + 600*sim.Second
	for f.DelayHist.N() < n && eng.Now() < deadline {
		eng.RunFor(50 * sim.Millisecond)
	}

	var fires int64
	for _, c := range f.FiresBySource {
		fires += c
	}
	st := f.Stats()
	snap := k.Metrics().Snapshot()
	ps := probeStats{
		N:        f.DelayHist.N(),
		MeanUS:   f.DelayHist.Mean(),
		MedianUS: f.DelayHist.Quantile(0.5),
		P99US:    f.DelayHist.Quantile(0.99),
		// Exact worst delay (the facility's high-water gauge), not a
		// bucket-interpolated quantile — the degradation bound is asserted
		// against this.
		MaxUS:         float64(snap.Gauges["softtimer.overshoot_max_us"].Max),
		Starved:       plan.TriggersStarved,
		OverheadFrac:  float64(st.CheckOverhead) / float64(eng.Now()),
		IntrJitterNS:  plan.IntrJitterNS,
		CPUPerturbNS:  plan.CPUPerturbNS,
		PITCoalesced:  plan.PITCoalesced,
		TriggersTotal: st.Checks,
	}
	if fires > 0 {
		ps.HardclockShare = float64(f.FiresBySource[kernel.SrcHardClock]) / float64(fires)
	}
	return ps, snap
}

// starveFracs is the degradation-starve sweep: clean through total
// trigger-state starvation.
var starveFracs = []float64{0, 0.5, 0.9, 0.99, 1.0}

// StarveRow is one starvation fraction's measurements.
type StarveRow struct {
	Frac float64
	probeStats
}

// StarveResult is the degradation-starve sweep.
type StarveResult struct {
	// PeriodUS is the hardclock period, the paper's delay bound.
	PeriodUS float64
	// Budget is the check-overhead budget rows are held to.
	Budget float64
	Rows   []StarveRow
	// Telemetry merges every row's registry snapshot in row order.
	Telemetry *metrics.Snapshot
}

// RunDegradationStarve sweeps trigger-state starvation and measures probe
// firing delay. The paper-faithful expectation — asserted as a regression
// test, not prose — is that delay approaches but never exceeds the
// hardclock period plus one measurement tick, and check overhead stays
// within budget.
func RunDegradationStarve(sc Scale) *StarveResult {
	rows := make([]StarveRow, len(starveFracs))
	snaps := make([]*metrics.Snapshot, len(starveFracs))
	forEach(sc.Workers, len(starveFracs), func(i int) {
		ps, snap := runProbeRig(sc, uint64(i), faults.Spec{Starve: starveFracs[i]})
		rows[i] = StarveRow{Frac: starveFracs[i], probeStats: ps}
		snaps[i] = snap
	})
	return &StarveResult{
		PeriodUS:  hardclockPeriodUS,
		Budget:    faults.Spec{}.Budget(),
		Rows:      rows,
		Telemetry: mergeTelemetry(snaps),
	}
}

// Table renders the starvation sweep.
func (r *StarveResult) Table() *Table {
	t := &Table{
		Title: "Degradation — soft-timer delay vs trigger-state starvation (probe T=100us, 1kHz backup)",
		Columns: []string{"starved", "probes", "mean d (us)", "median (us)", "p99 (us)",
			"max (us)", "hardclock share", "checks starved", "check ovh"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			pct(row.Frac), f0(float64(row.N)),
			f1(row.MeanUS), f1(row.MedianUS), f0(row.P99US), f0(row.MaxUS),
			pct(row.HardclockShare), f0(float64(row.Starved)), pct(row.OverheadFrac),
		})
		key := fmt.Sprintf("starve_%g", row.Frac)
		t.Metrics[key+"_mean_us"] = row.MeanUS
		t.Metrics[key+"_max_us"] = row.MaxUS
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("expectation (asserted in tests): max d <= hardclock period %gus + 1 tick; overhead <= %s",
			r.PeriodUS, pct(r.Budget)),
		"paper S4: when trigger states are rare, soft timers degrade to the granularity of the periodic timer")
	t.Telemetry = r.Telemetry
	return t
}

// lossRates is the degradation-loss sweep.
var lossRates = []float64{0, 0.01, 0.05, 0.1, 0.2}

// LossRow is one loss rate's measurements.
type LossRow struct {
	Rate          float64
	Sent          int64
	Delivered     int64 // unique segments that arrived
	Dups          int64 // duplicate arrivals discarded
	DeliveredFrac float64
	GoodputMbps   float64
	// VsClean is goodput relative to the zero-loss row.
	VsClean float64
}

// LossResult is the degradation-loss sweep.
type LossResult struct {
	Rows      []LossRow
	Telemetry *metrics.Snapshot
}

// runLossTransfer runs one soft-timer-paced WAN transfer with the fault
// plan installed on the data direction's bottleneck hop only (the
// request/ACK path stays clean, so every transfer starts; the pacer is
// timer-driven and needs no ACK clock). Returns unique deliveries,
// discarded duplicates, and the last arrival time.
func runLossTransfer(sc Scale, salt uint64, spec faults.Spec, packets int64) (delivered, dups int64, last sim.Time, snap *metrics.Snapshot) {
	eng := sim.NewEngine(sc.Seed + salt)
	plan := faults.New(sc.Seed+salt, spec)
	cfg := tcp.DefaultConfig()

	serverIn := &dispatcher{}
	clientIn := &dispatcher{}
	const bottleneckBps = 50_000_000
	wan := netstack.NewWANEmulator(eng, 100_000_000, bottleneckBps,
		100*sim.Millisecond, serverIn, clientIn)
	// Fault only the bottleneck hop of the data direction: the end-to-end
	// loss rate then equals the spec's per-link rate (installing on every
	// hop would compound it), and the request/ACK path stays clean so every
	// transfer starts.
	bott := wan.AtoB.Hop(wan.AtoB.Hops() - 1)
	bott.Faults = plan.Link(bott.Name)

	snd := tcp.NewSender(&tcp.EngineEnv{Eng: eng, Out: wan.AtoB}, cfg, 1, packets, true)

	reg := metrics.NewRegistry()
	snd.RegisterMetrics(reg)
	wan.AtoB.RegisterMetrics(reg)
	wan.BtoA.RegisterMetrics(reg)
	plan.RegisterMetrics(reg)

	seen := make(map[int64]bool, packets)
	clientIn.fn = func(p *netstack.Packet) {
		if p.Kind != netstack.Data {
			return
		}
		if seen[p.Seq] {
			dups++
			return
		}
		seen[p.Seq] = true
		delivered++
		last = eng.Now()
	}

	// Rate-based clocking at the bottleneck capacity, as in the Table 6/7
	// rigs: one MSS-sized packet per serialization time.
	interval := sim.Time(int64(cfg.WireSize(cfg.MSS)) * 8 * int64(sim.Second) / bottleneckBps)
	var tick func()
	tick = func() {
		if _, more := snd.PacedSendOne(eng.Now()); more {
			eng.After(interval, tick)
		}
	}
	started := false
	serverIn.fn = func(p *netstack.Packet) {
		if p.Kind == netstack.Request && !started {
			started = true
			eng.After(interval, tick)
		}
	}
	wan.BtoA.Send(&netstack.Packet{Flow: 1, Kind: netstack.Request, Size: cfg.WireSize(300)})

	eng.RunUntil(600 * sim.Second)
	return delivered, dups, last, reg.Snapshot()
}

// RunDegradationLoss sweeps data-path packet loss under a paced transfer.
// Expectation (asserted in tests): delivered fraction tracks 1−p — the
// timer-driven transmission process keeps its rate, so goodput degrades
// linearly with loss rather than collapsing.
func RunDegradationLoss(sc Scale) *LossResult {
	packets := sc.PacerTrain / 10
	if packets < 500 {
		packets = 500
	}
	rows := make([]LossRow, len(lossRates))
	snaps := make([]*metrics.Snapshot, len(lossRates))
	forEach(sc.Workers, len(lossRates), func(i int) {
		p := lossRates[i]
		delivered, dups, last, snap := runLossTransfer(sc, 100+uint64(i), faults.Spec{Drop: p}, packets)
		row := LossRow{Rate: p, Sent: packets, Delivered: delivered, Dups: dups}
		row.DeliveredFrac = float64(delivered) / float64(packets)
		if last > 0 {
			row.GoodputMbps = float64(delivered) * 1448 * 8 / last.Seconds() / 1e6
		}
		rows[i] = row
		snaps[i] = snap
	})
	if clean := rows[0].GoodputMbps; clean > 0 {
		for i := range rows {
			rows[i].VsClean = rows[i].GoodputMbps / clean
		}
	}
	return &LossResult{Rows: rows, Telemetry: mergeTelemetry(snaps)}
}

// Table renders the loss sweep.
func (r *LossResult) Table() *Table {
	t := &Table{
		Title: "Degradation — paced-transfer goodput vs data-path loss (50 Mbps bottleneck, 100 ms RTT)",
		Columns: []string{"loss", "sent", "delivered", "dup", "delivered frac",
			"goodput (Mbps)", "vs clean"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			pct(row.Rate), f0(float64(row.Sent)), f0(float64(row.Delivered)),
			f0(float64(row.Dups)), f2(row.DeliveredFrac), f2(row.GoodputMbps), f2(row.VsClean),
		})
		t.Metrics[fmt.Sprintf("loss_%g_delivered_frac", row.Rate)] = row.DeliveredFrac
	}
	t.Notes = append(t.Notes,
		"expectation (asserted in tests): delivered fraction ~= 1-p; rate-based clocking degrades linearly, no collapse")
	t.Telemetry = r.Telemetry
	return t
}

// RunScenario runs both degradation rigs under one named faults scenario
// (stbench -scenario) and reports the headline observables as metric/value
// rows. Unknown names panic; callers validate with faults.LookupScenario.
func RunScenario(sc Scale, name string) *Table {
	spec := faults.MustScenario(name)
	packets := sc.PacerTrain / 10
	if packets < 500 {
		packets = 500
	}

	var ps probeStats
	var psSnap, lossSnap *metrics.Snapshot
	var delivered, dups int64
	var last sim.Time
	forEach(sc.Workers, 2, func(i int) {
		if i == 0 {
			ps, psSnap = runProbeRig(sc, 200, spec)
		} else {
			delivered, dups, last, lossSnap = runLossTransfer(sc, 201, spec, packets)
		}
	})

	goodput := 0.0
	if last > 0 {
		goodput = float64(delivered) * 1448 * 8 / last.Seconds() / 1e6
	}
	deliveredFrac := float64(delivered) / float64(packets)

	t := &Table{
		Title:   fmt.Sprintf("Scenario %q — degradation summary", name),
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"probe delay mean (us)", f1(ps.MeanUS)},
			{"probe delay median (us)", f1(ps.MedianUS)},
			{"probe delay p99 (us)", f0(ps.P99US)},
			{"probe delay max (us)", f0(ps.MaxUS)},
			{"hardclock fire share", pct(ps.HardclockShare)},
			{"trigger checks starved", f0(float64(ps.Starved))},
			{"soft-timer check overhead", pct(ps.OverheadFrac)},
			{"intr jitter injected (ns)", f0(float64(ps.IntrJitterNS))},
			{"cpu perturbation (|ns|)", f0(float64(ps.CPUPerturbNS))},
			{"paced pkts sent", f0(float64(packets))},
			{"paced pkts delivered", f0(float64(delivered))},
			{"paced dup arrivals", f0(float64(dups))},
			{"delivered fraction", f2(deliveredFrac)},
			{"goodput (Mbps)", f2(goodput)},
		},
		Notes: []string{fmt.Sprintf(
			"spec: drop=%g dup=%g reorder=%g intr-jitter=%v coalesce=%g work-jitter=%g starve=%g budget=%s",
			spec.Drop, spec.Dup, spec.Reorder, spec.IntrJitterMax, spec.IntrCoalesce,
			spec.WorkJitter, spec.Starve, pct(spec.Budget()))},
		Metrics: map[string]float64{
			"probe_delay_mean_us": ps.MeanUS,
			"probe_delay_max_us":  ps.MaxUS,
			"delivered_frac":      deliveredFrac,
			"check_overhead_frac": ps.OverheadFrac,
		},
		Telemetry: mergeTelemetry([]*metrics.Snapshot{psSnap, lossSnap}),
	}
	return t
}
