package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The sharding contract on the hierarchical fabric: one fleet-hier row —
// leaf-spine topology, churning clients, multi-hop spine paths — produces
// the same measurements, merged telemetry, and merged Chrome trace on the
// legacy shared engine, a one-shard group, or one shard per leaf, serial
// or with a worker pool.
func TestFleetHierShardedMatchesLegacy(t *testing.T) {
	const n, salt, traceCap = 12, 881, 4096 // 12 clients -> 2 leaves
	run := func(shards, workers int) (FleetHierRow, []byte, []byte) {
		sc := tinyScale()
		sc.Shards = shards
		sc.Workers = workers
		row, snap, chrome := runFleetHierOpts(sc, salt, n, traceCap)
		row.WallMS = 0 // real time, the one legitimately mode-dependent field
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return row, sj, chrome
	}
	refRow, refSnap, refChrome := run(0, 0)
	if refRow.Probes == 0 || refRow.Completed == 0 {
		t.Fatalf("reference row is degenerate: %+v", refRow)
	}
	if refRow.Churns == 0 {
		t.Fatalf("no connection churn happened: %+v", refRow)
	}
	if refRow.SpineFwd == 0 {
		t.Fatalf("no traffic crossed the spine: %+v", refRow)
	}
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1", 1, 0},
		{"shards=2", 2, 0},
		{"shards=2/workers=2", 2, 2},
		{"shards=8", 8, 0}, // clamps to the 2-leaf count
	} {
		t.Run(c.name, func(t *testing.T) {
			row, snap, chrome := run(c.shards, c.workers)
			if row != refRow {
				t.Errorf("row diverged from legacy:\n got %+v\nwant %+v", row, refRow)
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("merged Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}

// The §3 delay bound on the hierarchical sweep: every host on the fabric —
// saturated server, churning clients, multi-hop paths — stays under
// hardclock period + 1 tick, asserted per machine.
func TestFleetHierDelayBoundPerHost(t *testing.T) {
	sc := tinyScale()
	sc.Shards = 4
	sc.FleetCounts = []int{4, 16}
	res := RunFleetHier(sc)
	for _, row := range res.Rows {
		if row.Probes == 0 {
			t.Fatalf("%d-client row fired no probes", row.Hosts)
		}
		if !row.BoundOK || row.WorstDelay > row.BoundUS {
			t.Fatalf("%d-client row: worst probe delay %.0fus exceeds bound %.0fus",
				row.Hosts, row.WorstDelay, row.BoundUS)
		}
		if row.Completed == 0 {
			t.Fatalf("%d-client row completed no responses", row.Hosts)
		}
	}
	// Per-host telemetry made it through the merge: spot-check facilities
	// at both ends of the member list.
	for _, name := range []string{"host.server", "host.client000", "host.client015"} {
		if res.Telemetry.Counters[name+".softtimer.fired"] == 0 {
			t.Fatalf("%s facility fired no events", name)
		}
	}
}
