package experiments

import (
	"softtimers/internal/httpserv"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// Fig2Row is one frequency point of Figures 2 and 3.
type Fig2Row struct {
	FreqKHz    int
	Throughput float64 // conn/s (Figure 2)
	Overhead   float64 // fractional throughput reduction (Figure 3)
	PerIntrUS  float64 // implied cost per interrupt in µs
}

// Fig2Result holds the hardware-timer overhead sweep.
type Fig2Result struct {
	Rows []Fig2Row
	// Base is the no-extra-timer throughput.
	Base float64
	// Telemetry is the merged per-testbed metrics snapshot.
	Telemetry *metrics.Snapshot
}

// RunFig2 measures Apache throughput while an additional hardware interval
// timer with a null handler interrupts at increasing frequency (Section
// 5.1, Figures 2 and 3). The paper finds overhead linear in frequency,
// ~4.45 µs per interrupt, 45% at 100 kHz.
func RunFig2(sc Scale) *Fig2Result {
	step := sc.FreqStepKHz
	if step <= 0 {
		step = 10
	}
	var freqs []int
	for khz := 0; khz <= 100; khz += step {
		freqs = append(freqs, khz)
	}
	// Each frequency point is an independent testbed; fan them across
	// sc.Workers goroutines and derive the overhead columns from the
	// khz=0 baseline afterwards.
	res := &Fig2Result{Rows: make([]Fig2Row, len(freqs))}
	snaps := make([]*metrics.Snapshot, len(freqs))
	forEach(sc.Workers, len(freqs), func(i int) {
		khz := freqs[i]
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed:   sc.Seed,
			Server: httpserv.Config{Kind: httpserv.Apache},
		})
		if khz > 0 {
			period := sim.Second / sim.Time(khz*1000)
			pit := tb.K.NewPIT(period, 0, nil) // null handler
			tb.Start()
			pit.Start()
		}
		r := tb.Run(sc.Warmup, sc.Measure)
		res.Rows[i] = Fig2Row{FreqKHz: khz, Throughput: r.Throughput}
		snaps[i] = tb.Metrics()
	})
	res.Telemetry = mergeTelemetry(snaps)
	res.Base = res.Rows[0].Throughput // freqs[0] is always 0 kHz
	for i := range res.Rows {
		row := &res.Rows[i]
		if row.FreqKHz > 0 && res.Base > 0 {
			row.Overhead = 1 - row.Throughput/res.Base
			row.PerIntrUS = row.Overhead / float64(row.FreqKHz*1000) * 1e6
		}
	}
	return res
}

// Table renders Figures 2 and 3 as one table.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:   "Figures 2 & 3 — Apache throughput vs. hardware timer interrupt frequency",
		Columns: []string{"freq (KHz)", "xput (conn/s)", "overhead", "us/interrupt"},
		Notes: []string{
			"paper: overhead grows linearly, ~4.45us per interrupt, ~45% at 100 KHz",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f0(float64(row.FreqKHz)), f0(row.Throughput), pct(row.Overhead), f2(row.PerIntrUS),
		})
	}
	if last := r.Rows[len(r.Rows)-1]; last.FreqKHz > 0 {
		t.Metrics = map[string]float64{
			"base_conn_per_s":     r.Base,
			"overhead_at_top_khz": last.Overhead,
			"us_per_interrupt":    last.PerIntrUS,
		}
	}
	t.Telemetry = r.Telemetry
	return t
}

// Sec52Result is the soft-timer base-overhead experiment (Section 5.2).
type Sec52Result struct {
	BaseThroughput float64
	SoftThroughput float64
	Overhead       float64 // fractional
	MeanFireUS     float64 // mean interval between soft event firings
	Fired          int64
	// Telemetry merges the baseline and soft-timer testbeds' snapshots.
	Telemetry *metrics.Snapshot
}

// RunSec52 schedules a maximal-frequency soft-timer event with a null
// handler on the busy Apache server. The paper: "The soft timer handler
// invocations caused no observable difference in the Web server's
// throughput... the event handler was called every 31.5 µs on average."
func RunSec52(sc Scale) *Sec52Result {
	var base, soft httpserv.Result
	var fired int64
	var firstFire, lastFire sim.Time
	// The baseline and soft-timer testbeds are independent machines; run
	// them concurrently when workers allow.
	snaps := make([]*metrics.Snapshot, 2)
	tasks := []func(){
		func() {
			tb := httpserv.NewTestbed(httpserv.TestbedConfig{
				Seed:   sc.Seed,
				Server: httpserv.Config{Kind: httpserv.Apache},
			})
			base = tb.Run(sc.Warmup, sc.Measure)
			snaps[0] = tb.Metrics()
		},
		func() {
			tb := httpserv.NewTestbed(httpserv.TestbedConfig{
				Seed:   sc.Seed,
				Server: httpserv.Config{Kind: httpserv.Apache},
			})
			var handler func(now sim.Time) sim.Time
			handler = func(now sim.Time) sim.Time {
				fired++
				if firstFire == 0 {
					firstFire = now
				}
				lastFire = now
				tb.F.ScheduleSoftEvent(0, handler) // maximal frequency: due at once
				return 0                           // null handler
			}
			tb.F.ScheduleSoftEvent(0, handler)
			soft = tb.Run(sc.Warmup, sc.Measure)
			snaps[1] = tb.Metrics()
		},
	}
	forEach(sc.Workers, len(tasks), func(i int) { tasks[i]() })

	res := &Sec52Result{
		BaseThroughput: base.Throughput,
		SoftThroughput: soft.Throughput,
		Overhead:       1 - soft.Throughput/base.Throughput,
		Fired:          fired,
		Telemetry:      mergeTelemetry(snaps),
	}
	if fired > 1 {
		res.MeanFireUS = (lastFire - firstFire).Micros() / float64(fired-1)
	}
	return res
}

// Table renders the Section 5.2 result.
func (r *Sec52Result) Table() *Table {
	return &Table{
		Title:   "Section 5.2 — soft timer base overhead (max-rate null event on busy Apache)",
		Columns: []string{"base xput", "soft-timer xput", "overhead", "mean fire interval (us)"},
		Rows: [][]string{{
			f0(r.BaseThroughput), f0(r.SoftThroughput), pct(r.Overhead), f1(r.MeanFireUS),
		}},
		Notes: []string{
			"paper: no observable throughput difference; handler called every 31.5us on average",
		},
		Metrics: map[string]float64{
			"overhead":              r.Overhead,
			"mean_fire_interval_us": r.MeanFireUS,
		},
		Telemetry: r.Telemetry,
	}
}
