package experiments

// Fleet-scale experiment: one saturated server and a growing fleet of
// client machines — each a full host with its own kernel, trigger states
// and soft-timer facility — on one switched LAN, all on a single shared
// engine. The paper's client machines were real FreeBSD hosts too; this
// sweep makes the multi-node claim measurable: the soft-timer delay bound
// (hardclock period + one measurement tick) must hold on every host in the
// topology, including nearly-idle clients whose CPUs halt between requests
// and therefore see almost no trigger states.

import (
	"bytes"
	"fmt"
	"time"

	"softtimers/internal/faults"
	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/topology"
)

// fleetCounts is the client-host sweep (1 → 64 machines).
var fleetCounts = []int{1, 2, 4, 8, 16, 32, 64}

// FleetRow is one fleet size's measurements.
type FleetRow struct {
	Hosts      int
	Throughput float64 // aggregate responses/s (server view)
	Completed  int64
	// Server CPU split over the measurement window.
	SrvBusy, SrvUser, SrvKernel, SrvIntr, SrvSoftIRQ float64
	// Client trigger-interval distribution: the per-host mean interval's
	// range across the fleet, µs.
	ClientTrigMinUS, ClientTrigMaxUS float64
	// Probe delay across every host (server included): N probes and the
	// worst observed delay, which the bound is asserted against.
	Probes     int64
	WorstDelay float64 // µs, max over hosts of softtimer.overshoot_max_us
	BoundUS    float64 // the per-host bound: hardclock period + 1 tick
	BoundOK    bool
	// WallMS is the real time the measure window took — the sharding
	// speedup metric. It is reported via Table.Metrics only (never in the
	// rendered table or telemetry, which stay byte-deterministic).
	WallMS float64 `json:"-"`
}

// FleetResult is the fleet-scale sweep.
type FleetResult struct {
	Rows      []FleetRow
	Shards    int // engines per row (0 = legacy single engine)
	Telemetry *metrics.Snapshot
	// Sync is the conservative-sync grant telemetry (sync.* instruments),
	// merged across rows under clientsNN. prefixes; nil on single-engine
	// runs. It is deliberately separate from Telemetry: workload telemetry
	// is byte-identical across shard counts by contract, sync telemetry
	// describes the execution substrate — but for a fixed configuration it
	// is still deterministic at any worker count (stbench -sync).
	Sync *metrics.Snapshot

	rowSync []*metrics.Snapshot // per row, nil when single-engine
}

// fleetProbe keeps one probe soft-timer event outstanding on a host,
// re-armed at random exponential gaps, exactly like the degradation probe
// rig — so DelayHist and the overshoot gauge are populated on hosts whose
// workload alone would schedule no soft timers.
// All three closures are created once per host: the steady-state cycle —
// engine timer fires, pooled soft event scheduled, handler re-arms —
// allocates nothing, which is what keeps large fleets' allocation volume
// flat (the fleet rows are the allocs/op regression guard's subject).
func fleetProbe(h *host.Host, rng *sim.RNG) {
	eng := h.Engine()
	var fire func()
	handler := func(now sim.Time) sim.Time {
		eng.After(rng.ExpTime(300*sim.Microsecond), fire)
		return 0
	}
	fire = func() { h.F.ScheduleSoftEventFree(probeT, handler) }
	eng.After(rng.ExpTime(300*sim.Microsecond), fire)
}

// runMeasured advances t by the measure window. With sc.Progress set it
// runs in eight chunks, reporting the label, virtual clock and fired-event
// count after each; RunFor composes, so chunking changes nothing but the
// callbacks.
func runMeasured(sc Scale, label string, t *topology.Topology, measure sim.Time) {
	if sc.Progress == nil {
		t.RunFor(measure)
		return
	}
	const chunks = 8
	step := measure / chunks
	var done sim.Time
	for i := 0; i < chunks-1 && step > 0; i++ {
		t.RunFor(step)
		done += step
		sc.Progress(label, t.Now(), t.Fired())
	}
	t.RunFor(measure - done)
	sc.Progress(label, t.Now(), t.Fired())
}

// runFleet builds and measures one fleet size: a server host and n client
// hosts joined by one switch, every machine probed for soft-timer delay.
func runFleet(sc Scale, salt uint64, n int) (FleetRow, *metrics.Snapshot) {
	row, snap, _, _ := runFleetCfg(sc, salt, n, fleetOpts{})
	return row, snap
}

// runFleetOpts is runFleet plus tracing (the property tests' entry point);
// see runFleetCfg for the full option set.
func runFleetOpts(sc Scale, salt uint64, n, traceCap int) (FleetRow, *metrics.Snapshot, []byte) {
	row, snap, _, chrome := runFleetCfg(sc, salt, n, fleetOpts{traceCap: traceCap})
	return row, snap, chrome
}

// fleetOpts widens runFleet for the property tests and ablations without
// threading more positional parameters around.
type fleetOpts struct {
	// traceCap > 0 attaches a per-host execution tracer of that capacity;
	// the merged Chrome trace comes back as the fourth return.
	traceCap int
	// scenario names a faults scenario applied to every host (each seeded
	// from (seed, name) like Spec builds, so placement cannot perturb the
	// fault streams); "" is the clean fleet.
	scenario string
}

// fnvName folds a host name into a 64-bit FNV-1a salt — the same fold
// topology Spec builds use — so per-host fault plans draw streams
// independent of host order and shard placement.
func fnvName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// assembleFleet builds the fleet workload on an already-constructed
// topology: the saturated server, n client machines on one switched LAN,
// and a soft-timer probe on every host. Shared verbatim between the
// measured run and the auto-placement profile pass, so the profile
// observes exactly the traffic the real run will carry.
func assembleFleet(t *topology.Topology, seed uint64, n int, scenario string) (*httpserv.Server, []*host.Host) {
	var fspec *faults.Spec
	if scenario != "" {
		s := faults.MustScenario(scenario)
		fspec = &s
	}
	hostCfg := func(name string, k kernel.Options) host.Config {
		cfg := host.Config{Name: name, Kernel: k}
		if fspec != nil {
			cfg.Faults = faults.New(seed^fnvName(name), *fspec)
		}
		return cfg
	}

	server := t.AddHost(hostCfg("server", kernel.Options{IdleLoop: true}))
	sw := t.AddSwitch("lan")
	t.Join(sw, server, nic.Config{Name: "eth0"}, topology.WireSpec{})
	srv := httpserv.NewServerMulti(server.K, server.F, server.NICs,
		httpserv.Config{Kind: httpserv.Flash})
	srv.Addr = t.Addr("server")

	// Client machines: idle-halting kernels (no idle trigger states — the
	// hard case for the delay bound), interrupt-mode NICs, a few request
	// processes each. Flow bases keep connection ids globally unique.
	clients := make([]*host.Host, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%02d", i)
		ch := t.AddHost(hostCfg(name, kernel.Options{}))
		port := t.Join(sw, ch, nic.Config{Name: "eth0"}, topology.WireSpec{})
		httpserv.NewClientHost(ch, port.NIC, httpserv.ClientHostConfig{
			Concurrency: 4,
			FlowBase:    (i + 1) * 1_000_000,
			Segments:    srv.Segments(),
			Addr:        t.Addr(name),
			ServerAddr:  t.Addr("server"),
			// Stagger connection starts so hundreds of machines don't SYN
			// the server in the same microsecond (which would pin it in
			// interrupt context across whole hardclock periods).
			StartDelay: sim.Time(i) * 100 * sim.Microsecond,
		})
		clients[i] = ch
	}

	// Probe every host from its own (seed, name)-derived stream — not the
	// engine's, whose fork order would depend on which engine the host
	// shares with whom.
	for _, h := range t.Hosts() {
		fleetProbe(h, h.Rand())
	}
	return srv, clients
}

// fleetAutoAssign is the auto-placement profile pass: replay the same
// fleet single-engine for a quarter warmup, then spread hosts over shards
// by observed traffic (topology.PlaceByTraffic). The profile is itself a
// deterministic simulation, so the placement — and with it the sharded
// round schedule — is a pure function of the scale, not of the machine.
func fleetAutoAssign(sc Scale, seed uint64, n, shards int, scenario string) func(int, string) int {
	t := topology.New(sim.NewEngineWithQueue(seed, sc.Queue))
	t.SetSeed(seed)
	srv, _ := assembleFleet(t, seed, n, scenario)
	t.Start()
	srv.Start()
	t.RunFor(sc.Warmup / 4)
	names := make([]string, 0, len(t.Hosts()))
	for _, h := range t.Hosts() {
		names = append(names, h.Name)
	}
	return topology.PlaceByTraffic(names, t.TrafficByHost(), shards)
}

// runFleetCfg is runFleet plus tracing, fault scenarios, and the sync
// telemetry return (see fleetOpts).
//
// sc.Shards > 0 runs the topology on that many conservative-sync engines
// (clamped to the host count). The default static placement gives the
// server shard 0 — so its construction-time RNG forks replay exactly as
// on the legacy shared engine, which is seeded identically — and
// round-robins clients across the rest; sc.Placement == PlacementAuto
// derives the assignment from a traffic profile instead. Lookahead mining
// is on unless sc.NoMining. None of these knobs change results — only
// wall clock and the sync snapshot.
func runFleetCfg(sc Scale, salt uint64, n int, opt fleetOpts) (FleetRow, *metrics.Snapshot, *metrics.Snapshot, []byte) {
	seed := sc.Seed + salt
	var t *topology.Topology
	if sc.Shards > 0 {
		shards := sc.Shards
		if shards > n+1 {
			shards = n + 1
		}
		g := sim.NewShardGroupWithQueue(shards, seed, sc.Queue)
		g.Workers = sc.Workers
		g.SetMining(!sc.NoMining)
		t = topology.NewSharded(g, seed)
		switch sc.Placement {
		case "", PlacementStatic:
			t.Assign = func(i int, name string) int {
				if i == 0 || shards == 1 {
					return 0
				}
				return 1 + (i-1)%(shards-1)
			}
		case PlacementAuto:
			t.Assign = fleetAutoAssign(sc, seed, n, shards, opt.scenario)
		default:
			panic(fmt.Sprintf("experiments: unknown placement %q", sc.Placement))
		}
	} else {
		t = topology.New(sim.NewEngineWithQueue(seed, sc.Queue))
		t.SetSeed(seed)
	}

	srv, clients := assembleFleet(t, seed, n, opt.scenario)
	server := t.Host("server")
	traceCap := opt.traceCap
	if traceCap > 0 {
		t.EnableTracing(traceCap)
	}
	t.Start()
	srv.Start()

	// Shorter windows than the single-rig experiments: event volume grows
	// with fleet size, and the sweep multiplies it again.
	warmup, measure := sc.Warmup/4, sc.Measure/4
	t.RunFor(warmup)
	c0 := srv.Completed
	a0 := server.K.Accounting()
	t0 := t.Now()
	wall0 := time.Now()
	runMeasured(sc, fmt.Sprintf("fleet-scale n=%d", n), t, measure)
	wallMS := float64(time.Since(wall0).Microseconds()) / 1000
	c1 := srv.Completed
	a1 := server.K.Accounting()
	elapsed := t.Now() - t0

	row := FleetRow{
		Hosts:      n,
		Completed:  c1 - c0,
		Throughput: float64(c1-c0) / elapsed.Seconds(),
		SrvBusy:    float64(a1.Busy()-a0.Busy()) / float64(elapsed),
		SrvUser:    float64(a1.User-a0.User) / float64(elapsed),
		SrvKernel:  float64(a1.Kernel-a0.Kernel) / float64(elapsed),
		SrvIntr:    float64(a1.Intr-a0.Intr) / float64(elapsed),
		SrvSoftIRQ: float64(a1.SoftIRQ-a0.SoftIRQ) / float64(elapsed),
		BoundUS:    hardclockPeriodUS + 1,
		WallMS:     wallMS,
	}
	for i, ch := range clients {
		m := ch.K.Meter().Hist.Mean()
		if i == 0 || m < row.ClientTrigMinUS {
			row.ClientTrigMinUS = m
		}
		if m > row.ClientTrigMaxUS {
			row.ClientTrigMaxUS = m
		}
	}
	// The delay bound must hold per host: check each machine's facility,
	// not a fleet-wide aggregate that could hide one bad kernel.
	row.BoundOK = true
	for _, h := range t.Hosts() {
		row.Probes += h.F.DelayHist.N()
		if d := float64(h.F.MaxDelayUS()); d > row.WorstDelay {
			row.WorstDelay = d
		}
		if float64(h.F.MaxDelayUS()) > row.BoundUS {
			row.BoundOK = false
		}
	}
	var chrome []byte
	if traceCap > 0 {
		var buf bytes.Buffer
		if err := t.WriteChrome(&buf); err != nil {
			panic(err)
		}
		chrome = buf.Bytes()
	}
	return row, t.Snapshot(), t.SyncSnapshot(), chrome
}

// RunFleetScale sweeps the client-host count (sc.FleetCounts, default
// 1..64). Rows are independent simulations seeded from (sc.Seed, row
// index), so they parallelize across sc.Workers — and shard internally
// across sc.Shards engines — with byte-identical output at any setting.
func RunFleetScale(sc Scale) *FleetResult {
	counts := sc.FleetCounts
	if counts == nil {
		counts = fleetCounts
	}
	rows := make([]FleetRow, len(counts))
	snaps := make([]*metrics.Snapshot, len(counts))
	syncs := make([]*metrics.Snapshot, len(counts))
	forEach(sc.Workers, len(counts), func(i int) {
		rows[i], snaps[i], syncs[i], _ = runFleetCfg(sc, 300+uint64(i), counts[i], fleetOpts{})
	})
	r := &FleetResult{Rows: rows, Shards: sc.Shards, Telemetry: mergeTelemetry(snaps), rowSync: syncs}
	prefixed := make([]*metrics.Snapshot, len(counts))
	for i, s := range syncs {
		if s != nil {
			prefixed[i] = s.Prefixed(fmt.Sprintf("clients%02d.", counts[i]))
		}
	}
	r.Sync = mergeTelemetry(prefixed)
	return r
}

// Table renders the fleet sweep.
func (r *FleetResult) Table() *Table {
	t := &Table{
		Title: "Fleet scale — one server, N real client kernels on a switched LAN",
		Columns: []string{"clients", "resp/s", "completed", "srv busy", "srv user",
			"srv kernel", "srv intr", "srv softirq", "client trig mean (us)",
			"probes", "worst d (us)", "bound (us)", "bound holds"},
		Metrics: map[string]float64{},
	}
	for i, row := range r.Rows {
		trig := fmt.Sprintf("%s..%s", f0(row.ClientTrigMinUS), f0(row.ClientTrigMaxUS))
		ok := "yes"
		if !row.BoundOK {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f0(float64(row.Hosts)), f0(row.Throughput), f0(float64(row.Completed)),
			pct(row.SrvBusy), pct(row.SrvUser), pct(row.SrvKernel),
			pct(row.SrvIntr), pct(row.SrvSoftIRQ), trig,
			f0(float64(row.Probes)), f0(row.WorstDelay), f0(row.BoundUS), ok,
		})
		key := fmt.Sprintf("fleet_%d", row.Hosts)
		t.Metrics[key+"_throughput"] = row.Throughput
		t.Metrics[key+"_worst_delay_us"] = row.WorstDelay
		t.Metrics[key+"_wall_ms"] = row.WallMS
		// Sync headline numbers ride the machine-readable -json record only
		// (like WallMS): they are deterministic per configuration but vary
		// with shard count by nature, so they stay out of the rendered
		// table and the -metrics telemetry, which diff across shard counts.
		if i < len(r.rowSync) && r.rowSync[i] != nil {
			s := r.rowSync[i]
			t.Metrics[key+"_sync_rounds"] = float64(s.Counters["sync.rounds"])
			t.Metrics[key+"_sync_messages"] = float64(s.Counters["sync.messages"])
			if h, ok := s.Histograms["sync.grant_width_us"]; ok && h.Count > 0 {
				t.Metrics[key+"_sync_grant_mean_us"] = h.Sum / float64(h.Count)
			}
			if h, ok := s.Histograms["sync.mined_gain_us"]; ok && h.Count > 0 {
				t.Metrics[key+"_sync_mined_gain_mean_us"] = h.Sum / float64(h.Count)
			}
		}
	}
	t.Notes = append(t.Notes,
		"every machine is a full host (own kernel, facility, probe); clients halt when idle, so their soft timers lean on the hardclock backstop",
		fmt.Sprintf("expectation (asserted in tests): worst probe delay <= hardclock period %gus + 1 tick on every host", float64(hardclockPeriodUS)))
	if r.Shards > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"sharded execution: each row ran on up to %d engines under conservative sync; tables, telemetry and traces are byte-identical to the single-engine path (wall time in -json metrics)", r.Shards))
	}
	t.Telemetry = r.Telemetry
	t.Sync = r.Sync
	return t
}
