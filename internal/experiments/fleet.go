package experiments

// Fleet-scale experiment: one saturated server and a growing fleet of
// client machines — each a full host with its own kernel, trigger states
// and soft-timer facility — on one switched LAN, all on a single shared
// engine. The paper's client machines were real FreeBSD hosts too; this
// sweep makes the multi-node claim measurable: the soft-timer delay bound
// (hardclock period + one measurement tick) must hold on every host in the
// topology, including nearly-idle clients whose CPUs halt between requests
// and therefore see almost no trigger states.

import (
	"bytes"
	"fmt"
	"time"

	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/topology"
)

// fleetCounts is the client-host sweep (1 → 64 machines).
var fleetCounts = []int{1, 2, 4, 8, 16, 32, 64}

// FleetRow is one fleet size's measurements.
type FleetRow struct {
	Hosts      int
	Throughput float64 // aggregate responses/s (server view)
	Completed  int64
	// Server CPU split over the measurement window.
	SrvBusy, SrvUser, SrvKernel, SrvIntr, SrvSoftIRQ float64
	// Client trigger-interval distribution: the per-host mean interval's
	// range across the fleet, µs.
	ClientTrigMinUS, ClientTrigMaxUS float64
	// Probe delay across every host (server included): N probes and the
	// worst observed delay, which the bound is asserted against.
	Probes     int64
	WorstDelay float64 // µs, max over hosts of softtimer.overshoot_max_us
	BoundUS    float64 // the per-host bound: hardclock period + 1 tick
	BoundOK    bool
	// WallMS is the real time the measure window took — the sharding
	// speedup metric. It is reported via Table.Metrics only (never in the
	// rendered table or telemetry, which stay byte-deterministic).
	WallMS float64 `json:"-"`
}

// FleetResult is the fleet-scale sweep.
type FleetResult struct {
	Rows      []FleetRow
	Shards    int // engines per row (0 = legacy single engine)
	Telemetry *metrics.Snapshot
}

// fleetProbe keeps one probe soft-timer event outstanding on a host,
// re-armed at random exponential gaps, exactly like the degradation probe
// rig — so DelayHist and the overshoot gauge are populated on hosts whose
// workload alone would schedule no soft timers.
// All three closures are created once per host: the steady-state cycle —
// engine timer fires, pooled soft event scheduled, handler re-arms —
// allocates nothing, which is what keeps large fleets' allocation volume
// flat (the fleet rows are the allocs/op regression guard's subject).
func fleetProbe(h *host.Host, rng *sim.RNG) {
	eng := h.Engine()
	var fire func()
	handler := func(now sim.Time) sim.Time {
		eng.After(rng.ExpTime(300*sim.Microsecond), fire)
		return 0
	}
	fire = func() { h.F.ScheduleSoftEventFree(probeT, handler) }
	eng.After(rng.ExpTime(300*sim.Microsecond), fire)
}

// runMeasured advances t by the measure window. With sc.Progress set it
// runs in eight chunks, reporting the label, virtual clock and fired-event
// count after each; RunFor composes, so chunking changes nothing but the
// callbacks.
func runMeasured(sc Scale, label string, t *topology.Topology, measure sim.Time) {
	if sc.Progress == nil {
		t.RunFor(measure)
		return
	}
	const chunks = 8
	step := measure / chunks
	var done sim.Time
	for i := 0; i < chunks-1 && step > 0; i++ {
		t.RunFor(step)
		done += step
		sc.Progress(label, t.Now(), t.Fired())
	}
	t.RunFor(measure - done)
	sc.Progress(label, t.Now(), t.Fired())
}

// runFleet builds and measures one fleet size: a server host and n client
// hosts joined by one switch, every machine probed for soft-timer delay.
func runFleet(sc Scale, salt uint64, n int) (FleetRow, *metrics.Snapshot) {
	row, snap, _ := runFleetOpts(sc, salt, n, 0)
	return row, snap
}

// runFleetOpts is runFleet plus tracing: traceCap > 0 attaches a per-host
// execution tracer of that capacity and returns the merged Chrome trace —
// the byte-equivalence witness for the sharded/legacy property tests.
//
// sc.Shards > 0 runs the topology on that many conservative-sync engines
// (clamped to the host count): the server owns shard 0 — so its
// construction-time RNG forks replay exactly as on the legacy shared
// engine, which is seeded identically — and clients round-robin the rest.
func runFleetOpts(sc Scale, salt uint64, n, traceCap int) (FleetRow, *metrics.Snapshot, []byte) {
	seed := sc.Seed + salt
	var t *topology.Topology
	if sc.Shards > 0 {
		shards := sc.Shards
		if shards > n+1 {
			shards = n + 1
		}
		g := sim.NewShardGroupWithQueue(shards, seed, sc.Queue)
		g.Workers = sc.Workers
		t = topology.NewSharded(g, seed)
		t.Assign = func(i int, name string) int {
			if i == 0 || shards == 1 {
				return 0
			}
			return 1 + (i-1)%(shards-1)
		}
	} else {
		t = topology.New(sim.NewEngineWithQueue(seed, sc.Queue))
		t.SetSeed(seed)
	}

	server := t.AddHost(host.Config{
		Name:   "server",
		Kernel: kernel.Options{IdleLoop: true},
	})
	sw := t.AddSwitch("lan")
	t.Join(sw, server, nic.Config{Name: "eth0"}, topology.WireSpec{})
	srv := httpserv.NewServerMulti(server.K, server.F, server.NICs,
		httpserv.Config{Kind: httpserv.Flash})
	srv.Addr = t.Addr("server")

	// Client machines: idle-halting kernels (no idle trigger states — the
	// hard case for the delay bound), interrupt-mode NICs, a few request
	// processes each. Flow bases keep connection ids globally unique.
	clients := make([]*host.Host, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%02d", i)
		ch := t.AddHost(host.Config{Name: name})
		port := t.Join(sw, ch, nic.Config{Name: "eth0"}, topology.WireSpec{})
		httpserv.NewClientHost(ch, port.NIC, httpserv.ClientHostConfig{
			Concurrency: 4,
			FlowBase:    (i + 1) * 1_000_000,
			Segments:    srv.Segments(),
			Addr:        t.Addr(name),
			ServerAddr:  t.Addr("server"),
			// Stagger connection starts so hundreds of machines don't SYN
			// the server in the same microsecond (which would pin it in
			// interrupt context across whole hardclock periods).
			StartDelay: sim.Time(i) * 100 * sim.Microsecond,
		})
		clients[i] = ch
	}

	// Probe every host from its own (seed, name)-derived stream — not the
	// engine's, whose fork order would depend on which engine the host
	// shares with whom.
	for _, h := range t.Hosts() {
		fleetProbe(h, h.Rand())
	}

	if traceCap > 0 {
		t.EnableTracing(traceCap)
	}
	t.Start()
	srv.Start()

	// Shorter windows than the single-rig experiments: event volume grows
	// with fleet size, and the sweep multiplies it again.
	warmup, measure := sc.Warmup/4, sc.Measure/4
	t.RunFor(warmup)
	c0 := srv.Completed
	a0 := server.K.Accounting()
	t0 := t.Now()
	wall0 := time.Now()
	runMeasured(sc, fmt.Sprintf("fleet-scale n=%d", n), t, measure)
	wallMS := float64(time.Since(wall0).Microseconds()) / 1000
	c1 := srv.Completed
	a1 := server.K.Accounting()
	elapsed := t.Now() - t0

	row := FleetRow{
		Hosts:      n,
		Completed:  c1 - c0,
		Throughput: float64(c1-c0) / elapsed.Seconds(),
		SrvBusy:    float64(a1.Busy()-a0.Busy()) / float64(elapsed),
		SrvUser:    float64(a1.User-a0.User) / float64(elapsed),
		SrvKernel:  float64(a1.Kernel-a0.Kernel) / float64(elapsed),
		SrvIntr:    float64(a1.Intr-a0.Intr) / float64(elapsed),
		SrvSoftIRQ: float64(a1.SoftIRQ-a0.SoftIRQ) / float64(elapsed),
		BoundUS:    hardclockPeriodUS + 1,
		WallMS:     wallMS,
	}
	for i, ch := range clients {
		m := ch.K.Meter().Hist.Mean()
		if i == 0 || m < row.ClientTrigMinUS {
			row.ClientTrigMinUS = m
		}
		if m > row.ClientTrigMaxUS {
			row.ClientTrigMaxUS = m
		}
	}
	// The delay bound must hold per host: check each machine's facility,
	// not a fleet-wide aggregate that could hide one bad kernel.
	row.BoundOK = true
	for _, h := range t.Hosts() {
		row.Probes += h.F.DelayHist.N()
		if d := float64(h.F.MaxDelayUS()); d > row.WorstDelay {
			row.WorstDelay = d
		}
		if float64(h.F.MaxDelayUS()) > row.BoundUS {
			row.BoundOK = false
		}
	}
	var chrome []byte
	if traceCap > 0 {
		var buf bytes.Buffer
		if err := t.WriteChrome(&buf); err != nil {
			panic(err)
		}
		chrome = buf.Bytes()
	}
	return row, t.Snapshot(), chrome
}

// RunFleetScale sweeps the client-host count (sc.FleetCounts, default
// 1..64). Rows are independent simulations seeded from (sc.Seed, row
// index), so they parallelize across sc.Workers — and shard internally
// across sc.Shards engines — with byte-identical output at any setting.
func RunFleetScale(sc Scale) *FleetResult {
	counts := sc.FleetCounts
	if counts == nil {
		counts = fleetCounts
	}
	rows := make([]FleetRow, len(counts))
	snaps := make([]*metrics.Snapshot, len(counts))
	forEach(sc.Workers, len(counts), func(i int) {
		rows[i], snaps[i] = runFleet(sc, 300+uint64(i), counts[i])
	})
	return &FleetResult{Rows: rows, Shards: sc.Shards, Telemetry: mergeTelemetry(snaps)}
}

// Table renders the fleet sweep.
func (r *FleetResult) Table() *Table {
	t := &Table{
		Title: "Fleet scale — one server, N real client kernels on a switched LAN",
		Columns: []string{"clients", "resp/s", "completed", "srv busy", "srv user",
			"srv kernel", "srv intr", "srv softirq", "client trig mean (us)",
			"probes", "worst d (us)", "bound (us)", "bound holds"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		trig := fmt.Sprintf("%s..%s", f0(row.ClientTrigMinUS), f0(row.ClientTrigMaxUS))
		ok := "yes"
		if !row.BoundOK {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f0(float64(row.Hosts)), f0(row.Throughput), f0(float64(row.Completed)),
			pct(row.SrvBusy), pct(row.SrvUser), pct(row.SrvKernel),
			pct(row.SrvIntr), pct(row.SrvSoftIRQ), trig,
			f0(float64(row.Probes)), f0(row.WorstDelay), f0(row.BoundUS), ok,
		})
		key := fmt.Sprintf("fleet_%d", row.Hosts)
		t.Metrics[key+"_throughput"] = row.Throughput
		t.Metrics[key+"_worst_delay_us"] = row.WorstDelay
		t.Metrics[key+"_wall_ms"] = row.WallMS
	}
	t.Notes = append(t.Notes,
		"every machine is a full host (own kernel, facility, probe); clients halt when idle, so their soft timers lean on the hardclock backstop",
		fmt.Sprintf("expectation (asserted in tests): worst probe delay <= hardclock period %gus + 1 tick on every host", float64(hardclockPeriodUS)))
	if r.Shards > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"sharded execution: each row ran on up to %d engines under conservative sync; tables, telemetry and traces are byte-identical to the single-engine path (wall time in -json metrics)", r.Shards))
	}
	t.Telemetry = r.Telemetry
	return t
}
