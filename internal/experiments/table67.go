package experiments

import (
	"fmt"

	"softtimers/internal/metrics"
	"softtimers/internal/netstack"
	"softtimers/internal/sim"
	"softtimers/internal/tcp"
)

// WANRow is one transfer size of Tables 6/7.
type WANRow struct {
	Packets       int64
	RegXputMbps   float64
	RegRespMS     float64
	PacedXputMbps float64
	PacedRespMS   float64
	RespReduction float64 // fraction
}

// Table renders Table 6 or 7.
func (r *WANResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Table %s — rate-based clocking network performance (bottleneck %d Mbps, RTT %.0f ms)",
			map[int64]string{50: "6", 100: "7"}[r.BottleneckMbps], r.BottleneckMbps, r.RTTMS),
		Columns: []string{"size (pkts)", "TCP xput (Mbps)", "TCP resp (ms)",
			"paced xput (Mbps)", "paced resp (ms)", "reduction"},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Packets),
			f2(row.RegXputMbps), f1(row.RegRespMS),
			f2(row.PacedXputMbps), f1(row.PacedRespMS), pct(row.RespReduction),
		})
		t.Metrics[fmt.Sprintf("resp_reduction_%dpkt", row.Packets)] = row.RespReduction
	}
	t.Notes = append(t.Notes,
		"paper @50Mbps: 5pkt 496->101ms (79%), 100pkt 1145->124ms (89%), 100k pkt 25432->24863ms (2%)",
		"paper @100Mbps: 100pkt 1056->112ms (89%), 100k pkt 14235->12601ms (11%)")
	t.Telemetry = r.Telemetry
	return t
}

// WANResult reproduces Table 6 (50 Mbps) or Table 7 (100 Mbps).
type WANResult struct {
	BottleneckMbps int64
	RTTMS          float64
	Rows           []WANRow
	// Telemetry merges every transfer's metrics snapshot. The WAN runs
	// have no simulated kernel, so each transfer uses a standalone
	// registry holding the TCP endpoint and emulator link instruments.
	Telemetry *metrics.Snapshot
}

// RunWAN measures HTTP-like transfers over the laboratory WAN emulator
// (Section 5.8): bottleneck 50 or 100 Mbps, RTT 100 ms, transfer sizes in
// 1448-byte packets; regular slow-starting TCP versus rate-based clocking
// at the bottleneck rate using soft timers. Paper: response-time
// reductions of 2–89%, largest for medium (100-packet) transfers.
func RunWAN(sc Scale, bottleneckMbps int64) *WANResult {
	// Every (transfer size, regular|paced) pair is its own engine and WAN
	// emulator: 2N independent transfers, fanned across sc.Workers.
	sizes := sc.WANTransfers
	resps := make([]sim.Time, 2*len(sizes))
	snaps := make([]*metrics.Snapshot, 2*len(sizes))
	forEach(sc.Workers, len(resps), func(i int) {
		resps[i], snaps[i] = runWANTransfer(sc, bottleneckMbps, sizes[i/2], i%2 == 1)
	})
	res := &WANResult{BottleneckMbps: bottleneckMbps, RTTMS: 100, Telemetry: mergeTelemetry(snaps)}
	for i, n := range sizes {
		reg, paced := resps[2*i], resps[2*i+1]
		row := WANRow{
			Packets:       n,
			RegRespMS:     reg.Millis(),
			PacedRespMS:   paced.Millis(),
			RegXputMbps:   xputMbps(n, reg),
			PacedXputMbps: xputMbps(n, paced),
		}
		if reg > 0 {
			row.RespReduction = 1 - float64(paced)/float64(reg)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func xputMbps(packets int64, resp sim.Time) float64 {
	if resp <= 0 {
		return 0
	}
	return float64(packets) * 1448 * 8 / resp.Seconds() / 1e6
}

// dispatcher is a mutable endpoint, letting the WAN emulator be wired
// before the protocol endpoints exist.
type dispatcher struct{ fn func(p *netstack.Packet) }

func (d *dispatcher) Deliver(p *netstack.Packet) {
	if d.fn != nil {
		d.fn(p)
	}
}

// runWANTransfer performs one request/response exchange and returns the
// response time — from the client's request transmission to its reception
// of the final data segment — plus the transfer's telemetry snapshot. A
// persistent connection is assumed established (no handshake), matching
// the paper's setup.
func runWANTransfer(sc Scale, bottleneckMbps, packets int64, paced bool) (sim.Time, *metrics.Snapshot) {
	eng := sim.NewEngine(sc.Seed + uint64(packets))
	cfg := tcp.DefaultConfig()

	serverIn := &dispatcher{}
	clientIn := &dispatcher{}
	// Side A is the server, side B the client: AtoB carries response
	// data, BtoA carries the request and ACKs.
	wan := netstack.NewWANEmulator(eng, 100_000_000, bottleneckMbps*1_000_000,
		100*sim.Millisecond, serverIn, clientIn)

	sndEnv := &tcp.EngineEnv{Eng: eng, Out: wan.AtoB}
	rcvEnv := &tcp.EngineEnv{Eng: eng, Out: wan.BtoA}
	snd := tcp.NewSender(sndEnv, cfg, 1, packets, paced)
	rcv := tcp.NewReceiver(rcvEnv, cfg, 1)
	rcv.Expected = packets

	// No kernel in the WAN rigs — a standalone registry carries the TCP
	// and link instruments for the -metrics dump.
	reg := metrics.NewRegistry()
	snd.RegisterMetrics(reg)
	rcv.RegisterMetrics(reg)
	wan.AtoB.RegisterMetrics(reg)
	wan.BtoA.RegisterMetrics(reg)

	var done sim.Time
	rcv.OnComplete = func(now sim.Time) { done = now }
	clientIn.fn = func(p *netstack.Packet) {
		if p.Kind == netstack.Data {
			rcv.HandleData(p)
		}
	}

	if paced {
		// Rate-based clocking at the known bottleneck capacity: one
		// 1500-byte packet per 1500*8/bw seconds (240 µs at 50 Mbps,
		// 120 µs at 100 Mbps), skipping slow start entirely. The server
		// is otherwise unloaded, so soft-timer events fire with
		// idle-loop precision; the pacing here models that directly.
		interval := sim.Time(int64(cfg.WireSize(cfg.MSS)) * 8 * int64(sim.Second) /
			(bottleneckMbps * 1_000_000))
		var tick func()
		tick = func() {
			if _, more := snd.PacedSendOne(eng.Now()); more {
				eng.After(interval, tick)
			}
		}
		started := false
		serverIn.fn = func(p *netstack.Packet) {
			if p.Kind == netstack.Request && !started {
				started = true
				eng.After(interval, tick)
			}
		}
	} else {
		serverIn.fn = func(p *netstack.Packet) {
			switch p.Kind {
			case netstack.Request:
				snd.Start()
			case netstack.Ack:
				snd.HandleAck(p)
			}
		}
	}

	// The client sends the request at t=0.
	wan.BtoA.Send(&netstack.Packet{Flow: 1, Kind: netstack.Request, Size: cfg.WireSize(300)})

	eng.RunUntil(600 * sim.Second)
	if done == 0 {
		panic(fmt.Sprintf("experiments: WAN transfer of %d packets never completed", packets))
	}
	return done, reg.Snapshot()
}
