package experiments

import (
	"softtimers/internal/cpu"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/workloads"
)

// DelayDistResult reproduces Section 3/5.3's characterization of the soft
// timer delay variable d = actual latency − T: with a conventional timer d
// is uniform over [0, X+1] (mean ~500 µs at 1 kHz); with soft timers its
// distribution follows the trigger-interval residuals — for the worst
// measured workload, mean 31.6 µs, median 18 µs, heavily skewed low.
type DelayDistResult struct {
	MeanUS        float64
	MedianUS      float64
	P99US         float64
	MaxUS         float64
	CDF           []stats.CDFPoint
	N             int64
	UniformMeanUS float64 // the conventional-timer comparison point
}

// RunDelayDist schedules events with random latencies at random times over
// the busy Apache workload (the worst-case trigger stream) and measures d.
func RunDelayDist(sc Scale) *DelayDistResult {
	d, err := workloads.ByName("ST-Apache")
	if err != nil {
		panic(err)
	}
	rig := d.Make(sc.Seed, cpu.PentiumII300())
	rig.Eng.RunFor(sc.Warmup)
	rng := rig.Eng.Rand().Fork()
	n := sc.Samples / 40
	if n < 500 {
		n = 500
	}
	// Schedule one event at a time at a random offset with a random T,
	// so samples are independent draws of d.
	var scheduleNext func()
	remaining := n
	scheduleNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		gap := rng.ExpTime(200 * sim.Microsecond)
		rig.Eng.After(gap, func() {
			T := uint64(rng.Intn(400))
			rig.F.ScheduleSoftEvent(T, func(now sim.Time) sim.Time {
				scheduleNext()
				return 0
			})
		})
	}
	scheduleNext()
	deadline := rig.Eng.Now() + 600*sim.Second
	for rig.F.DelayHist.N() < n && rig.Eng.Now() < deadline {
		rig.Eng.RunFor(50 * sim.Millisecond)
	}
	h := rig.F.DelayHist
	return &DelayDistResult{
		MeanUS:   h.Mean(),
		MedianUS: h.Quantile(0.5),
		P99US:    h.Quantile(0.99),
		MaxUS:    h.Quantile(1),
		CDF:      h.CDF(200),
		N:        h.N(),
		// Conventional timer at the same 1 kHz backup: d uniform over
		// [0, 1 ms], mean 500 µs.
		UniformMeanUS: 500,
	}
}

// Table renders the delay distribution summary.
func (r *DelayDistResult) Table() *Table {
	return &Table{
		Title: "Section 3/5.3 — soft-timer delay d beyond scheduled latency (ST-Apache, random events)",
		Columns: []string{"samples", "mean (us)", "median (us)", "p99 (us)", "max (us)",
			"conventional-timer mean"},
		Rows: [][]string{{
			f0(float64(r.N)), f2(r.MeanUS), f1(r.MedianUS), f0(r.P99US), f0(r.MaxUS),
			f0(r.UniformMeanUS),
		}},
		Notes: []string{
			"paper: worst-case d has mean 31.6us, median 18us, heavily skewed low;",
			"a conventional 1kHz timer facility would give d uniform on [0,1ms], mean ~500us",
		},
		Metrics: map[string]float64{
			"delay_mean_us":   r.MeanUS,
			"delay_median_us": r.MedianUS,
		},
	}
}
