// Package experiments contains one driver per figure and table of the
// paper's evaluation (Section 5). Each driver assembles the relevant
// workload on the simulated substrate, runs it, and returns a typed result
// that renders as a paper-style table annotated with the paper's reported
// values, so paper-vs-measured comparison is immediate.
//
// Drivers take a Scale: FullScale reproduces the paper's sample counts and
// run lengths; QuickScale runs the same experiments at reduced size for
// tests and quick iteration.
package experiments

import (
	"fmt"
	"strings"

	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// Scale controls experiment size.
type Scale struct {
	// Seed makes every run deterministic.
	Seed uint64
	// Samples is the trigger-interval sample count for the distribution
	// experiments (the paper took 2 million per workload).
	Samples int64
	// Warmup and Measure bound the throughput experiments.
	Warmup, Measure sim.Time
	// PacerTrain is the packet-train length for the transmission-process
	// statistics (Tables 4 and 5).
	PacerTrain int64
	// WANTransfers are the transfer sizes, in 1448-byte packets, for the
	// WAN experiments (Tables 6 and 7).
	WANTransfers []int64
	// FreqStepKHz is the frequency step for Figures 2 and 3.
	FreqStepKHz int
	// Workers bounds row-level parallelism inside drivers: independent
	// sweep rows (frequency points, workloads, transfer sizes, quota
	// settings) run on up to Workers goroutines, each with its own
	// engine. 0 or 1 runs rows serially. Results are assembled in index
	// order, so output is identical at any setting.
	Workers int
	// Shards, when > 0, runs each fleet-scale row on a conservative-sync
	// shard group of that many engines (clamped to the row's host count)
	// instead of one shared engine; it also sizes the group's worker pool
	// from Workers. 0 keeps the legacy single-engine path. Merged
	// telemetry, tables and traces are identical at any setting — sharding
	// is purely a wall-clock knob.
	Shards int
	// FleetCounts overrides the fleet-scale client-count sweep (nil uses
	// the default 1..64 doubling).
	FleetCounts []int
	// NoMining disables pacing-aware lookahead mining in the sharded
	// executor (stbench -mining=false). Mining is on by default: round
	// grants are raised from each shard's earliest pending event instead
	// of its committed clock (sim.ShardGroup.SetMining). Like Shards and
	// Workers it never changes results — only wall clock, round counts,
	// and the sync.* grant telemetry.
	NoMining bool
	// Placement selects how fleet hosts map onto shards (stbench
	// -placement): "" or PlacementStatic is the fixed server-on-shard-0
	// round-robin; PlacementAuto derives the assignment from a
	// deterministic traffic-profile pass (topology.AutoPlace's strategy).
	// Results are identical under any placement.
	Placement string
	// Queue selects the engine event-queue backend for the fleet
	// experiments (stbench -queue). The zero value is the default binary
	// heap. Like Shards/Workers, the choice is invisible in results —
	// every backend pops events in identical order, so telemetry, tables
	// and traces are byte-identical (make queue-smoke asserts it) — it
	// only moves queue-maintenance cost.
	Queue sim.QueueKind
	// Clock selects the engine clock driver (stbench -clock). The zero
	// value (ClockSim) is deterministic virtual time. ClockRealTime is
	// accepted only by the emulation experiments (RequiresRealTime);
	// every other driver is part of the reproducibility contract and
	// stbench rejects the combination up front.
	Clock sim.ClockKind
	// Progress, when non-nil, receives periodic callbacks from
	// long-running drivers: a row label, the row's virtual clock, and
	// engine events fired so far. Drivers chunk their measurement runs to
	// report it; chunking never changes results (RunFor composes), so
	// telemetry and tables are byte-identical with Progress on or off.
	// Never serialized (stbench keeps it out of -json output).
	Progress func(label string, virtual sim.Time, fired uint64) `json:"-"`
}

// Placement values for Scale.Placement (stbench -placement).
const (
	PlacementStatic = "static"
	PlacementAuto   = "auto"
)

// FullScale reproduces the paper's experiment sizes, and pushes the fleet
// sweep past them (256- and 1024-host rows) to exercise scales only the
// sharded engine makes affordable.
func FullScale() Scale {
	return Scale{
		Seed:         1,
		Samples:      2_000_000,
		Warmup:       2 * sim.Second,
		Measure:      10 * sim.Second,
		PacerTrain:   100_000,
		WANTransfers: []int64{5, 100, 1000, 10000, 100000},
		FreqStepKHz:  10,
		FleetCounts:  []int{1, 2, 4, 8, 16, 32, 64, 256, 1024},
	}
}

// QuickScale shrinks everything for fast tests; shapes still hold.
func QuickScale() Scale {
	return Scale{
		Seed:         1,
		Samples:      150_000,
		Warmup:       sim.Second,
		Measure:      2 * sim.Second,
		PacerTrain:   20_000,
		WANTransfers: []int64{5, 100, 1000},
		FreqStepKHz:  25,
	}
}

// SmokeScale is the CI smoke size: a minimal fleet sweep whose telemetry
// the shard-smoke target diffs across shard counts in seconds. The
// 64-host row matters: it saturates the server so same-instant arrivals
// are routine, the regime where a broken same-instant ordering rule
// diverges (tiny fleets pass by luck).
func SmokeScale() Scale {
	sc := QuickScale()
	sc.Warmup = sc.Warmup / 2
	sc.Measure = sc.Measure / 2
	sc.FleetCounts = []int{1, 8, 64}
	return sc
}

// Table is a generic rendered result: a title, column headers, and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-comparison remarks.
	Notes []string
	// Metrics carries the experiment's headline quantities in
	// machine-readable form for the -json perf-trajectory record. Keys
	// are stable snake_case names; not rendered in the text table.
	Metrics map[string]float64
	// Telemetry, when non-nil, is the experiment's full metrics snapshot:
	// every row's per-simulation registry snapshot merged in row-index
	// order, so it is identical at any Workers setting. Dumped by
	// stbench -metrics; not rendered in the text table.
	Telemetry *metrics.Snapshot
	// Series, when non-nil, carries virtual-time series snapshots under
	// stable keys (e.g. "clients08.fleet"). Dumped by stbench -series; not
	// rendered in the text table.
	Series map[string]*metrics.SeriesSnapshot
	// Sync, when non-nil, is the sharded executor's grant-utilization
	// telemetry (sync.* instruments, per-row prefixed). Kept separate from
	// Telemetry because it describes the execution substrate — it varies
	// with the shard count and mining/placement knobs by design, while
	// Telemetry is byte-identical across them. For a fixed configuration
	// it is still deterministic at any Workers setting. Dumped by stbench
	// -sync; not rendered in the text table.
	Sync *metrics.Snapshot
}

// mergeTelemetry folds per-row registry snapshots in slice (row-index)
// order into one experiment-wide snapshot. Nil rows are skipped, and a nil
// result means no row produced telemetry.
func mergeTelemetry(snaps []*metrics.Snapshot) *metrics.Snapshot {
	var out *metrics.Snapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if out == nil {
			out = metrics.NewSnapshot()
		}
		out.Merge(s)
	}
	return out
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f1 formats a float with one decimal; f2 with two; f0 as integer.
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
