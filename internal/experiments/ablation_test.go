package experiments

import (
	"math"
	"testing"
)

func TestWheelAblationVariantsAgree(t *testing.T) {
	sc := QuickScale()
	res := RunWheelAblation(sc)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	hashed, hier := res.Rows[0], res.Rows[1]
	if hashed.Structure != "hashed" || hier.Structure != "hierarchical" {
		t.Fatalf("structures = %q/%q", hashed.Structure, hier.Structure)
	}
	// Identical seed + identical semantics => near-identical behaviour
	// regardless of timer structure.
	if math.Abs(hashed.Throughput-hier.Throughput)/hashed.Throughput > 0.02 {
		t.Errorf("throughput diverges: %.0f vs %.0f", hashed.Throughput, hier.Throughput)
	}
	if math.Abs(hashed.MeanDelayUS-hier.MeanDelayUS) > 5 {
		t.Errorf("delay diverges: %.1f vs %.1f us", hashed.MeanDelayUS, hier.MeanDelayUS)
	}
	if hashed.Fired == 0 || hier.Fired == 0 {
		t.Error("no events fired")
	}
	_ = res.Table().Render()
}

func TestIdleAblationPolicies(t *testing.T) {
	res := RunIdleAblation(QuickScale())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]IdleAblationRow{}
	for _, r := range res.Rows {
		byName[r.Policy] = r
	}
	spin, quiet, halt := byName["spin"], byName["halt-when-quiet"], byName["halt-always"]
	// Spinning and halt-when-quiet both deliver ~µs precision for a
	// pending 50us event; halt-always degrades toward the 1ms tick.
	if spin.MeanDelayUS > 10 {
		t.Errorf("spin delay = %.1fus, want small", spin.MeanDelayUS)
	}
	if quiet.MeanDelayUS > 10 {
		t.Errorf("halt-when-quiet delay = %.1fus, want small (event always pending)", quiet.MeanDelayUS)
	}
	if halt.MeanDelayUS < 100 {
		t.Errorf("halt-always delay = %.1fus, want degraded toward 1ms tick", halt.MeanDelayUS)
	}
	if spin.IdlePolls == 0 {
		t.Error("spin policy recorded no idle polls")
	}
	_ = res.Table().Render()
}

func TestPollutionAblationShowsLocalityDominates(t *testing.T) {
	res := RunPollutionAblation(QuickScale())
	// The pollution model must account for a large share of the
	// hardware-timer overhead on the cache-sensitive server.
	if res.HWOverheadWith <= res.HWOverheadWithout {
		t.Fatalf("pollution did not increase HW overhead: %.1f%% vs %.1f%%",
			res.HWOverheadWith*100, res.HWOverheadWithout*100)
	}
	share := (res.HWOverheadWith - res.HWOverheadWithout) / res.HWOverheadWith
	if share < 0.3 {
		t.Errorf("pollution share of HW overhead = %.0f%%, want dominant-ish", share*100)
	}
	_ = res.Table().Render()
}

func TestUsefulRangeWidensWithCPUSpeed(t *testing.T) {
	sc := QuickScale()
	sc.Samples = 100_000
	res := RunUsefulRange(sc)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	pii, xeon := res.Rows[0], res.Rows[1]
	// Trigger interval shrinks with CPU speed...
	if xeon.TriggerMeanUS >= pii.TriggerMeanUS {
		t.Errorf("Xeon trigger mean %.1f not below PII's %.1f",
			xeon.TriggerMeanUS, pii.TriggerMeanUS)
	}
	// ...while the hardware floor barely moves (interrupt cost constant).
	if math.Abs(xeon.HWFloorUS-pii.HWFloorUS)/pii.HWFloorUS > 0.1 {
		t.Errorf("HW floor moved: %.1f vs %.1f", xeon.HWFloorUS, pii.HWFloorUS)
	}
	// Net: the useful range widens — the paper's Section 5.10 claim.
	if xeon.HWFloorUS/xeon.TriggerMeanUS <= pii.HWFloorUS/pii.TriggerMeanUS {
		t.Error("useful range did not widen on the faster CPU")
	}
	_ = res.Table().Render()
}
