package experiments

import (
	"fmt"
	"strings"

	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/sim"
	"softtimers/internal/workloads"
)

// This file holds ablation experiments for the reproduction's own design
// choices (not paper figures): the timer data structure, the idle-loop
// policy, and the locality (pollution) model. They quantify how much each
// mechanism contributes to the headline results.

// WheelAblationRow compares timer structures under the same workload.
type WheelAblationRow struct {
	Structure   string
	Throughput  float64
	MeanDelayUS float64 // soft-event delay beyond deadline
	Checks      int64
	Fired       int64
}

// WheelAblationResult compares the hashed wheel against the hierarchical
// wheel backing the soft-timer facility.
type WheelAblationResult struct {
	Rows []WheelAblationRow
}

// RunWheelAblation runs the busy Apache server with a max-rate soft event
// under each wheel variant. Functional behaviour must match; this verifies
// the facility is insensitive to the timer structure (the paper's footnote
// 2 choice of timing wheels is about constant-factor cost, not behaviour).
func RunWheelAblation(sc Scale) *WheelAblationResult {
	variants := []bool{false, true} // hierarchical?
	res := &WheelAblationResult{Rows: make([]WheelAblationRow, len(variants))}
	forEach(sc.Workers, len(variants), func(i int) {
		hier := variants[i]
		name := "hashed"
		if hier {
			name = "hierarchical"
		}
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed:     sc.Seed,
			Facility: core.Options{Hierarchical: hier},
			Server:   httpserv.Config{Kind: httpserv.Apache},
		})
		var rearm core.Handler
		rearm = func(now sim.Time) sim.Time {
			tb.F.ScheduleSoftEvent(0, rearm)
			return 0
		}
		tb.F.ScheduleSoftEvent(0, rearm)
		r := tb.Run(sc.Warmup, sc.Measure)
		st := tb.F.Stats()
		res.Rows[i] = WheelAblationRow{
			Structure:   name,
			Throughput:  r.Throughput,
			MeanDelayUS: tb.F.DelayHist.Mean(),
			Checks:      st.Checks,
			Fired:       st.Fired,
		}
	})
	return res
}

// Table renders the wheel ablation.
func (r *WheelAblationResult) Table() *Table {
	t := &Table{
		Title:   "Ablation — timer structure backing the facility (busy Apache, max-rate event)",
		Columns: []string{"structure", "xput (conn/s)", "mean delay (us)", "checks", "fired"},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Structure, f0(row.Throughput), f2(row.MeanDelayUS),
			fmt.Sprintf("%d", row.Checks), fmt.Sprintf("%d", row.Fired),
		})
		t.Metrics[row.Structure+"_conn_per_s"] = row.Throughput
	}
	return t
}

// IdleAblationRow is one idle policy's outcome on a mostly-idle system.
type IdleAblationRow struct {
	Policy      string
	MeanDelayUS float64
	IdlePolls   int64
	IdleHalts   int64
}

// IdleAblationResult compares idle-loop policies.
type IdleAblationResult struct {
	Rows []IdleAblationRow
}

// RunIdleAblation schedules periodic 50 µs soft events on an otherwise
// idle system under three idle policies: always-spin (maximal granularity,
// maximal power), halt-when-quiet (the paper's rule: spin only while an
// event is due before the next tick), and always-halt (events ride the
// 1 ms hardclock alone).
func RunIdleAblation(sc Scale) *IdleAblationResult {
	res := &IdleAblationResult{}
	policies := []struct {
		name               string
		idleLoop, idleHalt bool
	}{
		{"spin", true, false},
		{"halt-when-quiet", true, true},
		{"halt-always", false, false},
	}
	res.Rows = make([]IdleAblationRow, len(policies))
	forEach(sc.Workers, len(policies), func(i int) {
		pol := policies[i]
		eng := sim.NewEngine(sc.Seed)
		h := host.New(eng, host.Config{Kernel: kernel.Options{
			IdleLoop: pol.idleLoop,
			IdleHalt: pol.idleHalt,
		}})
		k, f := h.K, h.F
		k.Start()
		n := int64(0)
		limit := sc.Samples / 100
		if limit < 1000 {
			limit = 1000
		}
		var rearm core.Handler
		rearm = func(now sim.Time) sim.Time {
			n++
			if n < limit {
				f.ScheduleSoftEvent(50, rearm)
			}
			return sim.Microsecond
		}
		f.ScheduleSoftEvent(50, rearm)
		eng.RunFor(sim.Time(limit) * 120 * sim.Microsecond)
		res.Rows[i] = IdleAblationRow{
			Policy:      pol.name,
			MeanDelayUS: f.DelayHist.Mean(),
			IdlePolls:   k.Meter().BySource[kernel.SrcIdle],
			IdleHalts:   k.Accounting().IdleHalts,
		}
	})
	return res
}

// Table renders the idle-policy ablation.
func (r *IdleAblationResult) Table() *Table {
	t := &Table{
		Title:   "Ablation — idle-loop policy (periodic 50us soft event, idle system)",
		Columns: []string{"policy", "mean delay (us)", "idle polls", "idle halts"},
		Notes: []string{
			"spin: microsecond precision, burns power; halt-when-quiet: same precision while",
			"events pend (paper's rule); halt-always: delay degrades to the 1ms backup tick",
		},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy, f2(row.MeanDelayUS),
			fmt.Sprintf("%d", row.IdlePolls), fmt.Sprintf("%d", row.IdleHalts),
		})
		t.Metrics[strings.ReplaceAll(row.Policy, "-", "_")+"_delay_us"] = row.MeanDelayUS
	}
	return t
}

// PollutionAblationResult quantifies how much of the hardware-timer
// overhead is the locality (cache pollution) model vs the direct cost.
type PollutionAblationResult struct {
	// HWOverheadWith / HWOverheadWithout pollution charging, for Flash
	// under Table 3's hardware-paced configuration.
	HWOverheadWith    float64
	HWOverheadWithout float64
}

// RunPollutionAblation reruns Table 3's Flash hardware-timer configuration
// with the pollution penalty zeroed, isolating the paper's claim that the
// *locality shift*, not register save/restore, dominates interrupt cost.
func RunPollutionAblation(sc Scale) *PollutionAblationResult {
	// Four independent testbeds: {polluted, unpolluted} x {base, HW-paced}.
	xputs := make([]float64, 4)
	forEach(sc.Workers, len(xputs), func(i int) {
		prof := cpu.PentiumII300()
		if i >= 2 { // unpolluted pair
			prof.IntrPollution = 1 // ~zero; keep schedulable
			prof.CtxPollution = 1
		}
		cfg := httpserv.Config{Kind: httpserv.Flash}
		if i%2 == 1 {
			cfg.TxMode = httpserv.TxHWPaced
		}
		xputs[i] = httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed: sc.Seed, Profile: prof, Server: cfg,
		}).Run(sc.Warmup, sc.Measure).Throughput
	})
	return &PollutionAblationResult{
		HWOverheadWith:    1 - xputs[1]/xputs[0],
		HWOverheadWithout: 1 - xputs[3]/xputs[2],
	}
}

// Table renders the pollution ablation.
func (r *PollutionAblationResult) Table() *Table {
	return &Table{
		Title:   "Ablation — cache-pollution model (Flash, hardware-paced as Table 3)",
		Columns: []string{"HW overhead with pollution", "HW overhead without"},
		Rows: [][]string{{
			pct(r.HWOverheadWith), pct(r.HWOverheadWithout),
		}},
		Notes: []string{
			"the paper's core cost claim: locality loss, not state save/restore, dominates",
		},
		Metrics: map[string]float64{
			"hw_overhead_polluted":   r.HWOverheadWith,
			"hw_overhead_unpolluted": r.HWOverheadWithout,
		},
	}
}

// UsefulRangeRow is one CPU generation's soft-timer useful range (§5.10).
type UsefulRangeRow struct {
	Profile string
	// TriggerMeanUS is the fine end: the mean trigger interval of the
	// busy-Apache workload on this CPU.
	TriggerMeanUS float64
	// HWFloorUS is the coarse end: the hardware-timer period at which
	// interrupt overhead alone reaches 10% of the CPU.
	HWFloorUS float64
}

// UsefulRangeResult reproduces the Section 5.10 discussion: the useful
// range of soft-timer granularities widens as CPUs get faster, because
// trigger intervals shrink with CPU speed while interrupt cost does not.
type UsefulRangeResult struct {
	Rows []UsefulRangeRow
}

// RunUsefulRange computes both ends of the range for each CPU profile.
func RunUsefulRange(sc Scale) *UsefulRangeResult {
	apache, err := workloads.ByName("ST-Apache")
	if err != nil {
		panic(err)
	}
	profs := []cpu.Profile{cpu.PentiumII300(), cpu.PentiumIII500(), cpu.Alpha500()}
	res := &UsefulRangeResult{Rows: make([]UsefulRangeRow, len(profs))}
	forEach(sc.Workers, len(profs), func(i int) {
		prof := profs[i]
		rig := apache.Make(sc.Seed, prof)
		rig.Collect(sc.Samples/4, sc.Warmup, 600e9)
		mean := rig.K.Meter().Hist.Mean()
		// 10% overhead floor: period p where IntrTotal/p = 0.10.
		floor := prof.IntrTotal().Micros() / 0.10
		res.Rows[i] = UsefulRangeRow{
			Profile:       prof.Name,
			TriggerMeanUS: mean,
			HWFloorUS:     floor,
		}
	})
	return res
}

// Table renders the useful-range analysis.
func (r *UsefulRangeResult) Table() *Table {
	t := &Table{
		Title:   "Section 5.10 — useful range of soft-timer event granularities",
		Columns: []string{"CPU", "soft floor: trigger mean (us)", "HW floor @10% ovhd (us)", "range ratio"},
		Notes: []string{
			"soft timers are useful between the trigger interval (fine end) and the period where",
			"a hardware timer becomes affordable (coarse end); the ratio widens on faster CPUs",
		},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Profile, f2(row.TriggerMeanUS), f1(row.HWFloorUS),
			f1(row.HWFloorUS / row.TriggerMeanUS),
		})
		t.Metrics["range_ratio_"+strings.ReplaceAll(strings.ToLower(row.Profile), " ", "_")] =
			row.HWFloorUS / row.TriggerMeanUS
	}
	return t
}
