// Parallel experiment orchestration. Every driver in this package builds
// its own sim.Engine per measurement (one engine per seed, no shared
// state), so whole experiments — and the independent sweep rows inside
// them — are embarrassingly parallel. This file provides the worker-pool
// plumbing: forEach fans independent index-addressed tasks across
// goroutines with results written to fixed slots, so assembly order (and
// therefore every rendered table) is byte-identical to a serial run.
package experiments

import (
	"sync"
	"sync/atomic"
	"time"
)

// forEach runs fn(i) for every i in [0, n), fanning across at most
// workers goroutines. workers <= 1 runs serially on the calling
// goroutine. Tasks must be independent and must communicate results only
// through their own index (e.g. writing rows[i]); forEach guarantees all
// tasks have completed before it returns, so no synchronization beyond
// the index discipline is needed.
//
// Nested calls (a parallel driver invoked from the parallel top-level
// runner) simply multiply goroutines; they are CPU-bound and the Go
// scheduler time-slices them, so oversubscription costs little and
// determinism is unaffected.
func forEach(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Result is one experiment's outcome with its wall-clock cost, as
// produced by RunParallel and consumed by stbench's -json trajectory
// record.
type Result struct {
	Name  string
	Table *Table
	Wall  time.Duration
}

// RunParallel runs the named experiments across at most workers
// goroutines, one independent simulation substrate per experiment, and
// returns results in the order the names were given — the output is
// byte-identical to running the same names serially. workers <= 1
// reproduces the serial behavior exactly. Row-level parallelism inside
// each driver is governed separately by sc.Workers.
//
// Unknown names panic: the caller (stbench, tests) validates names
// against Lookup first, so an unknown name here is a programming error.
func RunParallel(sc Scale, names []string, workers int) []Result {
	results := make([]Result, len(names))
	forEach(workers, len(names), func(i int) {
		run, ok := Lookup(names[i])
		if !ok {
			panic("experiments: unknown experiment " + names[i])
		}
		start := time.Now()
		table := run(sc)
		results[i] = Result{Name: names[i], Table: table, Wall: time.Since(start)}
	})
	return results
}
