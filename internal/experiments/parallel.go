// Parallel experiment orchestration. Every driver in this package builds
// its own sim.Engine per measurement (one engine per seed, no shared
// state), so whole experiments — and the independent sweep rows inside
// them — are embarrassingly parallel. This file provides the worker-pool
// plumbing: forEach fans independent index-addressed tasks across
// goroutines with results written to fixed slots, so assembly order (and
// therefore every rendered table) is byte-identical to a serial run.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// forEach runs fn(i) for every i in [0, n), fanning across at most
// workers goroutines. workers <= 1 runs serially on the calling
// goroutine. Tasks must be independent and must communicate results only
// through their own index (e.g. writing rows[i]); forEach guarantees all
// tasks have completed before it returns, so no synchronization beyond
// the index discipline is needed.
//
// Nested calls (a parallel driver invoked from the parallel top-level
// runner) simply multiply goroutines; they are CPU-bound and the Go
// scheduler time-slices them, so oversubscription costs little and
// determinism is unaffected.
// A panic inside a task must not kill the process before the other tasks
// finish (and before callers get a chance to report a non-zero exit
// cleanly). Each task is recovered individually; the remaining tasks still
// run, and after all complete the panic with the lowest index is re-raised
// on the calling goroutine — so behavior is deterministic at any worker
// count, serial included.
func forEach(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		panIdx, panVal := n, any(nil)
		for i := 0; i < n; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil && i < panIdx {
						panIdx, panVal = i, r
					}
				}()
				fn(i)
			}()
		}
		if panIdx < n {
			panic(panVal)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var (
		mu     sync.Mutex
		panIdx = n
		panVal any
		next   atomic.Int64
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if i < panIdx {
								panIdx, panVal = i, r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panIdx < n {
		panic(panVal)
	}
}

// Result is one experiment's outcome with its wall-clock cost, as
// produced by RunParallel and consumed by stbench's -json trajectory
// record.
type Result struct {
	Name  string
	Table *Table
	Wall  time.Duration
	// Err records a panic escaping the experiment's driver; Table is nil
	// when set. Callers (stbench) report it and exit non-zero instead of
	// crashing mid-run with the other experiments' output lost.
	Err error
}

// RunParallel runs the named experiments across at most workers
// goroutines, one independent simulation substrate per experiment, and
// returns results in the order the names were given — the output is
// byte-identical to running the same names serially. workers <= 1
// reproduces the serial behavior exactly. Row-level parallelism inside
// each driver is governed separately by sc.Workers.
//
// Unknown names panic: the caller (stbench, tests) validates names
// against Lookup first, so an unknown name here is a programming error.
func RunParallel(sc Scale, names []string, workers int) []Result {
	results := make([]Result, len(names))
	forEach(workers, len(names), func(i int) {
		run, ok := Lookup(names[i])
		if !ok {
			panic("experiments: unknown experiment " + names[i])
		}
		start := time.Now()
		results[i].Name = names[i]
		func() {
			// A driver bug (panic in a sweep row, possibly on another
			// goroutine via forEach's re-raise) becomes a per-experiment
			// error rather than a process crash: the remaining experiments
			// still run and the caller decides the exit status.
			defer func() {
				if r := recover(); r != nil {
					results[i].Err = fmt.Errorf("experiment %s panicked: %v", names[i], r)
				}
			}()
			results[i].Table = run(sc)
		}()
		results[i].Wall = time.Since(start)
	})
	return results
}
