package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"softtimers/internal/emu"
	"softtimers/internal/httpserv"
	"softtimers/internal/metrics"
	"softtimers/internal/sim"
)

// EmuTriggerRow is one emulation run: a server model answering real HTTP
// over loopback, with the trigger-interval distribution measured from real
// timestamps (the paper's Table 1 methodology, on this machine).
type EmuTriggerRow struct {
	Name      string
	Completed int64
	Fetches   int
	MaxUS     float64
	MeanUS    float64
	MedianUS  float64
	P99US     float64
	// Lag accounting from the RealTimeClock driver.
	LagSamples int64
	LagP50US   float64
	LagMaxUS   float64
	// Paper holds the published Table 1 values for the nearest workload
	// (Max, Mean, Median, >100µs%, >150µs%).
	Paper [5]float64
}

// EmuTriggerResult is the emu-trigger-interval experiment's outcome.
type EmuTriggerResult struct {
	Rows []EmuTriggerRow
	// Skipped is non-empty when the runner has no loopback sockets; the
	// table then carries the reason instead of rows.
	Skipped   string
	Telemetry *metrics.Snapshot
}

// RunEmuTriggerInterval measures real trigger-interval distributions: for
// each server model it binds an emulation server (package emu) to a
// loopback socket, saturates it with real HTTP clients for a wall-clock
// window derived from sc.Measure, and reads the trigger-interval sample
// recorded from real timestamps. Requires sc.Clock == ClockRealTime —
// results depend on the machine and are not reproducible, by design.
func RunEmuTriggerInterval(sc Scale) *EmuTriggerResult {
	if sc.Clock != sim.ClockRealTime {
		panic("experiments: emu-trigger-interval requires Scale.Clock == ClockRealTime (stbench -clock realtime)")
	}
	res := &EmuTriggerResult{}
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err != nil {
		res.Skipped = fmt.Sprintf("no loopback sockets on this runner: %v", err)
		return res
	} else {
		ln.Close()
	}

	// The virtual measure window doubles as the wall window, clamped so a
	// full-scale invocation does not pin the machine for 10 s per row.
	window := sc.Measure.Std()
	if window > 3*time.Second {
		window = 3 * time.Second
	}
	if window < 500*time.Millisecond {
		window = 500 * time.Millisecond
	}

	models := []struct {
		name  string
		kind  httpserv.Kind
		paper string
	}{
		{"ST-Flash (emu)", httpserv.Flash, "ST-Flash"},
		{"ST-Apache (emu)", httpserv.Apache, "ST-Apache"},
	}
	snaps := make([]*metrics.Snapshot, 0, len(models))
	for _, m := range models {
		s, err := emu.New(emu.Config{Seed: sc.Seed, Kind: m.kind})
		if err != nil {
			res.Skipped = fmt.Sprintf("emu server: %v", err)
			return res
		}
		go s.Serve()
		fetches := driveHTTP(s.Addr().String(), window, 4)
		s.Stop()

		ti := s.TriggerIntervals()
		lag := s.Clock().LagHist
		row := EmuTriggerRow{
			Name:       m.name,
			Completed:  s.Completed(),
			Fetches:    fetches,
			LagSamples: lag.N(),
			LagP50US:   lag.Quantile(0.5),
			LagMaxUS:   s.Clock().MaxLag().Micros(),
			Paper:      paperTable1[m.paper],
		}
		if ti.N() > 0 {
			row.MaxUS = ti.Percentile(100)
			row.MeanUS = ti.Mean()
			row.MedianUS = ti.Median()
			row.P99US = ti.Percentile(99)
		}
		res.Rows = append(res.Rows, row)
		snaps = append(snaps, s.Host().Snapshot())
	}
	res.Telemetry = mergeTelemetry(snaps)
	return res
}

// driveHTTP saturates addr with workers sequential HTTP fetchers for the
// given wall window, returning the number of completed fetches.
func driveHTTP(addr string, window time.Duration, workers int) int {
	url := "http://" + addr + "/file"
	deadline := time.Now().Add(window)
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			n := 0
			for time.Now().Before(deadline) {
				resp, err := client.Get(url)
				if err != nil {
					break
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					break
				}
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Table renders the emulation measurement with the paper's Table 1 values
// alongside.
func (r *EmuTriggerResult) Table() *Table {
	t := &Table{
		Title: "Emulation — real trigger-interval distribution vs Table 1",
		Columns: []string{"model", "responses", "max(us)", "mean(us)", "median(us)",
			"p99(us)", "lag p50/max(us)", "paper(mean/med)"},
	}
	if r.Skipped != "" {
		t.Notes = append(t.Notes, "SKIPPED: "+r.Skipped)
		return t
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, fmt.Sprintf("%d", row.Completed),
			f0(row.MaxUS), f2(row.MeanUS), f1(row.MedianUS), f1(row.P99US),
			f1(row.LagP50US) + "/" + f0(row.LagMaxUS),
			f2(row.Paper[1]) + "/" + f0(row.Paper[2]),
		})
	}
	t.Notes = append(t.Notes,
		"measured from real timestamps at trigger states on this machine; the paper's",
		"Pentium-II/300 FreeBSD numbers are shown for shape comparison, not equality —",
		"a busy loopback server checks triggers far more often than a 1999 kernel.",
		"lag p50/max is the RealTimeClock catch-up accounting (engine behind wall clock).")
	if len(r.Rows) > 0 {
		t.Metrics = map[string]float64{
			"flash_median_us": r.Rows[0].MedianUS,
			"flash_p99_us":    r.Rows[0].P99US,
			"flash_responses": float64(r.Rows[0].Completed),
			"lag_max_us":      r.Rows[0].LagMaxUS,
		}
	}
	t.Telemetry = r.Telemetry
	return t
}
