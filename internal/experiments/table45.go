package experiments

import (
	"softtimers/internal/core"
	"softtimers/internal/cpu"
	"softtimers/internal/sim"
	"softtimers/internal/stats"
	"softtimers/internal/workloads"
)

// PacingRow is one min-burst-interval setting of Tables 4/5.
type PacingRow struct {
	MinIntervalUS  float64
	SoftAvgUS      float64
	SoftStdDevUS   float64
	HWAvgUS        float64 // only set on the first row, as in the paper
	HWStdDevUS     float64
	PacketsSampled int64
}

// PacingResult reproduces Table 4 (target 40 µs) or Table 5 (target 60 µs).
type PacingResult struct {
	TargetUS float64
	Rows     []PacingRow
}

// RunPacing measures the transmission process produced by the adaptive
// rate-based clocking algorithm under the ST-Apache trigger workload
// (Section 5.7): target interval 40 or 60 µs, minimal allowable burst
// interval swept from 12 µs (1 Gbps line speed) to 35 µs, compared with a
// hardware timer firing at the target interval.
func RunPacing(sc Scale, targetUS float64) *PacingResult {
	mins := []float64{12, 15, 20, 25, 30, 35}
	res := &PacingResult{TargetUS: targetUS, Rows: make([]PacingRow, len(mins))}
	// One soft-pacing run per min-interval row, plus one hardware-timer
	// run (the extra task index): all on independent rigs.
	forEach(sc.Workers, len(mins)+1, func(i int) {
		if i == len(mins) {
			// The paper reports a single hardware-timer row: the timer
			// fires at the target interval regardless of burst setting.
			res.Rows[0].HWAvgUS, res.Rows[0].HWStdDevUS = runHWPacing(sc, targetUS)
			return
		}
		row := &res.Rows[i]
		row.MinIntervalUS = mins[i]
		row.SoftAvgUS, row.SoftStdDevUS, row.PacketsSampled =
			runSoftPacing(sc, targetUS, mins[i])
	})
	return res
}

// runSoftPacing drives the core.Pacer over the busy Apache server's
// trigger stream and reports achieved interval statistics.
func runSoftPacing(sc Scale, targetUS, minUS float64) (avg, sd float64, n int64) {
	d, err := workloads.ByName("ST-Apache")
	if err != nil {
		panic(err)
	}
	rig := d.Make(sc.Seed, cpu.PentiumII300())
	rig.Eng.RunFor(sc.Warmup)
	var sent int64
	train := sc.PacerTrain
	p := core.NewPacer(rig.F, sim.Micros(targetUS), sim.Micros(minUS),
		func(now sim.Time) (sim.Time, bool) {
			sent++
			// Transmitting one 1500-byte packet on the 1 Gbps link:
			// driver work only; serialization happens on the wire.
			return sim.Microsecond, sent < train
		})
	p.Intervals = &stats.Sample{}
	p.Start()
	// Run until the train completes (cap at ~10x the ideal time).
	cap := rig.Eng.Now() + sim.Time(train)*sim.Micros(targetUS)*10
	for p.Running() && rig.Eng.Now() < cap {
		rig.Eng.RunFor(10 * sim.Millisecond)
	}
	return p.Intervals.Mean(), p.Intervals.StdDev(), int64(p.Intervals.N())
}

// runHWPacing fires a hardware timer at the target interval on the same
// workload; each interrupt transmits one packet. Lost ticks (interrupts
// arriving while the previous is pending) reproduce the paper's
// observation that hardware pacing falls short of its target.
func runHWPacing(sc Scale, targetUS float64) (avg, sd float64) {
	d, err := workloads.ByName("ST-Apache")
	if err != nil {
		panic(err)
	}
	rig := d.Make(sc.Seed, cpu.PentiumII300())
	intervals := &stats.Sample{}
	var last sim.Time
	var sent int64
	pit := rig.K.NewPIT(sim.Micros(targetUS), sim.Microsecond, func() {
		now := rig.Eng.Now()
		if sent > 0 {
			intervals.Add((now - last).Micros())
		}
		sent++
		last = now
	})
	rig.Eng.RunFor(sc.Warmup)
	pit.Start()
	for int64(intervals.N()) < sc.PacerTrain {
		rig.Eng.RunFor(50 * sim.Millisecond)
	}
	return intervals.Mean(), intervals.StdDev()
}

// Table renders Table 4 or 5.
func (r *PacingResult) Table() *Table {
	title := "Table 4 — rate-based clocking, target interval 40us (ST-Apache triggers, 1Gbps line)"
	note := "paper: soft 40/34.5 at min 12, degrading to 65.9/30.1 at min 35; HW 43.6/26.8"
	if r.TargetUS == 60 {
		title = "Table 5 — rate-based clocking, target interval 60us"
		note = "paper: soft 60/35.9 at min 12, 65.9/30 at min 35; HW 63/27.7"
	}
	t := &Table{
		Title: title,
		Columns: []string{"min intvl (us)", "soft avg (us)", "soft stddev",
			"HW avg (us)", "HW stddev"},
		Notes: []string{note},
	}
	for _, row := range r.Rows {
		hwAvg, hwSD := "-", "-"
		if row.HWAvgUS > 0 {
			hwAvg, hwSD = f1(row.HWAvgUS), f1(row.HWStdDevUS)
		}
		t.Rows = append(t.Rows, []string{
			f0(row.MinIntervalUS), f1(row.SoftAvgUS), f1(row.SoftStdDevUS), hwAvg, hwSD,
		})
	}
	if len(r.Rows) > 0 {
		t.Metrics = map[string]float64{
			"soft_avg_us_min12": r.Rows[0].SoftAvgUS,
			"soft_avg_us_min35": r.Rows[len(r.Rows)-1].SoftAvgUS,
			"hw_avg_us":         r.Rows[0].HWAvgUS,
		}
	}
	return t
}
