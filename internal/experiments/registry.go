package experiments

// The experiment registry: one named entry per figure/table driver, shared
// by cmd/stbench, the parallel runner, and the determinism tests.

// Runner produces one experiment's rendered table at the given scale.
type Runner func(sc Scale) *Table

// registry maps experiment names to drivers.
var registry = map[string]Runner{
	"fig2":   func(sc Scale) *Table { return RunFig2(sc).Table() },
	"sec52":  func(sc Scale) *Table { return RunSec52(sc).Table() },
	"table1": func(sc Scale) *Table { return RunTable1(sc).Table() },
	"fig5":   func(sc Scale) *Table { return RunFig5(sc).Table() },
	"table2": func(sc Scale) *Table { return RunTable2(sc).Table() },
	"fig6":   func(sc Scale) *Table { return RunFig6(sc).Table() },
	"table3": func(sc Scale) *Table { return RunTable3(sc).Table() },
	"table4": func(sc Scale) *Table { return RunPacing(sc, 40).Table() },
	"table5": func(sc Scale) *Table { return RunPacing(sc, 60).Table() },
	"table6": func(sc Scale) *Table { return RunWAN(sc, 50).Table() },
	"table7": func(sc Scale) *Table { return RunWAN(sc, 100).Table() },
	"table8": func(sc Scale) *Table { return RunTable8(sc).Table() },
	// Beyond the paper's figures: Section 5.10's useful-range analysis
	// and ablations of this reproduction's own design choices.
	"sec510":             func(sc Scale) *Table { return RunUsefulRange(sc).Table() },
	"delaydist":          func(sc Scale) *Table { return RunDelayDist(sc).Table() },
	"ablation-wheel":     func(sc Scale) *Table { return RunWheelAblation(sc).Table() },
	"ablation-idle":      func(sc Scale) *Table { return RunIdleAblation(sc).Table() },
	"ablation-pollution": func(sc Scale) *Table { return RunPollutionAblation(sc).Table() },
	// Graceful-degradation sweeps under the fault-injection layer.
	"degradation-starve": func(sc Scale) *Table { return RunDegradationStarve(sc).Table() },
	"degradation-loss":   func(sc Scale) *Table { return RunDegradationLoss(sc).Table() },
}

// Order fixes the presentation sequence for "all experiments".
var Order = []string{"fig2", "sec52", "table1", "fig5", "table2", "fig6",
	"table3", "table4", "table5", "table6", "table7", "table8",
	"delaydist", "sec510", "ablation-wheel", "ablation-idle", "ablation-pollution",
	"degradation-starve", "degradation-loss"}

// Lookup returns the driver registered under name.
func Lookup(name string) (Runner, bool) {
	r, ok := registry[name]
	return r, ok
}

// Names returns all registered experiment names, unordered.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	return out
}
