package experiments

// The experiment registry: one named entry per figure/table driver, shared
// by cmd/stbench, the parallel runner, and the determinism tests.

import "sort"

// Runner produces one experiment's rendered table at the given scale.
type Runner func(sc Scale) *Table

// entry pairs a driver with its one-line description (stbench -list).
type entry struct {
	run  Runner
	desc string
}

// realtimeExps marks experiments that measure against the wall clock:
// Scale.Clock must be ClockRealTime, they need loopback sockets, and they
// are excluded from Order so "all" stays deterministic.
var realtimeExps = map[string]bool{
	"emu-trigger-interval": true,
}

// registry maps experiment names to drivers.
var registry = map[string]entry{
	"fig2":   {func(sc Scale) *Table { return RunFig2(sc).Table() }, "timer overhead vs interrupt-clock frequency (Figure 2)"},
	"sec52":  {func(sc Scale) *Table { return RunSec52(sc).Table() }, "soft-timer check overhead on busy workloads (Section 5.2)"},
	"table1": {func(sc Scale) *Table { return RunTable1(sc).Table() }, "trigger-state rates per workload (Table 1)"},
	"fig5":   {func(sc Scale) *Table { return RunFig5(sc).Table() }, "trigger-interval medians over time (Figure 5)"},
	"table2": {func(sc Scale) *Table { return RunTable2(sc).Table() }, "trigger-state sources under a saturated web server (Table 2)"},
	"fig6":   {func(sc Scale) *Table { return RunFig6(sc).Table() }, "trigger-source ablation (Figure 6)"},
	"table3": {func(sc Scale) *Table { return RunTable3(sc).Table() }, "rate-based clocking: soft vs hardware timers (Table 3)"},
	"table4": {func(sc Scale) *Table { return RunPacing(sc, 40).Table() }, "transmission-process statistics at 40 Mbps pacing (Table 4)"},
	"table5": {func(sc Scale) *Table { return RunPacing(sc, 60).Table() }, "transmission-process statistics at 60 Mbps pacing (Table 5)"},
	"table6": {func(sc Scale) *Table { return RunWAN(sc, 50).Table() }, "WAN transfers through the emulator at 50 ms RTT (Table 6)"},
	"table7": {func(sc Scale) *Table { return RunWAN(sc, 100).Table() }, "WAN transfers through the emulator at 100 ms RTT (Table 7)"},
	"table8": {func(sc Scale) *Table { return RunTable8(sc).Table() }, "network polling vs interrupts, four-NIC server (Table 8)"},
	// Beyond the paper's figures: Section 5.10's useful-range analysis
	// and ablations of this reproduction's own design choices.
	"sec510":             {func(sc Scale) *Table { return RunUsefulRange(sc).Table() }, "useful resolution range of soft timers (Section 5.10)"},
	"delaydist":          {func(sc Scale) *Table { return RunDelayDist(sc).Table() }, "soft-timer firing-delay distribution d = actual - T"},
	"ablation-wheel":     {func(sc Scale) *Table { return RunWheelAblation(sc).Table() }, "ablation: hashed vs hierarchical timer wheel"},
	"ablation-queue":     {func(sc Scale) *Table { return RunQueueAblation(sc).Table() }, "ablation: engine event-queue backends (heap/wheel/hier/ffs) on the churned fleet, telemetry diffed against the heap"},
	"ablation-idle":      {func(sc Scale) *Table { return RunIdleAblation(sc).Table() }, "ablation: idle-loop trigger states on and off"},
	"ablation-pollution": {func(sc Scale) *Table { return RunPollutionAblation(sc).Table() }, "ablation: cache-pollution cost model on and off"},
	// Graceful-degradation sweeps under the fault-injection layer.
	"degradation-starve": {func(sc Scale) *Table { return RunDegradationStarve(sc).Table() }, "soft-timer delay vs trigger-state starvation"},
	"degradation-loss":   {func(sc Scale) *Table { return RunDegradationLoss(sc).Table() }, "paced-transfer goodput vs data-path packet loss"},
	// Multi-node topology experiments.
	"fleet-scale": {func(sc Scale) *Table { return RunFleetScale(sc).Table() }, "one server vs up to 1024 real client kernels on a switched LAN (-shards N for parallel engines)"},
	"fleet-hier":  {func(sc Scale) *Table { return RunFleetHier(sc).Table() }, "hierarchical fleet: leaf-spine fabric with connection churn (-shards N for per-leaf engines)"},
	"fleet-trace": {func(sc Scale) *Table { return RunFleetTrace(sc).Table() }, "traced hierarchical fleet: sampled flow spans, per-hop latency decomposition, virtual-time series (-series dumps them)"},
	"fleet-sync":  {func(sc Scale) *Table { return RunFleetSync(sc).Table() }, "conservative-sync ablation: static vs mined lookahead and static vs auto placement, grant economics side by side (-sync dumps the instruments)"},
	// Real-time emulation (requires -clock realtime and loopback sockets;
	// not part of "all" — results depend on the machine, by design).
	"emu-trigger-interval": {func(sc Scale) *Table { return RunEmuTriggerInterval(sc).Table() },
		"real trigger-interval distribution from the emulation server on loopback sockets, vs Table 1 (-clock realtime)"},
}

// RequiresRealTime reports whether the named experiment measures against
// the wall clock (and therefore demands Scale.Clock == ClockRealTime).
func RequiresRealTime(name string) bool { return realtimeExps[name] }

// Order fixes the presentation sequence for "all experiments".
var Order = []string{"fig2", "sec52", "table1", "fig5", "table2", "fig6",
	"table3", "table4", "table5", "table6", "table7", "table8",
	"delaydist", "sec510", "ablation-wheel", "ablation-queue", "ablation-idle", "ablation-pollution",
	"degradation-starve", "degradation-loss", "fleet-scale", "fleet-hier", "fleet-trace", "fleet-sync"}

// Lookup returns the driver registered under name.
func Lookup(name string) (Runner, bool) {
	e, ok := registry[name]
	return e.run, ok
}

// Names returns all registered experiment names, unordered.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	return out
}

// Describe returns the one-line description registered under name.
func Describe(name string) string { return registry[name].desc }

// List returns every (name, description) pair in Order, then any
// registered experiment Order omits, sorted by name — the stbench -list
// inventory.
func List() [][2]string {
	out := make([][2]string, 0, len(registry))
	seen := make(map[string]bool, len(registry))
	for _, name := range Order {
		if e, ok := registry[name]; ok {
			out = append(out, [2]string{name, e.desc})
			seen[name] = true
		}
	}
	rest := make([]string, 0)
	for name := range registry {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, [2]string{name, registry[name].desc})
	}
	return out
}
