package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/httpserv"
	"softtimers/internal/sim"
	"softtimers/internal/trace"
)

// These tests are the clock-driver seam's determinism guard: sim mode must
// be bit-for-bit unchanged by the refactor. The engine's tight loop is
// structurally untouched when no driver is installed (Engine.driver stays
// nil), and these pin the observable consequence — merged telemetry and
// Chrome traces identical across shard counts and worker counts, on clean
// and hostile scenarios — so any future driver work that accidentally
// perturbs the driverless path fails here, not in a user's replay.

// Clean scenario: one fleet row at shards 0/1/4 and workers 1/8 produces
// identical rows, merged telemetry, and merged Chrome traces.
func TestClockSeamCleanFleetByteIdentical(t *testing.T) {
	const n, salt, traceCap = 6, 777, 4096
	run := func(shards, workers int) (FleetRow, []byte, []byte) {
		sc := tinyScale()
		sc.Shards = shards
		sc.Workers = workers
		sc.Clock = sim.ClockSim // the deterministic default, explicitly
		row, snap, chrome := runFleetOpts(sc, salt, n, traceCap)
		row.WallMS = 0
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return row, sj, chrome
	}
	refRow, refSnap, refChrome := run(0, 1)
	if refRow.Probes == 0 || refRow.Completed == 0 {
		t.Fatalf("reference row is degenerate: %+v", refRow)
	}
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1/workers=1", 1, 1},
		{"shards=4/workers=1", 4, 1},
		{"shards=0/workers=8", 0, 8},
		{"shards=4/workers=8", 4, 8},
	} {
		t.Run(c.name, func(t *testing.T) {
			row, snap, chrome := run(c.shards, c.workers)
			if row != refRow {
				t.Errorf("row diverged:\n got %+v\nwant %+v", row, refRow)
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("merged telemetry diverged (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("merged Chrome trace diverged (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}

// Hostile scenario: the full LAN rig under the hostile fault plan — loss,
// reorder, jitter, trigger starvation all biting — replays byte-identically
// on the bare engine and on the sharded executor with the seam in place.
func TestClockSeamHostileByteIdentical(t *testing.T) {
	run := func(shards int) (metricsJSON, chrome []byte) {
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed:        42,
			Concurrency: 8,
			NICCount:    2,
			Server:      httpserv.Config{Kind: httpserv.Flash},
			Faults:      faults.New(42, faults.MustScenario("hostile")),
			Shards:      shards,
		})
		tr := trace.New(64_000)
		tb.K.SetTracer(tr)
		tb.Run(50*sim.Millisecond, 200*sim.Millisecond)
		var mb, cb bytes.Buffer
		if err := tb.Metrics().WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChrome(&cb); err != nil {
			t.Fatal(err)
		}
		return mb.Bytes(), cb.Bytes()
	}
	refM, refC := run(0)
	if len(refC) < 1000 {
		t.Fatalf("trace suspiciously small (%d bytes)", len(refC))
	}
	m, c := run(1)
	if !bytes.Equal(m, refM) {
		t.Error("hostile telemetry diverged between bare and sharded engines")
	}
	if !bytes.Equal(c, refC) {
		t.Error("hostile Chrome trace diverged between bare and sharded engines")
	}
}
