package experiments

import (
	"strings"

	"softtimers/internal/httpserv"
)

// Table3Row is one server's rate-based-clocking overhead comparison.
type Table3Row struct {
	Server         string
	Base           float64 // conn/s, normal burst transmission
	HWThroughput   float64 // conn/s with hardware-timer pacing (50 kHz)
	HWOverhead     float64 // fraction
	HWIntervalUS   float64 // avg inter-transmission interval
	SoftThroughput float64
	SoftOverhead   float64
	SoftIntervalUS float64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 compares the overhead of rate-based clocking in TCP using soft
// timers versus a 50 kHz hardware interrupt timer, for Apache and Flash
// (Section 5.6). Paper: hardware timers cost 28%/36%; soft timers 2%/6%.
func RunTable3(sc Scale) *Table3Result {
	kinds := []httpserv.Kind{httpserv.Apache, httpserv.Flash}
	modes := []httpserv.TxMode{httpserv.TxBurst, httpserv.TxHWPaced, httpserv.TxSoftPaced}
	// All (server, transmission-mode) cells are independent testbeds:
	// flatten the 2x3 grid into one task list and assemble rows after.
	type cell struct{ xput, intervalUS float64 }
	cells := make([]cell, len(kinds)*len(modes))
	forEach(sc.Workers, len(cells), func(i int) {
		tb := httpserv.NewTestbed(httpserv.TestbedConfig{
			Seed:   sc.Seed,
			Server: httpserv.Config{Kind: kinds[i/len(modes)], TxMode: modes[i%len(modes)]},
		})
		r := tb.Run(sc.Warmup, sc.Measure)
		cells[i] = cell{r.Throughput, tb.Server.PacedIntervals.Mean()}
	})
	res := &Table3Result{}
	for ki, kind := range kinds {
		base, hw, soft := cells[ki*len(modes)], cells[ki*len(modes)+1], cells[ki*len(modes)+2]
		res.Rows = append(res.Rows, Table3Row{
			Server:         kind.String(),
			Base:           base.xput,
			HWThroughput:   hw.xput,
			HWIntervalUS:   hw.intervalUS,
			SoftThroughput: soft.xput,
			SoftIntervalUS: soft.intervalUS,
			HWOverhead:     1 - hw.xput/base.xput,
			SoftOverhead:   1 - soft.xput/base.xput,
		})
	}
	return res
}

// Table renders Table 3.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title: "Table 3 — overhead of rate-based clocking (hardware timer @20us vs soft timers)",
		Columns: []string{"server", "base (conn/s)", "HW xput", "HW ovhd", "HW xmit intvl (us)",
			"soft xput", "soft ovhd", "soft xmit intvl (us)"},
		Notes: []string{
			"paper Apache: base 774, HW 560 (28%, 31us), soft 756 (2%, 34us)",
			"paper Flash:  base 1303, HW 827 (36%, 35us), soft 1224 (6%, 24us)",
		},
	}
	t.Metrics = map[string]float64{}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Server, f0(row.Base),
			f0(row.HWThroughput), pct(row.HWOverhead), f1(row.HWIntervalUS),
			f0(row.SoftThroughput), pct(row.SoftOverhead), f1(row.SoftIntervalUS),
		})
		key := strings.ToLower(row.Server)
		t.Metrics[key+"_hw_overhead"] = row.HWOverhead
		t.Metrics[key+"_soft_overhead"] = row.SoftOverhead
	}
	return t
}
