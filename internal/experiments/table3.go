package experiments

import (
	"softtimers/internal/httpserv"
)

// Table3Row is one server's rate-based-clocking overhead comparison.
type Table3Row struct {
	Server         string
	Base           float64 // conn/s, normal burst transmission
	HWThroughput   float64 // conn/s with hardware-timer pacing (50 kHz)
	HWOverhead     float64 // fraction
	HWIntervalUS   float64 // avg inter-transmission interval
	SoftThroughput float64
	SoftOverhead   float64
	SoftIntervalUS float64
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 compares the overhead of rate-based clocking in TCP using soft
// timers versus a 50 kHz hardware interrupt timer, for Apache and Flash
// (Section 5.6). Paper: hardware timers cost 28%/36%; soft timers 2%/6%.
func RunTable3(sc Scale) *Table3Result {
	res := &Table3Result{}
	for _, kind := range []httpserv.Kind{httpserv.Apache, httpserv.Flash} {
		row := Table3Row{Server: kind.String()}
		run := func(mode httpserv.TxMode) (float64, float64) {
			tb := httpserv.NewTestbed(httpserv.TestbedConfig{
				Seed:   sc.Seed,
				Server: httpserv.Config{Kind: kind, TxMode: mode},
			})
			r := tb.Run(sc.Warmup, sc.Measure)
			return r.Throughput, tb.Server.PacedIntervals.Mean()
		}
		row.Base, _ = run(httpserv.TxBurst)
		row.HWThroughput, row.HWIntervalUS = run(httpserv.TxHWPaced)
		row.SoftThroughput, row.SoftIntervalUS = run(httpserv.TxSoftPaced)
		row.HWOverhead = 1 - row.HWThroughput/row.Base
		row.SoftOverhead = 1 - row.SoftThroughput/row.Base
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders Table 3.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title: "Table 3 — overhead of rate-based clocking (hardware timer @20us vs soft timers)",
		Columns: []string{"server", "base (conn/s)", "HW xput", "HW ovhd", "HW xmit intvl (us)",
			"soft xput", "soft ovhd", "soft xmit intvl (us)"},
		Notes: []string{
			"paper Apache: base 774, HW 560 (28%, 31us), soft 756 (2%, 34us)",
			"paper Flash:  base 1303, HW 827 (36%, 35us), soft 1224 (6%, 24us)",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Server, f0(row.Base),
			f0(row.HWThroughput), pct(row.HWOverhead), f1(row.HWIntervalUS),
			f0(row.SoftThroughput), pct(row.SoftOverhead), f1(row.SoftIntervalUS),
		})
	}
	return t
}
