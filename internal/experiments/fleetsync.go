package experiments

// fleet-sync: the conservative-sync ablation. One fleet workload (64
// clients by default) is run under a ladder of sync configurations —
// static lookahead vs. mined grants, static vs. traffic-profiled
// placement, 4 vs. 8 shards — and the grant-utilization telemetry is laid
// side by side: rounds, messages per round, mean granted width, how much
// of each horizon held executable work, and what mining bought. The
// workload telemetry is identical in every row by the sharding contract
// (asserted in tests); only the synchronization economics move.

import (
	"fmt"
	"time"

	"softtimers/internal/metrics"
)

// fleetSyncConfig is one sync-ablation configuration.
type fleetSyncConfig struct {
	Label     string
	Shards    int
	Mining    bool
	Placement string
}

// fleetSyncConfigs is the default ladder, fixed so rows compare across
// runs and machines.
var fleetSyncConfigs = []fleetSyncConfig{
	{Label: "4sh static", Shards: 4, Mining: false, Placement: PlacementStatic},
	{Label: "4sh mined", Shards: 4, Mining: true, Placement: PlacementStatic},
	{Label: "8sh static", Shards: 8, Mining: false, Placement: PlacementStatic},
	{Label: "8sh mined", Shards: 8, Mining: true, Placement: PlacementStatic},
	{Label: "8sh mined+auto", Shards: 8, Mining: true, Placement: PlacementAuto},
}

// FleetSyncRow is one configuration's sync economics.
type FleetSyncRow struct {
	Label     string
	Shards    int
	Mining    bool
	Placement string

	Rounds       int64
	Messages     int64
	MsgsPerRound float64
	GrantMeanUS  float64 // mean granted width per active shard-round
	ReachedFrac  float64 // fraction of granted ns that held executable work
	IdleFrac     float64 // fraction of active shard-rounds with nothing due
	MinedGainUS  float64 // mean mined − static grant per active shard-round
	// WallMS is real time for the measure window; -json only, like the
	// fleet sweep's.
	WallMS float64 `json:"-"`
}

// FleetSyncResult is the fleet-sync ablation.
type FleetSyncResult struct {
	Hosts     int
	Rows      []FleetSyncRow
	Telemetry *metrics.Snapshot // one row's workload snapshot (identical in all rows)
	Sync      *metrics.Snapshot // per-config sync.* snapshots, label-prefixed
}

// fleetSyncHosts picks the ablation's fleet size: the largest configured
// fleet-scale row, defaulting to 64 — big enough that rounds are routine
// and mining has idle links to exploit.
func fleetSyncHosts(sc Scale) int {
	n := 64
	for _, c := range sc.FleetCounts {
		if c > n {
			n = c
		}
	}
	return n
}

// RunFleetSync measures the sync-configuration ladder on one fleet
// workload. Every configuration replays the same virtual history — the
// rows differ only in how the shards agree to advance — so the table is
// deterministic at any Workers setting, and the workload snapshots are
// byte-identical across rows (tests assert both).
func RunFleetSync(sc Scale) *FleetSyncResult {
	n := fleetSyncHosts(sc)
	rows := make([]FleetSyncRow, len(fleetSyncConfigs))
	snaps := make([]*metrics.Snapshot, len(fleetSyncConfigs))
	syncs := make([]*metrics.Snapshot, len(fleetSyncConfigs))
	forEach(sc.Workers, len(fleetSyncConfigs), func(i int) {
		cfg := fleetSyncConfigs[i]
		rsc := sc
		rsc.Shards = cfg.Shards
		rsc.NoMining = !cfg.Mining
		rsc.Placement = cfg.Placement
		wall0 := time.Now()
		_, snap, sync, _ := runFleetCfg(rsc, 300, n, fleetOpts{})
		wallMS := float64(time.Since(wall0).Microseconds()) / 1000

		row := FleetSyncRow{
			Label:     cfg.Label,
			Shards:    cfg.Shards,
			Mining:    cfg.Mining,
			Placement: cfg.Placement,
			WallMS:    wallMS,
		}
		if sync != nil {
			row.Rounds = sync.Counters["sync.rounds"]
			row.Messages = sync.Counters["sync.messages"]
			if row.Rounds > 0 {
				row.MsgsPerRound = float64(row.Messages) / float64(row.Rounds)
			}
			if h, ok := sync.Histograms["sync.grant_width_us"]; ok && h.Count > 0 {
				row.GrantMeanUS = h.Sum / float64(h.Count)
			}
			if h, ok := sync.Histograms["sync.mined_gain_us"]; ok && h.Count > 0 {
				row.MinedGainUS = h.Sum / float64(h.Count)
			}
			var granted, reached, active, idle int64
			for s := 0; ; s++ {
				p := fmt.Sprintf("sync.shard%02d.", s)
				r, ok := sync.Counters[p+"rounds"]
				if !ok {
					break
				}
				active += r
				granted += sync.Counters[p+"granted_ns"]
				reached += sync.Counters[p+"reached_ns"]
				idle += sync.Counters[p+"idle_rounds"]
			}
			if granted > 0 {
				row.ReachedFrac = float64(reached) / float64(granted)
			}
			if active > 0 {
				row.IdleFrac = float64(idle) / float64(active)
			}
		}
		rows[i] = row
		snaps[i] = snap
		syncs[i] = sync
	})

	res := &FleetSyncResult{Hosts: n, Rows: rows}
	if len(snaps) > 0 {
		// All rows' workload snapshots are byte-identical (the sharding
		// contract); carry one, not a meaningless sum of replicas.
		res.Telemetry = snaps[0]
	}
	prefixed := make([]*metrics.Snapshot, len(syncs))
	for i, s := range syncs {
		if s != nil {
			prefixed[i] = s.Prefixed(fmt.Sprintf("cfg%d.", i))
		}
	}
	res.Sync = mergeTelemetry(prefixed)
	return res
}

// Table renders the ablation.
func (r *FleetSyncResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fleet sync ablation — %d clients, grant economics per sync configuration", r.Hosts),
		Columns: []string{"config", "shards", "mining", "placement", "rounds",
			"msgs", "msgs/round", "grant mean (us)", "reached", "idle rounds", "mined gain (us)"},
		Metrics: map[string]float64{},
	}
	for i, row := range r.Rows {
		mining := "off"
		if row.Mining {
			mining = "on"
		}
		placement := row.Placement
		if placement == "" {
			placement = PlacementStatic
		}
		t.Rows = append(t.Rows, []string{
			row.Label, f0(float64(row.Shards)), mining, placement,
			f0(float64(row.Rounds)), f0(float64(row.Messages)), f1(row.MsgsPerRound),
			f1(row.GrantMeanUS), pct(row.ReachedFrac), pct(row.IdleFrac), f1(row.MinedGainUS),
		})
		key := fmt.Sprintf("cfg%d", i)
		t.Metrics[key+"_rounds"] = float64(row.Rounds)
		t.Metrics[key+"_messages"] = float64(row.Messages)
		t.Metrics[key+"_grant_mean_us"] = row.GrantMeanUS
		t.Metrics[key+"_mined_gain_us"] = row.MinedGainUS
		t.Metrics[key+"_wall_ms"] = row.WallMS
	}
	t.Notes = append(t.Notes,
		"every row replays the identical virtual history (workload telemetry is byte-identical; tests assert it) — only the shards' agreement protocol differs",
		"mining grants from each shard's earliest pending event instead of its clock, so mined rows need no more rounds than their static twins and idle links stop serializing the group")
	t.Telemetry = r.Telemetry
	t.Sync = r.Sync
	return t
}
