package experiments

import (
	"strings"
	"testing"
)

func TestScales(t *testing.T) {
	full, quick := FullScale(), QuickScale()
	if full.Samples != 2_000_000 {
		t.Errorf("FullScale samples = %d, want the paper's 2M", full.Samples)
	}
	if quick.Samples >= full.Samples || quick.Measure >= full.Measure {
		t.Error("QuickScale must be smaller than FullScale")
	}
	if len(full.WANTransfers) != 5 || full.WANTransfers[4] != 100000 {
		t.Errorf("FullScale WAN sizes = %v, want the paper's 5..100000", full.WANTransfers)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	out := tb.Render()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig2OverheadLinearInFrequency(t *testing.T) {
	sc := QuickScale()
	sc.FreqStepKHz = 50 // 0, 50, 100 kHz
	res := RunFig2(sc)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Base < 650 || res.Base > 900 {
		t.Errorf("base throughput = %.0f, want ~774", res.Base)
	}
	r50, r100 := res.Rows[1], res.Rows[2]
	// Figure 3: ~22% at 50 kHz, ~45% at 100 kHz, per-interrupt ~4.45us.
	if r50.Overhead < 0.15 || r50.Overhead > 0.30 {
		t.Errorf("overhead@50kHz = %.2f, want ~0.22", r50.Overhead)
	}
	if r100.Overhead < 0.33 || r100.Overhead > 0.55 {
		t.Errorf("overhead@100kHz = %.2f, want ~0.45", r100.Overhead)
	}
	ratio := r100.Overhead / r50.Overhead
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("overhead ratio 100/50 kHz = %.2f, want ~2 (linear)", ratio)
	}
	if r100.PerIntrUS < 3.3 || r100.PerIntrUS > 5.5 {
		t.Errorf("per-interrupt cost = %.2fus, want ~4.45", r100.PerIntrUS)
	}
	if !strings.Contains(res.Table().Render(), "4.45us") {
		t.Error("table missing paper note")
	}
}

func TestSec52SoftTimerOverheadNegligible(t *testing.T) {
	res := RunSec52(QuickScale())
	// Paper: "no observable difference" — allow a couple of percent.
	if res.Overhead > 0.03 {
		t.Errorf("soft-timer base overhead = %.1f%%, want negligible", res.Overhead*100)
	}
	if res.Overhead < -0.03 {
		t.Errorf("soft-timer run faster by %.1f%%: suspicious", -res.Overhead*100)
	}
	// Paper: handler called every 31.5us on average.
	if res.MeanFireUS < 25 || res.MeanFireUS > 45 {
		t.Errorf("mean fire interval = %.1fus, want ~31.5", res.MeanFireUS)
	}
	if res.Fired < 10000 {
		t.Errorf("fired only %d events", res.Fired)
	}
}

func TestTable1CoversAllWorkloads(t *testing.T) {
	sc := QuickScale()
	sc.Samples = 60_000
	res := RunTable1(sc)
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 6 workloads + Xeon", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanUS <= 0 || len(row.CDF) == 0 {
			t.Errorf("%s: empty distribution", row.Name)
		}
		if row.Paper[1] == 0 {
			t.Errorf("%s: missing paper reference values", row.Name)
		}
		// Ordering sanity per the paper: all means in [1.5, 45]us.
		if row.MeanUS < 1.5 || row.MeanUS > 45 {
			t.Errorf("%s: mean %.2f out of plausible band", row.Name, row.MeanUS)
		}
	}
	// NFS must have the smallest mean; Apache/Apache-compute the largest.
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if byName["ST-nfs"].MeanUS >= byName["ST-real-audio"].MeanUS {
		t.Error("NFS should have the finest trigger granularity")
	}
	if byName["ST-Apache"].MeanUS <= byName["ST-Flash"].MeanUS {
		t.Error("Apache should have coarser triggers than Flash")
	}
	// Xeon row: granularity scales with CPU speed.
	if x := byName["ST-Apache (Xeon)"].MeanUS; x >= byName["ST-Apache"].MeanUS*0.85 {
		t.Errorf("Xeon mean %.1f should be well below PII's %.1f", x, byName["ST-Apache"].MeanUS)
	}
	_ = res.Table().Render()
}

func TestFig5WindowedMedians(t *testing.T) {
	res := RunFig5(QuickScale())
	if len(res.Medians1ms) < 500 || len(res.Medians10ms) < 50 {
		t.Fatalf("windows: %d/%d, want many", len(res.Medians1ms), len(res.Medians10ms))
	}
	// Paper: <1.13% of 1ms medians above 40us. Our workload scripts use
	// coarser user-compute chunks than real Apache, so window-level
	// clustering is somewhat stronger; the qualitative claim — 1ms
	// windows are noisy, 10ms windows are stable — is what we hold.
	if res.Frac1msAbove40 > 0.10 {
		t.Errorf("1ms medians above 40us = %.1f%%, want small", res.Frac1msAbove40*100)
	}
	// Paper: 10ms medians in a narrow band (17-19us).
	if res.Max10-res.Min10 > 12 {
		t.Errorf("10ms median range = [%.1f, %.1f], want narrow", res.Min10, res.Max10)
	}
	if res.Min10 < 10 || res.Max10 > 30 {
		t.Errorf("10ms medians out of the ~18us region: [%.1f, %.1f]", res.Min10, res.Max10)
	}
	_ = res.Table().Render()
}

func TestTable2SourceMix(t *testing.T) {
	sc := QuickScale()
	sc.Samples = 100_000
	res := RunTable2(sc)
	// The ordering the paper reports: syscalls > ip-output > ip-intr >
	// tcpip-others > traps.
	order := reportedSources
	for i := 1; i < len(order); i++ {
		if res.Fraction[order[i]] >= res.Fraction[order[i-1]] {
			t.Errorf("source ordering violated: %v (%.3f) >= %v (%.3f)",
				order[i], res.Fraction[order[i]], order[i-1], res.Fraction[order[i-1]])
		}
	}
	sum := 0.0
	for _, s := range order {
		sum += res.Fraction[s]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	_ = res.Table().Render()
}

func TestFig6AblationDegradesDistribution(t *testing.T) {
	sc := QuickScale()
	sc.Samples = 80_000
	res := RunFig6(sc)
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	means := map[string]float64{}
	for _, s := range res.Series {
		means[s.Removed] = s.MeanUS
	}
	// Removing any source must not improve the distribution; removing
	// syscalls (the largest source) must hurt the most.
	base := means["All"]
	for name, m := range means {
		if name == "All" {
			continue
		}
		if m < base*0.98 {
			t.Errorf("removing %s improved mean (%.1f < %.1f)", name, m, base)
		}
	}
	if means["no syscalls"] <= means["no traps"] {
		t.Error("removing syscalls should hurt more than removing traps")
	}
	if means["no ip-output"] <= means["no traps"] {
		t.Error("removing ip-output should hurt more than removing traps")
	}
	_ = res.Table().Render()
}

func TestTable3RateClockingOverheads(t *testing.T) {
	res := RunTable3(QuickScale())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper: HW 28-36%, soft 2-6%. Soft must be dramatically lower.
		if row.HWOverhead < 0.18 || row.HWOverhead > 0.50 {
			t.Errorf("%s: HW overhead %.0f%%, want ~28-36%%", row.Server, row.HWOverhead*100)
		}
		if row.SoftOverhead > 0.10 {
			t.Errorf("%s: soft overhead %.0f%%, want <= ~6%%", row.Server, row.SoftOverhead*100)
		}
		if row.SoftOverhead*4 > row.HWOverhead {
			t.Errorf("%s: soft (%.1f%%) not clearly cheaper than HW (%.1f%%)",
				row.Server, row.SoftOverhead*100, row.HWOverhead*100)
		}
	}
	// Flash suffers more from HW timer pollution than Apache (Section
	// 5.6's cache-locality argument).
	if res.Rows[1].HWOverhead <= res.Rows[0].HWOverhead {
		t.Error("Flash should lose more to hardware timers than Apache")
	}
	_ = res.Table().Render()
}

func TestTable45PacingStatistics(t *testing.T) {
	sc := QuickScale()
	sc.PacerTrain = 5000
	res := RunPacing(sc, 40)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Monotone degradation as the burst interval is restricted
	// (paper: 40 -> 65.9 us from min 12 to min 35).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SoftAvgUS+1 < res.Rows[i-1].SoftAvgUS {
			t.Errorf("avg interval not monotone: row %d %.1f < row %d %.1f",
				i, res.Rows[i].SoftAvgUS, i-1, res.Rows[i-1].SoftAvgUS)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.SoftAvgUS > 60 {
		t.Errorf("min-12 avg = %.1f, want near-target (paper 40)", first.SoftAvgUS)
	}
	if last.SoftAvgUS < 55 || last.SoftAvgUS > 85 {
		t.Errorf("min-35 avg = %.1f, want ~66 (paper 65.9)", last.SoftAvgUS)
	}
	// Hardware timer comparison on the first row only.
	if first.HWAvgUS < 39 || first.HWAvgUS > 50 {
		t.Errorf("HW avg = %.1f, want ~40-44 (paper 43.6)", first.HWAvgUS)
	}
	if res.Rows[1].HWAvgUS != 0 {
		t.Error("HW stats must appear on the first row only")
	}
	_ = res.Table().Render()

	res60 := RunPacing(sc, 60)
	// At target 60 the pacer holds the target across low min-intervals
	// (paper: 60 us avg through min 25).
	if res60.Rows[0].SoftAvgUS < 55 || res60.Rows[0].SoftAvgUS > 75 {
		t.Errorf("target-60 min-12 avg = %.1f, want ~60", res60.Rows[0].SoftAvgUS)
	}
}

func TestTable67WANPerformance(t *testing.T) {
	sc := QuickScale()
	res := RunWAN(sc, 50)
	if len(res.Rows) != len(sc.WANTransfers) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byPkts := map[int64]WANRow{}
	for _, r := range res.Rows {
		byPkts[r.Packets] = r
	}
	// Paper Table 6 anchors.
	r5 := byPkts[5]
	if r5.RegRespMS < 400 || r5.RegRespMS > 620 {
		t.Errorf("5pkt regular resp = %.0fms, want ~496", r5.RegRespMS)
	}
	if r5.PacedRespMS < 90 || r5.PacedRespMS > 130 {
		t.Errorf("5pkt paced resp = %.0fms, want ~101", r5.PacedRespMS)
	}
	r100 := byPkts[100]
	if r100.RespReduction < 0.80 || r100.RespReduction > 0.95 {
		t.Errorf("100pkt reduction = %.0f%%, want ~89%%", r100.RespReduction*100)
	}
	if r100.RegRespMS < 900 || r100.RegRespMS > 1500 {
		t.Errorf("100pkt regular resp = %.0fms, want ~1145", r100.RegRespMS)
	}
	r1000 := byPkts[1000]
	if r1000.RespReduction < 0.6 || r1000.RespReduction > 0.92 {
		t.Errorf("1000pkt reduction = %.0f%%, want ~80%%", r1000.RespReduction*100)
	}
	_ = res.Table().Render()
}

func TestTable67LargeTransferSmallGain(t *testing.T) {
	// Paper: for very large transfers the reduction shrinks (2% at 100k
	// packets on 50 Mbps) — both spend their time at the bottleneck.
	sc := QuickScale()
	sc.WANTransfers = []int64{10000}
	res := RunWAN(sc, 50)
	r := res.Rows[0]
	if r.RespReduction > 0.50 {
		t.Errorf("10k-packet reduction = %.0f%%, want modest (paper: 35%%)", r.RespReduction*100)
	}
	if r.RegXputMbps < 20 || r.RegXputMbps > 50 {
		t.Errorf("10k-packet regular xput = %.1f Mbps, want ~30", r.RegXputMbps)
	}
	if r.PacedXputMbps < 35 || r.PacedXputMbps > 50 {
		t.Errorf("10k-packet paced xput = %.1f Mbps, want ~46", r.PacedXputMbps)
	}
}

func TestTable67At100Mbps(t *testing.T) {
	sc := QuickScale()
	sc.WANTransfers = []int64{100}
	res := RunWAN(sc, 100)
	r := res.Rows[0]
	// Paper Table 7: 100 packets 1056 -> 112 ms (89%).
	if r.RespReduction < 0.80 || r.RespReduction > 0.95 {
		t.Errorf("reduction = %.0f%%, want ~89%%", r.RespReduction*100)
	}
	if r.PacedRespMS < 95 || r.PacedRespMS > 135 {
		t.Errorf("paced resp = %.0fms, want ~112", r.PacedRespMS)
	}
}

func TestTable8PollingImproves(t *testing.T) {
	res := RunTable8(QuickScale())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, q := range Table8Quotas {
			if row.SpeedupAt[q] < 0.99 {
				t.Errorf("%s %s q=%g: polling slower than interrupts (%.2fx)",
					row.Server, row.Protocol, q, row.SpeedupAt[q])
			}
			if row.SpeedupAt[q] > 1.35 {
				t.Errorf("%s %s q=%g: speedup %.2fx beyond plausible band",
					row.Server, row.Protocol, q, row.SpeedupAt[q])
			}
		}
		// Higher quotas must not hurt.
		if row.SpeedupAt[15] < row.SpeedupAt[1]-0.02 {
			t.Errorf("%s %s: quota 15 (%.2fx) worse than quota 1 (%.2fx)",
				row.Server, row.Protocol, row.SpeedupAt[15], row.SpeedupAt[1])
		}
	}
	// Flash benefits more than Apache (paper: 14-25% vs 7-11% on HTTP).
	var apacheHTTP, flashHTTP Table8Row
	for _, row := range res.Rows {
		if row.Protocol == "HTTP" {
			if row.Server == "Apache" {
				apacheHTTP = row
			} else {
				flashHTTP = row
			}
		}
	}
	if flashHTTP.SpeedupAt[5] <= apacheHTTP.SpeedupAt[5] {
		t.Errorf("Flash speedup (%.2fx) should exceed Apache's (%.2fx)",
			flashHTTP.SpeedupAt[5], apacheHTTP.SpeedupAt[5])
	}
	_ = res.Table().Render()
}
