package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"softtimers/internal/sim"
)

// The fleet sharding contract, end to end: one fleet row produces the same
// measurements, the same merged telemetry snapshot, and the same merged
// Chrome trace whether it runs on the legacy shared engine, a one-shard
// group, or split across several shards — serially or with a worker pool.
func TestFleetShardedMatchesLegacy(t *testing.T) {
	const n, salt, traceCap = 6, 777, 4096
	run := func(shards, workers int) (FleetRow, []byte, []byte) {
		sc := tinyScale()
		sc.Shards = shards
		sc.Workers = workers
		row, snap, chrome := runFleetOpts(sc, salt, n, traceCap)
		row.WallMS = 0 // real time, the one legitimately mode-dependent field
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return row, sj, chrome
	}
	refRow, refSnap, refChrome := run(0, 0)
	if refRow.Probes == 0 || refRow.Completed == 0 {
		t.Fatalf("reference row is degenerate: %+v", refRow)
	}
	for _, c := range []struct {
		name            string
		shards, workers int
	}{
		{"shards=1", 1, 0},
		{"shards=2", 2, 0},
		{"shards=4", 4, 0},
		{"shards=4/workers=4", 4, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			row, snap, chrome := run(c.shards, c.workers)
			if row != refRow {
				t.Errorf("row diverged from legacy:\n got %+v\nwant %+v", row, refRow)
			}
			if !bytes.Equal(snap, refSnap) {
				t.Errorf("merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
			}
			if !bytes.Equal(chrome, refChrome) {
				t.Errorf("merged Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
			}
		})
	}
}

// The equivalence contract at a scale where same-instant arrivals are
// routine: 64 clients behind one switch share the default 30 µs link
// delay, so the saturated server constantly sees several packets — and
// its own timers — due at the same nanosecond. Small fleets (the n=6 case
// above) essentially never collide, and an executor that orders
// same-instant cross-shard arrivals differently from the single-engine
// path passes there while diverging here; this pins the arrival-band fix.
func TestFleetShardedMatchesLegacyAtSaturation(t *testing.T) {
	run := func(shards int) (FleetRow, []byte) {
		sc := tinyScale()
		sc.Shards = shards
		row, snap, _ := runFleetOpts(sc, 306, 64, 0)
		row.WallMS = 0
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return row, sj
	}
	refRow, refSnap := run(0)
	if refRow.Probes == 0 || refRow.Completed == 0 {
		t.Fatalf("reference row is degenerate: %+v", refRow)
	}
	row, snap := run(4)
	if row != refRow {
		t.Errorf("64-host row diverged from legacy:\n got %+v\nwant %+v", row, refRow)
	}
	if !bytes.Equal(snap, refSnap) {
		t.Errorf("64-host merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
	}
}

// The §3 delay bound at a scale only sharding makes affordable: 1024 client
// kernels, each probed, each individually under hardclock period + 1 tick.
func TestFleetDelayBound1024Hosts(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host fleet in -short mode")
	}
	sc := tinyScale()
	sc.Warmup = 200 * sim.Millisecond // quartered inside runFleet
	sc.Measure = 400 * sim.Millisecond
	sc.Shards = 4
	row, snap := runFleet(sc, 901, 1024)
	if row.Probes == 0 {
		t.Fatal("no probes fired")
	}
	if !row.BoundOK || row.WorstDelay > row.BoundUS {
		t.Fatalf("worst probe delay %.0fus exceeds bound %.0fus", row.WorstDelay, row.BoundUS)
	}
	if row.Completed == 0 {
		t.Fatal("no responses completed")
	}
	for _, name := range []string{"host.server", "host.client00", "host.client1023"} {
		if snap.Counters[name+".softtimer.fired"] == 0 {
			t.Fatalf("%s facility fired no events", name)
		}
	}
}

// Sharding is a wall-clock optimisation; with enough real cores a 64-host
// row must run at least 2x faster on 4 shards than on 1. A single-core
// runner cannot express the speedup, so the assertion gates on CPU count
// (the equivalence tests above carry the correctness contract either way).
func TestFleetShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs to express parallel speedup (NumCPU=%d GOMAXPROCS=%d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	wall := func(shards int) time.Duration {
		sc := tinyScale()
		sc.Shards = shards
		sc.Workers = shards
		start := time.Now()
		runFleet(sc, 955, 64)
		return time.Since(start)
	}
	wall(1) // warm caches before timing
	w1, w4 := wall(1), wall(4)
	if w4 > w1/2 {
		t.Errorf("64-host fleet: shards=4 took %v, want <= half of shards=1's %v", w4, w1)
	}
}

// BenchmarkFleetSharded times one 64-host fleet row per shard count — the
// headline wall-clock number for the sharded engine.
func BenchmarkFleetSharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(b *testing.B) {
			sc := tinyScale()
			sc.Shards = shards
			sc.Workers = shards
			for i := 0; i < b.N; i++ {
				runFleet(sc, 955, 64)
			}
		})
	}
}
