package experiments

// Hierarchical fleet experiment: the fleet-scale sweep rebuilt on a
// leaf–spine fabric instead of one flat switch, with connection churn.
// Clients spread across leaf switches (~8 per leaf); cross-leaf traffic
// transits the spine over cut-through trunks, and every leaf — switch,
// members, trunks — is shard-local under sharded execution, so only the
// spine hop pays conservative-sync rounds. Churned clients go dormant and
// rejoin with fresh flows, turning the server's connection table over the
// way a real fleet would.
//
// The claim under test is unchanged from the flat sweep: the soft-timer
// delay bound (hardclock period + one measurement tick) holds on every
// host, now across multi-hop paths and a churning population. The topology
// is the scaling vehicle toward very large fleets: at 8 hosts per leaf a
// 100k-client fleet is ~12.5k leaves, each an independent shard-local
// island, so engines scale with the leaf count and cross-shard traffic
// only with the spine's.

import (
	"bytes"
	"fmt"
	"time"

	"softtimers/internal/host"
	"softtimers/internal/httpserv"
	"softtimers/internal/kernel"
	"softtimers/internal/metrics"
	"softtimers/internal/nic"
	"softtimers/internal/sim"
	"softtimers/internal/topology"
)

// hierCounts is the default client-count sweep. Smaller than the flat
// fleet's: each client is identical, and the interesting axis here is the
// leaf/spine structure, not raw population.
var hierCounts = []int{4, 16, 64}

// hierLeaves sizes the leaf tier for n clients: ~8 members per leaf, at
// least two leaves once there is anything to spread (a one-leaf fabric
// never exercises the spine).
func hierLeaves(n int) int {
	leaves := (n + 7) / 8
	if leaves < 2 && n >= 2 {
		leaves = 2
	}
	if leaves < 1 {
		leaves = 1
	}
	return leaves
}

// FleetHierRow is one hierarchical fleet size's measurements.
type FleetHierRow struct {
	Hosts      int // client hosts (the server rides leaf 0)
	Leaves     int
	Throughput float64
	Completed  int64
	SrvBusy    float64
	// Churns is the fleet-wide count of client dormancy periods taken.
	Churns int64
	// SpineFwd counts packets the spine forwarded down a leaf trunk —
	// the cross-leaf traffic volume.
	SpineFwd int64
	// Probe delay across every host, asserted against the §3 bound.
	Probes     int64
	WorstDelay float64 // µs
	BoundUS    float64
	BoundOK    bool
	WallMS     float64 `json:"-"`
}

// FleetHierResult is the hierarchical fleet sweep.
type FleetHierResult struct {
	Rows      []FleetHierRow
	Shards    int
	Telemetry *metrics.Snapshot
}

// runFleetHier builds and measures one hierarchical fleet size.
func runFleetHier(sc Scale, salt uint64, n int) (FleetHierRow, *metrics.Snapshot) {
	row, snap, _ := runFleetHierOpts(sc, salt, n, 0)
	return row, snap
}

// runFleetHierOpts is runFleetHier plus tracing, mirroring runFleetOpts.
// The fabric constrains placement: a leaf's members must share a shard, so
// member i (the server is member 0) lands on shard (i mod leaves) mod
// shards — the same rule Spec.Build forces — and shards clamp to the leaf
// count, the fabric's maximum useful parallelism.
func runFleetHierOpts(sc Scale, salt uint64, n, traceCap int) (FleetHierRow, *metrics.Snapshot, []byte) {
	seed := sc.Seed + salt
	leaves := hierLeaves(n)
	var t *topology.Topology
	if sc.Shards > 0 {
		shards := sc.Shards
		if shards > leaves {
			shards = leaves
		}
		g := sim.NewShardGroupWithQueue(shards, seed, sc.Queue)
		g.Workers = sc.Workers
		t = topology.NewSharded(g, seed)
		t.Assign = func(i int, name string) int {
			return (i % leaves) % shards
		}
	} else {
		t = topology.New(sim.NewEngineWithQueue(seed, sc.Queue))
		t.SetSeed(seed)
	}

	// Hosts in member order: the server first (leaf 0, shard 0 — its
	// construction-time RNG forks replay exactly as on one engine), then
	// the clients. The member list drives the fabric's round-robin leaf
	// assignment.
	server := t.AddHost(host.Config{
		Name:   "server",
		Kernel: kernel.Options{IdleLoop: true},
	})
	members := []string{"server"}
	clientHosts := make([]*host.Host, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%03d", i)
		clientHosts[i] = t.AddHost(host.Config{Name: name})
		members = append(members, name)
	}
	fab := t.AddFabric(topology.FabricSpec{
		Name:    "dc",
		Leaves:  leaves,
		Members: members,
		NIC:     nic.Config{Name: "eth0"},
	})

	srv := httpserv.NewServerMulti(server.K, server.F, server.NICs,
		httpserv.Config{Kind: httpserv.Flash})
	srv.Addr = t.Addr("server")

	chs := make([]*httpserv.ClientHost, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%03d", i)
		port := fab.MemberPorts[i+1] // member 0 is the server
		chs[i] = httpserv.NewClientHost(clientHosts[i], port.NIC, httpserv.ClientHostConfig{
			Concurrency: 4,
			FlowBase:    (i + 1) * 1_000_000,
			Segments:    srv.Segments(),
			Addr:        t.Addr(name),
			ServerAddr:  t.Addr("server"),
			StartDelay:  sim.Time(i) * 100 * sim.Microsecond,
			// Churn: every third response the slot goes dormant for the
			// base-off period plus an exponential draw from the host's
			// private stream — shard-count invariant by construction.
			ChurnEvery: 3,
		})
	}

	for _, h := range t.Hosts() {
		fleetProbe(h, h.Rand())
	}

	if traceCap > 0 {
		t.EnableTracing(traceCap)
	}
	t.Start()
	srv.Start()

	warmup, measure := sc.Warmup/4, sc.Measure/4
	t.RunFor(warmup)
	c0 := srv.Completed
	a0 := server.K.Accounting()
	t0 := t.Now()
	wall0 := time.Now()
	runMeasured(sc, fmt.Sprintf("fleet-hier n=%d", n), t, measure)
	wallMS := float64(time.Since(wall0).Microseconds()) / 1000
	c1 := srv.Completed
	a1 := server.K.Accounting()
	elapsed := t.Now() - t0

	row := FleetHierRow{
		Hosts:      n,
		Leaves:     leaves,
		Completed:  c1 - c0,
		Throughput: float64(c1-c0) / elapsed.Seconds(),
		SrvBusy:    float64(a1.Busy()-a0.Busy()) / float64(elapsed),
		SpineFwd:   fab.Spine.Forwarded(),
		BoundUS:    hardclockPeriodUS + 1,
		WallMS:     wallMS,
	}
	for _, ch := range chs {
		row.Churns += ch.Churns
	}
	// The §3 bound must hold per host — every kernel on the fabric, not a
	// fleet-wide aggregate that could hide one bad machine.
	row.BoundOK = true
	for _, h := range t.Hosts() {
		row.Probes += h.F.DelayHist.N()
		if d := float64(h.F.MaxDelayUS()); d > row.WorstDelay {
			row.WorstDelay = d
		}
		if float64(h.F.MaxDelayUS()) > row.BoundUS {
			row.BoundOK = false
		}
	}
	var chrome []byte
	if traceCap > 0 {
		var buf bytes.Buffer
		if err := t.WriteChrome(&buf); err != nil {
			panic(err)
		}
		chrome = buf.Bytes()
	}
	return row, t.Snapshot(), chrome
}

// RunFleetHier sweeps the hierarchical fleet (sc.FleetCounts overrides the
// default 4/16/64). Rows are independent simulations, parallel across
// sc.Workers and sharded across up to sc.Shards engines, with
// byte-identical output at any setting.
func RunFleetHier(sc Scale) *FleetHierResult {
	counts := sc.FleetCounts
	if counts == nil {
		counts = hierCounts
	}
	rows := make([]FleetHierRow, len(counts))
	snaps := make([]*metrics.Snapshot, len(counts))
	forEach(sc.Workers, len(counts), func(i int) {
		rows[i], snaps[i] = runFleetHier(sc, 400+uint64(i), counts[i])
	})
	return &FleetHierResult{Rows: rows, Shards: sc.Shards, Telemetry: mergeTelemetry(snaps)}
}

// Table renders the hierarchical fleet sweep.
func (r *FleetHierResult) Table() *Table {
	t := &Table{
		Title: "Hierarchical fleet — leaf-spine fabric, churning clients",
		Columns: []string{"clients", "leaves", "resp/s", "completed", "srv busy",
			"churns", "spine fwd", "probes", "worst d (us)", "bound (us)", "bound holds"},
		Metrics: map[string]float64{},
	}
	for _, row := range r.Rows {
		ok := "yes"
		if !row.BoundOK {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f0(float64(row.Hosts)), f0(float64(row.Leaves)),
			f0(row.Throughput), f0(float64(row.Completed)), pct(row.SrvBusy),
			f0(float64(row.Churns)), f0(float64(row.SpineFwd)),
			f0(float64(row.Probes)), f0(row.WorstDelay), f0(row.BoundUS), ok,
		})
		key := fmt.Sprintf("fleethier_%d", row.Hosts)
		t.Metrics[key+"_throughput"] = row.Throughput
		t.Metrics[key+"_worst_delay_us"] = row.WorstDelay
		t.Metrics[key+"_churns"] = float64(row.Churns)
		t.Metrics[key+"_wall_ms"] = row.WallMS
	}
	t.Notes = append(t.Notes,
		"clients spread ~8 per leaf; cross-leaf requests transit the spine over cut-through trunks, and every leaf is shard-local under -shards",
		fmt.Sprintf("expectation (asserted in tests): worst probe delay <= hardclock period %gus + 1 tick on every host, churn included", float64(hardclockPeriodUS)),
		"scaling: a 100k-client fleet at this shape is ~12.5k shard-local leaves; engines scale with leaves, cross-shard sync only with spine traffic")
	if r.Shards > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"sharded execution: up to %d engines (clamped to the leaf count) under conservative sync; tables, telemetry and traces byte-identical to the single-engine path", r.Shards))
	}
	t.Telemetry = r.Telemetry
	return t
}
