package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"softtimers/internal/sim"
)

// The fleet-level differential oracle for the engine queue backends: the
// churn-heavy hierarchical fleet — clients constantly scheduling,
// canceling, and rearming timers through connection churn, with the fault
// plan's split-seed streams driving jitter — must emit byte-identical
// merged telemetry on every backend at every shard count. The binary heap
// on the legacy single engine (shards=0) is the reference; hashed wheel,
// hierarchical wheel, and FFS-bitmap queue at shards 0, 1, and 4 must all
// reproduce it exactly.
func TestQueueBackendsMatchHeapTelemetry(t *testing.T) {
	const n, salt = 6, 777
	run := func(kind sim.QueueKind, shards int) (FleetHierRow, []byte) {
		sc := tinyScale()
		sc.Queue = kind
		sc.Shards = shards
		row, snap := runFleetHier(sc, salt, n)
		row.WallMS = 0 // real time, the one legitimately mode-dependent field
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return row, sj
	}
	refRow, refSnap := run(sim.QueueHeap, 0)
	if refRow.Completed == 0 || refRow.Churns == 0 {
		t.Fatalf("reference row is degenerate: %+v", refRow)
	}
	for _, kind := range sim.QueueKinds() {
		for _, shards := range []int{0, 1, 4} {
			if kind == sim.QueueHeap && shards == 0 {
				continue // the reference itself
			}
			kind, shards := kind, shards
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				row, snap := run(kind, shards)
				if row != refRow {
					t.Errorf("row diverged from heap reference:\n got %+v\nwant %+v", row, refRow)
				}
				if !bytes.Equal(snap, refSnap) {
					t.Errorf("merged telemetry diverged from heap reference (%d vs %d bytes)",
						len(snap), len(refSnap))
				}
			})
		}
	}
}

// The ablation driver end to end: four rows, heap first, telemetry equal
// on every backend, and the wall-clock metrics present for the perf
// trajectory.
func TestQueueAblationRowsAgree(t *testing.T) {
	sc := tinyScale()
	sc.FleetCounts = []int{4}
	res := RunQueueAblation(sc)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 backends", len(res.Rows))
	}
	if res.Rows[0].Backend != "heap" {
		t.Fatalf("first row = %q, heap must be the reference", res.Rows[0].Backend)
	}
	ref := res.Rows[0]
	if ref.Completed == 0 || ref.Churns == 0 {
		t.Fatalf("reference row is degenerate: %+v", ref)
	}
	for _, row := range res.Rows {
		if !row.TelemetryEq {
			t.Errorf("%s: telemetry diverged from heap", row.Backend)
		}
		if row.Throughput != ref.Throughput || row.Completed != ref.Completed ||
			row.Churns != ref.Churns || row.WorstDelay != ref.WorstDelay {
			t.Errorf("%s row diverged: %+v vs %+v", row.Backend, row, ref)
		}
		if !row.BoundOK {
			t.Errorf("%s: §3 delay bound violated", row.Backend)
		}
	}
	tab := res.Table()
	for _, kind := range sim.QueueKinds() {
		key := "queue_" + kind.String() + "_wall_ms"
		if _, ok := tab.Metrics[key]; !ok {
			t.Errorf("table missing metric %s", key)
		}
		if eq := tab.Metrics["queue_"+kind.String()+"_telemetry_eq"]; eq != 1 {
			t.Errorf("table reports telemetry_eq=%v for %s", eq, kind)
		}
	}
	_ = tab.Render()
}
