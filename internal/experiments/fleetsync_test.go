package experiments

// Tests pinning the sync-ablation contract: mining and auto placement are
// invisible in every result artifact — rows, merged telemetry, Chrome
// traces — across shard counts, worker counts, and fault scenarios, while
// the fleet-sync table itself stays deterministic and its economics obey
// the mined-grants-dominate-static theorem.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
	"time"

	"softtimers/internal/sim"
)

// The full knob matrix against the single-engine oracle: shards {1, 4, 8}
// x workers {1, 8}, with mining on and auto placement, on the clean fleet
// AND under the hostile fault scenario. Every cell must reproduce the
// legacy row, merged telemetry, and Chrome trace byte for byte.
func TestFleetMiningAutoPlacementMatchesLegacy(t *testing.T) {
	const n, salt, traceCap = 8, 777, 4096
	for _, scenario := range []string{"", "hostile"} {
		name := "clean"
		if scenario != "" {
			name = scenario
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards, workers int, placement string) (FleetRow, []byte, []byte) {
				sc := tinyScale()
				sc.Shards = shards
				sc.Workers = workers
				sc.Placement = placement
				row, snap, _, chrome := runFleetCfg(sc, salt, n, fleetOpts{traceCap: traceCap, scenario: scenario})
				row.WallMS = 0
				sj, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				return row, sj, chrome
			}
			refRow, refSnap, refChrome := run(0, 0, "")
			// Under the hostile scenario the tiny fleet legitimately
			// completes nothing — the row is still a full comparison object.
			if refRow.Probes == 0 || (scenario == "" && refRow.Completed == 0) {
				t.Fatalf("reference row is degenerate: %+v", refRow)
			}
			for _, c := range []struct {
				label           string
				shards, workers int
				placement       string
			}{
				{"shards=1/static", 1, 1, PlacementStatic},
				{"shards=1/auto", 1, 1, PlacementAuto},
				{"shards=4/static", 4, 1, PlacementStatic},
				{"shards=4/auto/workers=8", 4, 8, PlacementAuto},
				{"shards=8/static/workers=8", 8, 8, PlacementStatic},
				{"shards=8/auto", 8, 1, PlacementAuto},
			} {
				t.Run(c.label, func(t *testing.T) {
					row, snap, chrome := run(c.shards, c.workers, c.placement)
					if row != refRow {
						t.Errorf("row diverged from legacy:\n got %+v\nwant %+v", row, refRow)
					}
					if !bytes.Equal(snap, refSnap) {
						t.Errorf("merged telemetry diverged from legacy (%d vs %d bytes)", len(snap), len(refSnap))
					}
					if !bytes.Equal(chrome, refChrome) {
						t.Errorf("Chrome trace diverged from legacy (%d vs %d bytes)", len(chrome), len(refChrome))
					}
				})
			}
			// Mining off is the same history too, with zero mined gain.
			sc := tinyScale()
			sc.Shards = 4
			sc.NoMining = true
			row, snap, sync, _ := runFleetCfg(sc, salt, n, fleetOpts{scenario: scenario})
			row.WallMS = 0
			sj, _ := json.Marshal(snap)
			if row != refRow || !bytes.Equal(sj, refSnap) {
				t.Error("mining=off run diverged from legacy")
			}
			if g := sync.Histograms["sync.mined_gain_us"]; g.Sum != 0 {
				t.Errorf("mined gain %f with mining off, want 0", g.Sum)
			}
			if _, ok := sync.Counters["sync.mining"]; ok {
				t.Error("sync.mining flag present with mining off")
			}
		})
	}
}

// The sync telemetry itself is deterministic for a fixed shard
// configuration: a worker-pool run must dump the same sync snapshot as a
// serial one (the -sync analogue of the -metrics determinism diff).
func TestFleetSyncSnapshotWorkerDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		sc := tinyScale()
		sc.Shards = 4
		sc.Workers = workers
		_, _, sync, _ := runFleetCfg(sc, 306, 16, fleetOpts{})
		sj, err := json.Marshal(sync)
		if err != nil {
			t.Fatal(err)
		}
		return sj
	}
	if serial, pooled := run(1), run(8); !bytes.Equal(serial, pooled) {
		t.Error("sync snapshot differs between serial and worker-pool runs")
	}
}

// The fleet-sync ablation: rows populated for every configuration, mined
// rows within their static twins' round budget, identical workload
// history across configurations, and a table deterministic at any
// Workers setting.
func TestRunFleetSync(t *testing.T) {
	sc := tinyScale()
	sc.FleetCounts = []int{16} // keep the ablation fleet small in tests
	res := RunFleetSync(sc)
	if res.Hosts != 64 {
		t.Fatalf("ablation ran %d hosts, want the 64 floor", res.Hosts)
	}
	if len(res.Rows) != len(fleetSyncConfigs) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(fleetSyncConfigs))
	}
	byLabel := map[string]FleetSyncRow{}
	for i, row := range res.Rows {
		if row.Rounds == 0 || row.Messages == 0 {
			t.Fatalf("row %d (%s) is empty: %+v", i, row.Label, row)
		}
		if row.GrantMeanUS <= 0 {
			t.Fatalf("row %d (%s): grant mean %.1f us", i, row.Label, row.GrantMeanUS)
		}
		if !row.Mining && row.MinedGainUS != 0 {
			t.Fatalf("row %d (%s): mined gain %.1f us with mining off", i, row.Label, row.MinedGainUS)
		}
		byLabel[row.Label] = row
	}
	for _, pair := range [][2]string{{"4sh mined", "4sh static"}, {"8sh mined", "8sh static"}} {
		mined, static := byLabel[pair[0]], byLabel[pair[1]]
		if mined.Rounds > static.Rounds {
			t.Errorf("%s took %d rounds, %s took %d; mined grants dominate static", pair[0], mined.Rounds, pair[1], static.Rounds)
		}
		if mined.Messages != static.Messages {
			t.Errorf("message count moved with mining: %d vs %d", mined.Messages, static.Messages)
		}
	}
	if res.Telemetry == nil || res.Sync == nil {
		t.Fatal("ablation carried no telemetry or sync snapshot")
	}

	// Worker-count determinism of the whole table.
	render := func(workers int) string {
		s := sc
		s.Workers = workers
		return RunFleetSync(s).Table().Render()
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("fleet-sync table differs across worker counts:\n%s\nvs\n%s", a, b)
	}
}

// Each fleet-sync configuration replays the identical workload: the
// per-config workload snapshots must be byte-identical, which is why the
// result carries one snapshot rather than a per-row list.
func TestFleetSyncWorkloadInvariant(t *testing.T) {
	sc := tinyScale()
	snaps := make([][]byte, len(fleetSyncConfigs))
	for i, cfg := range fleetSyncConfigs {
		rsc := sc
		rsc.Shards = cfg.Shards
		rsc.NoMining = !cfg.Mining
		rsc.Placement = cfg.Placement
		_, snap, _, _ := runFleetCfg(rsc, 300, 16, fleetOpts{})
		sj, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = sj
	}
	for i := 1; i < len(snaps); i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Errorf("config %d (%s) workload snapshot diverged from config 0", i, fleetSyncConfigs[i].Label)
		}
	}
}

// The fleet-sync registry entry renders without carrying stale state.
func TestFleetSyncTableShape(t *testing.T) {
	sc := tinyScale()
	sc.FleetCounts = []int{16}
	tab := RunFleetSync(sc).Table()
	if len(tab.Rows) != len(fleetSyncConfigs) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(fleetSyncConfigs))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Columns))
		}
	}
	wantCols := []string{"config", "shards", "mining", "placement", "rounds",
		"msgs", "msgs/round", "grant mean (us)", "reached", "idle rounds", "mined gain (us)"}
	if !reflect.DeepEqual(tab.Columns, wantCols) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if tab.Sync == nil {
		t.Fatal("table carries no sync snapshot for -sync")
	}
	if tab.Metrics["cfg0_rounds"] == 0 {
		t.Fatal("cfg0_rounds metric missing")
	}
}

// BenchmarkFleetSharded1024 times the 1024-host fleet row per shard
// count — the ROADMAP sweep's headline wall numbers, reported on every
// machine (the 6x assertion below only arms with enough real cores).
func BenchmarkFleetSharded1024(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(map[int]string{1: "shards=1", 8: "shards=8"}[shards], func(b *testing.B) {
			sc := tinyScale()
			sc.Warmup = 200 * sim.Millisecond
			sc.Measure = 400 * sim.Millisecond
			sc.Shards = shards
			sc.Workers = shards
			for i := 0; i < b.N; i++ {
				runFleet(sc, 901, 1024)
			}
		})
	}
}

// The ROADMAP target: with mining and 8 shards, the 1024-host fleet row
// must run >= 6x faster than single-sharded. Only a machine with 8+ real
// cores can express that; elsewhere the equivalence tests above carry the
// correctness contract and BENCH_results.json records the honest numbers.
func TestFleetShardedSpeedup1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host speedup in -short mode")
	}
	if runtime.NumCPU() < 8 || runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("need >= 8 CPUs to express 6x parallel speedup (NumCPU=%d GOMAXPROCS=%d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	wall := func(shards int) time.Duration {
		sc := tinyScale()
		sc.Warmup = 200 * sim.Millisecond
		sc.Measure = 400 * sim.Millisecond
		sc.Shards = shards
		sc.Workers = shards
		start := time.Now()
		runFleet(sc, 901, 1024)
		return time.Since(start)
	}
	wall(1) // warm caches before timing
	w1, w8 := wall(1), wall(8)
	if w8 > w1/6 {
		t.Errorf("1024-host fleet: shards=8 took %v, want <= 1/6 of shards=1's %v", w8, w1)
	}
}
