// Differential oracle over the pluggable event-queue backends: every
// backend — binary heap (the reference), hashed wheel, hierarchical wheel,
// FFS-bitmap bucket queue — is driven with the same seeded operation
// stream (schedule, cancel, in-place reschedule, stale-handle probes,
// steps, bounded runs) and must produce the exact same (time, seq) fire
// order, the same cancel sequence, and the same final clock. Each backend
// additionally carries the engine property-test invariants on its own:
// exactly-once fire-xor-cancel, monotone fire times, stale handles inert
// under Pending/Cancel/Reschedule.
//
// Each seed is its own subtest, so a failure shrinks by replay:
//
//	go test ./internal/sim -run 'TestQueueDifferential/clean/seed=N' -v
//
// The "faultplan" variant draws the stream from a fault plan's split-seed
// RNG, the same generator the fault-injection layer uses.
package sim_test

import (
	"fmt"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/sim"
)

// diffTrace is one backend's observable history: everything that must be
// identical across backends.
type diffTrace struct {
	fired      []fireRec
	canceled   []int
	resched    []int
	end        sim.Time
	maxPending int
}

// diffModel drives one engine with the shared operation stream. Every
// backend gets its own model and its own RNG constructed from the same
// seed, so the streams are identical as long as the engines fire events in
// identical order — any ordering divergence desynchronizes the streams and
// the traces diverge loudly.
type diffModel struct {
	t   *testing.T
	eng *sim.Engine
	rng *sim.RNG

	live    map[int]sim.Event
	liveIDs []int
	dead    []sim.Event
	at      map[int]sim.Time // expected fire instant, updated on reschedule

	trace   diffTrace
	nextID  int
	maxLive int
}

func newDiffModel(t *testing.T, eng *sim.Engine, rng *sim.RNG) *diffModel {
	return &diffModel{
		t: t, eng: eng, rng: rng,
		live: map[int]sim.Event{},
		at:   map[int]sim.Time{},
	}
}

// drawDelay picks a scheduling offset: mostly near (with a same-instant
// spike, exercising FIFO ties), sometimes past the FFS queue's 4 ms
// bucket window, rarely past the hierarchical queue's level span — so the
// overflow lists and their migration back into the windows are on every
// run's path, not just the happy in-window case.
func (m *diffModel) drawDelay() sim.Time {
	switch r := m.rng.Float64(); {
	case r < 0.2:
		return 0
	case r < 0.9:
		return sim.Time(m.rng.Intn(1500))
	case r < 0.98:
		return sim.Time(m.rng.Intn(8_000_000))
	default:
		return sim.Time(m.rng.Intn(40_000_000_000))
	}
}

func (m *diffModel) schedule() {
	d := m.drawDelay()
	id := m.nextID
	m.nextID++
	m.at[id] = m.eng.Now() + d
	m.live[id] = m.eng.AfterLabeled(d, fmt.Sprintf("diff:%d", id), m.onFire(id))
	m.liveIDs = append(m.liveIDs, id)
	if len(m.live) > m.maxLive {
		m.maxLive = len(m.live)
	}
}

func (m *diffModel) onFire(id int) func() {
	return func() {
		if m.eng.Now() != m.at[id] {
			m.t.Fatalf("[%s] event %d fired at %v, scheduled for %v",
				m.eng.Queue(), id, m.eng.Now(), m.at[id])
		}
		if _, ok := m.live[id]; !ok {
			m.t.Fatalf("[%s] event %d fired but is not live (double fire or fired after cancel)",
				m.eng.Queue(), id)
		}
		m.retire(id)
		m.trace.fired = append(m.trace.fired, fireRec{id: id, at: m.eng.Now()})
		// Handler-driven churn, the kernel/TCP pattern: schedule, cancel,
		// or rearm other timers from inside a firing handler.
		switch r := m.rng.Float64(); {
		case r < 0.25:
			m.schedule()
		case r < 0.33:
			m.cancelLive()
		case r < 0.45:
			m.rescheduleLive()
		}
	}
}

func (m *diffModel) retire(id int) {
	m.dead = append(m.dead, m.live[id])
	delete(m.live, id)
	for i, v := range m.liveIDs {
		if v == id {
			m.liveIDs[i] = m.liveIDs[len(m.liveIDs)-1]
			m.liveIDs = m.liveIDs[:len(m.liveIDs)-1]
			break
		}
	}
}

func (m *diffModel) cancelLive() {
	if len(m.liveIDs) == 0 {
		return
	}
	id := m.liveIDs[m.rng.Intn(len(m.liveIDs))]
	if !m.live[id].Cancel() {
		m.t.Fatalf("[%s] cancel of live event %d returned false", m.eng.Queue(), id)
	}
	m.trace.canceled = append(m.trace.canceled, id)
	m.retire(id)
}

// rescheduleLive rearms a random live event in place — sometimes to the
// current instant, so rescheduled events constantly contend with fresh
// same-instant schedules and the new-seq FIFO rule is exercised on every
// backend (heap sift vs wheel/bucket migration).
func (m *diffModel) rescheduleLive() {
	if len(m.liveIDs) == 0 {
		return
	}
	id := m.liveIDs[m.rng.Intn(len(m.liveIDs))]
	ev := m.live[id]
	at := m.eng.Now() + m.drawDelay()
	if !ev.Reschedule(at) {
		m.t.Fatalf("[%s] reschedule of live event %d returned false", m.eng.Queue(), id)
	}
	if !ev.Pending() {
		m.t.Fatalf("[%s] event %d not Pending after reschedule", m.eng.Queue(), id)
	}
	if ev.At() != at {
		m.t.Fatalf("[%s] event %d At() = %v after reschedule to %v", m.eng.Queue(), id, ev.At(), at)
	}
	m.at[id] = at
	m.live[id] = ev // Reschedule updates the handle's cached deadline
	m.trace.resched = append(m.trace.resched, id)
}

// probeDead checks a retired handle for inertness across the whole handle
// API — including Reschedule, which must refuse to revive a dead handle
// on every backend even after its slot was recycled.
func (m *diffModel) probeDead() {
	if len(m.dead) == 0 {
		return
	}
	ev := m.dead[m.rng.Intn(len(m.dead))]
	if ev.Pending() {
		m.t.Fatalf("[%s] retired handle reports Pending", m.eng.Queue())
	}
	if ev.Cancel() {
		m.t.Fatalf("[%s] retired handle Cancel returned true", m.eng.Queue())
	}
	if ev.Reschedule(m.eng.Now() + 50) {
		m.t.Fatalf("[%s] retired handle Reschedule returned true", m.eng.Queue())
	}
}

func (m *diffModel) check() {
	if m.eng.Pending() != len(m.live) {
		m.t.Fatalf("[%s] engine has %d pending, model has %d live",
			m.eng.Queue(), m.eng.Pending(), len(m.live))
	}
}

func (m *diffModel) run(steps int) {
	for i := 0; i < steps; i++ {
		switch r := m.rng.Float64(); {
		case r < 0.30:
			m.schedule()
		case r < 0.40:
			m.cancelLive()
		case r < 0.55:
			m.rescheduleLive()
		case r < 0.60:
			m.probeDead()
		case r < 0.88:
			m.eng.Step()
		default:
			m.eng.RunFor(sim.Time(m.rng.Intn(2500)))
		}
		m.check()
	}
	m.eng.Run()
	m.check()
	if len(m.live) != 0 {
		m.t.Fatalf("[%s] %d events still live after drain", m.eng.Queue(), len(m.live))
	}

	// Per-backend invariants before any cross-backend comparison.
	if got, want := len(m.trace.fired)+len(m.trace.canceled), m.nextID; got != want {
		m.t.Fatalf("[%s] fired %d + canceled %d = %d, scheduled %d",
			m.eng.Queue(), len(m.trace.fired), len(m.trace.canceled), got, want)
	}
	seen := map[int]bool{}
	for _, r := range m.trace.fired {
		if seen[r.id] {
			m.t.Fatalf("[%s] event %d fired twice", m.eng.Queue(), r.id)
		}
		seen[r.id] = true
	}
	for i := 1; i < len(m.trace.fired); i++ {
		if m.trace.fired[i].at < m.trace.fired[i-1].at {
			m.t.Fatalf("[%s] fire %d at %v after fire at %v: time went backwards",
				m.eng.Queue(), m.trace.fired[i].id, m.trace.fired[i].at, m.trace.fired[i-1].at)
		}
	}
	m.trace.end = m.eng.Now()
	m.trace.maxPending = m.eng.MaxPending()
}

// runQueueDiff replays one operation stream on every backend and diffs
// each alternate's trace against the heap's, element by element.
func runQueueDiff(t *testing.T, steps int, mkRNG func() *sim.RNG, seed uint64) {
	kinds := sim.QueueKinds()
	if kinds[0] != sim.QueueHeap {
		t.Fatalf("QueueKinds()[0] = %v, heap must be the reference", kinds[0])
	}
	traces := make([]diffTrace, len(kinds))
	for i, kind := range kinds {
		m := newDiffModel(t, sim.NewEngineWithQueue(seed, kind), mkRNG())
		m.run(steps)
		traces[i] = m.trace
	}
	ref := traces[0]
	if len(ref.fired) == 0 || len(ref.resched) == 0 {
		t.Fatalf("degenerate reference run: %d fires, %d reschedules", len(ref.fired), len(ref.resched))
	}
	for i := 1; i < len(kinds); i++ {
		got, kind := traces[i], kinds[i]
		if len(got.fired) != len(ref.fired) {
			t.Fatalf("[%s] fired %d events, heap fired %d", kind, len(got.fired), len(ref.fired))
		}
		for j := range ref.fired {
			if got.fired[j] != ref.fired[j] {
				t.Fatalf("[%s] fire #%d = %+v, heap fired %+v (first divergence)",
					kind, j, got.fired[j], ref.fired[j])
			}
		}
		if len(got.canceled) != len(ref.canceled) {
			t.Fatalf("[%s] canceled %d events, heap canceled %d", kind, len(got.canceled), len(ref.canceled))
		}
		for j := range ref.canceled {
			if got.canceled[j] != ref.canceled[j] {
				t.Fatalf("[%s] cancel #%d = event %d, heap canceled %d",
					kind, j, got.canceled[j], ref.canceled[j])
			}
		}
		if len(got.resched) != len(ref.resched) {
			t.Fatalf("[%s] rescheduled %d events, heap rescheduled %d", kind, len(got.resched), len(ref.resched))
		}
		if got.end != ref.end {
			t.Fatalf("[%s] final clock %v, heap ended at %v", kind, got.end, ref.end)
		}
		if got.maxPending != ref.maxPending {
			t.Fatalf("[%s] MaxPending %d, heap saw %d", kind, got.maxPending, ref.maxPending)
		}
	}
}

// TestQueueDifferential is the backend oracle under both randomness
// sources: a bare RNG and a fault plan's split-seed stream.
func TestQueueDifferential(t *testing.T) {
	const steps = 500
	hostile := faults.Spec{
		Drop: 0.05, Dup: 0.02, Reorder: 0.03,
		IntrJitterMax: 5 * sim.Microsecond, IntrCoalesce: 0.1,
		WorkJitter: 0.25, Starve: 0.5,
	}
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("clean/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runQueueDiff(t, steps, func() *sim.RNG { return sim.NewRNG(seed * 0x9e37) }, seed)
		})
		t.Run(fmt.Sprintf("faultplan/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runQueueDiff(t, steps, func() *sim.RNG {
				return faults.New(seed, hostile).Stream("sim.queuediff")
			}, seed)
		})
	}
}

// TestQueueKindsRoundTrip pins the flag surface the differential smoke and
// stbench -queue rely on: every kind parses back from its name, and the
// reference backend is the zero value.
func TestQueueKindsRoundTrip(t *testing.T) {
	if sim.QueueHeap != 0 {
		t.Fatal("QueueHeap must be the zero QueueKind")
	}
	for _, kind := range sim.QueueKinds() {
		back, err := sim.ParseQueueKind(kind.String())
		if err != nil || back != kind {
			t.Fatalf("ParseQueueKind(%q) = %v, %v", kind.String(), back, err)
		}
	}
	if _, err := sim.ParseQueueKind("splay"); err == nil {
		t.Fatal("ParseQueueKind accepted an unknown backend name")
	}
}
