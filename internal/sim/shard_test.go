package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// A single-shard group must replay a legacy engine run byte-for-byte:
// same seed, same event order, same clocks.
func TestShardGroupSingleShardMatchesEngine(t *testing.T) {
	run := func(eng *Engine, runTo func(Time)) []string {
		var log []string
		rng := NewRNG(7)
		var tick func()
		tick = func() {
			log = append(log, fmt.Sprintf("%d", eng.Now()))
			if eng.Now() < 2*Millisecond {
				eng.After(rng.ExpTime(50*Microsecond), tick)
			}
		}
		eng.After(10*Microsecond, tick)
		runTo(3 * Millisecond)
		return log
	}

	ref := NewEngine(42)
	want := run(ref, func(t Time) { ref.RunUntil(t) })

	g := NewShardGroup(1, 42)
	got := run(g.Engine(0), func(t Time) { g.Run(t) })

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("single-shard group diverged from bare engine:\n%v\n%v", want, got)
	}
	if g.Now() != 3*Millisecond || g.Engine(0).Now() != 3*Millisecond {
		t.Fatalf("clocks not advanced to horizon: group %v engine %v", g.Now(), g.Engine(0).Now())
	}
}

// Arrival-band ordering on a single engine: at one instant, every
// ordinarily scheduled event fires first — even ones scheduled after the
// arrivals, or during the instant's own processing — then arrivals in
// (conduit, seq) order, regardless of scheduling order.
func TestEngineArrivalBandOrdering(t *testing.T) {
	eng := NewEngine(1)
	T := 100 * Microsecond
	var order []string
	log := func(s string) func() { return func() { order = append(order, s) } }

	eng.AtArrival(T, 7, 1, "", log("c7#1"))
	eng.AtArrival(T, 2, 2, "", log("c2#2"))
	eng.At(T, func() {
		order = append(order, "local1")
		eng.At(T, log("local-nested")) // same-instant, scheduled mid-processing
	})
	eng.AtArrival(T, 2, 1, "", log("c2#1"))
	eng.At(T, log("local2"))

	eng.RunUntil(Millisecond)
	want := []string{"local1", "local2", "local-nested", "c2#1", "c2#2", "c7#1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("arrival-band order = %v, want %v", order, want)
	}
}

// Arrival events are first-class: cancelable via the returned handle, and
// the key-range panics guard the composite encoding.
func TestEngineArrivalBandHandlesAndPanics(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	ev := eng.AtArrival(50*Microsecond, 1, 1, "x", func() { fired = true })
	if !ev.Pending() || ev.Label() != "x" {
		t.Fatal("arrival event handle not pending or mislabeled")
	}
	if !ev.Cancel() {
		t.Fatal("arrival event did not cancel")
	}
	eng.RunUntil(Millisecond)
	if fired {
		t.Fatal("canceled arrival fired")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative conduit", func() { eng.AtArrival(2*Millisecond, -1, 1, "", func() {}) })
	mustPanic("seq overflow", func() { eng.AtArrival(2*Millisecond, 0, 1<<28, "", func() {}) })
	mustPanic("past arrival", func() { eng.AtArrival(0, 0, 1, "", func() {}) })
}

// Cross-shard tie-breaking: messages due at the same instant execute in
// (time, conduit, seq) order after every ordinary event at that instant —
// conduit id order, not send order, source-shard order, or local-vs-remote
// provenance. The local arrival on conduit 1 beats both remote batches
// even though it is scheduled directly on the destination engine.
func TestShardGroupTieBreakOrdering(t *testing.T) {
	g := NewShardGroup(3, 1)
	g.SetLookahead(1, 0, 50*Microsecond)
	g.SetLookahead(2, 0, 50*Microsecond)

	// Conduit ids are caller-assigned (topologies use join order): shard
	// 2 sends on conduit 2, shard 1 on conduit 3.
	c2 := g.NewConduit(2, 2)
	c1 := g.NewConduit(1, 3)

	var order []string
	T := 100 * Microsecond
	// Shard 1 emits early, shard 2 late; both target the same instant.
	g.Engine(1).At(10*Microsecond, func() {
		c1.Send(0, T, 1, func() { order = append(order, "c3#1") })
		c1.Send(0, T, 2, func() { order = append(order, "c3#2") })
	})
	g.Engine(2).At(40*Microsecond, func() {
		c2.Send(0, T, 1, func() { order = append(order, "c2#1") })
		c2.Send(0, T, 2, func() { order = append(order, "c2#2") })
	})
	// Ordinary events on shard 0 at the same instant fire before every
	// arrival; a local arrival-band event interleaves with the remote
	// ones purely by conduit id.
	g.Engine(0).At(T, func() { order = append(order, "local") })
	g.Engine(0).AtArrival(T, 1, 1, "", func() { order = append(order, "c1#1") })

	g.Run(Millisecond)

	want := []string{"local", "c1#1", "c2#1", "c2#2", "c3#1", "c3#2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("tie-break order = %v, want %v", order, want)
	}
	if rounds, msgs := g.Stats(); rounds == 0 || msgs != 4 {
		t.Fatalf("stats = %d rounds %d msgs, want >0 rounds and 4 msgs", rounds, msgs)
	}
}

// A message timestamped exactly at the run horizon is delivered in the
// same Run call, with the destination engine advanced to the horizon.
func TestShardGroupDeliversAtHorizon(t *testing.T) {
	g := NewShardGroup(2, 1)
	g.SetLookahead(0, 1, 25*Microsecond)
	c := g.NewConduit(0, 1)

	until := 200 * Microsecond
	fired := false
	g.Engine(0).At(until-25*Microsecond, func() {
		c.Send(1, until, 1, func() {
			if now := g.Engine(1).Now(); now != until {
				t.Errorf("horizon message ran at %v, want %v", now, until)
			}
			fired = true
		})
	})
	g.Run(until)
	if !fired {
		t.Fatal("message at the run horizon was not delivered")
	}
	if g.InFlight() != 0 {
		t.Fatalf("in-flight after run = %d, want 0", g.InFlight())
	}
}

// A message due after the run horizon is injected into its destination
// engine as a pending future event — the same shape an in-flight packet
// has on a single engine — and fires on the next Run.
func TestShardGroupCarriesMessagesAcrossRuns(t *testing.T) {
	g := NewShardGroup(2, 1)
	g.SetLookahead(0, 1, 25*Microsecond)
	c := g.NewConduit(0, 1)

	fired := false
	g.Engine(0).At(90*Microsecond, func() {
		c.Send(1, 150*Microsecond, 1, func() { fired = true })
	})
	g.Run(100 * Microsecond)
	if fired {
		t.Fatal("future message fired early")
	}
	if g.InFlight() != 0 || g.Engine(1).Pending() != 1 {
		t.Fatalf("in-flight = %d, dst pending = %d; want 0 and 1 (injected future event)",
			g.InFlight(), g.Engine(1).Pending())
	}
	g.Run(200 * Microsecond)
	if !fired {
		t.Fatal("carried message never fired")
	}
}

func TestShardGroupLookaheadPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	g := NewShardGroup(2, 1)
	mustPanic("zero lookahead", func() { g.SetLookahead(0, 1, 0) })
	mustPanic("self lookahead", func() { g.SetLookahead(1, 1, Microsecond) })
	mustPanic("negative conduit id", func() { g.NewConduit(0, -1) })

	c := g.NewConduit(0, 1)
	mustPanic("send without lookahead", func() { c.Send(1, Millisecond, 1, func() {}) })
	g.SetLookahead(0, 1, 30*Microsecond)
	mustPanic("send inside lookahead", func() { c.Send(1, 10*Microsecond, 1, func() {}) })
}

// ringLog runs the reference workload used by the equivalence tests: K
// logical nodes, each ticking at its own prime-ish period; every tick
// logs locally and hands a message to the next node D(i) later, which
// logs on arrival. send abstracts the hand-off so the same closure runs
// through one engine's arrival band (Engine.AtArrival) or across shards
// (Conduit.Send) — with the same (conduit, seq) keys, which is exactly
// how topologies wire it.
func ringLog(engines []*Engine, until Time,
	send func(src, dst int, at Time, seq uint64, fn func())) [][]string {
	const K = 4
	periods := []Time{7013, 11003, 13007, 17011} // ns, co-prime-ish
	delay := func(i int) Time { return 40*Microsecond + Time(i)*7 }

	logs := make([][]string, K)
	seqs := make([]uint64, K)
	node := func(i int) *Engine { return engines[i%len(engines)] }
	for i := 0; i < K; i++ {
		i := i
		var tick func()
		tick = func() {
			now := node(i).Now()
			logs[i] = append(logs[i], fmt.Sprintf("tick@%d", now))
			dst := (i + 1) % K
			at := now + delay(i)
			if at <= until {
				seqs[i]++
				send(i, dst, at, seqs[i], func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("msg@%d from %d", at, i))
				})
			}
			if next := now + periods[i]; next <= until {
				node(i).At(next, tick)
			}
		}
		node(i).At(periods[i], tick)
	}
	return logs
}

// The sharded run must produce exactly the per-node event history of the
// same workload on one engine — at any worker count, in one Run or many.
func TestShardGroupMatchesSingleEngineReference(t *testing.T) {
	const until = 2 * Millisecond

	// Reference: all four nodes on one engine; the hand-off is an
	// arrival-band event keyed by the sender's conduit id (= src+1).
	ref := NewEngine(9)
	wantLogs := ringLog([]*Engine{ref, ref, ref, ref}, until,
		func(src, dst int, at Time, seq uint64, fn func()) {
			ref.AtArrival(at, int32(src)+1, seq, "", fn)
		})
	ref.RunUntil(until)

	shardedLogs := func(workers int, split []Time) [][]string {
		g := NewShardGroup(4, 9)
		g.Workers = workers
		for s := 0; s < 4; s++ {
			g.SetLookahead(s, (s+1)%4, 40*Microsecond)
		}
		cons := make([]*Conduit, 4)
		for s := 0; s < 4; s++ {
			cons[s] = g.NewConduit(s, int32(s)+1)
		}
		engines := []*Engine{g.Engine(0), g.Engine(1), g.Engine(2), g.Engine(3)}
		logs := ringLog(engines, until, func(src, dst int, at Time, seq uint64, fn func()) {
			cons[src].Send(dst, at, seq, fn)
		})
		for _, h := range split {
			g.Run(h)
		}
		if rounds, _ := g.Stats(); rounds == 0 {
			t.Fatal("sharded run executed no rounds")
		}
		return logs
	}

	cases := []struct {
		name    string
		workers int
		split   []Time
	}{
		{"serial", 1, []Time{until}},
		{"parallel", 4, []Time{until}},
		{"resumed", 2, []Time{until / 3, until}},
	}
	for _, tc := range cases {
		got := shardedLogs(tc.workers, tc.split)
		if !reflect.DeepEqual(wantLogs, got) {
			t.Fatalf("%s: sharded logs diverge from single-engine reference", tc.name)
		}
	}
}
