package sim

// The engine's run loop is driven by a pluggable clock, mirroring the
// event-queue seam in queue.go. The default — sim mode — has no driver at
// all: Engine.driver stays nil and RunUntil/Run keep their original tight
// loops, branching once per *call* (never per event), so the deterministic
// engine is byte-identical to the pre-seam code and its hot path pays
// nothing. A non-nil driver slaves the run loop to an external clock: the
// engine asks the driver for permission before firing each event, and the
// driver either authorizes it (after blocking until the event's virtual
// time has arrived on the external clock) or hands back externally
// injected work to run first.
//
// The one real driver is RealTimeClock, which maps virtual time onto the
// wall clock for the emulation mode (package emu): virtual nanoseconds
// advance 1:1 with time.Now(), behind-schedule events fire immediately in
// a catch-up burst with the lag recorded, and goroutines owning real OS
// sockets inject closures that run on the engine goroutine at the
// wall-mapped virtual instant. Determinism ends at this seam: a run under
// RealTimeClock depends on real scheduling and real I/O, which is the
// point — and why stbench rejects -clock realtime for every experiment
// that is part of the reproducibility contract.

import (
	"fmt"
	"sync"
	"time"

	"softtimers/internal/stats"
)

// ClockDriver paces a driven run loop. Implementations are consulted only
// when installed (SetClockDriver); the nil driver is sim mode.
//
// The contract, relied on by Engine.runDriven:
//
//   - Begin(now) is called at the top of every driven run with the
//     engine's current virtual time. Drivers anchor their epoch on the
//     first call and treat later calls as no-ops, so chunked runs
//     (repeated RunFor slices) share one continuous mapping.
//   - WaitUntil(at) blocks until the external clock reaches virtual time
//     at, then returns (at, nil): the caller may fire the event due at
//     that instant (or end the run, if at was the run horizon). If
//     externally injected work arrives first, it returns early with
//     (adv, work): the closures to run and the wall-mapped virtual time
//     they arrived at. The engine clamps adv into [now, at], advances its
//     clock, runs the closures, and re-evaluates the queue — an injected
//     closure may have scheduled something earlier than the event it
//     interrupted the wait for.
//   - A nil and an empty work slice are equivalent: len(work) == 0 means
//     the wait completed. Both wait loops (Engine.runDriven and
//     ShardGroup.waitForRound) terminate on len(work) == 0, so a driver
//     that hands back empty non-nil batches cannot spin them, and a
//     conforming driver only returns early with at least one closure.
type ClockDriver interface {
	Begin(now Time)
	WaitUntil(at Time) (adv Time, work []func())
}

// ClockKind selects the engine's clock driver (stbench -clock).
type ClockKind uint8

const (
	// ClockSim is the default: virtual time advances only when events
	// fire, runs are deterministic, and the engine carries no driver at
	// all — the run loop is the original tight loop, byte-identical
	// results and zero dispatch.
	ClockSim ClockKind = iota
	// ClockRealTime slaves virtual time to the wall clock (RealTimeClock):
	// each event fires when time.Now() reaches its virtual timestamp,
	// behind-schedule events fire immediately with the lag recorded, and
	// external goroutines may inject work between events. Runs are not
	// reproducible; only emulation experiments accept it.
	ClockRealTime
)

// clockKindNames orders the stable names; index = ClockKind.
var clockKindNames = [...]string{"sim", "realtime"}

// String returns the stable lowercase name ("sim", "realtime") used by
// stbench -clock.
func (k ClockKind) String() string {
	if int(k) < len(clockKindNames) {
		return clockKindNames[k]
	}
	return fmt.Sprintf("ClockKind(%d)", uint8(k))
}

// Description returns the one-line summary stbench -list prints.
func (k ClockKind) Description() string {
	switch k {
	case ClockSim:
		return "deterministic virtual time (the default; byte-identical runs)"
	case ClockRealTime:
		return "virtual time slaved to the wall clock (emulation mode; not reproducible)"
	}
	return "unknown clock driver"
}

// ParseClockKind maps a stable name back to its ClockKind.
func ParseClockKind(s string) (ClockKind, error) {
	for i, n := range clockKindNames {
		if s == n {
			return ClockKind(i), nil
		}
	}
	return 0, fmt.Errorf("sim: unknown clock kind %q (want sim or realtime)", s)
}

// ClockKinds returns every driver kind in presentation order, sim first.
func ClockKinds() []ClockKind {
	return []ClockKind{ClockSim, ClockRealTime}
}

// NewClockDriver builds the driver for kind, or nil for ClockSim (sim mode
// is the driverless engine, exactly as QueueHeap is the backendless queue).
func NewClockDriver(kind ClockKind) ClockDriver {
	switch kind {
	case ClockSim:
		return nil
	case ClockRealTime:
		return NewRealTimeClock(RealTimeOptions{})
	}
	panic(fmt.Sprintf("sim: unknown clock kind %d", kind))
}

// RealTimeOptions configures a RealTimeClock. The zero value uses the real
// wall clock; tests inject fakes so `go test ./...` never sleeps.
type RealTimeOptions struct {
	// Now reads the wall clock (default time.Now).
	Now func() time.Time
	// Sleep blocks for up to d, returning early when wake fires (an
	// Inject arrived). The default sleeps on a timer. Fakes advance a
	// synthetic wall clock instead of blocking.
	Sleep func(d time.Duration, wake <-chan struct{})
}

// RealTimeClock is the ClockDriver that slaves virtual time to the wall
// clock. The mapping is a fixed affine anchor taken at Begin: virtual time
// now corresponds to the wall instant of the first Begin, and both advance
// at the same rate thereafter.
//
// Catch-up/lag policy: when the engine falls behind — a handler ran long,
// the OS descheduled the process, or a burst of injected work piled up —
// every overdue event is authorized immediately, back to back, until the
// virtual clock catches the wall clock (the soft-timer facility's own
// "fire everything due" semantics, one level down). Each overdue
// authorization records its lag in LagHist; the run never tries to slow
// the wall clock down or skip events.
//
// WaitUntil/Begin run on the engine goroutine; Inject is safe from any
// goroutine. The accounting fields are engine-side only.
type RealTimeClock struct {
	nowFn   func() time.Time
	sleepFn func(d time.Duration, wake <-chan struct{})
	wake    chan struct{}

	mu      sync.Mutex
	pending []func()

	started   bool
	epochWall time.Time
	epochV    Time

	// LagHist records, in µs, how far behind the wall clock each overdue
	// event fired — the emulation-mode analogue of the facility's
	// DelayHist. 1 µs buckets; registries adopt it as clock.lag_us.
	LagHist *stats.Histogram

	maxLag   Time
	waits    int64
	bursts   int64
	injected int64
}

// NewRealTimeClock builds a wall-slaved clock driver.
func NewRealTimeClock(opts RealTimeOptions) *RealTimeClock {
	c := &RealTimeClock{
		nowFn:   opts.Now,
		sleepFn: opts.Sleep,
		wake:    make(chan struct{}, 1),
		LagHist: stats.NewHistogram(1, 2000),
	}
	if c.nowFn == nil {
		c.nowFn = time.Now
	}
	if c.sleepFn == nil {
		c.sleepFn = realSleep
	}
	return c
}

// realSleep blocks for up to d on a timer, returning early when wake
// fires. A stale wake token only costs one spurious loop iteration in
// WaitUntil, never a missed deadline.
func realSleep(d time.Duration, wake <-chan struct{}) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-wake:
	}
}

// Begin implements ClockDriver: the first call anchors virtual time now to
// the current wall instant; later calls are no-ops so chunked RunFor
// slices share one continuous mapping.
func (c *RealTimeClock) Begin(now Time) {
	if c.started {
		return
	}
	c.started = true
	c.epochWall = c.nowFn()
	c.epochV = now
}

// VirtualNow returns the wall clock mapped into virtual time. Before Begin
// it returns the zero anchor. This is the time source emulation hosts hand
// to the soft-timer facility (core.Options.TimeSource), so measured
// trigger intervals and firing delays reflect real time — engine lag
// included — rather than the event-hop virtual clock.
func (c *RealTimeClock) VirtualNow() Time {
	if !c.started {
		return c.epochV
	}
	return c.epochV + FromStd(c.nowFn().Sub(c.epochWall))
}

// Inject queues fn to run on the engine goroutine at the wall-mapped
// virtual instant of the next WaitUntil check, waking a sleeping engine
// immediately. This is the only safe way into a driven engine from another
// goroutine — socket readers in package emu deliver packets through it.
func (c *RealTimeClock) Inject(fn func()) {
	if fn == nil {
		panic("sim: inject of nil func")
	}
	c.mu.Lock()
	c.pending = append(c.pending, fn)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// takePending atomically claims the injected-work batch.
func (c *RealTimeClock) takePending() []func() {
	c.mu.Lock()
	work := c.pending
	c.pending = nil
	c.mu.Unlock()
	return work
}

// WaitUntil implements ClockDriver; see the interface contract.
func (c *RealTimeClock) WaitUntil(at Time) (Time, []func()) {
	for {
		// Guard on len, not nil: an (impossible today, but cheap to rule
		// out) empty pending batch must not count as an early return — the
		// ClockDriver contract reserves len(work) == 0 for "wait completed".
		if work := c.takePending(); len(work) > 0 {
			c.injected += int64(len(work))
			return c.VirtualNow(), work
		}
		vnow := c.VirtualNow()
		if vnow >= at {
			if lag := vnow - at; lag > 0 {
				c.LagHist.Add(lag.Micros())
				if lag > c.maxLag {
					c.maxLag = lag
				}
				c.bursts++
			}
			return at, nil
		}
		c.waits++
		c.sleepFn((at - vnow).Std(), c.wake)
	}
}

// MaxLag returns the largest observed behind-schedule lag.
func (c *RealTimeClock) MaxLag() Time { return c.maxLag }

// Waits returns how many times the engine slept waiting for wall time.
func (c *RealTimeClock) Waits() int64 { return c.waits }

// Bursts returns how many events were authorized behind schedule (the
// catch-up burst count; each also landed a sample in LagHist).
func (c *RealTimeClock) Bursts() int64 { return c.bursts }

// Injected returns the number of externally injected closures delivered.
func (c *RealTimeClock) Injected() int64 { return c.injected }
