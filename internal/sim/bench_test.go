package sim

import "testing"

// Engine microbenchmarks. The engine drives every experiment in the
// reproduction, so ns/event and allocs/event here translate directly into
// wall time for `stbench -exp all -scale full`. The pooled free list and
// the concrete (non-container/heap) event queue are the two optimizations
// under test: steady-state scheduling should allocate nothing, and queue
// operations should pay no interface-boxing round trips.

// BenchmarkEngineScheduleFire measures the self-rescheduling steady state:
// one pending event at a time, schedule+fire per iteration. This is the
// shape of hardclock, PIT ticks, and the idle loop.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine1kPendingEvents measures scheduling and draining a
// 1000-event queue — deep-heap sift costs plus pool warmup per iteration.
func BenchmarkEngine1kPendingEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.At(Time(e.Rand().Intn(1_000_000)), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineCancelHeavy is pacer/TCP-shaped: every scheduled timeout
// is canceled and rescheduled before it can fire, as rate-based clocking
// and retransmit timers do constantly. Measures schedule+cancel cost and
// free-list turnover with a warm pool.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	ev := e.After(1000, fn)
	for i := 0; i < b.N; i++ {
		ev.Cancel()
		ev = e.After(1000+Time(i%64), fn)
	}
}

// BenchmarkEngineCancelMid measures canceling from the middle of a deep
// queue (heap remove + sift), the worst-case cancel the TCP layer issues
// when many flows hold staggered retransmit timers.
func BenchmarkEngineCancelMid(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	const depth = 1024
	evs := make([]Event, depth)
	for i := range evs {
		evs[i] = e.At(Time(1_000_000+i*7919%depth), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % depth
		evs[j].Cancel()
		evs[j] = e.At(Time(1_000_000+(i+depth)%(depth*2)), fn)
	}
}

// BenchmarkEngineRunUntil measures the RunUntil driver loop with a mix of
// due and not-yet-due events, the main experiment-driver entry point.
func BenchmarkEngineRunUntil(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var tick func()
	tick = func() { e.After(10, tick) }
	for i := 0; i < 8; i++ {
		e.After(Time(i+1), tick)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunFor(100)
	}
}
