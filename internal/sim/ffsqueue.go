package sim

import "math/bits"

// ffsQueue is an Eiffel-style find-first-set bucket queue (Saeed et al.,
// "Eiffel: efficient and flexible software packet scheduling"): a ring of
// 2^12 one-microsecond-ish buckets covering a sliding ~4 ms window, with
// a two-level bitmap — one bit per bucket, one summary bit per 64-bucket
// word — so locating the earliest non-empty bucket is a handful of
// find-first-set instructions instead of a scan. Deadlines beyond the
// window park on an overflow list (with a cached minimum) and migrate in
// as the window slides forward over the pop order.
//
// push, remove and update are O(1); popMin is O(1) bitmap work plus a
// scan of the (≤ 1 µs wide) head bucket for the exact (at, seq) minimum,
// which keeps the fire order byte-identical to the heap's. The window
// base only advances inside popMin, to the popped event's bucket — the
// engine sets its clock to exactly that event's time, so every later push
// (At panics on past times) lands at or after the base, and the vacated
// buckets are provably empty because the popped event was the minimum.
type ffsQueue struct {
	buckets [fqBuckets]evList
	words   [fqWords]uint64
	summary uint64 // bit w set iff words[w] != 0
	base    uint64 // smallest absolute bucket the window can hold
	n       int    // total queued events, overflow included

	overflow  evList
	nover     int
	minOver   *event // smallest overflow event; trust only when !dirtyOver
	dirtyOver bool
}

const (
	fqShift       = 10 // 1024 ns buckets
	fqBuckets     = 4096
	fqMask        = fqBuckets - 1
	fqWords       = fqBuckets / 64
	fqOverflowIdx = fqBuckets // ev.index sentinel for overflow residents
)

func newFFSQueue() *ffsQueue { return &ffsQueue{} }

func fqBucketOf(at Time) uint64 { return uint64(at) >> fqShift }

func (q *ffsQueue) setBit(idx int32) {
	q.words[idx>>6] |= 1 << uint(idx&63)
	q.summary |= 1 << uint(idx>>6)
}

func (q *ffsQueue) clearBit(idx int32) {
	w := idx >> 6
	q.words[w] &^= 1 << uint(idx&63)
	if q.words[w] == 0 {
		q.summary &^= 1 << uint(w)
	}
}

func (q *ffsQueue) len() int { return q.n }

func (q *ffsQueue) push(ev *event) {
	b := fqBucketOf(ev.at)
	if b < q.base {
		panic("sim: ffs queue event before window base") // unreachable; guards the advance rule
	}
	if b >= q.base+fqBuckets {
		q.overflow.pushFront(ev)
		ev.index = fqOverflowIdx
		q.nover++
		if !q.dirtyOver && (q.minOver == nil || before(ev, q.minOver)) {
			q.minOver = ev
		}
	} else {
		idx := int32(b & fqMask)
		q.buckets[idx].pushFront(ev)
		q.setBit(idx)
		ev.index = idx
	}
	q.n++
}

func (q *ffsQueue) remove(ev *event) {
	if ev.index == fqOverflowIdx {
		q.overflow.unlink(ev)
		q.nover--
		if ev == q.minOver {
			q.dirtyOver = true
		}
	} else {
		q.buckets[ev.index].unlink(ev)
		if q.buckets[ev.index].head == nil {
			q.clearBit(ev.index)
		}
	}
	ev.index = -1
	q.n--
}

func (q *ffsQueue) update(ev *event, at Time, seq uint64) {
	q.remove(ev)
	ev.at, ev.seq = at, seq
	q.push(ev)
}

func (q *ffsQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	if idx := q.firstIdx(); idx >= 0 {
		// A non-empty window bucket always holds the global minimum:
		// overflow deadlines lie beyond every window bucket by definition.
		return q.buckets[idx].minOf(nil)
	}
	if q.dirtyOver {
		q.minOver = q.overflow.minOf(nil)
		q.dirtyOver = false
	}
	return q.minOver
}

func (q *ffsQueue) popMin() *event {
	m := q.peek()
	q.remove(m)
	if nb := fqBucketOf(m.at); nb > q.base {
		// Slide the window to the popped bucket (the engine's clock becomes
		// exactly m.at, so no later push can precede it) and pull newly
		// covered overflow deadlines in.
		q.base = nb
		q.migrate()
	}
	return m
}

// migrate moves every overflow event the slid window now covers into its
// bucket.
func (q *ffsQueue) migrate() {
	if q.nover == 0 {
		return
	}
	limit := q.base + fqBuckets
	moved := false
	t := q.overflow.head
	for t != nil {
		next := t.next
		if b := fqBucketOf(t.at); b < limit {
			q.overflow.unlink(t)
			q.nover--
			idx := int32(b & fqMask)
			q.buckets[idx].pushFront(t)
			q.setBit(idx)
			t.index = idx
			moved = true
		}
		t = next
	}
	if moved {
		q.dirtyOver = true
	}
}

// firstIdx returns the ring index of the first non-empty window bucket in
// absolute-bucket order from base, or -1 when the window is empty. Ring
// order starting at base's index is absolute order, because the window
// holds exactly one absolute bucket per ring position.
func (q *ffsQueue) firstIdx() int32 {
	if q.summary == 0 {
		return -1
	}
	bi := int(q.base & fqMask)
	wi := bi >> 6
	off := uint(bi & 63)
	// The base word, bits at or after the base position.
	if w := q.words[wi] &^ (1<<off - 1); w != 0 {
		return int32(wi<<6 + bits.TrailingZeros64(w))
	}
	// The other words, in ring order after wi.
	if rot := bits.RotateLeft64(q.summary&^(1<<uint(wi)), -(wi + 1)); rot != 0 {
		j := (wi + 1 + bits.TrailingZeros64(rot)) & (fqWords - 1)
		return int32(j<<6 + bits.TrailingZeros64(q.words[j]))
	}
	// Wrapped all the way around: the base word's low bits (the window's
	// far end).
	if w := q.words[wi] & (1<<off - 1); w != 0 {
		return int32(wi<<6 + bits.TrailingZeros64(w))
	}
	return -1 // unreachable while summary != 0
}
