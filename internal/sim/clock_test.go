package sim

import (
	"testing"
	"time"
)

// fakeWall is a synthetic wall clock for driving RealTimeClock without
// real sleeps: Sleep advances the clock by the requested duration (as if
// the timer expired exactly on time) and optionally runs a hook first, so
// tests can model late wakeups and mid-sleep injection.
type fakeWall struct {
	now    time.Time
	sleeps int
	// onSleep, when set, runs before the clock advances and may shorten,
	// lengthen, or replace the advance by returning the amount to add.
	onSleep func(d time.Duration) time.Duration
}

func newFakeWall() *fakeWall {
	return &fakeWall{now: time.Unix(1_000_000, 0)}
}

func (f *fakeWall) Now() time.Time { return f.now }

func (f *fakeWall) Sleep(d time.Duration, wake <-chan struct{}) {
	f.sleeps++
	if f.onSleep != nil {
		d = f.onSleep(d)
	}
	f.now = f.now.Add(d)
}

func (f *fakeWall) clock() *RealTimeClock {
	return NewRealTimeClock(RealTimeOptions{Now: f.Now, Sleep: f.Sleep})
}

func TestClockKindNames(t *testing.T) {
	for _, k := range ClockKinds() {
		got, err := ParseClockKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseClockKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
		if k.Description() == "" || k.Description() == "unknown clock driver" {
			t.Errorf("ClockKind %v has no description", k)
		}
	}
	if _, err := ParseClockKind("wall"); err == nil {
		t.Error("ParseClockKind accepted an unknown name")
	}
	if d := NewClockDriver(ClockSim); d != nil {
		t.Errorf("NewClockDriver(ClockSim) = %T; want nil (sim mode is driverless)", d)
	}
	if d := NewClockDriver(ClockRealTime); d == nil {
		t.Error("NewClockDriver(ClockRealTime) = nil")
	}
}

func TestClockAccessors(t *testing.T) {
	e := NewEngine(1)
	if e.Clock() != ClockSim || e.ClockDriver() != nil {
		t.Errorf("fresh engine: Clock=%v driver=%v; want sim/nil", e.Clock(), e.ClockDriver())
	}
	c := newFakeWall().clock()
	e.SetClockDriver(c)
	if e.Clock() != ClockRealTime || e.ClockDriver() != ClockDriver(c) {
		t.Errorf("driven engine: Clock=%v; want realtime", e.Clock())
	}
	e2 := NewEngineWithClock(1, ClockSim)
	if e2.ClockDriver() != nil {
		t.Error("NewEngineWithClock(ClockSim) installed a driver")
	}
}

// An engine built through the clock seam with ClockSim is the default
// engine: same firing order, same clocks, same RNG draws — the driverless
// tight loop, not a dispatching wrapper.
func TestSimClockEngineMatchesDefault(t *testing.T) {
	runChurn := func(e *Engine) ([]Time, uint64) {
		var fired []Time
		rng := e.Rand().Fork()
		var churn func()
		churn = func() {
			fired = append(fired, e.Now())
			if len(fired) < 200 {
				e.After(rng.ExpTime(30*Microsecond), churn)
				if rng.Float64() < 0.3 {
					ev := e.After(time500, func() { fired = append(fired, e.Now()) })
					if rng.Float64() < 0.5 {
						ev.Cancel()
					}
				}
			}
		}
		e.After(Microsecond, churn)
		e.RunUntil(100 * Millisecond)
		return fired, e.Fired
	}
	a, an := runChurn(NewEngine(7))
	b, bn := runChurn(NewEngineWithClock(7, ClockSim))
	if an != bn || len(a) != len(b) {
		t.Fatalf("fired counts diverged: default %d/%d vs seam %d/%d", an, len(a), bn, len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing time %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

const time500 = 500 * Microsecond

// The pacing contract: each event is authorized only once the (fake) wall
// clock reaches its virtual time, on-schedule events record no lag, and
// RunUntil's final horizon is itself paced.
func TestRealTimePacing(t *testing.T) {
	fw := newFakeWall()
	e := NewEngine(1)
	e.SetClockDriver(fw.clock())
	start := fw.now

	var fired []Time
	var wallAt []time.Duration
	for _, at := range []Time{100 * Microsecond, 250 * Microsecond} {
		at := at
		e.At(at, func() {
			fired = append(fired, e.Now())
			wallAt = append(wallAt, fw.now.Sub(start))
		})
	}
	e.RunUntil(300 * Microsecond)

	if len(fired) != 2 || fired[0] != 100*Microsecond || fired[1] != 250*Microsecond {
		t.Fatalf("fired at %v; want [100us 250us]", fired)
	}
	for i, w := range wallAt {
		if FromStd(w) != fired[i] {
			t.Errorf("event %d fired at wall offset %v, virtual %v; want equal", i, w, fired[i])
		}
	}
	if got := FromStd(fw.now.Sub(start)); got != 300*Microsecond {
		t.Errorf("wall clock after run = %v; want 300us (horizon is paced too)", got)
	}
	if e.Now() != 300*Microsecond {
		t.Errorf("virtual clock after run = %v; want 300us", e.Now())
	}
	c := e.ClockDriver().(*RealTimeClock)
	if c.Waits() == 0 {
		t.Error("no waits recorded for an on-schedule run")
	}
	if c.LagHist.N() != 0 || c.Bursts() != 0 {
		t.Errorf("on-schedule run recorded lag (n=%d bursts=%d)", c.LagHist.N(), c.Bursts())
	}
}

// The catch-up/lag policy: when the wall clock jumps past several pending
// events (a long handler, a descheduled process), they all fire
// immediately, back to back with no further sleeps, and each records its
// lag in the histogram.
func TestRealTimeLagBurst(t *testing.T) {
	fw := newFakeWall()
	// The first sleep overshoots by 1 ms — the engine wakes late.
	fw.onSleep = func(d time.Duration) time.Duration { return d + time.Millisecond }
	e := NewEngine(1)
	c := fw.clock()
	e.SetClockDriver(c)

	var n int
	for _, at := range []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond} {
		e.At(at, func() { n++ })
	}
	e.Run() // drain: no horizon wait, so every lag sample is an event firing

	if n != 3 {
		t.Fatalf("fired %d events; want 3", n)
	}
	if fw.sleeps != 1 {
		t.Errorf("slept %d times; want 1 (overdue events fire without sleeping)", fw.sleeps)
	}
	if c.Bursts() != 3 || c.LagHist.N() != 3 {
		t.Errorf("bursts=%d lag samples=%d; want 3 each", c.Bursts(), c.LagHist.N())
	}
	// The jump put the wall 1ms+10us past the first event; lags are about
	// 1000, 990, 980 µs.
	if max := c.MaxLag(); max < 990*Microsecond || max > 1100*Microsecond {
		t.Errorf("MaxLag = %v; want ~1ms", max)
	}
	if med := c.LagHist.Quantile(0.5); med < 900 || med > 1100 {
		t.Errorf("median lag = %.0fus; want ~1000us", med)
	}
}

// Injection: a closure injected mid-sleep interrupts the wait, runs on the
// engine at the wall-mapped virtual instant, and what it schedules is
// picked up by the same run — even when due before the event the engine
// was sleeping toward.
func TestRealTimeInject(t *testing.T) {
	fw := newFakeWall()
	e := NewEngine(1)
	c := fw.clock()
	e.SetClockDriver(c)

	var order []string
	e.At(200*Microsecond, func() { order = append(order, "late") })

	// Halfway through the engine's sleep toward 200 µs, external work
	// arrives (as a socket reader would deliver a packet).
	injected := false
	fw.onSleep = func(d time.Duration) time.Duration {
		if injected {
			return d
		}
		injected = true
		c.Inject(func() {
			order = append(order, "inject")
			if e.Now() != 100*Microsecond {
				t.Errorf("injected closure ran at %v; want 100us (wall-mapped)", e.Now())
			}
			e.After(20*Microsecond, func() { order = append(order, "follow-up") })
		})
		return d / 2 // woke early: only half the sleep elapsed
	}

	e.RunUntil(300 * Microsecond)
	want := []string{"inject", "follow-up", "late"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("execution order %v; want %v", order, want)
	}
	if c.Injected() != 1 {
		t.Errorf("Injected() = %d; want 1", c.Injected())
	}
}

// Run under a driver drains the queue paced and returns — it does not wait
// for injected work after the last event.
func TestRealTimeRunDrains(t *testing.T) {
	fw := newFakeWall()
	e := NewEngine(1)
	e.SetClockDriver(fw.clock())
	var n int
	e.At(50*Microsecond, func() { n++ })
	e.At(90*Microsecond, func() { n++ })
	e.Run()
	if n != 2 {
		t.Fatalf("Run fired %d; want 2", n)
	}
	if e.Now() != 90*Microsecond {
		t.Errorf("clock after Run = %v; want 90us (last event, never beyond)", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("pending after Run = %d", e.Pending())
	}
}

// Begin anchors once: chunked RunFor slices share one continuous wall
// mapping rather than re-anchoring per call.
func TestRealTimeBeginAnchorsOnce(t *testing.T) {
	fw := newFakeWall()
	e := NewEngine(1)
	e.SetClockDriver(fw.clock())
	start := fw.now
	var wall []time.Duration
	e.At(30*Microsecond, func() { wall = append(wall, fw.now.Sub(start)) })
	e.At(80*Microsecond, func() { wall = append(wall, fw.now.Sub(start)) })
	for i := 0; i < 5; i++ {
		e.RunFor(20 * Microsecond) // 5 slices x 20us = 100us
	}
	if e.Now() != 100*Microsecond {
		t.Fatalf("clock = %v; want 100us", e.Now())
	}
	if len(wall) != 2 || FromStd(wall[0]) != 30*Microsecond || FromStd(wall[1]) != 80*Microsecond {
		t.Errorf("events fired at wall offsets %v; want [30us 80us]", wall)
	}
}

// A single-shard group hands a group driver to its lone engine; the run is
// paced event-granularly, exactly as on a bare driven engine.
func TestShardGroupSingleShardDriver(t *testing.T) {
	fw := newFakeWall()
	g := NewShardGroup(1, 1)
	g.SetClockDriver(fw.clock())
	start := fw.now
	var wallOff time.Duration
	g.Engine(0).At(40*Microsecond, func() { wallOff = fw.now.Sub(start) })
	g.Run(100 * Microsecond)
	if FromStd(wallOff) != 40*Microsecond {
		t.Errorf("event fired at wall offset %v; want 40us", wallOff)
	}
	if FromStd(fw.now.Sub(start)) != 100*Microsecond {
		t.Errorf("wall after run = %v; want 100us", fw.now.Sub(start))
	}
}

// A multi-shard group paces rounds at the coordinator barrier: the wall
// clock is held back to each round's earliest grant, and the run's results
// are the sim-mode results (pacing changes wall time only).
func TestShardGroupBarrierPacing(t *testing.T) {
	fw := newFakeWall()
	g := NewShardGroupWithQueue(2, 1, QueueHeap)
	g.SetLookahead(0, 1, 25*Microsecond)
	g.SetLookahead(1, 0, 25*Microsecond)
	g.Workers = 1
	g.SetClockDriver(fw.clock())
	start := fw.now

	var firedA, firedB int
	g.Engine(0).At(10*Microsecond, func() { firedA++ })
	g.Engine(1).At(60*Microsecond, func() { firedB++ })
	g.Run(100 * Microsecond)

	if firedA != 1 || firedB != 1 {
		t.Fatalf("fired A=%d B=%d; want 1 each", firedA, firedB)
	}
	// Rounds advance in 25 µs lookahead grants; the barrier waits for each
	// round's earliest grant, so the wall clock must have been driven to at
	// least the last pre-horizon grant and never past the horizon.
	wall := FromStd(fw.now.Sub(start))
	if wall < 75*Microsecond || wall > 100*Microsecond {
		t.Errorf("wall after run = %v; want within [75us, 100us]", wall)
	}
	if g.Now() != 100*Microsecond {
		t.Errorf("group clock = %v; want 100us", g.Now())
	}
}

// Injected work at a multi-shard barrier runs while every engine is
// quiescent and may schedule onto any shard.
func TestShardGroupBarrierInject(t *testing.T) {
	fw := newFakeWall()
	g := NewShardGroupWithQueue(2, 1, QueueHeap)
	g.SetLookahead(0, 1, 25*Microsecond)
	g.SetLookahead(1, 0, 25*Microsecond)
	g.Workers = 1
	c := fw.clock()
	g.SetClockDriver(c)

	var ran, scheduled bool
	injected := false
	fw.onSleep = func(d time.Duration) time.Duration {
		if injected {
			return d
		}
		injected = true
		c.Inject(func() {
			ran = true
			e := g.Engine(1)
			e.At(e.Now()+30*Microsecond, func() { scheduled = true })
		})
		return d
	}
	// Keep shards busy so rounds (and barriers) happen.
	g.Engine(0).At(90*Microsecond, func() {})
	g.Run(200 * Microsecond)
	if !ran {
		t.Fatal("injected closure never ran at a barrier")
	}
	if !scheduled {
		t.Error("event scheduled from barrier injection never fired")
	}
}
