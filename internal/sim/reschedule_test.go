// Regression tests for in-place event rescheduling, run on every queue
// backend: the FIFO tie-break contract (a reschedule draws a fresh
// sequence number, exactly like cancel+insert), the past-time and
// arrival-band panics, stale-handle inertness, and op-for-op fire-order
// equivalence between Reschedule and the cancel+insert baseline.
package sim_test

import (
	"fmt"
	"testing"

	"softtimers/internal/sim"
)

// forEachKind runs f as a subtest per queue backend.
func forEachKind(t *testing.T, f func(t *testing.T, eng *sim.Engine)) {
	for _, kind := range sim.QueueKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f(t, sim.NewEngineWithQueue(7, kind))
		})
	}
}

// A rescheduled event must order after events already queued at the same
// instant — it draws a new sequence number, exactly as cancel+insert
// would, even when its time does not change at all.
func TestRescheduleFIFOTieBreak(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		var order []string
		rec := func(name string) func() { return func() { order = append(order, name) } }
		a := eng.At(100, rec("a"))
		eng.At(100, rec("b"))
		eng.At(100, rec("c"))
		if !a.Reschedule(100) {
			t.Fatal("reschedule of pending event returned false")
		}
		eng.Run()
		if got := fmt.Sprint(order); got != "[b c a]" {
			t.Fatalf("fire order %v, want [b c a] (reschedule must draw a fresh seq)", got)
		}
	})
}

// Rescheduling to an earlier time still fires at the new time, ahead of
// later events — the decrease-key direction (heap sift-up, wheel bucket
// migration toward the cursor).
func TestRescheduleDecreaseKey(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		var order []string
		rec := func(name string) func() { return func() { order = append(order, name) } }
		late := eng.At(900, rec("late"))
		eng.At(500, rec("mid"))
		if !late.Reschedule(100) {
			t.Fatal("reschedule returned false")
		}
		if late.At() != 100 {
			t.Fatalf("At() = %v after reschedule to 100", late.At())
		}
		eng.Run()
		if got := fmt.Sprint(order); got != "[late mid]" {
			t.Fatalf("fire order %v, want [late mid]", got)
		}
		if eng.Now() != 500 {
			t.Fatalf("clock ended at %v, want 500", eng.Now())
		}
	})
}

// Rescheduling into the past panics, like scheduling into the past does.
func TestReschedulePastPanics(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		ev := eng.At(500, func() {})
		eng.RunFor(200) // clock at 200, event still pending
		defer func() {
			if recover() == nil {
				t.Fatal("reschedule into the past did not panic")
			}
		}()
		ev.Reschedule(100)
	})
}

// Arrival-band events carry caller-owned (conduit, seq) keys — the sharded
// executor's cross-engine ordering contract — so rescheduling one panics
// rather than silently replacing the key with an engine-local seq.
func TestRescheduleArrivalBandPanics(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		ev := eng.AtArrival(100, 3, 1, "arr", func() {})
		defer func() {
			if recover() == nil {
				t.Fatal("reschedule of an arrival-band event did not panic")
			}
		}()
		ev.Reschedule(200)
	})
}

// Fired, canceled, and zero handles must all refuse Reschedule and
// RescheduleAfter — the same inertness contract Cancel carries.
func TestRescheduleStaleHandlesInert(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		fired := eng.At(10, func() {})
		canceled := eng.At(20, func() {})
		canceled.Cancel()
		eng.Run()
		var zero sim.Event
		for name, ev := range map[string]sim.Event{"fired": fired, "canceled": canceled, "zero": zero} {
			if ev.Reschedule(eng.Now() + 100) {
				t.Fatalf("%s handle accepted Reschedule", name)
			}
			if ev.RescheduleAfter(100) {
				t.Fatalf("%s handle accepted RescheduleAfter", name)
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("%d events pending after stale reschedules", eng.Pending())
		}
	})
}

// RescheduleAfter is Reschedule relative to now.
func TestRescheduleAfter(t *testing.T) {
	forEachKind(t, func(t *testing.T, eng *sim.Engine) {
		ev := eng.At(50, func() {})
		eng.RunFor(30)
		if !ev.RescheduleAfter(400) {
			t.Fatal("RescheduleAfter returned false")
		}
		if ev.At() != 430 {
			t.Fatalf("At() = %v, want now(30)+400 = 430", ev.At())
		}
		eng.Run()
		if eng.Now() != 430 {
			t.Fatalf("clock ended at %v, want 430", eng.Now())
		}
	})
}

// Reschedule must be observably identical to cancel+insert: the same
// randomized stream of schedules and rearms replayed both ways on every
// backend produces the same fire log. This is the property the facility's
// Event.Rearm and the pacers lean on.
func TestRescheduleMatchesCancelInsert(t *testing.T) {
	type rearm func(eng *sim.Engine, ev *sim.Event, at sim.Time, fn func())
	inPlace := func(eng *sim.Engine, ev *sim.Event, at sim.Time, fn func()) {
		if !ev.Reschedule(at) {
			panic("reschedule of live event returned false")
		}
	}
	twoStep := func(eng *sim.Engine, ev *sim.Event, at sim.Time, fn func()) {
		ev.Cancel()
		*ev = eng.At(at, fn)
	}
	for _, kind := range sim.QueueKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			run := func(how rearm) []fireRec {
				eng := sim.NewEngineWithQueue(11, kind)
				rng := sim.NewRNG(0xdead)
				var log []fireRec
				events := make([]sim.Event, 48)
				fns := make([]func(), 48)
				for i := range events {
					i := i
					fns[i] = func() { log = append(log, fireRec{id: i, at: eng.Now()}) }
					events[i] = eng.After(sim.Time(rng.Intn(400)), fns[i])
				}
				for op := 0; op < 600; op++ {
					i := rng.Intn(len(events))
					var d sim.Time
					if rng.Float64() >= 0.25 {
						d = sim.Time(rng.Intn(400))
					}
					if events[i].Pending() {
						how(eng, &events[i], eng.Now()+d, fns[i])
					} else {
						events[i] = eng.At(eng.Now()+d, fns[i])
					}
					if rng.Float64() < 0.4 {
						eng.RunFor(sim.Time(rng.Intn(300)))
					}
				}
				eng.Run()
				return log
			}
			a, b := run(inPlace), run(twoStep)
			if len(a) == 0 {
				t.Fatal("degenerate run: no fires")
			}
			if len(a) != len(b) {
				t.Fatalf("in-place fired %d, cancel+insert fired %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("fire #%d: in-place %+v, cancel+insert %+v", i, a[i], b[i])
				}
			}
		})
	}
}
