// Native fuzz target for the event-queue backends: the input bytes decode
// into a stream of queue operations — schedule (including same-instant),
// cancel, in-place reschedule, stale-handle probes, steps, bounded runs —
// and the same stream replays on every backend. The heap's observation log
// (every fire with its id and instant, every op's result, the final clock
// and counters) is the reference; any divergence on the wheel, hierarchical,
// or FFS backend fails. `make fuzz-smoke` runs this target beyond the
// checked-in corpus; plain `go test` replays the corpus as regressions.
package sim_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"softtimers/internal/sim"
)

// replayQueueOps decodes data as a queue-op stream, applies it to a fresh
// engine on the given backend, and returns the full observation log.
func replayQueueOps(data []byte, kind sim.QueueKind) []byte {
	eng := sim.NewEngineWithQueue(1, kind)
	var log []byte
	u64 := func(v uint64) { log = binary.AppendUvarint(log, v) }
	rec := func(tag byte, vs ...uint64) {
		log = append(log, tag)
		for _, v := range vs {
			u64(v)
		}
	}
	b := func(ok bool) uint64 {
		if ok {
			return 1
		}
		return 0
	}
	var handles []sim.Event
	i := 0
	next := func() byte {
		if i < len(data) {
			v := data[i]
			i++
			return v
		}
		return 0
	}
	pick := func() int { // operand -> handle index; -1 when none exist
		if len(handles) == 0 {
			return -1
		}
		return int(next()) % len(handles)
	}
	sched := func(d sim.Time) {
		id := len(handles)
		handles = append(handles, eng.After(d, func() {
			rec('F', uint64(id), uint64(eng.Now()))
		}))
		rec('s', uint64(id), uint64(eng.Now()+d))
	}
	for i < len(data) {
		switch op := next(); op % 8 {
		case 0: // schedule near (delay 0 hits same-instant FIFO)
			sched(sim.Time(next()) * 7)
		case 1: // schedule far: three operand bytes scaled past the FFS
			// window and, at the top of the range, past the hierarchical
			// levels — the overflow lists and bucket wrap are in play
			d := sim.Time(next())<<16 | sim.Time(next())<<8 | sim.Time(next())
			sched(d * 4099)
		case 2: // cancel (live or stale — both results are part of the log)
			if idx := pick(); idx >= 0 {
				rec('c', uint64(idx), b(handles[idx].Cancel()))
			}
		case 3: // in-place reschedule to now+delay; two operand bytes so
			// reschedules cross window boundaries in both directions
			if idx := pick(); idx >= 0 {
				d := sim.Time(next())<<8 | sim.Time(next())
				ok := handles[idx].Reschedule(eng.Now() + d*1021)
				rec('r', uint64(idx), b(ok), uint64(handles[idx].At()))
			}
		case 4: // probe: Pending and a stale Cancel/Reschedule must agree
			if idx := pick(); idx >= 0 {
				ev := handles[idx]
				rec('p', uint64(idx), b(ev.Pending()))
			}
		case 5:
			rec('S', b(eng.Step()), uint64(eng.Now()))
		case 6:
			eng.RunFor(sim.Time(next()) * 31)
			rec('T', uint64(eng.Now()), uint64(eng.Pending()))
		case 7: // same-instant reschedule: fresh seq, keeps time
			if idx := pick(); idx >= 0 {
				ok := handles[idx].Reschedule(eng.Now())
				rec('z', uint64(idx), b(ok))
			}
		}
	}
	eng.Run()
	rec('E', uint64(eng.Now()), uint64(eng.Pending()), uint64(eng.MaxPending()), eng.Fired)
	return log
}

func FuzzEventQueueOps(f *testing.F) {
	// Schedule-heavy stream with cancels and a drain.
	f.Add([]byte{0, 10, 0, 0, 0, 20, 2, 0, 6, 50, 0, 3, 5, 200})
	// Same-instant pile-up, then in-place reschedules across it.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 7, 0, 3, 1, 0, 0, 7, 2, 5, 5, 5})
	// Reschedule churn against steps and bounded runs.
	f.Add([]byte{0, 30, 0, 60, 3, 0, 0, 10, 6, 2, 3, 1, 0, 90, 5, 6, 255, 4, 0, 4, 1})
	// Stale probes: fire everything, then cancel/reschedule the corpses.
	f.Add([]byte{0, 5, 0, 9, 6, 255, 2, 0, 2, 1, 3, 0, 0, 40, 7, 1, 4, 0})
	// Far schedules past the FFS window and the hierarchical levels, then
	// reschedules dragging them back inside the near window.
	f.Add([]byte{1, 0, 4, 0, 1, 200, 0, 0, 0, 12, 3, 0, 0, 3, 6, 255, 6, 255, 3, 1, 0, 2, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // bound per-input work; coverage saturates far below this
		}
		ref := replayQueueOps(data, sim.QueueHeap)
		for _, kind := range sim.QueueKinds()[1:] {
			if got := replayQueueOps(data, kind); !bytes.Equal(got, ref) {
				t.Fatalf("[%s] observation log diverged from heap\n got %d bytes: %q\nwant %d bytes: %q",
					kind, len(got), got, len(ref), ref)
			}
		}
	})
}
