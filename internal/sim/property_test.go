// Property-based invariant tests for the event engine: randomized
// schedule/cancel/fire/run sequences checked against a reference model.
// Each seed is its own subtest, so a failure shrinks by replay — rerun
// just the failing sequence with
//
//	go test ./internal/sim -run 'TestEngineProperties/clean/seed=N' -v
//
// The "faultplan" variant draws its operation sequence from a fault plan's
// split-seed stream instead of a bare RNG, proving the invariants hold
// under the same generator the fault-injection layer perturbs the
// substrate with (external test package: faults imports sim).
package sim_test

import (
	"fmt"
	"testing"

	"softtimers/internal/faults"
	"softtimers/internal/sim"
)

// schedInfo is the model's record of one scheduled event.
type schedInfo struct {
	at    sim.Time
	order int // global scheduling order; FIFO tie-break among equal at
}

type fireRec struct {
	id int
	at sim.Time
}

// propModel drives an engine with random operations while mirroring the
// set of live events, and checks the engine against the mirror after every
// operation.
type propModel struct {
	t   *testing.T
	eng *sim.Engine
	rng *sim.RNG

	live    map[int]sim.Event
	liveIDs []int
	dead    []sim.Event // fired or canceled handles, kept to probe staleness
	sched   map[int]schedInfo
	fired   []fireRec

	nextID    int
	nextOrder int
	canceled  int
	maxLive   int
}

func newPropModel(t *testing.T, eng *sim.Engine, rng *sim.RNG) *propModel {
	return &propModel{
		t: t, eng: eng, rng: rng,
		live:  map[int]sim.Event{},
		sched: map[int]schedInfo{},
	}
}

// schedule adds one event at a random offset — zero with some probability,
// so same-instant FIFO ordering is exercised constantly.
func (m *propModel) schedule() {
	var d sim.Time
	if m.rng.Float64() >= 0.2 {
		d = sim.Time(m.rng.Intn(1000))
	}
	id := m.nextID
	m.nextID++
	m.nextOrder++
	m.sched[id] = schedInfo{at: m.eng.Now() + d, order: m.nextOrder}
	ev := m.eng.AfterLabeled(d, fmt.Sprintf("prop:%d", id), m.onFire(id))
	if ev.At() != m.eng.Now()+d {
		m.t.Fatalf("event %d: At() = %v, want %v", id, ev.At(), m.eng.Now()+d)
	}
	m.live[id] = ev
	m.liveIDs = append(m.liveIDs, id)
	if len(m.live) > m.maxLive {
		m.maxLive = len(m.live)
	}
}

// onFire is event id's handler: it validates timing, retires the handle,
// and sometimes schedules or cancels from inside the handler — the pattern
// the kernel and TCP layers use constantly.
func (m *propModel) onFire(id int) func() {
	return func() {
		info := m.sched[id]
		if m.eng.Now() != info.at {
			m.t.Fatalf("event %d fired at %v, scheduled for %v", id, m.eng.Now(), info.at)
		}
		ev, ok := m.live[id]
		if !ok {
			m.t.Fatalf("event %d fired but model thinks it is not live (double fire or fired after cancel)", id)
		}
		if ev.Pending() {
			m.t.Fatalf("event %d still Pending inside its own handler", id)
		}
		m.retire(id)
		m.fired = append(m.fired, fireRec{id: id, at: m.eng.Now()})
		switch r := m.rng.Float64(); {
		case r < 0.3:
			m.schedule()
		case r < 0.4:
			m.cancelLive()
		}
	}
}

// retire moves id from the live set to the dead pile.
func (m *propModel) retire(id int) {
	m.dead = append(m.dead, m.live[id])
	delete(m.live, id)
	for i, v := range m.liveIDs {
		if v == id {
			m.liveIDs[i] = m.liveIDs[len(m.liveIDs)-1]
			m.liveIDs = m.liveIDs[:len(m.liveIDs)-1]
			break
		}
	}
}

// cancelLive cancels a random live event and checks Cancel's contract.
func (m *propModel) cancelLive() {
	if len(m.liveIDs) == 0 {
		return
	}
	id := m.liveIDs[m.rng.Intn(len(m.liveIDs))]
	ev := m.live[id]
	if !ev.Pending() {
		m.t.Fatalf("live event %d not Pending before cancel", id)
	}
	if !ev.Cancel() {
		m.t.Fatalf("cancel of live event %d returned false", id)
	}
	m.canceled++
	m.retire(id)
}

// probeDead checks a random retired handle for inertness: no Pending, no
// label, and Cancel a permanent no-op — even after its slot was recycled.
func (m *propModel) probeDead() {
	if len(m.dead) == 0 {
		return
	}
	ev := m.dead[m.rng.Intn(len(m.dead))]
	if ev.Pending() {
		m.t.Fatal("retired handle reports Pending")
	}
	if ev.Cancel() {
		m.t.Fatal("retired handle Cancel returned true (canceled a recycled slot's event?)")
	}
	if ev.Label() != "" {
		m.t.Fatalf("retired handle still exposes label %q", ev.Label())
	}
}

// check compares the engine's queue depth against the model after every
// operation — the heap must hold exactly the live set.
func (m *propModel) check() {
	if m.eng.Pending() != len(m.live) {
		m.t.Fatalf("engine has %d pending events, model has %d live", m.eng.Pending(), len(m.live))
	}
}

// run drives one full random sequence and then the end-of-run invariants.
func (m *propModel) run(steps int) {
	for i := 0; i < steps; i++ {
		switch r := m.rng.Float64(); {
		case r < 0.40:
			m.schedule()
		case r < 0.52:
			m.cancelLive()
		case r < 0.60:
			m.probeDead()
		case r < 0.90:
			had := m.eng.Pending() > 0
			if m.eng.Step() != had {
				m.t.Fatalf("Step() = %v with %d pending", !had, m.eng.Pending())
			}
		default:
			m.eng.RunFor(sim.Time(m.rng.Intn(2000)))
		}
		m.check()
	}
	m.eng.Run()
	m.check()
	if len(m.live) != 0 {
		m.t.Fatalf("%d events still live after drain", len(m.live))
	}

	// Exactly-once accounting: every scheduled event fired XOR canceled.
	if got, want := len(m.fired)+m.canceled, m.nextID; got != want {
		m.t.Fatalf("fired %d + canceled %d = %d, scheduled %d", len(m.fired), m.canceled, got, want)
	}
	seen := map[int]bool{}
	for _, r := range m.fired {
		if seen[r.id] {
			m.t.Fatalf("event %d fired twice", r.id)
		}
		seen[r.id] = true
	}

	// Heap ordering: fire times monotone; FIFO (scheduling order) among
	// events firing at the same instant.
	for i := 1; i < len(m.fired); i++ {
		prev, cur := m.fired[i-1], m.fired[i]
		if cur.at < prev.at {
			m.t.Fatalf("fire %d at %v after fire at %v: time went backwards", cur.id, cur.at, prev.at)
		}
		if cur.at == prev.at && m.sched[cur.id].order < m.sched[prev.id].order {
			m.t.Fatalf("same-instant events fired out of scheduling order: %d (order %d) before %d (order %d)",
				prev.id, m.sched[prev.id].order, cur.id, m.sched[cur.id].order)
		}
	}

	// The depth high-water mark must match the model's maximum live count.
	if m.eng.MaxPending() != m.maxLive {
		m.t.Fatalf("MaxPending() = %d, model max live %d", m.eng.MaxPending(), m.maxLive)
	}

	// Free-list non-aliasing: force every recycled slot back into service,
	// then verify the retired handles stayed inert (their generation must
	// mismatch the reused slots).
	if m.eng.FreeListLen() == 0 {
		m.t.Fatal("no recycled events after a full run")
	}
	refill := m.eng.FreeListLen() + 16
	for i := 0; i < refill; i++ {
		m.eng.After(sim.Time(i), func() {})
	}
	for _, ev := range m.dead {
		if ev.Pending() || ev.Cancel() || ev.Label() != "" {
			m.t.Fatal("retired handle became live again after its slot was reused")
		}
	}
	m.eng.Run()
}

// TestEngineProperties runs the model under both randomness sources.
func TestEngineProperties(t *testing.T) {
	const steps = 600
	hostile := faults.Spec{
		Drop: 0.05, Dup: 0.02, Reorder: 0.03,
		IntrJitterMax: 5 * sim.Microsecond, IntrCoalesce: 0.1,
		WorkJitter: 0.25, Starve: 0.5,
	}
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("clean/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			eng := sim.NewEngine(seed)
			newPropModel(t, eng, sim.NewRNG(seed*0x9e37)).run(steps)
		})
		t.Run(fmt.Sprintf("faultplan/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			eng := sim.NewEngine(seed)
			rng := faults.New(seed, hostile).Stream("sim.property")
			newPropModel(t, eng, rng).run(steps)
		})
	}
}

// TestZeroEventInert pins the documented zero-value semantics the model
// relies on.
func TestZeroEventInert(t *testing.T) {
	var ev sim.Event
	if ev.Pending() || ev.Cancel() || ev.Label() != "" || ev.At() != 0 {
		t.Fatal("zero Event is not inert")
	}
}
