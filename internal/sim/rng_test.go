package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG looks degenerate")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("Exp mean = %v, want ~100", mean)
	}
}

func TestExpTimeAtLeastOne(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if r.ExpTime(2) < 1 {
			t.Fatal("ExpTime returned < 1ns")
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(50, 10)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-50) > 0.5 {
		t.Errorf("Norm mean = %v, want ~50", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.5 {
		t.Errorf("Norm stddev = %v, want ~10", math.Sqrt(variance))
	}
}

func TestNormTimeTruncates(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		if d := r.NormTime(10, 100, 5); d < 5 {
			t.Fatalf("NormTime below floor: %v", d)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.2, 10, 1000)
		if v < 10-1e-9 || v > 1000+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha just above 1 the sample mean should sit well above the
	// lower bound — a sanity check that the tail is actually heavy.
	r := NewRNG(10)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Pareto(1.1, 10, 100000)
	}
	if mean := sum / n; mean < 30 {
		t.Fatalf("Pareto(1.1,10,1e5) mean = %v, tail looks too light", mean)
	}
}

func TestJitter(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(1000, 0.1)
		if j < 900 || j > 1100 {
			t.Fatalf("Jitter(1000, 0.1) = %v out of [900,1100]", j)
		}
	}
	if r.Jitter(1000, 0) != 1000 {
		t.Error("Jitter with f=0 should be identity")
	}
}

func TestForkIndependentStreams(t *testing.T) {
	parent := NewRNG(12)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlap: %d identical draws", same)
	}
}

// Property: ExpTime and ParetoTime never produce non-positive durations for
// any seed and mean, so every sample can be scheduled.
func TestPropertyDurationsPositive(t *testing.T) {
	f := func(seed uint64, mean uint32) bool {
		r := NewRNG(seed)
		m := Time(mean%1_000_000) + 1
		for i := 0; i < 50; i++ {
			if r.ExpTime(m) < 1 {
				return false
			}
			if r.ParetoTime(1.3, m, m*100) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGExpTime(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpTime(Microsecond)
	}
}
