package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{30, 10, 20, 25, 5} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var fired Time = -1
	e.At(50, func() {
		e.After(25, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if ev.Pending() {
		t.Fatal("canceled event still pending")
	}
}

func TestCancelIsIdempotentAndZeroSafe(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	if !ev.Cancel() {
		t.Fatal("first Cancel of a pending event must report true")
	}
	if ev.Cancel() { // second cancel must not panic or disturb the queue
		t.Fatal("second Cancel must report false")
	}
	var zero Event
	if zero.Cancel() {
		t.Fatal("Cancel of the zero Event must report false")
	}
	if zero.Pending() {
		t.Fatal("zero Event must not be pending")
	}
	e.At(5, func() {})
	e.Run()
	if e.Fired != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired)
	}
}

// A canceled or fired event's storage is recycled; a retained handle must
// become inert rather than acting on the event that reused the slot.
func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	old := e.At(10, func() { t.Fatal("canceled event fired") })
	old.Cancel()
	if e.FreeListLen() != 1 {
		t.Fatalf("FreeListLen = %d after cancel, want 1", e.FreeListLen())
	}
	fired := false
	fresh := e.At(20, func() { fired = true }) // reuses old's slot
	if e.FreeListLen() != 0 {
		t.Fatalf("FreeListLen = %d after reschedule, want 0 (slot reused)", e.FreeListLen())
	}
	if old.Pending() {
		t.Fatal("stale handle reports pending after its slot was recycled")
	}
	if old.Cancel() {
		t.Fatal("stale handle canceled the event that reused its slot")
	}
	if old.Label() != "" {
		t.Fatalf("stale handle Label = %q, want \"\"", old.Label())
	}
	if old.At() != 10 {
		t.Fatalf("stale handle At = %v, want its own schedule time 10", old.At())
	}
	if !fresh.Pending() {
		t.Fatal("fresh event must still be pending")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// Cancel-after-fire is a no-op even while the handler of the same event is
// running (the event is recycled before its handler executes).
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine(1)
	var ev Event
	inHandler := false
	ev = e.At(10, func() {
		inHandler = true
		if ev.Pending() {
			t.Error("event reports pending inside its own handler")
		}
		if ev.Cancel() {
			t.Error("Cancel inside the event's own handler reported true")
		}
	})
	e.Run()
	if !inHandler {
		t.Fatal("handler did not run")
	}
	if ev.Cancel() {
		t.Fatal("Cancel after fire reported true")
	}
}

// Steady-state schedule/fire cycles must recycle a bounded set of event
// structs instead of allocating per event.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10_000 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
	if e.Fired != 10_000 {
		t.Fatalf("Fired = %d, want 10000", e.Fired)
	}
	if e.FreeListLen() > poolChunk {
		t.Fatalf("free list grew to %d; steady-state reuse should keep it within one chunk (%d)",
			e.FreeListLen(), poolChunk)
	}
}

func TestCancelMiddleOfQueueKeepsOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	record := func() { got = append(got, e.Now()) }
	e.At(10, record)
	ev := e.At(20, record)
	e.At(30, record)
	e.At(40, record)
	ev.Cancel()
	e.Run()
	want := []Time{10, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClockExactly(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++ })
	e.At(99, func() { count++ })
	e.At(101, func() { count++ })
	e.RunUntil(100)
	if count != 2 {
		t.Fatalf("fired %d events, want 2", count)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
	e.RunUntil(200)
	if count != 3 {
		t.Fatalf("fired %d events, want 3", count)
	}
}

func TestRunUntilFiresBoundaryEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(100)
	if !fired {
		t.Fatal("event at boundary time did not fire")
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine(1)
	e.At(5, func() {})
	e.RunFor(10)
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	e.RunFor(10)
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestScheduleNilFuncPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil func did not panic")
		}
	}()
	e.At(1, nil)
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := Time(1); i <= 100; i++ {
		e.At(i, func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 10 {
		t.Fatalf("fired %d events after Stop, want 10", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestEventMetadata(t *testing.T) {
	e := NewEngine(1)
	ev := e.AtLabeled(42, "tick", func() {})
	if ev.At() != 42 {
		t.Errorf("At() = %v, want 42", ev.At())
	}
	if ev.Label() != "tick" {
		t.Errorf("Label() = %q, want tick", ev.Label())
	}
	if !ev.Pending() {
		t.Error("Pending() = false before firing")
	}
	e.Run()
	if ev.Pending() {
		t.Error("Pending() = true after firing")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(1234)
		var got []Time
		var spawn func()
		spawn = func() {
			got = append(got, e.Now())
			if len(got) < 200 {
				e.After(e.Rand().ExpTime(50*Microsecond), spawn)
			}
		}
		e.After(1, spawn)
		e.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of (time, id) pairs, events fire sorted by time
// with FIFO tie-breaking, and the engine clock never decreases.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(99)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, r := range raw {
			at := Time(r % 1000)
			seq := i
			e.At(at, func() { got = append(got, rec{at, seq}) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		last := rec{at: -1, seq: -1}
		for _, g := range got {
			if g.at < last.at {
				return false
			}
			if g.at == last.at && g.seq < last.seq {
				return false
			}
			last = g
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling an arbitrary subset leaves exactly the complement to
// fire, still in order.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(times []uint16, mask []bool) bool {
		e := NewEngine(7)
		fired := make(map[int]bool)
		var evs []Event
		for i, r := range times {
			i := i
			evs = append(evs, e.At(Time(r), func() { fired[i] = true }))
		}
		canceled := make(map[int]bool)
		for i, ev := range evs {
			if i < len(mask) && mask[i] {
				ev.Cancel()
				canceled[i] = true
			}
		}
		e.Run()
		for i := range times {
			if canceled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxPendingHighWaterMark checks the heap-depth high-water mark the
// telemetry layer exports: it tracks the deepest the queue ever got, not
// the current depth.
func TestMaxPendingHighWaterMark(t *testing.T) {
	e := NewEngine(1)
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine MaxPending = %d, want 0", e.MaxPending())
	}
	for i := 0; i < 10; i++ {
		e.At(Time(i+1), func() {})
	}
	if e.MaxPending() != 10 {
		t.Fatalf("MaxPending = %d, want 10", e.MaxPending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("queue should have drained")
	}
	if e.MaxPending() != 10 {
		t.Fatalf("MaxPending after drain = %d, want 10 (high-water, not current)", e.MaxPending())
	}
	// A shallower refill must not lower the mark.
	e.At(e.Now()+1, func() {})
	e.Run()
	if e.MaxPending() != 10 {
		t.Fatalf("MaxPending after refill = %d, want 10", e.MaxPending())
	}
}
