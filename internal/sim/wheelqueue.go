package sim

// wheelQueue is the hashed-timing-wheel EventQueue backend: slot index =
// bucket mod nslots, each slot an unsorted intrusive list carrying full
// (at, seq) keys, exactly the facility's timerwheel shape applied to the
// engine's queue. Buckets are 2^wqShift ns (~1 µs) wide.
//
// push, remove and update are O(1). The engine, unlike the facility's
// wheel, pops events one at a time in exact (at, seq) order, which is the
// wheel's worst case: the cached minimum dies with every pop, and the
// rescan to recrown it walks all slots — O(slots + n) per fire. The
// ablation-queue table quantifies that cost against the heap and the FFS
// bucket queue; the differential harness proves the order identical.
type wheelQueue struct {
	slots [wqSlots]evList
	n     int
	min   *event // smallest (at, seq) queued event; trust only when !dirty
	dirty bool
}

const (
	wqShift = 10 // 1024 ns buckets
	wqSlots = 256
	wqMask  = wqSlots - 1
)

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func wqBucket(at Time) uint64 { return uint64(at) >> wqShift }

func (q *wheelQueue) len() int { return q.n }

func (q *wheelQueue) push(ev *event) {
	slot := int32(wqBucket(ev.at) & wqMask)
	q.slots[slot].pushFront(ev)
	ev.index = slot
	q.n++
	if !q.dirty && (q.min == nil || before(ev, q.min)) {
		q.min = ev
	}
}

func (q *wheelQueue) remove(ev *event) {
	q.slots[ev.index].unlink(ev)
	ev.index = -1
	q.n--
	if ev == q.min {
		q.dirty = true
	}
}

func (q *wheelQueue) update(ev *event, at Time, seq uint64) {
	q.slots[ev.index].unlink(ev)
	ev.at, ev.seq = at, seq
	slot := int32(wqBucket(at) & wqMask)
	q.slots[slot].pushFront(ev)
	ev.index = slot
	if ev == q.min {
		q.dirty = true // may have moved later; recrown lazily
	} else if !q.dirty && before(ev, q.min) {
		q.min = ev
	}
}

func (q *wheelQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	if q.dirty {
		q.recompute()
	}
	return q.min
}

func (q *wheelQueue) popMin() *event {
	m := q.peek()
	q.slots[m.index].unlink(m)
	m.index = -1
	q.n--
	q.dirty = true
	return m
}

// recompute rescans every slot for the global minimum.
func (q *wheelQueue) recompute() {
	var min *event
	for i := range q.slots {
		min = q.slots[i].minOf(min)
	}
	q.min = min
	q.dirty = false
}
