package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64 core with an
// xoshiro256**-style mix). The standard library's math/rand would also work,
// but a local generator keeps the exact sequence under our control so that
// recorded experiment outputs stay stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped so the
// zero value still produces a usable stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed duration with the given mean.
// Results are clamped to at least 1 ns so they can always be scheduled.
func (r *RNG) ExpTime(mean Time) Time {
	d := Time(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormTime returns a normally distributed duration truncated below at min.
func (r *RNG) NormTime(mean, stddev, min Time) Time {
	d := Time(r.Norm(float64(mean), float64(stddev)))
	if d < min {
		d = min
	}
	return d
}

// Pareto returns a bounded Pareto sample with shape alpha on [lo, hi].
// Heavy-tailed service times (e.g. compile steps in the kernel-build
// workload) use this.
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// ParetoTime returns a bounded Pareto duration.
func (r *RNG) ParetoTime(alpha float64, lo, hi Time) Time {
	d := Time(r.Pareto(alpha, float64(lo), float64(hi)))
	if d < 1 {
		d = 1
	}
	return d
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]; f must be in
// [0, 1]. Used to break phase-locking between periodic model components.
func (r *RNG) Jitter(d Time, f float64) Time {
	if f <= 0 {
		return d
	}
	scale := 1 - f + 2*f*r.Float64()
	j := Time(float64(d) * scale)
	if j < 1 {
		j = 1
	}
	return j
}

// Fork returns a new RNG whose seed derives from this one's stream, for
// giving sub-components independent but still deterministic streams.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
