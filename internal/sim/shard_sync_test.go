package sim

// Tests for the conservative-sync grant machinery added with lookahead
// mining: the started-guards freezing the channel topology, the mining
// fixpoint's transitive soundness, the grant-utilization telemetry, the
// empty-work-batch clause of the ClockDriver contract, and the
// EarliestPending peek that mining rides on.

import (
	"fmt"
	"reflect"
	"testing"
)

// Every assembly-time knob must refuse to move once the first round has
// run: rounds in flight were granted under the old topology.
func TestShardGroupStartedGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic after the group has run", name)
			}
		}()
		fn()
	}
	g := NewShardGroup(2, 1)
	g.SetLookahead(0, 1, 25*Microsecond)
	g.SetLookahead(1, 0, 25*Microsecond)
	g.NewConduit(0, 1) // fine before Run
	g.SetMining(false)
	g.SetMining(true)
	g.Run(100 * Microsecond)

	mustPanic("SetLookahead", func() { g.SetLookahead(0, 1, 10*Microsecond) })
	mustPanic("NewConduit", func() { g.NewConduit(0, 2) })
	mustPanic("SetClockDriver", func() { g.SetClockDriver(nil) })
	mustPanic("SetMining", func() { g.SetMining(false) })
}

// The mining fixpoint must account for transitive wakes. Chain
// 2 → 0 → 1: shard 0's own queue is empty, but shard 2 is about to wake
// it, and the woken handler relays into shard 1 well before shard 1's own
// queue head. Granting shard 1 from shard 0's bare queue head (the naive
// rule) would let it run its 500 µs local event first and the 25 µs relay
// would arrive in its past. The fixpoint lowers shard 0's bound through
// the 2→0 channel, so the relay is delivered in timestamp order.
func TestShardGroupMiningTransitiveWake(t *testing.T) {
	g := NewShardGroup(3, 1)
	g.SetLookahead(2, 0, 10*Microsecond)
	g.SetLookahead(0, 1, 10*Microsecond)
	c20 := g.NewConduit(2, 1)
	c01 := g.NewConduit(0, 2)

	var order []string
	g.Engine(1).At(500*Microsecond, func() { order = append(order, "local@500") })
	g.Engine(2).At(5*Microsecond, func() {
		c20.Send(0, 15*Microsecond, 1, func() {
			c01.Send(1, 25*Microsecond, 1, func() {
				order = append(order, fmt.Sprintf("relay@%d", g.Engine(1).Now()/Microsecond))
			})
		})
	})
	g.Run(Millisecond)

	want := []string{"relay@25", "local@500"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order = %v, want %v", order, want)
	}
}

// A shard with no inbound channels is never constrained: its first grant
// is the run horizon (one active round, horizon-bound), and the
// one-directional two-shard group drains without deadlock.
func TestShardGroupNoInboundAdvancesToHorizon(t *testing.T) {
	g := NewShardGroup(2, 1)
	g.SetLookahead(0, 1, 25*Microsecond) // no 1→0 channel
	until := 2 * Millisecond

	var fired0, fired1 int
	var tick0, tick1 func()
	tick0 = func() {
		fired0++
		if next := g.Engine(0).Now() + 100*Microsecond; next <= until {
			g.Engine(0).At(next, tick0)
		}
	}
	tick1 = func() {
		fired1++
		if next := g.Engine(1).Now() + 100*Microsecond; next <= until {
			g.Engine(1).At(next, tick1)
		}
	}
	g.Engine(0).At(50*Microsecond, tick0)
	g.Engine(1).At(50*Microsecond, tick1)
	g.Run(until)

	if g.Engine(0).Now() != until || g.Engine(1).Now() != until {
		t.Fatalf("clocks = %v, %v; want both at %v", g.Engine(0).Now(), g.Engine(1).Now(), until)
	}
	if fired0 == 0 || fired1 == 0 {
		t.Fatalf("fired = %d, %d; want both > 0", fired0, fired1)
	}
	st := g.SyncStats()
	s0 := st.Shards[0]
	if s0.Rounds != 1 || s0.HorizonBound != 1 {
		t.Fatalf("no-inbound shard: %d rounds, %d horizon-bound; want 1 and 1 (granted straight to the horizon)", s0.Rounds, s0.HorizonBound)
	}
}

// ringShards assembles the shard_test ring workload on a 4-shard group
// and runs it to until, returning the logs and the group.
func ringShards(seed uint64, until Time, mining bool) ([][]string, *ShardGroup) {
	g := NewShardGroup(4, seed)
	g.SetMining(mining)
	for s := 0; s < 4; s++ {
		g.SetLookahead(s, (s+1)%4, 40*Microsecond)
	}
	cons := make([]*Conduit, 4)
	for s := 0; s < 4; s++ {
		cons[s] = g.NewConduit(s, int32(s)+1)
	}
	engines := []*Engine{g.Engine(0), g.Engine(1), g.Engine(2), g.Engine(3)}
	logs := ringLog(engines, until, func(src, dst int, at Time, seq uint64, fn func()) {
		cons[src].Send(dst, at, seq, fn)
	})
	g.Run(until)
	return logs, g
}

// Mining is invisible in results and strictly helpful in rounds: the
// mined run replays the static run's event history byte-for-byte (which
// itself matches the single-engine oracle, per
// TestShardGroupMatchesSingleEngineReference) in no more rounds, every
// mined grant dominates its static twin (gain >= 0), and with mining off
// the gain accounting stays identically zero.
func TestShardGroupMiningMatchesStaticWithFewerRounds(t *testing.T) {
	const until = 2 * Millisecond
	staticLogs, gs := ringShards(9, until, false)
	minedLogs, gm := ringShards(9, until, true)

	if !reflect.DeepEqual(staticLogs, minedLogs) {
		t.Fatalf("mining changed the event history:\nstatic %v\nmined  %v", staticLogs, minedLogs)
	}
	sr, _ := gs.Stats()
	mr, _ := gm.Stats()
	if mr > sr {
		t.Fatalf("mined run took %d rounds, static %d; mined grants dominate static so rounds must not grow", mr, sr)
	}
	for i, ss := range gs.SyncStats().Shards {
		if ss.MinedGainNS != 0 {
			t.Fatalf("shard %d: mined gain %d ns with mining off; want 0", i, ss.MinedGainNS)
		}
	}
	for i, ss := range gm.SyncStats().Shards {
		if ss.MinedGainNS < 0 {
			t.Fatalf("shard %d: negative mined gain %d ns; mined grants must dominate static", i, ss.MinedGainNS)
		}
	}
}

// The telemetry is internally consistent: each shard's active rounds are
// fully attributed (binding channel or horizon), the group-wide
// histograms carry one sample per active shard-round, and no shard
// reaches more of its horizon than it was granted.
func TestShardGroupSyncStatsAccounting(t *testing.T) {
	_, g := ringShards(9, 2*Millisecond, true)
	st := g.SyncStats()

	if st.Rounds == 0 || st.Messages == 0 {
		t.Fatalf("no rounds (%d) or messages (%d) recorded", st.Rounds, st.Messages)
	}
	var activeSum int64
	for i := range st.Shards {
		ss := st.Shards[i]
		activeSum += ss.Rounds
		var bound int64 = ss.HorizonBound
		for src := range st.Binding {
			bound += st.Binding[src][i]
		}
		if bound != ss.Rounds {
			t.Fatalf("shard %d: %d rounds but %d attributed (binding+horizon)", i, ss.Rounds, bound)
		}
		if ss.ReachedNS > ss.GrantedNS {
			t.Fatalf("shard %d: reached %d ns > granted %d ns", i, ss.ReachedNS, ss.GrantedNS)
		}
		if ss.IdleRounds > ss.Rounds {
			t.Fatalf("shard %d: %d idle rounds out of %d", i, ss.IdleRounds, ss.Rounds)
		}
	}
	if st.ActiveShardRounds != activeSum {
		t.Fatalf("ActiveShardRounds = %d, per-shard sum = %d", st.ActiveShardRounds, activeSum)
	}
	if c := st.GrantWidthUS.N(); c != activeSum {
		t.Fatalf("GrantWidthUS has %d samples, want one per active shard-round (%d)", c, activeSum)
	}
	if c := st.MinedGainUS.N(); c != activeSum {
		t.Fatalf("MinedGainUS has %d samples, want one per active shard-round (%d)", c, activeSum)
	}
}

// emptyBatchDriver authorizes every wait instantly but hands back an
// empty, non-nil work slice each time. Under the ClockDriver contract
// len(work) == 0 means the wait completed, so both wait loops must treat
// it exactly like nil. A loop that tests work != nil instead would call
// WaitUntil forever; the call budget turns that hang into a failure.
type emptyBatchDriver struct {
	t     *testing.T
	calls int
}

func (d *emptyBatchDriver) Begin(Time) {}

func (d *emptyBatchDriver) WaitUntil(at Time) (Time, []func()) {
	d.calls++
	if d.calls > 100_000 {
		d.t.Fatal("driver spun: empty work batches did not terminate the wait loop")
	}
	return at, []func(){}
}

func TestShardGroupEmptyWorkBatchTerminatesWait(t *testing.T) {
	d := &emptyBatchDriver{t: t}
	g := NewShardGroup(2, 1)
	g.SetLookahead(0, 1, 25*Microsecond)
	g.SetLookahead(1, 0, 25*Microsecond)
	g.SetClockDriver(d)

	fired := false
	g.Engine(0).At(60*Microsecond, func() { fired = true })
	g.Run(200 * Microsecond)
	if !fired {
		t.Fatal("event did not fire under the empty-batch driver")
	}
	if d.calls == 0 {
		t.Fatal("driver was never consulted")
	}
}

func TestEngineEmptyWorkBatchTerminatesWait(t *testing.T) {
	d := &emptyBatchDriver{t: t}
	e := NewEngine(1)
	e.SetClockDriver(d)
	fired := 0
	e.At(10*Microsecond, func() { fired++ })
	e.At(30*Microsecond, func() { fired++ })
	e.RunUntil(100 * Microsecond)
	if fired != 2 {
		t.Fatalf("fired %d events under the empty-batch driver, want 2", fired)
	}
}

// RealTimeClock.WaitUntil must never surface an empty pending batch as an
// early return: the contract reserves len(work) == 0 for "wait completed".
func TestRealTimeClockEmptyPendingIsNotWork(t *testing.T) {
	fw := newFakeWall()
	c := fw.clock()
	c.Begin(0)
	c.pending = []func(){} // empty but non-nil, as a take/append race could leave it
	adv, work := c.WaitUntil(50 * Microsecond)
	if len(work) != 0 {
		t.Fatalf("empty pending batch surfaced as %d-closure work", len(work))
	}
	if adv != 50*Microsecond {
		t.Fatalf("adv = %v, want the requested instant", adv)
	}
	if c.Injected() != 0 {
		t.Fatalf("empty batch counted as %d injected closures", c.Injected())
	}
}

// EarliestPending is the queue peek mining rides on: exact across every
// backend, tracking the head as events fire, and empty-aware.
func TestEngineEarliestPendingAcrossBackends(t *testing.T) {
	for _, kind := range QueueKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngineWithQueue(1, kind)
			if _, ok := e.EarliestPending(); ok {
				t.Fatal("empty engine reported a pending event")
			}
			e.At(300*Microsecond, func() {})
			e.At(100*Microsecond, func() {})
			e.At(200*Microsecond, func() {})
			if at, ok := e.EarliestPending(); !ok || at != 100*Microsecond {
				t.Fatalf("head = %v, %v; want 100µs, true", at, ok)
			}
			e.RunUntil(150 * Microsecond)
			if at, ok := e.EarliestPending(); !ok || at != 200*Microsecond {
				t.Fatalf("head after firing = %v, %v; want 200µs, true", at, ok)
			}
			e.RunUntil(Millisecond)
			if _, ok := e.EarliestPending(); ok {
				t.Fatal("drained engine still reports a pending event")
			}
		})
	}
}

// BenchmarkShardRound measures the per-round coordinator cost — flush,
// grant computation (the mining fixpoint when on), telemetry, commit — on
// a 4-shard all-to-all group with busy engines, Workers=1 so the
// coordinator dominates.
func BenchmarkShardRound(b *testing.B) {
	for _, mode := range []struct {
		name string
		mine bool
	}{{"mined", true}, {"static", false}} {
		b.Run(mode.name, func(b *testing.B) {
			g := NewShardGroup(4, 1)
			g.Workers = 1
			g.SetMining(mode.mine)
			for s := 0; s < 4; s++ {
				for d := 0; d < 4; d++ {
					if s != d {
						g.SetLookahead(s, d, 50*Microsecond)
					}
				}
			}
			for s := 0; s < 4; s++ {
				eng := g.Engine(s)
				var tick func()
				tick = func() { eng.After(20*Microsecond, tick) }
				eng.After(20*Microsecond, tick)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.RunFor(50 * Microsecond) // one static round per iteration
			}
			rounds, _ := g.Stats()
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}
