package sim

import (
	"fmt"
	"testing"
)

// Benchmarks and allocation guards for the pluggable queue backends and
// the in-place reschedule path. The headline claims under test: the
// default heap's schedule+fire steady state stays allocation-free and
// within its historical ~12 ns/op envelope despite the backend seam, and
// Reschedule beats cancel+insert once the queue is deep (one sift or
// bucket migration versus a full remove, a pool round trip, and a fresh
// push).

// TestEngineZeroAlloc pins the hot paths at zero allocations per op on
// every backend, reschedule included, with a warm pool — run by `make
// bench` before any numbers are printed so a pooling regression fails
// loudly rather than skewing results.
func TestEngineZeroAlloc(t *testing.T) {
	for _, kind := range QueueKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngineWithQueue(1, kind)
			fn := func() {}
			// Warm the event pool past everything one shot needs.
			for i := 0; i < 8; i++ {
				e.After(Time(i), fn)
			}
			e.Run()
			shot := func() {
				ev := e.After(10, fn)
				ev.Reschedule(e.Now() + 900)
				ev.RescheduleAfter(20)
				dead := e.After(5, fn)
				dead.Cancel()
				e.Run()
			}
			if n := testing.AllocsPerRun(100, shot); n != 0 {
				t.Fatalf("schedule+reschedule+cancel+fire allocates %.1f/op on %s, want 0", n, kind)
			}
		})
	}
}

// BenchmarkReschedule compares moving a pending timer in place against the
// cancel+insert two-step, per backend, with 1024 bystander events keeping
// the queue deep — the rate-based-pacing and TCP-rearm shape.
func BenchmarkReschedule(b *testing.B) {
	const depth = 1024
	setup := func(kind QueueKind) (*Engine, Event) {
		e := NewEngineWithQueue(1, kind)
		fn := func() {}
		for i := 0; i < depth; i++ {
			e.At(Time(1_000_000+i*7919%depth), fn)
		}
		return e, e.At(2_000_000, fn)
	}
	for _, kind := range QueueKinds() {
		kind := kind
		b.Run(kind.String()+"/inplace", func(b *testing.B) {
			_, ev := setup(kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Reschedule(Time(2_000_000 + i%4096))
			}
		})
		b.Run(kind.String()+"/cancelinsert", func(b *testing.B) {
			e, ev := setup(kind)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Cancel()
				ev = e.At(Time(2_000_000+i%4096), fn)
			}
		})
	}
}

// BenchmarkQueueChurn measures the mixed maintenance load — one in-place
// reschedule, one cancel, one fresh insert per round — against deep
// queues, per backend, at 1k and 10k pending.
func BenchmarkQueueChurn(b *testing.B) {
	for _, kind := range QueueKinds() {
		for _, depth := range []int{1_000, 10_000} {
			kind, depth := kind, depth
			b.Run(fmt.Sprintf("%s/pending=%dk", kind, depth/1000), func(b *testing.B) {
				e := NewEngineWithQueue(1, kind)
				fn := func() {}
				evs := make([]Event, depth)
				for i := range evs {
					evs[i] = e.At(Time(1_000_000+i*7919%(depth*8)), fn)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % depth
					switch i % 3 {
					case 0:
						evs[j].Reschedule(Time(1_000_000 + (i+depth)%(depth*8)))
					case 1:
						evs[j].Cancel()
					default:
						if !evs[j].Pending() {
							evs[j] = e.At(Time(1_000_000+(i+depth)%(depth*8)), fn)
						}
					}
				}
			})
		}
	}
}
