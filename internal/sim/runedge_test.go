package sim

import "testing"

// These tests pin the edge semantics documented on RunUntil/RunFor, on
// every queue backend: the clock-driver seam must not change them, and a
// backend that handles the empty-band or due-now cases differently would
// break callers that rely on RunFor(0) as a "drain due work" idiom.

func forEachQueue(t *testing.T, f func(t *testing.T, e *Engine)) {
	for _, kind := range QueueKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f(t, NewEngineWithQueue(1, kind))
		})
	}
}

// RunFor(0) fires events due exactly now — including ones a handler
// schedules at the same instant — and leaves the clock unchanged.
func TestRunForZero(t *testing.T) {
	forEachQueue(t, func(t *testing.T, e *Engine) {
		e.RunUntil(50 * Microsecond)
		var order []string
		e.At(e.Now(), func() {
			order = append(order, "a")
			e.After(0, func() { order = append(order, "chained") })
		})
		e.At(e.Now(), func() { order = append(order, "b") })
		e.At(e.Now()+1, func() { order = append(order, "future") })

		e.RunFor(0)
		if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "chained" {
			t.Errorf("RunFor(0) fired %v; want [a b chained] (due-now incl. same-instant chains)", order)
		}
		if e.Now() != 50*Microsecond {
			t.Errorf("clock moved to %v; want unchanged 50us", e.Now())
		}
		if e.Pending() != 1 {
			t.Errorf("pending = %d; want 1 (the future event stays queued)", e.Pending())
		}
	})
}

// RunUntil(now) is RunFor(0); RunUntil(past) is a strict no-op — no
// firing, no clock movement, even with overdue-looking events queued.
func TestRunUntilNowAndPast(t *testing.T) {
	forEachQueue(t, func(t *testing.T, e *Engine) {
		e.RunUntil(100 * Microsecond)
		fired := 0
		e.At(e.Now(), func() { fired++ })

		e.RunUntil(40 * Microsecond) // past
		if fired != 0 || e.Now() != 100*Microsecond {
			t.Errorf("RunUntil(past): fired=%d now=%v; want 0, 100us", fired, e.Now())
		}
		e.RunUntil(e.Now()) // now
		if fired != 1 || e.Now() != 100*Microsecond {
			t.Errorf("RunUntil(now): fired=%d now=%v; want 1, 100us", fired, e.Now())
		}
	})
}

// RunUntil advances the clock to the horizon even when no event lands
// there, and never past it; an event exactly at the horizon fires.
func TestRunUntilHorizon(t *testing.T) {
	forEachQueue(t, func(t *testing.T, e *Engine) {
		fired := 0
		e.At(30*Microsecond, func() { fired++ })
		e.At(70*Microsecond, func() { fired++ })
		e.RunUntil(70 * Microsecond)
		if fired != 2 {
			t.Errorf("fired %d; want 2 (horizon event inclusive)", fired)
		}
		if e.Now() != 70*Microsecond {
			t.Errorf("now = %v; want 70us", e.Now())
		}
		e.RunUntil(90 * Microsecond)
		if e.Now() != 90*Microsecond {
			t.Errorf("empty run: now = %v; want horizon 90us", e.Now())
		}
	})
}

// Stop inside a handler ends the run with the clock at that handler's
// time — later events stay queued and the horizon clamp is skipped.
func TestStopInHandler(t *testing.T) {
	forEachQueue(t, func(t *testing.T, e *Engine) {
		fired := 0
		e.At(20*Microsecond, func() { fired++; e.Stop() })
		e.At(60*Microsecond, func() { fired++ })
		e.RunUntil(100 * Microsecond)
		if fired != 1 {
			t.Errorf("fired %d; want 1 (Stop halts the run)", fired)
		}
		if e.Now() != 20*Microsecond {
			t.Errorf("now = %v; want 20us (stopping handler's time, no horizon clamp)", e.Now())
		}
		if e.Pending() != 1 {
			t.Errorf("pending = %d; want 1", e.Pending())
		}
	})
}

// Run drains everything, including chains, and leaves the clock at the
// last fired event.
func TestRunDrains(t *testing.T) {
	forEachQueue(t, func(t *testing.T, e *Engine) {
		var last Time
		e.At(10*Microsecond, func() {
			e.After(25*Microsecond, func() { last = e.Now() })
		})
		e.Run()
		if last != 35*Microsecond || e.Now() != 35*Microsecond {
			t.Errorf("last=%v now=%v; want 35us both", last, e.Now())
		}
		if e.Pending() != 0 {
			t.Errorf("pending = %d; want 0", e.Pending())
		}
	})
}
