package sim

// Sharded execution: a ShardGroup owns N engines and advances them
// concurrently under conservative (Chandy-Misra-Bryant style) time
// synchronization. Each shard's clock is only ever granted up to the
// minimum over its inbound channels of the sender's committed clock plus
// that channel's lookahead — the minimum latency any cross-shard message
// on the channel must carry — so no shard can receive an event in its
// past, with no rollback machinery.
//
// Execution proceeds in rounds. Every round the coordinator first flushes
// the messages emitted in strictly earlier rounds (or during assembly)
// into their destination engines, then computes each shard's grant from
// the clocks committed at the end of the previous round, and the shards
// run independently (optionally on parallel worker goroutines) up to
// their grants. Flushing only at the coordinator keeps every engine
// single-threaded, and the grant rule guarantees each message is injected
// strictly before its destination's clock reaches the message timestamp.
//
// Lookahead mining (on by default, SetMining) raises grants past the
// static rule by asking each engine for its earliest pending event
// (Engine.EarliestPending — an O(1) queue peek). A shard cannot execute a
// handler, and therefore cannot emit a message, before the earliest event
// it could ever run; that time is not its own queue head alone, because a
// peer may still deliver work that executes earlier, so the coordinator
// relaxes
//
//	bound[s] = min(earliestPending(s), min over inbound j of bound[j]+la[j][s])
//
// to a fixpoint and grants dst
//
//	grant[dst] = min over inbound src of (bound[src] + la[src][dst])
//
// in place of clock[src]+la[src][dst]. bound[s] >= clock[s] always (own
// pending events are at or after the clock, and every inbound term is at
// least the previous barrier's grant), so mined grants dominate static
// ones: rounds with mining are never more numerous, and an idle low-delay
// link no longer serializes the group. Mining changes round boundaries
// only — never event order — so results stay byte-identical with it on or
// off, at any shard count.
//
// A flushed message becomes an ordinary pending event in the destination
// engine's arrival band (Engine.AtArrival): its heap key is (time,
// conduit, seq), where conduit ids are assigned at topology-assembly time
// — identical at any shard count — and seq is the conduit's send counter.
// Arrival-band events fire after every ordinarily scheduled event at the
// same instant, ordered among themselves by (conduit, seq); because the
// single-engine path schedules the same deliveries with the same keys
// through the same band, the merged event history is identical by
// construction: independent of the worker count, the round schedule, and
// the number of shards — including the degenerate count of one engine
// with no group at all.
//
// Cross-shard hand-offs therefore add no engine events: the delivery that
// would have been a pending event on the single engine is a pending event
// on exactly one shard engine, so per-engine fired/pending totals sum to
// the single-engine values.

import (
	"fmt"
	"runtime"
	"sync"

	"softtimers/internal/stats"
)

// shardMsg is one cross-shard message: fn runs on the destination shard's
// engine as an arrival-band event keyed (at, conduit, seq).
type shardMsg struct {
	at      Time
	conduit int32
	dst     int32
	seq     uint64
	fn      func()
}

// shard is one engine's slot in a ShardGroup.
type shard struct {
	id    int
	eng   *Engine
	clock Time // committed: the shard has executed everything before clock
	grant Time // this round's horizon

	sgrant Time // the static (clock+lookahead) grant, for mined-gain telemetry
	pend   Time // own earliest pending event this round (until-clamped)
	bind   int  // inbound shard binding this round's grant; -1 = the run horizon

	out []shardMsg // messages emitted this round, flushed at the barrier
}

// ShardSyncStats is one shard's slice of the group's grant-utilization
// telemetry. Widths are virtual nanoseconds summed over the shard's
// active rounds.
type ShardSyncStats struct {
	Rounds       int64 // rounds the shard was active (clock < grant)
	GrantedNS    int64 // sum of granted horizon widths (grant − clock)
	ReachedNS    int64 // sum of the executable span covered (grant − first due event; 0 when idle)
	MinedGainNS  int64 // sum of mined − static grant (0 with mining off)
	IdleRounds   int64 // active rounds with nothing due below the grant: pure clock advance
	HorizonBound int64 // rounds where the run horizon, not an inbound channel, bound the grant
}

// SyncStats is the conservative-sync grant-utilization telemetry a
// multi-shard Run accumulates: how wide the rounds were, how much of each
// granted horizon contained executable work, what mining bought, and
// which inbound channel was each shard's binding constraint. Everything
// here is a pure function of virtual state — identical at any worker
// count — and is kept out of the workload telemetry snapshot, which stays
// byte-identical across shard counts by contract.
type SyncStats struct {
	Rounds            int64 // coordinator rounds executed
	Messages          int64 // cross-shard messages flushed
	ActiveShardRounds int64 // sum of round widths: one count per (round, active shard)

	Shards []ShardSyncStats

	// Binding[src][dst] counts rounds where the src→dst channel was the
	// binding constraint on dst's grant (lowest src index on ties).
	// Horizon-bound rounds land in Shards[dst].HorizonBound instead.
	Binding [][]int64

	GrantWidthUS *stats.Histogram // granted width per active shard-round, µs
	MinedGainUS  *stats.Histogram // mined − static grant per active shard-round, µs
	RoundWidth   *stats.Histogram // active shards per round
}

// ShardGroup owns N engines and runs them under conservative sync.
type ShardGroup struct {
	shards []*shard
	la     [][]Time // la[src][dst]; negative means "no channel declared"
	now    Time

	// Workers bounds the goroutines running shard rounds; 0 defaults to
	// min(N, GOMAXPROCS) and <=1 runs rounds serially. The schedule has no
	// effect on results — only on wall clock.
	Workers int

	// driver, when non-nil, paces rounds against an external clock
	// (SetClockDriver): each round waits at the coordinator barrier until
	// the clock authorizes the round's earliest grant. Shard engines keep
	// nil drivers — pacing one coordinator is sound, pacing N racing
	// engines is not — so emulation granularity under sharding is the
	// round (the lookahead), not the event. Injected work runs at the
	// barrier, the only instant no shard goroutine owns an engine — and
	// since an injected closure may schedule events anywhere, the round's
	// grants are recomputed from scratch after any batch runs.
	driver ClockDriver

	// mine enables pacing-aware lookahead mining (see the package comment;
	// on by default). started flips at the first Run and freezes the
	// channel topology: grants are derived from lookaheads mid-round, so
	// changing them with rounds in flight would silently unsound the sync.
	mine    bool
	started bool

	rounds   int64
	messages int64
	bound    []Time // per-shard mining bound, scratch reused every round
	sstats   SyncStats
}

// NewShardGroup creates n engines. Shard 0's engine is seeded exactly
// with seed — a single-shard group replays a legacy NewEngine(seed) run
// byte-for-byte — and the rest draw well-separated streams from it.
func NewShardGroup(n int, seed uint64) *ShardGroup {
	return NewShardGroupWithQueue(n, seed, QueueHeap)
}

// NewShardGroupWithQueue is NewShardGroup with every shard engine on the
// given event-queue backend (sim.NewEngineWithQueue). Backend choice is
// invisible to results — the fleet telemetry diff in queue-smoke holds all
// kinds byte-identical at any shard count — it only moves the queue-cost
// profile.
func NewShardGroupWithQueue(n int, seed uint64, kind QueueKind) *ShardGroup {
	if n <= 0 {
		panic("sim: shard group needs at least one shard")
	}
	g := &ShardGroup{
		shards: make([]*shard, n),
		la:     make([][]Time, n),
		mine:   true,
		bound:  make([]Time, n),
	}
	for i := 0; i < n; i++ {
		g.shards[i] = &shard{
			id:  i,
			eng: NewEngineWithQueue(seed+uint64(i)*0x9E3779B97F4A7C15, kind),
		}
		g.la[i] = make([]Time, n)
		for j := range g.la[i] {
			g.la[i][j] = -1
		}
	}
	g.sstats.Shards = make([]ShardSyncStats, n)
	g.sstats.Binding = make([][]int64, n)
	for i := range g.sstats.Binding {
		g.sstats.Binding[i] = make([]int64, n)
	}
	// Grant widths in fleets sit between the minimum link lookahead (tens
	// of µs) and the idle stretches mining unlocks; 5 µs buckets to ~20 ms
	// keep both ends visible without the histogram dominating the group.
	g.sstats.GrantWidthUS = stats.NewHistogram(5, 4096)
	g.sstats.MinedGainUS = stats.NewHistogram(5, 4096)
	g.sstats.RoundWidth = stats.NewHistogram(1, n+2)
	return g
}

// SetClockDriver installs (or removes) the group's clock driver. Must be
// called before the group runs — it panics once the first Run begins. On
// a multi-shard group the driver lives on the coordinator, never on the
// shard engines — Run itself waits at round barriers; a single-shard
// group hands the driver straight to its lone engine, where pacing is
// event-granular.
func (g *ShardGroup) SetClockDriver(d ClockDriver) {
	if g.started {
		panic("sim: SetClockDriver after the shard group has run")
	}
	g.driver = d
	if len(g.shards) == 1 {
		g.shards[0].eng.SetClockDriver(d)
	}
}

// ClockDriver returns the installed driver (nil in sim mode).
func (g *ShardGroup) ClockDriver() ClockDriver { return g.driver }

// SetMining enables or disables pacing-aware lookahead mining (the
// default is on). Like Workers it never changes results — only round
// boundaries, wall clock, and the SyncStats utilization telemetry — but
// it must be chosen before the group runs: grants from mixed rules would
// make the mined-gain accounting meaningless.
func (g *ShardGroup) SetMining(on bool) {
	if g.started {
		panic("sim: SetMining after the shard group has run")
	}
	g.mine = on
}

// MiningEnabled reports whether lookahead mining is on.
func (g *ShardGroup) MiningEnabled() bool { return g.mine }

// waitForRound blocks until the driver authorizes virtual time at (the
// round's earliest grant), running injected work as it arrives. It runs on
// the coordinator between rounds, when every shard engine is quiescent, so
// injected closures may safely touch any shard's engine — the same
// soundness argument as assembly-time scheduling. It reports whether any
// injected work ran: injected closures can schedule events below the
// round's mined bounds, so the caller must recompute grants before
// releasing the shards. A nil or empty work slice means the wait
// completed (the ClockDriver contract) — only non-empty batches keep
// waiting, so a driver handing back empty slices cannot spin the barrier.
func (g *ShardGroup) waitForRound(at Time) (injected bool) {
	for {
		_, work := g.driver.WaitUntil(at)
		if len(work) == 0 {
			return injected
		}
		injected = true
		for _, fn := range work {
			fn()
		}
	}
}

// N returns the shard count.
func (g *ShardGroup) N() int { return len(g.shards) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.shards[i].eng }

// Now returns the group clock: the horizon every shard has reached.
func (g *ShardGroup) Now() Time { return g.now }

// TotalFired sums fired events across shard engines. Cross-shard messages
// become arrival-band events on exactly one engine, so the total equals
// the legacy single-engine count.
func (g *ShardGroup) TotalFired() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.eng.Fired
	}
	return n
}

// TotalPending sums pending events across shard engines. In-flight
// cross-shard messages are injected into destination heaps at round
// barriers, so between Run calls the total matches the single-engine
// pending count (where an in-flight packet is simply a future event).
func (g *ShardGroup) TotalPending() int {
	var n int
	for _, s := range g.shards {
		n += s.eng.Pending()
	}
	return n
}

// InFlight returns the number of cross-shard messages not yet injected
// into their destination engines. Between Run calls it is always zero —
// every emitted message has become a pending destination event — so it is
// only interesting to tests poking at the machinery.
func (g *ShardGroup) InFlight() int {
	var n int
	for _, s := range g.shards {
		n += len(s.out)
	}
	return n
}

// Stats reports synchronization work done so far.
func (g *ShardGroup) Stats() (rounds, messages int64) { return g.rounds, g.messages }

// SyncStats returns the group's grant-utilization telemetry. The pointer
// shares the group's live accumulator: read it between Run calls and do
// not mutate it. A single-shard group never rounds, so everything stays
// zero there.
func (g *ShardGroup) SyncStats() *SyncStats {
	g.sstats.Rounds = g.rounds
	g.sstats.Messages = g.messages
	return &g.sstats
}

// SetLookahead declares (or tightens) the lookahead of the src→dst
// channel: every message sent on it must be timestamped at least d past
// the sender's clock. d must be positive — a zero-lookahead channel would
// deadlock conservative sync — and the effective lookahead is the minimum
// over all declarations, so callers register each link's propagation
// delay and the channel gets the tightest one. Like the rest of the
// channel topology it is assembly-time only: calling it once the group
// has run panics, because rounds already in flight were granted under the
// old lookaheads.
func (g *ShardGroup) SetLookahead(src, dst int, d Time) {
	if g.started {
		panic("sim: SetLookahead after the shard group has run")
	}
	if src == dst {
		panic("sim: lookahead from a shard to itself")
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v for shard channel %d->%d", d, src, dst))
	}
	if cur := g.la[src][dst]; cur < 0 || d < cur {
		g.la[src][dst] = d
	}
}

// Lookahead returns the effective src→dst lookahead (negative: none).
func (g *ShardGroup) Lookahead(src, dst int) Time { return g.la[src][dst] }

// Conduit is a sender-owned cross-shard message channel. The id keys the
// arrival-band tie-break, so callers must assign ids during deterministic
// assembly (never mid-run) and reuse the same assignment at any shard
// count — topologies allocate them in join order and give the same id to
// the link's single-engine arrival path.
type Conduit struct {
	g   *ShardGroup
	src int32
	id  int32
}

// NewConduit registers a conduit sending from shard src under the given
// arrival-band conduit id. Ids must be non-negative and should be unique
// per message source (the (conduit, seq) key must be). Conduits are part
// of the assembly-time channel topology, so registering one after the
// group has run panics like SetLookahead.
func (g *ShardGroup) NewConduit(src int, id int32) *Conduit {
	if g.started {
		panic("sim: NewConduit after the shard group has run")
	}
	if src < 0 || src >= len(g.shards) {
		panic(fmt.Sprintf("sim: conduit source shard %d out of range", src))
	}
	if id < 0 {
		panic(fmt.Sprintf("sim: negative conduit id %d", id))
	}
	return &Conduit{g: g, src: int32(src), id: id}
}

// Send schedules fn on shard dst at time at, keyed by the conduit's id
// and the caller's per-conduit seq. It must be called from the source
// shard (during its round, or before the group runs), and at must
// respect the declared src→dst lookahead — violating it means the
// receiver may already have advanced past at, so it panics loudly rather
// than corrupt timestamp order.
func (c *Conduit) Send(dst int, at Time, seq uint64, fn func()) {
	g := c.g
	src := g.shards[c.src]
	la := g.la[c.src][dst]
	if la < 0 {
		panic(fmt.Sprintf("sim: conduit %d send %d->%d with no declared lookahead", c.id, c.src, dst))
	}
	if at < src.eng.Now()+la {
		panic(fmt.Sprintf("sim: conduit %d send %d->%d at %v violates lookahead %v (src clock %v)",
			c.id, c.src, dst, at, la, src.eng.Now()))
	}
	src.out = append(src.out, shardMsg{at: at, conduit: c.id, dst: int32(dst), seq: seq, fn: fn})
}

// computeGrants derives every shard's grant for the next round from the
// clocks committed at the previous barrier, the run horizon, and — with
// mining on — the engines' earliest pending events. It returns the number
// of shards with work to do (clock < grant) and, when exactly one is
// active, which.
func (g *ShardGroup) computeGrants(until Time) (active int, only *shard) {
	n := len(g.shards)

	// bound[i]: the earliest virtual time shard i could execute anything
	// from here on — its own queue head, lowered transitively by what
	// peers could still deliver. until stands in for "nothing before the
	// horizon": it only ever produces grants that clamp at until, and it
	// keeps the arithmetic far from overflow.
	for i, s := range g.shards {
		b := until
		if t, ok := s.eng.EarliestPending(); ok && t < until {
			b = t
		}
		s.pend = b
		g.bound[i] = b
	}
	if g.mine && n > 1 {
		// Relax to a fixpoint (Bellman-Ford over the channel graph; no
		// negative cycles since lookaheads are positive, so it terminates
		// in at most n sweeps). The naive per-shard rule — grant straight
		// from the sender's queue head — is transitively unsound: an
		// upstream peer can wake an empty-looking sender well before its
		// own head event.
		for changed := true; changed; {
			changed = false
			for d := 0; d < n; d++ {
				for s := 0; s < n; s++ {
					la := g.la[s][d]
					if la < 0 {
						continue
					}
					if b := g.bound[s] + la; b < g.bound[d] {
						g.bound[d] = b
						changed = true
					}
				}
			}
		}
	}

	for _, s := range g.shards {
		grant, sgrant := until, until
		bind := -1
		for j := 0; j < n; j++ {
			la := g.la[j][s.id]
			if la < 0 {
				continue
			}
			if h := g.shards[j].clock + la; h < sgrant {
				sgrant = h
			}
			eff := g.shards[j].clock
			if g.mine {
				eff = g.bound[j] // bound >= clock always; mined grants dominate static
			}
			if h := eff + la; h < grant {
				grant = h
				bind = j
			}
		}
		s.grant, s.sgrant, s.bind = grant, sgrant, bind
		if s.clock < s.grant {
			active++
			only = s
		}
	}
	return active, only
}

// recordRound folds one about-to-run round into the sync telemetry.
func (g *ShardGroup) recordRound(active int) {
	st := &g.sstats
	st.ActiveShardRounds += int64(active)
	st.RoundWidth.Add(float64(active))
	for _, s := range g.shards {
		if s.clock >= s.grant {
			continue
		}
		ss := &st.Shards[s.id]
		ss.Rounds++
		width := int64(s.grant - s.clock)
		ss.GrantedNS += width
		st.GrantWidthUS.Add(float64(width) / 1e3)
		gain := int64(s.grant - s.sgrant)
		ss.MinedGainNS += gain
		st.MinedGainUS.Add(float64(gain) / 1e3)
		if s.pend <= s.grant {
			ss.ReachedNS += int64(s.grant - s.pend)
		} else {
			ss.IdleRounds++
		}
		if s.bind >= 0 {
			st.Binding[s.bind][s.id]++
		} else {
			ss.HorizonBound++
		}
	}
}

// RunFor advances every shard by d.
func (g *ShardGroup) RunFor(d Time) { g.Run(g.now + d) }

// Run advances every shard to exactly until. On return every engine's
// clock is until, every emitted message has been injected into its
// destination engine (ones due later than until are simply future
// events), and the per-shard event histories are those of the same
// workload on a single engine.
func (g *ShardGroup) Run(until Time) {
	if until < g.now {
		panic("sim: shard group run target before group clock")
	}
	g.started = true
	if len(g.shards) == 1 {
		// Single shard: a conduit cannot target its own shard (Send demands
		// a lookahead, SetLookahead refuses self-channels), so this is
		// exactly a legacy engine run. A group driver is installed on the
		// lone engine itself (SetClockDriver), so pacing there is
		// event-granular, exactly as on a bare driven engine.
		s := g.shards[0]
		s.eng.RunUntil(until)
		s.clock = until
		g.now = until
		return
	}
	if g.driver != nil {
		g.driver.Begin(g.now)
	}
	workers := g.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.shards) {
		workers = len(g.shards)
	}

	var (
		workCh chan *shard
		wg     sync.WaitGroup
		stop   chan struct{}
	)
	if workers > 1 {
		workCh = make(chan *shard, len(g.shards))
		stop = make(chan struct{})
		defer close(stop)
		for w := 0; w < workers; w++ {
			go func() {
				for {
					select {
					case s := <-workCh:
						s.eng.RunUntil(s.grant)
						wg.Done()
					case <-stop:
						return
					}
				}
			}()
		}
	}

	for {
		// Phase 0 (coordinator): flush outboxes. Every message emitted in
		// the previous round (or during assembly, on the first iteration)
		// becomes an arrival-band event on its destination engine. The grant
		// rule makes this sound: a message emitted by src during round r is
		// timestamped past src's round-(r-1) mining bound plus the channel
		// lookahead, which bounds every other shard's round-r grant — so the
		// destination's clock is still at or below the timestamp here.
		for _, s := range g.shards {
			for _, m := range s.out {
				g.shards[m.dst].eng.AtArrival(m.at, m.conduit, m.seq, "", m.fn)
			}
			g.messages += int64(len(s.out))
			s.out = s.out[:0]
		}

		active, only := g.computeGrants(until)
		if active == 0 {
			break
		}

		// Driver-aware barrier wait: pace the round against the external
		// clock. The round's work spans [clock, grant) across shards; it is
		// released once the clock reaches the earliest active grant, so no
		// shard runs ahead of wall time by more than its round span. If
		// injected work ran at the barrier it may have scheduled events
		// below the grants just computed (mined bounds especially), so loop
		// back: re-flush anything it sent and recompute from the new queue
		// state. Committed clocks never move, so grants only ever tighten
		// toward values that are still sound.
		if g.driver != nil {
			earliest := until
			for _, s := range g.shards {
				if s.clock < s.grant && s.grant < earliest {
					earliest = s.grant
				}
			}
			if g.waitForRound(earliest) {
				continue
			}
		}
		g.rounds++
		g.recordRound(active)

		// Phase A: run every active shard to its grant.
		if workers > 1 && active > 1 {
			wg.Add(active)
			for _, s := range g.shards {
				if s.clock < s.grant {
					workCh <- s
				}
			}
			wg.Wait()
		} else if active == 1 {
			only.eng.RunUntil(only.grant)
		} else {
			for _, s := range g.shards {
				if s.clock < s.grant {
					s.eng.RunUntil(s.grant)
				}
			}
		}

		// Phase B (coordinator): commit clocks. Outboxes filled this round
		// are flushed at the top of the next iteration, so the set of
		// injected messages stays a pure function of the round number.
		for _, s := range g.shards {
			if s.grant > s.clock {
				s.clock = s.grant
			}
		}
	}

	// The loop only exits with every clock at until (a lagging shard is
	// always active: its grant exceeds the minimum clock by at least one
	// positive lookahead). Mining can land a message timestamped exactly
	// at a receiver's committed horizon — the receiver reached until a
	// round early, then the sender's horizon-stamped message was flushed
	// above after the receiver had already run — so fire those stragglers
	// with one more inclusive pass. Anything a straggler emits is at least
	// a lookahead past until: flush it as an ordinary future event.
	for _, s := range g.shards {
		if t, ok := s.eng.EarliestPending(); ok && t <= until {
			s.eng.RunUntil(until)
		}
	}
	for _, s := range g.shards {
		for _, m := range s.out {
			g.shards[m.dst].eng.AtArrival(m.at, m.conduit, m.seq, "", m.fn)
		}
		g.messages += int64(len(s.out))
		s.out = s.out[:0]
	}
	g.now = until
}
