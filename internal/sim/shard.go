package sim

// Sharded execution: a ShardGroup owns N engines and advances them
// concurrently under conservative (Chandy-Misra-Bryant style) time
// synchronization. Each shard's clock is only ever granted up to the
// minimum over its inbound channels of the sender's committed clock plus
// that channel's lookahead — the minimum latency any cross-shard message
// on the channel must carry — so no shard can receive an event in its
// past, with no rollback machinery.
//
// Execution proceeds in rounds. Every round the coordinator first flushes
// the messages emitted in strictly earlier rounds (or during assembly)
// into their destination engines, then computes each shard's grant from
// the clocks committed at the end of the previous round, and the shards
// run independently (optionally on parallel worker goroutines) up to
// their grants. Flushing only at the coordinator keeps every engine
// single-threaded, and the grant rule guarantees each message is injected
// strictly before its destination's clock reaches the message timestamp.
//
// A flushed message becomes an ordinary pending event in the destination
// engine's arrival band (Engine.AtArrival): its heap key is (time,
// conduit, seq), where conduit ids are assigned at topology-assembly time
// — identical at any shard count — and seq is the conduit's send counter.
// Arrival-band events fire after every ordinarily scheduled event at the
// same instant, ordered among themselves by (conduit, seq); because the
// single-engine path schedules the same deliveries with the same keys
// through the same band, the merged event history is identical by
// construction: independent of the worker count, the round schedule, and
// the number of shards — including the degenerate count of one engine
// with no group at all.
//
// Cross-shard hand-offs therefore add no engine events: the delivery that
// would have been a pending event on the single engine is a pending event
// on exactly one shard engine, so per-engine fired/pending totals sum to
// the single-engine values.

import (
	"fmt"
	"runtime"
	"sync"
)

// shardMsg is one cross-shard message: fn runs on the destination shard's
// engine as an arrival-band event keyed (at, conduit, seq).
type shardMsg struct {
	at      Time
	conduit int32
	dst     int32
	seq     uint64
	fn      func()
}

// shard is one engine's slot in a ShardGroup.
type shard struct {
	id    int
	eng   *Engine
	clock Time // committed: the shard has executed everything before clock
	grant Time // this round's horizon

	out []shardMsg // messages emitted this round, flushed at the barrier
}

// ShardGroup owns N engines and runs them under conservative sync.
type ShardGroup struct {
	shards []*shard
	la     [][]Time // la[src][dst]; negative means "no channel declared"
	now    Time

	// Workers bounds the goroutines running shard rounds; 0 defaults to
	// min(N, GOMAXPROCS) and <=1 runs rounds serially. The schedule has no
	// effect on results — only on wall clock.
	Workers int

	// driver, when non-nil, paces rounds against an external clock
	// (SetClockDriver): each round waits at the coordinator barrier until
	// the clock authorizes the round's earliest grant. Shard engines keep
	// nil drivers — pacing one coordinator is sound, pacing N racing
	// engines is not — so emulation granularity under sharding is the
	// round (the lookahead), not the event. Injected work runs at the
	// barrier, the only instant no shard goroutine owns an engine.
	driver ClockDriver

	rounds   int64
	messages int64
}

// NewShardGroup creates n engines. Shard 0's engine is seeded exactly
// with seed — a single-shard group replays a legacy NewEngine(seed) run
// byte-for-byte — and the rest draw well-separated streams from it.
func NewShardGroup(n int, seed uint64) *ShardGroup {
	return NewShardGroupWithQueue(n, seed, QueueHeap)
}

// NewShardGroupWithQueue is NewShardGroup with every shard engine on the
// given event-queue backend (sim.NewEngineWithQueue). Backend choice is
// invisible to results — the fleet telemetry diff in queue-smoke holds all
// kinds byte-identical at any shard count — it only moves the queue-cost
// profile.
func NewShardGroupWithQueue(n int, seed uint64, kind QueueKind) *ShardGroup {
	if n <= 0 {
		panic("sim: shard group needs at least one shard")
	}
	g := &ShardGroup{
		shards: make([]*shard, n),
		la:     make([][]Time, n),
	}
	for i := 0; i < n; i++ {
		g.shards[i] = &shard{
			id:  i,
			eng: NewEngineWithQueue(seed+uint64(i)*0x9E3779B97F4A7C15, kind),
		}
		g.la[i] = make([]Time, n)
		for j := range g.la[i] {
			g.la[i][j] = -1
		}
	}
	return g
}

// SetClockDriver installs (or removes) the group's clock driver. Must be
// called before the group runs. On a multi-shard group the driver lives on
// the coordinator, never on the shard engines — Run itself waits at round
// barriers; a single-shard group hands the driver straight to its lone
// engine, where pacing is event-granular.
func (g *ShardGroup) SetClockDriver(d ClockDriver) {
	g.driver = d
	if len(g.shards) == 1 {
		g.shards[0].eng.SetClockDriver(d)
	}
}

// ClockDriver returns the installed driver (nil in sim mode).
func (g *ShardGroup) ClockDriver() ClockDriver { return g.driver }

// waitForRound blocks until the driver authorizes virtual time at (the
// round's earliest grant), running injected work as it arrives. It runs on
// the coordinator between rounds, when every shard engine is quiescent, so
// injected closures may safely touch any shard's engine — the same
// soundness argument as assembly-time scheduling.
func (g *ShardGroup) waitForRound(at Time) {
	for {
		_, work := g.driver.WaitUntil(at)
		if work == nil {
			return
		}
		for _, fn := range work {
			fn()
		}
	}
}

// N returns the shard count.
func (g *ShardGroup) N() int { return len(g.shards) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.shards[i].eng }

// Now returns the group clock: the horizon every shard has reached.
func (g *ShardGroup) Now() Time { return g.now }

// TotalFired sums fired events across shard engines. Cross-shard messages
// become arrival-band events on exactly one engine, so the total equals
// the legacy single-engine count.
func (g *ShardGroup) TotalFired() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.eng.Fired
	}
	return n
}

// TotalPending sums pending events across shard engines. In-flight
// cross-shard messages are injected into destination heaps at round
// barriers, so between Run calls the total matches the single-engine
// pending count (where an in-flight packet is simply a future event).
func (g *ShardGroup) TotalPending() int {
	var n int
	for _, s := range g.shards {
		n += s.eng.Pending()
	}
	return n
}

// InFlight returns the number of cross-shard messages not yet injected
// into their destination engines. Between Run calls it is always zero —
// every emitted message has become a pending destination event — so it is
// only interesting to tests poking at the machinery.
func (g *ShardGroup) InFlight() int {
	var n int
	for _, s := range g.shards {
		n += len(s.out)
	}
	return n
}

// Stats reports synchronization work done so far.
func (g *ShardGroup) Stats() (rounds, messages int64) { return g.rounds, g.messages }

// SetLookahead declares (or tightens) the lookahead of the src→dst
// channel: every message sent on it must be timestamped at least d past
// the sender's clock. d must be positive — a zero-lookahead channel would
// deadlock conservative sync — and the effective lookahead is the minimum
// over all declarations, so callers register each link's propagation
// delay and the channel gets the tightest one.
func (g *ShardGroup) SetLookahead(src, dst int, d Time) {
	if src == dst {
		panic("sim: lookahead from a shard to itself")
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v for shard channel %d->%d", d, src, dst))
	}
	if cur := g.la[src][dst]; cur < 0 || d < cur {
		g.la[src][dst] = d
	}
}

// Lookahead returns the effective src→dst lookahead (negative: none).
func (g *ShardGroup) Lookahead(src, dst int) Time { return g.la[src][dst] }

// Conduit is a sender-owned cross-shard message channel. The id keys the
// arrival-band tie-break, so callers must assign ids during deterministic
// assembly (never mid-run) and reuse the same assignment at any shard
// count — topologies allocate them in join order and give the same id to
// the link's single-engine arrival path.
type Conduit struct {
	g   *ShardGroup
	src int32
	id  int32
}

// NewConduit registers a conduit sending from shard src under the given
// arrival-band conduit id. Ids must be non-negative and should be unique
// per message source (the (conduit, seq) key must be).
func (g *ShardGroup) NewConduit(src int, id int32) *Conduit {
	if src < 0 || src >= len(g.shards) {
		panic(fmt.Sprintf("sim: conduit source shard %d out of range", src))
	}
	if id < 0 {
		panic(fmt.Sprintf("sim: negative conduit id %d", id))
	}
	return &Conduit{g: g, src: int32(src), id: id}
}

// Send schedules fn on shard dst at time at, keyed by the conduit's id
// and the caller's per-conduit seq. It must be called from the source
// shard (during its round, or before the group runs), and at must
// respect the declared src→dst lookahead — violating it means the
// receiver may already have advanced past at, so it panics loudly rather
// than corrupt timestamp order.
func (c *Conduit) Send(dst int, at Time, seq uint64, fn func()) {
	g := c.g
	src := g.shards[c.src]
	la := g.la[c.src][dst]
	if la < 0 {
		panic(fmt.Sprintf("sim: conduit %d send %d->%d with no declared lookahead", c.id, c.src, dst))
	}
	if at < src.eng.Now()+la {
		panic(fmt.Sprintf("sim: conduit %d send %d->%d at %v violates lookahead %v (src clock %v)",
			c.id, c.src, dst, at, la, src.eng.Now()))
	}
	src.out = append(src.out, shardMsg{at: at, conduit: c.id, dst: int32(dst), seq: seq, fn: fn})
}

// RunFor advances every shard by d.
func (g *ShardGroup) RunFor(d Time) { g.Run(g.now + d) }

// Run advances every shard to exactly until. On return every engine's
// clock is until, every emitted message has been injected into its
// destination engine (ones due later than until are simply future
// events), and the per-shard event histories are those of the same
// workload on a single engine.
func (g *ShardGroup) Run(until Time) {
	if until < g.now {
		panic("sim: shard group run target before group clock")
	}
	if len(g.shards) == 1 {
		// Single shard: a conduit cannot target its own shard (Send demands
		// a lookahead, SetLookahead refuses self-channels), so this is
		// exactly a legacy engine run. A group driver is installed on the
		// lone engine itself (SetClockDriver), so pacing there is
		// event-granular, exactly as on a bare driven engine.
		s := g.shards[0]
		s.eng.RunUntil(until)
		s.clock = until
		g.now = until
		return
	}
	if g.driver != nil {
		g.driver.Begin(g.now)
	}
	workers := g.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.shards) {
		workers = len(g.shards)
	}

	var (
		workCh chan *shard
		wg     sync.WaitGroup
		stop   chan struct{}
	)
	if workers > 1 {
		workCh = make(chan *shard, len(g.shards))
		stop = make(chan struct{})
		defer close(stop)
		for w := 0; w < workers; w++ {
			go func() {
				for {
					select {
					case s := <-workCh:
						s.eng.RunUntil(s.grant)
						wg.Done()
					case <-stop:
						return
					}
				}
			}()
		}
	}

	for {
		// Phase 0 (coordinator): flush outboxes. Every message emitted in
		// the previous round (or during assembly, on the first iteration)
		// becomes an arrival-band event on its destination engine. The grant
		// rule makes this sound: a message emitted by src during round r is
		// timestamped past src's round-(r-1) clock plus the channel
		// lookahead, which bounds every other shard's round-r grant — so the
		// destination's clock is still strictly below the timestamp here.
		for _, s := range g.shards {
			for _, m := range s.out {
				g.shards[m.dst].eng.AtArrival(m.at, m.conduit, m.seq, "", m.fn)
			}
			g.messages += int64(len(s.out))
			s.out = s.out[:0]
		}

		// Grants from the clocks committed at the previous barrier.
		active := 0
		var only *shard
		for _, s := range g.shards {
			grant := until
			for j := range g.shards {
				la := g.la[j][s.id]
				if la < 0 {
					continue
				}
				if h := g.shards[j].clock + la; h < grant {
					grant = h
				}
			}
			s.grant = grant
			if s.clock < s.grant {
				active++
				only = s
			}
		}
		if active == 0 {
			break
		}
		g.rounds++

		// Driver-aware barrier wait: pace the round against the external
		// clock. The round's work spans [clock, grant) across shards; it is
		// released once the clock reaches the earliest active grant, so no
		// shard runs ahead of wall time by more than its round span.
		if g.driver != nil {
			earliest := until
			for _, s := range g.shards {
				if s.clock < s.grant && s.grant < earliest {
					earliest = s.grant
				}
			}
			g.waitForRound(earliest)
		}

		// Phase A: run every active shard to its grant.
		if workers > 1 && active > 1 {
			wg.Add(active)
			for _, s := range g.shards {
				if s.clock < s.grant {
					workCh <- s
				}
			}
			wg.Wait()
		} else if active == 1 {
			only.eng.RunUntil(only.grant)
		} else {
			for _, s := range g.shards {
				if s.clock < s.grant {
					s.eng.RunUntil(s.grant)
				}
			}
		}

		// Phase B (coordinator): commit clocks. Outboxes filled this round
		// are flushed at the top of the next iteration, so the set of
		// injected messages stays a pure function of the round number.
		for _, s := range g.shards {
			if s.grant > s.clock {
				s.clock = s.grant
			}
		}
	}
	g.now = until
}
